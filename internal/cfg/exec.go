package cfg

import (
	"fmt"
	"math"

	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// ExecConfig configures an Executor: which functions are transaction
// drivers, how the OS interrupts execution, and how many software threads
// the core multiplexes.
type ExecConfig struct {
	// Roots are the transaction driver functions. When a thread's call
	// stack empties, the dispatcher selects the next root by Zipf
	// popularity (rank 0 = Roots[0] most popular).
	Roots []FuncID
	// RootSkew is the Zipf skew over Roots; 0 gives a uniform mix.
	RootSkew float64
	// TrapHandlers are OS entry points (scheduler, interrupt handlers).
	// Traps pick uniformly among them. Empty disables traps.
	TrapHandlers []FuncID
	// TrapMeanInstrs is the mean number of instructions between traps
	// (exponentially distributed). 0 disables traps.
	TrapMeanInstrs int
	// Threads is the number of software threads multiplexed on the core;
	// at least 1.
	Threads int
	// ContextSwitchProb is the probability that a trap return resumes a
	// different thread (a scheduler decision). Ignored with one thread.
	ContextSwitchProb float64
	// Seed names the deterministic random stream for this executor.
	Seed string
}

// ExecStats counts what an Executor has produced.
type ExecStats struct {
	// Events is the number of BlockEvents emitted.
	Events uint64
	// Instrs is the total instructions across emitted events.
	Instrs uint64
	// Traps is the number of OS traps taken.
	Traps uint64
	// ContextSwitches is the number of trap returns that resumed a
	// different thread.
	ContextSwitches uint64
	// Transactions is the number of root dispatches.
	Transactions uint64
}

type frame struct {
	fn     *Function
	resume int // block index to execute after the callee returns
}

type blockRef struct {
	fn  *Function
	idx int
}

func (r blockRef) valid() bool { return r.fn != nil }

func (r blockRef) block() *BasicBlock { return r.fn.Blocks[r.idx] }

type threadState struct {
	stack []frame
	cur   blockRef
}

// Executor walks a Program emitting isa.BlockEvents. It is an infinite
// isa.EventSource: Next always succeeds. One Executor models one core.
type Executor struct {
	prog *Program
	cfg  ExecConfig
	rng  *xrand.Rand

	rootZipf *xrand.ZipfTable
	threads  []*threadState
	active   int

	inTrap        bool
	trapThread    threadState // kernel-mode execution state
	trapCountdown int64

	stats ExecStats
}

// NewExecutor creates an executor for prog. It panics if the configuration
// is invalid (no roots, or trap settings without handlers).
func NewExecutor(prog *Program, cfg ExecConfig) *Executor {
	if len(cfg.Roots) == 0 {
		panic("cfg: executor needs at least one root function")
	}
	if cfg.TrapMeanInstrs > 0 && len(cfg.TrapHandlers) == 0 {
		panic("cfg: TrapMeanInstrs set without TrapHandlers")
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	x := &Executor{
		prog:     prog,
		cfg:      cfg,
		rng:      xrand.NewFromString("exec/" + cfg.Seed),
		rootZipf: xrand.NewZipfTable(len(cfg.Roots), cfg.RootSkew),
		threads:  make([]*threadState, cfg.Threads),
	}
	for i := range x.threads {
		x.threads[i] = &threadState{}
	}
	x.resetTrapCountdown()
	return x
}

// Stats returns a copy of the execution counters.
func (x *Executor) Stats() ExecStats { return x.stats }

// Reset rewinds the executor to its freshly constructed state: the same
// seed, thread states, and trap countdown NewExecutor(prog, cfg) would
// produce, so the event stream replays identically. Call stacks keep
// their capacity, making repeated simulation runs allocation-free once
// the deepest call chain has been seen.
func (x *Executor) Reset() {
	x.rng.SeedFromString("exec/" + x.cfg.Seed)
	for _, t := range x.threads {
		t.stack = t.stack[:0]
		t.cur = blockRef{}
	}
	x.active = 0
	x.inTrap = false
	x.trapThread.stack = x.trapThread.stack[:0]
	x.trapThread.cur = blockRef{}
	x.stats = ExecStats{}
	x.resetTrapCountdown()
}

func (x *Executor) resetTrapCountdown() {
	if x.cfg.TrapMeanInstrs <= 0 {
		x.trapCountdown = math.MaxInt64
		return
	}
	u := x.rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	d := -float64(x.cfg.TrapMeanInstrs) * math.Log(u)
	if d < 1 {
		d = 1
	}
	x.trapCountdown = int64(d)
}

// dispatchRoot picks the next transaction driver for a thread.
func (x *Executor) dispatchRoot() blockRef {
	x.stats.Transactions++
	root := x.cfg.Roots[x.rootZipf.Sample(x.rng)]
	return blockRef{fn: x.prog.Func(root), idx: 0}
}

// Next implements isa.EventSource; it never returns ok == false.
func (x *Executor) Next() (isa.BlockEvent, bool) {
	if x.inTrap {
		return x.stepTrap(), true
	}
	return x.stepThread(), true
}

// NextBatch implements isa.BatchSource: one dynamic dispatch fills a
// whole buffer, and events are written in place instead of being copied
// through the Next return path. The executor is infinite, so dst is
// always filled completely.
func (x *Executor) NextBatch(dst []isa.BlockEvent) int {
	for i := range dst {
		if x.inTrap {
			dst[i] = x.stepTrap()
		} else {
			dst[i] = x.stepThread()
		}
	}
	return len(dst)
}

// stepThread executes one basic block of the active thread.
func (x *Executor) stepThread() isa.BlockEvent {
	t := x.threads[x.active]
	if !t.cur.valid() {
		t.cur = x.dispatchRoot()
	}
	ev, next := x.step(&t.cur, &t.stack, true)

	x.stats.Events++
	x.stats.Instrs += uint64(ev.Instrs)
	x.trapCountdown -= int64(ev.Instrs)

	if x.trapCountdown <= 0 && x.cfg.TrapMeanInstrs > 0 {
		// Asynchronous trap at the block boundary: override the emitted
		// terminator with a trap redirect (the flush discards the natural
		// transfer from the fetch unit's perspective), and stash the
		// natural continuation as the thread's resume point.
		handler := x.cfg.TrapHandlers[x.rng.Intn(len(x.cfg.TrapHandlers))]
		hfn := x.prog.Func(handler)
		ev.Kind = isa.CTTrap
		ev.Taken = true
		ev.Target = hfn.Entry
		t.cur = next
		x.inTrap = true
		x.trapThread.stack = x.trapThread.stack[:0] // keep capacity across traps
		x.trapThread.cur = blockRef{fn: hfn, idx: 0}
		x.stats.Traps++
		x.resetTrapCountdown()
		return ev
	}
	t.cur = next
	return ev
}

// stepTrap executes one basic block of kernel trap code.
func (x *Executor) stepTrap() isa.BlockEvent {
	ev, next := x.step(&x.trapThread.cur, &x.trapThread.stack, false)
	x.stats.Events++
	x.stats.Instrs += uint64(ev.Instrs)

	if !next.valid() {
		// Kernel stack emptied: trap return, possibly to another thread.
		x.inTrap = false
		if x.cfg.Threads > 1 && x.rng.Bool(x.cfg.ContextSwitchProb) {
			prev := x.active
			x.active = x.rng.Intn(len(x.threads))
			if x.active != prev {
				x.stats.ContextSwitches++
			}
		}
		t := x.threads[x.active]
		if !t.cur.valid() {
			t.cur = x.dispatchRoot()
		}
		ev.Kind = isa.CTTrapReturn
		ev.Taken = true
		ev.Target = t.cur.block().PC
		return ev
	}
	x.trapThread.cur = next
	return ev
}

// step executes the block at *cur, resolving its terminator with the
// executor's RNG, and returns the emitted event plus the next block
// reference. For CTReturn with an empty stack: in user mode (dispatch
// true) the dispatcher selects the next transaction root; in kernel mode
// it returns an invalid blockRef to signal trap completion (the caller
// rewrites the event's target).
func (x *Executor) step(cur *blockRef, stack *[]frame, dispatch bool) (isa.BlockEvent, blockRef) {
	fn := cur.fn
	b := cur.block()
	ev := isa.BlockEvent{
		PC:     b.PC,
		Instrs: b.Instrs,
		Kind:   b.Term.Kind,
	}
	if cur.idx == 0 && fn.Serializing {
		ev.Serializing = true
	}

	var next blockRef
	switch b.Term.Kind {
	case isa.CTFallthrough:
		next = blockRef{fn: fn, idx: cur.idx + 1}

	case isa.CTBranch:
		taken := x.rng.Bool(b.Term.TakenProb)
		ev.Taken = taken
		ev.InnerLoop = b.Term.InnerLoop
		ev.Target = fn.Blocks[b.Term.TakenIdx].PC
		if taken {
			next = blockRef{fn: fn, idx: b.Term.TakenIdx}
		} else {
			next = blockRef{fn: fn, idx: cur.idx + 1}
		}

	case isa.CTJump:
		ev.Taken = true
		ev.Target = fn.Blocks[b.Term.TakenIdx].PC
		next = blockRef{fn: fn, idx: b.Term.TakenIdx}

	case isa.CTCall:
		callee := b.Term.Callees[0]
		if b.Term.CalleeZipf != nil {
			callee = b.Term.Callees[b.Term.CalleeZipf.Sample(x.rng)]
		}
		cfn := x.prog.Func(callee)
		ev.Taken = true
		ev.Target = cfn.Entry
		*stack = append(*stack, frame{fn: fn, resume: cur.idx + 1})
		next = blockRef{fn: cfn, idx: 0}

	case isa.CTReturn:
		ev.Taken = true
		if n := len(*stack); n > 0 {
			fr := (*stack)[n-1]
			*stack = (*stack)[:n-1]
			ev.Target = fr.fn.Blocks[fr.resume].PC
			next = blockRef{fn: fr.fn, idx: fr.resume}
		} else if dispatch {
			next = x.dispatchRoot()
			ev.Target = next.block().PC
		} else {
			// Kernel return with empty stack: caller handles trap return.
			next = blockRef{}
		}

	default:
		panic(fmt.Sprintf("cfg: unexpected terminator kind %v", b.Term.Kind))
	}
	return ev, next
}
