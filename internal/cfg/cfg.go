// Package cfg implements the synthetic program model that substitutes for
// the paper's FLEXUS full-system instruction traces (see DESIGN.md §2).
//
// A Program is a static code image: functions made of basic blocks with
// structured control flow — straight-line runs, branch hammocks, inner
// loops, and call sites — laid out in disjoint address regions
// (application, shared library, OS). An Executor walks the program with
// seeded data-dependent branch outcomes, transaction dispatch, OS traps,
// and context switches, emitting the per-core instruction fetch streams
// that every cache, predictor, and analysis in this repository consumes.
//
// The generator does not sample target statistics directly; all
// predictor-visible structure (recurring miss sequences, stream lengths,
// fetch discontinuities) emerges from actually traversing the generated
// control-flow graphs, which is the property TIFS exploits.
package cfg

import (
	"fmt"

	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// FuncID identifies a function within a Program.
type FuncID int

// NoFunc is the invalid function ID.
const NoFunc FuncID = -1

// Terminator describes how a basic block ends and where control can go.
// Successors are block indices within the same function; calls name other
// functions.
type Terminator struct {
	// Kind is the control-transfer kind ending the block. CTFallthrough
	// blocks simply continue at the next block index.
	Kind isa.CTKind
	// TakenIdx is the in-function successor when a CTBranch is taken or a
	// CTJump executes. Backward TakenIdx (< own index) closes a loop.
	TakenIdx int
	// TakenProb is the per-execution probability that a CTBranch is taken.
	// It encodes the data dependence of the branch: values near 0 or 1 are
	// predictable, values near 0.5 model the re-convergent hammocks of
	// paper Section 3.2.
	TakenProb float64
	// InnerLoop marks a backward branch that closes an innermost loop
	// (excluded from the Fig. 10 lookahead accounting).
	InnerLoop bool
	// Callees lists candidate callee functions for CTCall blocks. A single
	// entry is a direct call; multiple entries model an indirect call site
	// whose target is data-dependent, selected by CalleeZipf.
	Callees []FuncID
	// CalleeZipf selects among Callees (rank 0 most likely). nil when
	// len(Callees) <= 1.
	CalleeZipf *xrand.ZipfTable
}

// BasicBlock is a static basic block: a straight run of instructions with
// one terminator. PC is assigned at Program build time.
type BasicBlock struct {
	// PC is the address of the first instruction.
	PC isa.Addr
	// Instrs is the instruction count, >= 1. Straight-line blocks may span
	// several cache blocks, reproducing the paper's "unpredictable
	// sequential fetch" scenario (Section 3.1).
	Instrs int
	// Term is the block terminator.
	Term Terminator
}

// Function is a generated function: contiguous basic blocks starting at
// Entry.
type Function struct {
	// ID is the function's index in Program.Funcs.
	ID FuncID
	// Name is a human-readable label ("app.f17", "os.sched").
	Name string
	// Entry is the address of Blocks[0].
	Entry isa.Addr
	// Blocks are the basic blocks in layout order. Fallthrough from block i
	// goes to block i+1; the final block returns.
	Blocks []*BasicBlock
	// Instrs is the total instruction count.
	Instrs int
	// Serializing marks functions whose entry begins with synchronization
	// instructions that drain the ROB (the paper's scheduler-entry
	// scenario, Section 3.1).
	Serializing bool
	// Region is the name of the address region containing the function.
	Region string
}

// SizeBytes returns the function's code footprint in bytes.
func (f *Function) SizeBytes() int { return f.Instrs * isa.InstrBytes }

// Program is a complete static code image.
type Program struct {
	// Funcs holds every function, indexed by FuncID.
	Funcs []*Function
	// Regions records the layout regions in creation order.
	Regions []RegionInfo
}

// RegionInfo describes one address region of the program image.
type RegionInfo struct {
	// Name labels the region ("app", "lib", "os").
	Name string
	// Base is the first address of the region.
	Base isa.Addr
	// Bytes is the total code laid out in the region, including padding.
	Bytes int
	// Funcs is the number of functions in the region.
	Funcs int
}

// Func returns the function with the given ID. It panics on an invalid ID;
// IDs only come from the builder, so an invalid ID is a programming error.
func (p *Program) Func(id FuncID) *Function {
	return p.Funcs[id]
}

// TotalBytes returns the program's total code footprint in bytes
// (excluding inter-function padding).
func (p *Program) TotalBytes() int {
	total := 0
	for _, f := range p.Funcs {
		total += f.SizeBytes()
	}
	return total
}

// TotalBlocks returns the number of distinct 64-byte cache blocks the
// program image touches — the instruction working set in blocks.
func (p *Program) TotalBlocks() int {
	seen := make(map[isa.Block]struct{})
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			ev := isa.BlockEvent{PC: b.PC, Instrs: b.Instrs}
			ev.VisitBlocks(func(blk isa.Block) bool {
				seen[blk] = struct{}{}
				return true
			})
		}
	}
	return len(seen)
}

// Validate checks structural invariants of the program: contiguous block
// layout, in-range terminator targets, call sites with callees, and final
// return blocks. The builder always produces valid programs; Validate
// guards hand-constructed test programs and future builders.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("cfg: function %s has no blocks", f.Name)
		}
		if f.Blocks[0].PC != f.Entry {
			return fmt.Errorf("cfg: function %s entry %v != first block PC %v", f.Name, f.Entry, f.Blocks[0].PC)
		}
		pc := f.Entry
		for i, b := range f.Blocks {
			if b.Instrs < 1 {
				return fmt.Errorf("cfg: %s block %d has %d instrs", f.Name, i, b.Instrs)
			}
			if b.PC != pc {
				return fmt.Errorf("cfg: %s block %d PC %v, want %v (non-contiguous)", f.Name, i, b.PC, pc)
			}
			pc = pc.Add(b.Instrs)
			switch b.Term.Kind {
			case isa.CTBranch, isa.CTJump:
				if b.Term.TakenIdx < 0 || b.Term.TakenIdx >= len(f.Blocks) {
					return fmt.Errorf("cfg: %s block %d target %d out of range", f.Name, i, b.Term.TakenIdx)
				}
				if b.Term.Kind == isa.CTBranch && (b.Term.TakenProb < 0 || b.Term.TakenProb > 1) {
					return fmt.Errorf("cfg: %s block %d TakenProb %f", f.Name, i, b.Term.TakenProb)
				}
			case isa.CTCall:
				if len(b.Term.Callees) == 0 {
					return fmt.Errorf("cfg: %s block %d call with no callees", f.Name, i)
				}
				for _, c := range b.Term.Callees {
					if int(c) < 0 || int(c) >= len(p.Funcs) {
						return fmt.Errorf("cfg: %s block %d callee %d out of range", f.Name, i, c)
					}
				}
				if i == len(f.Blocks)-1 {
					return fmt.Errorf("cfg: %s ends with a call (no return continuation)", f.Name)
				}
			}
			// Fallthrough and not-taken branches need a next block.
			needsNext := b.Term.Kind == isa.CTFallthrough || b.Term.Kind == isa.CTBranch || b.Term.Kind == isa.CTCall
			if needsNext && i == len(f.Blocks)-1 {
				return fmt.Errorf("cfg: %s final block kind %v falls off the end", f.Name, b.Term.Kind)
			}
		}
		last := f.Blocks[len(f.Blocks)-1]
		if last.Term.Kind != isa.CTReturn && last.Term.Kind != isa.CTJump {
			return fmt.Errorf("cfg: %s final block kind %v, want return or jump", f.Name, last.Term.Kind)
		}
	}
	return nil
}
