package cfg

import (
	"testing"

	"tifs/internal/isa"
)

func newTestExecutor(t testing.TB, seed string, threads int, trapMean int) (*Executor, *Program) {
	t.Helper()
	prog, roots, handlers := buildTestProgram(t, seed)
	cfg := ExecConfig{
		Roots:             roots,
		RootSkew:          0.8,
		Threads:           threads,
		ContextSwitchProb: 0.5,
		Seed:              seed,
	}
	if trapMean > 0 {
		cfg.TrapHandlers = handlers
		cfg.TrapMeanInstrs = trapMean
	}
	return NewExecutor(prog, cfg), prog
}

// TestExecutorStreamConsistency is the central executor invariant: each
// event's recorded outcome must take fetch exactly to the next event's PC,
// except across asynchronous trap redirects, which must be flagged CTTrap.
func TestExecutorStreamConsistency(t *testing.T) {
	x, _ := newTestExecutor(t, "consistency", 4, 2000)
	prev, _ := x.Next()
	for i := 0; i < 200000; i++ {
		ev, ok := x.Next()
		if !ok {
			t.Fatal("infinite source returned ok=false")
		}
		if prev.Kind == isa.CTTrap || prev.Kind == isa.CTTrapReturn {
			// Redirects carry their target explicitly.
			if prev.Target != ev.PC {
				t.Fatalf("event %d: trap redirect target %v but next PC %v", i, prev.Target, ev.PC)
			}
		} else if prev.NextPC() != ev.PC {
			t.Fatalf("event %d: prev %+v NextPC %v != next PC %v", i, prev, prev.NextPC(), ev.PC)
		}
		if ev.Instrs < 1 {
			t.Fatalf("event %d has %d instrs", i, ev.Instrs)
		}
		prev = ev
	}
}

func TestExecutorDeterminism(t *testing.T) {
	x1, _ := newTestExecutor(t, "det", 2, 5000)
	x2, _ := newTestExecutor(t, "det", 2, 5000)
	for i := 0; i < 50000; i++ {
		e1, _ := x1.Next()
		e2, _ := x2.Next()
		if e1 != e2 {
			t.Fatalf("event %d differs: %+v vs %+v", i, e1, e2)
		}
	}
}

func TestExecutorTrapsOccur(t *testing.T) {
	x, prog := newTestExecutor(t, "traps", 1, 1000)
	sawTrap, sawTrapRet, sawSerializing := false, false, false
	inKernel := false
	for i := 0; i < 100000; i++ {
		ev, _ := x.Next()
		switch ev.Kind {
		case isa.CTTrap:
			sawTrap = true
			inKernel = true
		case isa.CTTrapReturn:
			sawTrapRet = true
			inKernel = false
		}
		if ev.Serializing {
			sawSerializing = true
		}
		_ = inKernel
	}
	if !sawTrap || !sawTrapRet {
		t.Errorf("traps=%v trapReturns=%v, want both", sawTrap, sawTrapRet)
	}
	if !sawSerializing {
		t.Error("serializing handler entry never observed")
	}
	st := x.Stats()
	if st.Traps == 0 {
		t.Error("stats recorded no traps")
	}
	// Mean instructions between traps should be near the configured mean.
	got := float64(st.Instrs) / float64(st.Traps)
	if got < 500 || got > 2000 {
		t.Errorf("instrs/trap = %f, want ~1000", got)
	}
	_ = prog
}

func TestExecutorTrapRedirectsToHandler(t *testing.T) {
	x, prog := newTestExecutor(t, "redirect", 1, 500)
	handlerEntries := make(map[isa.Addr]bool)
	for _, f := range prog.Funcs {
		if f.Region == "os" {
			handlerEntries[f.Entry] = true
		}
	}
	for i := 0; i < 50000; i++ {
		ev, _ := x.Next()
		if ev.Kind == isa.CTTrap {
			next, _ := x.Next()
			if !handlerEntries[next.PC] {
				t.Fatalf("trap target %v is not an OS function entry", next.PC)
			}
			i++
		}
	}
}

func TestExecutorContextSwitches(t *testing.T) {
	x, _ := newTestExecutor(t, "ctx", 8, 500)
	for i := 0; i < 200000; i++ {
		x.Next()
	}
	if x.Stats().ContextSwitches == 0 {
		t.Error("no context switches with 8 threads and csProb 0.5")
	}
}

func TestExecutorSingleThreadNeverSwitches(t *testing.T) {
	x, _ := newTestExecutor(t, "single", 1, 500)
	for i := 0; i < 50000; i++ {
		x.Next()
	}
	if x.Stats().ContextSwitches != 0 {
		t.Error("single-threaded executor recorded context switches")
	}
}

func TestExecutorTransactionsDispatch(t *testing.T) {
	x, _ := newTestExecutor(t, "txn", 1, 0)
	for i := 0; i < 100000; i++ {
		x.Next()
	}
	st := x.Stats()
	if st.Transactions < 2 {
		t.Errorf("only %d transactions dispatched", st.Transactions)
	}
	if st.Events != 100000 {
		t.Errorf("Events = %d", st.Events)
	}
	if st.Instrs == 0 {
		t.Error("no instructions counted")
	}
	if st.Traps != 0 {
		t.Error("traps occurred with traps disabled")
	}
}

func TestExecutorRepetition(t *testing.T) {
	// The same driver dispatched repeatedly must revisit the same code
	// blocks: over a long run, the set of distinct PCs is bounded by the
	// program size while the event count is much larger.
	x, prog := newTestExecutor(t, "repeat", 1, 0)
	distinct := make(map[isa.Addr]bool)
	const n = 200000
	for i := 0; i < n; i++ {
		ev, _ := x.Next()
		distinct[ev.PC] = true
	}
	maxBlocks := 0
	for _, f := range prog.Funcs {
		maxBlocks += len(f.Blocks)
	}
	if len(distinct) > maxBlocks {
		t.Errorf("distinct PCs %d exceeds static blocks %d", len(distinct), maxBlocks)
	}
	if len(distinct) < 10 {
		t.Errorf("suspiciously few distinct blocks: %d", len(distinct))
	}
}

func TestExecutorCallStackBalance(t *testing.T) {
	// Depth tracked via call/return events must never go negative and must
	// stay bounded (layered call DAG: driver -> mid -> leaf plus traps).
	x, _ := newTestExecutor(t, "depth", 2, 2000)
	depth := 0
	maxDepth := 0
	for i := 0; i < 200000; i++ {
		ev, _ := x.Next()
		switch ev.Kind {
		case isa.CTCall:
			depth++
		case isa.CTReturn:
			depth--
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	// Returns at empty dispatcher stacks make the count drift negative
	// over transactions; it must never exceed the static layering bound
	// upward between dispatches.
	if maxDepth > 64 {
		t.Errorf("call depth reached %d; call graph should be shallow", maxDepth)
	}
}

func TestExecutorPanicsOnBadConfig(t *testing.T) {
	prog, roots, _ := buildTestProgram(t, "badcfg")
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no roots", func() {
		NewExecutor(prog, ExecConfig{})
	})
	mustPanic("traps without handlers", func() {
		NewExecutor(prog, ExecConfig{Roots: roots, TrapMeanInstrs: 100})
	})
}

func TestExecutorInnerLoopFlagged(t *testing.T) {
	x, _ := newTestExecutor(t, "loops", 1, 0)
	sawInner := false
	for i := 0; i < 100000 && !sawInner; i++ {
		ev, _ := x.Next()
		if ev.InnerLoop {
			if ev.Kind != isa.CTBranch {
				t.Fatalf("InnerLoop on %v event", ev.Kind)
			}
			if ev.Target > ev.PC {
				t.Fatalf("inner loop branch target %v is forward of %v", ev.Target, ev.PC)
			}
			sawInner = true
		}
	}
	if !sawInner {
		t.Error("no inner-loop branches observed (leaf2 has LoopFrac 0.4)")
	}
}

func BenchmarkExecutor(b *testing.B) {
	x, _ := newTestExecutor(b, "bench", 4, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Next()
	}
}
