package cfg

import (
	"fmt"

	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// FuncSpec controls generation of one synthetic function. The structural
// densities are probabilities that each generated segment is of the given
// kind; remaining probability mass produces straight-line runs.
type FuncSpec struct {
	// Instrs is the approximate target size in instructions; generation
	// stops adding segments once the function reaches it.
	Instrs int
	// HammockFrac is the fraction of segments that are if-then-else
	// hammocks (re-convergent, paper Section 3.2).
	HammockFrac float64
	// LoopFrac is the fraction of segments that are innermost loops.
	LoopFrac float64
	// CallFrac is the fraction of segments that are call sites; ignored
	// when Callees is empty.
	CallFrac float64
	// Callees are the candidate targets for generated call sites.
	Callees []FuncID
	// CalleeFanout bounds the number of distinct callees per indirect call
	// site; 1 produces only direct calls. Defaults to 1.
	CalleeFanout int
	// Unpredictable is the fraction of hammock branches whose outcome is
	// data-dependent (taken probability near 0.5, defeating branch
	// predictors); the rest are strongly biased.
	Unpredictable float64
	// LoopTripMax bounds loop trip counts (mean trips are about half the
	// bound). Transaction code has short inner loops; DSS operator scans
	// run long. Defaults to 8.
	LoopTripMax int
	// Serializing marks the function entry as ROB-draining.
	Serializing bool
}

// Builder assembles a Program: declare regions, add functions, then Build.
// Generation is deterministic for a given RNG seed and call sequence.
type Builder struct {
	rng     *xrand.Rand
	funcs   []*Function
	regions []*regionState
	built   bool
}

type regionState struct {
	info RegionInfo
	next isa.Addr
}

// Region is a handle to an address region under construction.
type Region struct {
	b   *Builder
	idx int
}

// NewBuilder returns a Builder drawing structure from rng.
func NewBuilder(rng *xrand.Rand) *Builder {
	return &Builder{rng: rng}
}

// Region declares an address region starting at base. Regions must not
// overlap; the caller spaces bases far apart (the builder does not check).
func (b *Builder) Region(name string, base isa.Addr) Region {
	b.regions = append(b.regions, &regionState{
		info: RegionInfo{Name: name, Base: base},
		next: base,
	})
	return Region{b: b, idx: len(b.regions) - 1}
}

// AddFunc generates a function in region r from spec and returns its ID.
func (b *Builder) AddFunc(r Region, name string, spec FuncSpec) FuncID {
	if b.built {
		panic("cfg: AddFunc after Build")
	}
	reg := b.regions[r.idx]
	id := FuncID(len(b.funcs))
	f := b.generate(id, name, reg, spec)
	b.funcs = append(b.funcs, f)
	return id
}

// Build finalizes and validates the program. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Program, error) {
	if b.built {
		return nil, fmt.Errorf("cfg: Build called twice")
	}
	b.built = true
	p := &Program{Funcs: b.funcs}
	for _, r := range b.regions {
		r.info.Bytes = int(r.next - r.info.Base)
		p.Regions = append(p.Regions, r.info)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; generation errors are
// programming errors, so most callers use this form.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// generate produces the structured block list for one function and lays it
// out at the region's next address.
func (b *Builder) generate(id FuncID, name string, reg *regionState, spec FuncSpec) *Function {
	if spec.Instrs < 4 {
		spec.Instrs = 4
	}
	if spec.CalleeFanout < 1 {
		spec.CalleeFanout = 1
	}
	if spec.LoopTripMax < 2 {
		spec.LoopTripMax = 8
	}
	rng := b.rng

	var blocks []*BasicBlock
	instrs := 0
	addBlock := func(n int, term Terminator) int {
		if n < 1 {
			n = 1
		}
		blocks = append(blocks, &BasicBlock{Instrs: n, Term: term})
		instrs += n
		return len(blocks) - 1
	}

	for instrs < spec.Instrs {
		roll := rng.Float64()
		callOK := len(spec.Callees) > 0
		switch {
		case callOK && roll < spec.CallFrac:
			b.genCallSite(rng, spec, addBlock)
		case roll < spec.CallFrac+spec.HammockFrac:
			b.genHammock(rng, spec, addBlock, &blocks)
		case roll < spec.CallFrac+spec.HammockFrac+spec.LoopFrac:
			b.genLoop(rng, spec, addBlock, &blocks)
		default:
			// Straight-line run. Kept short: server code carries roughly
			// one conditional branch per 8-12 instructions, which is what
			// limits branch-predictor-directed prefetchers (Fig. 10); an
			// occasional long run models unrolled/straight-line stretches.
			n := rng.Range(3, 14)
			if rng.Bool(0.08) {
				n = rng.Range(20, 48)
			}
			addBlock(n, Terminator{Kind: isa.CTFallthrough})
		}
	}
	// Epilogue.
	addBlock(rng.Range(1, 4), Terminator{Kind: isa.CTReturn})

	// Lay out at the region cursor and assign PCs.
	entry := reg.next
	pc := entry
	for _, blk := range blocks {
		blk.PC = pc
		pc = pc.Add(blk.Instrs)
	}
	// Pad to the next 4-instruction boundary plus a small random gap so
	// function entries land at varied block offsets, as in real images.
	pad := rng.Range(0, 12)
	reg.next = pc.Add(pad)
	reg.info.Funcs++

	return &Function{
		ID:          id,
		Name:        name,
		Entry:       entry,
		Blocks:      blocks,
		Instrs:      instrs,
		Serializing: spec.Serializing,
		Region:      reg.info.Name,
	}
}

// polymorphicSiteProb is the fraction of call sites that are indirect
// with more than one observed target. Server code is predominantly
// monomorphic at any given site; keeping this low preserves the
// recurring miss sequences TIFS relies on, while the remaining
// polymorphic sites provide the divergent-stream cases of Fig. 6.
const polymorphicSiteProb = 0.12

// calleeSkew is the Zipf skew over an indirect site's targets: even
// polymorphic sites are dominated by one hot target.
const calleeSkew = 2.2

// genCallSite emits a block ending in a (possibly indirect) call.
func (b *Builder) genCallSite(rng *xrand.Rand, spec FuncSpec, addBlock func(int, Terminator) int) {
	fanout := 1
	if spec.CalleeFanout > 1 && rng.Bool(polymorphicSiteProb) {
		fanout = rng.Range(2, spec.CalleeFanout)
		if fanout > len(spec.Callees) {
			fanout = len(spec.Callees)
		}
	}
	callees := make([]FuncID, 0, fanout)
	seen := make(map[FuncID]bool, fanout)
	for len(callees) < fanout {
		c := spec.Callees[rng.Intn(len(spec.Callees))]
		if seen[c] {
			// Small candidate pools may not have enough distinct targets.
			if len(seen) >= len(spec.Callees) {
				break
			}
			continue
		}
		seen[c] = true
		callees = append(callees, c)
	}
	term := Terminator{Kind: isa.CTCall, Callees: callees}
	if len(callees) > 1 {
		term.CalleeZipf = xrand.NewZipfTable(len(callees), calleeSkew)
	}
	addBlock(rng.Range(2, 10), term)
}

// genHammock emits cond + then-path + else-path; the join point is the
// next segment generated after it.
func (b *Builder) genHammock(rng *xrand.Rand, spec FuncSpec, addBlock func(int, Terminator) int, blocks *[]*BasicBlock) {
	var prob float64
	if rng.Bool(spec.Unpredictable) {
		prob = 0.35 + 0.3*rng.Float64() // data-dependent, near 50/50
	} else if rng.Bool(0.5) {
		prob = 0.003 + 0.03*rng.Float64() // strongly not-taken
	} else {
		prob = 0.967 + 0.03*rng.Float64() // strongly taken
	}
	// Hammock arms are small and equal-sized, like the paper's highbit()
	// mask-and-add hammocks: both arms usually live inside the same cache
	// block(s), so a direction flip does not change the *block* sequence.
	// A minority of hammocks have unequal arms whose flips do perturb the
	// fetch footprint — the divergence that shortens temporal streams.
	armInstrs := rng.Range(3, 8)
	thenInstrs, elseInstrs := armInstrs, armInstrs
	if rng.Bool(0.2) {
		elseInstrs = rng.Range(3, 20)
	}

	condIdx := addBlock(rng.Range(3, 8), Terminator{Kind: isa.CTBranch, TakenProb: prob})
	// Then-path (not-taken fallthrough): ends jumping over the else-path.
	addBlock(thenInstrs, Terminator{Kind: isa.CTJump})
	thenLast := len(*blocks) - 1
	// Else-path (taken target): falls through into the join.
	elseStart := len(*blocks)
	addBlock(elseInstrs, Terminator{Kind: isa.CTFallthrough})
	join := len(*blocks)
	(*blocks)[condIdx].Term.TakenIdx = elseStart
	(*blocks)[thenLast].Term.TakenIdx = join
}

// genLoop emits an innermost loop: body blocks with a backward branch.
func (b *Builder) genLoop(rng *xrand.Rand, spec FuncSpec, addBlock func(int, Terminator) int, blocks *[]*BasicBlock) {
	bodyBlocks := rng.Range(1, 3)
	trip := rng.Range(2, spec.LoopTripMax)
	contProb := float64(trip) / float64(trip+1)
	start := len(*blocks)
	for i := 0; i < bodyBlocks; i++ {
		if i == bodyBlocks-1 {
			addBlock(rng.Range(3, 12), Terminator{
				Kind:      isa.CTBranch,
				TakenIdx:  start,
				TakenProb: contProb,
				InnerLoop: true,
			})
		} else {
			addBlock(rng.Range(3, 12), Terminator{Kind: isa.CTFallthrough})
		}
	}
}
