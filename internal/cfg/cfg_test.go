package cfg

import (
	"testing"

	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// buildTestProgram makes a small three-layer program: two leaves, two mid
// functions calling leaves, one driver calling mids, one OS handler.
func buildTestProgram(t testing.TB, seed string) (*Program, []FuncID, []FuncID) {
	t.Helper()
	b := NewBuilder(xrand.NewFromString(seed))
	app := b.Region("app", 0x1000_0000)
	os := b.Region("os", 0xf000_0000)

	leaf1 := b.AddFunc(app, "leaf1", FuncSpec{Instrs: 40, HammockFrac: 0.6, Unpredictable: 0.3})
	leaf2 := b.AddFunc(app, "leaf2", FuncSpec{Instrs: 60, LoopFrac: 0.4})
	mid1 := b.AddFunc(app, "mid1", FuncSpec{
		Instrs: 300, HammockFrac: 0.3, LoopFrac: 0.1, CallFrac: 0.3,
		Callees: []FuncID{leaf1, leaf2}, CalleeFanout: 2, Unpredictable: 0.3,
	})
	mid2 := b.AddFunc(app, "mid2", FuncSpec{
		Instrs: 250, HammockFrac: 0.2, CallFrac: 0.3, Callees: []FuncID{leaf1, leaf2},
	})
	drv := b.AddFunc(app, "driver", FuncSpec{
		Instrs: 400, CallFrac: 0.5, Callees: []FuncID{mid1, mid2}, CalleeFanout: 2,
	})
	osHelper := b.AddFunc(os, "os.highbit", FuncSpec{Instrs: 48, HammockFrac: 0.8})
	sched := b.AddFunc(os, "os.sched", FuncSpec{
		Instrs: 200, HammockFrac: 0.3, CallFrac: 0.3,
		Callees: []FuncID{osHelper}, Serializing: true,
	})
	prog := b.MustBuild()
	return prog, []FuncID{drv}, []FuncID{sched}
}

func TestBuilderProducesValidProgram(t *testing.T) {
	prog, _, _ := buildTestProgram(t, "valid")
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(prog.Funcs) != 7 {
		t.Errorf("got %d funcs", len(prog.Funcs))
	}
	if len(prog.Regions) != 2 {
		t.Errorf("got %d regions", len(prog.Regions))
	}
	if prog.Regions[0].Name != "app" || prog.Regions[0].Funcs != 5 {
		t.Errorf("app region = %+v", prog.Regions[0])
	}
}

func TestBuilderDeterministic(t *testing.T) {
	p1, _, _ := buildTestProgram(t, "same")
	p2, _, _ := buildTestProgram(t, "same")
	if len(p1.Funcs) != len(p2.Funcs) {
		t.Fatal("function counts differ")
	}
	for i := range p1.Funcs {
		f1, f2 := p1.Funcs[i], p2.Funcs[i]
		if f1.Entry != f2.Entry || f1.Instrs != f2.Instrs || len(f1.Blocks) != len(f2.Blocks) {
			t.Fatalf("func %d differs: %+v vs %+v", i, f1, f2)
		}
		for j := range f1.Blocks {
			b1, b2 := f1.Blocks[j], f2.Blocks[j]
			if b1.PC != b2.PC || b1.Instrs != b2.Instrs || b1.Term.Kind != b2.Term.Kind {
				t.Fatalf("func %d block %d differs", i, j)
			}
		}
	}
}

func TestBuilderSeedsDiffer(t *testing.T) {
	p1, _, _ := buildTestProgram(t, "seed-a")
	p2, _, _ := buildTestProgram(t, "seed-b")
	same := true
	if len(p1.Funcs) != len(p2.Funcs) {
		same = false
	} else {
		for i := range p1.Funcs {
			if p1.Funcs[i].Instrs != p2.Funcs[i].Instrs {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced structurally identical programs")
	}
}

func TestFunctionsAreContiguousAndDisjoint(t *testing.T) {
	prog, _, _ := buildTestProgram(t, "layout")
	var prevEnd isa.Addr
	var prevRegion string
	for _, f := range prog.Funcs {
		if f.Region == prevRegion && f.Entry < prevEnd {
			t.Errorf("function %s at %v overlaps previous end %v", f.Name, f.Entry, prevEnd)
		}
		pc := f.Entry
		for _, b := range f.Blocks {
			if b.PC != pc {
				t.Fatalf("%s: block at %v, want %v", f.Name, b.PC, pc)
			}
			pc = pc.Add(b.Instrs)
		}
		prevEnd = pc
		prevRegion = f.Region
	}
}

func TestFunctionSizeApproximatesSpec(t *testing.T) {
	b := NewBuilder(xrand.NewFromString("size"))
	app := b.Region("app", 0x1000_0000)
	id := b.AddFunc(app, "f", FuncSpec{Instrs: 1000, HammockFrac: 0.3, LoopFrac: 0.1})
	prog := b.MustBuild()
	f := prog.Func(id)
	// Generation overshoots by at most one segment (~tens of instructions).
	if f.Instrs < 1000 || f.Instrs > 1200 {
		t.Errorf("Instrs = %d, want ~1000", f.Instrs)
	}
	if f.SizeBytes() != f.Instrs*4 {
		t.Errorf("SizeBytes = %d", f.SizeBytes())
	}
}

func TestProgramTotals(t *testing.T) {
	prog, _, _ := buildTestProgram(t, "totals")
	total := 0
	for _, f := range prog.Funcs {
		total += f.SizeBytes()
	}
	if prog.TotalBytes() != total {
		t.Errorf("TotalBytes = %d, want %d", prog.TotalBytes(), total)
	}
	blocks := prog.TotalBlocks()
	// Each 64-byte block holds 16 instructions; padding means block count
	// is at least total/64.
	if blocks < total/64 {
		t.Errorf("TotalBlocks = %d, too small for %d bytes", blocks, total)
	}
}

func TestValidateCatchesBrokenPrograms(t *testing.T) {
	mk := func() *Program {
		f := &Function{
			ID: 0, Name: "f", Entry: 0x100,
			Blocks: []*BasicBlock{
				{PC: 0x100, Instrs: 4, Term: Terminator{Kind: isa.CTFallthrough}},
				{PC: 0x110, Instrs: 2, Term: Terminator{Kind: isa.CTReturn}},
			},
			Instrs: 6,
		}
		return &Program{Funcs: []*Function{f}}
	}

	if err := mk().Validate(); err != nil {
		t.Fatalf("baseline should validate: %v", err)
	}

	p := mk()
	p.Funcs[0].Blocks[0].Term = Terminator{Kind: isa.CTBranch, TakenIdx: 5}
	if p.Validate() == nil {
		t.Error("out-of-range branch target not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[1].PC = 0x200
	if p.Validate() == nil {
		t.Error("non-contiguous layout not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[1].Term = Terminator{Kind: isa.CTCall, Callees: []FuncID{0}}
	if p.Validate() == nil {
		t.Error("trailing call not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[1].Term = Terminator{Kind: isa.CTFallthrough}
	if p.Validate() == nil {
		t.Error("fall-off-the-end not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[0].Instrs = 0
	if p.Validate() == nil {
		t.Error("empty block not caught")
	}

	p = mk()
	p.Funcs[0].Entry = 0x40
	if p.Validate() == nil {
		t.Error("entry mismatch not caught")
	}

	p = &Program{Funcs: []*Function{{Name: "empty"}}}
	if p.Validate() == nil {
		t.Error("function with no blocks not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[0].Term = Terminator{Kind: isa.CTCall}
	if p.Validate() == nil {
		t.Error("call without callees not caught")
	}

	p = mk()
	p.Funcs[0].Blocks[0].Term = Terminator{Kind: isa.CTBranch, TakenIdx: 1, TakenProb: 1.5}
	if p.Validate() == nil {
		t.Error("invalid TakenProb not caught")
	}
}

func TestBuildTwicePanicsOrErrors(t *testing.T) {
	b := NewBuilder(xrand.NewFromString("twice"))
	app := b.Region("app", 0x1000)
	b.AddFunc(app, "f", FuncSpec{Instrs: 20})
	b.MustBuild()
	if _, err := b.Build(); err == nil {
		t.Error("second Build should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("AddFunc after Build should panic")
		}
	}()
	b.AddFunc(app, "g", FuncSpec{Instrs: 20})
}
