// Speculative core-window execution: parallelize the order-sensitive
// merge loop itself with a predict/verify/commit protocol, keeping
// output bytes identical at every setting.
//
// # Why the merge loop resists parallelism
//
// The intra tier (intra.go) offloads the one stage that touches no
// simulated state — event generation. Everything else is serialized by
// the shared uncore: every core step may occupy an L2 bank, fill the
// shared cache, or touch the TIFS Index Table, so the byte-identity
// guarantee pins the entire (cycle, core) interleaving produced by the
// min-heap scheduler. No partitioning of that loop preserves the bytes.
//
// # The speculation model
//
// What CAN run ahead is the whole machine: a speculation worker executes
// windows of specWindowSteps scheduler steps on the Runner's live
// machine state, recording the (clock, core) decision it made at each
// step. The merge thread — the owner of the authoritative schedule —
// does not re-execute those steps; it replays the recorded decisions
// against a detached clone of the scheduling heap, checking at every
// step that the recorded core is exactly the one the min-heap would
// pick. A window whose record matches is committed by adoption: the
// machine state the worker already produced IS the serial machine state,
// because the worker ran the same deterministic step function in the
// verified order. A window that diverges is rolled back: the machine is
// restored from the last verified checkpoint, event delivery is rewound
// through recording tees, and the rolled-back span is re-executed
// serially.
//
// Because the worker runs the same deterministic code on the same
// machine, organic divergence cannot occur — the predictor here is an
// exact replica, which is what makes commit-by-adoption byte-safe. The
// rollback path is therefore exercised by deterministic fault injection
// (Config.SpecChaos corrupts every n-th recorded window — the record,
// never the machine), and guarded in production by a fallback latch:
// if more than a quarter of windows roll back, speculation latches off
// and the run finishes serially, bounding the worst case at roughly
// serial cost plus the abandoned windows.
//
// # Checkpoint discipline
//
// The worker checkpoints the machine into the single checkpoint slot
// every specCheckpointWindows windows, gated so it never checkpoints
// past what the merge thread has verified: before saving at window
// boundary w, it waits until verified >= w. The gate makes the restore
// point deterministic — a divergence at window dv always restores the
// checkpoint at the highest multiple of specCheckpointWindows at or
// below dv, because the worker provably saved that checkpoint (it
// passed that gate to produce window dv) and provably saved no later
// one (the merge thread stopped verifying at dv).
//
// After a stop request the worker may finish producing one junk window
// from post-divergence state; that is harmless — the merge thread
// drains and discards it, the restore overwrites every machine
// mutation, and events the worker over-pulled remain buffered in the
// tees as valid future events.
//
// Everything — record buffers, tees, checkpoint, verifier heap — is
// pooled in the Runner, so a warmed speculative run performs zero heap
// allocations at steady state (rollbacks may allocate modestly while
// snapshots grow to the run's high-water marks).
package sim

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"

	"tifs/internal/core"
	"tifs/internal/cpu"
	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
)

const (
	// specWindowSteps is one speculation window: the unit of
	// verification and commit. Large enough that verification (a few ns
	// per record) amortizes channel handoffs to noise; small enough to
	// bound the work discarded on a forced mispredict.
	specWindowSteps = 4096
	// specCheckpointWindows is the checkpoint cadence in windows. The
	// dominant checkpoint cost is copying the shared L2 ways (~3 MB at
	// Table II geometry), so checkpoints are deliberately sparse: one
	// per 16 windows keeps the amortized cost well under the merge
	// thread's verification work while bounding a rollback's serial
	// re-execution to 16 windows.
	specCheckpointWindows = 16
	// specBuffers sizes the record-buffer pool: enough for the worker
	// to run a full checkpoint interval ahead plus handoff slack, so
	// the pool itself never stalls speculation before the gate does.
	specBuffers = specCheckpointWindows + 2
	// specLatchMinRollbacks and specLatchDenom define the fallback
	// latch: once at least specLatchMinRollbacks windows have rolled
	// back AND rollbacks exceed 1/specLatchDenom of all windows, the
	// run latches speculation off and finishes serially.
	specLatchMinRollbacks = 4
	specLatchDenom        = 4
)

// SpecStats reports the speculative tier's commit/rollback counters for
// one run. All fields are derived from merge-thread decisions on the
// deterministic schedule, so they are themselves deterministic for a
// given (workload, config) — timing-dependent measures live outside the
// Result (see Runner.SpecMergeBusy).
type SpecStats struct {
	// Windows counts every window the merge thread judged:
	// Committed + Rollbacks.
	Windows uint64
	// Committed counts windows whose recorded interleaving matched the
	// authoritative schedule and were adopted without re-execution.
	Committed uint64
	// Rollbacks counts mispredicted windows (diverging record), each of
	// which discarded the speculated state and re-executed serially.
	Rollbacks uint64
	// StepsCommitted and StepsReexecuted count scheduler steps adopted
	// from speculation versus re-executed serially after rollbacks.
	StepsCommitted  uint64
	StepsReexecuted uint64
	// Latched reports that the rollback rate tripped the fallback latch
	// and the run finished with the serial merge loop.
	Latched bool
}

// specRec is one recorded scheduler decision: which core the worker
// stepped and the clock that step advanced it to. done marks a pop of
// an exhausted core (clock is unused).
type specRec struct {
	clock uint64
	core  int32
	done  bool
}

// specWindow is one pooled record buffer, handed worker->merge on the
// recs channel and recycled on free.
type specWindow struct {
	recs []specRec
}

// specTask is one speculation session's assignment, sent to the parked
// worker goroutine. Like intraTask it reaches the worker only through
// the channel, and the worker drops it when the session ends.
type specTask struct {
	r            *Runner
	kind         string // resolved mechanism kind (checkpoint selector)
	nCores       int
	warmupEvents uint64
	chaos        int
	// base is the run-global index of this session's first window
	// (stats.Windows at session start). It makes chaos injection
	// deterministic: window corruption is keyed on the global index, so
	// junk windows produced after a stop request — whose count is
	// timing-dependent — can never shift the corruption cadence.
	base uint64
}

// machineSnap checkpoints the full simulated machine: uncore, cores,
// the active prefetch mechanism, the scheduling heap, and the warmup
// bookkeeping. Buffers are reused across saves.
type machineSnap struct {
	un    uncore.Snapshot
	cores []cpu.Snapshot
	tifs  core.Snapshot
	fdip  []prefetch.FDIPSnapshot
	disc  []prefetch.DiscontinuitySnapshot
	perf  []prefetch.PerfectSnapshot
	prob  []prefetch.ProbabilisticSnapshot

	heap        keyHeap
	warmStats   []cpu.Stats
	warmPf      []prefetch.Stats
	warmed      []bool
	warmedCount int
	warmTraffic uncore.Traffic
}

// specState is the Runner's pooled speculative-tier machinery.
type specState struct {
	// mu/cond implement the checkpoint gate: the worker waits until the
	// merge thread has verified up to its next checkpoint boundary (or
	// a stop is requested) before overwriting the checkpoint slot.
	mu       sync.Mutex
	cond     *sync.Cond
	verified int
	stopped  bool

	// work parks the persistent worker goroutine between sessions; it
	// holds only this channel while parked (never the Runner), so the
	// finalizer backstop can fire. recs/free circulate the record
	// buffers; done signals session exit.
	work chan *specTask
	recs chan *specWindow
	free chan *specWindow
	done chan struct{}
	bufs []*specWindow
	task specTask

	// tees wrap the per-core event sources so rollbacks can rewind
	// event delivery; srcs is the []isa.EventSource view handed to the
	// cores.
	tees []*eventTee
	srcs []isa.EventSource

	cp    machineSnap // single checkpoint slot (see package comment)
	vheap keyHeap     // merge-side verifier clone of the scheduling heap

	stats     SpecStats
	mergeBusy time.Duration
}

// SpecMergeBusy returns how long the merge thread spent working (as
// opposed to waiting on the speculation worker) during the last
// speculative run: verification, rollback restores, and serial
// re-execution. It is the honest single-machine speedup metric — the
// serial merge loop's whole runtime is "busy" — and is timing-dependent,
// which is why it lives on the Runner rather than in Result.
func (r *Runner) SpecMergeBusy() time.Duration { return r.spec.mergeBusy }

// specSources wraps this run's per-core sources (workload executors or
// intra pipes alike) in pooled recording tees.
func (r *Runner) specSources(sources []isa.EventSource, nCores int) []isa.EventSource {
	s := &r.spec
	for len(s.tees) < nCores {
		s.tees = append(s.tees, &eventTee{})
	}
	if cap(s.srcs) < nCores {
		s.srcs = make([]isa.EventSource, nCores)
	}
	s.srcs = s.srcs[:nCores]
	for i := 0; i < nCores; i++ {
		t := s.tees[i]
		t.reset(sources[i])
		s.srcs[i] = t
	}
	return s.srcs
}

// ensureSpec lazily builds the pooled channels, buffers, and worker.
func (r *Runner) ensureSpec() {
	s := &r.spec
	if s.cond == nil {
		s.cond = sync.NewCond(&s.mu)
		s.recs = make(chan *specWindow, specBuffers)
		s.free = make(chan *specWindow, specBuffers)
		s.done = make(chan struct{}, 1)
		for i := 0; i < specBuffers; i++ {
			s.bufs = append(s.bufs, &specWindow{recs: make([]specRec, 0, specWindowSteps)})
		}
	}
	if s.work == nil {
		s.work = make(chan *specTask)
		r.armFinalizer()
		go specWorker(s.work)
	}
}

// specWorker is the persistent speculation worker: it parks on the task
// channel between sessions and exits when the channel closes
// (Runner.Close, or its finalizer backstop). The goroutine carries a
// pprof label so profiles attribute run-ahead execution to this tier.
func specWorker(work chan *specTask) {
	pprof.Do(context.Background(), pprof.Labels("tifs-tier", "spec-worker"), func(context.Context) {
		for t := range work {
			t.run()
		}
	})
}

// runSpeculative drives the speculative merge to completion: sessions
// of speculate/verify/commit, serial re-execution after each rollback,
// and a final serial tail if the fallback latch trips.
func (r *Runner) runSpeculative(kind string, nCores int, warmupEvents uint64, chaos int) {
	r.ensureSpec()
	s := &r.spec
	s.stats = SpecStats{}
	s.mergeBusy = 0
	for r.heap.len() > 0 {
		if r.specSession(kind, nCores, warmupEvents, chaos) {
			return
		}
		// Rolled back. Latch speculation off when mispredicts dominate:
		// past this point re-speculating costs more than it saves.
		if s.stats.Rollbacks >= specLatchMinRollbacks &&
			s.stats.Rollbacks*specLatchDenom > s.stats.Windows {
			s.stats.Latched = true
			t0 := time.Now()
			r.mergeSerial(warmupEvents, nCores)
			s.mergeBusy += time.Since(t0)
			return
		}
	}
}

// specSession runs one speculation session: checkpoint, launch the
// worker, verify windows as they arrive, and either commit through to
// machine exhaustion (returns true) or roll back after a divergence
// (returns false with the machine restored to the deterministic
// re-execution point).
func (r *Runner) specSession(kind string, nCores int, warmupEvents uint64, chaos int) bool {
	s := &r.spec
	t0 := time.Now()
	// Session-start checkpoint doubles as the window-0 restore point;
	// the verifier replays against a clone of the live heap.
	r.saveMachine(&s.cp, kind, nCores)
	r.heap.saveInto(&s.vheap)
	s.mu.Lock()
	s.verified = 0
	s.stopped = false
	s.mu.Unlock()
	s.refillBuffers()
	s.mergeBusy += time.Since(t0)

	s.task = specTask{
		r: r, kind: kind, nCores: nCores,
		warmupEvents: warmupEvents, chaos: chaos,
		base: s.stats.Windows,
	}
	s.work <- &s.task

	win := 0
	for {
		w := <-s.recs
		t1 := time.Now()
		n := len(w.recs)
		ok := s.verifyWindow(w)
		s.free <- w
		if !ok {
			// Divergence at session-local window win: stop and drain
			// the worker, restore the deterministic checkpoint, rewind
			// event delivery, and re-execute the span serially.
			s.haltWorker()
			s.stats.Rollbacks++
			s.stats.Windows++
			cb := (win / specCheckpointWindows) * specCheckpointWindows
			r.restoreMachine(&s.cp, kind, nCores)
			target := uint64(win-cb)*specWindowSteps + uint64(n)
			s.stats.StepsReexecuted += r.mergeSerialN(target, warmupEvents, nCores)
			s.mergeBusy += time.Since(t1)
			return false
		}
		s.stats.Committed++
		s.stats.Windows++
		s.stats.StepsCommitted += uint64(n)
		s.mu.Lock()
		s.verified++
		s.cond.Signal()
		s.mu.Unlock()
		s.mergeBusy += time.Since(t1)
		win++
		if n < specWindowSteps {
			// A short window means the worker ran the machine to
			// exhaustion and exited; with every window verified, the
			// live state IS the serial result.
			<-s.done
			return true
		}
	}
}

// verifyWindow replays one recorded window against the verifier heap,
// checking each recorded decision is exactly the authoritative
// min-heap's pick. On a match the verifier advances with the recorded
// clock (the worker's step is the same deterministic function, so the
// clock is the schedule); on a mismatch the window is a mispredict.
func (s *specState) verifyWindow(w *specWindow) bool {
	v := &s.vheap
	for i := range w.recs {
		rec := &w.recs[i]
		if v.len() == 0 || int32(v.min()) != rec.core {
			return false
		}
		if rec.done {
			v.pop()
		} else {
			v.fixKey(rec.clock)
		}
	}
	return true
}

// haltWorker requests a stop, then drains record buffers until the
// worker signals exit. Draining is what unblocks a worker parked on the
// free list; any windows drained here are post-divergence junk whose
// machine effects the caller's restore erases.
func (s *specState) haltWorker() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	for {
		select {
		case w := <-s.recs:
			s.free <- w
		case <-s.done:
			return
		}
	}
}

// refillBuffers returns every pooled record buffer to the free list.
// Both channels are empty between sessions in every exit path; the
// drain is a cheap invariant guard.
func (s *specState) refillBuffers() {
	for {
		select {
		case <-s.recs:
		case <-s.free:
		default:
			for _, w := range s.bufs {
				s.free <- w
			}
			return
		}
	}
}

// stopRequested reports whether the merge thread asked the session to
// end.
func (s *specState) stopRequested() bool {
	s.mu.Lock()
	v := s.stopped
	s.mu.Unlock()
	return v
}

// gateWait blocks until the merge thread has verified every window
// before target, or a stop is requested. Returns false on stop.
func (s *specState) gateWait(target int) bool {
	s.mu.Lock()
	for s.verified < target && !s.stopped {
		s.cond.Wait()
	}
	ok := !s.stopped
	s.mu.Unlock()
	return ok
}

// run executes one speculation session on the worker goroutine: windows
// of scheduler steps on the live machine, each recorded and published
// to the merge thread, with gated checkpoints every
// specCheckpointWindows windows. It exits after the machine is
// exhausted (final short window) or on a stop request.
func (t *specTask) run() {
	r := t.r
	s := &r.spec
	defer func() { s.done <- struct{}{} }()
	h := &r.heap
	cores := r.cores
	for win := 0; ; win++ {
		if win > 0 && win%specCheckpointWindows == 0 {
			if !s.gateWait(win) {
				return
			}
			r.saveMachine(&s.cp, t.kind, t.nCores)
		} else if s.stopRequested() {
			return
		}
		w := <-s.free
		recs := w.recs[:0]
		for len(recs) < specWindowSteps && h.len() > 0 {
			next := h.min()
			if !cores[next].Step() {
				h.pop()
				recs = append(recs, specRec{core: int32(next), done: true})
				continue
			}
			h.fix()
			r.noteWarm(next, t.warmupEvents, t.nCores)
			recs = append(recs, specRec{clock: cores[next].Cycle(), core: int32(next)})
		}
		n := len(recs)
		// Deterministic fault injection: corrupt the RECORD of every
		// chaos-th window (globally indexed — see specTask.base), never
		// the machine. With more than one core the swapped core index
		// cannot match the authoritative pick, so the merge thread is
		// guaranteed to diagnose a mispredict and roll back.
		if t.chaos > 0 && (t.base+uint64(win)+1)%uint64(t.chaos) == 0 && n >= 2 && t.nCores > 1 {
			recs[n/2].core = (recs[n/2].core + 1) % int32(t.nCores)
		}
		w.recs = recs
		s.recs <- w
		if n < specWindowSteps {
			return
		}
	}
}

// saveMachine checkpoints the full simulated machine into s, reusing
// s's buffers. The tees are trimmed at the same instant: everything
// served up to this point can never be replayed (no checkpoint older
// than this one survives), while recorded-but-unserved events are kept
// as the checkpoint's future.
func (r *Runner) saveMachine(s *machineSnap, kind string, nCores int) {
	r.un.Save(&s.un)
	if cap(s.cores) < nCores {
		s.cores = make([]cpu.Snapshot, nCores)
	}
	s.cores = s.cores[:nCores]
	for i := 0; i < nCores; i++ {
		r.cores[i].Save(&s.cores[i])
	}
	switch kind {
	case KindTIFS:
		r.tifs.Save(&s.tifs)
	case KindFDIP:
		s.fdip = resizeSnaps(s.fdip, nCores)
		for i := range s.fdip {
			r.fdip[i].Save(&s.fdip[i])
		}
	case KindDiscontinuity:
		s.disc = resizeSnaps(s.disc, nCores)
		for i := range s.disc {
			r.disc[i].Save(&s.disc[i])
		}
	case KindPerfect:
		s.perf = resizeSnaps(s.perf, nCores)
		for i := range s.perf {
			r.perf[i].Save(&s.perf[i])
		}
	case KindProb:
		s.prob = resizeSnaps(s.prob, nCores)
		for i := range s.prob {
			r.prob[i].Save(&s.prob[i])
		}
	}
	r.heap.saveInto(&s.heap)
	s.warmStats = append(s.warmStats[:0], r.warmStats...)
	s.warmPf = append(s.warmPf[:0], r.warmPf...)
	s.warmed = append(s.warmed[:0], r.warmed...)
	s.warmedCount = r.warmedCount
	s.warmTraffic = r.warmTraffic
	for i := 0; i < nCores; i++ {
		r.spec.tees[i].trim()
	}
}

// restoreMachine rewinds the machine to the checkpoint and rewinds the
// tees so every event served since the save replays in order.
func (r *Runner) restoreMachine(s *machineSnap, kind string, nCores int) {
	r.un.Restore(&s.un)
	for i := 0; i < nCores; i++ {
		r.cores[i].Restore(&s.cores[i])
	}
	switch kind {
	case KindTIFS:
		r.tifs.Restore(&s.tifs)
	case KindFDIP:
		for i := range s.fdip {
			r.fdip[i].Restore(&s.fdip[i])
		}
	case KindDiscontinuity:
		for i := range s.disc {
			r.disc[i].Restore(&s.disc[i])
		}
	case KindPerfect:
		for i := range s.perf {
			r.perf[i].Restore(&s.perf[i])
		}
	case KindProb:
		for i := range s.prob {
			r.prob[i].Restore(&s.prob[i])
		}
	}
	s.heap.saveInto(&r.heap.keyHeap)
	copy(r.warmStats, s.warmStats)
	copy(r.warmPf, s.warmPf)
	copy(r.warmed, s.warmed)
	r.warmedCount = s.warmedCount
	r.warmTraffic = s.warmTraffic
	for i := 0; i < nCores; i++ {
		r.spec.tees[i].rewind()
	}
}

// resizeSnaps returns s with length n, reusing its backing array (and
// the per-element buffers it holds) when possible.
func resizeSnaps[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// eventTee wraps a core's event source, recording every served event so
// delivery can rewind to the last checkpoint. Invariant: buf[:pos] are
// events served since the last trim; buf[pos:] are recorded but
// unserved (non-empty only while replaying after a rewind, when the
// buffer holds events a discarded speculation had already pulled — they
// remain valid future events because the underlying stream is
// deterministic and append-only).
type eventTee struct {
	src   isa.EventSource
	batch isa.BatchSource // non-nil when src supports batch refills
	buf   []isa.BlockEvent
	pos   int
}

// reset binds the tee to a new run's source with an empty record.
func (t *eventTee) reset(src isa.EventSource) {
	t.src = src
	t.batch, _ = src.(isa.BatchSource)
	t.buf = t.buf[:0]
	t.pos = 0
}

// rewind replays the record from the start (rollback to the trim
// point).
func (t *eventTee) rewind() { t.pos = 0 }

// trim drops the replayed prefix at a checkpoint, keeping any unserved
// tail: those events are part of the checkpoint's future.
func (t *eventTee) trim() {
	n := copy(t.buf, t.buf[t.pos:])
	t.buf = t.buf[:n]
	t.pos = 0
}

// Next implements isa.EventSource: replay the record first, then pull
// fresh events, recording them.
func (t *eventTee) Next() (isa.BlockEvent, bool) {
	if t.pos < len(t.buf) {
		ev := t.buf[t.pos]
		t.pos++
		return ev, true
	}
	ev, ok := t.src.Next()
	if !ok {
		return isa.BlockEvent{}, false
	}
	t.buf = append(t.buf, ev)
	t.pos++
	return ev, true
}

// NextBatch implements isa.BatchSource with the same replay-then-pull
// discipline, short only when the underlying stream is exhausted.
func (t *eventTee) NextBatch(dst []isa.BlockEvent) int {
	n := 0
	if t.pos < len(t.buf) {
		n = copy(dst, t.buf[t.pos:])
		t.pos += n
		if n == len(dst) {
			return n
		}
	}
	var fresh int
	if t.batch != nil {
		fresh = t.batch.NextBatch(dst[n:])
	} else {
		for n+fresh < len(dst) {
			ev, ok := t.src.Next()
			if !ok {
				break
			}
			dst[n+fresh] = ev
			fresh++
		}
	}
	t.buf = append(t.buf, dst[n:n+fresh]...)
	t.pos += fresh
	return n + fresh
}
