package sim

import (
	"reflect"
	"testing"

	"tifs/internal/core"
	"tifs/internal/uncore"
	"tifs/internal/workload"
)

func run(t testing.TB, mech Mechanism) Result {
	t.Helper()
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	return Run(spec, workload.ScaleSmall, Config{
		EventsPerCore: 60_000,
		WarmupEvents:  20_000,
		Mechanism:     mech,
	})
}

func TestBaselineRuns(t *testing.T) {
	r := run(t, Baseline())
	if r.Cycles == 0 || r.TotalInstrs == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if len(r.PerCore) != 4 {
		t.Errorf("cores = %d", len(r.PerCore))
	}
	for i, s := range r.PerCore {
		if s.Events != 60_000 {
			t.Errorf("core %d measured %d events, want 60000", i, s.Events)
		}
	}
	if r.Coverage() != 0 {
		t.Error("baseline should have no prefetch coverage")
	}
	if r.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if r.Mechanism != "next-line" {
		t.Errorf("mechanism = %q", r.Mechanism)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1 := run(t, TIFS(core.DedicatedConfig()))
	r2 := run(t, TIFS(core.DedicatedConfig()))
	if r1.Cycles != r2.Cycles || r1.TotalInstrs != r2.TotalInstrs {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.TotalInstrs, r2.Cycles, r2.TotalInstrs)
	}
}

func TestFig13Ordering(t *testing.T) {
	base := run(t, Baseline())
	fdip := run(t, FDIP())
	tifs := run(t, TIFS(core.DedicatedConfig()))
	perfect := run(t, Perfect())

	spFDIP := fdip.SpeedupOver(base)
	spTIFS := tifs.SpeedupOver(base)
	spPerfect := perfect.SpeedupOver(base)

	// The paper's headline ordering on OLTP: next-line < FDIP < TIFS <
	// perfect (Fig. 13).
	if spFDIP < 0.99 {
		t.Errorf("FDIP slowed the system: %.3f", spFDIP)
	}
	if spTIFS <= spFDIP-0.005 {
		t.Errorf("TIFS (%.3f) should beat FDIP (%.3f) on OLTP", spTIFS, spFDIP)
	}
	if spPerfect < spTIFS-0.005 {
		t.Errorf("perfect (%.3f) below TIFS (%.3f)", spPerfect, spTIFS)
	}
	if spTIFS < 1.005 {
		t.Errorf("TIFS speedup %.3f, expected measurable gain on OLTP", spTIFS)
	}
}

func TestTIFSStatsExposed(t *testing.T) {
	r := run(t, TIFS(core.VirtualizedConfig()))
	if r.TIFS == nil {
		t.Fatal("TIFS stats missing")
	}
	if r.TIFS.StreamsAllocated == 0 || r.TIFS.LoggedMisses == 0 {
		t.Errorf("TIFS stats empty: %+v", r.TIFS)
	}
	if r.Traffic.Count(uncore.TrafficIMLRead) == 0 {
		t.Error("virtualized run produced no IML read traffic")
	}
	if r.Prefetch.MetaWrites == 0 {
		t.Error("no metadata writes")
	}
}

func TestDedicatedHasNoIMLTraffic(t *testing.T) {
	r := run(t, TIFS(core.DedicatedConfig()))
	if r.Traffic.Count(uncore.TrafficIMLRead) != 0 || r.Traffic.Count(uncore.TrafficIMLWrite) != 0 {
		t.Error("dedicated IML issued L2 metadata traffic")
	}
}

func TestProbabilisticCoverageScales(t *testing.T) {
	low := run(t, Probabilistic(0.2))
	high := run(t, Probabilistic(0.9))
	if high.Coverage() <= low.Coverage() {
		t.Errorf("coverage not increasing: %.2f vs %.2f", low.Coverage(), high.Coverage())
	}
	if high.Cycles >= low.Cycles {
		t.Errorf("higher coverage should be faster: %d vs %d", high.Cycles, low.Cycles)
	}
}

func TestDiscontinuityRuns(t *testing.T) {
	base := run(t, Baseline())
	r := run(t, Discontinuity())
	if r.Coverage() == 0 {
		t.Error("discontinuity predictor covered nothing")
	}
	if sp := r.SpeedupOver(base); sp < 0.98 {
		t.Errorf("discontinuity predictor slowed the system: %.3f", sp)
	}
}

func TestMechanismNames(t *testing.T) {
	cases := map[string]Mechanism{
		"next-line":        Baseline(),
		"FDIP":             FDIP(),
		"TIFS-unbounded":   TIFS(core.UnboundedConfig()),
		"TIFS-dedicated":   TIFS(core.DedicatedConfig()),
		"TIFS-virtualized": TIFS(core.VirtualizedConfig()),
		"perfect":          Perfect(),
		"prob-40%":         Probabilistic(0.4),
		"discontinuity":    Discontinuity(),
	}
	for want, m := range cases {
		if got := m.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// testMechanisms is every mechanism kind, for reuse-correctness checks.
func testMechanisms() map[string]Mechanism {
	return map[string]Mechanism{
		"baseline":         Baseline(),
		"fdip":             FDIP(),
		"discontinuity":    Discontinuity(),
		"tifs-unbounded":   TIFS(core.UnboundedConfig()),
		"tifs-dedicated":   TIFS(core.DedicatedConfig()),
		"tifs-virtualized": TIFS(core.VirtualizedConfig()),
		"perfect":          Perfect(),
		"probabilistic":    Probabilistic(0.6),
	}
}

// TestRunnerMatchesFreshRun reruns every mechanism through one shared
// Runner — including mechanism switches and a repeat of the first
// mechanism after all the others have dirtied the pooled state — and
// requires bit-identical results to fresh, unpooled runs.
func TestRunnerMatchesFreshRun(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	web, ok := workload.ByName("Web-Zeus")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := func(m Mechanism) Config {
		return Config{EventsPerCore: 20_000, WarmupEvents: 5_000, Mechanism: m}
	}
	r := NewRunner()
	for name, m := range testMechanisms() {
		for _, s := range []workload.Spec{spec, web} {
			fresh := Run(s, workload.ScaleSmall, cfg(m))
			pooled := r.Run(s, workload.ScaleSmall, cfg(m))
			// Compare via deep copies: pooled results alias runner buffers.
			if !resultsEqual(fresh, pooled) {
				t.Errorf("%s/%s: pooled run diverged from fresh run\nfresh:  %+v\npooled: %+v",
					name, s.Name, fresh, pooled)
			}
		}
	}
	// Re-run the baseline after the pool has served every other shape.
	fresh := Run(spec, workload.ScaleSmall, cfg(Baseline()))
	pooled := r.Run(spec, workload.ScaleSmall, cfg(Baseline()))
	if !resultsEqual(fresh, pooled) {
		t.Error("baseline diverged after pooled mechanism churn")
	}
}

// resultsEqual compares two results by value, following the TIFS
// pointer.
func resultsEqual(a, b Result) bool {
	ta, tb := a.TIFS, b.TIFS
	a.TIFS, b.TIFS = nil, nil
	if !reflect.DeepEqual(a, b) {
		return false
	}
	if (ta == nil) != (tb == nil) {
		return false
	}
	return ta == nil || *ta == *tb
}

// TestRunnerDistinguishesModifiedSpecs: the workload cache must key on
// the whole spec, not just its name — a same-named spec with any field
// changed is a different workload.
func TestRunnerDistinguishesModifiedSpecs(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	mod := spec
	mod.ThreadsPerCore = 2
	mod.TrapMeanInstrs = 100_000
	cfg := Config{EventsPerCore: 10_000, WarmupEvents: 2_000, Mechanism: Baseline()}

	r := NewRunner()
	origCycles := r.Run(spec, workload.ScaleSmall, cfg).Cycles
	fresh := Run(mod, workload.ScaleSmall, cfg)
	pooled := r.Run(mod, workload.ScaleSmall, cfg)
	if !resultsEqual(fresh, pooled) {
		t.Errorf("pooled run of the modified spec diverged from a fresh run:\nfresh  %+v\npooled %+v", fresh, pooled)
	}
	if pooled.Cycles == origCycles {
		t.Error("modified spec produced the original spec's cycles; workload cache ignored the change")
	}
}

// TestRunnerSteadyStateZeroAlloc verifies the acceptance criterion of
// the pooled path: once warmed, a repeated simulation run performs zero
// heap allocations for the paper's headline mechanisms.
func TestRunnerSteadyStateZeroAlloc(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, tc := range []struct {
		name string
		mech Mechanism
	}{
		{"baseline", Baseline()},
		{"tifs-dedicated", TIFS(core.DedicatedConfig())},
		{"tifs-virtualized", TIFS(core.VirtualizedConfig())},
		{"tifs-unbounded", TIFS(core.UnboundedConfig())},
		{"perfect", Perfect()},
	} {
		// Neither parallel tier may reintroduce per-run allocations: the
		// intra rings and producers, and the speculative tier's record
		// buffers, tees, checkpoint, and verifier heap are all pooled in
		// the Runner. (Speculative runs here are chaos-free; a rollback
		// may allocate while snapshots grow to their high-water marks.)
		for _, intra := range []int{0, 4} {
			for _, speculative := range []int{0, 2} {
				name := tc.name
				if intra > 0 {
					name += "/intra-4"
				}
				if speculative > 0 {
					name += "/spec"
				}
				t.Run(name, func(t *testing.T) {
					r := NewRunner()
					cfg := Config{
						EventsPerCore:    12_000,
						WarmupEvents:     3_000,
						Mechanism:        tc.mech,
						IntraParallelism: intra,
						Speculative:      speculative,
					}
					r.Run(spec, workload.ScaleSmall, cfg) // reach steady-state capacity
					allocs := testing.AllocsPerRun(2, func() {
						r.Run(spec, workload.ScaleSmall, cfg)
					})
					if allocs != 0 {
						t.Errorf("steady-state run allocated %.1f times, want 0", allocs)
					}
				})
			}
		}
	}
}

func TestUnknownMechanismPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mechanism should panic")
		}
	}()
	spec, _ := workload.ByName("Web-Zeus")
	Run(spec, workload.ScaleSmall, Config{
		EventsPerCore: 1000,
		Mechanism:     Mechanism{Kind: "bogus"},
	})
}
