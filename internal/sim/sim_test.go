package sim

import (
	"testing"

	"tifs/internal/core"
	"tifs/internal/uncore"
	"tifs/internal/workload"
)

func run(t testing.TB, mech Mechanism) Result {
	t.Helper()
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	return Run(spec, workload.ScaleSmall, Config{
		EventsPerCore: 60_000,
		WarmupEvents:  20_000,
		Mechanism:     mech,
	})
}

func TestBaselineRuns(t *testing.T) {
	r := run(t, Baseline())
	if r.Cycles == 0 || r.TotalInstrs == 0 {
		t.Fatalf("empty result: %+v", r)
	}
	if len(r.PerCore) != 4 {
		t.Errorf("cores = %d", len(r.PerCore))
	}
	for i, s := range r.PerCore {
		if s.Events != 60_000 {
			t.Errorf("core %d measured %d events, want 60000", i, s.Events)
		}
	}
	if r.Coverage() != 0 {
		t.Error("baseline should have no prefetch coverage")
	}
	if r.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if r.Mechanism != "next-line" {
		t.Errorf("mechanism = %q", r.Mechanism)
	}
}

func TestDeterministicRuns(t *testing.T) {
	r1 := run(t, TIFS(core.DedicatedConfig()))
	r2 := run(t, TIFS(core.DedicatedConfig()))
	if r1.Cycles != r2.Cycles || r1.TotalInstrs != r2.TotalInstrs {
		t.Errorf("non-deterministic: %d/%d vs %d/%d cycles/instrs",
			r1.Cycles, r1.TotalInstrs, r2.Cycles, r2.TotalInstrs)
	}
}

func TestFig13Ordering(t *testing.T) {
	base := run(t, Baseline())
	fdip := run(t, FDIP())
	tifs := run(t, TIFS(core.DedicatedConfig()))
	perfect := run(t, Perfect())

	spFDIP := fdip.SpeedupOver(base)
	spTIFS := tifs.SpeedupOver(base)
	spPerfect := perfect.SpeedupOver(base)

	// The paper's headline ordering on OLTP: next-line < FDIP < TIFS <
	// perfect (Fig. 13).
	if spFDIP < 0.99 {
		t.Errorf("FDIP slowed the system: %.3f", spFDIP)
	}
	if spTIFS <= spFDIP-0.005 {
		t.Errorf("TIFS (%.3f) should beat FDIP (%.3f) on OLTP", spTIFS, spFDIP)
	}
	if spPerfect < spTIFS-0.005 {
		t.Errorf("perfect (%.3f) below TIFS (%.3f)", spPerfect, spTIFS)
	}
	if spTIFS < 1.005 {
		t.Errorf("TIFS speedup %.3f, expected measurable gain on OLTP", spTIFS)
	}
}

func TestTIFSStatsExposed(t *testing.T) {
	r := run(t, TIFS(core.VirtualizedConfig()))
	if r.TIFS == nil {
		t.Fatal("TIFS stats missing")
	}
	if r.TIFS.StreamsAllocated == 0 || r.TIFS.LoggedMisses == 0 {
		t.Errorf("TIFS stats empty: %+v", r.TIFS)
	}
	if r.Traffic.Count(uncore.TrafficIMLRead) == 0 {
		t.Error("virtualized run produced no IML read traffic")
	}
	if r.Prefetch.MetaWrites == 0 {
		t.Error("no metadata writes")
	}
}

func TestDedicatedHasNoIMLTraffic(t *testing.T) {
	r := run(t, TIFS(core.DedicatedConfig()))
	if r.Traffic.Count(uncore.TrafficIMLRead) != 0 || r.Traffic.Count(uncore.TrafficIMLWrite) != 0 {
		t.Error("dedicated IML issued L2 metadata traffic")
	}
}

func TestProbabilisticCoverageScales(t *testing.T) {
	low := run(t, Probabilistic(0.2))
	high := run(t, Probabilistic(0.9))
	if high.Coverage() <= low.Coverage() {
		t.Errorf("coverage not increasing: %.2f vs %.2f", low.Coverage(), high.Coverage())
	}
	if high.Cycles >= low.Cycles {
		t.Errorf("higher coverage should be faster: %d vs %d", high.Cycles, low.Cycles)
	}
}

func TestDiscontinuityRuns(t *testing.T) {
	base := run(t, Baseline())
	r := run(t, Discontinuity())
	if r.Coverage() == 0 {
		t.Error("discontinuity predictor covered nothing")
	}
	if sp := r.SpeedupOver(base); sp < 0.98 {
		t.Errorf("discontinuity predictor slowed the system: %.3f", sp)
	}
}

func TestMechanismNames(t *testing.T) {
	cases := map[string]Mechanism{
		"next-line":        Baseline(),
		"FDIP":             FDIP(),
		"TIFS-unbounded":   TIFS(core.UnboundedConfig()),
		"TIFS-dedicated":   TIFS(core.DedicatedConfig()),
		"TIFS-virtualized": TIFS(core.VirtualizedConfig()),
		"perfect":          Perfect(),
		"prob-40%":         Probabilistic(0.4),
		"discontinuity":    Discontinuity(),
	}
	for want, m := range cases {
		if got := m.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestUnknownMechanismPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown mechanism should panic")
		}
	}()
	spec, _ := workload.ByName("Web-Zeus")
	Run(spec, workload.ScaleSmall, Config{
		EventsPerCore: 1000,
		Mechanism:     Mechanism{Kind: "bogus"},
	})
}
