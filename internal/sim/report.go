package sim

import (
	"fmt"
	"strings"

	"tifs/internal/core"
	"tifs/internal/workload"
)

// MechanismByName resolves the CLI/service mechanism names to their
// constructors — the single registry tifssim and the sweep service
// share, so a simulation submitted over HTTP names mechanisms exactly
// like one run locally.
func MechanismByName(name string) (Mechanism, error) {
	switch name {
	case "next-line", "baseline":
		return Baseline(), nil
	case "fdip":
		return FDIP(), nil
	case "discontinuity":
		return Discontinuity(), nil
	case "tifs", "tifs-unbounded":
		return TIFS(core.UnboundedConfig()), nil
	case "tifs-dedicated":
		return TIFS(core.DedicatedConfig()), nil
	case "tifs-virtualized":
		return TIFS(core.VirtualizedConfig()), nil
	case "perfect":
		return Perfect(), nil
	default:
		return Mechanism{}, fmt.Errorf("unknown mechanism %q", name)
	}
}

// MechanismNames lists the names MechanismByName accepts, for usage
// strings and error messages.
func MechanismNames() []string {
	return []string{"next-line", "fdip", "discontinuity", "tifs-unbounded", "tifs-dedicated", "tifs-virtualized", "perfect"}
}

// Report renders the detailed single-simulation report: cycles, IPC,
// fetch-stall share, coverage, discards, and the L2 traffic ledger,
// plus the speedup line when a next-line baseline result accompanies
// the run. tifssim prints it locally and the sweep service returns it
// as a simulation job's output, so the two paths are byte-identical by
// construction.
func Report(r Result, baseline *Result, scale workload.Scale, cores int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload:   %s (%s scale, %d cores)\n", r.Workload, scale, cores)
	fmt.Fprintf(&b, "mechanism:  %s\n", r.Mechanism)
	fmt.Fprintf(&b, "cycles:     %d (makespan)\n", r.Cycles)
	fmt.Fprintf(&b, "instrs:     %d   IPC: %.3f\n", r.TotalInstrs, r.IPC())
	fmt.Fprintf(&b, "fetch stall: %.1f%% of cycles\n", 100*r.FetchStallShare())
	fmt.Fprintf(&b, "coverage:   %.1f%%   discards: %.1f%%\n", 100*r.Coverage(), 100*r.DiscardFrac())
	fmt.Fprintf(&b, "prefetch:   issued=%d timely=%d late=%d\n",
		r.Prefetch.Issued, r.Prefetch.HitsTimely, r.Prefetch.HitsLate)
	if r.TIFS != nil {
		fmt.Fprintf(&b, "tifs:       streams=%d lookups=%d indexMisses=%d pauses=%d resumes=%d\n",
			r.TIFS.StreamsAllocated, r.TIFS.IndexLookups, r.TIFS.IndexMisses,
			r.TIFS.Pauses, r.TIFS.Resumes)
	}
	var useful uint64
	for _, s := range r.PerCore {
		useful += s.PrefetchHits
	}
	fmt.Fprintf(&b, "L2 traffic overhead: %.1f%% of base\n", 100*r.Traffic.OverheadFrac(useful))
	if baseline != nil {
		fmt.Fprintf(&b, "speedup over next-line: %.3f\n", r.SpeedupOver(*baseline))
	}
	return b.String()
}
