// Package sim assembles the full system of Table II — four cores with
// private L1-I caches and next-line prefetchers, a shared 16-bank L2, and
// a pluggable instruction prefetch mechanism — runs a workload through
// it, and reports the cycle, coverage, and traffic results every
// evaluation figure consumes.
//
// Cores are interleaved in core-local time order so cross-core L2 bank
// contention and the shared TIFS Index Table behave as they would in a
// concurrent system.
package sim

import (
	"fmt"

	"tifs/internal/core"
	"tifs/internal/cpu"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
	"tifs/internal/workload"
)

// Mechanism selects the additional instruction prefetcher attached to
// every core (the base system always includes next-line).
type Mechanism struct {
	// Kind is one of the Kind* constants.
	Kind string
	// TIFS configures the TIFS variants (KindTIFS).
	TIFS core.Config
	// FDIP configures fetch-directed prefetching (KindFDIP).
	FDIP prefetch.FDIPConfig
	// Discontinuity configures the discontinuity predictor.
	Discontinuity prefetch.DiscontinuityConfig
	// Coverage sets the probabilistic mechanism's coverage (KindProb).
	Coverage float64
}

// Mechanism kinds.
const (
	// KindNone is the next-line-only baseline.
	KindNone = "none"
	// KindFDIP is fetch-directed instruction prefetching.
	KindFDIP = "fdip"
	// KindDiscontinuity is the discontinuity predictor.
	KindDiscontinuity = "discontinuity"
	// KindTIFS is temporal instruction fetch streaming.
	KindTIFS = "tifs"
	// KindPerfect is the perfect streamer upper bound.
	KindPerfect = "perfect"
	// KindProb is the Fig. 1 probabilistic mechanism.
	KindProb = "probabilistic"
)

// Baseline returns the next-line-only mechanism.
func Baseline() Mechanism { return Mechanism{Kind: KindNone} }

// FDIP returns the paper-tuned FDIP mechanism.
func FDIP() Mechanism { return Mechanism{Kind: KindFDIP} }

// TIFS wraps a TIFS configuration.
func TIFS(cfg core.Config) Mechanism { return Mechanism{Kind: KindTIFS, TIFS: cfg} }

// Perfect returns the perfect-streaming upper bound.
func Perfect() Mechanism { return Mechanism{Kind: KindPerfect} }

// Probabilistic returns the Fig. 1 mechanism at the given coverage.
func Probabilistic(coverage float64) Mechanism {
	return Mechanism{Kind: KindProb, Coverage: coverage}
}

// Discontinuity returns the discontinuity-predictor mechanism.
func Discontinuity() Mechanism { return Mechanism{Kind: KindDiscontinuity} }

// Name labels the mechanism in experiment output.
func (m Mechanism) Name() string {
	switch m.Kind {
	case KindNone:
		return "next-line"
	case KindFDIP:
		return "FDIP"
	case KindDiscontinuity:
		return "discontinuity"
	case KindTIFS:
		return m.TIFS.Name()
	case KindPerfect:
		return "perfect"
	case KindProb:
		return fmt.Sprintf("prob-%.0f%%", 100*m.Coverage)
	default:
		return m.Kind
	}
}

// Config describes one simulation.
type Config struct {
	// Cores is the CMP width (default 4, as Table II).
	Cores int
	// EventsPerCore bounds the measured trace length (0 selects the
	// workload scale's default).
	EventsPerCore uint64
	// WarmupEvents are executed before measurement begins, warming the
	// caches, predictors, and memory queues as the paper's checkpointed
	// sampling does (Section 6.1). 0 selects 25% of EventsPerCore.
	WarmupEvents uint64
	// CPU carries the core parameters; BackendCPI and data traffic are
	// filled from the workload spec if zero.
	CPU cpu.Config
	// Uncore carries the shared-L2 parameters.
	Uncore uncore.Config
	// Mechanism is the attached prefetcher.
	Mechanism Mechanism
}

// Result is the outcome of one simulation run.
type Result struct {
	// Workload and Mechanism identify the configuration.
	Workload  string
	Mechanism string
	// Cycles is the slowest core's clock (makespan); TotalInstrs and
	// TotalEvents aggregate work across cores.
	Cycles      uint64
	TotalInstrs uint64
	TotalEvents uint64
	// PerCore holds each core's counters.
	PerCore []cpu.Stats
	// Prefetch aggregates prefetcher counters across cores.
	Prefetch prefetch.Stats
	// TIFS holds TIFS-specific counters when the mechanism is TIFS.
	TIFS *core.TIFSStats
	// Traffic is the L2 ledger; Uncore the L2 activity counters.
	Traffic uncore.Traffic
	Uncore  uncore.Stats
}

// IPC returns aggregate instructions per (makespan) cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInstrs) / float64(r.Cycles)
}

// SpeedupOver returns baseline.Cycles / r.Cycles, the Fig. 13 metric.
func (r Result) SpeedupOver(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// Misses returns aggregate post-next-line demand misses.
func (r Result) Misses() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.Misses
	}
	return n
}

// Coverage returns the fraction of would-be misses eliminated by the
// mechanism: prefetch hits over prefetch hits plus remaining misses
// (the Fig. 12 normalization).
func (r Result) Coverage() float64 {
	var hits, misses uint64
	for _, s := range r.PerCore {
		hits += s.PrefetchHits
		misses += s.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// DiscardFrac returns discarded prefetches normalized the same way.
func (r Result) DiscardFrac() float64 {
	var misses uint64
	for _, s := range r.PerCore {
		misses += s.PrefetchHits + s.Misses
	}
	if misses == 0 {
		return 0
	}
	return float64(r.Prefetch.Discards) / float64(misses)
}

// FetchStallShare returns the mean per-core share of cycles lost to
// instruction fetch.
func (r Result) FetchStallShare() float64 {
	if len(r.PerCore) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.PerCore {
		sum += s.FetchStallShare()
	}
	return sum / float64(len(r.PerCore))
}

// Run executes one configuration over a freshly built workload instance.
func Run(spec workload.Spec, scale workload.Scale, cfg Config) Result {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.EventsPerCore == 0 {
		cfg.EventsPerCore = scale.DefaultEvents()
	}
	if cfg.WarmupEvents == 0 {
		cfg.WarmupEvents = cfg.EventsPerCore / 4
	}
	if cfg.CPU.BackendCPI == 0 {
		cfg.CPU.BackendCPI = spec.BackendCPI
	}

	gen := workload.Build(spec, scale, cfg.Cores)
	un := uncore.New(cfg.Uncore)

	// Build per-core prefetchers; TIFS is one shared instance.
	var tifs *core.TIFS
	cores := make([]*cpu.Core, cfg.Cores)
	sources := gen.Sources()
	for i := range cores {
		ccfg := cfg.CPU
		ccfg.EventBudget = cfg.WarmupEvents + cfg.EventsPerCore
		c := cpu.New(i, ccfg, sources[i], nil, un)
		var pf prefetch.Prefetcher
		switch cfg.Mechanism.Kind {
		case "", KindNone:
			pf = prefetch.None{}
		case KindFDIP:
			pf = prefetch.NewFDIP(cfg.Mechanism.FDIP, i, un, c)
		case KindDiscontinuity:
			pf = prefetch.NewDiscontinuity(cfg.Mechanism.Discontinuity, i, un, c)
		case KindTIFS:
			if tifs == nil {
				tcfg := cfg.Mechanism.TIFS
				tcfg.Seed = spec.Name + "/" + scale.String()
				tifs = core.New(tcfg, cfg.Cores, un)
			}
			pf = tifs.Core(i)
		case KindPerfect:
			pf = prefetch.NewPerfect()
		case KindProb:
			pf = prefetch.NewProbabilistic(cfg.Mechanism.Coverage, fmt.Sprintf("%s/%d", spec.Name, i))
		default:
			panic("sim: unknown mechanism " + cfg.Mechanism.Kind)
		}
		c.SetPrefetcher(pf)
		cores[i] = c
	}

	// Interleave cores in core-local time order, snapshotting each core's
	// counters when it crosses its warmup boundary so only steady-state
	// behaviour is measured. Core selection uses an indexed min-heap keyed
	// on (cycle, core index) — the same order the previous linear scan
	// produced (lowest cycle, ties to the lowest index) at O(log cores)
	// per step instead of O(cores).
	warmStats := make([]cpu.Stats, cfg.Cores)
	warmPf := make([]prefetch.Stats, cfg.Cores)
	warmed := make([]bool, cfg.Cores)
	var warmTraffic uncore.Traffic
	warmedCount := 0
	h := newCoreHeap(cores)
	for h.len() > 0 {
		next := h.min()
		if !cores[next].Step() {
			h.pop()
			continue
		}
		h.fix() // the stepped core's clock only moved forward
		if !warmed[next] && cores[next].Stats().Events >= cfg.WarmupEvents {
			warmed[next] = true
			warmStats[next] = cores[next].Stats()
			warmPf[next] = cores[next].Prefetcher().Stats()
			warmedCount++
			if warmedCount == cfg.Cores {
				warmTraffic = un.Traffic()
			}
		}
	}

	res := Result{
		Workload:  spec.Name,
		Mechanism: cfg.Mechanism.Name(),
		Traffic:   subTraffic(un.Traffic(), warmTraffic),
		Uncore:    un.Stats(),
	}
	for i, c := range cores {
		st := subStats(c.Stats(), warmStats[i])
		res.PerCore = append(res.PerCore, st)
		res.TotalInstrs += st.Instrs
		res.TotalEvents += st.Events
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
		res.Prefetch.Add(subPf(c.Prefetcher().Stats(), warmPf[i]))
	}
	if tifs != nil {
		ts := tifs.TIFSStats()
		res.TIFS = &ts
	}
	return res
}

// subStats subtracts a warmup snapshot from final core counters.
func subStats(a, warm cpu.Stats) cpu.Stats {
	a.Cycles -= warm.Cycles
	a.Instrs -= warm.Instrs
	a.Events -= warm.Events
	a.BlockFetches -= warm.BlockFetches
	a.L1Hits -= warm.L1Hits
	a.NextLineHits -= warm.NextLineHits
	a.PrefetchHits -= warm.PrefetchHits
	a.Misses -= warm.Misses
	a.NextLineLate -= warm.NextLineLate
	a.FetchStallCycles -= warm.FetchStallCycles
	a.StallNextLine -= warm.StallNextLine
	a.StallPrefetch -= warm.StallPrefetch
	a.StallMiss -= warm.StallMiss
	a.BranchMispredicts -= warm.BranchMispredicts
	a.Branches -= warm.Branches
	a.Serializations -= warm.Serializations
	return a
}

// subPf subtracts a warmup snapshot from final prefetcher counters.
func subPf(a, warm prefetch.Stats) prefetch.Stats {
	a.Issued -= warm.Issued
	a.HitsTimely -= warm.HitsTimely
	a.HitsLate -= warm.HitsLate
	a.Discards -= warm.Discards
	a.MetaReads -= warm.MetaReads
	a.MetaWrites -= warm.MetaWrites
	return a
}

// subTraffic subtracts the warmup-era ledger.
func subTraffic(a, warm uncore.Traffic) uncore.Traffic {
	return a.Sub(warm)
}

// coreHeap is an indexed min-heap of runnable cores keyed on
// (core-local cycle, core index). The index tie-break reproduces the
// selection order of a linear scan with a strict < comparison, keeping
// simulation results byte-identical to the serial scheduler it replaced.
type coreHeap struct {
	cores []*cpu.Core
	idx   []int
	key   []uint64 // cached core clocks, parallel to idx
}

func newCoreHeap(cores []*cpu.Core) *coreHeap {
	h := &coreHeap{
		cores: cores,
		idx:   make([]int, len(cores)),
		key:   make([]uint64, len(cores)),
	}
	for i := range h.idx {
		h.idx[i] = i
		h.key[i] = cores[i].Cycle()
	}
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
	return h
}

func (h *coreHeap) len() int { return len(h.idx) }

// min returns the index of the core with the lowest clock.
func (h *coreHeap) min() int { return h.idx[0] }

// less orders heap slots a and b by (cached clock, core index).
func (h *coreHeap) less(a, b int) bool {
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return h.idx[a] < h.idx[b]
}

// fix restores heap order after the root's key grew (a core's clock only
// moves forward).
func (h *coreHeap) fix() {
	h.key[0] = h.cores[h.idx[0]].Cycle()
	h.down(0)
}

// pop removes the root (an exhausted core).
func (h *coreHeap) pop() {
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.key[0] = h.key[last]
	h.idx = h.idx[:last]
	h.key = h.key[:last]
	if len(h.idx) > 0 {
		h.down(0)
	}
}

func (h *coreHeap) down(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		h.key[i], h.key[m] = h.key[m], h.key[i]
		i = m
	}
}
