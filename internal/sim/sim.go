// Package sim assembles the full system of Table II — four cores with
// private L1-I caches and next-line prefetchers, a shared 16-bank L2, and
// a pluggable instruction prefetch mechanism — runs a workload through
// it, and reports the cycle, coverage, and traffic results every
// evaluation figure consumes.
//
// Cores are interleaved in core-local time order so cross-core L2 bank
// contention and the shared TIFS Index Table behave as they would in a
// concurrent system.
package sim

import (
	"fmt"
	"runtime"

	"tifs/internal/core"
	"tifs/internal/cpu"
	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
	"tifs/internal/workload"
)

// Mechanism selects the additional instruction prefetcher attached to
// every core (the base system always includes next-line).
type Mechanism struct {
	// Kind is one of the Kind* constants.
	Kind string
	// TIFS configures the TIFS variants (KindTIFS).
	TIFS core.Config
	// FDIP configures fetch-directed prefetching (KindFDIP).
	FDIP prefetch.FDIPConfig
	// Discontinuity configures the discontinuity predictor.
	Discontinuity prefetch.DiscontinuityConfig
	// Coverage sets the probabilistic mechanism's coverage (KindProb).
	Coverage float64
}

// Mechanism kinds.
const (
	// KindNone is the next-line-only baseline.
	KindNone = "none"
	// KindFDIP is fetch-directed instruction prefetching.
	KindFDIP = "fdip"
	// KindDiscontinuity is the discontinuity predictor.
	KindDiscontinuity = "discontinuity"
	// KindTIFS is temporal instruction fetch streaming.
	KindTIFS = "tifs"
	// KindPerfect is the perfect streamer upper bound.
	KindPerfect = "perfect"
	// KindProb is the Fig. 1 probabilistic mechanism.
	KindProb = "probabilistic"
)

// Baseline returns the next-line-only mechanism.
func Baseline() Mechanism { return Mechanism{Kind: KindNone} }

// FDIP returns the paper-tuned FDIP mechanism.
func FDIP() Mechanism { return Mechanism{Kind: KindFDIP} }

// TIFS wraps a TIFS configuration.
func TIFS(cfg core.Config) Mechanism { return Mechanism{Kind: KindTIFS, TIFS: cfg} }

// Perfect returns the perfect-streaming upper bound.
func Perfect() Mechanism { return Mechanism{Kind: KindPerfect} }

// Probabilistic returns the Fig. 1 mechanism at the given coverage.
func Probabilistic(coverage float64) Mechanism {
	return Mechanism{Kind: KindProb, Coverage: coverage}
}

// Discontinuity returns the discontinuity-predictor mechanism.
func Discontinuity() Mechanism { return Mechanism{Kind: KindDiscontinuity} }

// Name labels the mechanism in experiment output.
func (m Mechanism) Name() string {
	switch m.Kind {
	case KindNone:
		return "next-line"
	case KindFDIP:
		return "FDIP"
	case KindDiscontinuity:
		return "discontinuity"
	case KindTIFS:
		return m.TIFS.Name()
	case KindPerfect:
		return "perfect"
	case KindProb:
		return fmt.Sprintf("prob-%.0f%%", 100*m.Coverage)
	default:
		return m.Kind
	}
}

// Config describes one simulation.
type Config struct {
	// Cores is the CMP width (default 4, as Table II).
	Cores int
	// EventsPerCore bounds the measured trace length (0 selects the
	// workload scale's default).
	EventsPerCore uint64
	// WarmupEvents are executed before measurement begins, warming the
	// caches, predictors, and memory queues as the paper's checkpointed
	// sampling does (Section 6.1). 0 selects 25% of EventsPerCore.
	WarmupEvents uint64
	// CPU carries the core parameters; BackendCPI and data traffic are
	// filled from the workload spec if zero.
	CPU cpu.Config
	// Uncore carries the shared-L2 parameters.
	Uncore uncore.Config
	// Mechanism is the attached prefetcher.
	Mechanism Mechanism
	// IntraParallelism shards event generation for this one run across
	// that many producer goroutines (clamped to Cores; 0 or 1 runs
	// serially). It is purely an execution knob: output bytes are
	// identical at every setting (see intra.go for the determinism
	// model), so it never participates in result identity.
	IntraParallelism int
	// Speculative engages the speculative merge tier: a worker
	// goroutine runs core-step windows ahead of the merge thread, which
	// verifies the recorded interleaving against the authoritative
	// min-heap schedule and commits matching windows instead of
	// re-executing them (see spec.go). 0 and 1 run the merge serially;
	// >= 2 enables the speculation worker. Like IntraParallelism it is
	// purely an execution knob — output bytes are identical at every
	// setting — so it never participates in result identity.
	Speculative int
	// SpecChaos forces a speculation mispredict every n-th window by
	// corrupting the recorded interleaving (never the machine state),
	// exercising the rollback path deterministically. 0 disables. A
	// test/bench knob; output bytes are unaffected because rollbacks
	// re-execute serially.
	SpecChaos int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Workload and Mechanism identify the configuration.
	Workload  string
	Mechanism string
	// Cycles is the slowest core's clock (makespan); TotalInstrs and
	// TotalEvents aggregate work across cores.
	Cycles      uint64
	TotalInstrs uint64
	TotalEvents uint64
	// PerCore holds each core's counters.
	PerCore []cpu.Stats
	// Prefetch aggregates prefetcher counters across cores.
	Prefetch prefetch.Stats
	// TIFS holds TIFS-specific counters when the mechanism is TIFS.
	TIFS *core.TIFSStats
	// Traffic is the L2 ledger; Uncore the L2 activity counters.
	Traffic uncore.Traffic
	Uncore  uncore.Stats
	// Spec holds the speculative-tier commit/rollback counters (zero
	// for serial merges). Pure execution telemetry: it is deliberately
	// absent from rendered reports, goldens, and the persistent store
	// codec, since speculation never changes output bytes.
	Spec SpecStats
}

// IPC returns aggregate instructions per (makespan) cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.TotalInstrs) / float64(r.Cycles)
}

// SpeedupOver returns baseline.Cycles / r.Cycles, the Fig. 13 metric.
func (r Result) SpeedupOver(baseline Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// Misses returns aggregate post-next-line demand misses.
func (r Result) Misses() uint64 {
	var n uint64
	for _, s := range r.PerCore {
		n += s.Misses
	}
	return n
}

// Coverage returns the fraction of would-be misses eliminated by the
// mechanism: prefetch hits over prefetch hits plus remaining misses
// (the Fig. 12 normalization).
func (r Result) Coverage() float64 {
	var hits, misses uint64
	for _, s := range r.PerCore {
		hits += s.PrefetchHits
		misses += s.Misses
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// DiscardFrac returns discarded prefetches normalized the same way.
func (r Result) DiscardFrac() float64 {
	var misses uint64
	for _, s := range r.PerCore {
		misses += s.PrefetchHits + s.Misses
	}
	if misses == 0 {
		return 0
	}
	return float64(r.Prefetch.Discards) / float64(misses)
}

// FetchStallShare returns the mean per-core share of cycles lost to
// instruction fetch.
func (r Result) FetchStallShare() float64 {
	if len(r.PerCore) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.PerCore {
		sum += s.FetchStallShare()
	}
	return sum / float64(len(r.PerCore))
}

// Run executes one configuration over a freshly built workload instance.
// It is a convenience wrapper over a single-use Runner; batch callers
// (the experiment engine) pool Runners to make repeated runs
// allocation-free.
func Run(spec workload.Spec, scale workload.Scale, cfg Config) Result {
	return NewRunner().Run(spec, scale, cfg)
}

// genKey identifies a reusable workload instance. It embeds the whole
// spec — every field participates in workload construction, so two
// same-named specs that differ anywhere must not share an instance.
// Spec is all scalars and strings, so the struct is comparable and the
// map lookup allocation-free.
type genKey struct {
	spec  workload.Spec
	scale workload.Scale
	cores int
}

// genEntry caches one instantiated workload plus values derived from it
// that would otherwise be rebuilt (and allocated) every run.
type genEntry struct {
	gen      *workload.Generated
	sources  []isa.EventSource
	tifsSeed string // spec.Name + "/" + scale.String()
}

// Runner executes simulations while recycling every piece of machine
// state between runs: the workload executors, the per-core caches,
// predictors and next-line buffers, the shared L2, the TIFS instance
// (IMLs, SVBs, and the open-addressed Index Table), and the alternative
// prefetch mechanisms. After a warmup run of a given shape, repeated
// runs perform zero heap allocations (verified by
// TestRunnerSteadyStateZeroAlloc).
//
// The returned Result's PerCore and TIFS fields alias buffers owned by
// the Runner; they are valid until the next Run call, so callers that
// retain results across runs must deep-copy them first (the experiment
// engine does). A Runner is not safe for concurrent use; pool one per
// worker.
type Runner struct {
	gens map[genKey]*genEntry

	un    *uncore.L2
	cores []*cpu.Core
	tifs  *core.TIFS
	fdip  []*prefetch.FDIP
	disc  []*prefetch.Discontinuity
	perf  []*prefetch.Perfect
	prob  []*prefetch.Probabilistic

	// probSeeds caches the per-core seed strings of the probabilistic
	// mechanism for the workload named probSpec.
	probSeeds []string
	probSpec  string

	warmStats   []cpu.Stats
	warmPf      []prefetch.Stats
	warmed      []bool
	warmedCount int
	warmTraffic uncore.Traffic
	heap        coreHeap
	perCore     []cpu.Stats
	tstats      core.TIFSStats

	intra intraState
	spec  specState

	// finalizerArmed records that the backstop finalizer releasing the
	// worker goroutines is registered (see Close).
	finalizerArmed bool
}

// NewRunner creates an empty Runner; its pools fill on first use.
func NewRunner() *Runner {
	return &Runner{gens: map[genKey]*genEntry{}}
}

// workload returns a reusable instance for (spec, scale, cores), rewound
// to its initial state.
func (r *Runner) workload(spec workload.Spec, scale workload.Scale, cores int) *genEntry {
	key := genKey{spec: spec, scale: scale, cores: cores}
	if ge, ok := r.gens[key]; ok {
		ge.gen.Reset()
		return ge
	}
	gen := workload.Build(spec, scale, cores)
	ge := &genEntry{gen: gen, sources: gen.Sources(), tifsSeed: spec.Name + "/" + scale.String()}
	r.gens[key] = ge
	return ge
}

// Run executes one configuration, reusing the Runner's pooled machine
// state. Results are bit-identical to a fresh Run: every Reset restores
// exactly the state construction would produce.
func (r *Runner) Run(spec workload.Spec, scale workload.Scale, cfg Config) Result {
	if cfg.Cores == 0 {
		cfg.Cores = 4
	}
	if cfg.EventsPerCore == 0 {
		cfg.EventsPerCore = scale.DefaultEvents()
	}
	if cfg.WarmupEvents == 0 {
		cfg.WarmupEvents = cfg.EventsPerCore / 4
	}
	if cfg.CPU.BackendCPI == 0 {
		cfg.CPU.BackendCPI = spec.BackendCPI
	}

	ge := r.workload(spec, scale, cfg.Cores)
	// With intra-run parallelism the cores read from pooled SPSC epoch
	// rings fed by shard workers instead of the executors directly; the
	// events delivered are identical values in identical per-core order,
	// so everything downstream is unchanged.
	shards := intraShards(cfg.IntraParallelism, cfg.Cores)
	sources := ge.sources
	if shards > 1 {
		sources = r.pipeSources(cfg.Cores)
	}
	// The speculative merge tier needs to rewind event delivery on a
	// rollback, so each core's source (executor or intra pipe alike) is
	// wrapped in a recording tee the cores bind to below.
	speculative := cfg.Speculative >= 2
	if speculative {
		sources = r.specSources(sources, cfg.Cores)
	}
	if r.un == nil {
		r.un = uncore.New(cfg.Uncore)
	} else {
		r.un.Reset(cfg.Uncore)
	}
	un := r.un

	// A changed core count invalidates everything bound to the core
	// slice (prefetchers hold L1 views into it).
	if len(r.cores) != cfg.Cores {
		r.cores = make([]*cpu.Core, cfg.Cores)
		r.tifs = nil
		r.fdip = nil
		r.disc = nil
		r.perf = nil
		r.prob = nil
	}

	// Build or reset per-core state; TIFS is one shared instance.
	var tifs *core.TIFS
	for i := range r.cores {
		ccfg := cfg.CPU
		ccfg.EventBudget = cfg.WarmupEvents + cfg.EventsPerCore
		c := r.cores[i]
		if c == nil {
			c = cpu.New(i, ccfg, sources[i], nil, un)
			r.cores[i] = c
		} else {
			c.Reset(ccfg, sources[i])
		}
		var pf prefetch.Prefetcher
		switch cfg.Mechanism.Kind {
		case "", KindNone:
			pf = prefetch.None{}
		case KindFDIP:
			if r.fdip == nil {
				r.fdip = make([]*prefetch.FDIP, cfg.Cores)
			}
			if r.fdip[i] == nil {
				r.fdip[i] = prefetch.NewFDIP(cfg.Mechanism.FDIP, i, un, c)
			} else {
				r.fdip[i].Reset(cfg.Mechanism.FDIP)
			}
			pf = r.fdip[i]
		case KindDiscontinuity:
			if r.disc == nil {
				r.disc = make([]*prefetch.Discontinuity, cfg.Cores)
			}
			if r.disc[i] == nil {
				r.disc[i] = prefetch.NewDiscontinuity(cfg.Mechanism.Discontinuity, i, un, c)
			} else {
				r.disc[i].Reset(cfg.Mechanism.Discontinuity)
			}
			pf = r.disc[i]
		case KindTIFS:
			if tifs == nil {
				tcfg := cfg.Mechanism.TIFS
				tcfg.Seed = ge.tifsSeed
				if r.tifs == nil {
					r.tifs = core.New(tcfg, cfg.Cores, un)
				} else {
					r.tifs.Reset(tcfg, un)
				}
				tifs = r.tifs
			}
			pf = tifs.Core(i)
		case KindPerfect:
			if r.perf == nil {
				r.perf = make([]*prefetch.Perfect, cfg.Cores)
			}
			if r.perf[i] == nil {
				r.perf[i] = prefetch.NewPerfect()
			} else {
				r.perf[i].Reset()
			}
			pf = r.perf[i]
		case KindProb:
			if r.prob == nil {
				r.prob = make([]*prefetch.Probabilistic, cfg.Cores)
			}
			seed := r.probSeed(spec.Name, i, cfg.Cores)
			if r.prob[i] == nil {
				r.prob[i] = prefetch.NewProbabilistic(cfg.Mechanism.Coverage, seed)
			} else {
				r.prob[i].Reset(cfg.Mechanism.Coverage, seed)
			}
			pf = r.prob[i]
		default:
			panic("sim: unknown mechanism " + cfg.Mechanism.Kind)
		}
		c.SetPrefetcher(pf)
	}
	cores := r.cores

	// Interleave cores in core-local time order, snapshotting each core's
	// counters when it crosses its warmup boundary so only steady-state
	// behaviour is measured. Core selection uses an indexed min-heap keyed
	// on (cycle, core index) — the same order the previous linear scan
	// produced (lowest cycle, ties to the lowest index) at O(log cores)
	// per step instead of O(cores).
	warmStats := resetSlice(&r.warmStats, cfg.Cores)
	warmPf := resetSlice(&r.warmPf, cfg.Cores)
	resetSlice(&r.warmed, cfg.Cores)
	r.warmedCount = 0
	r.warmTraffic = uncore.Traffic{}
	// All setup that can panic is behind us: start the shard workers
	// producing into the rings. They retire right after the merge loop —
	// the cores consume the rings dry, so no worker can still be parked.
	if shards > 1 {
		r.startIntra(ge.sources, cfg.WarmupEvents+cfg.EventsPerCore, shards)
	}
	r.heap.init(cores)
	if speculative {
		kind := cfg.Mechanism.Kind
		if kind == "" {
			kind = KindNone
		}
		r.runSpeculative(kind, cfg.Cores, cfg.WarmupEvents, cfg.SpecChaos)
	} else {
		r.mergeSerial(cfg.WarmupEvents, cfg.Cores)
	}
	if shards > 1 {
		r.finishIntra()
	}

	res := Result{
		Workload:  spec.Name,
		Mechanism: cfg.Mechanism.Name(),
		Traffic:   subTraffic(un.Traffic(), r.warmTraffic),
		Uncore:    un.Stats(),
	}
	if speculative {
		res.Spec = r.spec.stats
	}
	if cap(r.perCore) < cfg.Cores {
		r.perCore = make([]cpu.Stats, 0, cfg.Cores)
	}
	r.perCore = r.perCore[:0]
	for i, c := range cores {
		st := subStats(c.Stats(), warmStats[i])
		r.perCore = append(r.perCore, st)
		res.TotalInstrs += st.Instrs
		res.TotalEvents += st.Events
		if st.Cycles > res.Cycles {
			res.Cycles = st.Cycles
		}
		res.Prefetch.Add(subPf(c.Prefetcher().Stats(), warmPf[i]))
	}
	res.PerCore = r.perCore
	if tifs != nil {
		r.tstats = tifs.TIFSStats()
		res.TIFS = &r.tstats
	}
	return res
}

// mergeSerial runs the authoritative min-heap schedule to completion on
// the calling goroutine. Cores are interleaved in core-local time order,
// lowest clock first with ties to the lowest index, so cross-core L2
// bank contention and the shared TIFS Index Table behave as they would
// in a concurrent system.
func (r *Runner) mergeSerial(warmupEvents uint64, nCores int) {
	h := &r.heap
	cores := r.cores
	for h.len() > 0 {
		next := h.min()
		if !cores[next].Step() {
			h.pop()
			continue
		}
		h.fix() // the stepped core's clock only moved forward
		r.noteWarm(next, warmupEvents, nCores)
	}
}

// mergeSerialN runs at most target schedule steps (a pop of an exhausted
// core counts as a step, matching the speculation worker's per-record
// accounting) and reports how many ran. The speculative tier uses it to
// re-execute the rolled-back span serially.
func (r *Runner) mergeSerialN(target, warmupEvents uint64, nCores int) uint64 {
	h := &r.heap
	cores := r.cores
	var steps uint64
	for steps < target && h.len() > 0 {
		next := h.min()
		if cores[next].Step() {
			h.fix()
			r.noteWarm(next, warmupEvents, nCores)
		} else {
			h.pop()
		}
		steps++
	}
	return steps
}

// noteWarm snapshots a core's counters the first time it crosses its
// warmup boundary so only steady-state behaviour is measured. Shared by
// the serial, speculative, and rollback-re-execution merge loops.
func (r *Runner) noteWarm(next int, warmupEvents uint64, nCores int) {
	if r.warmed[next] || r.cores[next].Stats().Events < warmupEvents {
		return
	}
	r.warmed[next] = true
	r.warmStats[next] = r.cores[next].Stats()
	r.warmPf[next] = r.cores[next].Prefetcher().Stats()
	r.warmedCount++
	if r.warmedCount == nCores {
		r.warmTraffic = r.un.Traffic()
	}
}

// Close releases the Runner's background worker goroutines — the
// intra-run shard producers and the speculation worker. It must not be
// called while a Run is in flight. Close is idempotent, and the Runner
// remains usable afterwards: the next run that needs workers recreates
// them. Owners with a deterministic lifecycle (the experiment engine's
// runner pool, the CLIs) call Close explicitly; a finalizer performs the
// same release as a backstop for Runners dropped without it.
func (r *Runner) Close() {
	if r.finalizerArmed {
		runtime.SetFinalizer(r, nil)
		r.finalizerArmed = false
	}
	releaseRunnerWorkers(r)
}

// armFinalizer registers the backstop finalizer once, when the first
// worker goroutine is created.
func (r *Runner) armFinalizer() {
	if !r.finalizerArmed {
		r.finalizerArmed = true
		runtime.SetFinalizer(r, releaseRunnerWorkers)
	}
}

// releaseRunnerWorkers closes the channels the worker goroutines park
// on, letting them exit. Workers hold only the channel while parked —
// never the Runner — so the finalizer can fire and still reach here.
func releaseRunnerWorkers(r *Runner) {
	if r.intra.work != nil {
		close(r.intra.work)
		r.intra.work = nil
		r.intra.workers = 0
	}
	if r.spec.work != nil {
		close(r.spec.work)
		r.spec.work = nil
	}
}

// probSeed returns the cached probabilistic-mechanism seed string for
// (workload, core), rebuilding the cache only when the workload changes.
func (r *Runner) probSeed(workloadName string, i, cores int) string {
	if r.probSpec != workloadName || len(r.probSeeds) != cores {
		r.probSeeds = make([]string, cores)
		for c := 0; c < cores; c++ {
			r.probSeeds[c] = fmt.Sprintf("%s/%d", workloadName, c)
		}
		r.probSpec = workloadName
	}
	return r.probSeeds[i]
}

// resetSlice returns *s resized to n with zeroed elements, reusing its
// backing array.
func resetSlice[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	} else {
		*s = (*s)[:n]
		clear(*s)
	}
	return *s
}

// subStats subtracts a warmup snapshot from final core counters.
func subStats(a, warm cpu.Stats) cpu.Stats {
	a.Cycles -= warm.Cycles
	a.Instrs -= warm.Instrs
	a.Events -= warm.Events
	a.BlockFetches -= warm.BlockFetches
	a.L1Hits -= warm.L1Hits
	a.NextLineHits -= warm.NextLineHits
	a.PrefetchHits -= warm.PrefetchHits
	a.Misses -= warm.Misses
	a.NextLineLate -= warm.NextLineLate
	a.FetchStallCycles -= warm.FetchStallCycles
	a.StallNextLine -= warm.StallNextLine
	a.StallPrefetch -= warm.StallPrefetch
	a.StallMiss -= warm.StallMiss
	a.BranchMispredicts -= warm.BranchMispredicts
	a.Branches -= warm.Branches
	a.Serializations -= warm.Serializations
	return a
}

// subPf subtracts a warmup snapshot from final prefetcher counters.
func subPf(a, warm prefetch.Stats) prefetch.Stats {
	a.Issued -= warm.Issued
	a.HitsTimely -= warm.HitsTimely
	a.HitsLate -= warm.HitsLate
	a.Discards -= warm.Discards
	a.MetaReads -= warm.MetaReads
	a.MetaWrites -= warm.MetaWrites
	return a
}

// subTraffic subtracts the warmup-era ledger.
func subTraffic(a, warm uncore.Traffic) uncore.Traffic {
	return a.Sub(warm)
}

// keyHeap is an indexed min-heap keyed on (key, index). The index
// tie-break reproduces the selection order of a linear scan with a
// strict < comparison, keeping simulation results byte-identical to the
// serial scheduler it replaced. It is split out from coreHeap so the
// speculative merge tier can replay a recorded schedule against a
// detached clone (spec.go) without touching live cores.
type keyHeap struct {
	idx []int
	key []uint64 // cached core clocks, parallel to idx
}

// reset rebuilds the heap over n identity-keyed slots whose keys the
// caller fills before heapifying, reusing its slices across pooled runs.
func (h *keyHeap) reset(n int) {
	if cap(h.idx) < n {
		h.idx = make([]int, n)
		h.key = make([]uint64, n)
	} else {
		h.idx = h.idx[:n]
		h.key = h.key[:n]
	}
	for i := range h.idx {
		h.idx[i] = i
	}
}

func (h *keyHeap) len() int { return len(h.idx) }

// min returns the index of the core with the lowest clock.
func (h *keyHeap) min() int { return h.idx[0] }

// less orders heap slots a and b by (cached clock, core index).
func (h *keyHeap) less(a, b int) bool {
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return h.idx[a] < h.idx[b]
}

// fixKey sets the root's key to k (which only grows) and restores heap
// order.
func (h *keyHeap) fixKey(k uint64) {
	h.key[0] = k
	h.down(0)
}

// pop removes the root (an exhausted core).
func (h *keyHeap) pop() {
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.key[0] = h.key[last]
	h.idx = h.idx[:last]
	h.key = h.key[:last]
	if len(h.idx) > 0 {
		h.down(0)
	}
}

// saveInto copies the heap's slots into dst, reusing dst's slices.
func (h *keyHeap) saveInto(dst *keyHeap) {
	dst.idx = append(dst.idx[:0], h.idx...)
	dst.key = append(dst.key[:0], h.key...)
}

func (h *keyHeap) down(i int) {
	n := len(h.idx)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.idx[i], h.idx[m] = h.idx[m], h.idx[i]
		h.key[i], h.key[m] = h.key[m], h.key[i]
		i = m
	}
}

// coreHeap binds a keyHeap to live cores whose clocks supply the keys.
type coreHeap struct {
	keyHeap
	cores []*cpu.Core
}

// init (re)builds the heap over cores, reusing its slices across pooled
// runs.
func (h *coreHeap) init(cores []*cpu.Core) {
	h.cores = cores
	h.reset(len(cores))
	for i := range h.idx {
		h.key[i] = cores[i].Cycle()
	}
	for i := len(h.idx)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// fix restores heap order after the root's key grew (a core's clock only
// moves forward).
func (h *coreHeap) fix() {
	h.fixKey(h.cores[h.idx[0]].Cycle())
}
