package sim

import (
	"testing"

	"tifs/internal/uncore"
	"tifs/internal/workload"
)

// specless strips the speculative-tier telemetry so results can be
// compared for byte identity of the simulation proper: Spec is the one
// field that legitimately differs between a serial and a speculative
// run of the same configuration.
func specless(r Result) Result {
	r.Spec = SpecStats{}
	return r
}

// TestSpecByteIdentity is the core determinism guarantee of the
// speculative merge tier: for every mechanism, running the merge loop
// through predict/verify/commit — alone and stacked on intra-parallel
// event generation — yields a Result identical in every field to the
// serial schedule.
func TestSpecByteIdentity(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	for name, m := range testMechanisms() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{EventsPerCore: 20_000, WarmupEvents: 5_000, Mechanism: m}
			serial := Run(spec, workload.ScaleSmall, cfg)
			for _, intra := range []int{0, 4} {
				scfg := cfg
				scfg.IntraParallelism = intra
				scfg.Speculative = 2
				got := Run(spec, workload.ScaleSmall, scfg)
				if got.Spec.Windows == 0 || got.Spec.Committed != got.Spec.Windows {
					t.Errorf("intra=%d: expected all windows committed, got %+v", intra, got.Spec)
				}
				if !resultsEqual(serial, specless(got)) {
					t.Errorf("intra=%d: speculative run diverged from serial\nserial: %+v\nspec:   %+v",
						intra, serial, specless(got))
				}
			}
		})
	}
}

// TestSpecChaosByteIdentity forces rollbacks at several cadences —
// every window, mid-checkpoint-interval, and past a checkpoint boundary
// — and requires byte identity to the serial schedule anyway: the
// restore/rewind/re-execute path must reproduce the authoritative
// machine exactly.
func TestSpecChaosByteIdentity(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, tc := range []struct {
		name      string
		chaos     int
		intra     int
		wantLatch bool
	}{
		{"every-window", 1, 0, true},
		{"mid-interval", 9, 0, false},
		{"past-checkpoint", 20, 0, false},
		{"with-intra", 9, 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{EventsPerCore: 60_000, WarmupEvents: 20_000, Mechanism: FDIP()}
			serial := Run(spec, workload.ScaleSmall, cfg)
			ccfg := cfg
			ccfg.IntraParallelism = tc.intra
			ccfg.Speculative = 2
			ccfg.SpecChaos = tc.chaos
			got := Run(spec, workload.ScaleSmall, ccfg)
			if got.Spec.Rollbacks == 0 {
				t.Fatalf("chaos=%d forced no rollbacks: %+v", tc.chaos, got.Spec)
			}
			if got.Spec.Latched != tc.wantLatch {
				t.Errorf("chaos=%d: latched = %v, want %v (%+v)",
					tc.chaos, got.Spec.Latched, tc.wantLatch, got.Spec)
			}
			if !resultsEqual(serial, specless(got)) {
				t.Errorf("chaos=%d diverged from serial\nserial: %+v\nchaos:  %+v",
					tc.chaos, serial, specless(got))
			}
		})
	}
}

// TestSpecStatsDeterministic: the commit/rollback counters are derived
// from merge-thread decisions on the deterministic schedule, so they
// must be bit-identical across runs — including which windows chaos
// corrupts — regardless of goroutine timing.
func TestSpecStatsDeterministic(t *testing.T) {
	spec, ok := workload.ByName("Web-Apache")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{
		EventsPerCore: 40_000,
		WarmupEvents:  10_000,
		Mechanism:     Baseline(),
		Speculative:   2,
		SpecChaos:     9,
	}
	first := Run(spec, workload.ScaleSmall, cfg)
	for i := 0; i < 2; i++ {
		again := Run(spec, workload.ScaleSmall, cfg)
		if again.Spec != first.Spec {
			t.Fatalf("run %d: spec stats diverged: %+v vs %+v", i+1, again.Spec, first.Spec)
		}
	}

	// chaos=1 is the fully-hostile case: every window mispredicts, so
	// the fallback latch must trip after exactly specLatchMinRollbacks
	// rollbacks with nothing committed, and the serial tail still
	// finishes the run.
	cfg.SpecChaos = 1
	hostile := Run(spec, workload.ScaleSmall, cfg)
	if !hostile.Spec.Latched {
		t.Errorf("chaos=1 did not latch: %+v", hostile.Spec)
	}
	if hostile.Spec.Rollbacks != specLatchMinRollbacks || hostile.Spec.Committed != 0 {
		t.Errorf("chaos=1: want exactly %d rollbacks and 0 commits, got %+v",
			specLatchMinRollbacks, hostile.Spec)
	}
}

// TestSpecBudgetEdges exercises window termination at its boundaries: a
// run shorter than one window, exactly one window, an exact multiple
// (which ends with an empty terminal window), and one step past a
// window boundary.
func TestSpecBudgetEdges(t *testing.T) {
	spec, ok := workload.ByName("Web-Apache")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, tc := range []struct {
		name           string
		events, warmup uint64
	}{
		{"sub-window", 1_000, 200},
		{"one-window", specWindowSteps - 512, 512},
		{"exact-multiple", 3 * specWindowSteps, specWindowSteps},
		{"one-past", 2*specWindowSteps - 511, 512},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{EventsPerCore: tc.events, WarmupEvents: tc.warmup, Mechanism: Baseline()}
			serial := Run(spec, workload.ScaleSmall, cfg)
			cfg.Speculative = 2
			got := Run(spec, workload.ScaleSmall, cfg)
			if !resultsEqual(serial, specless(got)) {
				t.Errorf("%s: speculative run diverged from serial", tc.name)
			}
		})
	}
}

// TestSpecPooledRunnerChurn drives one pooled Runner through serial,
// speculative, chaos, and stacked intra+spec runs of different shapes:
// pooled checkpoint/tee/worker state from one setting must never leak
// into the next.
func TestSpecPooledRunnerChurn(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	web, ok := workload.ByName("Web-Zeus")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{EventsPerCore: 15_000, WarmupEvents: 4_000, Mechanism: Baseline()}
	r := NewRunner()
	for _, step := range []struct {
		spec         workload.Spec
		speculative  int
		chaos, intra int
	}{
		{spec, 0, 0, 0}, {spec, 2, 0, 0}, {web, 2, 5, 0}, {spec, 2, 0, 4},
		{web, 0, 0, 0}, {spec, 2, 1, 0}, {spec, 0, 0, 0}, {spec, 2, 0, 0},
	} {
		c := cfg
		c.Speculative = step.speculative
		c.SpecChaos = step.chaos
		c.IntraParallelism = step.intra
		pooled := copyResult(r.Run(step.spec, workload.ScaleSmall, c))
		fresh := Run(step.spec, workload.ScaleSmall, cfg)
		if !resultsEqual(fresh, specless(pooled)) {
			t.Errorf("%s spec=%d chaos=%d intra=%d: pooled run diverged from serial fresh run",
				step.spec.Name, step.speculative, step.chaos, step.intra)
		}
	}
}

// TestSpecRaceForcedRollbacks is the adversarial concurrency sweep: a
// single-banked, slow uncore maximizes cross-core contention (every
// core's step contends for the same bank occupancy state), chaos forces
// the rollback path — stop, drain, restore, rewind, serial re-execution
// — repeatedly, and intra producers run underneath. Its value is under
// `go test -race`; it also checks run-to-run identity of the bytes and
// the counters.
func TestSpecRaceForcedRollbacks(t *testing.T) {
	spec, ok := workload.ByName("DSS-Qry17")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{
		EventsPerCore:    12_000,
		WarmupEvents:     3_000,
		Mechanism:        FDIP(),
		Uncore:           uncore.Config{Banks: 1, BankBusy: 16},
		IntraParallelism: 4,
		Speculative:      2,
		SpecChaos:        6,
	}
	r := NewRunner()
	var first Result
	for i := 0; i < 3; i++ {
		got := copyResult(r.Run(spec, workload.ScaleSmall, cfg))
		if i == 0 {
			first = got
			if got.Spec.Rollbacks == 0 {
				t.Fatal("adversarial config forced no rollbacks")
			}
		} else if !resultsEqual(first, got) {
			t.Fatalf("run %d diverged under forced rollbacks (spec %+v vs %+v)",
				i, got.Spec, first.Spec)
		}
	}
	serial := cfg
	serial.IntraParallelism = 0
	serial.Speculative = 0
	serial.SpecChaos = 0
	want := Run(spec, workload.ScaleSmall, serial)
	if !resultsEqual(want, specless(first)) {
		t.Error("adversarial speculative run diverged from serial")
	}
}

// TestRunnerClose: Close releases the worker goroutines, is idempotent,
// and leaves the Runner fully usable — a later run recreates workers
// and still matches a fresh serial run.
func TestRunnerClose(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{
		EventsPerCore:    12_000,
		WarmupEvents:     3_000,
		Mechanism:        Baseline(),
		IntraParallelism: 4,
		Speculative:      2,
	}
	serial := cfg
	serial.IntraParallelism = 0
	serial.Speculative = 0
	want := Run(spec, workload.ScaleSmall, serial)

	r := NewRunner()
	r.Close() // Close before any run is a no-op
	for i := 0; i < 3; i++ {
		got := copyResult(r.Run(spec, workload.ScaleSmall, cfg))
		if !resultsEqual(want, specless(got)) {
			t.Fatalf("cycle %d: run after Close diverged", i)
		}
		r.Close()
		r.Close() // idempotent
	}
}
