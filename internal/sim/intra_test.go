package sim

import (
	"testing"

	"tifs/internal/cpu"
	"tifs/internal/workload"
)

// copyResult deep-copies a Result out of the Runner's pooled buffers so
// it survives subsequent runs on the same Runner.
func copyResult(r Result) Result {
	r.PerCore = append([]cpu.Stats(nil), r.PerCore...)
	if r.TIFS != nil {
		t := *r.TIFS
		r.TIFS = &t
	}
	return r
}

// TestIntraByteIdentity is the core determinism guarantee of the
// intra-parallel path: for every mechanism, sharding event generation
// across 2/3/4/8 producers yields a Result identical in every field to
// the serial schedule — including shard counts that exceed or don't
// divide the core count.
func TestIntraByteIdentity(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	for name, m := range testMechanisms() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{EventsPerCore: 20_000, WarmupEvents: 5_000, Mechanism: m}
			serial := Run(spec, workload.ScaleSmall, cfg)
			for _, intra := range []int{2, 3, 4, 8} {
				icfg := cfg
				icfg.IntraParallelism = intra
				got := Run(spec, workload.ScaleSmall, icfg)
				if !resultsEqual(serial, got) {
					t.Errorf("intra=%d diverged from serial\nserial: %+v\nintra:  %+v",
						intra, serial, got)
				}
			}
		})
	}
}

// TestIntraBudgetEdges exercises the epoch-ring termination protocol at
// its boundaries: a total budget below one chunk, exactly one chunk, an
// exact multiple of the chunk size (which requires the empty terminal
// chunk), and one event past a chunk boundary.
func TestIntraBudgetEdges(t *testing.T) {
	spec, ok := workload.ByName("Web-Apache")
	if !ok {
		t.Fatal("workload missing")
	}
	for _, tc := range []struct {
		name           string
		events, warmup uint64
	}{
		{"sub-chunk", 1_000, 200},
		{"one-chunk", intraChunkEvents - 512, 512},
		{"exact-multiple", 3 * intraChunkEvents, intraChunkEvents},
		{"one-past", 2*intraChunkEvents - 511, 512},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{EventsPerCore: tc.events, WarmupEvents: tc.warmup, Mechanism: Baseline()}
			serial := Run(spec, workload.ScaleSmall, cfg)
			cfg.IntraParallelism = 4
			got := Run(spec, workload.ScaleSmall, cfg)
			if !resultsEqual(serial, got) {
				t.Errorf("%s: intra diverged from serial", tc.name)
			}
		})
	}
}

// TestIntraPooledRunnerChurn drives one pooled Runner back and forth
// between serial and intra-parallel runs of different shapes: pooled
// ring/worker state from one setting must never leak into the next.
func TestIntraPooledRunnerChurn(t *testing.T) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	web, ok := workload.ByName("Web-Zeus")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{EventsPerCore: 15_000, WarmupEvents: 4_000, Mechanism: Baseline()}
	r := NewRunner()
	for _, step := range []struct {
		spec  workload.Spec
		intra int
	}{
		{spec, 0}, {spec, 8}, {web, 2}, {spec, 1}, {web, 0}, {spec, 4}, {spec, 0},
	} {
		c := cfg
		c.IntraParallelism = step.intra
		pooled := copyResult(r.Run(step.spec, workload.ScaleSmall, c))
		fresh := Run(step.spec, workload.ScaleSmall, cfg)
		if !resultsEqual(fresh, pooled) {
			t.Errorf("%s intra=%d: pooled run diverged from serial fresh run",
				step.spec.Name, step.intra)
		}
	}
}

// TestIntraRace runs the maximum shard fan-out repeatedly on one pooled
// Runner; its value is under `go test -race`, where it sweeps the
// producer/consumer handoff, the ring reset, and worker-pool reuse.
func TestIntraRace(t *testing.T) {
	spec, ok := workload.ByName("DSS-Qry17")
	if !ok {
		t.Fatal("workload missing")
	}
	cfg := Config{
		EventsPerCore:    12_000,
		WarmupEvents:     3_000,
		Mechanism:        FDIP(),
		IntraParallelism: 8,
	}
	r := NewRunner()
	var first Result
	for i := 0; i < 3; i++ {
		got := copyResult(r.Run(spec, workload.ScaleSmall, cfg))
		if i == 0 {
			first = got
		} else if !resultsEqual(first, got) {
			t.Fatalf("run %d diverged under intra=8", i)
		}
	}
}
