// Intra-run parallelism: shard the per-core event streams of ONE
// simulation across a pool of producer goroutines while the merge
// goroutine — the caller of Runner.Run — keeps every piece of simulated
// state (cores, caches, predictors, prefetchers, and the shared uncore)
// and consumes the streams in the exact order the serial scheduler
// would.
//
// # Determinism model
//
// The shared uncore is order-sensitive everywhere: bank occupancy,
// memory-channel occupancy, and the shared L2 content all change on
// every access, so the byte-identity guarantee of the golden harness
// pins the *entire* interleaving of core steps, not just per-core
// event order. The only work a second goroutine can take without
// replaying that interleaving is work that touches no simulated state
// at all — and profiling shows one such stage dominates: synthetic
// event generation (the workload executors behind
// workload.Generated.Sources()) is 30-37% of a serial run and is a
// pure function of each core's own seed.
//
// So the split is: producers own the per-core executors and
// pre-generate events in fixed-size epochs (chunks) through bounded
// single-producer/single-consumer rings; the merge goroutine runs the
// unchanged min-heap scheduler over cores whose sources read from
// those rings. Every simulated-state mutation — L1, next-line buffer,
// branch predictor, prefetcher, uncore — still happens on the merge
// goroutine at the serial schedule's uncore boundary, so the output
// bytes are identical to IntraParallelism=1 by construction: the
// events are the same values in the same order, and nothing else
// moved.
//
// The epoch ring is also the barrier: a producer that runs more than
// intraRingChunks epochs ahead of the merge goroutine parks on the
// ring's free list, and the merge goroutine parks on the full list
// when it catches up — bounded skew, no unbounded buffering, and the
// channel handoff provides the happens-before edge that makes the
// chunk memory safe to reuse.
//
// # Pooling
//
// Everything here is pooled in the Runner so a warmed intra-parallel
// run allocates nothing: the chunk buffers, both channels of every
// ring, the producer descriptors, and the worker goroutines themselves
// (spawned once, parked on a task channel between runs; Runner.Close —
// or its finalizer backstop — closes the channel so idle workers do not
// outlive the Runner).
package sim

import (
	"context"
	"runtime/pprof"

	"tifs/internal/isa"
)

const (
	// intraChunkEvents is one epoch: the unit of producer->consumer
	// handoff. Large enough that channel operations amortize to noise
	// (one pair per 4096 events), small enough that the warm-up skew
	// between cores stays bounded.
	intraChunkEvents = 4096
	// intraRingChunks is how many epochs a producer may run ahead of
	// the merge goroutine per core.
	intraRingChunks = 4
)

// pipeChunk announces one filled epoch: the ring slot and how many
// events it holds. n < intraChunkEvents marks the stream's final chunk.
type pipeChunk struct {
	idx int32
	n   int32
}

// corePipe is one core's SPSC epoch ring. The producer side (a shard
// worker) fills slots drawn from free and publishes them on full; the
// consumer side implements isa.EventSource/BatchSource for the core.
type corePipe struct {
	buf  []isa.BlockEvent // intraRingChunks * intraChunkEvents slots
	full chan pipeChunk
	free chan int32

	// Consumer-side cursor over the current chunk.
	cur    pipeChunk
	pos    int32
	active bool // cur holds an unreturned chunk
	ended  bool // the final (short) chunk has been consumed
}

// newCorePipe builds a ring with all slots on the free list.
func newCorePipe() *corePipe {
	p := &corePipe{
		buf:  make([]isa.BlockEvent, intraRingChunks*intraChunkEvents),
		full: make(chan pipeChunk, intraRingChunks),
		free: make(chan int32, intraRingChunks),
	}
	p.resetConsumer()
	return p
}

// chunk returns slot idx's event storage.
func (p *corePipe) chunk(idx int32) []isa.BlockEvent {
	base := int(idx) * intraChunkEvents
	return p.buf[base : base+intraChunkEvents]
}

// resetConsumer restores the ring to its initial state: both channels
// drained, every slot on the free list, cursor cleared. Call only when
// no producer is running.
func (p *corePipe) resetConsumer() {
	for {
		select {
		case <-p.full:
		default:
			goto drained
		}
	}
drained:
	for {
		select {
		case <-p.free:
		default:
			goto refill
		}
	}
refill:
	for i := int32(0); i < intraRingChunks; i++ {
		p.free <- i
	}
	p.cur = pipeChunk{}
	p.pos = 0
	p.active = false
	p.ended = false
}

// advance releases the consumed chunk and blocks for the next one.
// It returns false once the final chunk has been consumed.
func (p *corePipe) advance() bool {
	if p.ended {
		return false
	}
	if p.active {
		if p.cur.n < intraChunkEvents {
			// The final chunk stays held; the stream is over.
			p.ended = true
			return false
		}
		p.free <- p.cur.idx
		p.active = false
	}
	p.cur = <-p.full
	p.pos = 0
	p.active = true
	if p.cur.n == 0 {
		p.ended = true
		return false
	}
	return true
}

// Next implements isa.EventSource on the consumer side.
func (p *corePipe) Next() (isa.BlockEvent, bool) {
	for p.pos >= p.cur.n || !p.active {
		if !p.advance() {
			return isa.BlockEvent{}, false
		}
	}
	ev := p.chunk(p.cur.idx)[p.pos]
	p.pos++
	return ev, true
}

// NextBatch implements isa.BatchSource: it fills dst across epoch
// boundaries, short only when the stream is exhausted (the contract the
// fetch unit's batched refill path relies on).
func (p *corePipe) NextBatch(dst []isa.BlockEvent) int {
	n := 0
	for n < len(dst) {
		for p.pos >= p.cur.n || !p.active {
			if !p.advance() {
				return n
			}
		}
		c := copy(dst[n:], p.chunk(p.cur.idx)[p.pos:p.cur.n])
		p.pos += int32(c)
		n += c
	}
	return n
}

// intraProducer generates one core's events into its pipe.
type intraProducer struct {
	pipe  *corePipe
	src   isa.EventSource
	batch isa.BatchSource // non-nil when src supports batch refills
	left  uint64          // events still to produce
	done  bool
}

// fillOne produces one epoch (blocking on ring backpressure) and
// reports whether the producer still has work. The stream always ends
// with a short chunk — possibly empty when the budget divides evenly —
// so the consumer needs no out-of-band end signal.
func (p *intraProducer) fillOne() {
	idx := <-p.pipe.free
	buf := p.pipe.chunk(idx)
	want := intraChunkEvents
	if p.left < uint64(want) {
		want = int(p.left)
	}
	n := 0
	if p.batch != nil {
		n = p.batch.NextBatch(buf[:want])
	} else {
		for n < want {
			ev, ok := p.src.Next()
			if !ok {
				break
			}
			buf[n] = ev
			n++
		}
	}
	p.left -= uint64(n)
	if n < intraChunkEvents {
		// Short chunk: source exhausted, or budget reached. Either way
		// this is the terminal epoch.
		p.done = true
	}
	p.pipe.full <- pipeChunk{idx: idx, n: int32(n)}
}

// intraTask is one shard worker's assignment: a contiguous subset of
// the run's producers, advanced round-robin one epoch at a time. The
// round-robin pass is the epoch schedule; a pipe whose ring is full
// parks the worker until the merge goroutine drains it.
type intraTask struct {
	prods []intraProducer
	done  chan struct{}
}

func (t *intraTask) run() {
	for {
		live := 0
		for i := range t.prods {
			p := &t.prods[i]
			if p.done {
				continue
			}
			p.fillOne()
			if !p.done {
				live++
			}
		}
		if live == 0 {
			break
		}
	}
	t.done <- struct{}{}
}

// intraWorker is a persistent shard worker: it parks on the task
// channel between runs and exits when the channel closes
// (Runner.Close, or its finalizer backstop). It deliberately receives
// only the channel — never the Runner — so parked workers cannot keep a
// dropped Runner alive. The goroutine carries a pprof label so profiles
// attribute event generation to this tier.
func intraWorker(work chan *intraTask) {
	pprof.Do(context.Background(), pprof.Labels("tifs-tier", "intra-producer"), func(context.Context) {
		for t := range work {
			t.run()
		}
	})
}

// intraState is the Runner's pooled intra-parallel machinery.
type intraState struct {
	pipes   []*corePipe
	srcs    []isa.EventSource
	tasks   []intraTask
	work    chan *intraTask
	workers int
}

// pipeSources ensures a pooled ring per core and returns the pipes as
// the event sources the cores should read this run.
func (r *Runner) pipeSources(cores int) []isa.EventSource {
	st := &r.intra
	for len(st.pipes) < cores {
		st.pipes = append(st.pipes, newCorePipe())
	}
	if cap(st.srcs) < cores {
		st.srcs = make([]isa.EventSource, cores)
	}
	st.srcs = st.srcs[:cores]
	for i := 0; i < cores; i++ {
		st.srcs[i] = st.pipes[i]
	}
	return st.srcs
}

// intraShards returns the producer-goroutine count for a run: the knob
// bounded by the core count (more shards than cores would idle).
func intraShards(intra, cores int) int {
	if intra > cores {
		intra = cores
	}
	return intra
}

// startIntra partitions the run's event sources (the real workload
// executors) across shard workers feeding the rings handed out by
// pipeSources. Call after all configuration validation — nothing may
// panic between start and finishIntra. The pipes' previous-run state is
// reset here, strictly before any producer starts, so the handoff
// through the task channel orders every reset before the first
// concurrent access.
func (r *Runner) startIntra(sources []isa.EventSource, perCore uint64, shards int) {
	st := &r.intra
	cores := len(sources)
	if cap(st.tasks) < shards {
		st.tasks = make([]intraTask, shards)
		for i := range st.tasks {
			st.tasks[i].done = make(chan struct{}, 1)
		}
	}
	st.tasks = st.tasks[:shards]
	if st.work == nil {
		st.work = make(chan *intraTask)
		r.armFinalizer()
	}
	for st.workers < shards {
		go intraWorker(st.work)
		st.workers++
	}

	for i := 0; i < cores; i++ {
		st.pipes[i].resetConsumer()
	}
	for s := 0; s < shards; s++ {
		lo, hi := s*cores/shards, (s+1)*cores/shards
		t := &st.tasks[s]
		t.prods = resizeProducers(t.prods, hi-lo)
		for i := lo; i < hi; i++ {
			p := &t.prods[i-lo]
			p.pipe = st.pipes[i]
			p.src = sources[i]
			p.batch, _ = sources[i].(isa.BatchSource)
			p.left = perCore
			p.done = false
		}
	}
	for s := range st.tasks {
		st.work <- &st.tasks[s]
	}
}

// finishIntra waits for every shard worker to retire its task and
// clears producer references so pooled state does not pin executors.
func (r *Runner) finishIntra() {
	st := &r.intra
	for s := range st.tasks {
		<-st.tasks[s].done
		for i := range st.tasks[s].prods {
			st.tasks[s].prods[i] = intraProducer{}
		}
	}
}

// resizeProducers returns s with length n, reusing its backing array.
func resizeProducers(s []intraProducer, n int) []intraProducer {
	if cap(s) < n {
		return make([]intraProducer, n)
	}
	return s[:n]
}
