// Package retry is the one shared policy for handling I/O failures in
// the persistence and coordination stack: classify the error, retry the
// transient ones under capped exponential backoff with deterministic
// jitter, and surface the permanent ones immediately so the caller can
// degrade gracefully (the store drops to in-memory operation, a shard
// gives its lease back).
//
// Classification is deliberately conservative in the permanent
// direction: an error we cannot recognize as transient is permanent,
// because the stack always has a safe degraded mode — recompute, or
// abort cleanly — whereas spinning on a genuinely dead disk would stall
// a sweep without bound.
package retry

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
	"time"
)

// Transient reports whether err is worth retrying: the class of faults
// that flaky shared filesystems and interrupted syscalls produce and
// that typically heal within milliseconds. Everything else — disk full
// (ENOSPC, EDQUOT), read-only media (EROFS), permission failures, and
// unrecognized error types — is permanent and must be handled by
// degradation, not repetition.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.ErrShortWrite) {
		// A short write with no errno is a torn append whose cause is
		// unknown; the writer re-issues at the same offset, so retrying
		// is safe and usually succeeds.
		return true
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ETIMEDOUT,
			syscall.EIO, syscall.ESTALE, syscall.ENOLCK:
			// EIO and ESTALE are the classic transient NFS faults; a
			// persistent EIO simply exhausts the attempt budget and then
			// degrades like a permanent fault.
			return true
		}
		return false
	}
	return false
}

// Transienter lets an error carry its own classification: the remote
// store wraps HTTP status codes in errors implementing it (a 503 is
// transient, a 400 is permanent).
type Transienter interface{ Transient() bool }

// TransientNetwork is Transient extended with the failure classes the
// network boundary produces: connection-level errnos (refused, reset,
// unreachable — the shapes a partition, a crashed server, or a dropped
// packet surface as), request timeouts (a per-op deadline expiring is a
// slow network, not a dead one), torn response bodies (unexpected EOF
// mid-read), and errors that classify themselves via Transienter.
// Context cancellation is permanent: the caller asked to stop.
func TransientNetwork(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		// A torn body: the server (or an injected fault) cut the
		// response short of its Content-Length. Reads are idempotent.
		return true
	}
	var tr Transienter
	if errors.As(err, &tr) {
		return tr.Transient()
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.ECONNREFUSED, syscall.ECONNRESET, syscall.ECONNABORTED,
			syscall.EPIPE, syscall.EHOSTUNREACH, syscall.ENETUNREACH,
			syscall.ENETDOWN, syscall.ENETRESET, syscall.EADDRNOTAVAIL:
			return true
		}
		return Transient(err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return Transient(err)
}

// Policy is a capped exponential backoff schedule. The zero value is
// usable: 4 attempts, 2ms base, 250ms cap, real sleeping.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (0 selects 4).
	Attempts int
	// Base is the first backoff delay (0 selects 2ms); delay doubles
	// per retry, capped at Max (0 selects 250ms).
	Base, Max time.Duration
	// Seed decorrelates the deterministic jitter between independent
	// retry sites; the same (Seed, attempt) always yields the same
	// delay, so a failing schedule reproduces exactly.
	Seed uint64
	// Sleep is the delay function (nil selects time.Sleep); tests
	// substitute a recorder to run schedules instantly.
	Sleep func(time.Duration)
	// Classify decides which errors are worth retrying (nil selects
	// Transient, the filesystem classifier; network callers set
	// TransientNetwork).
	Classify func(error) bool
}

func (p Policy) classify(err error) bool {
	if p.Classify != nil {
		return p.Classify(err)
	}
	return Transient(err)
}

func (p Policy) attempts() int {
	if p.Attempts <= 0 {
		return 4
	}
	return p.Attempts
}

// Backoff returns the delay before retry attempt (0-based: the delay
// after the first failure is Backoff(0)). The schedule is exponential
// from Base with a deterministic jitter in [delay/2, delay]: jittered
// enough that lock-step writers decorrelate, deterministic enough that
// a reproduced failure replays the same timing.
func (p Policy) Backoff(attempt int) time.Duration {
	base, max := p.Base, p.Max
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// xorshift* on (Seed, attempt): cheap, stateless, deterministic.
	x := p.Seed ^ (uint64(attempt)+1)*0x9e3779b97f4a7c15
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(x%uint64(half+1))
}

// Do runs op, retrying transient failures per the policy. It returns
// nil on success, or the final error: the first permanent failure, or
// the last transient one once attempts are exhausted.
func (p Policy) Do(op func() error) error {
	return p.DoContext(context.Background(), op)
}

// DoContext is Do bounded by a context: a cancellation observed between
// attempts — including mid-backoff, where the sleep is cut short — stops
// retrying and returns ctx's error immediately. op itself is not
// interrupted; pass ctx into the operation for that.
func (p Policy) DoContext(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; attempt < p.attempts(); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if err = op(); err == nil {
			return nil
		}
		if !p.classify(err) {
			return err
		}
		if attempt < p.attempts()-1 {
			if cerr := p.sleep(ctx, p.Backoff(attempt)); cerr != nil {
				return cerr
			}
		}
	}
	return err
}

// sleep waits d or until ctx is cancelled, whichever comes first. A
// substituted Policy.Sleep (test recorders) is honored as-is — it is
// assumed not to block meaningfully — with the cancellation check after.
func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
