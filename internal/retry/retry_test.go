package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	transient := []error{
		syscall.EIO,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ESTALE,
		syscall.ENOLCK,
		io.ErrShortWrite,
		fmt.Errorf("wrapped: %w", syscall.EIO),
		fmt.Errorf("wrapped: %w", io.ErrShortWrite),
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		syscall.ENOSPC,
		syscall.EROFS,
		syscall.EACCES,
		syscall.EDQUOT,
		errors.New("anything unrecognized"),
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Seed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		d := p.Backoff(attempt)
		if d != p.Backoff(attempt) {
			t.Fatalf("attempt %d: backoff is not deterministic", attempt)
		}
		// The uncapped exponential envelope for this attempt.
		envelope := 2 * time.Millisecond << attempt
		if envelope > p.Max {
			envelope = p.Max
		}
		if d < envelope/2 || d > envelope {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, envelope/2, envelope)
		}
	}
	// Different seeds decorrelate the schedule.
	q := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if p.Backoff(attempt) != q.Backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Error("two seeds produced identical schedules")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	// Transient failures heal: two EIOs, then success.
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("healing transient: err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (between attempts only)", len(slept))
	}

	// A permanent failure returns immediately, no retries, no sleeping.
	slept = nil
	calls = 0
	err = p.Do(func() error { calls++; return syscall.ENOSPC })
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 || len(slept) != 0 {
		t.Fatalf("permanent: err=%v calls=%d sleeps=%d, want immediate ENOSPC", err, calls, len(slept))
	}

	// Persistent transient failures exhaust the budget and surface the
	// last error.
	calls = 0
	err = p.Do(func() error { calls++; return syscall.EIO })
	if !errors.Is(err, syscall.EIO) || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d, want EIO after 3 attempts", err, calls)
	}
}

func TestDoZeroValueDefaults(t *testing.T) {
	p := Policy{Sleep: func(time.Duration) {}}
	calls := 0
	p.Do(func() error { calls++; return syscall.EIO })
	if calls != 4 {
		t.Fatalf("zero-value policy ran %d attempts, want 4", calls)
	}
}

// TestDoContextCancelMidBackoff: a cancellation that lands while the
// policy is sleeping between attempts must return ctx's error promptly —
// it must not sit out the remainder of the backoff, and it must not run
// another attempt afterwards.
func TestDoContextCancelMidBackoff(t *testing.T) {
	// A schedule whose first backoff alone far exceeds the test's
	// tolerance: if cancellation doesn't interrupt the sleep, the
	// elapsed-time assertion below fails.
	p := Policy{Attempts: 4, Base: 30 * time.Second, Max: 30 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := p.DoContext(ctx, func() error { calls++; return syscall.EIO })
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times, want 1 (no attempt after cancellation)", calls)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("DoContext took %v to notice cancellation; the backoff sleep was not interrupted", elapsed)
	}
}

// TestDoContextCancelBeforeAttempt: a context already cancelled on entry
// (or cancelled between attempts by the op itself) stops the loop before
// the next call.
func TestDoContextCancelBeforeAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{Sleep: func(time.Duration) {}}.DoContext(ctx, func() error { calls++; return syscall.EIO })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d, want context.Canceled before any attempt", err, calls)
	}

	// Cancelled during an attempt: the transient error would normally
	// retry, but the cancellation observed at the next loop boundary (via
	// the recorder sleep's post-check) wins.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls = 0
	err = Policy{Sleep: func(time.Duration) {}}.DoContext(ctx2, func() error {
		calls++
		cancel2()
		return syscall.EIO
	})
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want context.Canceled after one attempt", err, calls)
	}
}

// TestJitterDeterminismAcrossReseeds: the jitter is a pure function of
// (Seed, attempt) — re-creating the policy, reordering calls, or
// interleaving other schedules must not perturb a delay. This is what
// makes a captured failing schedule replay exactly.
func TestJitterDeterminismAcrossReseeds(t *testing.T) {
	mk := func(seed uint64) Policy {
		return Policy{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond, Seed: seed}
	}
	var first [8]time.Duration
	for attempt := range first {
		first[attempt] = mk(7).Backoff(attempt)
	}
	// Fresh policy values, reversed order, with another seed's schedule
	// interleaved: every delay must reproduce.
	for attempt := len(first) - 1; attempt >= 0; attempt-- {
		_ = mk(99).Backoff(attempt) // interleaved foreign schedule
		if got := mk(7).Backoff(attempt); got != first[attempt] {
			t.Fatalf("attempt %d: %v after reseed, want %v", attempt, got, first[attempt])
		}
	}
	// And reseeding with a different value actually changes the schedule.
	diff := false
	for attempt := range first {
		if mk(8).Backoff(attempt) != first[attempt] {
			diff = true
		}
	}
	if !diff {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

// TestTransientNetworkClassification covers the network-boundary error
// classes layered on top of the filesystem classifier.
func TestTransientNetworkClassification(t *testing.T) {
	transient := []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		syscall.EHOSTUNREACH,
		context.DeadlineExceeded,
		io.ErrUnexpectedEOF,
		fmt.Errorf("Get \"http://x\": %w", syscall.ECONNREFUSED),
		&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED},
		syscall.EIO, // the filesystem set still applies
		statusErr{503},
		statusErr{429},
	}
	for _, err := range transient {
		if !TransientNetwork(err) {
			t.Errorf("TransientNetwork(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		context.Canceled,
		errors.New("unrecognized"),
		syscall.ENOSPC,
		statusErr{404},
		statusErr{400},
	}
	for _, err := range permanent {
		if TransientNetwork(err) {
			t.Errorf("TransientNetwork(%v) = true, want false", err)
		}
	}
}

// statusErr models the remote store's self-classifying HTTP errors.
type statusErr struct{ status int }

func (e statusErr) Error() string   { return fmt.Sprintf("status %d", e.status) }
func (e statusErr) Transient() bool { return e.status >= 500 || e.status == 429 }
