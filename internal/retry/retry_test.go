package retry

import (
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	transient := []error{
		syscall.EIO,
		syscall.EINTR,
		syscall.EAGAIN,
		syscall.ESTALE,
		syscall.ENOLCK,
		io.ErrShortWrite,
		fmt.Errorf("wrapped: %w", syscall.EIO),
		fmt.Errorf("wrapped: %w", io.ErrShortWrite),
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		syscall.ENOSPC,
		syscall.EROFS,
		syscall.EACCES,
		syscall.EDQUOT,
		errors.New("anything unrecognized"),
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

func TestBackoffDeterministicCappedJittered(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Seed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		d := p.Backoff(attempt)
		if d != p.Backoff(attempt) {
			t.Fatalf("attempt %d: backoff is not deterministic", attempt)
		}
		// The uncapped exponential envelope for this attempt.
		envelope := 2 * time.Millisecond << attempt
		if envelope > p.Max {
			envelope = p.Max
		}
		if d < envelope/2 || d > envelope {
			t.Errorf("attempt %d: delay %v outside jitter window [%v, %v]", attempt, d, envelope/2, envelope)
		}
	}
	// Different seeds decorrelate the schedule.
	q := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if p.Backoff(attempt) != q.Backoff(attempt) {
			same = false
		}
	}
	if same {
		t.Error("two seeds produced identical schedules")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	// Transient failures heal: two EIOs, then success.
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("healing transient: err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (between attempts only)", len(slept))
	}

	// A permanent failure returns immediately, no retries, no sleeping.
	slept = nil
	calls = 0
	err = p.Do(func() error { calls++; return syscall.ENOSPC })
	if !errors.Is(err, syscall.ENOSPC) || calls != 1 || len(slept) != 0 {
		t.Fatalf("permanent: err=%v calls=%d sleeps=%d, want immediate ENOSPC", err, calls, len(slept))
	}

	// Persistent transient failures exhaust the budget and surface the
	// last error.
	calls = 0
	err = p.Do(func() error { calls++; return syscall.EIO })
	if !errors.Is(err, syscall.EIO) || calls != 3 {
		t.Fatalf("exhaustion: err=%v calls=%d, want EIO after 3 attempts", err, calls)
	}
}

func TestDoZeroValueDefaults(t *testing.T) {
	p := Policy{Sleep: func(time.Duration) {}}
	calls := 0
	p.Do(func() error { calls++; return syscall.EIO })
	if calls != 4 {
		t.Fatalf("zero-value policy ran %d attempts, want 4", calls)
	}
}
