// Package cache implements the set-associative cache model used for the
// L1 instruction caches and the shared L2 of the simulated CMP (Table II:
// split 64 KB 2-way L1s, 8 MB 16-way L2, 64-byte blocks).
//
// The model is functional: it tracks presence and replacement state, not
// timing. Timing lives in internal/cpu and internal/uncore, which consult
// this model for hit/miss decisions.
package cache

import (
	"fmt"

	"tifs/internal/isa"
)

// Config sizes a cache.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
}

// Validate checks the configuration for consistency: capacity must be a
// positive multiple of Assoc cache blocks and yield a power-of-two number
// of sets (required for index extraction).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive size or associativity: %+v", c)
	}
	blocks := c.SizeBytes / isa.BlockBytes
	if blocks*isa.BlockBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block size", c.SizeBytes)
	}
	if blocks%c.Assoc != 0 {
		return fmt.Errorf("cache: %d blocks not divisible by assoc %d", blocks, c.Assoc)
	}
	sets := blocks / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets is not a power of two", sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	// Accesses is the number of demand accesses (Access calls).
	Accesses uint64
	// Hits is the number of demand accesses that hit.
	Hits uint64
	// Fills is the number of blocks inserted.
	Fills uint64
	// Evictions is the number of valid blocks displaced by fills.
	Evictions uint64
}

// Misses returns demand misses.
func (s Stats) Misses() uint64 { return s.Accesses - s.Hits }

// HitRate returns the demand hit fraction (0 when idle).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type way struct {
	tag   uint64
	valid bool
	used  uint64 // global LRU stamp
}

// Cache is a set-associative cache with true-LRU replacement over block
// addresses. Ways are stored as one flat array indexed set*assoc so the
// hot lookup path is a single bounds-checked slice scan.
type Cache struct {
	cfg     Config
	ways    []way
	assoc   int
	setMask uint64
	clock   uint64
	stats   Stats
}

// New builds a cache; it panics on an invalid configuration (sizes are
// static simulator parameters, so misconfiguration is a programming
// error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.SizeBytes / isa.BlockBytes / cfg.Assoc
	return &Cache{
		cfg:     cfg,
		ways:    make([]way, numSets*cfg.Assoc),
		assoc:   cfg.Assoc,
		setMask: uint64(numSets - 1),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset empties the cache and zeroes its counters, restoring the state a
// freshly constructed cache of the same geometry would have. Pooled
// simulation runs reuse the ways array instead of reallocating it.
func (c *Cache) Reset() {
	clear(c.ways)
	c.clock = 0
	c.stats = Stats{}
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.ways) / c.assoc }

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// set returns the flat-array slice holding b's set.
func (c *Cache) set(b isa.Block) []way {
	base := int(uint64(b)&c.setMask) * c.assoc
	return c.ways[base : base+c.assoc]
}

// find returns the way holding b, or nil.
func (c *Cache) find(b isa.Block) *way {
	tag := uint64(b)
	s := c.set(b)
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			return &s[i]
		}
	}
	return nil
}

// Access performs a demand lookup for b, updating LRU on a hit, and
// reports whether it hit. A miss does not fill; the caller decides when
// the fill completes (see Fill).
func (c *Cache) Access(b isa.Block) bool {
	c.stats.Accesses++
	c.clock++
	if w := c.find(b); w != nil {
		c.stats.Hits++
		w.used = c.clock
		return true
	}
	return false
}

// Contains probes for b without touching LRU or statistics.
func (c *Cache) Contains(b isa.Block) bool { return c.find(b) != nil }

// Fill inserts b, evicting the LRU way if the set is full. It returns the
// evicted block and whether an eviction happened. Filling an already
// present block refreshes its LRU stamp only.
func (c *Cache) Fill(b isa.Block) (evicted isa.Block, ok bool) {
	c.clock++
	if w := c.find(b); w != nil {
		w.used = c.clock
		return 0, false
	}
	c.stats.Fills++
	s := c.set(b)
	victim := &s[0]
	for i := range s {
		if !s[i].valid {
			victim = &s[i]
			break
		}
		if s[i].used < victim.used {
			victim = &s[i]
		}
	}
	var evictedBlock isa.Block
	hadVictim := victim.valid
	if hadVictim {
		c.stats.Evictions++
		evictedBlock = isa.Block(victim.tag)
	}
	victim.tag = uint64(b)
	victim.valid = true
	victim.used = c.clock
	return evictedBlock, hadVictim
}

// Snapshot holds a checkpoint of a Cache's ways, LRU clock, and
// counters. Save reuses its buffer, so a pooled Snapshot reaches zero
// steady-state allocations after the first save of a geometry.
type Snapshot struct {
	ways  []way
	clock uint64
	stats Stats
}

// Save copies the cache's current state into s.
func (c *Cache) Save(s *Snapshot) {
	s.ways = append(s.ways[:0], c.ways...)
	s.clock = c.clock
	s.stats = c.stats
}

// Restore rewinds the cache to the state captured by Save. The snapshot
// must come from a cache of the same geometry.
func (c *Cache) Restore(s *Snapshot) {
	copy(c.ways, s.ways)
	c.clock = s.clock
	c.stats = s.stats
}

// Invalidate removes b if present and reports whether it was present.
func (c *Cache) Invalidate(b isa.Block) bool {
	if w := c.find(b); w != nil {
		w.valid = false
		return true
	}
	return false
}

// Occupancy returns the number of valid blocks currently resident.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].valid {
			n++
		}
	}
	return n
}
