package cache

import (
	"testing"
	"testing/quick"

	"tifs/internal/isa"
)

func small(t testing.TB) *Cache {
	t.Helper()
	// 8 blocks, 2-way: 4 sets.
	return New(Config{SizeBytes: 8 * isa.BlockBytes, Assoc: 2})
}

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 64 * 1024, Assoc: 2},
		{SizeBytes: 8 * 1024 * 1024, Assoc: 16},
		{SizeBytes: isa.BlockBytes, Assoc: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0, Assoc: 2},
		{SizeBytes: 64 * 1024, Assoc: 0},
		{SizeBytes: 100, Assoc: 1},                // not block multiple
		{SizeBytes: 3 * isa.BlockBytes, Assoc: 2}, // blocks not divisible
		{SizeBytes: 6 * isa.BlockBytes, Assoc: 2}, // 3 sets, not power of 2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", c)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config should panic")
		}
	}()
	New(Config{SizeBytes: 100, Assoc: 3})
}

func TestMissThenFillThenHit(t *testing.T) {
	c := small(t)
	b := isa.Block(0x40)
	if c.Access(b) {
		t.Error("cold access should miss")
	}
	c.Fill(b)
	if !c.Access(b) {
		t.Error("access after fill should hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses() != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := small(t)
	b := isa.Block(4) // set 0 in a 4-set cache
	c.Fill(b)
	before := c.Stats()
	if !c.Contains(b) {
		t.Error("Contains should find filled block")
	}
	if c.Contains(isa.Block(99999)) {
		t.Error("Contains found absent block")
	}
	if c.Stats() != before {
		t.Error("Contains changed stats")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 4 sets, 2-way
	// Three blocks mapping to set 0: block numbers 0, 4, 8.
	b0, b4, b8 := isa.Block(0), isa.Block(4), isa.Block(8)
	c.Fill(b0)
	c.Fill(b4)
	// Touch b0 so b4 is LRU.
	c.Access(b0)
	evicted, ok := c.Fill(b8)
	if !ok || evicted != b4 {
		t.Errorf("evicted %v,%v; want %v", evicted, ok, b4)
	}
	if !c.Contains(b0) || !c.Contains(b8) || c.Contains(b4) {
		t.Error("wrong residents after eviction")
	}
}

func TestFillExistingRefreshesLRU(t *testing.T) {
	c := small(t)
	b0, b4, b8 := isa.Block(0), isa.Block(4), isa.Block(8)
	c.Fill(b0)
	c.Fill(b4)
	c.Fill(b0) // refresh b0: b4 becomes LRU
	if ev, ok := c.Fill(b8); !ok || ev != b4 {
		t.Errorf("evicted %v,%v; want %v", ev, ok, b4)
	}
	// Re-filling an existing block must not count as a fill.
	st := c.Stats()
	if st.Fills != 3 {
		t.Errorf("Fills = %d, want 3", st.Fills)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	b := isa.Block(7)
	c.Fill(b)
	if !c.Invalidate(b) {
		t.Error("Invalidate should report presence")
	}
	if c.Contains(b) {
		t.Error("block still present after Invalidate")
	}
	if c.Invalidate(b) {
		t.Error("second Invalidate should report absence")
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := small(t)
	for i := 0; i < 1000; i++ {
		c.Fill(isa.Block(i * 3))
	}
	if occ := c.Occupancy(); occ != 8 {
		t.Errorf("occupancy = %d, want full (8)", occ)
	}
}

func TestSetIsolation(t *testing.T) {
	c := small(t)
	// Fill set 0 to capacity; set 1 must be unaffected.
	c.Fill(isa.Block(0))
	c.Fill(isa.Block(4))
	c.Fill(isa.Block(8))
	if c.Contains(isa.Block(1)) {
		t.Error("set-1 block present before fill")
	}
	c.Fill(isa.Block(1))
	if !c.Contains(isa.Block(1)) {
		t.Error("set-1 block missing")
	}
	// Set 0 churn cannot evict set 1.
	for i := 0; i < 100; i++ {
		c.Fill(isa.Block(i * 4))
	}
	if !c.Contains(isa.Block(1)) {
		t.Error("set-0 churn evicted set-1 block")
	}
}

func TestDirectMapped(t *testing.T) {
	c := New(Config{SizeBytes: 4 * isa.BlockBytes, Assoc: 1})
	c.Fill(isa.Block(0))
	if ev, ok := c.Fill(isa.Block(4)); !ok || ev != 0 {
		t.Errorf("direct-mapped conflict: evicted %v,%v", ev, ok)
	}
}

func TestFullyAssociative(t *testing.T) {
	c := New(Config{SizeBytes: 4 * isa.BlockBytes, Assoc: 4})
	if c.NumSets() != 1 {
		t.Fatalf("NumSets = %d", c.NumSets())
	}
	for i := 0; i < 4; i++ {
		c.Fill(isa.Block(i * 1000))
	}
	// LRU is block 0.
	if ev, ok := c.Fill(isa.Block(9999)); !ok || ev != 0 {
		t.Errorf("evicted %v,%v; want block 0", ev, ok)
	}
}

// Property: a cache never reports a hit for a block that was never filled,
// and always hits a block filled more recently than Assoc-1 other fills to
// its set.
func TestPropertyMostRecentAlwaysResident(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 16 * isa.BlockBytes, Assoc: 4})
		var last isa.Block
		filled := false
		for _, op := range ops {
			b := isa.Block(op % 64)
			c.Fill(b)
			last = b
			filled = true
			// Immediately after a fill, the block must be resident.
			if !c.Contains(b) {
				return false
			}
		}
		if filled && !c.Contains(last) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: occupancy never exceeds capacity, and stats stay consistent
// (hits <= accesses, evictions <= fills).
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 8 * isa.BlockBytes, Assoc: 2})
		for _, op := range ops {
			b := isa.Block(op % 32)
			if !c.Access(b) {
				c.Fill(b)
			}
		}
		st := c.Stats()
		return c.Occupancy() <= 8 &&
			st.Hits <= st.Accesses &&
			st.Evictions <= st.Fills
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the model agrees with a reference map-based fully-associative
// LRU implementation when configured with one set.
func TestPropertyMatchesReferenceLRU(t *testing.T) {
	const ways = 4
	f := func(ops []uint8) bool {
		c := New(Config{SizeBytes: ways * isa.BlockBytes, Assoc: ways})
		var ref []isa.Block // front = MRU
		refTouch := func(b isa.Block) bool {
			for i, x := range ref {
				if x == b {
					ref = append(ref[:i], ref[i+1:]...)
					ref = append([]isa.Block{b}, ref...)
					return true
				}
			}
			return false
		}
		refFill := func(b isa.Block) {
			if refTouch(b) {
				return
			}
			if len(ref) == ways {
				ref = ref[:ways-1]
			}
			ref = append([]isa.Block{b}, ref...)
		}
		for _, op := range ops {
			b := isa.Block(op % 16)
			hit := c.Access(b)
			refHit := refTouch(b)
			if hit != refHit {
				return false
			}
			if !hit {
				c.Fill(b)
				refFill(b)
			}
		}
		for _, b := range ref {
			if !c.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	c := small(t)
	if c.Stats().HitRate() != 0 {
		t.Error("idle hit rate should be 0")
	}
	b := isa.Block(1)
	c.Access(b)
	c.Fill(b)
	c.Access(b)
	if got := c.Stats().HitRate(); got != 0.5 {
		t.Errorf("HitRate = %f, want 0.5", got)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{SizeBytes: 64 * 1024, Assoc: 2})
	for i := 0; i < 1024; i++ {
		c.Fill(isa.Block(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := isa.Block(i & 2047)
		if !c.Access(blk) {
			c.Fill(blk)
		}
	}
}
