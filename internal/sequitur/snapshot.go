package sequitur

import "fmt"

// Sym is one grammar symbol in a snapshot: either a terminal value or a
// rule reference.
type Sym struct {
	// IsRule distinguishes rule references from terminals.
	IsRule bool
	// Rule is the referenced rule's snapshot index (valid when IsRule).
	Rule int
	// Value is the terminal value (valid when !IsRule).
	Value uint64
}

// RuleView is one production rule in a snapshot. Rule 0 is the root (the
// whole sequence); every other rule is a recurring subsequence — a
// temporal instruction stream in the paper's terms.
type RuleView struct {
	// ID is the snapshot index of the rule.
	ID int
	// Syms is the rule's right-hand side.
	Syms []Sym
	// Uses is the number of references to this rule from other rules
	// (0 for the root; >= 2 otherwise, by the utility invariant).
	Uses int
	// ExpLen is the rule's full expansion length in terminals.
	ExpLen uint64
}

// Snapshot is an immutable view of a grammar, with rules renumbered
// densely (dead rules dropped) and expansion lengths precomputed.
type Snapshot struct {
	// Rules holds the live rules; Rules[0] is the root.
	Rules []RuleView
}

// Snapshot captures the grammar's current state. The grammar remains
// usable afterwards.
func (g *Grammar) Snapshot() *Snapshot {
	// Collect live rules reachable from the root (expand leaves dead
	// rules behind by design).
	idx := map[*rule]int{g.root: 0}
	order := []*rule{g.root}
	for i := 0; i < len(order); i++ {
		for s := order[i].first(); !s.isGuard(); s = s.next {
			if s.nonTerminal() {
				if _, ok := idx[s.r]; !ok {
					idx[s.r] = len(order)
					order = append(order, s.r)
				}
			}
		}
	}

	snap := &Snapshot{Rules: make([]RuleView, len(order))}
	for i, r := range order {
		rv := RuleView{ID: i, Uses: r.count}
		for s := r.first(); !s.isGuard(); s = s.next {
			if s.nonTerminal() {
				rv.Syms = append(rv.Syms, Sym{IsRule: true, Rule: idx[s.r]})
			} else {
				rv.Syms = append(rv.Syms, Sym{Value: s.value})
			}
		}
		snap.Rules[i] = rv
	}

	// Expansion lengths, bottom-up via memoized recursion.
	memo := make([]uint64, len(snap.Rules))
	var expLen func(int) uint64
	expLen = func(id int) uint64 {
		if memo[id] > 0 {
			return memo[id]
		}
		var n uint64
		for _, s := range snap.Rules[id].Syms {
			if s.IsRule {
				n += expLen(s.Rule)
			} else {
				n++
			}
		}
		memo[id] = n
		return n
	}
	for i := range snap.Rules {
		snap.Rules[i].ExpLen = expLen(i)
	}
	return snap
}

// Expand returns the full terminal expansion of the given rule.
func (s *Snapshot) Expand(id int) []uint64 {
	if id < 0 || id >= len(s.Rules) {
		panic(fmt.Sprintf("sequitur: rule %d out of range", id))
	}
	out := make([]uint64, 0, s.Rules[id].ExpLen)
	var walk func(int)
	walk = func(r int) {
		for _, sym := range s.Rules[r].Syms {
			if sym.IsRule {
				walk(sym.Rule)
			} else {
				out = append(out, sym.Value)
			}
		}
	}
	walk(id)
	return out
}

// Sequence returns the original input sequence (the root expansion).
func (s *Snapshot) Sequence() []uint64 { return s.Expand(0) }

// NumRules returns the number of live rules including the root.
func (s *Snapshot) NumRules() int { return len(s.Rules) }

// CheckInvariants verifies digram uniqueness and rule utility on the
// snapshot; it is used by the test suite and returns a descriptive error
// on the first violation.
func (s *Snapshot) CheckInvariants() error {
	type dg struct {
		ar, br bool
		a, b   uint64
	}
	seen := make(map[dg][2]int)
	for _, r := range s.Rules {
		for i := 0; i+1 < len(r.Syms); i++ {
			a, b := r.Syms[i], r.Syms[i+1]
			k := dg{ar: a.IsRule, br: b.IsRule, a: a.Value, b: b.Value}
			if a.IsRule {
				k.a = uint64(a.Rule)
			}
			if b.IsRule {
				k.b = uint64(b.Rule)
			}
			if prev, ok := seen[k]; ok {
				// Overlapping occurrences inside runs of one symbol are
				// permitted (digram positions i and i+1 in "aaa").
				if prev[0] == r.ID && (i-prev[1]) == 1 && a == b {
					continue
				}
				return fmt.Errorf("sequitur: digram %+v occurs in rule %d@%d and rule %d@%d", k, prev[0], prev[1], r.ID, i)
			}
			seen[k] = [2]int{r.ID, i}
		}
	}
	uses := make([]int, len(s.Rules))
	for _, r := range s.Rules {
		for _, sym := range r.Syms {
			if sym.IsRule {
				uses[sym.Rule]++
			}
		}
	}
	for i, r := range s.Rules {
		if i == 0 {
			continue
		}
		if uses[i] < 2 {
			return fmt.Errorf("sequitur: rule %d used %d times (utility violation)", i, uses[i])
		}
		if uses[i] != r.Uses {
			return fmt.Errorf("sequitur: rule %d recorded uses %d != actual %d", i, r.Uses, uses[i])
		}
		if len(r.Syms) < 2 {
			return fmt.Errorf("sequitur: rule %d has %d symbols", i, len(r.Syms))
		}
	}
	return nil
}

// Build is a convenience constructing a grammar over seq and returning
// its snapshot.
func Build(seq []uint64) *Snapshot {
	g := New()
	for _, v := range seq {
		g.Append(v)
	}
	return g.Snapshot()
}
