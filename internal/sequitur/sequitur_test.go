package sequitur

import (
	"testing"
	"testing/quick"

	"tifs/internal/xrand"
)

func expandEquals(t *testing.T, seq []uint64) *Snapshot {
	t.Helper()
	snap := Build(seq)
	got := snap.Sequence()
	if len(got) != len(seq) {
		t.Fatalf("expansion length %d, want %d", len(got), len(seq))
	}
	for i := range seq {
		if got[i] != seq[i] {
			t.Fatalf("expansion[%d] = %d, want %d", i, got[i], seq[i])
		}
	}
	if err := snap.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return snap
}

func TestEmptyAndSingle(t *testing.T) {
	snap := Build(nil)
	if snap.NumRules() != 1 || len(snap.Sequence()) != 0 {
		t.Errorf("empty grammar: %d rules, %d terminals", snap.NumRules(), len(snap.Sequence()))
	}
	expandEquals(t, []uint64{42})
}

func TestClassicExample(t *testing.T) {
	// "abcdbc" from the SEQUITUR paper: yields S -> a A d A, A -> b c.
	seq := []uint64{'a', 'b', 'c', 'd', 'b', 'c'}
	snap := expandEquals(t, seq)
	if snap.NumRules() != 2 {
		t.Fatalf("rules = %d, want 2", snap.NumRules())
	}
	r := snap.Rules[1]
	if r.ExpLen != 2 || r.Uses != 2 {
		t.Errorf("rule 1 = %+v", r)
	}
	ex := snap.Expand(1)
	if len(ex) != 2 || ex[0] != 'b' || ex[1] != 'c' {
		t.Errorf("rule 1 expansion = %v", ex)
	}
}

func TestNestedHierarchy(t *testing.T) {
	// "abcdbcabcdbc": S -> A A, A -> a B d B, B -> b c.
	seq := []uint64{'a', 'b', 'c', 'd', 'b', 'c', 'a', 'b', 'c', 'd', 'b', 'c'}
	snap := expandEquals(t, seq)
	if snap.NumRules() != 3 {
		t.Errorf("rules = %d, want 3 (hierarchy)", snap.NumRules())
	}
	// The root should be two references to one rule of expansion length 6.
	root := snap.Rules[0]
	if len(root.Syms) != 2 || !root.Syms[0].IsRule || !root.Syms[1].IsRule {
		t.Fatalf("root = %+v", root)
	}
	if snap.Rules[root.Syms[0].Rule].ExpLen != 6 {
		t.Errorf("top rule ExpLen = %d, want 6", snap.Rules[root.Syms[0].Rule].ExpLen)
	}
}

func TestRunsOfIdenticalSymbols(t *testing.T) {
	for n := 2; n <= 33; n++ {
		seq := make([]uint64, n)
		for i := range seq {
			seq[i] = 7
		}
		expandEquals(t, seq)
	}
}

func TestAlternating(t *testing.T) {
	seq := make([]uint64, 64)
	for i := range seq {
		seq[i] = uint64(i % 2)
	}
	snap := expandEquals(t, seq)
	if snap.NumRules() < 2 {
		t.Error("alternating sequence should compress")
	}
}

func TestNoRepetition(t *testing.T) {
	seq := make([]uint64, 100)
	for i := range seq {
		seq[i] = uint64(i)
	}
	snap := expandEquals(t, seq)
	if snap.NumRules() != 1 {
		t.Errorf("distinct sequence created %d rules, want 1", snap.NumRules())
	}
}

func TestRepeatedStreamCompresses(t *testing.T) {
	// A 50-block "temporal stream" repeated 20 times with distinct noise
	// between repetitions: the stream must become (nested) rules with a
	// combined top-level footprint far below 50*20.
	stream := make([]uint64, 50)
	for i := range stream {
		stream[i] = uint64(1000 + i*3)
	}
	var seq []uint64
	noise := uint64(1 << 20)
	for rep := 0; rep < 20; rep++ {
		seq = append(seq, stream...)
		seq = append(seq, noise)
		noise++
	}
	snap := expandEquals(t, seq)
	// Find the largest non-root rule expansion.
	var maxExp uint64
	for _, r := range snap.Rules[1:] {
		if r.ExpLen > maxExp {
			maxExp = r.ExpLen
		}
	}
	if maxExp < 45 {
		t.Errorf("largest rule covers %d of the 50-block stream", maxExp)
	}
	rootLen := len(snap.Rules[0].Syms)
	if rootLen > 80 {
		t.Errorf("root has %d symbols; repetition not captured", rootLen)
	}
}

func TestLenCounts(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.Append(uint64(i % 3))
	}
	if g.Len() != 10 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestSnapshotTwiceConsistent(t *testing.T) {
	g := New()
	seq := []uint64{1, 2, 3, 1, 2, 3, 4, 1, 2}
	for _, v := range seq {
		g.Append(v)
	}
	s1 := g.Snapshot()
	s2 := g.Snapshot()
	if s1.NumRules() != s2.NumRules() {
		t.Error("snapshots differ")
	}
	// Grammar remains appendable after snapshotting.
	g.Append(3)
	s3 := g.Snapshot()
	seq3 := s3.Sequence()
	if len(seq3) != len(seq)+1 || seq3[len(seq3)-1] != 3 {
		t.Errorf("post-snapshot append broken: %v", seq3)
	}
	if err := s3.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTripRandomSmallAlphabet(t *testing.T) {
	// Small alphabets maximize digram collisions, stressing rule churn.
	f := func(raw []uint8) bool {
		seq := make([]uint64, len(raw))
		for i, v := range raw {
			seq[i] = uint64(v % 4)
		}
		snap := Build(seq)
		got := snap.Sequence()
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return snap.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTripStructured(t *testing.T) {
	// Structured repetition: random stream segments repeated in random
	// order, like real miss traces.
	f := func(seed uint64, nStreams, reps uint8) bool {
		rng := xrand.New(seed)
		ns := int(nStreams%5) + 2
		streams := make([][]uint64, ns)
		for i := range streams {
			streams[i] = make([]uint64, rng.Range(3, 30))
			for j := range streams[i] {
				streams[i][j] = uint64(i*1000 + j)
			}
		}
		var seq []uint64
		for r := 0; r < int(reps%20)+2; r++ {
			seq = append(seq, streams[rng.Intn(ns)]...)
		}
		snap := Build(seq)
		got := snap.Sequence()
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if got[i] != seq[i] {
				return false
			}
		}
		return snap.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLargeSequencePerformance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := xrand.New(77)
	streams := make([][]uint64, 40)
	for i := range streams {
		streams[i] = make([]uint64, rng.Range(10, 120))
		for j := range streams[i] {
			streams[i][j] = uint64(i*4096 + j)
		}
	}
	g := New()
	total := 0
	for total < 300_000 {
		s := streams[rng.Intn(len(streams))]
		for _, v := range s {
			g.Append(v)
		}
		total += len(s)
	}
	snap := g.Snapshot()
	if err := snap.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := snap.Sequence(); len(got) != total {
		t.Fatalf("round trip length %d != %d", len(got), total)
	}
}

func TestExpandPanicsOutOfRange(t *testing.T) {
	snap := Build([]uint64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("Expand(99) should panic")
		}
	}()
	snap.Expand(99)
}

func BenchmarkAppend(b *testing.B) {
	rng := xrand.New(3)
	streams := make([][]uint64, 20)
	for i := range streams {
		streams[i] = make([]uint64, 50)
		for j := range streams[i] {
			streams[i][j] = uint64(i*100 + j)
		}
	}
	g := New()
	b.ResetTimer()
	i := 0
	for i < b.N {
		s := streams[rng.Intn(len(streams))]
		for _, v := range s {
			g.Append(v)
			i++
			if i >= b.N {
				break
			}
		}
	}
}
