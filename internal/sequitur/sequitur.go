// Package sequitur implements the SEQUITUR hierarchical grammar inference
// algorithm of Nevill-Manning and Witten (JAIR 1997), which the paper uses
// for its information-theoretic opportunity study (Section 4): repeated
// subsequences of the L1-I miss-address trace become grammar rules, so
// rules correspond exactly to recurring temporal instruction streams.
//
// The implementation follows the canonical linked-symbol formulation,
// maintaining the two SEQUITUR invariants online:
//
//	digram uniqueness — no pair of adjacent symbols occurs more than once
//	in the grammar;
//	rule utility — every rule other than the root is referenced at least
//	twice.
package sequitur

// Grammar incrementally builds a SEQUITUR grammar over a sequence of
// uint64 terminals (cache block numbers, in this repository).
type Grammar struct {
	root   *rule
	index  map[digram]*symbol
	nRules int
	nSyms  uint64
}

type digram struct {
	aRule, bRule bool
	a, b         uint64
}

type rule struct {
	id    int
	guard *symbol
	count int // references from non-terminals
}

type symbol struct {
	next, prev *symbol
	value      uint64 // terminal value when r == nil
	r          *rule  // non-terminal: referenced rule
	owner      *rule  // set on guard symbols only: the rule they delimit
	g          *Grammar
}

// New returns an empty grammar.
func New() *Grammar {
	g := &Grammar{index: make(map[digram]*symbol)}
	g.root = g.newRule()
	return g
}

func (g *Grammar) newRule() *rule {
	r := &rule{id: g.nRules}
	g.nRules++
	guard := &symbol{owner: r, g: g}
	guard.next = guard
	guard.prev = guard
	r.guard = guard
	return r
}

func (r *rule) first() *symbol { return r.guard.next }
func (r *rule) last() *symbol  { return r.guard.prev }

func (s *symbol) isGuard() bool { return s.owner != nil }

func (s *symbol) nonTerminal() bool { return s.r != nil }

// key returns this symbol's digram-key component.
func (s *symbol) keyPart() (bool, uint64) {
	if s.r != nil {
		return true, uint64(s.r.id)
	}
	return false, s.value
}

// digramKey builds the key for the digram (s, s.next).
func (s *symbol) digramKey() digram {
	ar, a := s.keyPart()
	br, b := s.next.keyPart()
	return digram{aRule: ar, a: a, bRule: br, b: b}
}

// sameValue reports whether two symbols carry the same terminal/rule value.
func sameValue(a, b *symbol) bool {
	if a == nil || b == nil || a.isGuard() || b.isGuard() {
		return false
	}
	ar, av := a.keyPart()
	br, bv := b.keyPart()
	return ar == br && av == bv
}

// deleteDigram removes the (s, s.next) entry if it points at s.
func (s *symbol) deleteDigram() {
	if s.isGuard() || s.next == nil || s.next.isGuard() {
		return
	}
	k := s.digramKey()
	if s.g.index[k] == s {
		delete(s.g.index, k)
	}
}

// join links left-right, maintaining the digram index including the
// triple corner cases ("aaa") from the original paper's appendix.
func join(left, right *symbol) {
	g := left.g
	if left.next != nil {
		left.deleteDigram()
		// Re-index digrams that the removal may have orphaned in runs of
		// identical symbols.
		if sameValue(right, right.prev) && sameValue(right, right.next) {
			g.index[right.digramKey()] = right
		}
		if sameValue(left, left.prev) && sameValue(left, left.next) {
			g.index[left.prev.digramKey()] = left.prev
		}
	}
	left.next = right
	right.prev = left
}

// insertAfter places n immediately after s.
func (s *symbol) insertAfter(n *symbol) {
	join(n, s.next)
	join(s, n)
}

// remove unlinks s from its rule, maintaining index and rule counts.
func (s *symbol) remove() {
	join(s.prev, s.next)
	if !s.isGuard() {
		s.deleteDigram()
		if s.nonTerminal() {
			s.r.count--
		}
	}
}

// newTerminal wraps a value.
func (g *Grammar) newTerminal(v uint64) *symbol {
	return &symbol{value: v, g: g}
}

// newNonTerminal wraps a rule reference, bumping its use count.
func (g *Grammar) newNonTerminal(r *rule) *symbol {
	r.count++
	return &symbol{r: r, g: g}
}

// clone copies a symbol's payload into a fresh node.
func (g *Grammar) clone(s *symbol) *symbol {
	if s.nonTerminal() {
		return g.newNonTerminal(s.r)
	}
	return g.newTerminal(s.value)
}

// Append adds the next terminal of the input sequence to the grammar.
func (g *Grammar) Append(v uint64) {
	g.nSyms++
	last := g.root.last()
	g.root.last().insertAfter(g.newTerminal(v))
	if last != g.root.guard {
		last.check()
	}
}

// Len returns the number of terminals appended so far.
func (g *Grammar) Len() uint64 { return g.nSyms }

// check enforces digram uniqueness for the digram starting at s.
// It reports whether the digram triggered a substitution.
func (s *symbol) check() bool {
	if s.isGuard() || s.next.isGuard() {
		return false
	}
	k := s.digramKey()
	m, ok := s.g.index[k]
	if !ok {
		s.g.index[k] = s
		return false
	}
	if m.next != s && s.next != m {
		s.match(m)
	}
	return true
}

// match folds the duplicate digrams at s and m into a rule.
func (s *symbol) match(m *symbol) {
	g := s.g
	var r *rule
	if m.prev.isGuard() && m.next.next.isGuard() {
		// m's rule body is exactly this digram: reuse it.
		r = m.prev.owner
		s.substitute(r)
	} else {
		r = g.newRule()
		r.last().insertAfter(g.clone(s))
		r.last().insertAfter(g.clone(s.next))
		m.substitute(r)
		s.substitute(r)
		g.index[r.first().digramKey()] = r.first()
	}
	// Rule utility: a rule inside the new rule may have dropped to a
	// single use; inline it.
	if f := r.first(); f.nonTerminal() && f.r.count == 1 {
		f.expand()
	}
}

// substitute replaces the digram (s, s.next) with a reference to r and
// re-checks the disturbed neighborhoods.
func (s *symbol) substitute(r *rule) {
	g := s.g
	q := s.prev
	s.remove()
	q.next.remove()
	q.insertAfter(g.newNonTerminal(r))
	if !q.check() {
		q.next.check()
	}
}

// expand inlines the body of a once-used rule in place of the symbol.
func (s *symbol) expand() {
	g := s.g
	left := s.prev
	right := s.next
	r := s.r
	f := r.first()
	l := r.last()
	s.deleteDigram()
	// Unhook the rule guard so the body can be spliced in.
	join(left, f)
	join(l, right)
	g.index[l.digramKey()] = l
	r.count = 0
	r.guard = nil // rule is dead
}
