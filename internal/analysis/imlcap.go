package analysis

import (
	"tifs/internal/isa"
)

// IMLEntryBits is the storage cost of one IML entry: a 38-bit physical
// block address plus the SVB-hit bit (paper Section 6.3).
const IMLEntryBits = 39

// IMLStorageKB converts per-core IML entries to kilobytes of storage.
func IMLStorageKB(entries int) float64 {
	return float64(entries) * IMLEntryBits / 8 / 1024
}

// IMLCapacityPoint is one point of the Fig. 11 sweep.
type IMLCapacityPoint struct {
	// EntriesPerCore is the IML capacity in logged addresses per core.
	EntriesPerCore int
	// StorageKB is the aggregate storage across all cores.
	StorageKB float64
	// Coverage is the fraction of misses predicted by stream replay.
	Coverage float64
}

// imlWindow is the stream-following tolerance: the SVB holds several
// streamed blocks at once, absorbing small deviations in access order
// (paper Section 5.2.1). The functional model checks the next few logged
// addresses of the active stream.
const imlWindow = 4

// IMLCoverage measures predictor coverage with a bounded circular IML per
// core, a perfect (unbounded, precise) index table, and Recent-policy
// index updates — the Fig. 11 methodology, which isolates IML capacity
// from index effects. entries <= 0 means unbounded.
//
// Per-core miss traces are interleaved round-robin to approximate
// concurrent execution; the index is shared, so one core may follow a
// stream another core logged.
func IMLCoverage(perCore [][]isa.Block, entries int) float64 {
	nc := len(perCore)
	if nc == 0 {
		return 0
	}

	type pos struct {
		core int
		idx  int // absolute append index within that core's IML
	}
	// Per-core logs (absolute; aliveness enforced against entries).
	logs := make([][]isa.Block, nc)
	index := make(map[isa.Block]pos)
	// Per-core active stream pointer (into some core's log), -1 idle.
	cur := make([]pos, nc)
	for i := range cur {
		cur[i] = pos{core: -1}
	}

	alive := func(p pos) bool {
		if p.core < 0 {
			return false
		}
		if entries <= 0 {
			return p.idx < len(logs[p.core])
		}
		return p.idx < len(logs[p.core]) && p.idx >= len(logs[p.core])-entries
	}

	var covered, total uint64
	next := make([]int, nc)
	for {
		progressed := false
		for c := 0; c < nc; c++ {
			if next[c] >= len(perCore[c]) {
				continue
			}
			progressed = true
			m := perCore[c][next[c]]
			next[c]++
			total++

			// Try to cover from the active stream within the SVB window.
			hit := false
			if cur[c].core >= 0 {
				p := cur[c]
				for w := 0; w < imlWindow; w++ {
					q := pos{core: p.core, idx: p.idx + w}
					if !alive(q) {
						break
					}
					if logs[q.core][q.idx] == m {
						covered++
						cur[c] = pos{core: q.core, idx: q.idx + 1}
						hit = true
						break
					}
				}
			}
			if !hit {
				// Fresh lookup: follow the most recent occurrence.
				if p, ok := index[m]; ok && alive(p) {
					cur[c] = pos{core: p.core, idx: p.idx + 1}
				} else {
					cur[c] = pos{core: -1}
				}
			}

			// Log the miss and update the index (Recent policy).
			logs[c] = append(logs[c], m)
			index[m] = pos{core: c, idx: len(logs[c]) - 1}
		}
		if !progressed {
			break
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// DefaultIMLSweepEntries are the per-core IML capacities swept in the
// Fig. 11 reproduction.
func DefaultIMLSweepEntries() []int {
	return []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
}

// IMLCapacitySweep runs IMLCoverage across capacities and reports the
// Fig. 11 curve for one workload.
func IMLCapacitySweep(perCore [][]isa.Block, entriesList []int) []IMLCapacityPoint {
	if len(entriesList) == 0 {
		entriesList = DefaultIMLSweepEntries()
	}
	out := make([]IMLCapacityPoint, 0, len(entriesList))
	for _, n := range entriesList {
		out = append(out, IMLCapacityPoint{
			EntriesPerCore: n,
			StorageKB:      IMLStorageKB(n) * float64(len(perCore)),
			Coverage:       IMLCoverage(perCore, n),
		})
	}
	return out
}
