package analysis

import (
	"testing"

	"tifs/internal/isa"
	"tifs/internal/trace"
	"tifs/internal/workload"
	"tifs/internal/xrand"
)

// blocks converts small ints to block numbers.
func blocks(vs ...int) []isa.Block {
	out := make([]isa.Block, len(vs))
	for i, v := range vs {
		out[i] = isa.Block(v)
	}
	return out
}

// TestFig4Accounting reproduces the paper's Fig. 4 example: a stream
// w x y z occurring three times followed by never-repeating misses
// p q r s. Expected: 4 New (first occurrence), 2 Head + 6 Opportunity
// (two repeats), 4 Non-repetitive.
func TestFig4Accounting(t *testing.T) {
	const w, x, y, z, p, q, r, s = 10, 11, 12, 13, 20, 21, 22, 23
	seq := blocks(w, x, y, z, w, x, y, z, w, x, y, z, p, q, r, s)
	c := Categorize(seq)

	if got := c.Counts.Count(CatNew); got != 4 {
		t.Errorf("New = %d, want 4", got)
	}
	if got := c.Counts.Count(CatHead); got != 2 {
		t.Errorf("Head = %d, want 2", got)
	}
	if got := c.Counts.Count(CatOpportunity); got != 6 {
		t.Errorf("Opportunity = %d, want 6", got)
	}
	if got := c.Counts.Count(CatNonRepetitive); got != 4 {
		t.Errorf("Non-repetitive = %d, want 4", got)
	}
	if got := c.Counts.Total(); got != uint64(len(seq)) {
		t.Errorf("total %d != trace length %d", got, len(seq))
	}
	// Both repeats are 4-block streams.
	if c.StreamLengths.Total() != 2 || c.StreamLengths.Count(4) != 2 {
		t.Errorf("stream lengths: %+v", c.StreamLengths)
	}
}

func TestCategorizeTotalAlwaysMatches(t *testing.T) {
	rng := xrand.New(42)
	streams := make([][]isa.Block, 6)
	for i := range streams {
		streams[i] = make([]isa.Block, rng.Range(3, 40))
		for j := range streams[i] {
			streams[i][j] = isa.Block(i*1000 + j)
		}
	}
	var seq []isa.Block
	for k := 0; k < 200; k++ {
		seq = append(seq, streams[rng.Intn(len(streams))]...)
	}
	c := Categorize(seq)
	if got := c.Counts.Total(); got != uint64(len(seq)) {
		t.Fatalf("categorized %d misses, trace has %d", got, len(seq))
	}
	if c.RepetitiveFrac() < 0.9 {
		t.Errorf("highly repetitive trace classified %.2f repetitive", c.RepetitiveFrac())
	}
}

func TestCategorizeAllUnique(t *testing.T) {
	seq := make([]isa.Block, 200)
	for i := range seq {
		seq[i] = isa.Block(i)
	}
	c := Categorize(seq)
	if got := c.Counts.Count(CatNonRepetitive); got != 200 {
		t.Errorf("unique trace: Non-repetitive = %d, want 200", got)
	}
	if c.OpportunityFrac() != 0 {
		t.Errorf("unique trace has opportunity %f", c.OpportunityFrac())
	}
}

func TestCategorizeEmpty(t *testing.T) {
	c := Categorize(nil)
	if c.Counts.Total() != 0 || c.RepetitiveFrac() != 1 {
		t.Errorf("empty categorization: %+v", c.Counts)
	}
}

func TestHeuristicPerfectlyRepeatingStream(t *testing.T) {
	// One stream repeated 10 times back to back. The recorded history is
	// itself periodic, so once a replay locks on it covers every
	// subsequent miss *including* later heads (the stream continuation
	// predicts the next repetition). Only the first occurrence (5 misses)
	// and the first repeat's head are uncovered.
	var seq []isa.Block
	for r := 0; r < 10; r++ {
		seq = append(seq, blocks(1, 2, 3, 4, 5)...)
	}
	for _, p := range Policies() {
		res := EvaluateHeuristic(p, seq)
		want := uint64(50 - 5 - 1)
		if res.Covered != want {
			t.Errorf("%s: covered %d, want %d", p, res.Covered, want)
		}
	}
}

func TestHeuristicDivergentStreams(t *testing.T) {
	// Two streams share a head block (0) but diverge afterwards,
	// alternating, with unique noise between occurrences so replay cannot
	// ride the global periodicity: X = 0 1 2 3..., Y = 0 101 102...
	// Under strict alternation, Recent always picks the *other* stream
	// and pays a divergence miss per occurrence, as does First on Y
	// occurrences. Digram keys on (head, next) and Longest picks the
	// matching continuation, so both cover the divergence point too.
	var seq []isa.Block
	noise := 100000
	for r := 0; r < 12; r++ {
		seq = append(seq, blocks(0, 1, 2, 3, 4, 5)...)
		seq = append(seq, isa.Block(noise))
		noise++
		seq = append(seq, blocks(0, 101, 102, 103, 104, 105)...)
		seq = append(seq, isa.Block(noise))
		noise++
	}
	first := EvaluateHeuristic(PolicyFirst, seq)
	digram := EvaluateHeuristic(PolicyDigram, seq)
	recent := EvaluateHeuristic(PolicyRecent, seq)
	longest := EvaluateHeuristic(PolicyLongest, seq)

	if digram.Covered <= recent.Covered {
		t.Errorf("digram (%d) should beat recent (%d) on alternating streams", digram.Covered, recent.Covered)
	}
	if longest.Covered <= recent.Covered {
		t.Errorf("longest (%d) should beat recent (%d) on alternating streams", longest.Covered, recent.Covered)
	}
	if first.Covered > longest.Covered {
		t.Errorf("first (%d) should not beat longest (%d)", first.Covered, longest.Covered)
	}
}

func TestHeuristicRecentAdaptsToPhaseChange(t *testing.T) {
	// Stream A repeats, then the program phase changes and head 0
	// permanently continues into stream B. Recent adapts after one
	// occurrence; First never does.
	var seq []isa.Block
	for r := 0; r < 5; r++ {
		seq = append(seq, blocks(0, 1, 2, 3)...)
	}
	for r := 0; r < 20; r++ {
		seq = append(seq, blocks(0, 7, 8, 9)...)
	}
	first := EvaluateHeuristic(PolicyFirst, seq)
	recent := EvaluateHeuristic(PolicyRecent, seq)
	if recent.Covered <= first.Covered {
		t.Errorf("recent (%d) should beat first (%d) across a phase change", recent.Covered, first.Covered)
	}
}

func TestHeuristicEmptyAndCoverage(t *testing.T) {
	res := EvaluateHeuristic(PolicyRecent, nil)
	if res.Coverage() != 0 || res.Total != 0 {
		t.Errorf("empty = %+v", res)
	}
	res = HeuristicResult{Policy: "x", Covered: 25, Total: 100}
	if res.Coverage() != 0.25 {
		t.Errorf("Coverage = %f", res.Coverage())
	}
}

func TestEvaluateHeuristicsOrderingOnWorkload(t *testing.T) {
	spec, _ := workload.ByName("OLTP-DB2")
	g := workload.Build(spec, workload.ScaleSmall, 1)
	misses := trace.ExtractMisses(g.Sources()[0], 150_000, trace.ExtractorConfig{})
	seq := trace.Blocks(misses)
	if len(seq) < 500 {
		t.Fatalf("only %d misses extracted", len(seq))
	}

	results := EvaluateHeuristics(seq)
	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Policy] = r.Coverage()
	}
	opp := Categorize(seq).OpportunityFrac()

	// Orderings: Longest is the best single-policy bound. In the paper's
	// drifting workloads Recent beats First; our synthetic workloads are
	// stationary, which mildly favors First, so we require Recent to be
	// competitive (within a few points) rather than strictly above —
	// EXPERIMENTS.md documents the deviation.
	if byName[PolicyLongest] < byName[PolicyRecent] {
		t.Errorf("Longest (%.3f) below Recent (%.3f)", byName[PolicyLongest], byName[PolicyRecent])
	}
	if byName[PolicyRecent] < byName[PolicyFirst]-0.06 {
		t.Errorf("Recent (%.3f) far below First (%.3f)", byName[PolicyRecent], byName[PolicyFirst])
	}
	// Single-lookup policies stay near or below the SEQUITUR opportunity;
	// the oracle-selection Longest can exceed it slightly (it may cover
	// partial repeats the grammar did not fold into rules) but never the
	// repetitive fraction.
	rep := Categorize(seq).RepetitiveFrac()
	for _, p := range Policies() {
		bound := opp + 0.05
		if p == PolicyLongest {
			bound = rep
		}
		if byName[p] > bound {
			t.Errorf("%s coverage %.3f exceeds bound %.3f", p, byName[p], bound)
		}
	}
	// Recent must be a usable policy on server workloads (small-scale
	// traces are heavily fragmented; medium-scale runs reach ~65-70%).
	if byName[PolicyRecent] < 0.25 {
		t.Errorf("Recent coverage %.3f is implausibly low", byName[PolicyRecent])
	}
}

func TestBranchLookaheadWindowSums(t *testing.T) {
	recs := []trace.MissRecord{
		{Branches: 0}, {Branches: 2}, {Branches: 3}, {Branches: 5}, {Branches: 7}, {Branches: 1},
	}
	h := BranchLookahead(recs, 4)
	// Windows: i=0: 2+3+5+7=17; i=1: 3+5+7+1=16. Two samples.
	if h.Total() != 2 {
		t.Fatalf("samples = %d, want 2", h.Total())
	}
	if h.Count(17) != 1 || h.Count(16) != 1 {
		t.Errorf("window sums wrong: %v", h.Values())
	}
}

func TestBranchLookaheadShortTrace(t *testing.T) {
	h := BranchLookahead([]trace.MissRecord{{Branches: 1}}, 4)
	if h.Total() != 0 {
		t.Errorf("short trace produced %d samples", h.Total())
	}
}

func TestBranchLookaheadDefaultDepth(t *testing.T) {
	recs := make([]trace.MissRecord, 10)
	for i := range recs {
		recs[i].Branches = 1
	}
	h := BranchLookahead(recs, 0)
	if h.Total() == 0 {
		t.Fatal("no samples with default depth")
	}
	for _, v := range h.Values() {
		if v != DefaultLookaheadMisses {
			t.Errorf("window sum = %d, want %d", v, DefaultLookaheadMisses)
		}
	}
	cdf := LookaheadCDF(h)
	if len(cdf) != len(LookaheadBuckets()) {
		t.Errorf("CDF has %d points", len(cdf))
	}
	// All sums are 4, so CDF at 4 must be 1.
	for _, pt := range cdf {
		if pt.X >= 4 && pt.P != 1 {
			t.Errorf("CDF(%d) = %f, want 1", pt.X, pt.P)
		}
		if pt.X < 4 && pt.P != 0 {
			t.Errorf("CDF(%d) = %f, want 0", pt.X, pt.P)
		}
	}
}

func TestIMLCoverageSingleRepeatingStream(t *testing.T) {
	var seq []isa.Block
	for r := 0; r < 20; r++ {
		for i := 0; i < 50; i++ {
			seq = append(seq, isa.Block(100+i))
		}
	}
	// Unbounded: everything after the first pass except heads is covered.
	cov := IMLCoverage([][]isa.Block{seq}, 0)
	want := float64(19*49) / float64(20*50)
	if cov < want-0.02 || cov > want+0.02 {
		t.Errorf("unbounded coverage = %.3f, want ~%.3f", cov, want)
	}
	// IML smaller than the stream: the log wraps before the stream
	// recurs, so coverage collapses.
	covTiny := IMLCoverage([][]isa.Block{seq}, 8)
	if covTiny > 0.2 {
		t.Errorf("tiny IML coverage = %.3f, should collapse", covTiny)
	}
}

func TestIMLCoverageMonotonicSweep(t *testing.T) {
	spec, _ := workload.ByName("Web-Zeus")
	g := workload.Build(spec, workload.ScaleSmall, 2)
	perCore := make([][]isa.Block, 2)
	for c, src := range g.Sources() {
		perCore[c] = trace.Blocks(trace.ExtractMisses(src, 80_000, trace.ExtractorConfig{}))
	}
	pts := IMLCapacitySweep(perCore, []int{256, 2048, 16384})
	if len(pts) != 3 {
		t.Fatalf("sweep points = %d", len(pts))
	}
	// Allow tiny non-monotonic wiggle, but the trend must rise.
	if pts[2].Coverage < pts[0].Coverage {
		t.Errorf("coverage not increasing: %.3f .. %.3f", pts[0].Coverage, pts[2].Coverage)
	}
	if pts[0].StorageKB >= pts[1].StorageKB {
		t.Error("storage not increasing with entries")
	}
}

func TestIMLCrossCoreSharing(t *testing.T) {
	// Core 0 logs a stream; core 1 then encounters it. With a shared
	// index, core 1 follows core 0's log.
	stream := blocks(1, 2, 3, 4, 5, 6, 7, 8)
	core0 := append(append([]isa.Block{}, stream...), stream...)
	core1 := append([]isa.Block{}, stream...)
	// Interleaving is round-robin per miss; core 1's occurrence overlaps
	// core 0's second pass, but the index already has entries from the
	// first pass.
	cov := IMLCoverage([][]isa.Block{core0, core1}, 0)
	if cov < 0.5 {
		t.Errorf("cross-core coverage = %.3f, want majority", cov)
	}
}

func TestIMLStorageKB(t *testing.T) {
	// 8K entries * 39 bits = 39 KB per core (paper: ~40 KB/core).
	got := IMLStorageKB(8192)
	if got < 38 || got > 40 {
		t.Errorf("IMLStorageKB(8192) = %.1f, want ~39", got)
	}
}

func TestIMLCoverageEmpty(t *testing.T) {
	if IMLCoverage(nil, 0) != 0 {
		t.Error("no cores should give 0")
	}
	if IMLCoverage([][]isa.Block{{}}, 100) != 0 {
		t.Error("empty traces should give 0")
	}
}
