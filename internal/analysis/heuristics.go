package analysis

import "tifs/internal/isa"

// Stream lookup heuristic names (Fig. 6).
const (
	// PolicyFirst associates a head address with the first stream ever
	// observed to start there.
	PolicyFirst = "First"
	// PolicyDigram keys lookup on the head address plus the following
	// miss address.
	PolicyDigram = "Digram"
	// PolicyRecent re-associates a head address with its most recent
	// occurrence — the policy TIFS implements in hardware.
	PolicyRecent = "Recent"
	// PolicyLongest picks, among all remembered prior occurrences of the
	// head, the one whose continuation matches longest. Hardware cannot
	// implement it (length is known only after the fact); it upper-bounds
	// the single-lookup policies.
	PolicyLongest = "Longest"
)

// Policies lists the Fig. 6 heuristics in presentation order.
func Policies() []string {
	return []string{PolicyFirst, PolicyDigram, PolicyRecent, PolicyLongest}
}

// HeuristicResult reports the coverage of one lookup policy on a trace.
type HeuristicResult struct {
	// Policy is the heuristic name.
	Policy string
	// Covered is the number of misses predicted by following a
	// previously recorded stream.
	Covered uint64
	// Total is the trace length.
	Total uint64
}

// Coverage returns Covered/Total (0 for empty traces).
func (r HeuristicResult) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.Total)
}

// longestOccs bounds the per-address occurrence memory of PolicyLongest.
const longestOccs = 12

// longestMatchCap bounds how far forward match lengths are compared.
const longestMatchCap = 512

// EvaluateHeuristic replays the miss sequence under one lookup policy and
// counts covered misses. The replay models stream following the way the
// hardware does: while a stream is active and predicts the next miss, the
// miss is covered and the stream advances; on a mismatch the policy
// performs a fresh lookup on the missing address.
func EvaluateHeuristic(policy string, seq []isa.Block) HeuristicResult {
	res := HeuristicResult{Policy: policy, Total: uint64(len(seq))}

	first := make(map[isa.Block]int)
	recent := make(map[isa.Block]int)
	type dkey struct{ a, b isa.Block }
	digram := make(map[dkey]int)
	occs := make(map[isa.Block][]int)

	matchLen := func(p, i int) int {
		n := 0
		for n < longestMatchCap && p+n < len(seq) && i+n < len(seq) && seq[p+n] == seq[i+n] {
			n++
		}
		return n
	}

	lookup := func(i int) int {
		m := seq[i]
		switch policy {
		case PolicyFirst:
			if p, ok := first[m]; ok {
				return p
			}
		case PolicyRecent:
			if p, ok := recent[m]; ok {
				return p
			}
		case PolicyDigram:
			if i+1 < len(seq) {
				if p, ok := digram[dkey{m, seq[i+1]}]; ok {
					return p
				}
			}
		case PolicyLongest:
			best, bestLen := -1, 0
			for _, p := range occs[m] {
				if l := matchLen(p+1, i+1); l > bestLen {
					best, bestLen = p, l
				}
			}
			if best >= 0 {
				return best
			}
		default:
			panic("analysis: unknown policy " + policy)
		}
		return -1
	}

	// cursor is the history position the active stream predicts next; it
	// is always strictly behind the position being processed (lookups
	// only ever return already-recorded positions).
	cursor := -1
	for i, m := range seq {
		if cursor >= 0 && seq[cursor] == m {
			res.Covered++
			cursor++
		} else {
			if p := lookup(i); p >= 0 {
				cursor = p + 1
			} else {
				cursor = -1
			}
		}

		// Record this occurrence for future lookups.
		if _, ok := first[m]; !ok {
			first[m] = i
		}
		if i > 0 {
			digram[dkey{seq[i-1], m}] = i - 1
		}
		recent[m] = i
		if policy == PolicyLongest {
			o := append(occs[m], i)
			if len(o) > longestOccs {
				o = o[1:]
			}
			occs[m] = o
		}
	}
	return res
}

// EvaluateHeuristics runs all Fig. 6 policies on the trace.
func EvaluateHeuristics(seq []isa.Block) []HeuristicResult {
	out := make([]HeuristicResult, 0, len(Policies()))
	for _, p := range Policies() {
		out = append(out, EvaluateHeuristic(p, seq))
	}
	return out
}
