package analysis

import (
	"tifs/internal/stats"
	"tifs/internal/trace"
)

// DefaultLookaheadMisses is the prefetch depth of the Fig. 10 study: the
// number of future instruction-cache misses a fetch-directed prefetcher
// must reach to be timely.
const DefaultLookaheadMisses = 4

// BranchLookahead computes, for every miss in the trace, how many
// non-inner-loop conditional branches a branch-predictor-directed
// prefetcher must predict correctly to run depth misses ahead of the
// fetch unit (Fig. 10). Each MissRecord carries the branch count since
// the previous miss; the lookahead cost for miss i is the sum over the
// next depth misses.
func BranchLookahead(recs []trace.MissRecord, depth int) *stats.Histogram {
	if depth <= 0 {
		depth = DefaultLookaheadMisses
	}
	h := stats.NewHistogram()
	if len(recs) <= depth {
		return h
	}
	// Sliding window sum of Branches over recs[i+1 .. i+depth].
	window := 0
	for j := 1; j <= depth; j++ {
		window += recs[j].Branches
	}
	for i := 0; i+depth < len(recs); i++ {
		h.Add(window)
		window -= recs[i+1].Branches
		if i+depth+1 < len(recs) {
			window += recs[i+depth+1].Branches
		}
	}
	return h
}

// LookaheadBuckets are the x-axis points of Fig. 10 (powers of two).
func LookaheadBuckets() []int {
	return []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// LookaheadCDF evaluates the cumulative fraction of misses needing at
// most each bucket's branch count, matching the Fig. 10 presentation.
func LookaheadCDF(h *stats.Histogram) []stats.CDFPoint {
	out := make([]stats.CDFPoint, 0, len(LookaheadBuckets()))
	for _, b := range LookaheadBuckets() {
		out = append(out, stats.CDFPoint{X: b, P: h.CDFAt(b)})
	}
	return out
}
