// Package analysis implements the paper's offline studies over L1-I miss
// traces: the SEQUITUR-based opportunity categorization (Fig. 3, with the
// Fig. 4 accounting), recurring stream lengths (Fig. 5), stream lookup
// heuristics (Fig. 6), the fetch-directed-prefetching lookahead limit
// study (Fig. 10), and the IML capacity sweep (Fig. 11).
package analysis

import (
	"tifs/internal/isa"
	"tifs/internal/sequitur"
	"tifs/internal/stats"
)

// Miss categories of the Fig. 4 accounting.
const (
	// CatOpportunity: non-head misses of a recurring stream's repeat
	// occurrences — the misses TIFS can eliminate.
	CatOpportunity = "Opportunity"
	// CatHead: the first miss of each repeat occurrence, needed to
	// trigger stream lookup; not eliminable.
	CatHead = "Head"
	// CatNew: misses in the first occurrence of a stream that later
	// recurs; not eliminable (nothing recorded yet).
	CatNew = "New"
	// CatNonRepetitive: misses that never occur twice with the same
	// neighboring miss addresses.
	CatNonRepetitive = "Non-repetitive"
)

// Categorization is the result of the SEQUITUR opportunity study on one
// miss trace.
type Categorization struct {
	// Counts holds the four-way miss categorization.
	Counts *stats.Categories
	// StreamLengths records the expansion length of every repeat
	// occurrence of a recurring stream; its weighted CDF is the Fig. 5
	// curve.
	StreamLengths *stats.Histogram
	// Rules is the number of live grammar rules (excluding the root).
	Rules int
}

// OpportunityFrac returns the fraction of misses categorized as
// Opportunity.
func (c *Categorization) OpportunityFrac() float64 {
	return c.Counts.Fraction(CatOpportunity)
}

// RepetitiveFrac returns the fraction of misses that are part of a
// recurring stream (everything but Non-repetitive); the paper reports 94%
// on average.
func (c *Categorization) RepetitiveFrac() float64 {
	return 1 - c.Counts.Fraction(CatNonRepetitive)
}

// Categorize runs SEQUITUR over the miss-block sequence and classifies
// every miss per the paper's accounting (Section 4.2): terminals left at
// the grammar root never repeat with the same context and are
// Non-repetitive; the first walk through a rule is New; each subsequent
// occurrence contributes one Head and ExpLen-1 Opportunity misses.
func Categorize(seq []isa.Block) *Categorization {
	g := sequitur.New()
	for _, b := range seq {
		g.Append(uint64(b))
	}
	return CategorizeSnapshot(g.Snapshot())
}

// CategorizeSnapshot classifies using an existing grammar snapshot.
func CategorizeSnapshot(snap *sequitur.Snapshot) *Categorization {
	out := &Categorization{
		Counts:        stats.NewCategories(CatOpportunity, CatHead, CatNew, CatNonRepetitive),
		StreamLengths: stats.NewHistogram(),
		Rules:         snap.NumRules() - 1,
	}
	seen := make([]bool, snap.NumRules())

	// visit walks the first occurrence of a rule's body. Terminals at the
	// grammar root were never folded into any rule — they never repeat
	// with the same preceding or succeeding miss — so they are
	// Non-repetitive; terminals inside a rule belong to a recurring
	// stream's first occurrence and are New. Repeat occurrences of a rule
	// classify wholesale (one Head, rest Opportunity) without recursion.
	var visit func(id int, atRoot bool)
	visit = func(id int, atRoot bool) {
		terminalCat := CatNew
		if atRoot {
			terminalCat = CatNonRepetitive
		}
		for _, sym := range snap.Rules[id].Syms {
			if !sym.IsRule {
				out.Counts.Add(terminalCat, 1)
				continue
			}
			r := sym.Rule
			if !seen[r] {
				seen[r] = true
				visit(r, false)
				continue
			}
			exp := snap.Rules[r].ExpLen
			out.Counts.Add(CatHead, 1)
			if exp > 1 {
				out.Counts.Add(CatOpportunity, exp-1)
			}
			out.StreamLengths.AddN(int(exp), 1)
		}
	}
	visit(0, true)
	return out
}
