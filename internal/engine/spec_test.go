package engine

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tifs/internal/sim"
)

// TestJobKeyIgnoresSpeculative: the speculative tier (and its chaos
// knob) never changes output bytes, so jobs differing only in those
// knobs must share one identity — one memo entry, one store address,
// one sweep grid point.
func TestJobKeyIgnoresSpeculative(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	a := job(oltp, sim.Baseline())
	b := a
	b.Config.Speculative = 2
	b.Config.SpecChaos = 7
	b.Config.IntraParallelism = 4
	if a.Key() != b.Key() {
		t.Errorf("keys diverge on execution knobs:\n%s\n%s", a.Key(), b.Key())
	}

	e := New(4)
	defer e.Close()
	res := e.RunAll(context.Background(), []Job{a, b})
	if got := e.SimulationsRun(); got != 1 {
		t.Errorf("execution-knob variants ran %d simulations, want 1", got)
	}
	if !reflect.DeepEqual(res[0], res[1]) {
		t.Error("deduplicated variants returned different results")
	}
}

// TestEngineSpeculativeDefaultMatchesSerial: an engine-wide speculation
// default produces results identical to a serial engine (modulo the
// Spec telemetry), narrows the worker pool for the extra goroutine per
// run, surfaces cumulative counters, and emits EventSpec observations.
func TestEngineSpeculativeDefaultMatchesSerial(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	web := spec(t, "Web-Zeus")
	jobs := []Job{job(oltp, sim.Baseline()), job(web, sim.FDIP())}

	serial := New(1)
	defer serial.Close()
	want := serial.RunAll(context.Background(), jobs)

	e := New(8)
	defer e.Close()
	e.SetIntraParallelism(2)
	e.SetSpeculative(2)
	if cap(e.sem) != 2 {
		t.Errorf("worker pool = %d with parallelism 8 / (intra 2 + spec), want 2", cap(e.sem))
	}
	var mu sync.Mutex
	var specEvents []string
	e.SetObserver(func(kind, key string) {
		if kind == EventSpec {
			mu.Lock()
			specEvents = append(specEvents, key)
			mu.Unlock()
		}
	})
	got := e.RunAll(context.Background(), jobs)
	for i := range got {
		if got[i].Spec.Windows == 0 || got[i].Spec.Committed != got[i].Spec.Windows {
			t.Errorf("job %d: expected fully committed speculative run, got %+v", i, got[i].Spec)
		}
		got[i].Spec = sim.SpecStats{}
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("job %d: speculative engine diverged from serial engine", i)
		}
	}
	w, c, rb, l := e.SpecCounters()
	if w == 0 || c != w || rb != 0 || l != 0 {
		t.Errorf("spec counters = windows %d committed %d rollbacks %d latches %d", w, c, rb, l)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(specEvents) != len(jobs) {
		t.Fatalf("observed %d EventSpec emissions, want %d", len(specEvents), len(jobs))
	}
	for _, ev := range specEvents {
		if !strings.Contains(ev, "windows=") || !strings.Contains(ev, "rollbacks=") {
			t.Errorf("EventSpec payload missing counters: %q", ev)
		}
	}
}

// TestEngineClose: Close releases the pooled runners deterministically,
// and a closed engine keeps working — later jobs build fresh runners
// that are released on return rather than re-pooled.
func TestEngineClose(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	e := New(2)
	e.SetSpeculative(2)
	a := job(oltp, sim.Baseline())
	before := e.Run(context.Background(), a)
	e.Close()
	e.Close() // idempotent
	if n := len(e.runnerPool); n != 0 {
		t.Fatalf("runner pool holds %d runners after Close", n)
	}
	b := a
	b.Config.EventsPerCore = 9_000 // a fresh key, so it really simulates
	after := e.Run(context.Background(), b)
	if after.Cycles == 0 || before.Cycles == 0 {
		t.Fatal("runs around Close produced empty results")
	}
	if n := len(e.runnerPool); n != 0 {
		t.Errorf("closed engine re-pooled %d runners", n)
	}
}
