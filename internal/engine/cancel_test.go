package engine

import (
	"context"
	"reflect"
	"testing"

	"tifs/internal/sim"
	"tifs/internal/workload"
)

// TestCancelledRunReturnsZeroAndDoesNotPoison: a run under an already-
// cancelled context returns zero results and memoizes nothing — the same
// jobs on a live context afterwards compute full, correct results.
func TestCancelledRunReturnsZeroAndDoesNotPoison(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	jobs := []Job{job(oltp, sim.Baseline()), job(oltp, sim.FDIP())}

	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range e.RunAll(ctx, jobs) {
		if !reflect.DeepEqual(r, sim.Result{}) {
			t.Fatalf("cancelled job %d returned a non-zero result: %+v", i, r)
		}
	}
	if got := e.SimulationsRun(); got != 0 {
		t.Fatalf("cancelled run still simulated %d jobs", got)
	}

	// The aborted keys were removed, not left pointing at zero results:
	// a live context recomputes them for real.
	want := New(1).RunAll(context.Background(), jobs)
	got := e.RunAll(context.Background(), jobs)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-cancel recompute diverges:\n%+v\nvs\n%+v", got, want)
	}
}

// TestCancelledMissTracesAbortsAndRecomputes: trace extraction under a
// cancelled context returns nil without memoizing a partial per-core
// set; a later call with a live context yields the full traces.
func TestCancelledMissTracesAbortsAndRecomputes(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	tj := TraceJob{Spec: oltp, Scale: workload.ScaleSmall, Cores: 2, Events: 5_000}

	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := e.ExtractTraces(ctx, tj); got != nil {
		t.Fatalf("cancelled extraction returned %d traces, want nil", len(got))
	}

	want := New(1).ExtractTraces(context.Background(), tj)
	if len(want) != tj.Cores {
		t.Fatalf("reference extraction returned %d traces, want %d", len(want), tj.Cores)
	}
	got := e.ExtractTraces(context.Background(), tj)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-cancel trace recompute diverges from a clean run")
	}
}
