package engine

import (
	"context"
	"reflect"
	"testing"

	"tifs/internal/core"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/workload"
)

func spec(t testing.TB, name string) workload.Spec {
	t.Helper()
	s, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("workload %q missing", name)
	}
	return s
}

func job(s workload.Spec, m sim.Mechanism) Job {
	return Job{Spec: s, Scale: workload.ScaleSmall, Config: sim.Config{
		EventsPerCore: 8_000,
		Mechanism:     m,
	}}
}

func TestRunAllPreservesOrderAndMatchesSerial(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	web := spec(t, "Web-Zeus")
	jobs := []Job{
		job(oltp, sim.Baseline()),
		job(web, sim.TIFS(core.DedicatedConfig())),
		job(oltp, sim.FDIP()),
		job(web, sim.Baseline()),
	}

	parallel := New(8).RunAll(context.Background(), jobs)
	serial := New(1).RunAll(context.Background(), jobs)
	if len(parallel) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(parallel), len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(parallel[i], serial[i]) {
			t.Errorf("job %d: parallel and serial results differ:\n%+v\nvs\n%+v",
				i, parallel[i], serial[i])
		}
	}
	// Sanity: the results really are in submission order.
	if parallel[0].Workload != "OLTP-DB2" || parallel[0].Mechanism != "next-line" {
		t.Errorf("result 0 out of order: %s/%s", parallel[0].Workload, parallel[0].Mechanism)
	}
	if parallel[1].Workload != "Web-Zeus" || parallel[1].Mechanism != "TIFS-dedicated" {
		t.Errorf("result 1 out of order: %s/%s", parallel[1].Workload, parallel[1].Mechanism)
	}
}

func TestDuplicateJobsSimulateOnce(t *testing.T) {
	e := New(4)
	oltp := spec(t, "OLTP-DB2")
	j := job(oltp, sim.Baseline())
	res := e.RunAll(context.Background(), []Job{j, j, j, j})
	if got := e.SimulationsRun(); got != 1 {
		t.Errorf("4 identical jobs ran %d simulations, want 1", got)
	}
	for i := 1; i < len(res); i++ {
		if !reflect.DeepEqual(res[0], res[i]) {
			t.Errorf("duplicate job %d returned a different result", i)
		}
	}
	// A later submission of the same job is also a memo hit.
	e.Run(context.Background(), j)
	if got := e.SimulationsRun(); got != 1 {
		t.Errorf("re-run after completion ran %d simulations, want 1", got)
	}
}

func TestCachedResultsDoNotAlias(t *testing.T) {
	e := New(2)
	j := job(spec(t, "DSS-Qry2"), sim.TIFS(core.VirtualizedConfig()))
	a := e.Run(context.Background(), j)
	b := e.Run(context.Background(), j)
	if a.TIFS == nil || b.TIFS == nil {
		t.Fatal("TIFS stats missing")
	}
	if &a.PerCore[0] == &b.PerCore[0] || a.TIFS == b.TIFS {
		t.Error("cached result shares mutable storage between callers")
	}
	a.PerCore[0].Cycles = 0
	a.TIFS.IndexLookups = 0
	c := e.Run(context.Background(), j)
	if c.PerCore[0].Cycles == 0 || c.TIFS.IndexLookups == 0 {
		t.Error("mutating a returned result corrupted the cache")
	}
}

// TestConcurrentTIFSRuns drives many simultaneous TIFS simulations —
// each sharing one TIFS index table across its cores, and all sharing
// the memoized workload program image — to let the race detector check
// the concurrent-read safety the engine relies on.
func TestConcurrentTIFSRuns(t *testing.T) {
	e := New(8)
	oltp := spec(t, "OLTP-DB2")
	web := spec(t, "Web-Apache")
	var jobs []Job
	for i := 0; i < 3; i++ { // duplicates join in-flight runs
		jobs = append(jobs,
			job(oltp, sim.TIFS(core.DedicatedConfig())),
			job(oltp, sim.TIFS(core.VirtualizedConfig())),
			job(web, sim.TIFS(core.DedicatedConfig())),
			job(web, sim.Baseline()),
		)
	}
	res := e.RunAll(context.Background(), jobs)
	for i, r := range res {
		if r.Cycles == 0 {
			t.Errorf("job %d produced an empty result", i)
		}
	}
	if got := e.SimulationsRun(); got != 4 {
		t.Errorf("ran %d distinct simulations, want 4", got)
	}
}

// TestStoreSecondTier checks the persistent tier end to end: a second
// engine (fresh in-process memo, same store) must satisfy every job and
// trace extraction from disk with bit-identical results, and a third
// engine without the store must agree too.
func TestStoreSecondTier(t *testing.T) {
	dir := t.TempDir()
	oltp := spec(t, "OLTP-DB2")
	web := spec(t, "Web-Zeus")
	jobs := []Job{
		job(oltp, sim.Baseline()),
		job(oltp, sim.TIFS(core.VirtualizedConfig())),
		job(web, sim.FDIP()),
	}

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(2)
	e1.SetStore(st1)
	cold := e1.RunAll(context.Background(), jobs)
	coldTraces := e1.MissTraces(context.Background(), oltp, workload.ScaleSmall, 4, 5_000)
	if got := e1.SimulationsRun(); got != 3 {
		t.Fatalf("cold engine ran %d simulations, want 3", got)
	}
	if got := e1.StoreHits(); got != 0 {
		t.Fatalf("cold engine had %d store hits, want 0", got)
	}
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := New(2)
	e2.SetStore(st2)
	warm := e2.RunAll(context.Background(), jobs)
	warmTraces := e2.MissTraces(context.Background(), oltp, workload.ScaleSmall, 4, 5_000)
	if got := e2.SimulationsRun(); got != 0 {
		t.Errorf("warm engine ran %d simulations, want 0", got)
	}
	if got := e2.StoreHits(); got != 4 {
		t.Errorf("warm engine had %d store hits, want 4 (3 jobs + traces)", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("store round trip changed results:\ncold %+v\nwarm %+v", cold, warm)
	}
	if !reflect.DeepEqual(coldTraces, warmTraces) {
		t.Error("store round trip changed miss traces")
	}

	plain := New(2).RunAll(context.Background(), jobs)
	if !reflect.DeepEqual(cold, plain) {
		t.Error("results with the store differ from results without it")
	}
}

func TestMissTracesMemoized(t *testing.T) {
	e := New(4)
	oltp := spec(t, "OLTP-DB2")
	a := e.MissTraces(context.Background(), oltp, workload.ScaleSmall, 4, 10_000)
	b := e.MissTraces(context.Background(), oltp, workload.ScaleSmall, 4, 10_000)
	if len(a) != 4 {
		t.Fatalf("got %d cores", len(a))
	}
	if &a[0] != &b[0] {
		t.Error("memoized traces were re-extracted")
	}
	for i, recs := range a {
		if len(recs) == 0 {
			t.Errorf("core %d extracted no misses", i)
		}
	}
}
