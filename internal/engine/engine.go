// Package engine schedules simulation work across goroutines. Every data
// point of the paper's evaluation — one (workload, mechanism, config)
// simulation — is independent, so an experiment's grid fans out over a
// bounded worker pool and completes in makespan rather than sum time.
//
// The engine also deduplicates and memoizes: the next-line baseline that
// fig1, fig13, and the ablations each re-simulate per workload runs once
// and its Result is shared, and the per-core miss traces that fig3, fig5,
// fig6, fig10, and fig11 all extract from the same workload build are
// computed once. Simulations are pure functions of their (spec, scale,
// config) key — all randomness is instance-seeded (internal/xrand), so
// caching cannot change any value, and results are returned in submission
// order, which keeps experiment tables byte-identical whatever the
// parallelism.
//
// Two tiers extend the memo beyond a single batch: workers draw pooled
// sim.Runner machines, so repeated simulations reuse all machine state
// and run allocation-free in steady state, and an optional persistent
// store (SetStore) carries results and miss traces across processes, so
// a repeated CLI invocation skips every grid point it has already
// simulated.
//
// Cancellation: every scheduling entry point takes a context.Context and
// stops admitting work once it is cancelled. Cancellation aborts, it
// does not poison — an entry whose simulation never ran is removed from
// the memo, so a later call with a live context recomputes it; results
// that did complete stay cached and stay correct. Callers must treat any
// result returned after ctx is cancelled as invalid.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tifs/internal/cpu"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// Job names one simulation: a workload, a scale, and a full simulator
// configuration.
type Job struct {
	Spec   workload.Spec
	Scale  workload.Scale
	Config sim.Config
}

// Key returns the canonical memoization key. Every field of the spec and
// config is scalar, so the printed form is a complete identity — stable
// across processes and machines, which is what lets the persistent store
// and the shard partitioner address work content-wise.
//
// IntraParallelism, Speculative, and SpecChaos are normalized out: they
// alter execution inside a run without changing a single output byte
// (sim's golden and byte-identity tests enforce that), so runs at
// different settings must deduplicate against each other and share
// store entries.
func (j Job) Key() string {
	j.Config.IntraParallelism = 0
	j.Config.Speculative = 0
	j.Config.SpecChaos = 0
	return fmt.Sprintf("%+v|%d|%+v", j.Spec, j.Scale, j.Config)
}

// TraceJob names one per-core miss-trace extraction: the input of every
// offline analysis experiment.
type TraceJob struct {
	Spec   workload.Spec
	Scale  workload.Scale
	Cores  int
	Events uint64
}

// Key returns the canonical extraction key, with the same cross-process
// stability as Job.Key.
func (t TraceJob) Key() string {
	return fmt.Sprintf("%+v|%d|%d|%d", t.Spec, t.Scale, t.Cores, t.Events)
}

// simEntry is one memoized simulation; done is closed when res is valid
// (or when the entry was aborted — aborted entries are removed from the
// memo before done closes, so only in-flight waiters see them).
type simEntry struct {
	done chan struct{}
	res  sim.Result
}

// traceEntry is one memoized miss-trace extraction.
type traceEntry struct {
	done chan struct{}
	recs [][]trace.MissRecord
}

// Engine is a concurrency-bounded, memoizing simulation scheduler. The
// zero value is not usable; construct with New. An Engine is safe for
// concurrent use.
type Engine struct {
	parallelism int
	sem         chan struct{} // counting semaphore over running work

	// intra is the default sim.Config.IntraParallelism injected into
	// jobs that leave it unset (see SetIntraParallelism); spec and
	// specChaos are the matching defaults for Config.Speculative and
	// Config.SpecChaos (see SetSpeculative).
	intra     int
	spec      int
	specChaos int

	mu       sync.Mutex
	closed   bool
	sims     map[string]*simEntry
	traces   map[string]*traceEntry
	grammars map[string]*grammarEntry

	// store is the optional persistent second memo tier: keys missing
	// from the in-process memo are looked up there before simulating,
	// and freshly simulated results are written back. Any store.Backend
	// serves — the on-disk store, or a remote client that may degrade to
	// missing on every Get; the engine recomputes on a miss, so a
	// backend outage costs time, never correctness.
	store store.Backend

	// runnerPool holds reusable simulation machines (one per
	// concurrently running job); a pooled steady-state run allocates
	// nothing. A plain free-list rather than sync.Pool so Close can
	// deterministically release every pooled Runner's worker goroutines
	// (guarded by mu together with closed).
	runnerPool []*sim.Runner

	// obs, when set, receives scheduling notifications (see Observer).
	// Written once before work is submitted, read by worker goroutines.
	obs Observer

	runs          atomic.Uint64 // simulations actually executed (memo misses)
	storeHits     atomic.Uint64 // jobs satisfied from the persistent store
	grammarBuilds atomic.Uint64 // grammar snapshot sets actually constructed

	// Cumulative speculative-tier counters across all runs (see
	// SpecCounters).
	specWindows   atomic.Uint64
	specCommits   atomic.Uint64
	specRollbacks atomic.Uint64
	specLatches   atomic.Uint64
}

// Observer receives engine scheduling events, keyed by the canonical
// job or trace key. Kinds:
//
//	EventSimStart/EventSimDone      a memo-missing simulation ran
//	EventTraceStart/EventTraceDone  a memo-missing trace extraction ran
//	EventStoreHit                   the persistent tier supplied the value
//	EventSpec                       a simulation ran speculatively; the key
//	                                carries "|windows= committed= rollbacks=
//	                                latched=" counters appended
//
// Deduplicated work emits no event: a submission that joins an
// in-flight or completed entry is invisible here, which is exactly what
// makes the event stream a faithful account of work actually performed.
// Callbacks run on worker goroutines and must be cheap and
// concurrency-safe.
type Observer func(kind, key string)

// Observer event kinds.
const (
	EventSimStart   = "sim-start"
	EventSimDone    = "sim-done"
	EventTraceStart = "trace-start"
	EventTraceDone  = "trace-done"
	EventStoreHit   = "store-hit"
	EventSpec       = "spec"
)

// SetObserver attaches a scheduling observer. Set it before submitting
// work; it must not change while jobs are in flight.
func (e *Engine) SetObserver(obs Observer) { e.obs = obs }

func (e *Engine) notify(kind, key string) {
	if e.obs != nil {
		e.obs(kind, key)
	}
}

// New creates an engine running at most parallelism simulations at once;
// parallelism <= 0 selects GOMAXPROCS.
func New(parallelism int) *Engine {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism),
		sims:        map[string]*simEntry{},
		traces:      map[string]*traceEntry{},
		grammars:    map[string]*grammarEntry{},
	}
}

// Parallelism returns the worker bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// SetIntraParallelism makes every job that leaves Config.IntraParallelism
// unset run with n producer shards, and narrows the worker pool so
// run-level times intra-run concurrency stays within the engine's
// budget instead of oversubscribing the host. An explicit per-job
// setting still wins. Call before submitting work; it must not change
// while jobs are in flight. n <= 1 restores serial runs at full
// run-level parallelism.
func (e *Engine) SetIntraParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.intra = n
	e.resizeSem()
}

// IntraParallelism returns the default per-run shard count.
func (e *Engine) IntraParallelism() int { return e.intra }

// SetSpeculative makes every job that leaves Config.Speculative unset
// run with the speculative merge tier at level n (0/1 serial, >= 2
// engages the speculation worker), narrowing the worker pool to budget
// for the extra goroutine per run. Same rules as SetIntraParallelism:
// explicit per-job settings win, call before submitting work.
func (e *Engine) SetSpeculative(n int) {
	if n < 0 {
		n = 0
	}
	e.spec = n
	e.resizeSem()
}

// Speculative returns the default speculation level.
func (e *Engine) Speculative() int { return e.spec }

// SetSpecChaos makes every job that leaves Config.SpecChaos unset force
// a speculation mispredict every n-th window (0 disables). A test/bench
// knob; output bytes are unaffected.
func (e *Engine) SetSpecChaos(n int) {
	if n < 0 {
		n = 0
	}
	e.specChaos = n
}

// resizeSem re-derives the worker bound from the per-run goroutine
// weight: intra producer shards plus the speculation worker.
func (e *Engine) resizeSem() {
	weight := e.intra
	if weight < 1 {
		weight = 1
	}
	if e.spec >= 2 {
		weight++
	}
	workers := e.parallelism / weight
	if workers < 1 {
		workers = 1
	}
	e.sem = make(chan struct{}, workers)
}

// SpecCounters returns the cumulative speculative-tier counters across
// every simulation this engine ran: windows judged, windows committed,
// windows rolled back, and runs whose fallback latch tripped.
func (e *Engine) SpecCounters() (windows, committed, rollbacks, latches uint64) {
	return e.specWindows.Load(), e.specCommits.Load(), e.specRollbacks.Load(), e.specLatches.Load()
}

// SimulationsRun returns how many simulations actually executed —
// submissions minus memoization and store hits — for dedup telemetry and
// tests.
func (e *Engine) SimulationsRun() uint64 { return e.runs.Load() }

// StoreHits returns how many memo-missing jobs were satisfied from the
// persistent store instead of simulating.
func (e *Engine) StoreHits() uint64 { return e.storeHits.Load() }

// SetStore attaches the on-disk result store as the second memo tier.
// Attach it before submitting work; it must not change while jobs are in
// flight. A nil store disables the tier.
func (e *Engine) SetStore(s *store.Store) {
	if s == nil {
		// Guard the typed-nil hazard: assigning (*store.Store)(nil) to the
		// interface field would make every e.store != nil check pass and
		// then panic inside the method calls.
		e.store = nil
		return
	}
	e.store = s
}

// SetBackend attaches an arbitrary store backend (the remote client,
// a test double) as the persistent memo tier. A nil backend disables
// the tier.
func (e *Engine) SetBackend(b store.Backend) { e.store = b }

// runner borrows a pooled simulation machine.
func (e *Engine) runner() *sim.Runner {
	e.mu.Lock()
	if n := len(e.runnerPool); n > 0 {
		r := e.runnerPool[n-1]
		e.runnerPool[n-1] = nil
		e.runnerPool = e.runnerPool[:n-1]
		e.mu.Unlock()
		return r
	}
	e.mu.Unlock()
	return sim.NewRunner()
}

// putRunner returns a machine to the pool, or releases it outright when
// the engine has been closed.
func (e *Engine) putRunner(r *sim.Runner) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		r.Close()
		return
	}
	e.runnerPool = append(e.runnerPool, r)
	e.mu.Unlock()
}

// Close releases every pooled simulation machine's worker goroutines
// (intra producers, speculation workers). Call it when the engine's
// owner is done submitting work; jobs still in flight return their
// runners afterwards and those are released on return. A closed engine
// remains usable — later jobs simply build fresh runners — so Close is
// a resource release, not a shutdown. (The process-wide Default engine
// is deliberately never closed; its runners live as long as the
// process, with the Runner finalizer as the backstop.)
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	pool := e.runnerPool
	e.runnerPool = nil
	e.mu.Unlock()
	for _, r := range pool {
		r.Close()
	}
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the process-wide engine at GOMAXPROCS parallelism.
// Experiment runners share it unless given an explicit engine, so a full
// suite run (tifsbench -experiment all, the benchmark suite) simulates
// each shared configuration exactly once.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// Run executes one job, deduplicating against identical in-flight or
// completed runs. The caller blocks until the result is available, or
// until ctx is cancelled — then the zero Result returns immediately and
// the job, if it never started, is forgotten rather than poisoned.
func (e *Engine) Run(ctx context.Context, job Job) sim.Result {
	return e.wait(ctx, e.start(ctx, job))
}

// RunAll executes a batch of jobs across the worker pool and returns the
// results in job order. Duplicate keys within the batch (and against any
// earlier run) are simulated only once. If ctx is cancelled mid-batch,
// unstarted jobs are abandoned and their slots hold the zero Result.
func (e *Engine) RunAll(ctx context.Context, jobs []Job) []sim.Result {
	entries := make([]*simEntry, len(jobs))
	for i, j := range jobs {
		entries[i] = e.start(ctx, j)
	}
	out := make([]sim.Result, len(jobs))
	for i, en := range entries {
		out[i] = e.wait(ctx, en)
	}
	return out
}

// start launches (or joins) the simulation for job and returns its entry.
func (e *Engine) start(ctx context.Context, job Job) *simEntry {
	key := job.Key()
	e.mu.Lock()
	if en, ok := e.sims[key]; ok {
		e.mu.Unlock()
		return en
	}
	en := &simEntry{done: make(chan struct{})}
	e.sims[key] = en
	e.mu.Unlock()

	go func() {
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			e.abortSim(key, en)
			return
		}
		defer func() { <-e.sem }()
		if ctx.Err() != nil {
			// Cancelled while queued: nothing ran, so the key must not
			// be remembered as done.
			e.abortSim(key, en)
			return
		}
		if e.store != nil {
			if res, ok := e.store.GetResult(key); ok {
				e.storeHits.Add(1)
				en.res = res
				close(en.done)
				e.notify(EventStoreHit, key)
				return
			}
		}
		e.runs.Add(1)
		e.notify(EventSimStart, key)
		r := e.runner()
		cfg := job.Config
		if cfg.IntraParallelism == 0 {
			// The engine-wide defaults apply only where the job didn't
			// choose; either way the key above is agnostic to all of
			// these execution knobs.
			cfg.IntraParallelism = e.intra
		}
		if cfg.Speculative == 0 {
			cfg.Speculative = e.spec
		}
		if cfg.SpecChaos == 0 {
			cfg.SpecChaos = e.specChaos
		}
		// The pooled runner reuses its result buffers next run, so the
		// memoized copy must own its memory.
		en.res = copyResult(r.Run(job.Spec, job.Scale, cfg))
		e.putRunner(r)
		if sp := en.res.Spec; sp.Windows > 0 {
			e.specWindows.Add(sp.Windows)
			e.specCommits.Add(sp.Committed)
			e.specRollbacks.Add(sp.Rollbacks)
			if sp.Latched {
				e.specLatches.Add(1)
			}
			e.notify(EventSpec, fmt.Sprintf("%s|windows=%d committed=%d rollbacks=%d latched=%v",
				key, sp.Windows, sp.Committed, sp.Rollbacks, sp.Latched))
		}
		if e.store != nil {
			e.store.PutResult(key, en.res)
		}
		close(en.done)
		e.notify(EventSimDone, key)
	}()
	return en
}

// abortSim unwinds a memo entry whose simulation never ran: the key is
// deleted first, so no new caller can join, then done is closed to
// release the waiters already parked on it (they observe the zero
// Result, which cancelled callers must discard anyway).
func (e *Engine) abortSim(key string, en *simEntry) {
	e.mu.Lock()
	if cur, ok := e.sims[key]; ok && cur == en {
		delete(e.sims, key)
	}
	e.mu.Unlock()
	close(en.done)
}

// wait blocks for an entry and returns a defensive copy: cached results
// are shared between callers, so the slices and pointers inside must not
// alias across them. A cancelled ctx unblocks immediately with the zero
// Result.
func (e *Engine) wait(ctx context.Context, en *simEntry) sim.Result {
	select {
	case <-en.done:
		return copyResult(en.res)
	case <-ctx.Done():
		return sim.Result{}
	}
}

// copyResult clones the result's reference fields.
func copyResult(r sim.Result) sim.Result {
	if r.PerCore != nil {
		pc := make([]cpu.Stats, len(r.PerCore))
		copy(pc, r.PerCore)
		r.PerCore = pc
	}
	if r.TIFS != nil {
		ts := *r.TIFS
		r.TIFS = &ts
	}
	return r
}

// Keys returns the canonical keys of every simulation and trace
// extraction this engine has been asked for, sorted. Grid-enumeration
// tests use it to prove a sweep's shard plan covers exactly the work the
// experiments perform.
func (e *Engine) Keys() (sims, traces []string) {
	e.mu.Lock()
	for k := range e.sims {
		sims = append(sims, k)
	}
	for k := range e.traces {
		traces = append(traces, k)
	}
	e.mu.Unlock()
	sort.Strings(sims)
	sort.Strings(traces)
	return sims, traces
}

// ExtractTraces is MissTraces keyed by a TraceJob, for callers that
// enumerate extraction work the same way they enumerate simulations.
func (e *Engine) ExtractTraces(ctx context.Context, t TraceJob) [][]trace.MissRecord {
	return e.MissTraces(ctx, t.Spec, t.Scale, t.Cores, t.Events)
}

// MissTraces returns the per-core filtered L1-I miss traces for a
// workload build — the input of every offline analysis experiment —
// extracting each core's trace concurrently and memoizing the whole set.
// Callers must treat the returned records as read-only; they are shared.
// A cancelled ctx returns nil; a partially extracted set is discarded,
// not memoized.
func (e *Engine) MissTraces(ctx context.Context, spec workload.Spec, scale workload.Scale, cores int, events uint64) [][]trace.MissRecord {
	if ctx.Err() != nil {
		return nil
	}
	key := TraceJob{Spec: spec, Scale: scale, Cores: cores, Events: events}.Key()
	e.mu.Lock()
	if en, ok := e.traces[key]; ok {
		e.mu.Unlock()
		select {
		case <-en.done:
			return en.recs
		case <-ctx.Done():
			return nil
		}
	}
	en := &traceEntry{done: make(chan struct{})}
	e.traces[key] = en
	e.mu.Unlock()

	abort := func() [][]trace.MissRecord {
		e.mu.Lock()
		if cur, ok := e.traces[key]; ok && cur == en {
			delete(e.traces, key)
		}
		e.mu.Unlock()
		close(en.done)
		return nil
	}

	if e.store != nil {
		if recs, ok := e.store.GetMissTraces(key); ok && len(recs) == cores {
			e.storeHits.Add(1)
			en.recs = recs
			close(en.done)
			e.notify(EventStoreHit, key)
			return en.recs
		}
	}

	e.notify(EventTraceStart, key)
	gen := workload.Build(spec, scale, cores)
	sources := gen.Sources()
	recs := make([][]trace.MissRecord, cores)
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				cancelled.Store(true)
				return
			}
			defer func() { <-e.sem }()
			recs[i] = trace.ExtractMisses(sources[i], events, trace.ExtractorConfig{})
		}(i)
	}
	wg.Wait()
	if cancelled.Load() || ctx.Err() != nil {
		// A partial set must not be memoized or stored: the next caller
		// with a live context recomputes all cores.
		return abort()
	}
	en.recs = recs
	if e.store != nil {
		e.store.PutMissTraces(key, en.recs)
	}
	close(en.done)
	e.notify(EventTraceDone, key)
	return en.recs
}
