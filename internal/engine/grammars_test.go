package engine

import (
	"context"
	"reflect"
	"testing"

	"tifs/internal/sequitur"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// TestJobKeyIgnoresIntraParallelism: intra-run sharding never changes
// output bytes, so jobs differing only in that knob must share one
// identity — one memo entry, one store address, one sweep grid point.
func TestJobKeyIgnoresIntraParallelism(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	a := job(oltp, sim.Baseline())
	b := a
	b.Config.IntraParallelism = 8
	if a.Key() != b.Key() {
		t.Errorf("keys diverge on IntraParallelism:\n%s\n%s", a.Key(), b.Key())
	}

	e := New(4)
	res := e.RunAll(context.Background(), []Job{a, b})
	if got := e.SimulationsRun(); got != 1 {
		t.Errorf("intra-only variants ran %d simulations, want 1", got)
	}
	if !reflect.DeepEqual(res[0], res[1]) {
		t.Error("deduplicated intra variants returned different results")
	}
}

// TestEngineIntraDefaultMatchesSerial: an engine-wide intra default
// produces results identical to a serial engine, and narrows the
// worker pool per the concurrency trade.
func TestEngineIntraDefaultMatchesSerial(t *testing.T) {
	oltp := spec(t, "OLTP-DB2")
	web := spec(t, "Web-Zeus")
	jobs := []Job{job(oltp, sim.Baseline()), job(web, sim.FDIP())}

	serial := New(1).RunAll(context.Background(), jobs)
	e := New(8)
	e.SetIntraParallelism(4)
	if cap(e.sem) != 2 {
		t.Errorf("worker pool = %d with parallelism 8 / intra 4, want 2", cap(e.sem))
	}
	intra := e.RunAll(context.Background(), jobs)
	if !reflect.DeepEqual(serial, intra) {
		t.Error("intra-defaulted engine diverged from serial engine")
	}
}

// grammarFromTraces derives what Grammars should return for one core,
// straight from the memoized traces.
func grammarFromTraces(recs []trace.MissRecord, dropSequential bool) *sequitur.Snapshot {
	if dropSequential {
		recs = trace.DropSequential(recs)
	}
	g := sequitur.New()
	for _, r := range recs {
		g.Append(uint64(r.Block))
	}
	return g.Snapshot()
}

// TestGrammarsMemoized: repeated requests return the identical snapshot
// set (no rebuild), the content matches a direct SEQUITUR pass over the
// same traces, and the two analysis variants are distinct entries.
func TestGrammarsMemoized(t *testing.T) {
	e := New(4)
	oltp := spec(t, "OLTP-DB2")
	tj := TraceJob{Spec: oltp, Scale: workload.ScaleSmall, Cores: 4, Events: 10_000}

	full := e.Grammars(context.Background(), tj, false)
	if len(full) != 4 {
		t.Fatalf("got %d grammars", len(full))
	}
	again := e.Grammars(context.Background(), tj, false)
	if &full[0] != &again[0] {
		t.Error("memoized grammars were rebuilt")
	}
	if got := e.GrammarBuilds(); got != 1 {
		t.Errorf("GrammarBuilds = %d, want 1", got)
	}

	noseq := e.Grammars(context.Background(), tj, true)
	if got := e.GrammarBuilds(); got != 2 {
		t.Errorf("GrammarBuilds after variant = %d, want 2", got)
	}

	recs := e.MissTraces(context.Background(), oltp, workload.ScaleSmall, 4, 10_000)
	for i := range recs {
		if want := grammarFromTraces(recs[i], false); !reflect.DeepEqual(full[i], want) {
			t.Errorf("core %d full grammar diverges from direct SEQUITUR pass", i)
		}
		if want := grammarFromTraces(recs[i], true); !reflect.DeepEqual(noseq[i], want) {
			t.Errorf("core %d no-seq grammar diverges from direct SEQUITUR pass", i)
		}
	}
}

// TestGrammarStoreTier: a warm process serves grammars from the store
// with zero SEQUITUR builds and zero simulations; a corrupted grammar
// blob degrades to one rebuild — from the still-cached traces — with
// identical content.
func TestGrammarStoreTier(t *testing.T) {
	dir := t.TempDir()
	oltp := spec(t, "OLTP-DB2")
	tj := TraceJob{Spec: oltp, Scale: workload.ScaleSmall, Cores: 4, Events: 8_000}
	key := grammarKey(tj, false)

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(2)
	e1.SetStore(st1)
	cold := e1.Grammars(context.Background(), tj, false)
	if got := e1.GrammarBuilds(); got != 1 {
		t.Fatalf("cold GrammarBuilds = %d, want 1", got)
	}
	if !st1.HasGrammars(key) {
		t.Fatal("grammars not persisted")
	}
	st1.Close()

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(2)
	e2.SetStore(st2)
	warm := e2.Grammars(context.Background(), tj, false)
	if got := e2.GrammarBuilds(); got != 0 {
		t.Errorf("warm GrammarBuilds = %d, want 0", got)
	}
	if got := e2.StoreHits(); got != 1 {
		t.Errorf("warm StoreHits = %d, want 1", got)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("store round trip changed grammar snapshots")
	}
	st2.Close()

	// A store holding only a corrupt blob under the grammar address
	// (duplicate puts keep the first payload, so the corruption must be
	// seeded first): the engine must treat it as a miss and rebuild,
	// arriving at the same snapshots.
	st3, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	st3.PutBlob(store.Address(store.KindGrammars, key), []byte("not a grammar"))
	e3 := New(2)
	e3.SetStore(st3)
	degraded := e3.Grammars(context.Background(), tj, false)
	if got := e3.GrammarBuilds(); got != 1 {
		t.Errorf("degraded GrammarBuilds = %d, want 1 (recompute)", got)
	}
	if !reflect.DeepEqual(cold, degraded) {
		t.Error("corrupt grammar blob changed analysis inputs")
	}
}
