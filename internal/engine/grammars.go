package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tifs/internal/sequitur"
	"tifs/internal/trace"
)

// The grammar tier: fig3, fig5, and fig6 each run SEQUITUR over a
// workload's per-core miss traces before analyzing the grammar. The
// traces themselves are memoized and persisted, but the grammar
// construction — superlinear in trace length, by far the heaviest
// analysis-phase step — used to be repaid by every process. Grammars
// memoizes the per-core snapshots in-process and persists them in the
// store under the miss-trace key plus the analysis variant, so a warm
// rerun pays neither the simulation nor the SEQUITUR pass.

// grammarEntry is one memoized per-core grammar snapshot set.
type grammarEntry struct {
	done  chan struct{}
	snaps []*sequitur.Snapshot
}

// Grammar observer event kinds (see Observer).
const (
	EventGrammarStart = "grammar-start"
	EventGrammarDone  = "grammar-done"
)

// grammarKey extends the trace key with the analysis variant: the
// fig5/fig6 pipelines drop sequential-bias misses before building the
// grammar, which yields a different grammar over the same traces.
func grammarKey(t TraceJob, dropSequential bool) string {
	return fmt.Sprintf("%s|grammar|noseq=%t", t.Key(), dropSequential)
}

// GrammarBuilds returns how many grammar snapshot sets were actually
// constructed — requests minus memo and store hits.
func (e *Engine) GrammarBuilds() uint64 { return e.grammarBuilds.Load() }

// Grammars returns one SEQUITUR grammar snapshot per core over the
// workload's miss traces (optionally with sequential-bias misses
// dropped first, the fig5/fig6 variant), building each core's grammar
// concurrently under the worker bound and memoizing the set in-process
// and in the persistent store. Callers must treat the snapshots as
// read-only; they are shared. A cancelled ctx returns nil and leaves
// the key recomputable.
func (e *Engine) Grammars(ctx context.Context, t TraceJob, dropSequential bool) []*sequitur.Snapshot {
	if ctx.Err() != nil {
		return nil
	}
	key := grammarKey(t, dropSequential)
	e.mu.Lock()
	if en, ok := e.grammars[key]; ok {
		e.mu.Unlock()
		select {
		case <-en.done:
			return en.snaps
		case <-ctx.Done():
			return nil
		}
	}
	en := &grammarEntry{done: make(chan struct{})}
	e.grammars[key] = en
	e.mu.Unlock()

	abort := func() []*sequitur.Snapshot {
		e.mu.Lock()
		if cur, ok := e.grammars[key]; ok && cur == en {
			delete(e.grammars, key)
		}
		e.mu.Unlock()
		close(en.done)
		return nil
	}

	if e.store != nil {
		if snaps, ok := e.store.GetGrammars(key); ok && len(snaps) == t.Cores {
			e.storeHits.Add(1)
			en.snaps = snaps
			close(en.done)
			e.notify(EventStoreHit, key)
			return en.snaps
		}
	}

	// The traces come from the memoized tier below; a store hit there
	// still spares the simulation even when the grammar must be built.
	recs := e.MissTraces(ctx, t.Spec, t.Scale, t.Cores, t.Events)
	if recs == nil || ctx.Err() != nil {
		return abort()
	}

	e.notify(EventGrammarStart, key)
	snaps := make([]*sequitur.Snapshot, len(recs))
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for i := range recs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				cancelled.Store(true)
				return
			}
			defer func() { <-e.sem }()
			rc := recs[i]
			if dropSequential {
				rc = trace.DropSequential(rc)
			}
			g := sequitur.New()
			for _, r := range rc {
				g.Append(uint64(r.Block))
			}
			snaps[i] = g.Snapshot()
		}(i)
	}
	wg.Wait()
	if cancelled.Load() || ctx.Err() != nil {
		// A partial set must not be memoized or stored.
		return abort()
	}
	e.grammarBuilds.Add(1)
	en.snaps = snaps
	if e.store != nil {
		e.store.PutGrammars(key, snaps)
	}
	close(en.done)
	e.notify(EventGrammarDone, key)
	return en.snaps
}
