// Package shard partitions an experiment sweep across cooperating
// processes — or machines sharing a filesystem — that fill one result
// store together.
//
// The paper's evaluation is a grid of independent (workload, mechanism,
// budget) simulations. Each grid point already has a canonical,
// cross-process-stable key (engine.Job.Key, engine.TraceJob.Key), so the
// partition is content-addressed: grid point k belongs to shard
// SHA-256(k) mod N. Every worker derives the identical assignment from
// the grid alone — no coordinator hands out work item by item, and a
// worker that dies loses only its shard, which any peer can re-claim
// after its lease expires (lease.go).
//
// A sweep then runs as:
//
//  1. N workers run `tifsbench -shard i/N -cache-dir DIR` (or auto/N to
//     claim shards through the lease file). Each simulates only its
//     shard's grid points, skipping any a previous run already stored,
//     and appends results to its own flock-guarded store segment.
//  2. One merge pass runs `tifsbench -merge -cache-dir DIR`: a normal
//     experiment run whose every grid point hits the store, assembling
//     output byte-identical to a single-process run.
//
// Determinism is preserved end to end: simulations are pure functions of
// their key, the store returns exactly the bytes a worker computed, and
// the merge pass renders tables in submission order — so output is
// byte-identical at every parallelism and every shard count, the same
// invariant the engine established in-process.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"tifs/internal/engine"
)

// Grid is the complete work list of a sweep: every simulation job and
// every miss-trace extraction the experiments will request.
type Grid struct {
	Jobs   []engine.Job
	Traces []engine.TraceJob
}

// Size returns the total number of grid points.
func (g Grid) Size() int { return len(g.Jobs) + len(g.Traces) }

// Hash fingerprints the grid: the SHA-256 over its sorted canonical
// keys. Workers of one sweep must agree on it before sharing a lease
// file — a mismatch means mismatched options (different scale, event
// budget, workload subset...) that would partition different grids.
func (g Grid) Hash() string {
	keys := make([]string, 0, g.Size())
	for _, j := range g.Jobs {
		keys = append(keys, "sim|"+j.Key())
	}
	for _, t := range g.Traces {
		keys = append(keys, "trace|"+t.Key())
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// IndexFor maps a canonical grid-point key onto one of count shards,
// uniformly and deterministically on every machine.
func IndexFor(key string, count int) int {
	if count <= 1 {
		return 0
	}
	sum := sha256.Sum256([]byte(key))
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(count))
}

// Shard returns the subset of the grid owned by shard index of count,
// preserving enumeration order within the subset.
func (g Grid) Shard(index, count int) Grid {
	var out Grid
	for _, j := range g.Jobs {
		if IndexFor(j.Key(), count) == index {
			out.Jobs = append(out.Jobs, j)
		}
	}
	for _, t := range g.Traces {
		if IndexFor(t.Key(), count) == index {
			out.Traces = append(out.Traces, t)
		}
	}
	return out
}
