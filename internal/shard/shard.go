// Package shard partitions an experiment sweep across cooperating
// processes — or machines sharing a filesystem — that fill one result
// store together.
//
// The paper's evaluation is a grid of independent (workload, mechanism,
// budget) simulations. Each grid point already has a canonical,
// cross-process-stable key (engine.Job.Key, engine.TraceJob.Key), and
// the partition is a pure function of the grid: points sorted by
// descending event weight are placed greedily onto the lightest shard
// (longest-processing-time scheduling), so shards balance by simulated
// work rather than point count — a sweep mixing full-scale and small
// jobs no longer leaves one worker running long after the rest idle.
// Every worker derives the identical assignment from the grid alone —
// no coordinator hands out work item by item, and a worker that dies
// loses only its shard, which any peer can re-claim after its lease
// expires (lease.go).
//
// A sweep then runs as:
//
//  1. N workers run `tifsbench -shard i/N -cache-dir DIR` (or auto/N to
//     claim shards through the lease file). Each simulates only its
//     shard's grid points, skipping any a previous run already stored,
//     and appends results to its own flock-guarded store segment.
//  2. One merge pass runs `tifsbench -merge -cache-dir DIR`: a normal
//     experiment run whose every grid point hits the store, assembling
//     output byte-identical to a single-process run.
//
// Determinism is preserved end to end: simulations are pure functions of
// their key, the store returns exactly the bytes a worker computed, and
// the merge pass renders tables in submission order — so output is
// byte-identical at every parallelism and every shard count, the same
// invariant the engine established in-process.
package shard

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"tifs/internal/engine"
)

// Grid is the complete work list of a sweep: every simulation job and
// every miss-trace extraction the experiments will request.
type Grid struct {
	Jobs   []engine.Job
	Traces []engine.TraceJob
}

// Size returns the total number of grid points.
func (g Grid) Size() int { return len(g.Jobs) + len(g.Traces) }

// Hash fingerprints the grid: the SHA-256 over its sorted canonical
// keys. Workers of one sweep must agree on it before sharing a lease
// file — a mismatch means mismatched options (different scale, event
// budget, workload subset...) that would partition different grids.
func (g Grid) Hash() string {
	keys := make([]string, 0, g.Size())
	for _, j := range g.Jobs {
		keys = append(keys, "sim|"+j.Key())
	}
	for _, t := range g.Traces {
		keys = append(keys, "trace|"+t.Key())
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// jobWeight estimates a simulation's cost: the events it will execute
// across its cores, mirroring the defaulting the simulator itself
// applies (scale default when the budget is 0, 4 cores when unset).
func jobWeight(j engine.Job) uint64 {
	ev := j.Config.EventsPerCore
	if ev == 0 {
		ev = j.Scale.DefaultEvents()
	}
	cores := j.Config.Cores
	if cores <= 0 {
		cores = 4
	}
	return ev * uint64(cores)
}

// traceWeight estimates an extraction's cost the same way.
func traceWeight(t engine.TraceJob) uint64 {
	ev := t.Events
	if ev == 0 {
		ev = t.Scale.AnalysisEvents()
	}
	cores := t.Cores
	if cores <= 0 {
		cores = 4
	}
	return ev * uint64(cores)
}

// assign computes the sweep's shard assignment, keyed by the grid's
// namespaced canonical keys (the same "sim|"/"trace|" namespace Hash
// uses). Points are sorted by descending weight — key ascending on
// ties — and each placed on the lightest shard so far, lowest index on
// ties (LPT greedy, within 4/3 of the optimal makespan). Every step is
// a deterministic function of the grid alone, so all workers agree on
// the assignment with no communication; ordering by (weight, key)
// rather than enumeration order keeps it stable even if callers build
// the same grid in different orders.
func (g Grid) assign(count int) map[string]int {
	out := make(map[string]int, g.Size())
	type point struct {
		key    string
		weight uint64
	}
	pts := make([]point, 0, g.Size())
	for _, j := range g.Jobs {
		pts = append(pts, point{"sim|" + j.Key(), jobWeight(j)})
	}
	for _, t := range g.Traces {
		pts = append(pts, point{"trace|" + t.Key(), traceWeight(t)})
	}
	if count <= 1 {
		for _, p := range pts {
			out[p.key] = 0
		}
		return out
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].weight != pts[j].weight {
			return pts[i].weight > pts[j].weight
		}
		return pts[i].key < pts[j].key
	})
	load := make([]uint64, count)
	for _, p := range pts {
		best := 0
		for s := 1; s < count; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		out[p.key] = best
		load[best] += p.weight
	}
	return out
}

// Shard returns the subset of the grid owned by shard index of count,
// preserving enumeration order within the subset.
func (g Grid) Shard(index, count int) Grid {
	a := g.assign(count)
	var out Grid
	for _, j := range g.Jobs {
		if a["sim|"+j.Key()] == index {
			out.Jobs = append(out.Jobs, j)
		}
	}
	for _, t := range g.Traces {
		if a["trace|"+t.Key()] == index {
			out.Traces = append(out.Traces, t)
		}
	}
	return out
}
