package shard

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func testCoordinator(t *testing.T, dir string, g Grid, count int) *Coordinator {
	t.Helper()
	c := NewCoordinator(dir, g, count)
	c.TTL = time.Hour
	return c
}

// TestClaimLifecycle walks a lease through claim, renew, and complete.
func TestClaimLifecycle(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 4_000)
	c := testCoordinator(t, dir, g, 2)

	i1, ok, err := c.ClaimAny("alice")
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	i2, ok, err := c.ClaimAny("bob")
	if err != nil || !ok {
		t.Fatalf("second claim: ok=%v err=%v", ok, err)
	}
	if i1 == i2 {
		t.Fatalf("both workers claimed shard %d", i1)
	}
	if _, ok, _ := c.ClaimAny("carol"); ok {
		t.Fatal("third claim succeeded on a fully-leased sweep")
	}
	if err := c.Renew(i1, "alice"); err != nil {
		t.Errorf("holder's renew refused: %v", err)
	}
	if err := c.Renew(i1, "bob"); err == nil {
		t.Error("non-holder renewed a lease")
	}
	if err := c.Complete(i1); err != nil {
		t.Fatal(err)
	}
	m, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards[i1].State != StateDone || m.Shards[i2].State != StateClaimed {
		t.Errorf("manifest after lifecycle: %+v", m.Shards)
	}
	// A done shard is not claimable via ClaimAny...
	if _, ok, _ := c.ClaimAny("carol"); ok {
		t.Error("done shard re-claimed by ClaimAny")
	}
	// ...but an explicit pinned claim may re-run it idempotently.
	if err := c.Claim(i1, "carol"); err != nil {
		t.Errorf("explicit re-claim of a done shard refused: %v", err)
	}
	// A live lease is protected from explicit claims by others.
	if err := c.Claim(i2, "carol"); err == nil {
		t.Error("explicit claim stole a live lease")
	}
}

// TestExpiredLeaseSingleWinner is the takeover race: many workers racing
// for a dead peer's expired lease must produce exactly one winner, and
// the loser's renewals must fail.
func TestExpiredLeaseSingleWinner(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 4_000)

	// The dead worker's coordinator grants leases that are already
	// expired the moment they are written.
	dead := testCoordinator(t, dir, g, 1)
	dead.TTL = -time.Second
	idx, ok, err := dead.ClaimAny("dead-worker")
	if err != nil || !ok || idx != 0 {
		t.Fatalf("setup claim: idx=%d ok=%v err=%v", idx, ok, err)
	}

	const racers = 8
	winners := make(chan string, racers)
	var wg sync.WaitGroup
	for w := 0; w < racers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := testCoordinator(t, dir, g, 1)
			owner := string(rune('A' + w))
			if _, ok, err := c.ClaimAny(owner); err == nil && ok {
				winners <- owner
			}
		}(w)
	}
	wg.Wait()
	close(winners)
	var won []string
	for w := range winners {
		won = append(won, w)
	}
	if len(won) != 1 {
		t.Fatalf("expired lease takeover had %d winners (%v), want exactly 1", len(won), won)
	}
	// The dead worker coming back must be told its lease is gone.
	if err := dead.Renew(0, "dead-worker"); err == nil {
		t.Error("stale worker renewed a taken-over lease")
	}
	c := testCoordinator(t, dir, g, 1)
	if err := c.Renew(0, won[0]); err != nil {
		t.Errorf("winner cannot renew: %v", err)
	}
}

// TestManifestRejectsDivergentWorkers: a worker whose options produce a
// different grid, or a different shard count, must be turned away before
// it can corrupt the assignment.
func TestManifestRejectsDivergentWorkers(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 4_000)
	c := testCoordinator(t, dir, g, 4)
	if _, _, err := c.ClaimAny("alice"); err != nil {
		t.Fatal(err)
	}

	other := testCoordinator(t, dir, testGrid(t, 9_000), 4)
	if _, _, err := other.ClaimAny("bob"); err == nil || !strings.Contains(err.Error(), "grid") {
		t.Errorf("divergent grid accepted (err=%v)", err)
	}
	miscount := testCoordinator(t, dir, g, 8)
	if _, _, err := miscount.ClaimAny("bob"); err == nil || !strings.Contains(err.Error(), "ways") {
		t.Errorf("divergent shard count accepted (err=%v)", err)
	}
}

// TestFinishedSweepYieldsToNewGrid: once every shard of a sweep is
// done, the same cache directory must accept a sweep of a different
// shape (different grid or shard count) without manual cleanup — but an
// unfinished sweep keeps its claim (TestManifestRejectsDivergentWorkers).
func TestFinishedSweepYieldsToNewGrid(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 4_000)
	c := testCoordinator(t, dir, g, 2)
	for i := 0; i < 2; i++ {
		if _, ok, err := c.ClaimAny("alice"); err != nil || !ok {
			t.Fatalf("claim %d: ok=%v err=%v", i, ok, err)
		}
		if err := c.Complete(i); err != nil {
			t.Fatal(err)
		}
	}
	// A re-run of the *same* finished sweep is a no-op, not a restart.
	if _, ok, err := c.ClaimAny("alice"); err != nil || ok {
		t.Fatalf("finished sweep re-claimed: ok=%v err=%v", ok, err)
	}
	// A different grid and shard count takes the directory over cleanly.
	next := testCoordinator(t, dir, testGrid(t, 9_000), 3)
	idx, ok, err := next.ClaimAny("bob")
	if err != nil || !ok {
		t.Fatalf("new sweep rejected by a finished manifest: ok=%v err=%v", ok, err)
	}
	m, err := next.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 3 || m.Shards[idx].Owner != "bob" {
		t.Errorf("replacement manifest wrong: %+v", m)
	}
}

// TestReleaseAfterLostLeaseIsNoOp is the pid-reuse regression: a worker
// whose renewer presumed the lease lost (a partition outlasting the
// TTL) must not release on its way out, because the shard may since
// have been claimed by a new worker carrying the *same* owner string —
// host-pid names recur when a host reuses a pid — and the ownership
// check in Release cannot tell the two apart. ReleaseAfter gates on the
// run error instead.
func TestReleaseAfterLostLeaseIsNoOp(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 4_000)
	const owner = "host-42" // same string for zombie and successor

	// The zombie's claim expires immediately; a successor with the same
	// owner name takes the shard over.
	zombie := testCoordinator(t, dir, g, 1)
	zombie.TTL = -time.Second
	if _, ok, err := zombie.ClaimAny(owner); err != nil || !ok {
		t.Fatalf("zombie claim: ok=%v err=%v", ok, err)
	}
	successor := testCoordinator(t, dir, g, 1)
	if _, ok, err := successor.ClaimAny(owner); err != nil || !ok {
		t.Fatalf("successor takeover: ok=%v err=%v", ok, err)
	}

	// The zombie finally exits with the error its renewer latched while
	// partitioned. ReleaseAfter must leave the successor's claim alone.
	runErr := fmt.Errorf("shard: lease presumed lost after 9 failed renewals spanning 30s (TTL 10s): i/o timeout: %w", ErrLeaseLost)
	if err := zombie.ReleaseAfter(runErr, 0, owner); err != nil {
		t.Fatalf("ReleaseAfter(lost): %v", err)
	}
	m, err := successor.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if l := m.Shards[0]; l.State != StateClaimed || l.Owner != owner {
		t.Fatalf("zombie's exit released the successor's live claim: %+v", l)
	}
	if err := successor.Renew(0, owner); err != nil {
		t.Fatalf("successor lost its lease to a zombie release: %v", err)
	}

	// Any failure that is NOT a lost lease still releases promptly so the
	// fleet can reclaim without waiting out the TTL.
	if err := successor.ReleaseAfter(errors.New("simulation panic"), 0, owner); err != nil {
		t.Fatalf("ReleaseAfter(other): %v", err)
	}
	m, err = successor.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if l := m.Shards[0]; l.State != StateFree {
		t.Fatalf("ordinary failure did not release: %+v", l)
	}
}

// TestManifestRoundTrip pins the file format.
func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		GridHash: strings.Repeat("ab", 32),
		Count:    3,
		Shards: []Lease{
			{Index: 0, State: StateDone},
			{Index: 1, State: StateClaimed, Owner: `host "weird name" 7`, Expires: 1_753_800_000},
			{Index: 2, State: StateFree},
		},
	}
	got, err := parseManifest(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.GridHash != m.GridHash || got.Count != m.Count || len(got.Shards) != 3 {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	for i := range m.Shards {
		if got.Shards[i] != m.Shards[i] {
			t.Errorf("shard %d: %+v != %+v", i, got.Shards[i], m.Shards[i])
		}
	}
	for _, bad := range []string{
		"",
		"TIFSSHARDS 1\n",
		"TIFSSHARDS 2\ngrid x count 1\nshard 0 free \"\" 0\n",
		"TIFSSHARDS 1\ngrid deadbeef count 1\nshard 0 free \"\" 0\n",
		"TIFSSHARDS 1\ngrid " + strings.Repeat("ab", 32) + " count 2\nshard 0 free \"\" 0\n",
		"TIFSSHARDS 1\ngrid " + strings.Repeat("ab", 32) + " count 1\nshard 0 stolen \"\" 0\n",
		"TIFSSHARDS 1\ngrid " + strings.Repeat("ab", 32) + " count 1\nshard 1 free \"\" 0\n",
		// Trailing in-line garbage: the parser is field-exact.
		"TIFSSHARDS 1 junk\ngrid " + strings.Repeat("ab", 32) + " count 1\nshard 0 free \"\" 0\n",
		"TIFSSHARDS 1\ngrid " + strings.Repeat("ab", 32) + " count 1 junk\nshard 0 free \"\" 0\n",
	} {
		if _, err := parseManifest([]byte(bad)); err == nil {
			t.Errorf("malformed manifest accepted: %q", bad)
		}
	}
}
