package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tifs/internal/engine"
	"tifs/internal/store"
)

// Report summarizes one worker's pass over one shard.
type Report struct {
	// Index and Count locate the shard in the sweep.
	Index, Count int
	// Jobs and Traces count the grid points assigned to this shard.
	Jobs, Traces int
	// Simulated counts simulations actually executed; StoreHits counts
	// grid points skipped because a previous run (this worker's or a
	// peer's) had already stored them.
	Simulated, StoreHits uint64
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("shard %d/%d: jobs=%d traces=%d simulated=%d store-hits=%d",
		r.Index, r.Count, r.Jobs, r.Traces, r.Simulated, r.StoreHits)
}

// chunkPerWorker bounds how many jobs enter the engine per batch (times
// the parallelism), so the loop has regular points at which to notice a
// lost lease or a cancelled context and stop.
const chunkPerWorker = 8

// renewer keeps a lease alive on a timer while a shard runs. Renewal
// must be time-based, not progress-based: one full-scale simulation can
// outlast the whole TTL, and a healthy worker must never look dead just
// because its grid points are slow.
type renewer struct {
	stop chan struct{}
	wg   sync.WaitGroup

	mu  sync.Mutex
	err error
}

// startRenewer renews on every interval tick until stopped. A takeover
// (ErrLeaseLost) is latched immediately. Transient failures (manifest
// I/O on a flaky shared filesystem) are tolerated only while the lease
// can still be alive: once consecutive failures span the full TTL
// without one successful renewal, the lease has lapsed on every peer's
// clock — takeover may already have happened — so the renewer latches a
// lost-lease error instead of renewing forever against a dead disk. The
// latched error is not fatal mid-air: the work loop checks Err at its
// next boundary and aborts; everything stored so far stays stored.
func startRenewer(renew func() error, interval, ttl time.Duration) *renewer {
	r := &renewer{stop: make(chan struct{})}
	if renew == nil {
		return r
	}
	if interval <= 0 {
		interval = DefaultTTL / 3
	}
	if ttl <= 0 {
		ttl = 3 * interval
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		lastOK := time.Now()
		failures := 0
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				err := renew()
				if err == nil {
					lastOK, failures = time.Now(), 0
					continue
				}
				failures++
				elapsed := time.Since(lastOK)
				if !errors.Is(err, ErrLeaseLost) && elapsed < ttl {
					continue // transient, and the lease deadline still holds
				}
				r.mu.Lock()
				if r.err == nil {
					if errors.Is(err, ErrLeaseLost) {
						r.err = fmt.Errorf("shard: lease lost: %w", err)
					} else {
						// Presumed-lost wraps ErrLeaseLost too: the lease may
						// already belong to a new owner, so the exits gated on
						// a lost lease (ReleaseAfter's no-op above all) must
						// treat both diagnoses the same way.
						r.err = fmt.Errorf("shard: lease presumed lost after %d failed renewals spanning %v (TTL %v): %v: %w",
							failures, elapsed.Round(time.Millisecond), ttl, err, ErrLeaseLost)
					}
				}
				r.mu.Unlock()
				return
			}
		}
	}()
	return r
}

func (r *renewer) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

func (r *renewer) Stop() {
	close(r.stop)
	r.wg.Wait()
}

// Run executes shard index of count over the grid, filling st with every
// result and miss trace the shard owns. Grid points already in the store
// are skipped (another worker, or an earlier attempt, finished them);
// simulations the shard does run go through a standard engine at the
// given parallelism, so in-process memoization and the persistent tier
// compose exactly as they do in a single-process run.
//
// ctx cancellation stops the run at the next batch boundary and returns
// ctx's error; everything finished by then is already safe in the store,
// so a later worker (or a -merge pass) completes from where this one
// stopped.
//
// renew, if non-nil, is called on a timer (renewInterval; pick a
// fraction of the lease TTL, e.g. Coordinator.RenewInterval) for as long
// as work runs — wire it to Coordinator.Renew to keep the shard's lease
// alive. When renewal reports the lease lost — a peer took the shard
// over after an expiry, or renewals kept failing for longer than ttl
// (the Coordinator's lease TTL; 0 derives one from the interval) — Run
// stops at the next batch boundary and returns the error.
func Run(ctx context.Context, st store.Backend, g Grid, index, count, parallelism int, renew func() error, renewInterval, ttl time.Duration) (rep Report, err error) {
	if count < 1 {
		return Report{}, fmt.Errorf("shard: count %d < 1", count)
	}
	if index < 0 || index >= count {
		return Report{}, fmt.Errorf("shard: index %d out of range [0,%d)", index, count)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sub := g.Shard(index, count)
	rep = Report{Index: index, Count: count, Jobs: len(sub.Jobs), Traces: len(sub.Traces)}

	e := engine.New(parallelism)
	e.SetBackend(st)
	r := startRenewer(renew, renewInterval, ttl)
	defer r.Stop()
	// Fill the counters on every exit path (rep is a named result, so
	// this reaches aborted returns too): an aborted shard has still done
	// — and durably stored — real work, and its report must say so.
	defer func() {
		rep.Simulated = e.SimulationsRun()
		rep.StoreHits = e.StoreHits()
	}()

	// stopped reports why the loop must abandon the shard, if it must.
	stopped := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return r.Err()
	}

	// Fan bounded chunks of jobs through the engine so a lost lease or a
	// cancellation is noticed promptly. The engine's store tier makes
	// every already-stored point a cheap hit, so re-running a
	// half-finished shard only pays for what is missing.
	chunk := e.Parallelism() * chunkPerWorker
	for start := 0; start < len(sub.Jobs); start += chunk {
		if err := stopped(); err != nil {
			return rep, err
		}
		end := min(start+chunk, len(sub.Jobs))
		e.RunAll(ctx, sub.Jobs[start:end])
	}
	for _, t := range sub.Traces {
		if err := stopped(); err != nil {
			return rep, err
		}
		e.ExtractTraces(ctx, t)
	}
	return rep, stopped()
}

// Missing reports which of the grid's points are absent from the store —
// the merge pass's preflight check. An empty result means a merge will
// assemble entirely from store hits.
func Missing(st store.Backend, g Grid) (jobs []engine.Job, traces []engine.TraceJob) {
	for _, j := range g.Jobs {
		if !st.HasResult(j.Key()) {
			jobs = append(jobs, j)
		}
	}
	for _, t := range g.Traces {
		if !st.HasMissTraces(t.Key()) {
			traces = append(traces, t)
		}
	}
	return jobs, traces
}
