package shard

import (
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"

	"tifs/internal/vfs"
)

// faultCoordinator wires a coordinator to a fault-injecting filesystem
// with instant (non-sleeping) retries.
func faultCoordinator(t *testing.T, dir string, g Grid, count int, fsys vfs.FS) *Coordinator {
	t.Helper()
	c := testCoordinator(t, dir, g, count)
	c.FS = fsys
	c.Retry.Sleep = func(time.Duration) {}
	return c
}

// TestFaultClaimRidesOutTransientManifestIO: one EIO each on the lock
// acquisition, the manifest read, and the manifest write-back — the
// flaky-shared-NFS triple — and the claim still goes through.
func TestFaultClaimRidesOutTransientManifestIO(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 2_000)
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpLock, Path: manifestLock},
		vfs.Rule{Op: vfs.OpReadFile, Path: manifestName},
		vfs.Rule{Op: vfs.OpWrite, Path: manifestName + ".tmp"},
	)
	c := faultCoordinator(t, dir, g, 2, ffs)

	if err := c.Claim(0, "alice"); err != nil {
		t.Fatalf("claim through transient faults: %v", err)
	}
	// The written manifest is valid and carries the claim.
	m, err := testCoordinator(t, dir, g, 2).Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if l := m.Shards[0]; l.State != StateClaimed || l.Owner != "alice" {
		t.Fatalf("shard 0 after faulted claim: %+v", l)
	}
}

// TestFaultTornManifestWriteNeverVisible: a torn write of the manifest
// temp file is retried whole; the manifest other workers read is always
// a complete image, so the strict parser never wedges the sweep.
func TestFaultTornManifestWriteNeverVisible(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 2_000)
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: manifestName + ".tmp", Mode: vfs.ModeShortWrite})
	c := faultCoordinator(t, dir, g, 2, ffs)

	if err := c.Claim(1, "bob"); err != nil {
		t.Fatalf("claim through a torn manifest write: %v", err)
	}
	m, err := testCoordinator(t, dir, g, 2).Manifest()
	if err != nil {
		t.Fatalf("manifest after torn write-back does not parse: %v", err)
	}
	if l := m.Shards[1]; l.State != StateClaimed || l.Owner != "bob" {
		t.Fatalf("shard 1 after torn-write claim: %+v", l)
	}
}

// TestFaultManifestCrashMidUpdateKeepsOldManifest: a worker killed while
// replacing the manifest leaves the previous (valid) manifest in place —
// existing claims survive, the failed mutation simply never happened,
// and the sweep continues.
func TestFaultManifestCrashMidUpdateKeepsOldManifest(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 2_000)
	clean := testCoordinator(t, dir, g, 2)
	if err := clean.Claim(0, "alice"); err != nil {
		t.Fatal(err)
	}

	for _, crashAt := range []vfs.Rule{
		{Op: vfs.OpWrite, Path: manifestName + ".tmp", Mode: vfs.ModeCrash},
		{Op: vfs.OpRename, Path: manifestName, Mode: vfs.ModeCrash},
	} {
		ffs := vfs.NewFault(vfs.OS, crashAt)
		c := faultCoordinator(t, dir, g, 2, ffs)
		if err := c.Claim(1, "bob"); !errors.Is(err, vfs.ErrCrashed) {
			t.Fatalf("crash at %v: claim returned %v, want ErrCrashed", crashAt, err)
		}
		// The old manifest is intact: alice's claim stands, bob's never
		// landed, and a healthy worker can still claim shard 1.
		m, err := clean.Manifest()
		if err != nil {
			t.Fatalf("crash at %v left an unreadable manifest: %v", crashAt, err)
		}
		if l := m.Shards[0]; l.State != StateClaimed || l.Owner != "alice" {
			t.Fatalf("crash at %v clobbered alice's claim: %+v", crashAt, l)
		}
		if l := m.Shards[1]; l.State != StateFree {
			t.Fatalf("crash at %v half-applied bob's claim: %+v", crashAt, l)
		}
	}

	if err := clean.Claim(1, "bob"); err != nil {
		t.Fatalf("recovery claim: %v", err)
	}
}

// TestFaultPermanentManifestFaultIsCleanError: a disk that stays broken
// (ENOSPC forever) surfaces as an error from the coordination call — no
// hang, no corrupt manifest, and the lease state other workers see is
// unchanged.
func TestFaultPermanentManifestFaultIsCleanError(t *testing.T) {
	dir := t.TempDir()
	g := testGrid(t, 2_000)
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: manifestName + ".tmp", Err: syscall.ENOSPC, Times: -1})
	c := faultCoordinator(t, dir, g, 2, ffs)

	if err := c.Claim(0, "alice"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("claim on a full disk returned %v, want ENOSPC", err)
	}
	m, err := testCoordinator(t, dir, g, 2).Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if l := m.Shards[0]; l.State != StateFree {
		t.Fatalf("failed claim leaked state: %+v", l)
	}
}

// TestFaultRenewerBoundsTransientFailures: renewals failing transiently
// are tolerated only while the lease can still be alive. Once the
// failures span the TTL with no success, the renewer latches a
// presumed-lost error instead of renewing forever against a dead disk.
func TestFaultRenewerBoundsTransientFailures(t *testing.T) {
	r := startRenewer(func() error { return syscall.EIO }, time.Millisecond, 25*time.Millisecond)
	defer r.Stop()
	deadline := time.After(10 * time.Second)
	for r.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("renewer never latched an error despite failures spanning the TTL")
		case <-time.After(time.Millisecond):
		}
	}
	if msg := r.Err().Error(); !strings.Contains(msg, "presumed lost") {
		t.Fatalf("latched error %q, want a presumed-lost diagnosis", msg)
	}
}

// TestFaultRenewerLatchesLostLeaseImmediately: a takeover (ErrLeaseLost)
// is terminal on the first tick — no TTL grace applies, because another
// worker already owns the shard.
func TestFaultRenewerLatchesLostLeaseImmediately(t *testing.T) {
	renew := func() error { return ErrLeaseLost }
	r := startRenewer(renew, time.Millisecond, time.Hour)
	defer r.Stop()
	deadline := time.After(10 * time.Second)
	for r.Err() == nil {
		select {
		case <-deadline:
			t.Fatal("renewer sat on ErrLeaseLost despite a generous deadline")
		case <-time.After(time.Millisecond):
		}
	}
	if !errors.Is(r.Err(), ErrLeaseLost) {
		t.Fatalf("latched %v, want ErrLeaseLost", r.Err())
	}
}

// TestFaultMatrixLeaseLifecycle injects a fault at every filesystem
// operation of the claim → renew → complete lifecycle — once as a single
// transient EIO, once as a crash — and checks the invariants no fault
// may break: the manifest a healthy worker reads afterwards always
// parses (or is absent, which is first-use), the shard is never left
// with a phantom owner, and a fully-successful lifecycle always lands
// state done.
func TestFaultMatrixLeaseLifecycle(t *testing.T) {
	g := testGrid(t, 2_000)
	lifecycle := func(c *Coordinator) (ok bool) {
		if err := c.Claim(0, "w"); err != nil {
			return false
		}
		if err := c.Renew(0, "w"); err != nil {
			return false
		}
		return c.Complete(0) == nil
	}

	cleanDir := t.TempDir()
	capture := vfs.NewFault(vfs.OS)
	if !lifecycle(faultCoordinator(t, cleanDir, g, 2, capture)) {
		t.Fatal("clean lifecycle did not complete")
	}
	tr := capture.Trace()
	if len(tr) < 10 {
		t.Fatalf("implausibly short clean trace (%d ops)", len(tr))
	}

	for _, inj := range []struct {
		name string
		mode vfs.Mode
		err  error
	}{
		{"transient-eio", vfs.ModeError, syscall.EIO},
		{"crash", vfs.ModeCrash, vfs.ErrCrashed},
	} {
		t.Run(inj.name, func(t *testing.T) {
			for i, rec := range tr {
				rule := vfs.RuleForTraceIndex(tr, i, inj.mode, inj.err)
				rule.Path = strings.TrimPrefix(rule.Path, cleanDir)
				dir := t.TempDir()
				completed := lifecycle(faultCoordinator(t, dir, g, 2, vfs.NewFault(vfs.OS, rule)))

				// Whatever the fault left behind, a healthy worker reads a
				// valid coordination state and sees no phantom owner.
				m, err := testCoordinator(t, dir, g, 2).Manifest()
				if err != nil {
					t.Fatalf("op %d (%v): manifest unreadable after fault: %v", i, rec, err)
				}
				l := m.Shards[0]
				if l.State == StateClaimed && l.Owner != "w" {
					t.Errorf("op %d (%v): shard 0 claimed by phantom %q", i, rec, l.Owner)
				}
				if completed && l.State != StateDone {
					t.Errorf("op %d (%v): lifecycle reported success but shard 0 is %s", i, rec, l.State)
				}
				// And the sweep always continues: the interrupted worker can
				// re-claim its shard (a live lease only yields to its owner
				// until the TTL lapses) and retry.
				if l.State != StateDone {
					if err := testCoordinator(t, dir, g, 2).Claim(0, "w"); err != nil {
						t.Errorf("op %d (%v): recovery claim failed: %v", i, rec, err)
					}
				}
			}
		})
	}
}
