package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"tifs/internal/retry"
	"tifs/internal/store"
	"tifs/internal/vfs"
)

// ErrManifestUnchanged tells ManifestBackend.Update that fn decided not
// to mutate the manifest: the backend skips the write-back and reports
// success.
var ErrManifestUnchanged = errors.New("shard: manifest unchanged")

// ManifestBackend is the transactional seam under the Coordinator: one
// Update call reads the current manifest image, applies a mutation, and
// persists the replacement, atomically with respect to every other
// Update on the same sweep. FileManifest implements it with an flock
// and an atomic rename on a shared filesystem; remotestore implements
// it with an ETag compare-and-swap against a tifsserve manifest, so a
// sweep can coordinate over plain HTTP with no common filesystem.
//
// fn receives nil on first use (no manifest yet) and may run more than
// once — a CAS backend replays it against a newer image after a
// conflict — so it must be a pure function of its input.
type ManifestBackend interface {
	Update(fn func(cur []byte) ([]byte, error)) error
}

// FileManifest coordinates through shards.manifest in a store
// directory, mutated only under the shards.lock flock and replaced
// atomically (write-temp, fsync, rename), so every transition has
// exactly one winner no matter how many workers race for it.
type FileManifest struct {
	// Dir is the coordination directory (normally the store directory).
	Dir string
	// FS is the filesystem the manifest lives on (the fault seam;
	// vfs.OS when nil).
	FS vfs.FS
	// Retry is the backoff policy for transient manifest I/O faults —
	// the lock, the read, and the atomic write-back each ride out
	// flaky-NFS-class errors under it.
	Retry retry.Policy
}

var _ ManifestBackend = (*FileManifest)(nil)

func (f *FileManifest) fs() vfs.FS {
	if f.FS != nil {
		return f.FS
	}
	return vfs.OS
}

// Update implements ManifestBackend under the exclusive flock.
func (f *FileManifest) Update(fn func(cur []byte) ([]byte, error)) error {
	fsys := f.fs()
	if err := fsys.MkdirAll(f.Dir, 0o755); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	lf, err := f.openLockRetry(fsys)
	if err != nil {
		return err
	}
	defer lf.Close()
	defer lf.Unlock()

	path := filepath.Join(f.Dir, manifestName)
	data, err := f.readManifestRetry(fsys, path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		data = nil // first use
	case err != nil:
		return fmt.Errorf("shard: %w", err)
	}

	out, err := fn(data)
	if err != nil {
		if errors.Is(err, ErrManifestUnchanged) {
			return nil
		}
		return err
	}
	// Durable replacement (fsync before rename, directory fsync after): a
	// torn manifest would not corrupt results, but the strict parser
	// would refuse it and wedge every worker until an operator deleted
	// the file. Transient faults anywhere in the write-back are retried
	// whole — AtomicWriteFileFS leaves the old manifest intact on any
	// failure, so re-running it is always safe.
	if err := f.Retry.Do(func() error { return store.AtomicWriteFileFS(fsys, path, out) }); err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	return nil
}

// openLockRetry opens the coordination lock file and blocks for its
// exclusive lock, riding out transient faults on either step.
func (f *FileManifest) openLockRetry(fsys vfs.FS) (vfs.File, error) {
	var lf vfs.File
	err := f.Retry.Do(func() error {
		fl, err := fsys.OpenFile(filepath.Join(f.Dir, manifestLock), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return err
		}
		if err := fl.Lock(); err != nil {
			fl.Close()
			return err
		}
		lf = fl
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: lock %s: %w", filepath.Join(f.Dir, manifestLock), err)
	}
	return lf, nil
}

// readManifestRetry reads the manifest, riding out transient faults.
// A missing manifest is not a fault — it is first use.
func (f *FileManifest) readManifestRetry(fsys vfs.FS, path string) (data []byte, err error) {
	err = f.Retry.Do(func() error {
		data, err = fsys.ReadFile(path)
		if errors.Is(err, os.ErrNotExist) {
			return nil // surfaced through the data==nil err return below
		}
		return err
	})
	if err == nil {
		if data == nil {
			return nil, os.ErrNotExist
		}
		return data, nil
	}
	return nil, err
}
