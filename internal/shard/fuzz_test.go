package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tifs/internal/vfs"
)

// tornManifestImages renders manifest images through the fault layer's
// torn-write mode: a fresh manifest torn half way, and a short manifest
// torn over a longer predecessor so the old file's tail shows through —
// the states a writer WITHOUT atomic replacement would leave behind.
// The strict parser must reject them (or, for a clean prefix, never
// misread them); seeding real injected wreckage keeps the fuzzer honest.
func tornManifestImages(f *testing.F) [][]byte {
	f.Helper()
	dir := f.TempDir()
	longer := Manifest{
		GridHash: strings.Repeat("ab", 32),
		Count:    3,
		Shards: []Lease{
			{Index: 0, State: StateClaimed, Owner: "host-1.example.com-31337", Expires: 1_754_600_000},
			{Index: 1, State: StateClaimed, Owner: "host-2.example.com-31338", Expires: 1_754_600_060},
			{Index: 2, State: StateFree},
		},
	}.encode()
	shorter := Manifest{
		GridHash: strings.Repeat("cd", 32),
		Count:    1,
		Shards:   []Lease{{Index: 0, State: StateFree}},
	}.encode()

	write := func(fsys vfs.FS, name string, data []byte) string {
		path := filepath.Join(dir, name)
		fh, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			f.Fatal(err)
		}
		fh.WriteAt(data, 0) // torn variants return the injected error; the half image is the point
		fh.Close()
		return path
	}

	torn := vfs.NewFault(vfs.OS, vfs.Rule{Op: vfs.OpWrite, Times: -1, Mode: vfs.ModeShortWrite})
	fresh := write(torn, "fresh", longer)

	mixed := write(vfs.OS, "mixed", longer)
	write(torn, "mixed", shorter) // torn in-place overwrite: half new head, old tail

	var out [][]byte
	for _, path := range []string{fresh, mixed} {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		if len(data) == 0 {
			f.Fatal("torn-write seed generation produced an empty image")
		}
		out = append(out, data)
	}
	return out
}

// FuzzShardManifest throws arbitrary bytes at the manifest/lease parser.
// The parser coordinates mutually-untrusting workers through a shared
// file, so it may reject input but must never panic, and anything it
// accepts must re-encode to a manifest it parses back identically —
// otherwise two workers could read different assignments from one file.
func FuzzShardManifest(f *testing.F) {
	valid := Manifest{
		GridHash: strings.Repeat("5c", 32),
		Count:    4,
		Shards: []Lease{
			{Index: 0, State: StateDone},
			{Index: 1, State: StateClaimed, Owner: "host-1234", Expires: 1_753_800_000},
			{Index: 2, State: StateClaimed, Owner: `quoted "owner" \n`, Expires: 42},
			{Index: 3, State: StateFree},
		},
	}.encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)/3] ^= 0x08 // bit-flipped
	f.Add(flipped)
	f.Add([]byte("TIFSSHARDS 1\n"))
	f.Add([]byte("TIFSSHARDS 1\ngrid " + strings.Repeat("00", 32) + " count 1\nshard 0 free \"\" 0\n"))
	f.Add([]byte{})
	f.Add([]byte("shard 0 free \"\" 0\n"))
	for _, img := range tornManifestImages(f) {
		f.Add(img)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must be internally consistent...
		if m.Count != len(m.Shards) {
			t.Fatalf("accepted manifest with %d shards for count %d", len(m.Shards), m.Count)
		}
		for i, l := range m.Shards {
			if l.Index != i {
				t.Fatalf("accepted manifest with shard %d at position %d", l.Index, i)
			}
		}
		// ...and stable through a re-encode round trip.
		again, err := parseManifest(m.encode())
		if err != nil {
			t.Fatalf("re-encode of accepted manifest rejected: %v", err)
		}
		if m.GridHash != again.GridHash || m.Count != again.Count {
			t.Fatal("manifest round trip changed the header")
		}
		for i := range m.Shards {
			if m.Shards[i] != again.Shards[i] {
				t.Fatalf("manifest round trip changed shard %d: %+v != %+v",
					i, m.Shards[i], again.Shards[i])
			}
		}
	})
}
