package shard

import (
	"context"
	"testing"

	"tifs/internal/core"
	"tifs/internal/engine"
	"tifs/internal/sim"
	"tifs/internal/workload"
)

// testGrid builds a small but real sweep grid: two workloads crossed
// with a few mechanisms, plus one trace extraction per workload.
func testGrid(t testing.TB, events uint64) Grid {
	t.Helper()
	var g Grid
	for _, name := range []string{"OLTP-DB2", "Web-Zeus"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		for _, m := range []sim.Mechanism{
			sim.Baseline(),
			sim.FDIP(),
			sim.TIFS(core.DedicatedConfig()),
			sim.TIFS(core.VirtualizedConfig()),
			sim.Perfect(),
		} {
			g.Jobs = append(g.Jobs, engine.Job{
				Spec:  spec,
				Scale: workload.ScaleSmall,
				Config: sim.Config{
					EventsPerCore: events,
					Mechanism:     m,
				},
			})
		}
		g.Traces = append(g.Traces, engine.TraceJob{
			Spec: spec, Scale: workload.ScaleSmall, Cores: 2, Events: events,
		})
	}
	return g
}

// TestPartitionIsDeterministicAndComplete: shards are a disjoint,
// exhaustive, order-independent cover of the grid.
func TestPartitionIsDeterministicAndComplete(t *testing.T) {
	g := testGrid(t, 4_000)
	for _, count := range []int{1, 2, 4, 7} {
		seen := map[string]int{}
		total := 0
		for i := 0; i < count; i++ {
			sub := g.Shard(i, count)
			total += sub.Size()
			for _, j := range sub.Jobs {
				seen["sim|"+j.Key()]++
			}
			for _, tr := range sub.Traces {
				seen["trace|"+tr.Key()]++
			}
		}
		if total != g.Size() {
			t.Errorf("count=%d: shards cover %d of %d grid points", count, total, g.Size())
		}
		for key, n := range seen {
			if n != 1 {
				t.Errorf("count=%d: grid point in %d shards: %s", count, n, key)
			}
		}
	}
	// The assignment is a pure function of the key: recomputing yields
	// the same partition.
	a, b := g.Shard(1, 4), g.Shard(1, 4)
	if len(a.Jobs) != len(b.Jobs) || len(a.Traces) != len(b.Traces) {
		t.Error("repartition changed shard contents")
	}
}

// TestPartitionBalancesByWeight: the partition weighs grid points by
// their event budgets, not point count — the LPT guarantee that matters
// is that the few expensive jobs of a mixed sweep spread across shards
// instead of hashing onto one unlucky worker.
func TestPartitionBalancesByWeight(t *testing.T) {
	g := testGrid(t, 1_000)
	// Add 4 jobs that each dwarf the rest of the grid combined.
	spec, _ := workload.ByName("OLTP-DB2")
	for _, budget := range []uint64{50_000_000, 50_000_001, 50_000_002, 50_000_003} {
		g.Jobs = append(g.Jobs, engine.Job{
			Spec:  spec,
			Scale: workload.ScaleSmall,
			Config: sim.Config{
				EventsPerCore: budget,
				Mechanism:     sim.Baseline(),
			},
		})
	}
	const count = 4
	weights := make([]uint64, count)
	huge := make([]int, count)
	for i := 0; i < count; i++ {
		sub := g.Shard(i, count)
		for _, j := range sub.Jobs {
			weights[i] += jobWeight(j)
			if j.Config.EventsPerCore >= 50_000_000 {
				huge[i]++
			}
		}
		for _, tr := range sub.Traces {
			weights[i] += traceWeight(tr)
		}
	}
	// Each giant job lands on its own shard...
	for i, n := range huge {
		if n != 1 {
			t.Errorf("shard %d carries %d of the 4 dominant jobs, want exactly 1 (loads: %v)", i, n, weights)
		}
	}
	// ...and no shard is empty or grossly overloaded relative to the mean.
	var total uint64
	for _, w := range weights {
		total += w
	}
	mean := total / count
	for i, w := range weights {
		if w == 0 {
			t.Errorf("shard %d is empty", i)
		}
		if w > mean*2 {
			t.Errorf("shard %d carries %d of mean %d — partition is not weight-balanced", i, w, mean)
		}
	}
}

// TestGridHashDetectsDivergence: two workers with different options
// (here: different event budgets) must not agree on a grid hash.
func TestGridHashDetectsDivergence(t *testing.T) {
	a, b := testGrid(t, 4_000), testGrid(t, 5_000)
	if a.Hash() == b.Hash() {
		t.Error("different grids share a hash")
	}
	if a.Hash() != testGrid(t, 4_000).Hash() {
		t.Error("identical grids hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

// TestRunValidatesShardSpec: out-of-range shard coordinates must fail
// before any work runs.
func TestRunValidatesShardSpec(t *testing.T) {
	g := testGrid(t, 1_000)
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := Run(context.Background(), nil, g, bad[0], bad[1], 1, nil, 0, 0); err == nil {
			t.Errorf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
}
