package shard

import (
	"context"
	"testing"

	"tifs/internal/core"
	"tifs/internal/engine"
	"tifs/internal/sim"
	"tifs/internal/workload"
)

// testGrid builds a small but real sweep grid: two workloads crossed
// with a few mechanisms, plus one trace extraction per workload.
func testGrid(t testing.TB, events uint64) Grid {
	t.Helper()
	var g Grid
	for _, name := range []string{"OLTP-DB2", "Web-Zeus"} {
		spec, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		for _, m := range []sim.Mechanism{
			sim.Baseline(),
			sim.FDIP(),
			sim.TIFS(core.DedicatedConfig()),
			sim.TIFS(core.VirtualizedConfig()),
			sim.Perfect(),
		} {
			g.Jobs = append(g.Jobs, engine.Job{
				Spec:  spec,
				Scale: workload.ScaleSmall,
				Config: sim.Config{
					EventsPerCore: events,
					Mechanism:     m,
				},
			})
		}
		g.Traces = append(g.Traces, engine.TraceJob{
			Spec: spec, Scale: workload.ScaleSmall, Cores: 2, Events: events,
		})
	}
	return g
}

// TestPartitionIsDeterministicAndComplete: shards are a disjoint,
// exhaustive, order-independent cover of the grid.
func TestPartitionIsDeterministicAndComplete(t *testing.T) {
	g := testGrid(t, 4_000)
	for _, count := range []int{1, 2, 4, 7} {
		seen := map[string]int{}
		total := 0
		for i := 0; i < count; i++ {
			sub := g.Shard(i, count)
			total += sub.Size()
			for _, j := range sub.Jobs {
				seen[j.Key()]++
				if got := IndexFor(j.Key(), count); got != i {
					t.Errorf("count=%d: job in shard %d hashes to %d", count, i, got)
				}
			}
			for _, tr := range sub.Traces {
				seen[tr.Key()]++
			}
		}
		if total != g.Size() {
			t.Errorf("count=%d: shards cover %d of %d grid points", count, total, g.Size())
		}
		for key, n := range seen {
			if n != 1 {
				t.Errorf("count=%d: grid point in %d shards: %s", count, n, key)
			}
		}
	}
	// The assignment is a pure function of the key: recomputing yields
	// the same partition.
	a, b := g.Shard(1, 4), g.Shard(1, 4)
	if len(a.Jobs) != len(b.Jobs) || len(a.Traces) != len(b.Traces) {
		t.Error("repartition changed shard contents")
	}
}

// TestGridHashDetectsDivergence: two workers with different options
// (here: different event budgets) must not agree on a grid hash.
func TestGridHashDetectsDivergence(t *testing.T) {
	a, b := testGrid(t, 4_000), testGrid(t, 5_000)
	if a.Hash() == b.Hash() {
		t.Error("different grids share a hash")
	}
	if a.Hash() != testGrid(t, 4_000).Hash() {
		t.Error("identical grids hash differently")
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a.Hash()))
	}
}

// TestRunValidatesShardSpec: out-of-range shard coordinates must fail
// before any work runs.
func TestRunValidatesShardSpec(t *testing.T) {
	g := testGrid(t, 1_000)
	for _, bad := range [][2]int{{-1, 4}, {4, 4}, {0, 0}} {
		if _, err := Run(context.Background(), nil, g, bad[0], bad[1], 1, nil, 0, 0); err == nil {
			t.Errorf("shard %d/%d accepted", bad[0], bad[1])
		}
	}
}
