package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tifs/internal/retry"
	"tifs/internal/vfs"
)

// Lease states. A shard is free until claimed; a claim expires (and
// becomes claimable again) when its holder misses the lease deadline; a
// done shard's results are fully in the store.
const (
	StateFree    = "free"
	StateClaimed = "claimed"
	StateDone    = "done"
)

// Lease is one shard's assignment record.
type Lease struct {
	Index int
	State string
	// Owner identifies the claiming worker (host-pid, or a test name).
	Owner string
	// Expires is the claim's unix-seconds deadline; 0 when free or done.
	// A claimed shard past its deadline may be taken over by any worker —
	// the manifest lock guarantees exactly one winner.
	Expires int64
}

// Manifest is the sweep's shared coordination state, stored as
// shards.manifest in the store directory and mutated only under the
// shards.lock flock.
type Manifest struct {
	// GridHash fingerprints the grid every worker must agree on.
	GridHash string
	// Count is the shard count; Shards has exactly Count entries,
	// Shards[i] describing shard i.
	Count  int
	Shards []Lease
}

const (
	manifestName    = "shards.manifest"
	manifestLock    = "shards.lock"
	manifestMagic   = "TIFSSHARDS"
	manifestVersion = 1
	// maxShards bounds manifest parsing; a sweep sharded a million ways
	// is a corrupt file, not a plan.
	maxShards = 1 << 20
)

// encode renders the manifest in its line-oriented file format:
//
//	TIFSSHARDS 1
//	grid <64-hex-hash> count <N>
//	shard <i> <state> <quoted-owner> <expiresUnix>
func (m Manifest) encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d\n", manifestMagic, manifestVersion)
	fmt.Fprintf(&b, "grid %s count %d\n", m.GridHash, m.Count)
	for _, l := range m.Shards {
		fmt.Fprintf(&b, "shard %d %s %s %d\n", l.Index, l.State, strconv.Quote(l.Owner), l.Expires)
	}
	return []byte(b.String())
}

// parseManifest decodes and validates a manifest image. It is strict:
// anything malformed — wrong magic or version, a bad hash, shard lines
// missing, duplicated, out of order, or trailing garbage — is an error,
// so a torn or damaged coordination file halts the sweep loudly instead
// of silently double-assigning work.
func parseManifest(data []byte) (Manifest, error) {
	var m Manifest
	text := string(data)
	if !strings.HasSuffix(text, "\n") {
		return m, errors.New("shard: manifest missing final newline")
	}
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	if len(lines) < 2 {
		return m, errors.New("shard: manifest truncated")
	}
	// Field-exact header parsing: Sscanf would tolerate trailing garbage,
	// and a torn write of this shared file must halt the sweep loudly.
	head := strings.Split(lines[0], " ")
	if len(head) != 2 || head[0] != manifestMagic {
		return m, errors.New("shard: not a manifest")
	}
	version, err := strconv.Atoi(head[1])
	if err != nil {
		return m, errors.New("shard: not a manifest")
	}
	if version != manifestVersion {
		return m, fmt.Errorf("shard: manifest version %d, want %d", version, manifestVersion)
	}
	grid := strings.Split(lines[1], " ")
	if len(grid) != 4 || grid[0] != "grid" || grid[2] != "count" {
		return m, errors.New("shard: bad manifest grid line")
	}
	m.GridHash = grid[1]
	if len(m.GridHash) != 64 || strings.Trim(m.GridHash, "0123456789abcdef") != "" {
		return m, errors.New("shard: bad grid hash")
	}
	if m.Count, err = strconv.Atoi(grid[3]); err != nil {
		return m, errors.New("shard: bad manifest grid line")
	}
	if m.Count < 1 || m.Count > maxShards {
		return m, fmt.Errorf("shard: implausible shard count %d", m.Count)
	}
	if len(lines) != 2+m.Count {
		return m, fmt.Errorf("shard: manifest has %d shard lines, want %d", len(lines)-2, m.Count)
	}
	m.Shards = make([]Lease, m.Count)
	for i, line := range lines[2:] {
		l, err := parseLease(line)
		if err != nil {
			return m, err
		}
		if l.Index != i {
			return m, fmt.Errorf("shard: lease line %d describes shard %d", i, l.Index)
		}
		m.Shards[i] = l
	}
	return m, nil
}

// parseLease decodes one "shard <i> <state> <quoted-owner> <expires>"
// line.
func parseLease(line string) (Lease, error) {
	var l Lease
	rest, ok := strings.CutPrefix(line, "shard ")
	if !ok {
		return l, fmt.Errorf("shard: bad lease line %q", line)
	}
	idx, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return l, fmt.Errorf("shard: bad lease line %q", line)
	}
	state, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return l, fmt.Errorf("shard: bad lease line %q", line)
	}
	var err error
	if l.Index, err = strconv.Atoi(idx); err != nil || l.Index < 0 {
		return l, fmt.Errorf("shard: bad shard index %q", idx)
	}
	switch state {
	case StateFree, StateClaimed, StateDone:
		l.State = state
	default:
		return l, fmt.Errorf("shard: unknown lease state %q", state)
	}
	quoted, err := strconv.QuotedPrefix(rest)
	if err != nil {
		return l, fmt.Errorf("shard: bad lease owner in %q", line)
	}
	if l.Owner, err = strconv.Unquote(quoted); err != nil {
		return l, fmt.Errorf("shard: bad lease owner in %q", line)
	}
	rest = strings.TrimPrefix(rest[len(quoted):], " ")
	if l.Expires, err = strconv.ParseInt(rest, 10, 64); err != nil {
		return l, fmt.Errorf("shard: bad lease expiry in %q", line)
	}
	return l, nil
}

// DefaultTTL is how long a claim stays valid without renewal. Workers
// renew on a timer (Coordinator.RenewInterval) while they hold a shard,
// so a TTL this long only delays takeover when a worker dies.
//
// Deadlines are absolute unix timestamps compared against each reader's
// local clock, so machines cooperating on one sweep must have
// synchronized clocks (NTP-synced is plenty): skew between machines
// eats into the takeover grace, and skew approaching the TTL causes
// spurious takeovers — duplicated work, never wrong results.
const DefaultTTL = 10 * time.Minute

// Coordinator mediates shard assignment through the sweep manifest. All
// mutations run as one ManifestBackend.Update transaction — an
// exclusive flock plus atomic rename for the file backend, an ETag
// compare-and-swap for the remote one — so every transition, including
// the takeover of an expired lease, has exactly one winner, no matter
// how many workers race for it.
type Coordinator struct {
	dir  string
	grid Grid
	// hash is the grid's fingerprint, computed once at construction.
	hash  string
	count int
	// TTL is the lease duration granted by Claim and Renew.
	TTL time.Duration
	// Now is the clock (overridable in tests).
	Now func() time.Time
	// FS is the filesystem the manifest lives on (the fault seam;
	// vfs.OS outside tests). Only consulted by the file backend.
	FS vfs.FS
	// Retry is the backoff policy for transient manifest I/O faults —
	// the read and the atomic write-back each ride out flaky-NFS-class
	// errors under it before the operation is reported failed. Only
	// consulted by the file backend; a remote backend carries its own
	// policy.
	Retry retry.Policy
	// Backend overrides where the manifest lives (nil selects a
	// FileManifest in dir).
	Backend ManifestBackend
}

// NewCoordinator prepares shard coordination for grid split count ways,
// using dir (normally the shared store directory) for its files.
func NewCoordinator(dir string, grid Grid, count int) *Coordinator {
	return &Coordinator{
		dir:   dir,
		grid:  grid,
		hash:  grid.Hash(),
		count: count,
		TTL:   DefaultTTL,
		Now:   time.Now,
		FS:    vfs.OS,
	}
}

// NewCoordinatorBackend prepares shard coordination through an
// arbitrary manifest backend — the remote-sweep entry point, where the
// manifest lives behind a tifsserve URL instead of a shared directory.
func NewCoordinatorBackend(b ManifestBackend, grid Grid, count int) *Coordinator {
	return &Coordinator{
		grid:    grid,
		hash:    grid.Hash(),
		count:   count,
		TTL:     DefaultTTL,
		Now:     time.Now,
		Backend: b,
	}
}

// RenewInterval is the cadence at which a worker holding a lease should
// renew it: a third of the TTL, so two renewals can fail transiently
// before the lease actually lapses.
func (c *Coordinator) RenewInterval() time.Duration {
	if c.TTL <= 0 {
		return DefaultTTL / 3
	}
	return c.TTL / 3
}

// update runs fn against the current manifest as one backend
// transaction, creating the manifest on first use, and persists fn's
// changes atomically. fn may return ErrManifestUnchanged to skip the
// write-back.
func (c *Coordinator) update(fn func(m *Manifest) error) error {
	if c.count < 1 || c.count > maxShards {
		return fmt.Errorf("shard: implausible shard count %d", c.count)
	}
	return c.backend().Update(func(cur []byte) ([]byte, error) {
		var m Manifest
		if cur == nil {
			m = c.freshManifest()
		} else {
			var err error
			if m, err = parseManifest(cur); err != nil {
				return nil, err
			}
			if m.GridHash != c.hash || m.Count != c.count {
				// A manifest whose every shard is done belongs to a finished
				// sweep: its results live safely in the store and it has no
				// further claim on the directory, so a sweep of a new shape
				// simply replaces it. An *unfinished* sweep is protected —
				// mismatched workers are turned away loudly.
				if !m.allDone() {
					if m.Count != c.count {
						return nil, fmt.Errorf("shard: manifest splits the sweep %d ways, this worker expects %d (an unfinished sweep owns %s; finish it or delete the file)", m.Count, c.count, c.where())
					}
					return nil, fmt.Errorf("shard: manifest grid %.12s… != this worker's grid %.12s… — either this worker's options diverge from the sweep's, or an unfinished sweep with different options owns %s (finish it or delete the file)", m.GridHash, c.hash, c.where())
				}
				m = c.freshManifest()
			}
		}
		if err := fn(&m); err != nil {
			return nil, err
		}
		return m.encode(), nil
	})
}

// freshManifest is the first-use coordination state: every shard free.
func (c *Coordinator) freshManifest() Manifest {
	m := Manifest{GridHash: c.hash, Count: c.count, Shards: make([]Lease, c.count)}
	for i := range m.Shards {
		m.Shards[i] = Lease{Index: i, State: StateFree}
	}
	return m
}

// backend returns the manifest backend (a FileManifest in dir unless
// one was injected).
func (c *Coordinator) backend() ManifestBackend {
	if c.Backend != nil {
		return c.Backend
	}
	return &FileManifest{Dir: c.dir, FS: c.FS, Retry: c.Retry}
}

// where names the manifest's location for operator-facing errors.
func (c *Coordinator) where() string {
	if c.dir != "" {
		return filepath.Join(c.dir, manifestName)
	}
	return "the sweep manifest"
}

// Manifest returns a validated snapshot of the coordination state.
func (c *Coordinator) Manifest() (Manifest, error) {
	var snap Manifest
	err := c.update(func(m *Manifest) error {
		snap = *m
		snap.Shards = append([]Lease{}, m.Shards...)
		return ErrManifestUnchanged
	})
	return snap, err
}

// ClaimAny leases the first claimable shard — free, or claimed but
// expired — to owner. ok is false when every shard is done or validly
// leased elsewhere.
func (c *Coordinator) ClaimAny(owner string) (index int, ok bool, err error) {
	now := c.Now()
	err = c.update(func(m *Manifest) error {
		// Reset on entry: a CAS backend replays fn against a newer image
		// after a lost write race, and a claim granted in the discarded
		// round must not leak out of it.
		index, ok = 0, false
		for i := range m.Shards {
			if c.claimable(m.Shards[i], now) {
				m.Shards[i] = Lease{Index: i, State: StateClaimed, Owner: owner, Expires: now.Add(c.TTL).Unix()}
				index, ok = i, true
				return nil
			}
		}
		return ErrManifestUnchanged
	})
	return index, ok && err == nil, err
}

// Claim leases the specific shard index to owner. A done shard may be
// re-claimed (re-running it is idempotent: its results are already
// stored and the worker skips them); a live claim by another owner is an
// error.
func (c *Coordinator) Claim(index int, owner string) error {
	now := c.Now()
	return c.update(func(m *Manifest) error {
		if index < 0 || index >= m.Count {
			return fmt.Errorf("shard: index %d out of range [0,%d)", index, m.Count)
		}
		l := m.Shards[index]
		if l.State == StateClaimed && l.Owner != owner && !c.expired(l, now) {
			return fmt.Errorf("shard: shard %d is leased to %s until %s",
				index, l.Owner, time.Unix(l.Expires, 0).Format(time.RFC3339))
		}
		m.Shards[index] = Lease{Index: index, State: StateClaimed, Owner: owner, Expires: now.Add(c.TTL).Unix()}
		return nil
	})
}

// ErrLeaseLost reports that a lease is no longer held by its claimed
// owner — another worker took the shard over. Renewal errors wrapping it
// are terminal for the shard; any other renewal error (manifest I/O on a
// flaky shared filesystem) is transient and worth retrying while the
// lease deadline holds.
var ErrLeaseLost = errors.New("lease no longer held")

// Renew extends owner's lease on a shard. Renewal after a takeover
// (another worker now holds the shard) fails with ErrLeaseLost, telling
// the stale worker to stop: its finished records are already safe in the
// store.
func (c *Coordinator) Renew(index int, owner string) error {
	now := c.Now()
	return c.update(func(m *Manifest) error {
		if index < 0 || index >= m.Count {
			return fmt.Errorf("shard: index %d out of range [0,%d)", index, m.Count)
		}
		l := m.Shards[index]
		if l.State != StateClaimed || l.Owner != owner {
			return fmt.Errorf("shard: shard %d is not leased to %s (state %s, owner %s): %w",
				index, owner, l.State, l.Owner, ErrLeaseLost)
		}
		m.Shards[index].Expires = now.Add(c.TTL).Unix()
		return nil
	})
}

// Release hands owner's claim on a shard back: the lease returns to
// free, immediately claimable by any worker — no TTL expiry wait. An
// interrupted worker (SIGINT mid-sweep) releases on the way out so the
// rest of the fleet, or a retry, can pick the shard up at once. Releasing
// a shard owner no longer holds is a no-op: the takeover already
// transferred ownership, and done is terminal.
func (c *Coordinator) Release(index int, owner string) error {
	return c.update(func(m *Manifest) error {
		if index < 0 || index >= m.Count {
			return fmt.Errorf("shard: index %d out of range [0,%d)", index, m.Count)
		}
		l := m.Shards[index]
		if l.State != StateClaimed || l.Owner != owner {
			return ErrManifestUnchanged
		}
		m.Shards[index] = Lease{Index: index, State: StateFree}
		return nil
	})
}

// ReleaseAfter is the release a worker performs on its way out of a
// failed shard run, gated on why the run ended. When runErr says the
// lease was lost — a peer took the shard over, or the renewer presumed
// it lost after failures spanning the TTL — the worker must NOT
// release: by the time it acts, the shard may be validly claimed by a
// new owner, and if that owner's identity string collides with this
// worker's (host-pid owner names recur when a host reuses a pid), a
// plain Release would pass the ownership check and rewrite the new
// claim to free, double-assigning the shard. Ceding the lease to the
// TTL is always safe; releasing over a live claim never is. Any other
// failure releases normally so the fleet can reclaim immediately.
func (c *Coordinator) ReleaseAfter(runErr error, index int, owner string) error {
	if errors.Is(runErr, ErrLeaseLost) {
		return nil
	}
	return c.Release(index, owner)
}

// Complete marks a shard done. Done is terminal and idempotent: the
// shard's results live in the store, whoever computed them. Once every
// shard is done the sweep is finished, and the manifest yields the
// directory to any future sweep of a different shape (see update).
func (c *Coordinator) Complete(index int) error {
	return c.update(func(m *Manifest) error {
		if index < 0 || index >= m.Count {
			return fmt.Errorf("shard: index %d out of range [0,%d)", index, m.Count)
		}
		m.Shards[index] = Lease{Index: index, State: StateDone}
		return nil
	})
}

// allDone reports a finished sweep: every shard completed.
func (m Manifest) allDone() bool {
	for _, l := range m.Shards {
		if l.State != StateDone {
			return false
		}
	}
	return true
}

func (c *Coordinator) claimable(l Lease, now time.Time) bool {
	return l.State == StateFree || (l.State == StateClaimed && c.expired(l, now))
}

func (c *Coordinator) expired(l Lease, now time.Time) bool {
	return now.Unix() >= l.Expires
}
