package shard

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tifs/internal/engine"
	"tifs/internal/store"
)

// TestShardedSweepCooperates is the package's end-to-end guarantee,
// exercised under the race detector in CI: N goroutine-simulated workers
// share one store directory, claim shards through the lease file, and
// fill the store cooperatively; afterwards no record is missing, the
// manifest shows every shard done, and an engine reading only the store
// reproduces the exact results of a serial, storeless run.
func TestShardedSweepCooperates(t *testing.T) {
	g := testGrid(t, 3_000)
	for _, count := range []int{1, 2, 4} {
		count := count
		t.Run(fmt.Sprintf("%dshards", count), func(t *testing.T) {
			dir := t.TempDir()
			var wg sync.WaitGroup
			errs := make(chan error, count)
			for w := 0; w < count; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					owner := fmt.Sprintf("worker-%d", w)
					st, err := store.Open(dir)
					if err != nil {
						errs <- err
						return
					}
					defer st.Close()
					c := NewCoordinator(dir, g, count)
					c.TTL = time.Hour
					for {
						idx, ok, err := c.ClaimAny(owner)
						if err != nil {
							errs <- err
							return
						}
						if !ok {
							return
						}
						if _, err := Run(context.Background(), st, g, idx, count, 2, func() error { return c.Renew(idx, owner) }, 50*time.Millisecond, time.Hour); err != nil {
							errs <- err
							return
						}
						if err := c.Complete(idx); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Every shard is done.
			m, err := NewCoordinator(dir, g, count).Manifest()
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range m.Shards {
				if l.State != StateDone {
					t.Errorf("shard %d finished in state %s", l.Index, l.State)
				}
			}

			// No record was lost: the merge engine must satisfy the whole
			// grid from the store without simulating anything.
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if jobs, traces := Missing(st, g); len(jobs)+len(traces) != 0 {
				t.Fatalf("store is missing %d jobs and %d traces after all shards completed",
					len(jobs), len(traces))
			}
			merged := engine.New(4)
			merged.SetStore(st)
			mergedResults := merged.RunAll(context.Background(), g.Jobs)
			var mergedTraces [][][]int // compact shape probe: (trace, core) -> record count
			for _, tj := range g.Traces {
				recs := merged.ExtractTraces(context.Background(), tj)
				var shape [][]int
				for _, core := range recs {
					shape = append(shape, []int{len(core)})
				}
				mergedTraces = append(mergedTraces, shape)
			}
			if got := merged.SimulationsRun(); got != 0 {
				t.Errorf("merge pass re-simulated %d grid points", got)
			}

			// And the merged results are identical to a serial, storeless
			// run — sharding changed nothing but who computed what.
			serial := engine.New(1)
			serialResults := serial.RunAll(context.Background(), g.Jobs)
			if !reflect.DeepEqual(mergedResults, serialResults) {
				t.Error("merged results diverge from a serial storeless run")
			}
			for ti, tj := range g.Traces {
				recs := serial.ExtractTraces(context.Background(), tj)
				for ci, core := range recs {
					if mergedTraces[ti][ci][0] != len(core) {
						t.Errorf("trace %d core %d: merged %d records, serial %d",
							ti, ci, mergedTraces[ti][ci][0], len(core))
					}
				}
			}
		})
	}
}

// TestLostLeaseAbortsRun: when the timer-driven renewal reports the
// lease taken over, Run must stop at a batch boundary and surface the
// loss instead of burning cycles on a shard it no longer owns. A merely
// transient renewal error must NOT abort until it persists.
func TestLostLeaseAbortsRun(t *testing.T) {
	g := testGrid(t, 2_000)
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	renew := func() error { return fmt.Errorf("shard 0 is leased to usurper: %w", ErrLeaseLost) }
	_, err = Run(context.Background(), st, g, 0, 1, 1, renew, time.Microsecond, time.Hour)
	if err == nil || !strings.Contains(err.Error(), "lease lost") {
		t.Fatalf("run with a taken-over lease returned %v, want a lease-lost error", err)
	}

	// A single transient failure followed by successes never aborts.
	var calls int
	var mu sync.Mutex
	flaky := func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls == 1 {
			return fmt.Errorf("transient manifest I/O error")
		}
		return nil
	}
	if _, err := Run(context.Background(), st, g, 0, 1, 1, flaky, time.Microsecond, time.Hour); err != nil {
		t.Fatalf("one transient renewal failure aborted the shard: %v", err)
	}
}

// TestHalfFinishedShardResumes: a worker that dies mid-shard leaves its
// finished records in the store; the peer that takes over the expired
// lease pays only for what is missing and the sweep still completes
// losslessly.
func TestHalfFinishedShardResumes(t *testing.T) {
	g := testGrid(t, 3_000)
	dir := t.TempDir()

	// The dying worker: simulate a prefix of shard 0 by hand, then vanish
	// without completing the lease.
	dying := NewCoordinator(dir, g, 1)
	dying.TTL = -time.Second // lease is born expired
	if _, ok, err := dying.ClaimAny("dying"); err != nil || !ok {
		t.Fatalf("setup claim failed: ok=%v err=%v", ok, err)
	}
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	half := g.Shard(0, 1)
	partial := engine.New(2)
	partial.SetStore(st1)
	done := len(half.Jobs) / 2
	partial.RunAll(context.Background(), half.Jobs[:done])
	st1.Close()

	// The successor takes over and finishes.
	c := NewCoordinator(dir, g, 1)
	c.TTL = time.Hour
	idx, ok, err := c.ClaimAny("successor")
	if err != nil || !ok {
		t.Fatalf("takeover claim failed: ok=%v err=%v", ok, err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep, err := Run(context.Background(), st2, g, idx, 1, 2, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(idx); err != nil {
		t.Fatal(err)
	}
	if rep.StoreHits != uint64(done) {
		t.Errorf("successor had %d store hits, want %d (the dead worker's finished prefix)",
			rep.StoreHits, done)
	}
	if want := uint64(len(half.Jobs) - done); rep.Simulated != want {
		t.Errorf("successor simulated %d jobs, want exactly the missing %d", rep.Simulated, want)
	}
	if jobs, traces := Missing(st2, g); len(jobs)+len(traces) != 0 {
		t.Errorf("resumed sweep left %d jobs and %d traces missing", len(jobs), len(traces))
	}
}
