package workload

import (
	"testing"

	"tifs/internal/isa"
)

func TestSuiteHasSixWorkloads(t *testing.T) {
	suite := Suite()
	if len(suite) != 6 {
		t.Fatalf("suite has %d workloads, want 6", len(suite))
	}
	classes := map[Class]int{}
	for _, s := range suite {
		classes[s.Class]++
		if s.Name == "" || s.Description == "" {
			t.Errorf("workload %+v missing identity", s)
		}
		if s.AppKB <= 0 || s.TxnTypes <= 0 || s.ThreadsPerCore <= 0 {
			t.Errorf("workload %s has degenerate parameters", s.Name)
		}
	}
	if classes[OLTP] != 2 || classes[DSS] != 2 || classes[Web] != 2 {
		t.Errorf("class mix = %v, want 2 each", classes)
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("OLTP-Oracle")
	if !ok || s.Class != OLTP {
		t.Errorf("ByName(OLTP-Oracle) = %+v, %v", s, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should fail for unknown workload")
	}
	names := Names()
	if len(names) != 6 || names[0] != "OLTP-DB2" {
		t.Errorf("Names() = %v", names)
	}
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"small", ScaleSmall}, {"medium", ScaleMedium}, {"full", ScaleFull}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
		if got.String() != c.in {
			t.Errorf("Scale.String() = %q, want %q", got.String(), c.in)
		}
	}
	if _, err := ParseScale("giant"); err == nil {
		t.Error("ParseScale should reject unknown scales")
	}
}

func TestScaleDefaults(t *testing.T) {
	if ScaleSmall.DefaultEvents() >= ScaleMedium.DefaultEvents() {
		t.Error("small events should be < medium")
	}
	if ScaleMedium.DefaultEvents() >= ScaleFull.DefaultEvents() {
		t.Error("medium events should be < full")
	}
}

func TestBuildProducesRunnableCores(t *testing.T) {
	spec, _ := ByName("Web-Zeus")
	g := Build(spec, ScaleSmall, 4)
	if g.Cores() != 4 {
		t.Fatalf("Cores = %d", g.Cores())
	}
	if err := g.Program.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	for c, src := range g.Sources() {
		prev, ok := src.Next()
		if !ok {
			t.Fatalf("core %d produced no events", c)
		}
		for i := 0; i < 20000; i++ {
			ev, ok := src.Next()
			if !ok {
				t.Fatalf("core %d stream ended", c)
			}
			if prev.Kind != isa.CTTrap && prev.Kind != isa.CTTrapReturn && prev.NextPC() != ev.PC {
				t.Fatalf("core %d event %d: inconsistent stream", c, i)
			}
			prev = ev
		}
	}
}

func TestBuildDeterministicAcrossCalls(t *testing.T) {
	spec, _ := ByName("DSS-Qry2")
	g1 := Build(spec, ScaleSmall, 2)
	g2 := Build(spec, ScaleSmall, 2)
	s1, s2 := g1.Sources()[0], g2.Sources()[0]
	for i := 0; i < 20000; i++ {
		e1, _ := s1.Next()
		e2, _ := s2.Next()
		if e1 != e2 {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestCoresAreDecorrelated(t *testing.T) {
	spec, _ := ByName("OLTP-DB2")
	g := Build(spec, ScaleSmall, 2)
	s0, s1 := g.Sources()[0], g.Sources()[1]
	same := 0
	const n = 5000
	for i := 0; i < n; i++ {
		e0, _ := s0.Next()
		e1, _ := s1.Next()
		if e0.PC == e1.PC {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("cores in lockstep: %d/%d identical PCs", same, n)
	}
}

func TestFootprintsScaleAndOrder(t *testing.T) {
	oracle, _ := ByName("OLTP-Oracle")
	q17, _ := ByName("DSS-Qry17")

	gBig := Build(oracle, ScaleMedium, 1)
	gSmall := Build(oracle, ScaleSmall, 1)
	if gBig.Program.TotalBytes() <= gSmall.Program.TotalBytes() {
		t.Error("medium scale should have a larger image than small")
	}

	gDSS := Build(q17, ScaleMedium, 1)
	if gDSS.Program.TotalBytes() >= gBig.Program.TotalBytes() {
		t.Errorf("DSS image (%d B) should be smaller than OLTP (%d B)",
			gDSS.Program.TotalBytes(), gBig.Program.TotalBytes())
	}
}

func TestWorkingSetExceedsL1AtSmallScale(t *testing.T) {
	// Even the smallest build of every workload must exceed a 64 KB L1-I,
	// or the whole study degenerates. OLTP and Web must exceed it by 2x;
	// DSS is intentionally smaller (the paper's point about its reduced
	// prefetch sensitivity) but still larger than L1.
	const l1Blocks = 64 * 1024 / isa.BlockBytes
	for _, spec := range Suite() {
		g := Build(spec, ScaleSmall, 1)
		want := 2 * l1Blocks
		if spec.Class == DSS {
			want = l1Blocks * 5 / 4
		}
		if got := g.Program.TotalBlocks(); got < want {
			t.Errorf("%s small image = %d blocks, want > %d", spec.Name, got, want)
		}
	}
}

func TestRegionsPresent(t *testing.T) {
	spec, _ := ByName("Web-Apache")
	g := Build(spec, ScaleSmall, 1)
	names := map[string]bool{}
	for _, r := range g.Program.Regions {
		names[r.Name] = true
		if r.Funcs == 0 {
			t.Errorf("region %s has no functions", r.Name)
		}
	}
	for _, want := range []string{"app", "lib", "os"} {
		if !names[want] {
			t.Errorf("missing region %s", want)
		}
	}
}

func TestOSCodeExecutes(t *testing.T) {
	spec, _ := ByName("OLTP-DB2")
	g := Build(spec, ScaleSmall, 1)
	src := g.Sources()[0]
	sawOS := false
	for i := 0; i < 200000 && !sawOS; i++ {
		ev, _ := src.Next()
		if ev.PC >= osBase {
			sawOS = true
		}
	}
	if !sawOS {
		t.Error("OS region never executed (traps not firing)")
	}
}

func TestBuildPanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build with 0 cores should panic")
		}
	}()
	Build(Suite()[0], ScaleSmall, 0)
}
