package workload

import (
	"fmt"

	"tifs/internal/cfg"
	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// Region base addresses. Spaced far apart so regions can never collide at
// any scale; the OS region sits high, as kernel text does.
const (
	appBase isa.Addr = 0x0010_0000
	libBase isa.Addr = 0x2000_0000
	osBase  isa.Addr = 0xf000_0000
)

// Average function sizes in instructions, by layer. Leaves are small hot
// helpers (the paper's highbit() example is ~50 instructions), mid-level
// functions are the bulk of server code, drivers are transaction bodies.
const (
	avgLeafInstrs   = 160
	avgLibInstrs    = 150
	avgMidInstrs    = 1000
	avgDriverInstrs = 1800
	avgOSInstrs     = 130
)

// Call densities. These govern the dynamic cost and code footprint of
// one transaction: a driver with ~25 call sites to mid-level functions,
// each mid calling ~10 helpers, costs ≈ 50k instructions and touches
// ≈ 100-150 KB of code — decisively larger than the 64 KB L1-I, which is
// the paper's core premise ("working sets overwhelm L1 instruction
// caches"). Paths must exceed L1 or recurrences stay cache-resident and
// produce no recurring miss streams; they must stay cheap enough that
// every transaction type recurs many times within a trace (the paper
// traces billions of instructions for the same reason).
const (
	midCallFrac    = 0.09
	driverCallFrac = 0.20
)

// buildProgram lays out the workload's code image and returns the program
// plus the transaction roots and OS trap handlers.
func buildProgram(spec Spec, scale Scale, rng *xrand.Rand) (*cfg.Program, []cfg.FuncID, []cfg.FuncID) {
	div := scale.divisor()
	appInstrs := spec.AppKB * 1024 / isa.InstrBytes / div
	libInstrs := spec.LibKB * 1024 / isa.InstrBytes / div
	osInstrs := spec.OSKB * 1024 / isa.InstrBytes / div

	txnTypes := spec.TxnTypes
	if scale == ScaleSmall {
		txnTypes = max(2, txnTypes/2)
	}

	b := cfg.NewBuilder(rng.Fork("program"))
	app := b.Region("app", appBase)
	lib := b.Region("lib", libBase)
	osr := b.Region("os", osBase)

	// ---- Shared library: flat helper functions callable from all mids.
	libFuncs := addLayer(b, lib, "lib", libInstrs, avgLibInstrs, cfg.FuncSpec{
		HammockFrac:   spec.HammockFrac * 0.8,
		LoopFrac:      spec.LoopFrac,
		LoopTripMax:   spec.LoopTripMax,
		Unpredictable: spec.Unpredictable * 0.7,
	}, nil, 0, rng)

	// ---- OS kernel code reaches the fetch stream two ways, as in real
	// systems. Syscalls sit at fixed call sites in application code — a
	// read() in a transaction body enters the kernel at the same program
	// point every execution — so kernel misses are *part of* the
	// recurring temporal streams (the paper's traces include all OS
	// fetches, Section 4.1); they are modeled as ordinary calls into
	// OS-region syscall entries, wired into the app callee pools below.
	// Asynchronous traps (timer/device interrupts, scheduler) strike at
	// arbitrary points, cutting streams; they are the executor's
	// TrapHandlers and are rare.
	osHelperBudget := osInstrs * 45 / 100
	osHelpers := addLayer(b, osr, "os.helper", osHelperBudget, avgOSInstrs, cfg.FuncSpec{
		HammockFrac:   spec.HammockFrac * 1.4,
		LoopFrac:      0.05,
		Unpredictable: spec.Unpredictable * 0.6,
	}, nil, 0, rng)
	syscallBudget := osInstrs * 35 / 100
	osEntries := addLayer(b, osr, "os.sys", syscallBudget, avgOSInstrs*2, cfg.FuncSpec{
		HammockFrac:   spec.HammockFrac,
		LoopFrac:      0.05,
		CallFrac:      0.20,
		Unpredictable: spec.Unpredictable * 0.6,
	}, osHelpers, 6, rng)

	// ---- Application: leaves, then mids calling leaves+lib+syscalls,
	// then drivers. Drivers are few (one per transaction type), so most
	// of the application budget goes to the mid layer that forms the bulk
	// of each transaction's code path.
	leafBudget := appInstrs * 25 / 100
	driverBudget := txnTypes * avgDriverInstrs
	midBudget := appInstrs - leafBudget - driverBudget
	if midBudget < appInstrs/4 {
		midBudget = appInstrs / 4
	}

	leaves := addLayer(b, app, "leaf", leafBudget, avgLeafInstrs, cfg.FuncSpec{
		HammockFrac:   spec.HammockFrac * 1.3,
		LoopFrac:      spec.LoopFrac * 0.6,
		LoopTripMax:   spec.LoopTripMax,
		Unpredictable: spec.Unpredictable,
	}, nil, 0, rng)

	midCallees := append(append([]cfg.FuncID{}, leaves...), libFuncs...)
	midCallees = append(midCallees, osEntries...)
	mids := addLayer(b, app, "mid", midBudget, avgMidInstrs, cfg.FuncSpec{
		HammockFrac:   spec.HammockFrac,
		LoopFrac:      spec.LoopFrac,
		LoopTripMax:   spec.LoopTripMax,
		CallFrac:      midCallFrac,
		Unpredictable: spec.Unpredictable,
		CalleeFanout:  spec.Fanout,
	}, midCallees, 14, rng)

	driverAvg := avgDriverInstrs
	drivers := make([]cfg.FuncID, 0, txnTypes)
	for i := 0; i < txnTypes; i++ {
		// Each driver sees its own subset of mid-level functions; subsets
		// overlap, modeling shared server infrastructure. Distinct subsets
		// give distinct per-transaction code paths (distinct temporal
		// streams); overlap creates streams with shared interior blocks.
		subset := sampleIDs(rng, mids, min(len(mids), 20+rng.Intn(16)))
		id := b.AddFunc(app, fmt.Sprintf("txn%d", i), cfg.FuncSpec{
			Instrs:        jitter(rng, driverAvg),
			HammockFrac:   spec.HammockFrac * 0.7,
			LoopFrac:      spec.LoopFrac * 0.5,
			LoopTripMax:   spec.LoopTripMax,
			CallFrac:      driverCallFrac,
			Callees:       subset,
			CalleeFanout:  spec.Fanout,
			Unpredictable: spec.Unpredictable * 0.8,
		})
		drivers = append(drivers, id)
	}

	// ---- Asynchronous trap handlers (scheduler, interrupt, cross-call).
	// The scheduler is serializing (Section 3.1).
	handlerBudget := osInstrs - osHelperBudget - syscallBudget
	handlerAvg := max(200, handlerBudget/3)
	handlers := make([]cfg.FuncID, 0, 3)
	for i, name := range []string{"os.sched", "os.intr", "os.xcall"} {
		id := b.AddFunc(osr, name, cfg.FuncSpec{
			Instrs:        jitter(rng, handlerAvg),
			HammockFrac:   spec.HammockFrac,
			LoopFrac:      0.05,
			CallFrac:      0.25,
			Callees:       sampleIDs(rng, osHelpers, min(len(osHelpers), 8)),
			CalleeFanout:  2,
			Unpredictable: spec.Unpredictable * 0.6,
			Serializing:   i == 0,
		})
		handlers = append(handlers, id)
	}

	return b.MustBuild(), drivers, handlers
}

// addLayer fills budget instructions with functions of roughly avg size,
// each drawing callees (when provided) from a random subset of the pool.
func addLayer(b *cfg.Builder, r cfg.Region, prefix string, budget, avg int, base cfg.FuncSpec, calleePool []cfg.FuncID, calleesPerFunc int, rng *xrand.Rand) []cfg.FuncID {
	var ids []cfg.FuncID
	spent := 0
	for i := 0; spent < budget; i++ {
		spec := base
		spec.Instrs = jitter(rng, avg)
		if len(calleePool) > 0 && calleesPerFunc > 0 {
			spec.Callees = sampleIDs(rng, calleePool, min(len(calleePool), calleesPerFunc))
		}
		id := b.AddFunc(r, fmt.Sprintf("%s%d", prefix, i), spec)
		ids = append(ids, id)
		spent += spec.Instrs
	}
	return ids
}

// jitter perturbs avg by ±35% for natural size variety.
func jitter(rng *xrand.Rand, avg int) int {
	lo := avg * 65 / 100
	hi := avg * 135 / 100
	if hi <= lo {
		return max(4, avg)
	}
	return rng.Range(lo, hi)
}

// sampleIDs picks n distinct elements from pool (order randomized).
func sampleIDs(rng *xrand.Rand, pool []cfg.FuncID, n int) []cfg.FuncID {
	if n >= len(pool) {
		out := make([]cfg.FuncID, len(pool))
		copy(out, pool)
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	perm := rng.Perm(len(pool))
	out := make([]cfg.FuncID, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
