// Package workload defines the six commercial server workload models of
// the paper's Table I — OLTP (DB2, Oracle), DSS (TPC-H Q2, Q17 on DB2),
// and Web (Apache, Zeus) — as parameterizations of the synthetic program
// model in internal/cfg.
//
// Each workload describes a code image (application, shared library, and
// OS regions with class-specific footprints and control-flow character)
// and a runtime shape (transaction mix, threading, trap rate). Build
// instantiates the image once and creates one executor per core, yielding
// the per-core instruction fetch streams consumed by the simulator and
// the offline analyses.
//
// The class distinctions that drive the paper's results are preserved:
// OLTP has the largest instruction working sets and the most transaction
// variety; Web is moderately sized with highly data-dependent request
// handling (Apache's re-convergent hammocks, Section 3.2); DSS runs one
// query plan whose operator loops dominate, leaving a small working set
// and little for instruction prefetching to do.
package workload

import (
	"fmt"
	"sync"

	"tifs/internal/cfg"
	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// Class is a workload family from Table I.
type Class string

// Workload classes.
const (
	OLTP Class = "OLTP"
	DSS  Class = "DSS"
	Web  Class = "Web"
)

// Scale selects how large an instance of the workload to build. Structure
// is identical across scales; only code footprint and transaction variety
// shrink, keeping tests fast while benches and experiments use realistic
// sizes.
type Scale int

// Scales.
const (
	// ScaleSmall is for unit tests: ~1/8 code footprint.
	ScaleSmall Scale = iota
	// ScaleMedium is the default for benchmarks and CLI runs: ~1/2
	// footprint.
	ScaleMedium
	// ScaleFull is the paper-sized configuration.
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale converts a name ("small", "medium", "full") to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("workload: unknown scale %q", s)
	}
}

// divisor returns the footprint divisor for the scale.
func (s Scale) divisor() int {
	switch s {
	case ScaleSmall:
		return 8
	case ScaleMedium:
		return 2
	default:
		return 1
	}
}

// DefaultEvents returns the recommended per-core trace length (in basic
// block events) for cycle-accounted simulations at this scale.
func (s Scale) DefaultEvents() uint64 {
	switch s {
	case ScaleSmall:
		return 200_000
	case ScaleMedium:
		return 1_000_000
	default:
		return 4_000_000
	}
}

// Spec is a workload definition: the Table I identity plus the knobs that
// shape its synthetic program and execution.
type Spec struct {
	// Name is the workload identifier ("OLTP-DB2", "Web-Apache", ...).
	Name string
	// Class is the workload family.
	Class Class
	// Description reproduces the Table I configuration text.
	Description string

	// AppKB, LibKB, OSKB are the code footprints (at ScaleFull) of the
	// application, shared-library, and OS regions, in kilobytes.
	AppKB, LibKB, OSKB int
	// TxnTypes is the number of distinct transaction/request/query driver
	// functions (TPC-C defines 5 transaction types; web serving has a
	// handful of hot request handlers).
	TxnTypes int
	// TxnSkew is the Zipf skew of the transaction mix.
	TxnSkew float64
	// HammockFrac, LoopFrac are structural densities passed to function
	// generation (DSS is loop-heavy; Web is hammock-heavy).
	HammockFrac, LoopFrac float64
	// LoopTripMax bounds inner-loop trip counts; DSS operator scans run
	// far longer than OLTP/Web transaction loops.
	LoopTripMax int
	// Unpredictable is the fraction of data-dependent (near 50/50)
	// hammock branches.
	Unpredictable float64
	// Fanout is the maximum indirect-call fanout at call sites.
	Fanout int
	// ThreadsPerCore is the number of software threads each core
	// multiplexes.
	ThreadsPerCore int
	// TrapMeanInstrs is the mean instruction distance between
	// asynchronous OS traps (timer/device interrupts); syscalls are
	// modeled as fixed call sites in application code instead.
	TrapMeanInstrs int
	// ContextSwitchProb is the chance a trap return switches threads.
	ContextSwitchProb float64
	// BackendCPI is the per-instruction execution-cycle adder modeling
	// data-side and dependency stalls in the timing model. It is
	// calibrated so the next-line baseline's front-end stall share
	// approximates the paper's reported 25-40% for OLTP and the small
	// share for DSS (see DESIGN.md §2).
	BackendCPI float64
}

// Suite returns the six workloads of Table I in presentation order.
func Suite() []Spec {
	return []Spec{
		{
			Name:        "OLTP-DB2",
			Class:       OLTP,
			Description: "IBM DB2 v8 ESE, 100 warehouses (10 GB), 64 clients, 2 GB buffer pool",
			AppKB:       1408, LibKB: 448, OSKB: 448,
			TxnTypes: 8, TxnSkew: 0.45,
			HammockFrac: 0.28, LoopFrac: 0.04, LoopTripMax: 8, Unpredictable: 0.30, Fanout: 4,
			ThreadsPerCore: 16, TrapMeanInstrs: 400_000, ContextSwitchProb: 0.60,
			BackendCPI: 0.42,
		},
		{
			Name:        "OLTP-Oracle",
			Class:       OLTP,
			Description: "Oracle 10g Enterprise Database Server, 100 warehouses (10 GB), 16 clients, 1.4 GB SGA",
			AppKB:       1664, LibKB: 512, OSKB: 448,
			TxnTypes: 6, TxnSkew: 0.40,
			HammockFrac: 0.26, LoopFrac: 0.04, LoopTripMax: 8, Unpredictable: 0.28, Fanout: 4,
			ThreadsPerCore: 8, TrapMeanInstrs: 500_000, ContextSwitchProb: 0.55,
			BackendCPI: 0.40,
		},
		{
			Name:        "DSS-Qry2",
			Class:       DSS,
			Description: "TPC-H Q2 on DB2 v8 ESE: join-dominated, 480 MB buffer pool",
			AppKB:       320, LibKB: 192, OSKB: 256,
			TxnTypes: 2, TxnSkew: 0.3,
			HammockFrac: 0.18, LoopFrac: 0.30, LoopTripMax: 48, Unpredictable: 0.15, Fanout: 2,
			ThreadsPerCore: 2, TrapMeanInstrs: 800_000, ContextSwitchProb: 0.25,
			BackendCPI: 0.30,
		},
		{
			Name:        "DSS-Qry17",
			Class:       DSS,
			Description: "TPC-H Q17 on DB2 v8 ESE: balanced scan-join, 480 MB buffer pool",
			AppKB:       224, LibKB: 160, OSKB: 256,
			TxnTypes: 2, TxnSkew: 0.3,
			HammockFrac: 0.15, LoopFrac: 0.36, LoopTripMax: 64, Unpredictable: 0.12, Fanout: 2,
			ThreadsPerCore: 2, TrapMeanInstrs: 800_000, ContextSwitchProb: 0.25,
			BackendCPI: 0.28,
		},
		{
			Name:        "Web-Apache",
			Class:       Web,
			Description: "Apache HTTP Server 2.0, 16K connections, FastCGI, worker threading model",
			AppKB:       1024, LibKB: 384, OSKB: 384,
			TxnTypes: 8, TxnSkew: 0.50,
			HammockFrac: 0.34, LoopFrac: 0.04, LoopTripMax: 8, Unpredictable: 0.40, Fanout: 6,
			ThreadsPerCore: 12, TrapMeanInstrs: 350_000, ContextSwitchProb: 0.60,
			BackendCPI: 0.36,
		},
		{
			Name:        "Web-Zeus",
			Class:       Web,
			Description: "Zeus Web Server v4.3, 16K connections, FastCGI",
			AppKB:       448, LibKB: 224, OSKB: 288,
			TxnTypes: 6, TxnSkew: 0.45,
			HammockFrac: 0.24, LoopFrac: 0.08, LoopTripMax: 14, Unpredictable: 0.22, Fanout: 3,
			ThreadsPerCore: 4, TrapMeanInstrs: 600_000, ContextSwitchProb: 0.40,
			BackendCPI: 0.34,
		},
	}
}

// ByName finds a workload spec by name.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the suite's workload names in order.
func Names() []string {
	suite := Suite()
	out := make([]string, len(suite))
	for i, s := range suite {
		out[i] = s.Name
	}
	return out
}

// Generated is an instantiated workload: one shared program image and one
// executor per core.
type Generated struct {
	// Spec is the workload definition this instance was built from.
	Spec Spec
	// Scale records the build scale.
	Scale Scale
	// Program is the shared code image (all cores run the same server
	// binary, libraries, and OS).
	Program *cfg.Program
	// Execs hold one executor per core, independently seeded.
	Execs []*cfg.Executor
	// Roots are the transaction driver functions (one per type).
	Roots []cfg.FuncID
	// Handlers are the asynchronous trap handler functions.
	Handlers []cfg.FuncID
}

// Sources returns the per-core event sources.
func (g *Generated) Sources() []isa.EventSource {
	out := make([]isa.EventSource, len(g.Execs))
	for i, x := range g.Execs {
		out[i] = x
	}
	return out
}

// Reset rewinds every executor to its initial seeded state, so the
// instance replays exactly the event streams a fresh Build would
// produce. Pooled simulation runs reuse one instance per (spec, scale,
// cores) instead of rebuilding executors each run.
func (g *Generated) Reset() {
	for _, x := range g.Execs {
		x.Reset()
	}
}

// Cores returns the number of cores the instance was built for.
func (g *Generated) Cores() int { return len(g.Execs) }

// builtProgram is one cached program image. Programs are immutable after
// construction (executors only read them), so one image is shared by
// every simulation of the same (spec, scale) — including simulations
// running concurrently on different goroutines.
type builtProgram struct {
	prog     *cfg.Program
	roots    []cfg.FuncID
	handlers []cfg.FuncID
}

var (
	progMu    sync.Mutex
	progCache = map[string]*builtProgram{}
)

// program returns the cached code image for (spec, scale), building it on
// first use. Program construction is deterministic, so caching cannot
// change any result; it only removes the dominant allocation cost of
// repeated Build calls across an experiment sweep.
func program(spec Spec, scale Scale) *builtProgram {
	key := fmt.Sprintf("%+v/%d", spec, scale)
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[key]; ok {
		return p
	}
	rng := xrand.NewFromString("workload/" + spec.Name + "/" + scale.String())
	prog, roots, handlers := buildProgram(spec, scale, rng)
	p := &builtProgram{prog: prog, roots: roots, handlers: handlers}
	progCache[key] = p
	return p
}

// Build instantiates the workload at the given scale for the given number
// of cores. Construction is deterministic for (spec.Name, scale, cores).
func Build(spec Spec, scale Scale, cores int) *Generated {
	if cores < 1 {
		panic("workload: need at least one core")
	}
	p := program(spec, scale)
	prog, roots, handlers := p.prog, p.roots, p.handlers

	g := &Generated{Spec: spec, Scale: scale, Program: prog, Roots: roots, Handlers: handlers}
	threads := spec.ThreadsPerCore
	if scale == ScaleSmall && threads > 4 {
		threads = 4
	}
	for c := 0; c < cores; c++ {
		x := cfg.NewExecutor(prog, cfg.ExecConfig{
			Roots:             roots,
			RootSkew:          spec.TxnSkew,
			TrapHandlers:      handlers,
			TrapMeanInstrs:    spec.TrapMeanInstrs,
			Threads:           threads,
			ContextSwitchProb: spec.ContextSwitchProb,
			Seed:              fmt.Sprintf("%s/%s/core%d", spec.Name, scale, c),
		})
		g.Execs = append(g.Execs, x)
	}
	return g
}

// AnalysisEvents returns the recommended per-core trace length for the
// offline (functional) analyses, which are cheap enough to afford longer
// traces; longer traces amortize first-occurrence (New) misses, as the
// paper's multi-billion-instruction traces do.
func (s Scale) AnalysisEvents() uint64 {
	switch s {
	case ScaleSmall:
		return 300_000
	case ScaleMedium:
		return 3_000_000
	default:
		return 8_000_000
	}
}
