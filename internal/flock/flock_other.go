//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package flock

import (
	"errors"
	"os"
)

const supported = false

// ErrUnsupported reports that this platform has no flock support.
var ErrUnsupported = errors.New("flock: not supported on this platform")

func tryExclusive(f *os.File) (bool, error) { return false, nil }

func exclusive(f *os.File) error { return ErrUnsupported }

func unlock(f *os.File) error { return nil }
