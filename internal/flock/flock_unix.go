//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package flock

import (
	"errors"
	"os"
	"syscall"
)

const supported = true

func tryExclusive(f *os.File) (bool, error) {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return false, nil
	}
	return false, err
}

func exclusive(f *os.File) error {
	// Retry on EINTR: a blocking flock parked on a contended lock can be
	// interrupted by signals the Go runtime uses internally.
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if !errors.Is(err, syscall.EINTR) {
			return err
		}
	}
}

func unlock(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
