// Package flock wraps advisory file locking (flock(2)) for the result
// store and the shard coordinator. Locks belong to the open file
// description, so two opens of the same path conflict even within one
// process — which is exactly what lets goroutine-simulated shard workers
// in tests exercise the same exclusion real multi-process sweeps rely on.
//
// On platforms without flock (Supported == false) the Try functions
// report every lock as unavailable, which degrades every store writer to
// its own segment file (safe, just less tidy) and disables compaction
// entirely — without flock there is no way to prove a segment's writer
// is gone, so Compact refuses to run rather than risk deleting a live
// writer's records.
package flock

import "os"

// Supported reports whether this platform has flock. Callers that need
// exclusion to be *provable* (compaction) should refuse to proceed when
// it is false, with an error that says so.
const Supported = supported

// TryExclusive attempts a non-blocking exclusive lock on f. It returns
// true if the lock was acquired, false if another open file description
// holds it (or the platform has no flock support).
func TryExclusive(f *os.File) (bool, error) { return tryExclusive(f) }

// Exclusive blocks until it holds the exclusive lock on f. On platforms
// without flock it returns an error.
func Exclusive(f *os.File) error { return exclusive(f) }

// Unlock releases a lock held on f. Closing f also releases it.
func Unlock(f *os.File) error { return unlock(f) }
