package store

import (
	"fmt"
	"os"
	"sync"
	"testing"
)

// TestSecondOpenerGetsSegment enforces the locking model: while one
// Store holds the primary log, a concurrent opener of the same directory
// must be diverted to its own segment file — never silently interleave
// appends into the primary.
func TestSecondOpenerGetsSegment(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Stats().Primary {
		t.Fatal("first opener did not become the primary writer")
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Primary {
		t.Fatal("second opener also claims the primary log")
	}
	if s1.WritePath() == s2.WritePath() {
		t.Fatalf("both stores write %s", s1.WritePath())
	}

	s1.PutResult("from-primary", res)
	s2.PutResult("from-segment", res)
	primarySize := fileSize(t, s1.WritePath())
	s1.Close()
	s2.Close()

	// The segment writer must not have grown the primary.
	if got := fileSize(t, s1.WritePath()); got != primarySize {
		t.Errorf("primary grew from %d to %d bytes after a segment write", primarySize, got)
	}
	// A fresh opener sees both records.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for _, key := range []string{"from-primary", "from-segment"} {
		if _, ok := s3.GetResult(key); !ok {
			t.Errorf("%s lost", key)
		}
	}
}

// TestConcurrentWritersNeverLoseRecords opens one store per goroutine
// against a shared directory — the shape of a sharded sweep — and checks
// under the race detector that every record survives, including keys
// written by several workers at once.
func TestConcurrentWritersNeverLoseRecords(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	const workers, perWorker = 4, 6

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for i := 0; i < perWorker; i++ {
				s.PutResult(fmt.Sprintf("w%d-k%d", w, i), res)
				s.PutResult("shared-key", res) // contended, identical content
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			if _, ok := s.GetResult(key); !ok {
				t.Errorf("record %s lost", key)
			}
		}
	}
	if _, ok := s.GetResult("shared-key"); !ok {
		t.Error("contended record lost")
	}
}

// TestEmptySegmentRemovedOnClose: an opener that never writes must not
// leave a segment file behind.
func TestEmptySegmentRemovedOnClose(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := s2.WritePath()
	s2.Close()
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Errorf("empty segment %s not removed on close", seg)
	}
}
