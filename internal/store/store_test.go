package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tifs/internal/core"
	"tifs/internal/sim"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// realResult simulates a TIFS-virtualized configuration so the
// round-trip exercises every Result field, including the TIFS stats and
// the IML traffic ledger entries.
func realResult(t testing.TB) sim.Result {
	t.Helper()
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload missing")
	}
	return sim.Run(spec, workload.ScaleSmall, sim.Config{
		EventsPerCore: 8_000,
		Mechanism:     sim.TIFS(core.VirtualizedConfig()),
	})
}

// TestResultCodecRoundTrip guards the explicit field walk: a Result
// field added without extending the codec makes the decoded copy differ.
func TestResultCodecRoundTrip(t *testing.T) {
	want := realResult(t)
	got, err := decodeResult(encodeResult(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the result:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	want := realResult(t)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutResult("job-key", want)
	s.PutMissTraces("trace-key", [][]trace.MissRecord{
		{{Block: 10, Seq: 1, Branches: 2, Sequential: false}, {Block: 11, Seq: 5, Branches: 0, Sequential: true}},
		{{Block: 99, Seq: 3, Branches: 7}},
	})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.GetResult("job-key")
	if !ok {
		t.Fatal("result missing after reopen")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reopened result differs:\nwant %+v\ngot  %+v", want, got)
	}
	recs, ok := s2.GetMissTraces("trace-key")
	if !ok {
		t.Fatal("traces missing after reopen")
	}
	if len(recs) != 2 || len(recs[0]) != 2 || recs[0][1].Block != 11 || !recs[0][1].Sequential || recs[1][0].Branches != 7 {
		t.Fatalf("trace round trip mangled records: %+v", recs)
	}
	if _, ok := s2.GetResult("other-key"); ok {
		t.Fatal("phantom hit for unknown key")
	}
	st := s2.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestTruncatedStoreFallsBack cuts the log mid-record: the valid prefix
// must survive, the damaged record must read as a miss, and the store
// must keep accepting appends.
func TestTruncatedStoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutResult("first", res)
	endOfFirst := fileSize(t, s.Path())
	s.PutResult("second", res)
	s.Close()

	// Chop the second record in half.
	data, err := os.ReadFile(filepath.Join(dir, fileName))
	if err != nil {
		t.Fatal(err)
	}
	cut := endOfFirst + (int64(len(data))-endOfFirst)/2
	if err := os.WriteFile(filepath.Join(dir, fileName), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetResult("first"); !ok {
		t.Error("valid prefix lost after truncation")
	}
	if _, ok := s2.GetResult("second"); ok {
		t.Error("truncated record served as a hit")
	}
	// The corrupt tail must have been dropped so appends stay readable.
	s2.PutResult("third", res)
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for _, key := range []string{"first", "third"} {
		if _, ok := s3.GetResult(key); !ok {
			t.Errorf("%s missing after post-truncation append", key)
		}
	}
}

// TestStaleVersionDiscarded: a store written under another format
// version must be wiped, not interpreted.
func TestStaleVersionDiscarded(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutResult("key", res)
	s.Close()

	path := filepath.Join(dir, fileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(magic)] = FormatVersion + 1 // stamp a future version
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetResult("key"); ok {
		t.Fatal("stale-version entry served as a hit")
	}
	if n := s2.Stats().Entries; n != 0 {
		t.Fatalf("stale store kept %d entries", n)
	}
	// The file must have been re-headed at the current version.
	head, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if head[len(magic)] != FormatVersion {
		t.Fatal("header not rewritten to the current version")
	}
}

// TestCorruptPayloadIsAMiss flips a payload bit: the CRC must reject the
// record (and everything after it) rather than serve damaged numbers.
func TestCorruptPayloadIsAMiss(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutResult("key", res)
	s.Close()

	path := filepath.Join(dir, fileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x40 // inside the payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.GetResult("key"); ok {
		t.Fatal("corrupt record served as a hit")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
