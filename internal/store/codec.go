package store

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"tifs/internal/core"
	"tifs/internal/cpu"
	"tifs/internal/sim"
	"tifs/internal/trace"
	"tifs/internal/uncore"
)

// Result payloads are a fixed field walk in uvarint encoding, the same
// convention internal/trace uses for its streams. The walk is explicit
// (no reflection) so the layout is stable; TestResultRoundTrip compares
// a real simulation result field-for-field and fails if a new Result
// field is added without extending this codec.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendCPUStats(dst []byte, s cpu.Stats) []byte {
	for _, v := range []uint64{
		s.Cycles, s.Instrs, s.Events,
		s.BlockFetches, s.L1Hits, s.NextLineHits, s.PrefetchHits, s.Misses,
		s.NextLineLate,
		s.FetchStallCycles, s.StallNextLine, s.StallPrefetch, s.StallMiss,
		s.BranchMispredicts, s.Branches, s.Serializations,
	} {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// encodeResult serializes r completely and losslessly (every field is an
// unsigned counter or a string; there is nothing to round).
func encodeResult(r sim.Result) []byte {
	dst := make([]byte, 0, 256)
	dst = appendString(dst, r.Workload)
	dst = appendString(dst, r.Mechanism)
	dst = binary.AppendUvarint(dst, r.Cycles)
	dst = binary.AppendUvarint(dst, r.TotalInstrs)
	dst = binary.AppendUvarint(dst, r.TotalEvents)
	dst = binary.AppendUvarint(dst, uint64(len(r.PerCore)))
	for _, s := range r.PerCore {
		dst = appendCPUStats(dst, s)
	}
	for _, v := range []uint64{
		r.Prefetch.Issued, r.Prefetch.HitsTimely, r.Prefetch.HitsLate,
		r.Prefetch.Discards, r.Prefetch.MetaReads, r.Prefetch.MetaWrites,
	} {
		dst = binary.AppendUvarint(dst, v)
	}
	if r.TIFS == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		for _, v := range []uint64{
			r.TIFS.StreamsAllocated, r.TIFS.IndexLookups, r.TIFS.IndexMisses,
			r.TIFS.IndexDrops, r.TIFS.Pauses, r.TIFS.Resumes,
			r.TIFS.LoggedMisses, r.TIFS.LoggedHits,
		} {
			dst = binary.AppendUvarint(dst, v)
		}
	}
	kinds := uncore.NumTrafficKinds()
	dst = binary.AppendUvarint(dst, uint64(kinds))
	for k := 0; k < kinds; k++ {
		dst = binary.AppendUvarint(dst, r.Traffic.Count(uncore.TrafficKind(k)))
	}
	dst = binary.AppendUvarint(dst, r.Uncore.L2Hits)
	dst = binary.AppendUvarint(dst, r.Uncore.L2Misses)
	dst = binary.AppendUvarint(dst, r.Uncore.BankWaitCycles)
	return dst
}

// cursor reads uvarints off a payload.
type cursor struct {
	b   []byte
	pos int
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("store: truncated payload at %d", c.pos)
	}
	c.pos += n
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.uvarint()
	if err != nil {
		return "", err
	}
	// Bound before converting: a huge varint must degrade to a decode
	// error (a cache miss), not wrap negative and panic slice bounds.
	if n > uint64(len(c.b)) || c.pos+int(n) > len(c.b) {
		return "", fmt.Errorf("store: truncated string at %d", c.pos)
	}
	s := string(c.b[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s, nil
}

func (c *cursor) byte() (byte, error) {
	if c.pos >= len(c.b) {
		return 0, fmt.Errorf("store: truncated payload at %d", c.pos)
	}
	b := c.b[c.pos]
	c.pos++
	return b, nil
}

func (c *cursor) cpuStats() (cpu.Stats, error) {
	var s cpu.Stats
	for _, p := range []*uint64{
		&s.Cycles, &s.Instrs, &s.Events,
		&s.BlockFetches, &s.L1Hits, &s.NextLineHits, &s.PrefetchHits, &s.Misses,
		&s.NextLineLate,
		&s.FetchStallCycles, &s.StallNextLine, &s.StallPrefetch, &s.StallMiss,
		&s.BranchMispredicts, &s.Branches, &s.Serializations,
	} {
		v, err := c.uvarint()
		if err != nil {
			return s, err
		}
		*p = v
	}
	return s, nil
}

// decodeResult inverts encodeResult. Errors surface as cache misses.
func decodeResult(payload []byte) (sim.Result, error) {
	c := &cursor{b: payload}
	var r sim.Result
	var err error
	if r.Workload, err = c.str(); err != nil {
		return r, err
	}
	if r.Mechanism, err = c.str(); err != nil {
		return r, err
	}
	for _, p := range []*uint64{&r.Cycles, &r.TotalInstrs, &r.TotalEvents} {
		if *p, err = c.uvarint(); err != nil {
			return r, err
		}
	}
	ncores, err := c.uvarint()
	if err != nil {
		return r, err
	}
	if ncores > 1<<16 {
		return r, fmt.Errorf("store: implausible core count %d", ncores)
	}
	r.PerCore = make([]cpu.Stats, ncores)
	for i := range r.PerCore {
		if r.PerCore[i], err = c.cpuStats(); err != nil {
			return r, err
		}
	}
	for _, p := range []*uint64{
		&r.Prefetch.Issued, &r.Prefetch.HitsTimely, &r.Prefetch.HitsLate,
		&r.Prefetch.Discards, &r.Prefetch.MetaReads, &r.Prefetch.MetaWrites,
	} {
		if *p, err = c.uvarint(); err != nil {
			return r, err
		}
	}
	hasTIFS, err := c.byte()
	if err != nil {
		return r, err
	}
	if hasTIFS != 0 {
		ts := &core.TIFSStats{}
		for _, p := range []*uint64{
			&ts.StreamsAllocated, &ts.IndexLookups, &ts.IndexMisses,
			&ts.IndexDrops, &ts.Pauses, &ts.Resumes,
			&ts.LoggedMisses, &ts.LoggedHits,
		} {
			if *p, err = c.uvarint(); err != nil {
				return r, err
			}
		}
		r.TIFS = ts
	}
	kinds, err := c.uvarint()
	if err != nil {
		return r, err
	}
	if kinds != uint64(uncore.NumTrafficKinds()) {
		// A ledger shape change without a version bump: refuse rather
		// than misattribute traffic.
		return r, fmt.Errorf("store: traffic kinds %d, want %d", kinds, uncore.NumTrafficKinds())
	}
	for k := uint64(0); k < kinds; k++ {
		v, err := c.uvarint()
		if err != nil {
			return r, err
		}
		r.Traffic.SetCount(uncore.TrafficKind(k), v)
	}
	for _, p := range []*uint64{&r.Uncore.L2Hits, &r.Uncore.L2Misses, &r.Uncore.BankWaitCycles} {
		if *p, err = c.uvarint(); err != nil {
			return r, err
		}
	}
	if c.pos != len(payload) {
		return r, fmt.Errorf("store: %d trailing bytes", len(payload)-c.pos)
	}
	return r, nil
}

// encodeMissTraces frames each core's records as one internal/trace miss
// stream (delta/varint, the codec the traces were born in).
func encodeMissTraces(recs [][]trace.MissRecord) ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(len(recs)))
	var buf bytes.Buffer
	for _, core := range recs {
		buf.Reset()
		mw, err := trace.NewMissWriter(&buf)
		if err != nil {
			return nil, err
		}
		for _, m := range core {
			if err := mw.Write(m); err != nil {
				return nil, err
			}
		}
		if err := mw.Flush(); err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(buf.Len()))
		dst = append(dst, buf.Bytes()...)
	}
	return dst, nil
}

// decodeMissTraces inverts encodeMissTraces.
func decodeMissTraces(payload []byte) ([][]trace.MissRecord, error) {
	c := &cursor{b: payload}
	ncores, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if ncores > 1<<16 {
		return nil, fmt.Errorf("store: implausible core count %d", ncores)
	}
	out := make([][]trace.MissRecord, ncores)
	for i := range out {
		n, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(payload)) || c.pos+int(n) > len(payload) {
			return nil, fmt.Errorf("store: truncated trace at %d", c.pos)
		}
		recs, err := trace.ReadAllMisses(bytes.NewReader(payload[c.pos : c.pos+int(n)]))
		if err != nil {
			return nil, err
		}
		out[i] = recs
		c.pos += int(n)
	}
	if c.pos != len(payload) {
		return nil, fmt.Errorf("store: %d trailing bytes", len(payload)-c.pos)
	}
	return out, nil
}
