package store

import (
	"encoding/binary"
	"fmt"

	"tifs/internal/sequitur"
)

// Grammar snapshot records: the per-core SEQUITUR grammars the analysis
// experiments derive from a workload's miss traces. Deriving a grammar
// is the last repeated analysis cost the result cache does not cover —
// the miss traces persist, but every process used to re-run SEQUITUR
// over them — so snapshots are content-addressed exactly like the
// traces they summarize: keyed by the miss-trace extraction key plus
// the analysis variant, under their own kind byte.
//
// The same defensive contract applies: any decode anomaly (truncation,
// implausible counts, a rule reference out of range) is a cache miss,
// and the caller re-derives the grammar from the traces. Corruption
// costs time, never numbers.

// kindGrammars is the record kind of per-core grammar snapshot sets.
const kindGrammars byte = 3

// KindGrammars is kindGrammars for blob-level callers.
const KindGrammars = kindGrammars

// GetGrammars returns the cached per-core grammar snapshots for an
// analysis key, if present and decodable.
func (s *Store) GetGrammars(key string) ([]*sequitur.Snapshot, bool) {
	payload, ok := s.get(kindGrammars, key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	snaps, err := decodeGrammars(payload)
	if err != nil {
		s.misses.Add(1)
		s.drop(kindGrammars, key)
		return nil, false
	}
	s.hits.Add(1)
	return snaps, true
}

// PutGrammars caches per-core grammar snapshots under an analysis key.
func (s *Store) PutGrammars(key string, snaps []*sequitur.Snapshot) {
	payload, err := encodeGrammars(snaps)
	if err != nil {
		return
	}
	s.put(kindGrammars, key, payload)
}

// HasGrammars is HasResult for grammar snapshot sets.
func (s *Store) HasGrammars(key string) bool {
	_, ok := s.get(kindGrammars, key)
	return ok
}

// EncodeGrammars serializes per-core grammar snapshots in the store's
// payload codec.
func EncodeGrammars(snaps []*sequitur.Snapshot) ([]byte, error) { return encodeGrammars(snaps) }

// DecodeGrammars inverts EncodeGrammars.
func DecodeGrammars(payload []byte) ([]*sequitur.Snapshot, error) { return decodeGrammars(payload) }

// encodeGrammars is the usual explicit uvarint field walk: core count,
// then per snapshot the rule count and per rule (symbol count, uses,
// expansion length, symbols). A symbol is a tag varint (1 = rule
// reference) followed by the rule index or terminal value.
func encodeGrammars(snaps []*sequitur.Snapshot) ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(len(snaps)))
	for _, snap := range snaps {
		if snap == nil {
			return nil, fmt.Errorf("store: nil grammar snapshot")
		}
		dst = binary.AppendUvarint(dst, uint64(len(snap.Rules)))
		for _, r := range snap.Rules {
			dst = binary.AppendUvarint(dst, uint64(len(r.Syms)))
			dst = binary.AppendUvarint(dst, uint64(r.Uses))
			dst = binary.AppendUvarint(dst, r.ExpLen)
			for _, sym := range r.Syms {
				if sym.IsRule {
					dst = append(dst, 1)
					dst = binary.AppendUvarint(dst, uint64(sym.Rule))
				} else {
					dst = append(dst, 0)
					dst = binary.AppendUvarint(dst, sym.Value)
				}
			}
		}
	}
	return dst, nil
}

// decodeGrammars inverts encodeGrammars, validating every rule
// reference against the snapshot's own rule count so a corrupt payload
// can never yield a snapshot that panics its consumers.
func decodeGrammars(payload []byte) ([]*sequitur.Snapshot, error) {
	c := &cursor{b: payload}
	ncores, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if ncores > 1<<16 {
		return nil, fmt.Errorf("store: implausible core count %d", ncores)
	}
	out := make([]*sequitur.Snapshot, ncores)
	for i := range out {
		nrules, err := c.uvarint()
		if err != nil {
			return nil, err
		}
		// Every rule takes at least three payload bytes; anything claiming
		// more rules than bytes is corrupt.
		if nrules > uint64(len(payload)) {
			return nil, fmt.Errorf("store: implausible rule count %d", nrules)
		}
		snap := &sequitur.Snapshot{Rules: make([]sequitur.RuleView, nrules)}
		for id := range snap.Rules {
			nsyms, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			if nsyms > uint64(len(payload)) {
				return nil, fmt.Errorf("store: implausible symbol count %d", nsyms)
			}
			uses, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			explen, err := c.uvarint()
			if err != nil {
				return nil, err
			}
			rv := sequitur.RuleView{ID: id, Uses: int(uses), ExpLen: explen,
				Syms: make([]sequitur.Sym, nsyms)}
			for s := range rv.Syms {
				tag, err := c.byte()
				if err != nil {
					return nil, err
				}
				v, err := c.uvarint()
				if err != nil {
					return nil, err
				}
				switch tag {
				case 0:
					rv.Syms[s] = sequitur.Sym{Value: v}
				case 1:
					if v >= nrules {
						return nil, fmt.Errorf("store: rule reference %d out of range (%d rules)", v, nrules)
					}
					rv.Syms[s] = sequitur.Sym{IsRule: true, Rule: int(v)}
				default:
					return nil, fmt.Errorf("store: bad symbol tag %d", tag)
				}
			}
			snap.Rules[id] = rv
		}
		out[i] = snap
	}
	if c.pos != len(payload) {
		return nil, fmt.Errorf("store: %d trailing bytes", len(payload)-c.pos)
	}
	return out, nil
}
