package store

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"tifs/internal/core"
	"tifs/internal/cpu"
	"tifs/internal/prefetch"
	"tifs/internal/sim"
	"tifs/internal/trace"
	"tifs/internal/uncore"
	"tifs/internal/vfs"
)

// syntheticResult builds a Result with every field populated without
// running a simulation, so fuzz seeds are cheap to construct.
func syntheticResult() sim.Result {
	r := sim.Result{
		Workload:    "Fuzz-Workload",
		Mechanism:   "tifs-fuzz",
		Cycles:      123_456,
		TotalInstrs: 78_900,
		TotalEvents: 99_999,
		PerCore: []cpu.Stats{
			{Cycles: 11, Instrs: 22, Events: 33, BlockFetches: 44, L1Hits: 55, Misses: 66},
			{Cycles: 77, Branches: 88, BranchMispredicts: 9, FetchStallCycles: 10},
		},
		Prefetch: prefetch.Stats{Issued: 5, HitsTimely: 4, HitsLate: 3, Discards: 2, MetaReads: 1, MetaWrites: 6},
		TIFS:     &core.TIFSStats{StreamsAllocated: 7, IndexLookups: 8, IndexMisses: 9, Pauses: 1, Resumes: 2, LoggedMisses: 3, LoggedHits: 4},
		Uncore:   uncore.Stats{L2Hits: 12, L2Misses: 34, BankWaitCycles: 56},
	}
	for k := 0; k < uncore.NumTrafficKinds(); k++ {
		r.Traffic.SetCount(uncore.TrafficKind(k), uint64(100+k))
	}
	return r
}

// tornLogImage builds a log image through the fault layer in the state
// a crash or full disk actually leaves behind: the second record's
// append stops half way AND the writer's cleanup truncate fails, so the
// torn bytes stay in the file. Real injected wreckage makes a richer
// fuzz seed than hand-truncated images.
func tornLogImage(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	ffs := vfs.NewFault(vfs.OS,
		// Write #1 is the header, #2 the first record; every append from
		// #3 on is torn. Truncate #1 initializes the fresh file at open;
		// the cleanup truncates after it are the ones that must fail.
		vfs.Rule{Op: vfs.OpWrite, Path: fileName, Nth: 3, Times: -1, Mode: vfs.ModeShortWrite},
		vfs.Rule{Op: vfs.OpTruncate, Path: fileName, Nth: 2, Times: -1},
	)
	s, err := OpenFS(dir, ffs)
	if err != nil {
		f.Fatal(err)
	}
	s.Logf = func(string, ...any) {}
	s.Retry.Sleep = func(time.Duration) {}
	s.PutResult("whole", syntheticResult())
	s.PutResult("torn", syntheticResult())
	s.Close()
	data, err := vfs.OS.ReadFile(filepath.Join(dir, fileName))
	if err != nil {
		f.Fatal(err)
	}
	if len(data) <= headerLen {
		f.Fatal("torn-write seed generation produced no record bytes")
	}
	return data
}

// FuzzStoreCodec throws arbitrary bytes at every store decoder. The
// decoders guard the degrade-to-miss contract: they may reject input,
// but must never panic, and anything they accept must survive a
// re-encode round trip unchanged.
func FuzzStoreCodec(f *testing.F) {
	res := syntheticResult()
	resPayload := encodeResult(res)
	tracePayload, err := encodeMissTraces([][]trace.MissRecord{
		{{Block: 10, Seq: 1, Branches: 2, Sequential: true}, {Block: 11, Seq: 9}},
		{},
		{{Block: 400, Seq: 77, Branches: 3}},
	})
	if err != nil {
		f.Fatal(err)
	}
	// Whole-file images: header + a framed record, plus damaged variants.
	file := appendRecord(header(), address(kindResult, "seed"), resPayload)
	f.Add(resPayload)
	f.Add(tracePayload)
	f.Add(file)
	f.Add(file[:len(file)/2]) // torn tail
	flipped := append([]byte{}, file...)
	flipped[len(flipped)-8] ^= 0x20 // corrupt payload/CRC
	f.Add(flipped)
	staled := append([]byte{}, file...)
	staled[len(magic)] = FormatVersion + 1 // stale version
	f.Add(staled)
	f.Add([]byte{})
	f.Add([]byte("TIFSTORE"))
	f.Add(tornLogImage(f)) // whole record + fault-injected torn append

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := decodeResult(data); err == nil {
			again, err := decodeResult(encodeResult(r))
			if err != nil {
				t.Fatalf("re-encode of accepted result rejected: %v", err)
			}
			if !reflect.DeepEqual(r, again) {
				t.Fatalf("result round trip diverged:\n%+v\n%+v", r, again)
			}
		}
		if recs, err := decodeMissTraces(data); err == nil {
			payload, err := encodeMissTraces(recs)
			if err != nil {
				t.Fatalf("re-encode of accepted traces failed: %v", err)
			}
			again, err := decodeMissTraces(payload)
			if err != nil || !reflect.DeepEqual(recs, again) {
				t.Fatalf("trace round trip diverged (err=%v)", err)
			}
		}
		recs, pos, ok := scanLog(data)
		if ok && (pos < headerLen || pos > len(data)) {
			t.Fatalf("scanLog valid prefix %d out of bounds [%d, %d]", pos, headerLen, len(data))
		}
		if !ok && len(recs) != 0 {
			t.Fatal("scanLog returned records from a rejected file")
		}
	})
}

// TestScanLogRoundTrip pins the file framing against the synthetic
// result without fuzzing: records written through appendRecord come back
// in order with identical payloads.
func TestScanLogRoundTrip(t *testing.T) {
	p1 := encodeResult(syntheticResult())
	p2 := []byte("second-payload")
	file := header()
	a1, a2 := address(kindResult, "k1"), address(kindMissTraces, "k2")
	file = appendRecord(file, a1, p1)
	file = appendRecord(file, a2, p2)

	recs, pos, ok := scanLog(file)
	if !ok || pos != len(file) || len(recs) != 2 {
		t.Fatalf("scan = (%d recs, pos %d, ok %v), want (2, %d, true)", len(recs), pos, ok, len(file))
	}
	if recs[0].key != a1 || recs[1].key != a2 {
		t.Error("record keys scrambled")
	}
	if !reflect.DeepEqual(recs[0].payload, p1) || !reflect.DeepEqual(recs[1].payload, p2) {
		t.Error("record payloads scrambled")
	}
}
