package store

import (
	"reflect"
	"testing"

	"tifs/internal/sequitur"
)

// testSnapshots builds a realistic per-core snapshot set by running
// SEQUITUR over synthetic recurring sequences.
func testSnapshots(t *testing.T) []*sequitur.Snapshot {
	t.Helper()
	out := make([]*sequitur.Snapshot, 4)
	for c := range out {
		var seq []uint64
		for rep := 0; rep < 6; rep++ {
			for i := 0; i < 8; i++ {
				seq = append(seq, uint64(c*1000+i))
			}
			seq = append(seq, uint64(rep*31+c)) // noise between repeats
		}
		out[c] = sequitur.Build(seq)
		if err := out[c].CheckInvariants(); err != nil {
			t.Fatalf("test grammar invalid: %v", err)
		}
	}
	return out
}

// TestGrammarCodecRoundTrip: encode/decode is lossless for real
// grammars, including through a store reopen.
func TestGrammarCodecRoundTrip(t *testing.T) {
	snaps := testSnapshots(t)
	payload, err := encodeGrammars(snaps)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeGrammars(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps, got) {
		t.Errorf("grammar codec round trip diverged:\nin  %+v\nout %+v", snaps, got)
	}

	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.PutGrammars("k", snaps)
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got2, ok := st2.GetGrammars("k")
	if !ok {
		t.Fatal("grammars missing after reopen")
	}
	if !reflect.DeepEqual(snaps, got2) {
		t.Error("grammars changed across store reopen")
	}
	if !st2.HasGrammars("k") || st2.HasGrammars("other") {
		t.Error("HasGrammars presence wrong")
	}
}

// TestGrammarDecodeRejectsCorruption: every truncation of a valid
// payload, plus targeted structural damage (a rule reference past the
// rule count, a bad symbol tag, trailing bytes), must decode to an
// error — never a panic, never a mangled snapshot.
func TestGrammarDecodeRejectsCorruption(t *testing.T) {
	snaps := testSnapshots(t)
	payload, err := encodeGrammars(snaps)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(payload); n++ {
		if _, err := decodeGrammars(payload[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	if _, err := decodeGrammars(append(payload[:len(payload):len(payload)], 0)); err == nil {
		t.Error("trailing byte decoded cleanly")
	}
	// Single-byte flips: must either error or yield a structurally valid
	// snapshot set (flips that only change counter values are
	// undetectable by structure; the store's CRC layer catches those).
	for i := range payload {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0x41
		snaps, err := decodeGrammars(mut)
		if err != nil {
			continue
		}
		for _, s := range snaps {
			for _, r := range s.Rules {
				for _, sym := range r.Syms {
					if sym.IsRule && (sym.Rule < 0 || sym.Rule >= len(s.Rules)) {
						t.Fatalf("flip at %d produced out-of-range rule reference", i)
					}
				}
			}
		}
	}
}

// TestGrammarStoreCorruptPayloadIsAMiss: a blob-level write of garbage
// under a grammar address reads back as a miss, not an error.
func TestGrammarStoreCorruptPayloadIsAMiss(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.PutBlob(Address(KindGrammars, "bad"), []byte{0xff, 0x02, 0x99})
	if _, ok := st.GetGrammars("bad"); ok {
		t.Error("corrupt grammar payload served as a hit")
	}
}
