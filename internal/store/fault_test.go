package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"tifs/internal/vfs"
)

// quiet silences a store's degrade warnings and its retry sleeps so
// fault tests run instantly and cleanly.
func quiet(s *Store) *Store {
	s.Logf = func(string, ...any) {}
	s.Retry.Sleep = func(time.Duration) {}
	return s
}

// TestFaultTransientAppendRetried: one EIO on the record append (the
// classic flaky-NFS fault) is absorbed by the retry layer — the store
// does not degrade and the record is durable.
func TestFaultTransientAppendRetried(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	// Write #1 on the primary is the header; #2 is the record append.
	ffs := vfs.NewFault(vfs.OS, vfs.Rule{Op: vfs.OpWrite, Path: fileName, Nth: 2})

	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	quiet(s)
	s.PutResult("k", res)
	if s.Stats().ReadOnly {
		t.Fatal("one transient append fault degraded the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.GetResult("k")
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("record not durable after a retried transient fault (ok=%v)", ok)
	}
}

// TestFaultENOSPCDegradesToMemory: a full disk is permanent — the store
// latches read-only with one warning, keeps serving this process from
// memory with correct values, and the next (healthy) run simply
// recomputes what never reached disk.
func TestFaultENOSPCDegradesToMemory(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: fileName, Nth: 2, Err: syscall.ENOSPC, Times: -1})

	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	s.Logf = func(format string, args ...any) { warnings = append(warnings, fmt.Sprintf(format, args...)) }
	s.Retry.Sleep = func(time.Duration) {}

	s.PutResult("k1", res)
	if !s.Stats().ReadOnly {
		t.Fatal("ENOSPC did not degrade the store")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "degrading to in-memory") {
		t.Fatalf("degrade warnings = %q, want exactly one", warnings)
	}
	// The run is unaffected: the entry serves from memory, and later
	// puts stay silent (no further writes attempted, no warning spam).
	if got, ok := s.GetResult("k1"); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("degraded store lost this process's own entry")
	}
	s.PutResult("k2", res)
	if len(warnings) != 1 {
		t.Fatalf("second put warned again: %q", warnings)
	}
	if got, ok := s.GetResult("k2"); !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("degraded store dropped an in-memory put")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The next process sees a clean (if empty-ish) store: the failed
	// records are misses to recompute, never corruption.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after degraded run: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.GetResult("k1"); ok {
		t.Fatal("a record the degraded store could not write is somehow present")
	}
	s2.PutResult("k1", res)
	if _, ok := s2.GetResult("k1"); !ok {
		t.Fatal("healthy reopen cannot write")
	}
}

// TestFaultShortWriteNeverInterleaves: a torn append retried at the same
// offset must leave a log whose valid prefix holds every record exactly
// once — positional writes make interleaved bytes structurally
// impossible.
func TestFaultShortWriteNeverInterleaves(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)
	// Writes on the primary: #1 header, #2 first record, #3 second
	// record's first (torn) attempt.
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: fileName, Nth: 3, Mode: vfs.ModeShortWrite})

	s, err := OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	quiet(s)
	s.PutResult("k1", res)
	s.PutResult("k2", res)
	if s.Stats().ReadOnly {
		t.Fatal("a retried short write degraded the store")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The log parses to its exact end — no torn garbage, no duplicate or
	// interleaved region — and both records decode byte-correct.
	data, err := vfs.OS.ReadFile(filepath.Join(dir, fileName))
	if err != nil {
		t.Fatal(err)
	}
	recs, pos, ok := scanLog(data)
	if !ok || pos != len(data) {
		t.Fatalf("log does not parse to its end: ok=%v pos=%d len=%d", ok, pos, len(data))
	}
	if len(recs) != 2 {
		t.Fatalf("log holds %d records, want 2", len(recs))
	}
	requireKeys(t, dir, []string{"k1", "k2"})
}

// TestFaultMatrixStoreLifecycle exhaustively injects a fault at every
// filesystem operation of the canonical store lifecycle — once as a
// single transient EIO, once as a hard crash — and checks the two
// invariants no fault may break: the directory always reopens cleanly
// on a healthy filesystem, and any record it serves is byte-identical
// to what was put. Records may be missing after a fault (that is the
// degrade-to-recompute contract); they may never be wrong.
func TestFaultMatrixStoreLifecycle(t *testing.T) {
	res := realResult(t)
	lifecycle := func(fsys vfs.FS, dir string) (completed bool) {
		s, err := OpenFS(dir, fsys)
		if err != nil {
			return false
		}
		quiet(s)
		s.PutResult("k1", res)
		s.PutResult("k2", res)
		degraded := s.Stats().ReadOnly
		closeErr := s.Close()
		return !degraded && closeErr == nil
	}

	// Capture the clean operation trace once.
	cleanDir := t.TempDir()
	clean := vfs.NewFault(vfs.OS)
	if !lifecycle(clean, cleanDir) {
		t.Fatal("clean lifecycle did not complete")
	}
	tr := clean.Trace()
	if len(tr) < 8 {
		t.Fatalf("implausibly short clean trace (%d ops): the matrix would prove nothing", len(tr))
	}

	for _, inj := range []struct {
		name string
		mode vfs.Mode
		err  error
	}{
		{"transient-eio", vfs.ModeError, syscall.EIO},
		{"crash", vfs.ModeCrash, vfs.ErrCrashed},
	} {
		t.Run(inj.name, func(t *testing.T) {
			for i, rec := range tr {
				rule := vfs.RuleForTraceIndex(tr, i, inj.mode, inj.err)
				// The replay runs in its own directory; match on the
				// dir-relative suffix so the rule still lands on the same
				// operation.
				rule.Path = strings.TrimPrefix(rule.Path, cleanDir)
				dir := t.TempDir()
				completed := lifecycle(vfs.NewFault(vfs.OS, rule), dir)

				// Invariant 1: a healthy filesystem always reopens the
				// directory, whatever the fault left behind.
				s, err := Open(dir)
				if err != nil {
					t.Fatalf("op %d (%v): reopen after fault failed: %v", i, rec, err)
				}
				// Invariant 2: anything served is byte-correct.
				for _, key := range []string{"k1", "k2"} {
					if got, ok := s.GetResult(key); ok && !reflect.DeepEqual(got, res) {
						t.Errorf("op %d (%v): %s decodes to a DIFFERENT result", i, rec, key)
					}
				}
				// Invariant 3: a lifecycle that reported full success must
				// have made both records durable.
				if completed {
					for _, key := range []string{"k1", "k2"} {
						if _, ok := s.GetResult(key); !ok {
							t.Errorf("op %d (%v): lifecycle reported success but %s is not durable", i, rec, key)
						}
					}
				}
				s.Close()
			}
		})
	}
}

// TestFaultCompactCrashBeforeRename: a compaction killed while building
// the scratch file leaves the store exactly as it was — every record
// readable, and a later compaction converges.
func TestFaultCompactCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	keys := fillSharded(t, dir, 3, 4)

	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: compactTmp, Mode: vfs.ModeCrash})
	if _, err := CompactFS(dir, ffs); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("compaction through a crashing FS returned %v, want ErrCrashed", err)
	}
	requireKeys(t, dir, keys)

	// Convergence: the next pass (healthy FS) folds everything.
	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != len(keys) {
		t.Errorf("converged compaction kept %d records, want %d", st.Live, len(keys))
	}
	if segs := segmentFiles(t, dir); len(segs) != 0 {
		t.Errorf("converged compaction left segments %v", segs)
	}
	requireKeys(t, dir, keys)
}

// TestFaultCompactCrashAfterRename: killed right after the new primary
// swings into place, the merged segments survive as harmless duplicates;
// nothing is lost and the next pass deletes them.
func TestFaultCompactCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	keys := fillSharded(t, dir, 3, 4)
	before := len(segmentFiles(t, dir))
	if before == 0 {
		t.Fatal("setup made no segments")
	}

	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpRename, Path: fileName, Mode: vfs.ModeCrashAfter})
	CompactFS(dir, ffs) // the "process" dies somewhere after the rename
	if !ffs.Crashed() {
		t.Fatal("crash-after-rename rule never fired")
	}
	// The rename landed, the segment deletes did not: duplicates remain,
	// records do not disappear.
	if after := len(segmentFiles(t, dir)); after != before {
		t.Fatalf("crash window deleted %d segments", before-after)
	}
	requireKeys(t, dir, keys)

	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != len(keys) {
		t.Errorf("converged compaction kept %d records, want %d", st.Live, len(keys))
	}
	if segs := segmentFiles(t, dir); len(segs) != 0 {
		t.Errorf("converged compaction left segments %v", segs)
	}
	requireKeys(t, dir, keys)
}

// TestFaultOpenOnCrashedFS: a store whose very open faces a dead
// filesystem reports a clean error, never a partial store.
func TestFaultOpenOnCrashedFS(t *testing.T) {
	ffs := vfs.NewFault(vfs.OS, vfs.Rule{Op: vfs.OpMkdir, Mode: vfs.ModeCrash})
	if _, err := OpenFS(t.TempDir(), ffs); !errors.Is(err, vfs.ErrCrashed) {
		t.Fatalf("open on a crashed FS returned %v, want ErrCrashed", err)
	}
}
