package store

import (
	"crypto/sha256"

	"tifs/internal/sequitur"
	"tifs/internal/sim"
	"tifs/internal/trace"
)

// Backend is the narrow interface the engine and the shard worker
// require of a result store: typed get/put/has by canonical job key.
// The on-disk Store is the local implementation; internal/remotestore
// provides an HTTP client implementation so sweeps can share a store
// across machines with no common filesystem.
//
// The contract every implementation must honor is the store's one-way
// defensiveness: a Get may miss for any reason (absent, corrupt,
// unreachable, degraded) — the caller then recomputes — but may never
// return bytes that differ from what a Put stored under that key. Put
// is fire-and-forget: persistence failures degrade (to memory, or to a
// queued write-back), they do not fail the simulation that produced
// the value.
type Backend interface {
	// GetResult returns the cached simulation result for an engine job
	// key, if present and decodable.
	GetResult(key string) (sim.Result, bool)
	// PutResult caches a simulation result under an engine job key.
	PutResult(key string, r sim.Result)
	// GetMissTraces returns the cached per-core miss traces for an
	// extraction key, if present and decodable.
	GetMissTraces(key string) ([][]trace.MissRecord, bool)
	// PutMissTraces caches per-core miss traces under an extraction key.
	PutMissTraces(key string, recs [][]trace.MissRecord)
	// GetGrammars returns the cached per-core SEQUITUR grammar snapshots
	// for an analysis key, if present and decodable.
	GetGrammars(key string) ([]*sequitur.Snapshot, bool)
	// PutGrammars caches per-core grammar snapshots under an analysis key.
	PutGrammars(key string, snaps []*sequitur.Snapshot)
	// HasResult reports presence without counting a hit or miss.
	HasResult(key string) bool
	// HasMissTraces is HasResult for trace extractions.
	HasMissTraces(key string) bool
	// HasGrammars is HasResult for grammar snapshot sets.
	HasGrammars(key string) bool
	// Close releases the backend's resources (locks, queued
	// write-backs); the backend is unusable afterwards.
	Close() error
}

var _ Backend = (*Store)(nil)

// Addr is a content address: the SHA-256 over (kind, canonical key).
// Blob-level APIs (the remote store protocol, Store.GetBlob/PutBlob)
// move payloads by Addr; the typed Backend methods derive it.
type Addr = [sha256.Size]byte

// Record kinds, exported for blob-level callers. The kind byte is part
// of the content address, so a result and a miss-trace extraction with
// the same key can never collide.
const (
	KindResult     = kindResult
	KindMissTraces = kindMissTraces
	// KindGrammars is declared alongside the codec in grammar.go.
)

// Address derives the content address of (kind, key) — the identity
// blobs travel under between store replicas.
func Address(kind byte, key string) Addr { return address(kind, key) }

// GetBlob returns the raw payload stored under a content address, if
// any. Blob payloads are the codec-encoded forms EncodeResult and
// EncodeMissTraces produce; callers decode (and thereby validate) them
// before use.
func (s *Store) GetBlob(addr Addr) ([]byte, bool) {
	s.mu.Lock()
	payload, ok := s.entries[addr]
	s.mu.Unlock()
	return payload, ok
}

// PutBlob stores a raw payload under a content address, appending it to
// the owned log exactly like a typed put. The payload is not validated:
// the address is the identity, and a payload that later fails to decode
// degrades to a cache miss at read time, never to wrong numbers.
func (s *Store) PutBlob(addr Addr, payload []byte) { s.putAddr(addr, payload) }

// EncodeResult serializes a simulation result in the store's payload
// codec (complete and lossless; see codec.go).
func EncodeResult(r sim.Result) []byte { return encodeResult(r) }

// DecodeResult inverts EncodeResult. Errors mean the payload is not a
// valid result encoding and must be treated as a cache miss.
func DecodeResult(payload []byte) (sim.Result, error) { return decodeResult(payload) }

// EncodeMissTraces serializes per-core miss traces in the store's
// payload codec.
func EncodeMissTraces(recs [][]trace.MissRecord) ([]byte, error) { return encodeMissTraces(recs) }

// DecodeMissTraces inverts EncodeMissTraces.
func DecodeMissTraces(payload []byte) ([][]trace.MissRecord, error) {
	return decodeMissTraces(payload)
}
