package store

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tifs/internal/flock"
	"tifs/internal/vfs"
)

// CompactStats reports what a compaction pass did.
type CompactStats struct {
	// Live is how many records the compacted primary holds.
	Live int
	// SegmentsMerged counts segment files folded into the primary and
	// deleted; SegmentsSkipped counts segments left alone because a live
	// writer holds their lock.
	SegmentsMerged, SegmentsSkipped int
	// StaleDropped counts files (or the primary's content) written under
	// another FormatVersion whose bytes were reclaimed.
	StaleDropped int
	// BytesBefore and BytesAfter measure the store directory's log files
	// before and after the pass.
	BytesBefore, BytesAfter int64
}

// String renders a one-line summary.
func (c CompactStats) String() string {
	return fmt.Sprintf("store gc: live=%d merged=%d skipped=%d stale=%d bytes %d -> %d",
		c.Live, c.SegmentsMerged, c.SegmentsSkipped, c.StaleDropped,
		c.BytesBefore, c.BytesAfter)
}

// Compact folds every live record in dir — the primary log plus all
// quiescent segments — into a freshly written primary, then deletes the
// merged segments, stale-version files, and leftover temporaries.
// Reclaimed space comes from shadowed duplicate records, torn tails, and
// files written under older FormatVersions.
//
// Safety: the new primary is built in a scratch file and atomically
// renamed into place, so a crash at any point leaves a store that opens
// cleanly — at worst with the duplicates still present (crash before the
// segment deletes) or with the old layout (crash before the rename).
// Compact refuses to run while another writer holds the primary lock,
// and skips (never deletes) segments whose writers are still alive.
func Compact(dir string) (CompactStats, error) { return CompactFS(dir, vfs.OS) }

// CompactFS is Compact on an explicit filesystem — the fault seam that
// lets tests kill a compaction at any exact operation and prove the
// store reopens without record loss.
func CompactFS(dir string, fsys vfs.FS) (CompactStats, error) {
	var st CompactStats
	if !flock.Supported {
		// Without flock there is no way to prove a segment's writer is
		// gone; deleting one under a live writer would lose its records.
		return st, fmt.Errorf("store gc: this platform has no flock support, so writer liveness cannot be verified; compaction is unavailable")
	}
	primaryPath := filepath.Join(dir, fileName)
	pf, err := fsys.OpenFile(primaryPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return st, fmt.Errorf("store gc: %w", err)
	}
	defer pf.Close()
	locked, err := pf.TryLock()
	if err != nil {
		return st, fmt.Errorf("store gc: lock %s: %w", primaryPath, err)
	}
	if !locked {
		return st, fmt.Errorf("store gc: %s has a live writer; retry after it closes", primaryPath)
	}

	// A leftover scratch file from a killed compaction is garbage by
	// definition (the rename never happened); clear it first.
	tmpPath := filepath.Join(dir, compactTmp)
	fsys.Remove(tmpPath)

	st.BytesBefore += fileSizeOf(fsys, primaryPath)

	// Collect every live record: primary first, then segments in name
	// order, later records shadowing earlier ones (same rule as Open).
	entries := map[[sha256.Size]byte][]byte{}
	var order [][sha256.Size]byte // first-seen order, for a deterministic file
	merge := func(data []byte) (ok bool) {
		recs, _, ok := scanLog(data)
		if !ok {
			return false
		}
		for _, r := range recs {
			if _, seen := entries[r.key]; !seen {
				order = append(order, r.key)
			}
			entries[r.key] = r.payload
		}
		return true
	}

	primaryData, err := fsys.ReadFile(primaryPath)
	if err != nil {
		return st, fmt.Errorf("store gc: %w", err)
	}
	if len(primaryData) > 0 && !merge(primaryData) {
		st.StaleDropped++ // foreign or stale primary content: rewritten below
	}

	segPaths, err := fsys.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return st, fmt.Errorf("store gc: %w", err)
	}
	sort.Strings(segPaths)
	// toDelete pairs each merged path with the locked fd whose content
	// was folded in, so the delete below can prove it is unlinking that
	// exact file and not a namesake.
	type mergedSeg struct {
		path string
		f    vfs.File
	}
	var toDelete []mergedSeg
	for _, p := range segPaths {
		st.BytesBefore += fileSizeOf(fsys, p)
		sf, err := fsys.OpenFile(p, os.O_RDWR, 0o644)
		if err != nil {
			continue // vanished or unreadable: nothing to merge
		}
		segLocked, err := sf.TryLock()
		if err != nil || !segLocked {
			// A live writer owns this segment (or the platform cannot
			// tell): leave it for a later pass.
			sf.Close()
			st.SegmentsSkipped++
			continue
		}
		// Read through the locked fd, not the path: the name could have
		// been removed (empty-segment cleanup) and recreated by a new
		// writer since the glob.
		data, err := readAll(sf)
		if err != nil {
			sf.Close()
			continue
		}
		if merge(data) {
			st.SegmentsMerged++
		} else {
			st.StaleDropped++
		}
		// Keep the fd (and its lock) open until after the delete below.
		defer sf.Close()
		toDelete = append(toDelete, mergedSeg{path: p, f: sf})
	}

	// Build the replacement primary and swing it into place.
	out := header()
	for _, key := range order {
		out = appendRecord(out, key, entries[key])
	}
	st.Live = len(order)
	if err := AtomicWriteFileFS(fsys, primaryPath, out); err != nil {
		return st, fmt.Errorf("store gc: %w", err)
	}

	// Only now that the records are durably in the primary may the
	// segments go. A crash between rename and these deletes leaves
	// harmless duplicates for the next pass. Each delete first proves the
	// name still refers to the inode we merged: if the original writer's
	// empty-segment cleanup removed the name and a new writer reclaimed
	// it, unlinking by name would destroy the newcomer's live records.
	for _, seg := range toDelete {
		merged, err := seg.f.Stat()
		if err != nil {
			continue
		}
		onDisk, err := fsys.Stat(seg.path)
		if err != nil || !os.SameFile(merged, onDisk) {
			continue // the name was reused; its new content was not merged
		}
		fsys.Remove(seg.path)
	}
	fsys.SyncDir(dir)
	st.BytesAfter = fileSizeOf(fsys, primaryPath)
	for _, p := range segPaths {
		if fi, err := fsys.Stat(p); err == nil {
			st.BytesAfter += fi.Size()
		}
	}
	return st, nil
}

// readAll reads a file's full content through an already-open fd.
func readAll(f vfs.File) ([]byte, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fi.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil && n != len(buf) {
		return nil, err
	}
	return buf[:n], nil
}

func fileSizeOf(fsys vfs.FS, path string) int64 {
	fi, err := fsys.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
