// Package store is a persistent, content-addressed cache of simulation
// outputs. The experiment engine memoizes within a process; the store
// extends that memo across processes, so repeated CLI invocations and
// resumed full-scale sweeps skip every grid point they have already
// simulated.
//
// Entries are addressed by the SHA-256 of a canonical description of the
// work — for simulation results the engine job key, which spells out the
// complete (workload spec, scale, mechanism, simulator config) identity;
// for miss traces the extraction key. The on-disk layout is a single
// append-only log: a magic+version header followed by self-delimiting
// records (key hash, varint-length payload, CRC), in the varint codec
// style of internal/trace. Appending never rewrites earlier records, so
// interrupted runs keep everything they finished.
//
// The store is defensive in exactly one direction: any mismatch —
// truncated tail, bad CRC, undecodable payload, stale format version —
// degrades to a cache miss and the caller re-simulates. A bumped
// FormatVersion discards the whole file on open. Results can be stale
// only if the simulator's semantics change without a version bump; bump
// FormatVersion in the same change that alters any simulated number.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"tifs/internal/sim"
	"tifs/internal/trace"
)

// FormatVersion identifies the store layout AND the simulator semantics
// the cached numbers were produced under. Bump it whenever either
// changes; stores written under other versions are discarded on open.
const FormatVersion = 1

// fileName is the log file inside the cache directory.
const fileName = "results.tifs"

var magic = []byte("TIFSTORE")

// Record kinds (part of the content address).
const (
	kindResult     byte = 1
	kindMissTraces byte = 2
)

// Stats reports store activity for telemetry.
type Stats struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses uint64
	// Puts counts records appended this session.
	Puts uint64
	// Entries is the number of records currently addressable.
	Entries int
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("store: hits=%d misses=%d puts=%d entries=%d",
		s.Hits, s.Misses, s.Puts, s.Entries)
}

// Store is a persistent result cache. It is safe for concurrent use
// within one process; concurrent writers from separate processes are not
// coordinated (last append wins, readers see a valid prefix).
type Store struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries map[[sha256.Size]byte][]byte
	// writeFailed latches after a failed or short append. Later appends
	// would land after the torn bytes and be discarded wholesale by the
	// next load's truncation, so once a write fails the log is frozen:
	// entries keep serving this process from memory and the next process
	// re-simulates only what never reached disk.
	writeFailed bool

	hits, misses, puts atomic.Uint64
}

// Open opens (creating if needed) the store in dir. A file written by a
// different FormatVersion, or with a corrupt tail, is truncated back to
// its valid prefix — stale or damaged state can only cause cache misses,
// never wrong results.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, fileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, entries: map[[sha256.Size]byte][]byte{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Path returns the log file location.
func (s *Store) Path() string { return s.path }

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.entries)
	s.mu.Unlock()
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Entries: n,
	}
}

// Close flushes and closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// load reads the log, keeps its valid prefix in memory, and truncates
// anything unreadable beyond it.
func (s *Store) load() error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	header := append(append([]byte{}, magic...), FormatVersion)
	if len(data) < len(header) || string(data[:len(magic)]) != string(magic) || data[len(magic)] != FormatVersion {
		// Empty, foreign, or stale-version file: start fresh. Cached
		// numbers from another format version must not be served.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.f.WriteAt(header, 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return s.seekEnd(int64(len(header)))
	}
	// Scan records; stop at the first corrupt or truncated one.
	pos := len(header)
	for pos < len(data) {
		next, key, payload, ok := parseRecord(data, pos)
		if !ok {
			break
		}
		s.entries[key] = payload
		pos = next
	}
	if pos < len(data) {
		if err := s.f.Truncate(int64(pos)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return s.seekEnd(int64(pos))
}

func (s *Store) seekEnd(off int64) error {
	if _, err := s.f.Seek(off, 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// parseRecord decodes the record at data[pos:]: 32-byte key hash, varint
// payload length, payload, 4-byte little-endian CRC-32 (IEEE) of the
// payload. ok is false on truncation or checksum mismatch.
func parseRecord(data []byte, pos int) (next int, key [sha256.Size]byte, payload []byte, ok bool) {
	if pos+sha256.Size > len(data) {
		return 0, key, nil, false
	}
	copy(key[:], data[pos:pos+sha256.Size])
	pos += sha256.Size
	plen, n := binary.Uvarint(data[pos:])
	if n <= 0 || plen > uint64(len(data)) {
		return 0, key, nil, false
	}
	pos += n
	if pos+int(plen)+4 > len(data) {
		return 0, key, nil, false
	}
	payload = data[pos : pos+int(plen)]
	pos += int(plen)
	if binary.LittleEndian.Uint32(data[pos:pos+4]) != crc32.ChecksumIEEE(payload) {
		return 0, key, nil, false
	}
	return pos + 4, key, payload, true
}

// address derives the content address of (kind, key).
func address(kind byte, key string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{kind})
	h.Write([]byte(key))
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// get returns the payload stored under (kind, key). Hit/miss counting
// happens in the typed getters, after the payload decodes.
func (s *Store) get(kind byte, key string) ([]byte, bool) {
	addr := address(kind, key)
	s.mu.Lock()
	payload, ok := s.entries[addr]
	s.mu.Unlock()
	return payload, ok
}

// drop forgets an entry whose payload would not decode, so the caller's
// re-simulated replacement can be put (later records shadow earlier
// ones with the same address on the next load).
func (s *Store) drop(kind byte, key string) {
	addr := address(kind, key)
	s.mu.Lock()
	delete(s.entries, addr)
	s.mu.Unlock()
}

// put appends a record and indexes it. Write errors (disk full,
// read-only media) disable nothing: the entry still lands in memory and
// the next process simply re-simulates.
func (s *Store) put(kind byte, key string, payload []byte) {
	addr := address(kind, key)
	rec := make([]byte, 0, sha256.Size+binary.MaxVarintLen64+len(payload)+4)
	rec = append(rec, addr[:]...)
	rec = binary.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[addr]; exists {
		return
	}
	s.entries[addr] = payload
	s.puts.Add(1)
	if s.writeFailed {
		return
	}
	if n, err := s.f.Write(rec); err != nil || n != len(rec) {
		s.writeFailed = true
	}
}

// GetResult returns the cached simulation result for the engine job key,
// if present and decodable.
func (s *Store) GetResult(key string) (sim.Result, bool) {
	payload, ok := s.get(kindResult, key)
	if !ok {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	res, err := decodeResult(payload)
	if err != nil {
		s.misses.Add(1)
		s.drop(kindResult, key)
		return sim.Result{}, false
	}
	s.hits.Add(1)
	return res, true
}

// PutResult caches a simulation result under the engine job key. The
// result is deep-encoded; the caller's slices are not retained.
func (s *Store) PutResult(key string, r sim.Result) {
	s.put(kindResult, key, encodeResult(r))
}

// GetMissTraces returns the cached per-core filtered miss traces for an
// extraction key, if present and decodable.
func (s *Store) GetMissTraces(key string) ([][]trace.MissRecord, bool) {
	payload, ok := s.get(kindMissTraces, key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	recs, err := decodeMissTraces(payload)
	if err != nil {
		s.misses.Add(1)
		s.drop(kindMissTraces, key)
		return nil, false
	}
	s.hits.Add(1)
	return recs, true
}

// PutMissTraces caches per-core miss traces under an extraction key.
func (s *Store) PutMissTraces(key string, recs [][]trace.MissRecord) {
	payload, err := encodeMissTraces(recs)
	if err != nil {
		return
	}
	s.put(kindMissTraces, key, payload)
}
