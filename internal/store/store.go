// Package store is a persistent, content-addressed cache of simulation
// outputs. The experiment engine memoizes within a process; the store
// extends that memo across processes — and, through a shared filesystem,
// across machines — so repeated CLI invocations and sharded full-scale
// sweeps skip every grid point anyone has already simulated.
//
// Entries are addressed by the SHA-256 of a canonical description of the
// work — for simulation results the engine job key, which spells out the
// complete (workload spec, scale, mechanism, simulator config) identity;
// for miss traces the extraction key. The on-disk layout is a directory
// of append-only log files sharing one format: a magic+version header
// followed by self-delimiting records (key hash, varint-length payload,
// CRC), in the varint codec style of internal/trace. Appending never
// rewrites earlier records, so interrupted runs keep everything they
// finished.
//
// # Locking model
//
// Every log file has at most one writer, enforced with flock(2):
//
//   - The first opener of a directory takes the exclusive lock on the
//     primary log (results.tifs) and appends there — the single-process
//     fast path.
//   - Any concurrent opener (another process on a shared filesystem, or
//     another Store in this process) finds the primary locked and claims
//     a fresh per-writer segment (seg-NNNNN.tifs, created O_EXCL) for its
//     own appends instead. Interleaved appends to a shared file can never
//     happen.
//   - Readers need no lock: they load the valid prefix of the primary and
//     of every segment present at Open. Records are immutable once
//     written, so a concurrently-growing file simply yields a shorter
//     valid prefix.
//
// Segments accumulate records from sharded or crashed runs until
// Compact folds every live record back into the primary and deletes
// them; see compact.go.
//
// # Failure model
//
// All I/O goes through internal/vfs, so every error path here is
// reachable deterministically in tests. The store is defensive in
// exactly one direction: no fault may ever produce wrong numbers.
//
//   - Read-side damage — truncated tail, bad CRC, undecodable payload,
//     stale format version — degrades to a cache miss and the caller
//     re-simulates. A bumped FormatVersion discards stale files on open.
//   - Write-side faults are classified by internal/retry: transient ones
//     (EIO on a flaky NFS mount, EINTR, a torn short write) are retried
//     at the same offset under capped backoff; a permanent one (ENOSPC,
//     EROFS) degrades the store to read-only, in-memory operation with a
//     logged warning — the run completes correctly, this process keeps
//     its memo, and only persistence is lost.
//
// Results can be stale only if the simulator's semantics change without
// a version bump; bump FormatVersion in the same change that alters any
// simulated number.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"tifs/internal/retry"
	"tifs/internal/sim"
	"tifs/internal/trace"
	"tifs/internal/vfs"
)

// FormatVersion identifies the store layout AND the simulator semantics
// the cached numbers were produced under. Bump it whenever either
// changes; stores written under other versions are discarded on open.
const FormatVersion = 1

// fileName is the primary log file inside the cache directory.
const fileName = "results.tifs"

// segPattern matches per-writer segment logs. Segment numbering is
// claimed with O_EXCL, so every concurrent writer gets its own file.
const segPattern = "seg-*.tifs"

// compactTmp is the scratch file compaction builds before atomically
// renaming it over the primary. Open ignores it (it matches neither the
// primary name nor segPattern), so a crash mid-compaction leaves the
// store fully intact.
const compactTmp = "results.tifs.tmp"

// magicStr is the single source of the file magic; magic and headerLen
// derive from it so they can never drift apart.
const magicStr = "TIFSTORE"

var magic = []byte(magicStr)

// headerLen is len(magic) plus the version byte.
const headerLen = len(magicStr) + 1

// Record kinds (part of the content address).
const (
	kindResult     byte = 1
	kindMissTraces byte = 2
)

// Stats reports store activity for telemetry.
type Stats struct {
	// Hits and Misses count lookups by outcome.
	Hits, Misses uint64
	// Puts counts records appended this session.
	Puts uint64
	// Entries is the number of records currently addressable.
	Entries int
	// Segments is how many per-writer segment files were present at
	// Open (not counting the primary).
	Segments int
	// Primary reports whether this Store holds the primary log's write
	// lock; false means appends go to an owned segment file.
	Primary bool
	// ReadOnly reports that a permanent write failure (disk full,
	// read-only media) degraded the store to in-memory operation:
	// lookups and this process's memo still work, but nothing more
	// persists and the next run recomputes whatever never reached disk.
	ReadOnly bool
}

// String renders a one-line summary.
func (s Stats) String() string {
	out := fmt.Sprintf("store: hits=%d misses=%d puts=%d entries=%d",
		s.Hits, s.Misses, s.Puts, s.Entries)
	if !s.Primary {
		out += fmt.Sprintf(" (segment writer, %d segments)", s.Segments)
	}
	if s.ReadOnly {
		out += " (degraded: in-memory only)"
	}
	return out
}

// Store is a persistent result cache. It is safe for concurrent use
// within one process, and any number of Stores — in this process or
// others — may share one directory: each writes its own flock-guarded
// log file and reads everything present at Open.
type Store struct {
	fsys vfs.FS
	// Retry is the backoff policy for transient append failures. Set
	// it before the first Put; the default retries ~4 times over tens
	// of milliseconds.
	Retry retry.Policy
	// Logf receives degradation warnings (default: standard error).
	// Set it before concurrent use begins.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	f         vfs.File // owned write log (primary or segment)
	path      string   // primary log path
	writePath string   // path of f
	primary   bool     // f is the primary log
	segments  int      // segment files seen at Open
	off       int64    // end of the valid, durable prefix of f
	entries   map[[sha256.Size]byte][]byte
	// readOnly latches after a permanent (or retry-exhausted) append
	// failure: entries keep serving this process from memory, nothing
	// further is written, and the next process re-simulates only what
	// never reached disk. The valid prefix of the log stays intact —
	// appends are positional (WriteAt at off), so a failed append can
	// never tear bytes into earlier records.
	readOnly bool
	closed   bool

	hits, misses, puts atomic.Uint64
}

// Open opens (creating if needed) the store in dir on the real
// filesystem. See OpenFS.
func Open(dir string) (*Store, error) { return OpenFS(dir, vfs.OS) }

// OpenFS opens the store in dir on an explicit filesystem — the fault
// seam for tests. A file written by a different FormatVersion, or with
// a corrupt tail, contributes nothing — stale or damaged state can only
// cause cache misses, never wrong results. The first opener becomes the
// primary writer; concurrent openers append to private segment files
// (see the package comment).
func OpenFS(dir string, fsys vfs.FS) (*Store, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, fileName)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		fsys:    fsys,
		Logf:    func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		path:    path,
		entries: map[[sha256.Size]byte][]byte{},
	}
	locked, err := f.TryLock()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: lock %s: %w", path, err)
	}
	if locked {
		// Primary writer: repair the log in place (truncate a corrupt
		// tail, re-head a stale or foreign file) and append to it.
		s.f, s.writePath, s.primary = f, path, true
		if err := s.loadPrimary(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		// Someone else is writing the primary. Read its valid prefix and
		// claim a private segment for our own appends. Never truncate or
		// re-head a file another writer owns.
		data, err := s.readFileRetry(path)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if recs, _, ok := scanLog(data); ok {
			for _, r := range recs {
				s.entries[r.key] = r.payload
			}
		}
		if err := s.claimSegment(dir); err != nil {
			return nil, err
		}
	}
	if err := s.loadSegments(dir); err != nil {
		s.f.Close()
		return nil, err
	}
	return s, nil
}

// readFileRetry reads a whole file, riding out transient faults.
func (s *Store) readFileRetry(path string) (data []byte, err error) {
	err = s.Retry.Do(func() error {
		data, err = s.fsys.ReadFile(path)
		return err
	})
	return data, err
}

// Path returns the primary log file location.
func (s *Store) Path() string { return s.path }

// WritePath returns the log file this Store appends to — the primary
// when this Store holds its lock, otherwise an owned segment.
func (s *Store) WritePath() string { return s.writePath }

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.entries)
	ro := s.readOnly
	s.mu.Unlock()
	return Stats{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Puts:     s.puts.Load(),
		Entries:  n,
		Segments: s.segments,
		Primary:  s.primary,
		ReadOnly: ro,
	}
}

// Close flushes and closes the write log, releasing its lock. A segment
// that never received a record is removed so abandoned openers leave no
// litter behind; the unlink happens while the flock is still held, so it
// can only ever hit our own file — never a namesake claimed by a new
// writer after the lock was released.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	removeEmpty := !s.primary && !s.readOnly
	if removeEmpty {
		if fi, err := s.f.Stat(); err != nil || fi.Size() > int64(headerLen) {
			removeEmpty = false
		}
	}
	if removeEmpty {
		s.fsys.Remove(s.writePath)
	}
	return s.f.Close()
}

// loadPrimary reads the primary log (whose lock we hold), keeps its
// valid prefix in memory, and truncates anything unreadable beyond it.
func (s *Store) loadPrimary() error {
	data, err := s.readFileRetry(s.path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	recs, pos, ok := scanLog(data)
	if !ok {
		// Empty, foreign, or stale-version file: start fresh. Cached
		// numbers from another format version must not be served.
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := s.f.WriteAt(header(), 0); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.off = int64(headerLen)
		return nil
	}
	for _, r := range recs {
		s.entries[r.key] = r.payload
	}
	if pos < len(data) {
		if err := s.f.Truncate(int64(pos)); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	s.off = int64(pos)
	return nil
}

// claimSegment creates a fresh per-writer segment log. O_EXCL makes the
// claim atomic even on a shared filesystem; the flock is uncontended
// (nobody else can own a name they failed to create) but taken anyway so
// compaction can tell live segments from abandoned ones.
func (s *Store) claimSegment(dir string) error {
	for k := 1; k < 1<<20; k++ {
		p := filepath.Join(dir, fmt.Sprintf("seg-%05d.tifs", k))
		f, err := s.fsys.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if errors.Is(err, fs.ErrExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := f.TryLock(); err != nil {
			f.Close()
			return fmt.Errorf("store: lock %s: %w", p, err)
		}
		if _, err := f.WriteAt(header(), 0); err != nil {
			f.Close()
			s.fsys.Remove(p)
			return fmt.Errorf("store: %w", err)
		}
		s.f, s.writePath, s.primary = f, p, false
		s.off = int64(headerLen)
		return nil
	}
	return fmt.Errorf("store: no free segment slots in %s", dir)
}

// loadSegments merges the valid prefix of every segment present in dir
// (except our own write target) into the entry map. Later segments
// shadow earlier records with the same address; results are
// deterministic in their key, so shadowing can never change a value.
func (s *Store) loadSegments(dir string) error {
	paths, err := s.fsys.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if p == s.writePath {
			continue
		}
		s.segments++
		data, err := s.fsys.ReadFile(p)
		if err != nil {
			// A segment deleted by a concurrent compaction (its records
			// now live in the primary) or otherwise unreadable: skip —
			// worst case its grid points are recomputed.
			continue
		}
		recs, _, ok := scanLog(data)
		if !ok {
			continue // foreign or stale-version segment: contribute nothing
		}
		for _, r := range recs {
			s.entries[r.key] = r.payload
		}
	}
	return nil
}

// header renders the magic+version file header.
func header() []byte {
	return append(append(make([]byte, 0, headerLen), magic...), FormatVersion)
}

// rec is one decoded log record.
type rec struct {
	key     [sha256.Size]byte
	payload []byte
}

// scanLog validates a log file image and decodes its records. ok is
// false when the header is missing, foreign, or written by another
// FormatVersion — such a file must contribute nothing. pos is the end of
// the valid prefix; anything beyond it (a torn final append) is garbage
// the caller may truncate if it owns the file.
func scanLog(data []byte) (recs []rec, pos int, ok bool) {
	if len(data) < headerLen || string(data[:len(magic)]) != string(magic) || data[len(magic)] != FormatVersion {
		return nil, 0, false
	}
	pos = headerLen
	for pos < len(data) {
		next, key, payload, recOK := parseRecord(data, pos)
		if !recOK {
			break
		}
		recs = append(recs, rec{key: key, payload: payload})
		pos = next
	}
	return recs, pos, true
}

// parseRecord decodes the record at data[pos:]: 32-byte key hash, varint
// payload length, payload, 4-byte little-endian CRC-32 (IEEE) of the
// payload. ok is false on truncation or checksum mismatch.
func parseRecord(data []byte, pos int) (next int, key [sha256.Size]byte, payload []byte, ok bool) {
	if pos+sha256.Size > len(data) {
		return 0, key, nil, false
	}
	copy(key[:], data[pos:pos+sha256.Size])
	pos += sha256.Size
	plen, n := binary.Uvarint(data[pos:])
	if n <= 0 || plen > uint64(len(data)) {
		return 0, key, nil, false
	}
	pos += n
	if pos+int(plen)+4 > len(data) {
		return 0, key, nil, false
	}
	payload = data[pos : pos+int(plen)]
	pos += int(plen)
	if binary.LittleEndian.Uint32(data[pos:pos+4]) != crc32.ChecksumIEEE(payload) {
		return 0, key, nil, false
	}
	return pos + 4, key, payload, true
}

// appendRecord frames (addr, payload) as one log record.
func appendRecord(dst []byte, addr [sha256.Size]byte, payload []byte) []byte {
	dst = append(dst, addr[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// address derives the content address of (kind, key).
func address(kind byte, key string) [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte{kind})
	h.Write([]byte(key))
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// get returns the payload stored under (kind, key). Hit/miss counting
// happens in the typed getters, after the payload decodes.
func (s *Store) get(kind byte, key string) ([]byte, bool) {
	addr := address(kind, key)
	s.mu.Lock()
	payload, ok := s.entries[addr]
	s.mu.Unlock()
	return payload, ok
}

// drop forgets an entry whose payload would not decode, so the caller's
// re-simulated replacement can be put (later records shadow earlier
// ones with the same address on the next load).
func (s *Store) drop(kind byte, key string) {
	addr := address(kind, key)
	s.mu.Lock()
	delete(s.entries, addr)
	s.mu.Unlock()
}

// appendLocked writes rec at the end of the owned log (s.mu held).
// Appends are positional: every attempt lands at exactly s.off, so a
// torn attempt is overwritten in place by its own retry and can never
// interleave with earlier records. Transient faults retry under the
// store's backoff policy; the final error is returned for the caller to
// degrade on.
func (s *Store) appendLocked(rec []byte) error {
	err := s.Retry.Do(func() error {
		n, werr := s.f.WriteAt(rec, s.off)
		if werr == nil && n == len(rec) {
			return nil
		}
		if werr == nil {
			werr = io.ErrShortWrite
		}
		// Cut any torn bytes back to the valid prefix, best-effort: the
		// CRC framing already protects readers, and the retry rewrites
		// the same region anyway.
		s.f.Truncate(s.off)
		return werr
	})
	if err != nil {
		return err
	}
	s.off += int64(len(rec))
	return nil
}

// put appends a record to the owned log and indexes it. Transient write
// faults are retried; a permanent failure (disk full, read-only media)
// degrades the store to in-memory operation with a logged warning — the
// entry still lands in memory, this run's numbers are unaffected, and
// the next process re-simulates what never reached disk.
func (s *Store) put(kind byte, key string, payload []byte) {
	s.putAddr(address(kind, key), payload)
}

// putAddr is put for callers that already hold the content address (the
// typed putters, and the blob API the remote store protocol uses).
func (s *Store) putAddr(addr [sha256.Size]byte, payload []byte) {
	rec := appendRecord(make([]byte, 0, sha256.Size+binary.MaxVarintLen64+len(payload)+4), addr, payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.entries[addr]; exists {
		return
	}
	s.entries[addr] = payload
	s.puts.Add(1)
	if s.readOnly || s.closed {
		return
	}
	if err := s.appendLocked(rec); err != nil {
		s.readOnly = true
		s.Logf("store: append to %s failed (%v); degrading to in-memory operation — this run is unaffected, but results cached from here on will be recomputed by the next run", s.writePath, err)
	}
}

// GetResult returns the cached simulation result for the engine job key,
// if present and decodable.
func (s *Store) GetResult(key string) (sim.Result, bool) {
	payload, ok := s.get(kindResult, key)
	if !ok {
		s.misses.Add(1)
		return sim.Result{}, false
	}
	res, err := decodeResult(payload)
	if err != nil {
		s.misses.Add(1)
		s.drop(kindResult, key)
		return sim.Result{}, false
	}
	s.hits.Add(1)
	return res, true
}

// PutResult caches a simulation result under the engine job key. The
// result is deep-encoded; the caller's slices are not retained.
func (s *Store) PutResult(key string, r sim.Result) {
	s.put(kindResult, key, encodeResult(r))
}

// GetMissTraces returns the cached per-core filtered miss traces for an
// extraction key, if present and decodable.
func (s *Store) GetMissTraces(key string) ([][]trace.MissRecord, bool) {
	payload, ok := s.get(kindMissTraces, key)
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	recs, err := decodeMissTraces(payload)
	if err != nil {
		s.misses.Add(1)
		s.drop(kindMissTraces, key)
		return nil, false
	}
	s.hits.Add(1)
	return recs, true
}

// PutMissTraces caches per-core miss traces under an extraction key.
func (s *Store) PutMissTraces(key string, recs [][]trace.MissRecord) {
	payload, err := encodeMissTraces(recs)
	if err != nil {
		return
	}
	s.put(kindMissTraces, key, payload)
}

// HasResult reports whether a record is stored under the engine job key,
// without counting a hit or a miss. This is a presence check only —
// every stored record already passed its CRC in scanLog, and the rare
// payload that then fails to decode degrades to a re-simulation at read
// time — so coverage preflights over huge grids stay cheap.
func (s *Store) HasResult(key string) bool {
	_, ok := s.get(kindResult, key)
	return ok
}

// HasMissTraces is HasResult for trace extractions.
func (s *Store) HasMissTraces(key string) bool {
	_, ok := s.get(kindMissTraces, key)
	return ok
}
