package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fillSharded writes records through several concurrent openers so the
// directory holds a primary plus segment files, and returns every key
// written.
func fillSharded(t *testing.T, dir string, writers, perWriter int) []string {
	t.Helper()
	res := realResult(t)
	var keys []string
	stores := make([]*Store, writers)
	for w := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[w] = s
	}
	for w, s := range stores {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			s.PutResult(key, res)
			keys = append(keys, key)
		}
	}
	for _, s := range stores {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, segPattern))
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func requireKeys(t *testing.T, dir string, keys []string) {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, key := range keys {
		if _, ok := s.GetResult(key); !ok {
			t.Errorf("record %s lost", key)
		}
	}
}

// TestCompactPreservesLiveRecords folds a primary plus two segments into
// one file and re-reads every key.
func TestCompactPreservesLiveRecords(t *testing.T) {
	dir := t.TempDir()
	keys := fillSharded(t, dir, 3, 4) // primary + 2 segments

	if got := len(segmentFiles(t, dir)); got != 2 {
		t.Fatalf("setup made %d segments, want 2", got)
	}
	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsMerged != 2 || st.SegmentsSkipped != 0 {
		t.Errorf("stats = %+v, want 2 merged / 0 skipped", st)
	}
	if st.Live != len(keys) {
		t.Errorf("live = %d, want %d", st.Live, len(keys))
	}
	if got := len(segmentFiles(t, dir)); got != 0 {
		t.Errorf("%d segment files survive compaction", got)
	}
	requireKeys(t, dir, keys)
}

// TestCompactReclaimsStaleAndDuplicates: duplicate records shadowed
// across files and whole stale-FormatVersion files are space compaction
// must give back.
func TestCompactReclaimsStaleAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)

	// A primary with one live record.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutResult("live", res)
	s.Close()

	// A duplicate of the primary's content posing as a segment (the
	// "crash between rename and segment deletion" aftermath).
	primary, err := os.ReadFile(filepath.Join(dir, fileName))
	if err != nil {
		t.Fatal(err)
	}
	dupSeg := filepath.Join(dir, "seg-00007.tifs")
	if err := os.WriteFile(dupSeg, primary, 0o644); err != nil {
		t.Fatal(err)
	}
	// A whole segment written under a future format version: dead weight.
	stale := append([]byte{}, primary...)
	stale[len(magic)] = FormatVersion + 1
	staleSeg := filepath.Join(dir, "seg-00008.tifs")
	if err := os.WriteFile(staleSeg, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	// The duplicates and stale bytes are invisible to readers...
	pre, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := pre.Stats().Entries; n != 1 {
		t.Fatalf("pre-compaction store has %d entries, want 1", n)
	}
	pre.Close()

	// ...and compaction reclaims their space.
	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 1 {
		t.Errorf("live = %d, want 1", st.Live)
	}
	if st.StaleDropped != 1 {
		t.Errorf("stale = %d, want 1", st.StaleDropped)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Errorf("compaction reclaimed nothing: %d -> %d bytes", st.BytesBefore, st.BytesAfter)
	}
	for _, p := range []string{dupSeg, staleSeg} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s survives compaction", filepath.Base(p))
		}
	}
	requireKeys(t, dir, []string{"live"})
}

// TestCompactCrashSafety covers the two kill windows: a leftover scratch
// file (killed before the rename) must be invisible to Open and cleaned
// by the next pass, and a torn segment tail (killed writer) must degrade
// to its valid prefix.
func TestCompactCrashSafety(t *testing.T) {
	dir := t.TempDir()
	keys := fillSharded(t, dir, 2, 3)

	// Killed mid-build: a partial scratch file full of garbage.
	tmp := filepath.Join(dir, compactTmp)
	if err := os.WriteFile(tmp, []byte("TIFSTORE\x01garbage-partial-write"), 0o644); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, dir, keys) // Open ignores the scratch file

	// Killed segment writer: chop the segment's last record in half.
	segs := segmentFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("setup made %d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segs[0], data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	// The torn record (w1-k2, the segment's last append) reads as a miss;
	// everything else survives.
	intact := keys[:len(keys)-1]
	requireKeys(t, dir, intact)

	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsMerged != 1 {
		t.Errorf("stats = %+v, want 1 merged", st)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover scratch file survives compaction")
	}
	requireKeys(t, dir, intact)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.GetResult(keys[len(keys)-1]); ok {
		t.Error("torn record resurrected with wrong bytes")
	}
}

// TestCompactRespectsLiveWriters: compaction must refuse to rewrite a
// primary under a live writer and must skip (not delete) segments whose
// writers are still open.
func TestCompactRespectsLiveWriters(t *testing.T) {
	dir := t.TempDir()
	res := realResult(t)

	s1, err := Open(dir) // primary writer
	if err != nil {
		t.Fatal(err)
	}
	s1.PutResult("p", res)
	if _, err := Compact(dir); err == nil || !strings.Contains(err.Error(), "live writer") {
		t.Fatalf("compaction ran under a live primary writer (err=%v)", err)
	}

	s2, err := Open(dir) // segment writer
	if err != nil {
		t.Fatal(err)
	}
	s2.PutResult("s", res)
	s1.Close() // primary now free; s2's segment still live

	st, err := Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsSkipped != 1 || st.SegmentsMerged != 0 {
		t.Errorf("stats = %+v, want 1 skipped / 0 merged", st)
	}
	if _, err := os.Stat(s2.WritePath()); err != nil {
		t.Fatalf("live segment deleted: %v", err)
	}
	s2.Close()

	st, err = Compact(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsMerged != 1 {
		t.Errorf("second pass stats = %+v, want 1 merged", st)
	}
	requireKeys(t, dir, []string{"p", "s"})
}
