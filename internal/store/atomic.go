package store

import (
	"fmt"
	"os"
	"path/filepath"

	"tifs/internal/vfs"
)

// AtomicWriteFile durably replaces path with data on the real
// filesystem. See AtomicWriteFileFS.
func AtomicWriteFile(path string, data []byte) error {
	return AtomicWriteFileFS(vfs.OS, path, data)
}

// AtomicWriteFileFS durably replaces path with data: the bytes are
// written to a sibling temp file (path + ".tmp"), fsynced, renamed into
// place, and the directory is fsynced so the replacement survives a
// crash. A failure at any step leaves either the old file or the new
// one, never a torn mix. Used for the compacted primary log and the
// shard lease manifest, which share the same crash-safety needs.
func AtomicWriteFileFS(fsys vfs.FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if n, err := f.WriteAt(data, 0); err != nil || n != len(data) {
		f.Close()
		fsys.Remove(tmp)
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(data))
		}
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	fsys.SyncDir(filepath.Dir(path))
	return nil
}
