package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile durably replaces path with data: the bytes are written
// to a sibling temp file (path + ".tmp"), fsynced, renamed into place,
// and the directory is fsynced so the replacement survives a crash. A
// failure at any step leaves either the old file or the new one, never a
// torn mix. Used for the compacted primary log and the shard lease
// manifest, which share the same crash-safety needs.
func AtomicWriteFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	syncDir(filepath.Dir(path))
	return nil
}
