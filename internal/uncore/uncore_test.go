package uncore

import (
	"testing"

	"tifs/internal/cache"
	"tifs/internal/isa"
)

func TestDefaultsMatchTableII(t *testing.T) {
	u := New(Config{})
	cfg := u.Config()
	if cfg.L2.SizeBytes != 8*1024*1024 || cfg.L2.Assoc != 16 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.Banks != 16 || cfg.HitLatency != 20 || cfg.BankBusy != 4 {
		t.Errorf("bank config = %+v", cfg)
	}
	if cfg.MemLatency != 180 {
		t.Errorf("MemLatency = %d", cfg.MemLatency)
	}
}

func TestHitAndMissLatency(t *testing.T) {
	u := New(Config{})
	b := isa.Block(42)
	// Cold: L2 miss goes to memory.
	done := u.ReadBlock(0, b, 1000, TrafficFetch)
	if done < 1000+20+180 {
		t.Errorf("cold read done at %d, want >= %d", done, 1000+200)
	}
	// Warm: pure L2 hit.
	done = u.ReadBlock(0, b, 5000, TrafficFetch)
	if done != 5000+20 {
		t.Errorf("warm read done at %d, want %d", done, 5020)
	}
	st := u.Stats()
	if st.L2Hits != 1 || st.L2Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBankContention(t *testing.T) {
	u := New(Config{})
	b := isa.Block(3) // bank 3
	u.cache.Fill(b)   // make it a hit
	d1 := u.ReadBlock(0, b, 100, TrafficFetch)
	d2 := u.ReadBlock(1, b, 100, TrafficFetch) // same bank, same cycle
	if d2 != d1+4 {
		t.Errorf("second access done at %d, want %d (bank busy 4)", d2, d1+4)
	}
	if u.Stats().BankWaitCycles == 0 {
		t.Error("bank wait not recorded")
	}
	// A different bank does not wait.
	b2 := isa.Block(4)
	u.cache.Fill(b2)
	d3 := u.ReadBlock(2, b2, 100, TrafficFetch)
	if d3 != 100+20 {
		t.Errorf("other-bank access done at %d, want 120", d3)
	}
}

func TestMemoryChannelSerializes(t *testing.T) {
	u := New(Config{})
	// Two cold blocks on different banks at the same time: memory channel
	// occupancy (9 cycles/block) separates them.
	d1 := u.ReadBlock(0, isa.Block(100), 0, TrafficFetch)
	d2 := u.ReadBlock(1, isa.Block(101), 0, TrafficFetch)
	if d2 < d1+9-4 { // bank offsets may overlap; channel adds >= 9
		t.Errorf("memory channel not serializing: %d then %d", d1, d2)
	}
}

func TestTrafficLedger(t *testing.T) {
	u := New(Config{})
	u.ReadBlock(0, 1, 0, TrafficFetch)
	u.ReadBlock(0, 2, 0, TrafficNextLine)
	u.Prefetch(0, 3, 0)
	u.MetaRead(0, 7, 0)
	u.MetaWrite(0, 7, 0)
	u.AddDataTraffic(10)

	tr := u.Traffic()
	if tr.Count(TrafficFetch) != 1 || tr.Count(TrafficNextLine) != 1 ||
		tr.Count(TrafficPrefetch) != 1 || tr.Count(TrafficIMLRead) != 1 ||
		tr.Count(TrafficIMLWrite) != 1 || tr.Count(TrafficData) != 10 {
		t.Errorf("ledger = %+v", tr)
	}
	if tr.Base() != 12 { // fetch + next-line + data
		t.Errorf("Base = %d, want 12", tr.Base())
	}
	if tr.Overhead() != 3 { // prefetch + iml r/w
		t.Errorf("Overhead = %d, want 3", tr.Overhead())
	}
	// One useful prefetch cancels one overhead transfer.
	if got := tr.OverheadFrac(1); got != float64(2)/12 {
		t.Errorf("OverheadFrac(1) = %f", got)
	}
	// Useful cannot exceed overhead.
	if got := tr.OverheadFrac(100); got != 0 {
		t.Errorf("OverheadFrac(100) = %f", got)
	}
}

func TestTrafficSub(t *testing.T) {
	u := New(Config{})
	u.ReadBlock(0, 1, 0, TrafficFetch)
	warm := u.Traffic()
	u.ReadBlock(0, 2, 0, TrafficFetch)
	diff := u.Traffic().Sub(warm)
	if diff.Count(TrafficFetch) != 1 {
		t.Errorf("Sub fetch = %d, want 1", diff.Count(TrafficFetch))
	}
}

func TestTrafficKindString(t *testing.T) {
	names := map[TrafficKind]string{
		TrafficFetch: "fetch", TrafficNextLine: "next-line",
		TrafficPrefetch: "prefetch", TrafficIMLRead: "iml-read",
		TrafficIMLWrite: "iml-write", TrafficData: "data",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d = %q, want %q", k, got, want)
		}
	}
}

func TestMetaAccessesAlwaysHitL2(t *testing.T) {
	u := New(Config{})
	done := u.MetaRead(0, 999, 50)
	if done != 50+20 {
		t.Errorf("MetaRead done at %d, want 70", done)
	}
}

func TestCustomConfigRespected(t *testing.T) {
	u := New(Config{
		L2:         cache.Config{SizeBytes: 1024 * 1024, Assoc: 8},
		Banks:      4,
		HitLatency: 10,
	})
	if u.Config().Banks != 4 || u.Config().HitLatency != 10 {
		t.Errorf("config = %+v", u.Config())
	}
	b := isa.Block(1)
	u.cache.Fill(b)
	if done := u.ReadBlock(0, b, 0, TrafficFetch); done != 10 {
		t.Errorf("custom hit latency: done=%d", done)
	}
}
