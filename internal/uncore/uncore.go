// Package uncore models the shared memory system of the Table II CMP: an
// 8 MB 16-way L2 split into 16 banks with independently occupied data
// pipelines (a new access at most every 4 cycles per bank), a 20-cycle
// minimum hit latency, and a 45 ns (~180-cycle at 4 GHz) main memory
// behind it. It also keeps the L2 traffic ledger that the Fig. 12
// overhead accounting reads.
//
// The uncore implements prefetch.Memory, so prefetchers (including the
// TIFS virtualized-IML metadata traffic) contend with demand fetches for
// the same banks.
package uncore

import (
	"fmt"

	"tifs/internal/cache"
	"tifs/internal/isa"
)

// Config sizes the shared memory system; zero values select Table II.
type Config struct {
	// L2 is the shared cache geometry (default 8 MB 16-way).
	L2 cache.Config
	// Banks is the number of L2 banks (default 16).
	Banks int
	// HitLatency is the minimum total L2 hit latency in cycles
	// (default 20).
	HitLatency int
	// BankBusy is the bank data-pipeline occupancy per access in cycles
	// (default 4: "each bank's data pipeline may initiate a new access at
	// most once every four cycles").
	BankBusy int
	// MemLatency is the main-memory access latency in cycles beyond the
	// L2 (default 180 ≈ 45 ns at 4 GHz).
	MemLatency int
	// MemBlockCycles is the memory-channel occupancy per 64-byte block
	// (default 9 ≈ 28.4 GB/s at 4 GHz).
	MemBlockCycles int
}

func (c Config) withDefaults() Config {
	if c.L2.SizeBytes == 0 {
		c.L2 = cache.Config{SizeBytes: 8 * 1024 * 1024, Assoc: 16}
	}
	if c.Banks == 0 {
		c.Banks = 16
	}
	if c.HitLatency == 0 {
		c.HitLatency = 20
	}
	if c.BankBusy == 0 {
		c.BankBusy = 4
	}
	if c.MemLatency == 0 {
		c.MemLatency = 180
	}
	if c.MemBlockCycles == 0 {
		c.MemBlockCycles = 9
	}
	return c
}

// TrafficKind classifies L2 accesses for the Fig. 12 ledger.
type TrafficKind uint8

// Traffic kinds.
const (
	// TrafficFetch is a demand instruction fetch.
	TrafficFetch TrafficKind = iota
	// TrafficNextLine is a next-line prefetch (part of the base system).
	TrafficNextLine
	// TrafficPrefetch is an additional-prefetcher block read (TIFS
	// streams, FDIP exploration).
	TrafficPrefetch
	// TrafficIMLRead and TrafficIMLWrite are virtualized-IML metadata
	// block transfers.
	TrafficIMLRead
	TrafficIMLWrite
	// TrafficData stands in for data-side reads and writebacks, which the
	// simulator accounts synthetically (see DESIGN.md §2); it forms part
	// of the Fig. 12 baseline-traffic denominator.
	TrafficData
	numTrafficKinds
)

// String names the traffic kind.
func (k TrafficKind) String() string {
	switch k {
	case TrafficFetch:
		return "fetch"
	case TrafficNextLine:
		return "next-line"
	case TrafficPrefetch:
		return "prefetch"
	case TrafficIMLRead:
		return "iml-read"
	case TrafficIMLWrite:
		return "iml-write"
	case TrafficData:
		return "data"
	default:
		return fmt.Sprintf("traffic(%d)", uint8(k))
	}
}

// NumTrafficKinds returns how many ledger kinds exist (serialization
// support for the persistent result store).
func NumTrafficKinds() int { return int(numTrafficKinds) }

// Traffic is the block-transfer ledger.
type Traffic struct {
	counts [numTrafficKinds]uint64
}

// Count returns the transfers of one kind.
func (t Traffic) Count(k TrafficKind) uint64 { return t.counts[k] }

// SetCount sets one kind's count (deserialization support; out-of-range
// kinds from a newer format version are ignored).
func (t *Traffic) SetCount(k TrafficKind, v uint64) {
	if k < numTrafficKinds {
		t.counts[k] = v
	}
}

// Sub returns the element-wise difference t - other (used to remove
// warmup-era traffic from measurements).
func (t Traffic) Sub(other Traffic) Traffic {
	var out Traffic
	for i := range t.counts {
		out.counts[i] = t.counts[i] - other.counts[i]
	}
	return out
}

// Base returns the baseline L2 traffic the paper normalizes against:
// demand fetches, next-line prefetches, and data reads/writebacks.
func (t Traffic) Base() uint64 {
	return t.counts[TrafficFetch] + t.counts[TrafficNextLine] + t.counts[TrafficData]
}

// Overhead returns the added traffic of the prefetch mechanism: stream
// and run-ahead prefetches plus IML metadata transfers.
func (t Traffic) Overhead() uint64 {
	return t.counts[TrafficPrefetch] + t.counts[TrafficIMLRead] + t.counts[TrafficIMLWrite]
}

// OverheadFrac returns Overhead relative to Base (the Fig. 12 right
// panel), minus the prefetched blocks that replaced demand fetches —
// correctly prefetched blocks "cause no increase in traffic"
// (Section 6.4) — which the caller supplies as usefulPrefetches.
func (t Traffic) OverheadFrac(usefulPrefetches uint64) float64 {
	base := t.Base()
	if base == 0 {
		return 0
	}
	over := t.Overhead()
	if usefulPrefetches > over {
		usefulPrefetches = over
	}
	return float64(over-usefulPrefetches) / float64(base)
}

// Stats reports uncore activity beyond the ledger.
type Stats struct {
	// L2Hits and L2Misses split block reads by where they were served.
	L2Hits, L2Misses uint64
	// BankWaitCycles accumulates cycles requests spent queued on busy
	// banks — the contention the virtualized IML adds (Fig. 13,
	// OLTP-DB2).
	BankWaitCycles uint64
}

// L2 is the shared banked cache plus memory behind it.
type L2 struct {
	cfg      Config
	cache    *cache.Cache
	bankFree []uint64
	memFree  uint64
	traffic  Traffic
	stats    Stats
}

// New builds the uncore; zero-valued config fields default to Table II.
func New(cfg Config) *L2 {
	cfg = cfg.withDefaults()
	return &L2{
		cfg:      cfg,
		cache:    cache.New(cfg.L2),
		bankFree: make([]uint64, cfg.Banks),
	}
}

// Config returns the applied configuration.
func (u *L2) Config() Config { return u.cfg }

// Reset restores the uncore to the state New(cfg) would produce, reusing
// the cache ways and bank array when the geometry is unchanged so pooled
// simulation runs do not reallocate the L2.
func (u *L2) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	if u.cache.Config() == cfg.L2 {
		u.cache.Reset()
	} else {
		u.cache = cache.New(cfg.L2)
	}
	if len(u.bankFree) == cfg.Banks {
		clear(u.bankFree)
	} else {
		u.bankFree = make([]uint64, cfg.Banks)
	}
	u.cfg = cfg
	u.memFree = 0
	u.traffic = Traffic{}
	u.stats = Stats{}
}

// Traffic returns a copy of the ledger.
func (u *L2) Traffic() Traffic { return u.traffic }

// Stats returns a copy of the activity counters.
func (u *L2) Stats() Stats { return u.stats }

// Snapshot checkpoints the uncore's full mutable state — cache
// contents, bank/memory pipeline occupancy, ledger, and counters — for
// the simulator's speculative merge tier. Save reuses the snapshot's
// buffers, so pooled snapshots stop allocating at steady state.
type Snapshot struct {
	cache    cache.Snapshot
	bankFree []uint64
	memFree  uint64
	traffic  Traffic
	stats    Stats
}

// Save copies the uncore's current state into s.
func (u *L2) Save(s *Snapshot) {
	u.cache.Save(&s.cache)
	s.bankFree = append(s.bankFree[:0], u.bankFree...)
	s.memFree = u.memFree
	s.traffic = u.traffic
	s.stats = u.stats
}

// Restore rewinds the uncore to the state captured by Save. The
// snapshot must come from an uncore of the same configuration.
func (u *L2) Restore(s *Snapshot) {
	u.cache.Restore(&s.cache)
	copy(u.bankFree, s.bankFree)
	u.memFree = s.memFree
	u.traffic = s.traffic
	u.stats = s.stats
}

// bank maps a block to its bank by low-order block bits, as banked L2s
// interleave.
func (u *L2) bank(b uint64) int { return int(b % uint64(u.cfg.Banks)) }

// occupy reserves the bank data pipeline and returns the access start
// cycle, accumulating queue wait.
func (u *L2) occupy(bank int, now uint64) uint64 {
	start := now
	if u.bankFree[bank] > start {
		u.stats.BankWaitCycles += u.bankFree[bank] - start
		start = u.bankFree[bank]
	}
	u.bankFree[bank] = start + uint64(u.cfg.BankBusy)
	return start
}

// ReadBlock performs a block read for the given traffic kind and returns
// the completion cycle. L2 misses go to memory and fill the L2.
func (u *L2) ReadBlock(core int, b isa.Block, now uint64, kind TrafficKind) uint64 {
	u.traffic.counts[kind]++
	start := u.occupy(u.bank(uint64(b)), now)
	if u.cache.Access(b) {
		u.stats.L2Hits++
		return start + uint64(u.cfg.HitLatency)
	}
	u.stats.L2Misses++
	mstart := start + uint64(u.cfg.HitLatency)
	if u.memFree > mstart {
		mstart = u.memFree
	}
	u.memFree = mstart + uint64(u.cfg.MemBlockCycles)
	u.cache.Fill(b)
	return mstart + uint64(u.cfg.MemLatency)
}

// AddDataTraffic accounts synthetic data-side transfers (ledger only).
func (u *L2) AddDataTraffic(blocks uint64) {
	u.traffic.counts[TrafficData] += blocks
}

// Prefetch implements prefetch.Memory.
func (u *L2) Prefetch(core int, b isa.Block, now uint64) uint64 {
	return u.ReadBlock(core, b, now, TrafficPrefetch)
}

// MetaRead implements prefetch.Memory: a virtualized-IML block read. IML
// data lives in a reserved region of the L2 data array, so it is always
// an L2 hit, but it occupies a bank like any other access.
func (u *L2) MetaRead(core int, token uint64, now uint64) uint64 {
	u.traffic.counts[TrafficIMLRead]++
	start := u.occupy(u.bank(token), now)
	return start + uint64(u.cfg.HitLatency)
}

// MetaWrite implements prefetch.Memory: a virtualized-IML block
// writeback; fire-and-forget but it occupies a bank.
func (u *L2) MetaWrite(core int, token uint64, now uint64) {
	u.traffic.counts[TrafficIMLWrite]++
	u.occupy(u.bank(token), now)
}
