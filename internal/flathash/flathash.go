// Package flathash provides an open-addressed uint64 -> uint64 hash
// table for the simulator's hot lookup structures (the shared TIFS index
// table, prefetcher target/seen tables). Compared with a Go map it has a
// flat, pointer-free layout the GC never scans, O(1) clearing for reuse
// across pooled simulation runs, and no per-insert allocation once grown
// to steady-state size.
//
// The table uses Fibonacci hashing with linear probing and grows at 3/4
// load. Lookups and stores are deterministic; no operation depends on
// iteration order, so replacing a Go map with a Map cannot change any
// simulation result.
package flathash

// Map is an open-addressed uint64 -> uint64 hash table. The zero value
// is ready to use; call Grow to pre-size it from configuration.
type Map struct {
	keys []uint64
	vals []uint64
	used []bool
	n    int
	mask uint64
}

// hash spreads the key over the table with the 64-bit Fibonacci
// multiplier.
func hash(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

// Len returns the number of stored keys.
func (m *Map) Len() int { return m.n }

// Cap returns the current slot count (0 for an unsized table).
func (m *Map) Cap() int { return len(m.keys) }

// Grow ensures the table can hold at least capacity keys without
// rehashing. It is a no-op if the table is already large enough.
func (m *Map) Grow(capacity int) {
	if capacity <= 0 {
		return
	}
	slots := 16
	for slots*3/4 < capacity {
		slots <<= 1
	}
	if slots <= len(m.keys) {
		return
	}
	m.rehash(slots)
}

// rehash moves every live entry into a table of the given slot count
// (a power of two).
func (m *Map) rehash(slots int) {
	oldKeys, oldVals, oldUsed := m.keys, m.vals, m.used
	m.keys = make([]uint64, slots)
	m.vals = make([]uint64, slots)
	m.used = make([]bool, slots)
	m.mask = uint64(slots - 1)
	m.n = 0
	for i, u := range oldUsed {
		if u {
			m.Put(oldKeys[i], oldVals[i])
		}
	}
}

// Get returns the value stored under k.
func (m *Map) Get(k uint64) (uint64, bool) {
	if m.n == 0 {
		return 0, false
	}
	for i := hash(k) & m.mask; ; i = (i + 1) & m.mask {
		if !m.used[i] {
			return 0, false
		}
		if m.keys[i] == k {
			return m.vals[i], true
		}
	}
}

// Contains reports whether k is present.
func (m *Map) Contains(k uint64) bool {
	_, ok := m.Get(k)
	return ok
}

// Put stores v under k, replacing any existing value.
func (m *Map) Put(k, v uint64) {
	if len(m.keys) == 0 || (m.n+1)*4 > len(m.keys)*3 {
		slots := 2 * len(m.keys)
		if slots < 16 {
			slots = 16
		}
		m.rehash(slots)
	}
	for i := hash(k) & m.mask; ; i = (i + 1) & m.mask {
		if !m.used[i] {
			m.keys[i] = k
			m.vals[i] = v
			m.used[i] = true
			m.n++
			return
		}
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
	}
}

// Reset removes every entry but keeps the table's capacity, so a pooled
// structure re-reaches steady state without reallocating.
func (m *Map) Reset() {
	if m.n == 0 {
		return
	}
	clear(m.used)
	m.n = 0
}

// Snapshot holds a checkpoint of a Map's full contents. A Snapshot is
// reusable: Save overwrites it in place, growing its buffers only until
// they reach the table's steady-state size.
type Snapshot struct {
	keys []uint64
	vals []uint64
	used []bool
	n    int
	mask uint64
}

// Save copies the table's current state into s, reusing s's buffers.
func (m *Map) Save(s *Snapshot) {
	s.keys = append(s.keys[:0], m.keys...)
	s.vals = append(s.vals[:0], m.vals...)
	s.used = append(s.used[:0], m.used...)
	s.n = m.n
	s.mask = m.mask
}

// Restore rewinds the table to the state captured by Save. A table only
// ever grows between Save and Restore, so restoring normally reslices
// the existing arrays down; it allocates only if the snapshot is larger
// than the table's current capacity.
func (m *Map) Restore(s *Snapshot) {
	if cap(m.keys) < len(s.keys) {
		m.keys = make([]uint64, len(s.keys))
		m.vals = make([]uint64, len(s.vals))
		m.used = make([]bool, len(s.used))
	}
	m.keys = m.keys[:len(s.keys)]
	m.vals = m.vals[:len(s.vals)]
	m.used = m.used[:len(s.used)]
	copy(m.keys, s.keys)
	copy(m.vals, s.vals)
	copy(m.used, s.used)
	m.n = s.n
	m.mask = s.mask
}
