package flathash

import (
	"testing"

	"tifs/internal/xrand"
)

func TestMapMatchesGoMap(t *testing.T) {
	var m Map
	ref := map[uint64]uint64{}
	rng := xrand.NewFromString("flathash-test")
	for i := 0; i < 50_000; i++ {
		k := uint64(rng.Intn(8000)) // force overwrites and probing chains
		v := rng.Uint64()
		m.Put(k, v)
		ref[k] = v
		if i%17 == 0 {
			probe := uint64(rng.Intn(10000))
			got, ok := m.Get(probe)
			want, wok := ref[probe]
			if ok != wok || got != want {
				t.Fatalf("Get(%d) = %d,%v; want %d,%v", probe, got, ok, want, wok)
			}
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%d) = %d,%v; want %d,true", k, got, ok, want)
		}
	}
}

func TestMapResetKeepsCapacity(t *testing.T) {
	var m Map
	for i := uint64(0); i < 1000; i++ {
		m.Put(i, i*3)
	}
	capBefore := m.Cap()
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if m.Cap() != capBefore {
		t.Fatalf("Cap after Reset = %d, want %d", m.Cap(), capBefore)
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("entry survived Reset")
	}
	allocs := testing.AllocsPerRun(5, func() {
		for i := uint64(0); i < 1000; i++ {
			m.Put(i, i)
		}
		m.Reset()
	})
	if allocs != 0 {
		t.Fatalf("refill after Reset allocated %.1f times", allocs)
	}
}

func TestMapGrowPreSizes(t *testing.T) {
	var m Map
	m.Grow(1000)
	allocs := testing.AllocsPerRun(2, func() {
		for i := uint64(0); i < 1000; i++ {
			m.Put(i, i)
		}
		m.Reset()
	})
	if allocs != 0 {
		t.Fatalf("pre-sized fill allocated %.1f times", allocs)
	}
}
