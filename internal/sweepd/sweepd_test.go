package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tifs/internal/engine"
	"tifs/internal/experiments"
	"tifs/internal/store"
)

// cheapSweep is the reduced-scope request the tests submit: one
// simulating experiment, one workload, a small event budget.
func cheapSweep() JobRequest {
	return JobRequest{
		Experiments: []string{"fig1"},
		Workloads:   []string{"Web-Zeus"},
		Events:      10_000,
	}
}

// localOutput runs the same request locally on a fresh storeless
// engine: the ground truth the service must match byte for byte.
// Returns the output and how many simulations the grid costs.
func localOutput(t *testing.T, req JobRequest) (string, uint64) {
	t.Helper()
	e := engine.New(1)
	out, err := experiments.RunSelected(req.Experiments, experiments.Options{
		Events: req.Events, Cores: req.Cores, Workloads: req.Workloads, Engine: e,
	}, nil)
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	return out, e.SimulationsRun()
}

// startService mounts a fresh service (backed by dir when non-empty) on
// an httptest server.
func startService(t *testing.T, dir string, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if dir != "" {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Backend = st
	}
	svc := New(cfg)
	t.Cleanup(svc.Close)
	mux := http.NewServeMux()
	svc.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, ts
}

func submitAndWait(t *testing.T, ts *httptest.Server, name string, req JobRequest) JobStatus {
	t.Helper()
	c := NewClient(ts.URL, nil)
	c.Name = name
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("watch %s: %v", st.ID, err)
	}
	if final.State != StateDone {
		t.Fatalf("job %s finished %s: %s", st.ID, final.State, final.Error)
	}
	return final
}

// TestWarmHitSweepOverHTTP is the acceptance path: a sweep served from
// a warm store returns byte-identical output without running a single
// simulation.
func TestWarmHitSweepOverHTTP(t *testing.T) {
	dir := t.TempDir()
	req := cheapSweep()
	want, _ := localOutput(t, req)

	// Cold service populates the store.
	svc1, ts1 := startService(t, dir, Config{Parallelism: 2})
	cold := submitAndWait(t, ts1, "alice", req)
	if cold.Output != want {
		t.Fatalf("cold output differs from local run:\n--- want\n%s\n--- got\n%s", want, cold.Output)
	}
	if svc1.Engine().SimulationsRun() == 0 {
		t.Fatal("cold run reported zero simulations; warm-hit assertion below would be vacuous")
	}
	svc1.Close()
	ts1.Close()

	// Fresh service over the same store: everything is a warm hit.
	svc2, ts2 := startService(t, dir, Config{Parallelism: 2})
	warm := submitAndWait(t, ts2, "bob", req)
	if warm.Output != want {
		t.Fatalf("warm output differs:\n--- want\n%s\n--- got\n%s", want, warm.Output)
	}
	if runs := svc2.Engine().SimulationsRun(); runs != 0 {
		t.Errorf("warm sweep ran %d simulations, want 0 (store should answer everything)", runs)
	}
	if hits := svc2.Engine().StoreHits(); hits == 0 {
		t.Error("warm sweep recorded no store hits")
	}
	if warm.SimsRun != 0 {
		t.Errorf("warm job status reports %d sims run, want 0", warm.SimsRun)
	}
	if warm.StoreHits == 0 {
		t.Error("warm job status reports no store hits")
	}
}

// TestSingleFlightConcurrentSubmissions: N clients submit the identical
// sweep concurrently; exactly one job is created, the grid executes
// exactly once, and every client receives byte-identical output.
func TestSingleFlightConcurrentSubmissions(t *testing.T) {
	req := cheapSweep()
	want, wantRuns := localOutput(t, req)
	svc, ts := startService(t, "", Config{Parallelism: 2})

	const n = 4
	var wg sync.WaitGroup
	statuses := make([]JobStatus, n)
	finals := make([]JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(ts.URL, nil)
			c.Name = fmt.Sprintf("client-%d", i)
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			st, err := c.Submit(ctx, req)
			if err != nil {
				errs[i] = err
				return
			}
			statuses[i] = st
			finals[i], errs[i] = c.Watch(ctx, st.ID, nil)
		}(i)
	}
	wg.Wait()
	created := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if statuses[i].ID != statuses[0].ID {
			t.Errorf("client %d joined job %s, client 0 got %s: single-flight broken",
				i, statuses[i].ID, statuses[0].ID)
		}
		if !statuses[i].Deduped {
			created++
		}
		if finals[i].Output != want {
			t.Errorf("client %d output differs from local run", i)
		}
	}
	if created != 1 {
		t.Errorf("%d submissions created a job, want exactly 1", created)
	}
	if runs := svc.Engine().SimulationsRun(); runs != wantRuns {
		t.Errorf("engine ran %d simulations for %d identical submissions, want %d (one grid)",
			runs, n, wantRuns)
	}

	// A later identical submission joins the finished job instantly.
	c := NewClient(ts.URL, nil)
	c.Name = "latecomer"
	st, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("late submit: %v", err)
	}
	if !st.Deduped || st.State != StateDone || st.Output != want {
		t.Errorf("late identical submission: deduped=%v state=%s (want joined, done, cached output)",
			st.Deduped, st.State)
	}
	if runs := svc.Engine().SimulationsRun(); runs != wantRuns {
		t.Errorf("late submission re-ran work: %d runs, want still %d", runs, wantRuns)
	}
}

// stalledService builds a service whose dispatcher never starts, so
// queued jobs stay queued — admission control can be exercised
// deterministically.
func stalledService(cfg Config) *Service {
	s := &Service{
		cfg:     cfg,
		eng:     engine.New(1),
		byID:    map[string]*job{},
		byKey:   map[string]*job{},
		queues:  map[string][]*job{},
		running: map[*job]bool{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	return s
}

// distinctReq returns the i-th of a family of distinct valid requests.
func distinctReq(i int) JobRequest {
	r := cheapSweep()
	r.Events = uint64(10_000 + i)
	return r
}

// TestAdmissionControl: past the per-client bound a submission gets 429
// with Retry-After; other clients still get in until the global bound.
func TestAdmissionControl(t *testing.T) {
	svc := stalledService(Config{MaxQueued: 3, MaxQueuedPerClient: 2})
	defer svc.cancel()
	mux := http.NewServeMux()
	svc.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	post := func(client string, req JobRequest) *http.Response {
		body, _ := json.Marshal(req)
		hreq, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(string(body)))
		hreq.Header.Set("X-Tifs-Client", client)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Client A fills its per-client quota.
	for i := 0; i < 2; i++ {
		if resp := post("a", distinctReq(i)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("a's submission %d: got %d, want 202", i, resp.StatusCode)
		}
	}
	resp := post("a", distinctReq(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("a past per-client bound: got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After header")
	}
	// Client B is unaffected by A's backlog until the global bound.
	if resp := post("b", distinctReq(3)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("b's first submission: got %d, want 202", resp.StatusCode)
	}
	resp = post("b", distinctReq(4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("past global bound: got %d, want 429", resp.StatusCode)
	}
	// A duplicate of a queued job still joins: dedup beats admission.
	resp = post("c", distinctReq(0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate of queued job: got %d, want 200 (joined)", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode joined status: %v", err)
	}
	if !st.Deduped || st.State != StateQueued {
		t.Errorf("joined queued job: deduped=%v state=%s", st.Deduped, st.State)
	}
}

// TestRoundRobinFairness: with a backlog from clients a,a,a,b the
// dispatcher alternates a,b,a,a rather than draining a first.
func TestRoundRobinFairness(t *testing.T) {
	svc := stalledService(Config{})
	defer svc.cancel()
	for i, client := range []string{"a", "a", "a", "b"} {
		if _, err := svc.Submit(distinctReq(i), client); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	svc.mu.Lock()
	var order []string
	for {
		j := svc.nextLocked()
		if j == nil {
			break
		}
		order = append(order, j.client)
	}
	svc.mu.Unlock()
	want := []string{"a", "b", "a", "a"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("dispatch order %v, want %v", order, want)
	}
}

// TestEventStreamAndResume: the event log is ordered, starts with
// queued, ends with done, and ?from=seq replays only the tail.
func TestEventStreamAndResume(t *testing.T) {
	_, ts := startService(t, "", Config{})
	c := NewClient(ts.URL, nil)
	c.Name = "watcher"
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req := cheapSweep()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var events []Event
	final, err := c.Watch(ctx, st.ID, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job failed: %s", final.Error)
	}
	if len(events) < 4 {
		t.Fatalf("got %d events, want at least queued/start/experiment/done", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: stream must be gapless from 0", i, ev.Seq)
		}
	}
	if events[0].Kind != EvQueued {
		t.Errorf("first event %q, want queued", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != EvDone {
		t.Errorf("last event %q, want done", last.Kind)
	}
	if last.SimsRun == 0 {
		t.Error("terminal event snapshots zero sims for a cold sweep")
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{EvStart, EvExperimentStart, EvExperimentDone, engine.EventSimDone} {
		if !kinds[want] {
			t.Errorf("stream missing %q event", want)
		}
	}

	// Resume from the middle: a second watcher sees exactly the tail.
	mid := len(events) / 2
	resumed, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?from=" + fmt.Sprint(mid))
	if err != nil {
		t.Fatalf("resume GET: %v", err)
	}
	defer resumed.Body.Close()
	dec := json.NewDecoder(resumed.Body)
	n := 0
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			break
		}
		if ev.Seq != mid+n {
			t.Fatalf("resumed event %d has seq %d, want %d", n, ev.Seq, mid+n)
		}
		n++
	}
	if n != len(events)-mid {
		t.Errorf("resume from %d delivered %d events, want %d", mid, n, len(events)-mid)
	}
}

// TestSimulationForm: the single-simulation job shape works end to end
// and carries the tifssim report.
func TestSimulationForm(t *testing.T) {
	_, ts := startService(t, "", Config{})
	final := submitAndWait(t, ts, "simmer", JobRequest{
		Workload: "Web-Zeus", Mechanism: "tifs-dedicated", Baseline: true, Events: 10_000,
	})
	for _, want := range []string{"workload:   Web-Zeus", "mechanism:", "speedup over next-line:"} {
		if !strings.Contains(final.Output, want) {
			t.Errorf("simulation report missing %q:\n%s", want, final.Output)
		}
	}
	if final.SimsRun != 2 {
		t.Errorf("simulation+baseline ran %d sims, want 2", final.SimsRun)
	}
}

// TestCanonicalization pins the key discipline: defaults applied,
// "everything" spelled two ways collapses, invalid shapes rejected.
func TestCanonicalization(t *testing.T) {
	_, _, implicit, err := canonicalize(JobRequest{})
	if err != nil {
		t.Fatalf("empty sweep request: %v", err)
	}
	_, _, explicit, err := canonicalize(JobRequest{Experiments: experiments.IDs(), Scale: "small", Cores: 4})
	if err != nil {
		t.Fatalf("explicit full request: %v", err)
	}
	if implicit != explicit {
		t.Errorf("implicit full sweep key %q != explicit %q: 'all' must dedupe with the spelled-out list", implicit, explicit)
	}

	norm, _, _, err := canonicalize(JobRequest{Workload: "Web-Zeus"})
	if err != nil {
		t.Fatalf("minimal simulation request: %v", err)
	}
	if norm.Mechanism != "tifs-dedicated" || norm.Cores != 4 || norm.Scale != "small" {
		t.Errorf("defaults not applied: %+v", norm)
	}

	// IntraParallelism is an execution knob, not an output knob: it must
	// never reach either key form, and a negative value normalizes away.
	for _, base := range []JobRequest{
		{Workload: "Web-Zeus"},
		{Experiments: []string{"fig1"}},
	} {
		_, _, serialKey, err := canonicalize(base)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", base, err)
		}
		intra := base
		intra.IntraParallelism = 8
		_, _, intraKey, err := canonicalize(intra)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", intra, err)
		}
		if serialKey != intraKey {
			t.Errorf("intra_parallelism leaked into the canonical key: %q != %q", serialKey, intraKey)
		}
	}
	neg := JobRequest{Workload: "Web-Zeus", IntraParallelism: -3}
	n2, _, _, err := canonicalize(neg)
	if err != nil {
		t.Fatalf("negative intra request: %v", err)
	}
	if n2.IntraParallelism != 0 {
		t.Errorf("negative IntraParallelism normalized to %d, want 0", n2.IntraParallelism)
	}

	for _, bad := range []JobRequest{
		{Experiments: []string{"nope"}},
		{Workloads: []string{"nope"}},
		{Workload: "nope"},
		{Workload: "Web-Zeus", Mechanism: "nope"},
		{Mechanism: "tifs-dedicated"},
		{Workload: "Web-Zeus", Experiments: []string{"fig1"}},
		{Scale: "nope"},
	} {
		if _, _, _, err := canonicalize(bad); err == nil {
			t.Errorf("request %+v canonicalized without error", bad)
		}
	}
}

// TestIntraSubmissionsDedupe: submissions differing only in
// intra_parallelism join one job and see one byte-identical output —
// the service-level proof that the knob stays out of job identity.
func TestIntraSubmissionsDedupe(t *testing.T) {
	req := cheapSweep()
	want, _ := localOutput(t, req)

	_, ts := startService(t, "", Config{Parallelism: 2})
	serial := submitAndWait(t, ts, "alice", req)
	if serial.Output != want {
		t.Fatalf("serial output differs from local run:\n--- want\n%s\n--- got\n%s", want, serial.Output)
	}

	intra := req
	intra.IntraParallelism = 4
	c := NewClient(ts.URL, nil)
	c.Name = "bob"
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := c.Submit(ctx, intra)
	if err != nil {
		t.Fatalf("intra submit: %v", err)
	}
	if !st.Deduped || st.ID != serial.ID {
		t.Errorf("intra variant created a new job (deduped=%v id=%s, want join of %s)",
			st.Deduped, st.ID, serial.ID)
	}
	if st.Output != want {
		t.Errorf("deduped intra submission returned different output")
	}
}

// TestUnknownJob404 pins the status/events lookup error path.
func TestUnknownJob404(t *testing.T) {
	_, ts := startService(t, "", Config{})
	for _, path := range []string{"/v1/jobs/j-999", "/v1/jobs/j-999/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: got %d, want 404", path, resp.StatusCode)
		}
	}
}
