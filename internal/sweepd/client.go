package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tifs/internal/retry"
)

// DefaultControlTimeout bounds one control-plane attempt (submit,
// status). Event streams are long-lived and bounded by ctx alone.
const DefaultControlTimeout = 10 * time.Second

// Client talks to a sweep service. Submissions are idempotent — the
// service single-flights on the canonical job key — so the client
// retries transient failures freely, waits out 429 Retry-After
// backpressure, and resumes dropped event streams from the last
// delivered sequence number.
type Client struct {
	base string
	http *http.Client
	// Name identifies this client for fairness accounting ("" lets the
	// server fall back to the peer address).
	Name string
	// Timeout bounds one control-plane attempt (0 selects
	// DefaultControlTimeout).
	Timeout time.Duration
	// Retry drives transient-failure handling (submit/status attempts
	// and stream-reconnect pacing).
	Retry retry.Policy
}

// NewClient makes a job client for a service base URL ("http://host:port").
// nil httpClient selects http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(base, "/"),
		http:  httpClient,
		Retry: retry.Policy{Classify: retry.TransientNetwork},
	}
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultControlTimeout
}

// statusError is a non-2xx control-plane answer; 5xx are transient
// (the service or a proxy hiccuped), 4xx are permanent.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("sweepd: server returned %d: %s", e.code, e.msg)
}

func (e *statusError) Transient() bool { return e.code >= 500 }

// busyError is admission backpressure (429): not transient in the
// retry-policy sense (hammering an overloaded server is the wrong
// move) — Submit waits out Retry-After instead.
type busyError struct {
	after time.Duration
	msg   string
}

func (e *busyError) Error() string   { return "sweepd: server busy: " + e.msg }
func (e *busyError) Transient() bool { return false }

func drainBody(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return strings.TrimSpace(string(b))
}

// roundTrip performs one control-plane request and decodes a JobStatus
// from a 2xx answer.
func (c *Client) roundTrip(ctx context.Context, method, url string, body []byte) (JobStatus, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		return JobStatus{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Name != "" {
		req.Header.Set("X-Tifs-Client", c.Name)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return JobStatus{}, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			after = time.Duration(ra) * time.Second
		}
		return JobStatus{}, &busyError{after: after, msg: drainBody(resp)}
	}
	if resp.StatusCode/100 != 2 {
		return JobStatus{}, &statusError{code: resp.StatusCode, msg: drainBody(resp)}
	}
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return JobStatus{}, fmt.Errorf("sweepd: malformed status from server: %w", err)
	}
	return st, nil
}

// Submit sends a job request and returns its (possibly deduplicated)
// status. Transient network failures retry under c.Retry — safe because
// a duplicate POST lands on the same single-flight job — and 429
// backpressure waits out the server's Retry-After before trying again.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	for {
		var st JobStatus
		err := c.Retry.DoContext(ctx, func() error {
			var err error
			st, err = c.roundTrip(ctx, http.MethodPost, c.base+"/v1/jobs", body)
			return err
		})
		var busy *busyError
		if errors.As(err, &busy) {
			select {
			case <-time.After(busy.after):
				continue
			case <-ctx.Done():
				return JobStatus{}, ctx.Err()
			}
		}
		return st, err
	}
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.Retry.DoContext(ctx, func() error {
		var err error
		st, err = c.roundTrip(ctx, http.MethodGet, c.base+"/v1/jobs/"+id, nil)
		return err
	})
	return st, err
}

// Watch streams a job's events (each delivered to onEvent; nil
// discards them) until the job reaches a terminal state, then returns
// its final status. A dropped stream reconnects with ?from=<next seq>,
// so no event is missed or duplicated across reconnects; if the job
// finished during the outage, the terminal event is still on the log.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(Event)) (JobStatus, error) {
	from := 0
	attempt := 0
	for {
		terminal, err := c.stream(ctx, id, &from, onEvent)
		if terminal {
			return c.Status(ctx, id)
		}
		if ctx.Err() != nil {
			return JobStatus{}, ctx.Err()
		}
		if err != nil && !retry.TransientNetwork(err) {
			return JobStatus{}, err
		}
		// Transient drop (or a server that closed a quiet stream):
		// back off briefly and resume from the next unseen event.
		select {
		case <-time.After(c.Retry.Backoff(attempt)):
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		}
		attempt++
	}
}

// stream consumes one events connection; it reports whether the
// terminal event was delivered and advances *from past every event it
// saw.
func (c *Client) stream(ctx context.Context, id string, from *int, onEvent func(Event)) (bool, error) {
	url := c.base + "/v1/jobs/" + id + "/events?from=" + strconv.Itoa(*from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	if c.Name != "" {
		req.Header.Set("X-Tifs-Client", c.Name)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, &statusError{code: resp.StatusCode, msg: drainBody(resp)}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return false, nil
			}
			return false, err
		}
		*from = ev.Seq + 1
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Kind == EvDone || ev.Kind == EvFailed {
			return true, nil
		}
	}
}
