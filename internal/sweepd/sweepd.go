// Package sweepd is the sweep service: the long-running daemon that
// turns the batch engine into a shared resource answering simulation
// and sweep requests from many concurrent clients.
//
// The HTTP surface (mounted next to the blob/manifest protocol by
// cmd/tifsserve):
//
//	POST /v1/jobs             submit a simulation or sweep (JSON)
//	GET  /v1/jobs/{id}        status + results
//	GET  /v1/jobs/{id}/events streaming NDJSON progress (?from=seq resumes)
//
// Three disciplines make it a service rather than a CGI wrapper:
//
//   - Single-flight: every submission canonicalizes to a key; identical
//     submissions — concurrent or later — join the one job under that
//     key instead of spawning duplicate work, and the engine beneath
//     deduplicates at per-simulation granularity besides. N clients
//     asking for the same sweep cost exactly one grid execution, and
//     all of them receive byte-identical output.
//   - Warm hits: the engine's memo tiers (in-process + persistent
//     store) answer repeated work without simulating, so a warm sweep
//     completes in the time it takes to decode cached results.
//   - Admission control: at most MaxActive jobs execute concurrently
//     (each bounded to the engine's simulation parallelism); queued
//     jobs wait in per-client FIFO queues drained round-robin, so one
//     greedy client cannot starve the rest; past the per-client or
//     global queue bounds, submissions get 429 with Retry-After.
//
// Progress streams as NDJSON events: job transitions, per-experiment
// phases, and the engine's per-simulation scheduling events (run,
// store-hit), so a client can watch a sweep execute simulation by
// simulation. Cancellation and outages follow the PR 5 discipline on
// the client side: submissions are idempotent (single-flight absorbs a
// retried POST), and a dropped event stream resumes from the last
// sequence number.
package sweepd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"tifs/internal/engine"
	"tifs/internal/experiments"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/workload"
)

// State is a job's lifecycle position.
type State string

// Job states: queued -> running -> done | failed.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Event kinds, beyond the engine's sim-start/sim-done/trace-start/
// trace-done/store-hit scheduling events which stream through
// unchanged.
const (
	EvQueued          = "queued"
	EvStart           = "start"
	EvExperimentStart = "experiment-start"
	EvExperimentDone  = "experiment-done"
	EvDone            = "done"
	EvFailed          = "failed"
)

// JobRequest is the wire form of a submission. Two shapes share it:
//
//   - a sweep: Experiments (empty = the full registry) with optional
//     Workloads restriction — the output is the experiments' rendered
//     tables, byte-identical to tifsbench;
//   - a single simulation: Workload + Mechanism (+Baseline for the
//     speedup line) — the output is the tifssim report.
//
// Scale, Events, and Cores apply to both. Fields that do not change
// output bytes (client identity, transport) are deliberately absent so
// the canonical key equates every submission that would produce the
// same answer.
type JobRequest struct {
	// Sweep form.
	Experiments []string `json:"experiments,omitempty"`
	Workloads   []string `json:"workloads,omitempty"`

	// Simulation form.
	Workload  string `json:"workload,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`
	Baseline  bool   `json:"baseline,omitempty"`

	// Shared.
	Scale  string `json:"scale,omitempty"`  // small|medium|full (default small)
	Events uint64 `json:"events,omitempty"` // per-core budget (0 = scale default)
	Cores  int    `json:"cores,omitempty"`  // CMP width (default 4)

	// IntraParallelism shards event generation inside each simulation
	// across that many producer goroutines (0/1 = serial). Like the
	// engine's run-level parallelism it never changes output bytes, so
	// it is deliberately excluded from the canonical key: submissions
	// differing only here collapse onto one job.
	IntraParallelism int `json:"intra_parallelism,omitempty"`

	// Speculative engages the speculative merge tier inside each
	// simulation (>= 2 runs a predict/verify/commit worker ahead of
	// the merge thread; 0/1 = serial). Like IntraParallelism it never
	// changes output bytes, so it too is excluded from the canonical
	// key.
	Speculative int `json:"speculative,omitempty"`
}

// Event is one progress notification on a job's stream.
type Event struct {
	Seq   int    `json:"seq"`
	State State  `json:"state"`
	Kind  string `json:"kind"`
	// Phase carries the experiment ID for experiment events and the
	// canonical engine key for simulation/trace events.
	Phase string `json:"phase,omitempty"`
	Msg   string `json:"msg,omitempty"`
	// Counter snapshots at the time of the event (see JobStatus).
	SimsRun   uint64 `json:"sims_run"`
	StoreHits uint64 `json:"store_hits"`
}

// JobStatus is the answer to GET /v1/jobs/{id} and to a submission.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Deduped marks a submission that joined an existing job (the
	// single-flight path) instead of creating one.
	Deduped bool `json:"deduped,omitempty"`
	// Output is the complete rendered result, present once State is
	// done; byte-identical to the equivalent local run.
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// SimsRun/StoreHits/TraceRuns count engine work observed while this
	// job ran. With concurrent jobs sharing the engine the attribution
	// is approximate (shared work counts for every job that overlapped
	// it); a warm hit is exact: zero simulations anywhere.
	SimsRun   uint64 `json:"sims_run"`
	StoreHits uint64 `json:"store_hits"`
	TraceRuns uint64 `json:"trace_runs"`
}

// Config sizes a Service.
type Config struct {
	// Parallelism bounds concurrent simulations in the shared engine
	// (0 = GOMAXPROCS).
	Parallelism int
	// Backend is the persistent memo tier (the served store directory;
	// nil = in-process memo only).
	Backend store.Backend
	// MaxActive bounds concurrently executing jobs (0 selects 2).
	MaxActive int
	// MaxQueued bounds queued-but-not-running jobs across all clients
	// (0 selects 64); MaxQueuedPerClient bounds one client's share
	// (0 selects 4). Past either bound a submission gets 429.
	MaxQueued          int
	MaxQueuedPerClient int
	// MaxJobs bounds retained jobs including completed ones (0 selects
	// 1024); the oldest terminal jobs are evicted past it. An evicted
	// job's results remain warm in the engine/store tiers — resubmitting
	// its key is nearly free.
	MaxJobs int
}

func (c Config) maxActive() int {
	if c.MaxActive <= 0 {
		return 2
	}
	return c.MaxActive
}

func (c Config) maxQueued() int {
	if c.MaxQueued <= 0 {
		return 64
	}
	return c.MaxQueued
}

func (c Config) maxQueuedPerClient() int {
	if c.MaxQueuedPerClient <= 0 {
		return 4
	}
	return c.MaxQueuedPerClient
}

func (c Config) maxJobs() int {
	if c.MaxJobs <= 0 {
		return 1024
	}
	return c.MaxJobs
}

// maxEventsPerJob bounds one job's event log. Past it, engine-level
// scheduling events update the counters but are not appended (phase and
// terminal events always are), so a full-scale sweep cannot balloon the
// stream while the counters stay exact.
const maxEventsPerJob = 4096

// Service owns the shared engine and the job table. Construct with
// New, mount with Register, stop with Close.
type Service struct {
	cfg    Config
	eng    *engine.Engine
	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	cond        *sync.Cond // dispatcher + Close wakeup
	byID        map[string]*job
	byKey       map[string]*job // single-flight: canonical key -> job
	order       []*job          // creation order, for eviction
	queues      map[string][]*job
	clientRing  []string // round-robin order over clients with queued work
	rrNext      int
	queuedTotal int
	active      int
	running     map[*job]bool // jobs currently executing (observer fan-out)
	nextID      int
	closed      bool
}

// New starts a service (its dispatcher runs until Close).
func New(cfg Config) *Service {
	s := &Service{
		cfg:     cfg,
		eng:     engine.New(cfg.Parallelism),
		byID:    map[string]*job{},
		byKey:   map[string]*job{},
		queues:  map[string][]*job{},
		running: map[*job]bool{},
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Backend != nil {
		s.eng.SetBackend(cfg.Backend)
	}
	s.eng.SetObserver(s.observe)
	s.ctx, s.cancel = context.WithCancel(context.Background())
	go s.dispatch()
	return s
}

// Engine exposes the shared scheduler, for run counters in telemetry
// and tests (warm-hit assertions read SimulationsRun).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Close stops admitting work, fails everything still queued, cancels
// running jobs, waits for them to unwind, and releases the shared
// engine's pooled simulation machines (the service owns its engine).
func (s *Service) Close() {
	s.cancel()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		for _, j := range q {
			j.finish("", errors.New("sweepd: service shutting down"))
		}
	}
	s.queues = map[string][]*job{}
	s.clientRing = nil
	s.queuedTotal = 0
	s.cond.Broadcast()
	for s.active > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.eng.Close()
}

// job is one admitted submission and its progress log.
type job struct {
	id     string
	key    string
	client string
	req    JobRequest // normalized
	scale  workload.Scale

	mu        sync.Mutex
	cond      *sync.Cond // event-append broadcast for streamers
	state     State
	events    []Event
	output    string
	errMsg    string
	simsRun   uint64
	storeHits uint64
	traceRuns uint64
}

func newJob(id, key, client string, req JobRequest, scale workload.Scale) *job {
	j := &job{id: id, key: key, client: client, req: req, scale: scale, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	j.appendLocked(EvQueued, "", "")
	return j
}

// appendLocked adds an event; the caller holds (or is constructing
// under) j.mu exclusivity.
func (j *job) appendLocked(kind, phase, msg string) {
	j.events = append(j.events, Event{
		Seq: len(j.events), State: j.state, Kind: kind, Phase: phase, Msg: msg,
		SimsRun: j.simsRun, StoreHits: j.storeHits,
	})
	j.cond.Broadcast()
}

func (j *job) event(kind, phase, msg string) {
	j.mu.Lock()
	j.appendLocked(kind, phase, msg)
	j.mu.Unlock()
}

// engineEvent folds one engine scheduling notification into the job:
// counters always, the event log while it has room.
func (j *job) engineEvent(kind, key string) {
	j.mu.Lock()
	switch kind {
	case engine.EventSimDone:
		j.simsRun++
	case engine.EventStoreHit:
		j.storeHits++
	case engine.EventTraceDone:
		j.traceRuns++
	}
	if len(j.events) < maxEventsPerJob {
		j.appendLocked(kind, key, "")
	} else {
		j.cond.Broadcast() // streamers still see counter movement on the next event
	}
	j.mu.Unlock()
}

func (j *job) start() {
	j.mu.Lock()
	j.state = StateRunning
	j.appendLocked(EvStart, "", "")
	j.mu.Unlock()
}

func (j *job) finish(output string, err error) {
	j.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		j.mu.Unlock()
		return
	}
	if err != nil {
		j.state = StateFailed
		j.errMsg = err.Error()
		j.appendLocked(EvFailed, "", j.errMsg)
	} else {
		j.state = StateDone
		j.output = output
		j.appendLocked(EvDone, "", "")
	}
	j.mu.Unlock()
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID: j.id, Key: j.key, State: j.state,
		Output: j.output, Error: j.errMsg,
		SimsRun: j.simsRun, StoreHits: j.storeHits, TraceRuns: j.traceRuns,
	}
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed
}

// canonicalize validates a request, applies defaults, and derives the
// single-flight key. Everything in the key changes output bytes;
// nothing else is allowed in, so equivalent submissions — whatever
// client, whatever transport — collapse onto one job.
func canonicalize(req JobRequest) (JobRequest, workload.Scale, string, error) {
	if req.Scale == "" {
		req.Scale = "small"
	}
	scale, err := workload.ParseScale(req.Scale)
	if err != nil {
		return req, scale, "", err
	}
	req.Scale = fmt.Sprint(scale)
	if req.Cores <= 0 {
		req.Cores = 4
	}
	if req.IntraParallelism < 0 {
		req.IntraParallelism = 0
	}
	if req.Speculative < 0 {
		req.Speculative = 0
	}

	if req.Workload != "" || req.Mechanism != "" {
		// Simulation form.
		if req.Workload == "" {
			return req, scale, "", errors.New("simulation submission requires workload")
		}
		if len(req.Experiments) > 0 || len(req.Workloads) > 0 {
			return req, scale, "", errors.New("submission mixes the simulation form (workload/mechanism) with the sweep form (experiments/workloads)")
		}
		if _, ok := workload.ByName(req.Workload); !ok {
			return req, scale, "", fmt.Errorf("unknown workload %q (have %v)", req.Workload, workload.Names())
		}
		if req.Mechanism == "" {
			req.Mechanism = "tifs-dedicated"
		}
		if _, err := sim.MechanismByName(req.Mechanism); err != nil {
			return req, scale, "", fmt.Errorf("%v (have %v)", err, sim.MechanismNames())
		}
		key := fmt.Sprintf("sim|%s|%s|%s|%d|%d|%t",
			req.Workload, req.Scale, req.Mechanism, req.Events, req.Cores, req.Baseline)
		return req, scale, key, nil
	}

	// Sweep form. An empty experiment list means the full registry —
	// expanded here so "all" and the explicit list share one key.
	if len(req.Experiments) == 0 {
		req.Experiments = experiments.IDs()
	}
	for _, id := range req.Experiments {
		if _, ok := experiments.ByID(id); !ok {
			return req, scale, "", fmt.Errorf("unknown experiment %q (have %v)", id, experiments.IDs())
		}
	}
	for _, w := range req.Workloads {
		if _, ok := workload.ByName(w); !ok {
			return req, scale, "", fmt.Errorf("unknown workload %q (have %v)", w, workload.Names())
		}
	}
	key := fmt.Sprintf("sweep|%s|%s|%d|%d|%s",
		strings.Join(req.Experiments, ","), req.Scale, req.Events, req.Cores,
		strings.Join(req.Workloads, ","))
	return req, scale, key, nil
}

// submitResult is Submit's outcome: a status plus the HTTP code the
// handler maps it to.
type submitResult struct {
	status     JobStatus
	code       int
	retryAfter int // seconds, for 429
	err        error
}

// Submit admits (or joins) a job for a client. Exported for in-process
// embedding; the HTTP handler is a thin wrapper.
func (s *Service) Submit(req JobRequest, client string) (JobStatus, error) {
	r := s.submit(req, client)
	return r.status, r.err
}

func (s *Service) submit(req JobRequest, client string) submitResult {
	norm, scale, key, err := canonicalize(req)
	if err != nil {
		return submitResult{code: http.StatusBadRequest, err: err}
	}
	if client == "" {
		client = "anonymous"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byKey[key]; ok {
		// Single-flight: identical submission, whatever its state —
		// queued, running, or already done — is the same job.
		st := j.status()
		st.Deduped = true
		return submitResult{status: st, code: http.StatusOK}
	}
	if s.closed {
		return submitResult{code: http.StatusServiceUnavailable, err: errors.New("service shutting down")}
	}
	if s.queuedTotal >= s.cfg.maxQueued() {
		return submitResult{code: http.StatusTooManyRequests,
			retryAfter: 1 + s.queuedTotal,
			err:        fmt.Errorf("admission: %d jobs queued (global bound %d)", s.queuedTotal, s.cfg.maxQueued())}
	}
	if n := len(s.queues[client]); n >= s.cfg.maxQueuedPerClient() {
		return submitResult{code: http.StatusTooManyRequests,
			retryAfter: 1 + n,
			err:        fmt.Errorf("admission: client %q has %d jobs queued (per-client bound %d)", client, n, s.cfg.maxQueuedPerClient())}
	}

	s.nextID++
	j := newJob(fmt.Sprintf("j-%d", s.nextID), key, client, norm, scale)
	s.byID[j.id] = j
	s.byKey[key] = j
	s.order = append(s.order, j)
	if _, ok := s.queues[client]; !ok {
		s.clientRing = append(s.clientRing, client)
	}
	s.queues[client] = append(s.queues[client], j)
	s.queuedTotal++
	s.evictLocked()
	s.cond.Broadcast()
	return submitResult{status: j.status(), code: http.StatusAccepted}
}

// evictLocked trims the oldest terminal jobs past the retention bound.
func (s *Service) evictLocked() {
	if len(s.byID) <= s.cfg.maxJobs() {
		return
	}
	kept := s.order[:0]
	excess := len(s.byID) - s.cfg.maxJobs()
	for _, j := range s.order {
		if excess > 0 && j.terminal() {
			delete(s.byID, j.id)
			if s.byKey[j.key] == j {
				delete(s.byKey, j.key)
			}
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.order = kept
}

// dispatch drains the fairness queues: while a slot is free, pick the
// next client round-robin, pop its oldest job, run it.
func (s *Service) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for !s.closed && (s.active >= s.cfg.maxActive() || s.queuedTotal == 0) {
			s.cond.Wait()
		}
		if s.closed {
			return
		}
		j := s.nextLocked()
		if j == nil {
			continue
		}
		s.active++
		s.running[j] = true
		go s.runJob(j)
	}
}

// nextLocked pops the next queued job in round-robin client order.
func (s *Service) nextLocked() *job {
	for len(s.clientRing) > 0 {
		i := s.rrNext % len(s.clientRing)
		client := s.clientRing[i]
		q := s.queues[client]
		if len(q) == 0 {
			s.clientRing = append(s.clientRing[:i], s.clientRing[i+1:]...)
			delete(s.queues, client)
			continue
		}
		j := q[0]
		if len(q) == 1 {
			delete(s.queues, client)
			s.clientRing = append(s.clientRing[:i], s.clientRing[i+1:]...)
			// rrNext now indexes the element shifted into i: the next
			// client in ring order.
		} else {
			s.queues[client] = q[1:]
			s.rrNext = i + 1
		}
		if len(s.clientRing) > 0 {
			s.rrNext %= len(s.clientRing)
		} else {
			s.rrNext = 0
		}
		s.queuedTotal--
		return j
	}
	return nil
}

func (s *Service) runJob(j *job) {
	defer func() {
		s.mu.Lock()
		delete(s.running, j)
		s.active--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	j.start()
	var out string
	var err error
	if j.req.Workload != "" {
		out, err = s.runSimulation(j)
	} else {
		out, err = s.runSweep(j)
	}
	if err == nil && s.ctx.Err() != nil {
		err = errors.New("sweepd: service shut down mid-run; results are partial")
	}
	j.finish(out, err)
}

// runSweep executes the experiment form on the shared engine.
func (s *Service) runSweep(j *job) (string, error) {
	o := experiments.Options{
		Context: s.ctx, Scale: j.scale, Events: j.req.Events, Cores: j.req.Cores,
		Workloads: j.req.Workloads, Engine: s.eng,
		IntraParallelism: j.req.IntraParallelism,
		Speculative:      j.req.Speculative,
	}
	return experiments.RunSelected(j.req.Experiments, o, func(id string, done bool) {
		if done {
			j.event(EvExperimentDone, id, "")
		} else {
			j.event(EvExperimentStart, id, "")
		}
	})
}

// runSimulation executes the single-simulation form: the mechanism and
// (optionally) its next-line baseline as one engine batch, rendered as
// the tifssim report.
func (s *Service) runSimulation(j *job) (string, error) {
	spec, _ := workload.ByName(j.req.Workload)
	mech, err := sim.MechanismByName(j.req.Mechanism)
	if err != nil {
		return "", err
	}
	jobs := []engine.Job{{Spec: spec, Scale: j.scale, Config: sim.Config{
		Cores: j.req.Cores, EventsPerCore: j.req.Events, Mechanism: mech,
		IntraParallelism: j.req.IntraParallelism,
		Speculative:      j.req.Speculative,
	}}}
	withBaseline := j.req.Baseline && mech.Kind != sim.KindNone
	if withBaseline {
		jobs = append(jobs, engine.Job{Spec: spec, Scale: j.scale, Config: sim.Config{
			Cores: j.req.Cores, EventsPerCore: j.req.Events, Mechanism: sim.Baseline(),
			IntraParallelism: j.req.IntraParallelism,
			Speculative:      j.req.Speculative,
		}})
	}
	results := s.eng.RunAll(s.ctx, jobs)
	if s.ctx.Err() != nil {
		return "", errors.New("sweepd: service shut down mid-run")
	}
	var base *sim.Result
	if withBaseline {
		base = &results[1]
	}
	return sim.Report(results[0], base, j.scale, j.req.Cores), nil
}

// observe fans the engine's scheduling events out to every running job:
// the engine is shared, so any simulation that executes while a job is
// running may be part of that job's grid (deduplicated work belongs to
// every job that overlapped it).
func (s *Service) observe(kind, key string) {
	s.mu.Lock()
	running := make([]*job, 0, len(s.running))
	for j := range s.running {
		running = append(running, j)
	}
	s.mu.Unlock()
	for _, j := range running {
		j.engineEvent(kind, key)
	}
}

// --- HTTP surface ------------------------------------------------------

// maxRequestBytes bounds a submission body.
const maxRequestBytes = 1 << 20

// Register mounts the job API on a mux (Go 1.22 pattern routes).
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
}

// clientName identifies the submitter for fairness accounting: the
// explicit X-Tifs-Client header when present, the peer host otherwise.
func clientName(r *http.Request) string {
	if c := r.Header.Get("X-Tifs-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
	if err != nil {
		http.Error(w, "request truncated", http.StatusServiceUnavailable)
		return
	}
	if len(body) > maxRequestBytes {
		http.Error(w, "request too large", http.StatusRequestEntityTooLarge)
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "malformed job request: "+err.Error(), http.StatusBadRequest)
		return
	}
	res := s.submit(req, clientName(r))
	if res.err != nil {
		if res.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(res.retryAfter))
		}
		http.Error(w, res.err.Error(), res.code)
		return
	}
	writeJSON(w, res.code, res.status)
}

// Status returns a job's current status by ID, for in-process callers.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.byID[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's event log as NDJSON from ?from=seq
// (default 0), flushing each event, until the terminal event is
// delivered or the client goes away. A reconnecting client passes the
// next unseen sequence number and misses nothing.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.byID[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	from := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			http.Error(w, "malformed from", http.StatusBadRequest)
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// A disconnecting client must unpark the cond wait below.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	j.mu.Lock()
	for {
		for from < len(j.events) {
			ev := j.events[from]
			from++
			j.mu.Unlock()
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			if ev.Kind == EvDone || ev.Kind == EvFailed {
				return
			}
			j.mu.Lock()
		}
		if r.Context().Err() != nil {
			j.mu.Unlock()
			return
		}
		if j.state == StateDone || j.state == StateFailed {
			// Terminal and fully delivered (the loop above drained the
			// log, and the terminal event is always the last entry).
			j.mu.Unlock()
			return
		}
		j.cond.Wait()
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
