package isa

// EventSource yields a stream of dynamic basic-block events. Workload
// executors, trace readers, and replay buffers all implement it; the
// simulator and the offline analyses consume it.
type EventSource interface {
	// Next returns the next event. ok is false when the source is
	// exhausted; infinite sources (live workload executors) never return
	// false and are bounded by the caller.
	Next() (ev BlockEvent, ok bool)
}

// BatchSource is an optional EventSource extension: NextBatch fills dst
// with up to len(dst) events and returns how many were written (short
// only when the source is exhausted). Consumers that do not need
// per-event pacing (the next-line-only fetch path, trace extraction)
// use it to amortize interface dispatch and event copies across a whole
// buffer refill.
type BatchSource interface {
	NextBatch(dst []BlockEvent) int
}

// SliceSource adapts an in-memory event slice to an EventSource.
type SliceSource struct {
	events []BlockEvent
	pos    int
}

// NewSliceSource returns a source that yields the given events in order.
// The slice is not copied.
func NewSliceSource(events []BlockEvent) *SliceSource {
	return &SliceSource{events: events}
}

// Next implements EventSource.
func (s *SliceSource) Next() (BlockEvent, bool) {
	if s.pos >= len(s.events) {
		return BlockEvent{}, false
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, true
}

// NextBatch implements BatchSource without per-event copies through the
// EventSource return path.
func (s *SliceSource) NextBatch(dst []BlockEvent) int {
	n := copy(dst, s.events[s.pos:])
	s.pos += n
	return n
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Limit wraps an EventSource and stops after n events; it converts an
// infinite executor into a finite trace of the desired length.
type Limit struct {
	src  EventSource
	left uint64
}

// NewLimit returns a source yielding at most n events from src.
func NewLimit(src EventSource, n uint64) *Limit {
	return &Limit{src: src, left: n}
}

// Next implements EventSource.
func (l *Limit) Next() (BlockEvent, bool) {
	if l.left == 0 {
		return BlockEvent{}, false
	}
	ev, ok := l.src.Next()
	if !ok {
		l.left = 0
		return BlockEvent{}, false
	}
	l.left--
	return ev, true
}

// Collect drains up to n events from src into a fresh slice. If n is 0 the
// source is drained until exhaustion (do not pass 0 with infinite sources).
func Collect(src EventSource, n uint64) []BlockEvent {
	var out []BlockEvent
	if n > 0 {
		out = make([]BlockEvent, 0, n)
	}
	for n == 0 || uint64(len(out)) < n {
		ev, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, ev)
	}
	return out
}
