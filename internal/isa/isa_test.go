package isa

import (
	"testing"
	"testing/quick"
)

func TestAddrBlockRoundTrip(t *testing.T) {
	cases := []struct {
		addr  Addr
		block Block
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{0x1000, 0x40},
		{0xffffffffffffffff, 0x3ffffffffffffff},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Addr(%v).Block() = %v, want %v", c.addr, got, c.block)
		}
	}
}

func TestBlockAddrIsBlockStart(t *testing.T) {
	f := func(b uint32) bool {
		blk := Block(b)
		a := blk.Addr()
		return a.Block() == blk && a.Offset() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrOffset(t *testing.T) {
	if got := Addr(67).Offset(); got != 3 {
		t.Errorf("Addr(67).Offset() = %d, want 3", got)
	}
	if got := Addr(64).Offset(); got != 0 {
		t.Errorf("Addr(64).Offset() = %d, want 0", got)
	}
}

func TestAddrAdd(t *testing.T) {
	a := Addr(0x100)
	if got := a.Add(3); got != 0x10c {
		t.Errorf("Add(3) = %v, want 0x10c", got)
	}
	if got := a.Add(0); got != a {
		t.Errorf("Add(0) = %v, want %v", got, a)
	}
}

func TestBlockNext(t *testing.T) {
	if got := Block(7).Next(); got != 8 {
		t.Errorf("Next() = %v, want 8", got)
	}
}

func TestGeometryConstants(t *testing.T) {
	if InstrsPerBlock != 16 {
		t.Errorf("InstrsPerBlock = %d, want 16", InstrsPerBlock)
	}
	if 1<<BlockShift != BlockBytes {
		t.Errorf("1<<BlockShift = %d, want %d", 1<<BlockShift, BlockBytes)
	}
}

func TestCTKindIsDiscontinuity(t *testing.T) {
	cases := []struct {
		kind  CTKind
		taken bool
		want  bool
	}{
		{CTFallthrough, false, false},
		{CTFallthrough, true, false},
		{CTBranch, false, false},
		{CTBranch, true, true},
		{CTJump, true, true},
		{CTCall, true, true},
		{CTReturn, true, true},
		{CTTrap, true, true},
		{CTTrapReturn, true, true},
	}
	for _, c := range cases {
		if got := c.kind.IsDiscontinuity(c.taken); got != c.want {
			t.Errorf("%v.IsDiscontinuity(%v) = %v, want %v", c.kind, c.taken, got, c.want)
		}
	}
}

func TestCTKindIsConditional(t *testing.T) {
	if !CTBranch.IsConditional() {
		t.Error("CTBranch should be conditional")
	}
	for _, k := range []CTKind{CTFallthrough, CTJump, CTCall, CTReturn, CTTrap, CTTrapReturn} {
		if k.IsConditional() {
			t.Errorf("%v should not be conditional", k)
		}
	}
}

func TestCTKindString(t *testing.T) {
	known := map[CTKind]string{
		CTFallthrough: "fall",
		CTBranch:      "br",
		CTJump:        "jmp",
		CTCall:        "call",
		CTReturn:      "ret",
		CTTrap:        "trap",
		CTTrapReturn:  "rett",
	}
	for k, want := range known {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := CTKind(99).String(); got != "ct(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestBlockEventPCs(t *testing.T) {
	e := BlockEvent{PC: 0x100, Instrs: 4, Kind: CTBranch, Taken: true, Target: 0x400}
	if got := e.LastPC(); got != 0x10c {
		t.Errorf("LastPC = %v, want 0x10c", got)
	}
	if got := e.FallthroughPC(); got != 0x110 {
		t.Errorf("FallthroughPC = %v, want 0x110", got)
	}
	if got := e.NextPC(); got != 0x400 {
		t.Errorf("NextPC (taken) = %v, want 0x400", got)
	}
	e.Taken = false
	if got := e.NextPC(); got != 0x110 {
		t.Errorf("NextPC (not taken) = %v, want 0x110", got)
	}
}

func TestBlockEventNextPCFallthroughKind(t *testing.T) {
	e := BlockEvent{PC: 0x100, Instrs: 16, Kind: CTFallthrough, Taken: true, Target: 0xdead}
	if got := e.NextPC(); got != e.FallthroughPC() {
		t.Errorf("CTFallthrough NextPC = %v, want %v", got, e.FallthroughPC())
	}
}

func TestBlockEventBlocks(t *testing.T) {
	// Block starting mid cache block and spanning into the next.
	e := BlockEvent{PC: 0x3c, Instrs: 3} // covers 0x3c..0x44: blocks 0 and 1
	blocks := e.Blocks()
	if len(blocks) != 2 || blocks[0] != 0 || blocks[1] != 1 {
		t.Errorf("Blocks() = %v, want [0 1]", blocks)
	}

	// Single-instruction block: exactly one cache block.
	e = BlockEvent{PC: 0x40, Instrs: 1}
	blocks = e.Blocks()
	if len(blocks) != 1 || blocks[0] != 1 {
		t.Errorf("Blocks() = %v, want [1]", blocks)
	}
}

func TestBlockEventBlocksSpanMany(t *testing.T) {
	// 64 instructions from a block-aligned start cover exactly 4 blocks.
	e := BlockEvent{PC: 0x0, Instrs: 64}
	blocks := e.Blocks()
	if len(blocks) != 4 {
		t.Fatalf("len(Blocks()) = %d, want 4", len(blocks))
	}
	for i, b := range blocks {
		if b != Block(i) {
			t.Errorf("blocks[%d] = %v, want %d", i, b, i)
		}
	}
}

func TestVisitBlocksMatchesBlocks(t *testing.T) {
	f := func(pcRaw uint32, n uint8) bool {
		pc := Addr(pcRaw)
		instrs := int(n%80) + 1
		e := BlockEvent{PC: pc, Instrs: instrs}
		var visited []Block
		e.VisitBlocks(func(b Block) bool {
			visited = append(visited, b)
			return true
		})
		want := e.Blocks()
		if len(visited) != len(want) {
			return false
		}
		for i := range want {
			if visited[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVisitBlocksEarlyStop(t *testing.T) {
	e := BlockEvent{PC: 0, Instrs: 64} // 4 blocks
	count := 0
	e.VisitBlocks(func(b Block) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d blocks, want 2", count)
	}
}

func TestDiscontinuityEvent(t *testing.T) {
	e := BlockEvent{PC: 0, Instrs: 1, Kind: CTBranch, Taken: true, Target: 0x1000}
	if !e.Discontinuity() {
		t.Error("taken branch should be a discontinuity")
	}
	e.Taken = false
	if e.Discontinuity() {
		t.Error("not-taken branch should not be a discontinuity")
	}
}
