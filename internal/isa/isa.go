// Package isa defines the address arithmetic and control-flow vocabulary
// shared by every layer of the simulator: physical addresses, 64-byte
// instruction-cache block geometry, control-transfer kinds, and the
// block-granularity fetch events the synthetic workloads emit.
//
// The modeled ISA follows the paper's UltraSPARC III target in the only two
// respects that matter to instruction prefetching: instructions are a fixed
// 4 bytes, and instruction-cache blocks are 64 bytes (16 instructions).
package isa

import "fmt"

// Geometry constants for the modeled machine. These mirror Table II of the
// paper: 64-byte cache lines and fixed 4-byte instructions.
const (
	// InstrBytes is the size of one instruction in bytes.
	InstrBytes = 4
	// BlockBytes is the size of one cache block in bytes.
	BlockBytes = 64
	// BlockShift is log2(BlockBytes).
	BlockShift = 6
	// InstrsPerBlock is the number of instructions in a full cache block.
	InstrsPerBlock = BlockBytes / InstrBytes
)

// Addr is a physical byte address. The workload generator assigns code
// regions disjoint physical ranges, so no translation layer is needed; the
// paper's IMLs likewise record physical addresses (Section 5.1.1).
type Addr uint64

// Block is a cache-block number: the address with the low BlockShift bits
// removed. All cache and predictor structures operate on Blocks.
type Block uint64

// Block returns the cache block containing the address.
func (a Addr) Block() Block { return Block(a >> BlockShift) }

// Offset returns the byte offset of the address within its cache block.
func (a Addr) Offset() uint64 { return uint64(a) & (BlockBytes - 1) }

// Add returns the address advanced by n instructions.
func (a Addr) Add(n int) Addr { return a + Addr(n*InstrBytes) }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Addr returns the first byte address of the block.
func (b Block) Addr() Addr { return Addr(b << BlockShift) }

// Next returns the immediately following block (sequential successor).
func (b Block) Next() Block { return b + 1 }

// String formats the block number in hex.
func (b Block) String() string { return fmt.Sprintf("blk:0x%x", uint64(b)) }

// CTKind identifies how a basic block terminates. Only the control-transfer
// behaviour matters to instruction fetch; arithmetic semantics do not exist
// in this model.
type CTKind uint8

// Control-transfer kinds.
const (
	// CTFallthrough means the block ends without a taken transfer: fetch
	// continues at the next sequential instruction. Not-taken conditional
	// branches report CTBranch with Taken == false, so CTFallthrough is
	// reserved for straight-line code that merely crossed a block boundary.
	CTFallthrough CTKind = iota
	// CTBranch is a conditional branch; Taken records the outcome.
	CTBranch
	// CTJump is an unconditional direct jump.
	CTJump
	// CTCall is a function call (direct or indirect).
	CTCall
	// CTReturn is a function return.
	CTReturn
	// CTTrap is an entry into OS/trap code (interrupt, syscall, context
	// switch). Traps also act as serializing events that drain the ROB.
	CTTrap
	// CTTrapReturn resumes user execution after a trap.
	CTTrapReturn
)

// String returns a short mnemonic for the control-transfer kind.
func (k CTKind) String() string {
	switch k {
	case CTFallthrough:
		return "fall"
	case CTBranch:
		return "br"
	case CTJump:
		return "jmp"
	case CTCall:
		return "call"
	case CTReturn:
		return "ret"
	case CTTrap:
		return "trap"
	case CTTrapReturn:
		return "rett"
	default:
		return fmt.Sprintf("ct(%d)", uint8(k))
	}
}

// IsDiscontinuity reports whether the terminator, with the given outcome,
// redirects fetch away from the sequential path. Discontinuities are what
// defeat next-line prefetching (paper Section 3.1).
func (k CTKind) IsDiscontinuity(taken bool) bool {
	switch k {
	case CTBranch:
		return taken
	case CTJump, CTCall, CTReturn, CTTrap, CTTrapReturn:
		return true
	default:
		return false
	}
}

// IsConditional reports whether the terminator consults a branch predictor
// direction (only conditional branches do).
func (k CTKind) IsConditional() bool { return k == CTBranch }

// BlockEvent is one dynamic basic block: a run of sequential instructions
// ending in (at most) one control transfer. The workload executor emits a
// stream of BlockEvents per core; the fetch unit expands each event into the
// cache-block accesses it covers.
type BlockEvent struct {
	// PC is the address of the first instruction of the basic block.
	PC Addr
	// Instrs is the number of instructions in the block, >= 1.
	Instrs int
	// Kind is the terminating control transfer.
	Kind CTKind
	// Taken is the branch outcome for CTBranch terminators; all other
	// transfer kinds are unconditionally taken and leave Taken set.
	Taken bool
	// Target is the next PC when the transfer is taken.
	Target Addr
	// InnerLoop marks a backward CTBranch that closes an innermost loop.
	// The Fig. 10 lookahead analysis excludes such branches, as a simple
	// hardware filter could too (paper Section 6.2).
	InnerLoop bool
	// Serializing marks a block that begins with synchronization
	// instructions which drain the ROB before fetch resumes — the paper's
	// scheduler-entry scenario (Section 3.1) that fully exposes the
	// subsequent instruction-cache misses.
	Serializing bool
}

// LastPC returns the address of the final instruction in the block.
func (e BlockEvent) LastPC() Addr { return e.PC.Add(e.Instrs - 1) }

// FallthroughPC returns the address immediately after the block, i.e. the
// next PC when the terminator is not taken.
func (e BlockEvent) FallthroughPC() Addr { return e.PC.Add(e.Instrs) }

// NextPC returns the PC the fetch unit moves to after this block, given the
// recorded outcome.
func (e BlockEvent) NextPC() Addr {
	if e.Kind == CTBranch && !e.Taken {
		return e.FallthroughPC()
	}
	if e.Kind == CTFallthrough {
		return e.FallthroughPC()
	}
	return e.Target
}

// Discontinuity reports whether fetch after this block is non-sequential.
func (e BlockEvent) Discontinuity() bool { return e.Kind.IsDiscontinuity(e.Taken) }

// Blocks returns the cache blocks covered by the basic block, in fetch
// order. Most basic blocks fit in one or two cache blocks; the slice is
// freshly allocated. Use VisitBlocks on hot paths.
func (e BlockEvent) Blocks() []Block {
	first := e.PC.Block()
	last := e.LastPC().Block()
	out := make([]Block, 0, last-first+1)
	for b := first; b <= last; b++ {
		out = append(out, b)
	}
	return out
}

// VisitBlocks calls fn for each cache block covered by the basic block, in
// fetch order, without allocating. fn returns false to stop early.
func (e BlockEvent) VisitBlocks(fn func(Block) bool) {
	first := e.PC.Block()
	last := e.LastPC().Block()
	for b := first; b <= last; b++ {
		if !fn(b) {
			return
		}
	}
}
