package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"tifs/internal/isa"
)

// Binary trace format: a short header followed by delta/varint-packed
// records. PC and block numbers are delta-encoded against the previous
// record (zigzag varint), which makes instruction traces compact: most
// deltas are small.
const (
	magic         = "TIFS"
	formatVersion = 1

	kindEvents byte = 1
	kindMisses byte = 2
)

// event flag bits.
const (
	flagTaken       = 1 << 0
	flagInnerLoop   = 1 << 1
	flagSerializing = 1 << 2
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func writeHeader(w *bufio.Writer, kind byte) error {
	if _, err := w.WriteString(magic); err != nil {
		return err
	}
	if err := w.WriteByte(formatVersion); err != nil {
		return err
	}
	return w.WriteByte(kind)
}

func readHeader(r *bufio.Reader, wantKind byte) error {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return fmt.Errorf("trace: bad magic %q", m)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return err
	}
	if ver != formatVersion {
		return fmt.Errorf("trace: unsupported version %d", ver)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return err
	}
	if kind != wantKind {
		return fmt.Errorf("trace: stream kind %d, want %d", kind, wantKind)
	}
	return nil
}

func putUvarint(w *bufio.Writer, buf []byte, v uint64) error {
	n := binary.PutUvarint(buf, v)
	_, err := w.Write(buf[:n])
	return err
}

// EventWriter serializes BlockEvents.
type EventWriter struct {
	w      *bufio.Writer
	buf    []byte
	prevPC isa.Addr
	count  uint64
}

// NewEventWriter starts an event stream on w.
func NewEventWriter(w io.Writer) (*EventWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, kindEvents); err != nil {
		return nil, err
	}
	return &EventWriter{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

// Write appends one event.
func (ew *EventWriter) Write(ev isa.BlockEvent) error {
	if err := putUvarint(ew.w, ew.buf, zigzag(int64(ev.PC)-int64(ew.prevPC))); err != nil {
		return err
	}
	ew.prevPC = ev.PC
	if err := putUvarint(ew.w, ew.buf, uint64(ev.Instrs)); err != nil {
		return err
	}
	flags := byte(0)
	if ev.Taken {
		flags |= flagTaken
	}
	if ev.InnerLoop {
		flags |= flagInnerLoop
	}
	if ev.Serializing {
		flags |= flagSerializing
	}
	if err := ew.w.WriteByte(byte(ev.Kind)<<3 | flags); err != nil {
		return err
	}
	// Target is meaningful for everything but pure fallthrough.
	if ev.Kind != isa.CTFallthrough {
		if err := putUvarint(ew.w, ew.buf, zigzag(int64(ev.Target)-int64(ev.PC))); err != nil {
			return err
		}
	}
	ew.count++
	return nil
}

// Count returns the number of events written.
func (ew *EventWriter) Count() uint64 { return ew.count }

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (ew *EventWriter) Flush() error { return ew.w.Flush() }

// EventReader deserializes an event stream; it implements
// isa.EventSource.
type EventReader struct {
	r      *bufio.Reader
	prevPC isa.Addr
	err    error
}

// NewEventReader opens an event stream from r.
func NewEventReader(r io.Reader) (*EventReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if err := readHeader(br, kindEvents); err != nil {
		return nil, err
	}
	return &EventReader{r: br}, nil
}

// Next implements isa.EventSource. The stream ends cleanly at EOF;
// corruption is reported by Err.
func (er *EventReader) Next() (isa.BlockEvent, bool) {
	if er.err != nil {
		return isa.BlockEvent{}, false
	}
	d, err := binary.ReadUvarint(er.r)
	if err == io.EOF {
		return isa.BlockEvent{}, false
	}
	if err != nil {
		er.err = err
		return isa.BlockEvent{}, false
	}
	var ev isa.BlockEvent
	ev.PC = isa.Addr(int64(er.prevPC) + unzigzag(d))
	er.prevPC = ev.PC

	instrs, err := binary.ReadUvarint(er.r)
	if err != nil {
		er.err = fmt.Errorf("trace: truncated event: %w", err)
		return isa.BlockEvent{}, false
	}
	ev.Instrs = int(instrs)

	kb, err := er.r.ReadByte()
	if err != nil {
		er.err = fmt.Errorf("trace: truncated event: %w", err)
		return isa.BlockEvent{}, false
	}
	ev.Kind = isa.CTKind(kb >> 3)
	ev.Taken = kb&flagTaken != 0
	ev.InnerLoop = kb&flagInnerLoop != 0
	ev.Serializing = kb&flagSerializing != 0

	if ev.Kind != isa.CTFallthrough {
		td, err := binary.ReadUvarint(er.r)
		if err != nil {
			er.err = fmt.Errorf("trace: truncated event: %w", err)
			return isa.BlockEvent{}, false
		}
		ev.Target = isa.Addr(int64(ev.PC) + unzigzag(td))
	}
	return ev, true
}

// Err returns the first decode error, if any (io.EOF is a clean end and
// not reported).
func (er *EventReader) Err() error { return er.err }

// MissWriter serializes MissRecords.
type MissWriter struct {
	w       *bufio.Writer
	buf     []byte
	prevBlk isa.Block
	prevSeq uint64
	count   uint64
}

// NewMissWriter starts a miss stream on w.
func NewMissWriter(w io.Writer) (*MissWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw, kindMisses); err != nil {
		return nil, err
	}
	return &MissWriter{w: bw, buf: make([]byte, binary.MaxVarintLen64)}, nil
}

// Write appends one miss record.
func (mw *MissWriter) Write(m MissRecord) error {
	if err := putUvarint(mw.w, mw.buf, zigzag(int64(m.Block)-int64(mw.prevBlk))); err != nil {
		return err
	}
	mw.prevBlk = m.Block
	if err := putUvarint(mw.w, mw.buf, m.Seq-mw.prevSeq); err != nil {
		return err
	}
	mw.prevSeq = m.Seq
	if err := putUvarint(mw.w, mw.buf, uint64(m.Branches)); err != nil {
		return err
	}
	seq := byte(0)
	if m.Sequential {
		seq = 1
	}
	if err := mw.w.WriteByte(seq); err != nil {
		return err
	}
	mw.count++
	return nil
}

// Count returns the number of records written.
func (mw *MissWriter) Count() uint64 { return mw.count }

// Flush flushes buffered output.
func (mw *MissWriter) Flush() error { return mw.w.Flush() }

// MissReader deserializes a miss stream.
type MissReader struct {
	r       *bufio.Reader
	prevBlk isa.Block
	prevSeq uint64
	err     error
}

// NewMissReader opens a miss stream from r.
func NewMissReader(r io.Reader) (*MissReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if err := readHeader(br, kindMisses); err != nil {
		return nil, err
	}
	return &MissReader{r: br}, nil
}

// Next returns the next record; ok is false at end of stream or on error
// (see Err).
func (mr *MissReader) Next() (MissRecord, bool) {
	if mr.err != nil {
		return MissRecord{}, false
	}
	d, err := binary.ReadUvarint(mr.r)
	if err == io.EOF {
		return MissRecord{}, false
	}
	if err != nil {
		mr.err = err
		return MissRecord{}, false
	}
	var m MissRecord
	m.Block = isa.Block(int64(mr.prevBlk) + unzigzag(d))
	mr.prevBlk = m.Block

	ds, err := binary.ReadUvarint(mr.r)
	if err != nil {
		mr.err = fmt.Errorf("trace: truncated miss: %w", err)
		return MissRecord{}, false
	}
	m.Seq = mr.prevSeq + ds
	mr.prevSeq = m.Seq

	br, err := binary.ReadUvarint(mr.r)
	if err != nil {
		mr.err = fmt.Errorf("trace: truncated miss: %w", err)
		return MissRecord{}, false
	}
	m.Branches = int(br)

	sb, err := mr.r.ReadByte()
	if err != nil {
		mr.err = fmt.Errorf("trace: truncated miss: %w", err)
		return MissRecord{}, false
	}
	m.Sequential = sb != 0
	return m, true
}

// Err returns the first decode error, if any.
func (mr *MissReader) Err() error { return mr.err }

// ReadAllMisses drains a miss stream into a slice.
func ReadAllMisses(r io.Reader) ([]MissRecord, error) {
	mr, err := NewMissReader(r)
	if err != nil {
		return nil, err
	}
	var out []MissRecord
	for {
		m, ok := mr.Next()
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out, mr.Err()
}
