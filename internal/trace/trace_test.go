package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"tifs/internal/isa"
	"tifs/internal/workload"
)

// seqEvents builds a straight-line stream of single-block basic blocks
// starting at pc.
func seqEvents(pc isa.Addr, n int) []isa.BlockEvent {
	evs := make([]isa.BlockEvent, n)
	for i := range evs {
		evs[i] = isa.BlockEvent{PC: pc, Instrs: isa.InstrsPerBlock, Kind: isa.CTFallthrough}
		pc = pc.Add(isa.InstrsPerBlock)
	}
	evs[n-1].Kind = isa.CTReturn
	evs[n-1].Taken = true
	evs[n-1].Target = 0
	return evs
}

func TestExtractorNextLineHidesSequentialMisses(t *testing.T) {
	// A long sequential run: the first block misses; the next-line
	// prefetcher (depth 2) keeps all later blocks resident.
	evs := seqEvents(0x10000, 50)
	misses := ExtractMisses(isa.NewSliceSource(evs), uint64(len(evs)), ExtractorConfig{})
	if len(misses) != 1 {
		t.Fatalf("sequential run produced %d misses, want 1", len(misses))
	}
	if misses[0].Block != isa.Addr(0x10000).Block() {
		t.Errorf("miss block = %v", misses[0].Block)
	}
}

func TestExtractorDiscontinuityMisses(t *testing.T) {
	// Jumps between far-apart blocks: every target misses (cold cache).
	var evs []isa.BlockEvent
	for i := 0; i < 10; i++ {
		pc := isa.Addr(0x100000 * (i + 1))
		next := isa.Addr(0x100000 * (i + 2))
		evs = append(evs, isa.BlockEvent{PC: pc, Instrs: 4, Kind: isa.CTJump, Taken: true, Target: next})
	}
	misses := ExtractMisses(isa.NewSliceSource(evs), uint64(len(evs)), ExtractorConfig{})
	if len(misses) != 10 {
		t.Fatalf("got %d misses, want 10", len(misses))
	}
	for _, m := range misses {
		if m.Sequential {
			t.Errorf("far jump marked sequential: %+v", m)
		}
	}
}

func TestExtractorSecondPassHitsL1(t *testing.T) {
	// A small loop fits in L1: the second traversal misses nothing.
	evs := seqEvents(0x20000, 20)
	src := isa.NewSliceSource(append(append([]isa.BlockEvent{}, evs...), evs...))
	e := NewExtractor(ExtractorConfig{}, nil)
	e.Run(src, uint64(2*len(evs)))
	if e.Misses() != 1 {
		t.Errorf("two passes over cacheable code: %d misses, want 1", e.Misses())
	}
}

func TestExtractorBranchCounting(t *testing.T) {
	// Pattern: miss, then three non-inner-loop branches (not taken,
	// staying in cached blocks), then a far jump causing a miss.
	pc := isa.Addr(0x30000)
	far := isa.Addr(0x900000)
	evs := []isa.BlockEvent{
		{PC: pc, Instrs: 4, Kind: isa.CTBranch, Taken: false, Target: pc},
		{PC: pc.Add(4), Instrs: 4, Kind: isa.CTBranch, Taken: false, Target: pc},
		{PC: pc.Add(8), Instrs: 4, Kind: isa.CTBranch, Taken: false, Target: pc, InnerLoop: true},
		{PC: pc.Add(12), Instrs: 4, Kind: isa.CTJump, Taken: true, Target: far},
		{PC: far, Instrs: 4, Kind: isa.CTReturn, Taken: true, Target: pc},
	}
	misses := ExtractMisses(isa.NewSliceSource(evs), uint64(len(evs)), ExtractorConfig{})
	if len(misses) != 2 {
		t.Fatalf("got %d misses: %+v", len(misses), misses)
	}
	// The far miss saw 2 non-inner-loop branches since the first miss
	// (the InnerLoop one is excluded).
	if misses[1].Branches != 2 {
		t.Errorf("Branches = %d, want 2", misses[1].Branches)
	}
}

func TestExtractorSequentialFlag(t *testing.T) {
	// Force sequential misses by disabling next-line depth via a custom
	// config (depth cannot be 0 = default, so use a tiny L1 and jumps
	// landing exactly one block apart but beyond next-line reach).
	// Simpler: depth default 2; jump 3 blocks ahead is not sequential.
	// Construct consecutive far-region misses one block apart via jumps.
	base := isa.Addr(0x40000)
	evs := []isa.BlockEvent{
		{PC: base, Instrs: 4, Kind: isa.CTJump, Taken: true, Target: 0x800000},
		{PC: 0x800000, Instrs: 4, Kind: isa.CTJump, Taken: true, Target: 0x900000},
		// 0x900000 block = 0x900000>>6; previous miss 0x800000>>6; not adjacent.
		{PC: 0x900000, Instrs: 4, Kind: isa.CTReturn, Taken: true, Target: base},
	}
	misses := ExtractMisses(isa.NewSliceSource(evs), uint64(len(evs)), ExtractorConfig{})
	for i, m := range misses {
		if i > 0 && m.Block == misses[i-1].Block+1 && !m.Sequential {
			t.Errorf("adjacent miss not flagged sequential")
		}
	}
}

func TestExtractorMultiBlockEvent(t *testing.T) {
	// One basic block spanning 4 cache blocks in a cold cache: the first
	// block misses, next-line covers the rest.
	evs := []isa.BlockEvent{{PC: 0x50000, Instrs: 64, Kind: isa.CTReturn, Taken: true, Target: 0}}
	e := NewExtractor(ExtractorConfig{}, nil)
	e.Feed(evs[0])
	if e.Accesses() != 4 {
		t.Errorf("Accesses = %d, want 4", e.Accesses())
	}
	if e.Misses() != 1 {
		t.Errorf("Misses = %d, want 1 (next-line covers the rest)", e.Misses())
	}
}

func TestExtractorOnRealWorkload(t *testing.T) {
	spec, _ := workload.ByName("OLTP-DB2")
	g := workload.Build(spec, workload.ScaleSmall, 1)
	var count int
	e := NewExtractor(ExtractorConfig{}, func(m MissRecord) { count++ })
	consumed := e.Run(g.Sources()[0], 120_000)
	if consumed != 120_000 {
		t.Fatalf("consumed %d events", consumed)
	}
	if count == 0 {
		t.Fatal("workload produced no misses")
	}
	mpke := e.MPKE()
	// OLTP must miss substantially (working set >> L1) but not on every
	// event (loops and straight-line runs hit).
	if mpke < 2 || mpke > 400 {
		t.Errorf("OLTP MPKE = %f, outside sane range", mpke)
	}
}

func TestDSSMissesLessThanOLTP(t *testing.T) {
	rate := func(name string) float64 {
		spec, _ := workload.ByName(name)
		g := workload.Build(spec, workload.ScaleSmall, 1)
		e := NewExtractor(ExtractorConfig{}, nil)
		e.Run(g.Sources()[0], 120_000)
		return e.MPKE()
	}
	oltp := rate("OLTP-Oracle")
	dss := rate("DSS-Qry17")
	if dss >= oltp {
		t.Errorf("DSS MPKE (%f) should be below OLTP (%f)", dss, oltp)
	}
}

func TestDropSequentialAndBlocks(t *testing.T) {
	recs := []MissRecord{
		{Block: 1}, {Block: 2, Sequential: true}, {Block: 9},
	}
	kept := DropSequential(recs)
	if len(kept) != 2 || kept[0].Block != 1 || kept[1].Block != 9 {
		t.Errorf("DropSequential = %+v", kept)
	}
	blocks := Blocks(recs)
	if len(blocks) != 3 || blocks[2] != 9 {
		t.Errorf("Blocks = %v", blocks)
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	spec, _ := workload.ByName("Web-Zeus")
	g := workload.Build(spec, workload.ScaleSmall, 1)
	events := isa.Collect(isa.NewLimit(g.Sources()[0], 20_000), 20_000)

	var buf bytes.Buffer
	w, err := NewEventWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewEventReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("stream ended at %d: %v", i, r.Err())
		}
		if got != want {
			t.Fatalf("event %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("stream should be exhausted")
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
}

func TestMissCodecRoundTrip(t *testing.T) {
	f := func(blocks []uint32, branches []uint8) bool {
		if len(blocks) == 0 {
			return true
		}
		recs := make([]MissRecord, len(blocks))
		var seq uint64
		for i, b := range blocks {
			br := 0
			if i < len(branches) {
				br = int(branches[i])
			}
			seq += uint64(br) + 1
			recs[i] = MissRecord{
				Block:      isa.Block(b),
				Seq:        seq,
				Branches:   br,
				Sequential: i > 0 && isa.Block(b) == recs[i-1].Block+1,
			}
		}
		var buf bytes.Buffer
		w, err := NewMissWriter(&buf)
		if err != nil {
			return false
		}
		for _, m := range recs {
			if w.Write(m) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAllMisses(&buf)
		if err != nil || len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewEventReader(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewMissReader(bytes.NewReader([]byte{})); err == nil {
		t.Error("empty stream accepted")
	}
	// Events header on a miss reader.
	var buf bytes.Buffer
	w, _ := NewEventWriter(&buf)
	w.Flush()
	if _, err := NewMissReader(&buf); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestReaderReportsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewEventWriter(&buf)
	w.Write(isa.BlockEvent{PC: 0x1000, Instrs: 8, Kind: isa.CTJump, Taken: true, Target: 0x2000})
	w.Write(isa.BlockEvent{PC: 0x2000, Instrs: 8, Kind: isa.CTJump, Taken: true, Target: 0x3000})
	w.Flush()
	full := buf.Bytes()
	// Cut mid-record (drop the last 2 bytes).
	r, err := NewEventReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() == nil {
		t.Error("truncation not reported")
	}
	if n != 1 {
		t.Errorf("decoded %d events before truncation, want 1", n)
	}
}

func TestEventCodecCompact(t *testing.T) {
	spec, _ := workload.ByName("DSS-Qry2")
	g := workload.Build(spec, workload.ScaleSmall, 1)
	events := isa.Collect(isa.NewLimit(g.Sources()[0], 50_000), 50_000)
	var buf bytes.Buffer
	w, _ := NewEventWriter(&buf)
	for _, ev := range events {
		w.Write(ev)
	}
	w.Flush()
	perEvent := float64(buf.Len()) / float64(len(events))
	// A naive fixed encoding is 8+8+8+1+... ~26 bytes; delta coding should
	// be far smaller.
	if perEvent > 12 {
		t.Errorf("%.1f bytes/event, expected compact encoding", perEvent)
	}
}

func TestLimitAndCollect(t *testing.T) {
	evs := seqEvents(0x1000, 10)
	lim := isa.NewLimit(isa.NewSliceSource(evs), 3)
	got := isa.Collect(lim, 100)
	if len(got) != 3 {
		t.Errorf("Collect(limit 3) = %d events", len(got))
	}
	// Collect with n=0 drains fully.
	got = isa.Collect(isa.NewSliceSource(evs), 0)
	if len(got) != 10 {
		t.Errorf("Collect(0) = %d events", len(got))
	}
}
