package trace

import (
	"bytes"
	"testing"

	"tifs/internal/isa"
	"tifs/internal/workload"
)

// BenchmarkTraceCodec measures encode+decode round trips of both stream
// kinds over real workload-shaped data. The persistent result store
// frames its miss-trace payloads with this codec, so regressions here
// show up before they surface as store slowdowns.
func BenchmarkTraceCodec(b *testing.B) {
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		b.Fatal("workload missing")
	}
	gen := workload.Build(spec, workload.ScaleSmall, 1)

	b.Run("events", func(b *testing.B) {
		const n = 20_000
		gen.Reset()
		src := gen.Sources()[0]
		events := make([]isa.BlockEvent, n)
		for i := range events {
			ev, ok := src.Next()
			if !ok {
				b.Fatal("source exhausted")
			}
			events[i] = ev
		}
		var buf bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			ew, err := NewEventWriter(&buf)
			if err != nil {
				b.Fatal(err)
			}
			for _, ev := range events {
				if err := ew.Write(ev); err != nil {
					b.Fatal(err)
				}
			}
			if err := ew.Flush(); err != nil {
				b.Fatal(err)
			}
			er, err := NewEventReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			decoded := 0
			for {
				ev, ok := er.Next()
				if !ok {
					break
				}
				if ev.Instrs < 0 {
					b.Fatal("bad event")
				}
				decoded++
			}
			if er.Err() != nil {
				b.Fatal(er.Err())
			}
			if decoded != n {
				b.Fatalf("decoded %d of %d events", decoded, n)
			}
		}
		b.ReportMetric(float64(uint64(b.N)*n)/b.Elapsed().Seconds(), "events/s")
	})

	b.Run("misses", func(b *testing.B) {
		gen.Reset()
		misses := ExtractMisses(gen.Sources()[0], 60_000, ExtractorConfig{})
		if len(misses) == 0 {
			b.Fatal("no misses extracted")
		}
		var buf bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			mw, err := NewMissWriter(&buf)
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range misses {
				if err := mw.Write(m); err != nil {
					b.Fatal(err)
				}
			}
			if err := mw.Flush(); err != nil {
				b.Fatal(err)
			}
			mr, err := NewMissReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			decoded := 0
			for {
				if _, ok := mr.Next(); !ok {
					break
				}
				decoded++
			}
			if mr.Err() != nil {
				b.Fatal(mr.Err())
			}
			if decoded != len(misses) {
				b.Fatalf("decoded %d of %d misses", decoded, len(misses))
			}
		}
		b.ReportMetric(float64(uint64(b.N)*uint64(len(misses)))/b.Elapsed().Seconds(), "misses/s")
	})
}
