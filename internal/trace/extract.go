// Package trace turns raw fetch-event streams into the L1 instruction
// miss traces that TIFS and all offline analyses operate on, and provides
// a compact binary serialization for storing and replaying both kinds of
// streams.
//
// The paper's definition of a "miss" (Section 4.1) is an instruction
// fetch that can be satisfied neither by the 64 KB 2-way L1-I cache nor
// by a next-line prefetcher running two blocks ahead of the fetch unit.
// Extractor implements exactly that filter functionally (no timing).
package trace

import (
	"tifs/internal/cache"
	"tifs/internal/isa"
)

// MissRecord describes one filtered L1-I miss.
type MissRecord struct {
	// Block is the missing instruction cache block.
	Block isa.Block
	// Seq is the index of the event (basic block) that triggered the miss
	// within the consumed stream.
	Seq uint64
	// Branches is the number of non-inner-loop conditional branches
	// executed since the previous miss; the Fig. 10 lookahead analysis
	// accumulates these counts.
	Branches int
	// Sequential reports that this miss is to the block immediately after
	// the previous miss (Fig. 5 removes such misses to model a perfect
	// next-line prefetcher).
	Sequential bool
}

// ExtractorConfig parameterizes miss extraction.
type ExtractorConfig struct {
	// L1 is the instruction cache geometry; zero value selects the
	// paper's 64 KB 2-way.
	L1 cache.Config
	// NextLineDepth is how many sequential blocks ahead the next-line
	// prefetcher keeps resident; zero selects the paper's 2.
	NextLineDepth int
}

func (c ExtractorConfig) withDefaults() ExtractorConfig {
	if c.L1.SizeBytes == 0 {
		c.L1 = cache.Config{SizeBytes: 64 * 1024, Assoc: 2}
	}
	if c.NextLineDepth == 0 {
		c.NextLineDepth = 2
	}
	return c
}

// Extractor filters a fetch-event stream into miss records. Feed it
// events directly, or use Run to pull from a source. Misses are delivered
// to the onMiss callback so large traces never need to be materialized.
type Extractor struct {
	cfg    ExtractorConfig
	l1     *cache.Cache
	onMiss func(MissRecord)

	seq      uint64
	branches int
	prevMiss isa.Block
	havePrev bool

	accesses uint64
	misses   uint64
}

// NewExtractor creates an extractor delivering misses to onMiss.
func NewExtractor(cfg ExtractorConfig, onMiss func(MissRecord)) *Extractor {
	cfg = cfg.withDefaults()
	return &Extractor{
		cfg:    cfg,
		l1:     cache.New(cfg.L1),
		onMiss: onMiss,
	}
}

// Feed processes one fetch event.
func (e *Extractor) Feed(ev isa.BlockEvent) {
	ev.VisitBlocks(func(b isa.Block) bool {
		e.accesses++
		if !e.l1.Access(b) {
			e.misses++
			rec := MissRecord{
				Block:      b,
				Seq:        e.seq,
				Branches:   e.branches,
				Sequential: e.havePrev && b == e.prevMiss+1,
			}
			e.prevMiss = b
			e.havePrev = true
			e.branches = 0
			e.l1.Fill(b)
			if e.onMiss != nil {
				e.onMiss(rec)
			}
		}
		// Next-line prefetcher: keep the next NextLineDepth sequential
		// blocks resident. Fills via prefetch are not misses.
		for d := 1; d <= e.cfg.NextLineDepth; d++ {
			nb := b + isa.Block(d)
			if !e.l1.Contains(nb) {
				e.l1.Fill(nb)
			}
		}
		return true
	})
	if ev.Kind.IsConditional() && !ev.InnerLoop {
		e.branches++
	}
	e.seq++
}

// Run pulls up to maxEvents events from src through the extractor and
// returns the number of events consumed (less than maxEvents only if the
// source ends). Batch-capable sources are drained through one reused
// event buffer — one dynamic dispatch per buffer instead of per event,
// and no per-event copies through the Next return path.
func (e *Extractor) Run(src isa.EventSource, maxEvents uint64) uint64 {
	if bs, ok := src.(isa.BatchSource); ok {
		return e.runBatched(bs, maxEvents)
	}
	var n uint64
	for n < maxEvents {
		ev, ok := src.Next()
		if !ok {
			break
		}
		e.Feed(ev)
		n++
	}
	return n
}

// runBatched is Run over an isa.BatchSource.
func (e *Extractor) runBatched(bs isa.BatchSource, maxEvents uint64) uint64 {
	var buf [256]isa.BlockEvent
	var n uint64
	for n < maxEvents {
		want := uint64(len(buf))
		if left := maxEvents - n; left < want {
			want = left
		}
		got := bs.NextBatch(buf[:want])
		for i := 0; i < got; i++ {
			e.Feed(buf[i])
		}
		n += uint64(got)
		if uint64(got) < want {
			break
		}
	}
	return n
}

// Accesses returns the number of block-granularity fetch accesses seen.
func (e *Extractor) Accesses() uint64 { return e.accesses }

// Misses returns the number of filtered misses produced.
func (e *Extractor) Misses() uint64 { return e.misses }

// MPKE returns misses per thousand events (a density diagnostic).
func (e *Extractor) MPKE() float64 {
	if e.seq == 0 {
		return 0
	}
	return 1000 * float64(e.misses) / float64(e.seq)
}

// ExtractMisses is a convenience that drains up to maxEvents events from
// src and returns the collected miss records. The result slice is
// preallocated from the event budget at a typical post-filter miss
// density, so collection does not reallocate as the trace grows.
func ExtractMisses(src isa.EventSource, maxEvents uint64, cfg ExtractorConfig) []MissRecord {
	out := make([]MissRecord, 0, missCapacity(maxEvents))
	e := NewExtractor(cfg, func(m MissRecord) { out = append(out, m) })
	e.Run(src, maxEvents)
	return out
}

// missCapacity sizes a record buffer for an event budget. Filtered miss
// density on the Table I workloads runs a few percent of events; 1/16
// overshoots slightly, trading a little memory for zero regrowth.
func missCapacity(maxEvents uint64) uint64 {
	const maxPrealloc = 1 << 22
	c := maxEvents/16 + 16
	if c > maxPrealloc {
		c = maxPrealloc
	}
	return c
}

// Blocks projects miss records to their block addresses.
func Blocks(recs []MissRecord) []isa.Block {
	out := make([]isa.Block, len(recs))
	for i, r := range recs {
		out[i] = r.Block
	}
	return out
}

// DropSequential returns the records with Sequential misses removed,
// as the Fig. 5 stream-length study requires.
func DropSequential(recs []MissRecord) []MissRecord {
	out := make([]MissRecord, 0, len(recs))
	for _, r := range recs {
		if !r.Sequential {
			out = append(out, r)
		}
	}
	return out
}
