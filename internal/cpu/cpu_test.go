package cpu

import (
	"testing"

	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
)

// seqSource yields n sequential block-aligned events.
func seqSource(pc isa.Addr, n int) isa.EventSource {
	evs := make([]isa.BlockEvent, n)
	for i := range evs {
		kind := isa.CTFallthrough
		if i == n-1 {
			kind = isa.CTReturn
		}
		evs[i] = isa.BlockEvent{PC: pc, Instrs: isa.InstrsPerBlock, Kind: kind, Taken: i == n-1, Target: pc}
		pc = pc.Add(isa.InstrsPerBlock)
	}
	return isa.NewSliceSource(evs)
}

func newCore(t testing.TB, src isa.EventSource, pf prefetch.Prefetcher) (*Core, *uncore.L2) {
	t.Helper()
	un := uncore.New(uncore.Config{})
	c := New(0, Config{BackendCPI: 0.4}, src, pf, un)
	return c, un
}

func TestCoreRunsToCompletion(t *testing.T) {
	c, _ := newCore(t, seqSource(0x1000, 100), nil)
	steps := 0
	for c.Step() {
		steps++
	}
	if steps != 100 {
		t.Errorf("steps = %d, want 100", steps)
	}
	st := c.Stats()
	if st.Events != 100 || st.Instrs != 100*16 {
		t.Errorf("stats = %+v", st)
	}
	if !c.Done() {
		t.Error("core should be done")
	}
	if c.Step() {
		t.Error("Step after done should return false")
	}
}

func TestCPIFloor(t *testing.T) {
	// With width 4 and BackendCPI 0.4, execution alone costs
	// 16*(0.25+0.4) = 10.4 cycles/event; fetch stalls add more.
	c, _ := newCore(t, seqSource(0x1000, 200), nil)
	for c.Step() {
	}
	st := c.Stats()
	minCycles := uint64(float64(st.Instrs) * 0.65)
	if st.Cycles < minCycles {
		t.Errorf("cycles %d below execution floor %d", st.Cycles, minCycles)
	}
}

func TestFetchStallsRecorded(t *testing.T) {
	c, _ := newCore(t, seqSource(0x1000, 50), nil)
	for c.Step() {
	}
	st := c.Stats()
	// Cold sequential run: the first block is a demand miss; later blocks
	// are next-line covered (timely or late).
	if st.Misses == 0 {
		t.Error("no misses on a cold run")
	}
	if st.FetchStallCycles == 0 {
		t.Error("no fetch stalls recorded")
	}
	if st.FetchStallShare() <= 0 || st.FetchStallShare() >= 1 {
		t.Errorf("stall share = %f", st.FetchStallShare())
	}
}

func TestSecondPassHitsL1(t *testing.T) {
	// Two passes over a small loop: second pass must be all L1 hits.
	var evs []isa.BlockEvent
	collect := func() {
		src := seqSource(0x2000, 20)
		for {
			ev, ok := src.Next()
			if !ok {
				break
			}
			evs = append(evs, ev)
		}
	}
	collect()
	collect()
	c, _ := newCore(t, isa.NewSliceSource(evs), nil)
	for c.Step() {
	}
	st := c.Stats()
	if st.L1Hits < 20 {
		t.Errorf("L1 hits = %d; second pass should hit", st.L1Hits)
	}
}

func TestBranchMispredictPenalty(t *testing.T) {
	// Alternating branch outcomes on one PC: bimodal and gshare both need
	// warmup; mispredicts must be counted and charged.
	var evs []isa.BlockEvent
	taken := false
	for i := 0; i < 200; i++ {
		target := isa.Addr(0x3000)
		ev := isa.BlockEvent{PC: 0x3000, Instrs: 4, Kind: isa.CTBranch, Taken: taken, Target: target}
		evs = append(evs, ev)
		taken = !taken
	}
	// Keep the stream consistent: alternate between fallthrough (0x3010)
	// and target (0x3000)... simplest: all events at the same PC with
	// self-target so NextPC is either 0x3000 or 0x3010; the cpu model does
	// not check inter-event consistency, only per-event costs.
	c, _ := newCore(t, isa.NewSliceSource(evs), nil)
	for c.Step() {
	}
	st := c.Stats()
	if st.Branches != 200 {
		t.Errorf("branches = %d", st.Branches)
	}
	if st.BranchMispredicts == 0 {
		t.Error("alternating branch never mispredicted during warmup")
	}
}

func TestSerializingPenalty(t *testing.T) {
	evs := []isa.BlockEvent{
		{PC: 0x4000, Instrs: 8, Kind: isa.CTFallthrough, Serializing: true},
		{PC: 0x4020, Instrs: 8, Kind: isa.CTReturn, Taken: true, Target: 0x4000},
	}
	c, _ := newCore(t, isa.NewSliceSource(evs), nil)
	for c.Step() {
	}
	if c.Stats().Serializations != 1 {
		t.Errorf("serializations = %d", c.Stats().Serializations)
	}
}

// countingPF records the protocol calls it receives.
type countingPF struct {
	prefetch.None
	windows, fetches, events, probes int
}

func (p *countingPF) OnWindow([]isa.BlockEvent, uint64)                     { p.windows++ }
func (p *countingPF) OnFetchBlock(isa.Block, prefetch.FetchOutcome, uint64) { p.fetches++ }
func (p *countingPF) OnEvent(isa.BlockEvent, uint64)                        { p.events++ }
func (p *countingPF) Probe(isa.Block, uint64) (uint64, bool) {
	p.probes++
	return 0, false
}

func TestPrefetcherProtocol(t *testing.T) {
	pf := &countingPF{}
	c, _ := newCore(t, seqSource(0x5000, 30), pf)
	for c.Step() {
	}
	if pf.windows != 30 || pf.events != 30 {
		t.Errorf("windows=%d events=%d, want 30 each", pf.windows, pf.events)
	}
	if pf.fetches != 30 {
		t.Errorf("fetches=%d, want 30 (one block per event)", pf.fetches)
	}
	// Probes only on L1/next-line misses: at least the cold first block.
	if pf.probes == 0 {
		t.Error("prefetcher never probed")
	}
}

func TestSetPrefetcherNilSafe(t *testing.T) {
	c, _ := newCore(t, seqSource(0x6000, 5), nil)
	c.SetPrefetcher(nil)
	for c.Step() {
	}
	if c.Prefetcher() == nil {
		t.Error("nil prefetcher not replaced with None")
	}
}

func TestWindowExposedToPrefetcher(t *testing.T) {
	var seen int
	pf := &windowPeek{onWindow: func(w []isa.BlockEvent) {
		if len(w) > seen {
			seen = len(w)
		}
	}}
	c, _ := newCore(t, seqSource(0x7000, 100), pf)
	for c.Step() {
	}
	if seen < 48 {
		t.Errorf("max window seen = %d, want fetch-target-queue depth 48", seen)
	}
}

type windowPeek struct {
	prefetch.None
	onWindow func([]isa.BlockEvent)
}

func (p *windowPeek) OnWindow(w []isa.BlockEvent, now uint64) { p.onWindow(w) }

func TestStatsIPC(t *testing.T) {
	s := Stats{Cycles: 100, Instrs: 250}
	if s.IPC() != 2.5 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if (Stats{}).IPC() != 0 {
		t.Error("zero stats IPC should be 0")
	}
}
