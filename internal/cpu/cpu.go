// Package cpu models one core of the Table II CMP at the fidelity the
// study needs: a decoupled front end that fetches basic-block events
// through a 64 KB 2-way L1-I with a two-block next-line prefetcher, an
// attached (pluggable) instruction prefetcher, a hybrid branch predictor
// charging misprediction refills, and a width-4 back end whose
// data-side stalls are a calibrated per-instruction CPI adder
// (DESIGN.md §2 explains the substitution).
//
// All prefetcher differentiation — timeliness, partial latency hiding,
// bank contention — flows through the cycle accounting here.
package cpu

import (
	"tifs/internal/branch"
	"tifs/internal/cache"
	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
)

// Config parameterizes a core; zero values select Table II.
type Config struct {
	// L1I is the instruction cache geometry (default 64 KB 2-way).
	L1I cache.Config
	// Width is dispatch/retire width in instructions per cycle
	// (default 4).
	Width int
	// NextLineDepth is how many blocks ahead the fetch unit's next-line
	// prefetcher runs (default 2).
	NextLineDepth int
	// MispredictPenalty is the pipeline refill cost of a conditional
	// branch misprediction in cycles (default 12).
	MispredictPenalty int
	// SerializePenalty is the ROB-drain cost of serializing events
	// (traps, synchronization) in cycles (default 24).
	SerializePenalty int
	// OverlapCycles is the portion of each fetch-miss stall hidden by the
	// decoupled front end and pre-dispatch queue (default 8). Serializing
	// events get no overlap: their miss latency is fully exposed
	// (Section 3.1).
	OverlapCycles int
	// WindowEvents is the fetch-target-queue depth exposed to run-ahead
	// prefetchers (default 48 events).
	WindowEvents int
	// PredictorEntries sizes the core's hybrid branch predictor
	// (default 16K).
	PredictorEntries int
	// EventBudget bounds how many events the core pulls from its source
	// (0 = unlimited). It replaces wrapping infinite executors in an
	// isa.Limit, saving one interface dispatch per event on the hot path.
	EventBudget uint64
	// BackendCPI is the calibrated per-instruction back-end stall adder.
	BackendCPI float64
	// DataBlocksPer1kInstr is the synthetic data-side L2 traffic rate
	// (ledger only; default 40).
	DataBlocksPer1kInstr float64
}

func (c Config) withDefaults() Config {
	if c.L1I.SizeBytes == 0 {
		c.L1I = cache.Config{SizeBytes: 64 * 1024, Assoc: 2}
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.NextLineDepth == 0 {
		c.NextLineDepth = 2
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 12
	}
	if c.SerializePenalty == 0 {
		c.SerializePenalty = 24
	}
	if c.OverlapCycles == 0 {
		c.OverlapCycles = 8
	}
	if c.WindowEvents == 0 {
		c.WindowEvents = 48
	}
	if c.PredictorEntries == 0 {
		c.PredictorEntries = 16 * 1024
	}
	if c.DataBlocksPer1kInstr == 0 {
		c.DataBlocksPer1kInstr = 40
	}
	return c
}

// Stats are one core's execution counters.
type Stats struct {
	// Cycles is the core-local clock after the run.
	Cycles uint64
	// Instrs and Events count retired work.
	Instrs, Events uint64
	// BlockFetches counts demand block accesses; the outcome counters
	// partition them.
	BlockFetches, L1Hits, NextLineHits, PrefetchHits, Misses uint64
	// NextLineLate counts misses that were in-flight next-line blocks
	// (a subset of Misses).
	NextLineLate uint64
	// FetchStallCycles is exposed instruction-fetch stall time — the
	// paper's bottleneck metric. StallNextLine, StallPrefetch, and
	// StallMiss attribute it to in-flight next-line hits, in-flight
	// prefetcher hits, and demand misses respectively.
	FetchStallCycles                        uint64
	StallNextLine, StallPrefetch, StallMiss uint64
	// BranchMispredicts counts conditional mispredictions.
	BranchMispredicts, Branches uint64
	// Serializations counts ROB-drain events.
	Serializations uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// FetchStallShare returns the fraction of cycles lost to instruction
// fetch stalls.
func (s Stats) FetchStallShare() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FetchStallCycles) / float64(s.Cycles)
}

// nlCapacity is the next-line buffer size in blocks.
const nlCapacity = 64

// Core is one simulated core bound to its event source, prefetcher, and
// the shared uncore.
type Core struct {
	ID  int
	cfg Config

	l1        *cache.Cache
	pred      *branch.Hybrid
	pf        prefetch.Prefetcher
	pfNone    bool // fast path: skip prefetcher dispatch entirely
	un        *uncore.L2
	src       isa.EventSource
	batchSrc  isa.BatchSource // non-nil when src supports batch refills
	srcBudget uint64          // events still allowed from src (if budgeted)
	budgeted  bool

	// window is the fetch-target queue, consumed from head; events are
	// appended at the tail and the slice is compacted only when head
	// reaches WindowEvents, so the per-step cost is O(1) instead of an
	// O(window) memmove.
	window []isa.BlockEvent
	head   int

	// Next-line prefetch buffer in struct-of-arrays layout: membership
	// scans touch only the densely packed block numbers. nlCount is an
	// exact counting filter over low block bits: a zero bucket proves
	// absence, so the common no-match lookup skips the scan.
	nlBlock []isa.Block
	nlReady []uint64
	nlUsed  []uint64
	nlCount [256]uint8
	nlSeq   uint64

	execAcc float64 // fractional execution cycles
	execCPI float64 // hoisted 1/Width + BackendCPI (same expression tree)
	dataAcc float64 // fractional synthetic data-traffic blocks

	cycle uint64
	done  bool
	stats Stats
}

// New creates a core. The prefetcher may be nil (next-line only).
func New(id int, cfg Config, src isa.EventSource, pf prefetch.Prefetcher, un *uncore.L2) *Core {
	cfg = cfg.withDefaults()
	if pf == nil {
		pf = prefetch.None{}
	}
	c := &Core{
		ID:        id,
		cfg:       cfg,
		l1:        cache.New(cfg.L1I),
		pred:      branch.NewHybrid(cfg.PredictorEntries),
		un:        un,
		src:       src,
		srcBudget: cfg.EventBudget,
		budgeted:  cfg.EventBudget > 0,
		window:    make([]isa.BlockEvent, 0, 2*cfg.WindowEvents),
		nlBlock:   make([]isa.Block, 0, nlCapacity),
		nlReady:   make([]uint64, 0, nlCapacity),
		nlUsed:    make([]uint64, 0, nlCapacity),
		execCPI:   1.0/float64(cfg.Width) + cfg.BackendCPI,
	}
	c.batchSrc, _ = src.(isa.BatchSource)
	c.SetPrefetcher(pf)
	return c
}

// Reset restores the core to the state New(id, cfg, src, nil, un) would
// produce with the core's existing id and uncore binding, reusing the L1
// ways, predictor tables, window, and next-line buffers so pooled
// simulation runs do not reallocate them. The caller attaches the
// prefetcher afterwards via SetPrefetcher, as after New.
func (c *Core) Reset(cfg Config, src isa.EventSource) {
	cfg = cfg.withDefaults()
	if c.l1.Config() == cfg.L1I {
		c.l1.Reset()
	} else {
		c.l1 = cache.New(cfg.L1I)
	}
	if c.pred.Entries() == cfg.PredictorEntries {
		c.pred.Reset()
	} else {
		c.pred = branch.NewHybrid(cfg.PredictorEntries)
	}
	c.cfg = cfg
	c.src = src
	c.batchSrc, _ = src.(isa.BatchSource)
	c.srcBudget = cfg.EventBudget
	c.budgeted = cfg.EventBudget > 0
	if cap(c.window) < 2*cfg.WindowEvents {
		c.window = make([]isa.BlockEvent, 0, 2*cfg.WindowEvents)
	} else {
		c.window = c.window[:0]
	}
	c.head = 0
	c.nlBlock = c.nlBlock[:0]
	c.nlReady = c.nlReady[:0]
	c.nlUsed = c.nlUsed[:0]
	clear(c.nlCount[:])
	c.nlSeq = 0
	c.execAcc = 0
	c.execCPI = 1.0/float64(cfg.Width) + cfg.BackendCPI
	c.dataAcc = 0
	c.cycle = 0
	c.done = false
	c.stats = Stats{}
	c.SetPrefetcher(nil)
}

// ContainsBlock implements prefetch.L1View.
func (c *Core) ContainsBlock(b isa.Block) bool { return c.l1.Contains(b) }

// Cycle returns the core-local clock.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the event source is exhausted.
func (c *Core) Done() bool { return c.done }

// Stats returns a copy of the counters (Cycles kept current).
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.cycle
	return s
}

// Prefetcher returns the attached prefetch engine.
func (c *Core) Prefetcher() prefetch.Prefetcher { return c.pf }

// SetPrefetcher attaches a prefetch engine; engines that need the core's
// L1 view (FDIP) are constructed after the core, so attachment is a
// separate step. Must be called before the first Step.
func (c *Core) SetPrefetcher(pf prefetch.Prefetcher) {
	if pf == nil {
		pf = prefetch.None{}
	}
	c.pf = pf
	_, c.pfNone = pf.(prefetch.None)
}

// Snapshot checkpoints a Core's full mutable state for the simulator's
// speculative merge tier. The attached prefetcher is checkpointed
// separately (by concrete type, at the sim layer); the event source is
// rewound by the caller, so only the pulled-but-unconsumed window tail
// is captured here. Save reuses the snapshot's buffers, so pooled
// snapshots stop allocating at steady state.
type Snapshot struct {
	l1   cache.Snapshot
	pred branch.Snapshot

	window []isa.BlockEvent

	nlBlock []isa.Block
	nlReady []uint64
	nlUsed  []uint64
	nlCount [256]uint8
	nlSeq   uint64

	srcBudget uint64
	budgeted  bool
	execAcc   float64
	dataAcc   float64
	cycle     uint64
	done      bool
	stats     Stats
}

// Save copies the core's current state into s.
func (c *Core) Save(s *Snapshot) {
	c.l1.Save(&s.l1)
	c.pred.Save(&s.pred)
	s.window = append(s.window[:0], c.window[c.head:]...)
	s.nlBlock = append(s.nlBlock[:0], c.nlBlock...)
	s.nlReady = append(s.nlReady[:0], c.nlReady...)
	s.nlUsed = append(s.nlUsed[:0], c.nlUsed...)
	s.nlCount = c.nlCount
	s.nlSeq = c.nlSeq
	s.srcBudget = c.srcBudget
	s.budgeted = c.budgeted
	s.execAcc = c.execAcc
	s.dataAcc = c.dataAcc
	s.cycle = c.cycle
	s.done = c.done
	s.stats = c.stats
}

// Restore rewinds the core to the state captured by Save. The window is
// restored compacted (head 0), which is behaviorally identical: refill
// and consumption depend only on the unconsumed tail.
func (c *Core) Restore(s *Snapshot) {
	c.l1.Restore(&s.l1)
	c.pred.Restore(&s.pred)
	c.window = append(c.window[:0], s.window...)
	c.head = 0
	c.nlBlock = append(c.nlBlock[:0], s.nlBlock...)
	c.nlReady = append(c.nlReady[:0], s.nlReady...)
	c.nlUsed = append(c.nlUsed[:0], s.nlUsed...)
	c.nlCount = s.nlCount
	c.nlSeq = s.nlSeq
	c.srcBudget = s.srcBudget
	c.budgeted = s.budgeted
	c.execAcc = s.execAcc
	c.dataAcc = s.dataAcc
	c.cycle = s.cycle
	c.done = s.done
	c.stats = s.stats
}

// fillWindow tops up the fetch-target queue, compacting the consumed
// prefix only when it has grown to a full window's worth of slots.
//
// With no prefetcher attached nothing observes the window contents, so
// the queue refills lazily in full batches through isa.BatchSource when
// available: one dynamic dispatch per window instead of per event, with
// events written in place. Prefetchers get the original per-event refill
// so OnWindow always sees a full lookahead window.
func (c *Core) fillWindow() {
	if c.head >= c.cfg.WindowEvents {
		n := copy(c.window, c.window[c.head:])
		c.window = c.window[:n]
		c.head = 0
	}
	if c.pfNone && c.batchSrc != nil {
		if c.head < len(c.window) {
			return // still events queued; nobody needs a full window
		}
		want := c.cfg.WindowEvents
		if c.budgeted {
			if c.srcBudget == 0 {
				return
			}
			if uint64(want) > c.srcBudget {
				want = int(c.srcBudget)
			}
		}
		base := len(c.window)
		c.window = c.window[:base+want]
		n := c.batchSrc.NextBatch(c.window[base:])
		c.window = c.window[:base+n]
		if c.budgeted {
			c.srcBudget -= uint64(n)
		}
		if n < want {
			c.srcBudget = 0
			c.budgeted = true
		}
		return
	}
	for len(c.window)-c.head < c.cfg.WindowEvents {
		if c.budgeted {
			if c.srcBudget == 0 {
				return
			}
			c.srcBudget--
		}
		ev, ok := c.src.Next()
		if !ok {
			c.srcBudget = 0
			return
		}
		c.window = append(c.window, ev)
	}
}

// nlFind returns the buffer index holding b, or -1. It scans backwards:
// probed blocks are almost always the ones appended moments ago, so the
// match sits near the tail and the scan is a handful of iterations.
func (c *Core) nlFind(b isa.Block) int {
	if c.nlCount[uint64(b)&255] == 0 {
		return -1
	}
	for i := len(c.nlBlock) - 1; i >= 0; i-- {
		if c.nlBlock[i] == b {
			return i
		}
	}
	return -1
}

// nlRemove deletes entry i (order is irrelevant; replacement is by age
// stamp, so swap-delete is safe).
func (c *Core) nlRemove(i int) {
	c.nlCount[uint64(c.nlBlock[i])&255]--
	last := len(c.nlBlock) - 1
	c.nlBlock[i] = c.nlBlock[last]
	c.nlReady[i] = c.nlReady[last]
	c.nlUsed[i] = c.nlUsed[last]
	c.nlBlock = c.nlBlock[:last]
	c.nlReady = c.nlReady[:last]
	c.nlUsed = c.nlUsed[:last]
}

// nlDrop removes a stale next-line copy superseded by a prefetcher hit.
func (c *Core) nlDrop(b isa.Block) {
	if i := c.nlFind(b); i >= 0 {
		c.nlRemove(i)
	}
}

// nlProbe checks the next-line buffer, consuming on hit.
func (c *Core) nlProbe(b isa.Block) (uint64, bool) {
	i := c.nlFind(b)
	if i < 0 {
		return 0, false
	}
	ready := c.nlReady[i]
	c.nlRemove(i)
	return ready, true
}

// nlIssue starts next-line prefetches for the blocks after b.
func (c *Core) nlIssue(b isa.Block, now uint64) {
	for d := 1; d <= c.cfg.NextLineDepth; d++ {
		nb := b + isa.Block(d)
		if c.l1.Contains(nb) || c.nlFind(nb) >= 0 {
			continue
		}
		ready := c.un.ReadBlock(c.ID, nb, now, uncore.TrafficNextLine)
		c.nlSeq++
		c.nlCount[uint64(nb)&255]++
		if len(c.nlBlock) < nlCapacity {
			c.nlBlock = append(c.nlBlock, nb)
			c.nlReady = append(c.nlReady, ready)
			c.nlUsed = append(c.nlUsed, c.nlSeq)
			continue
		}
		oldest := 0
		for i := 1; i < len(c.nlUsed); i++ {
			if c.nlUsed[i] < c.nlUsed[oldest] {
				oldest = i
			}
		}
		c.nlCount[uint64(c.nlBlock[oldest])&255]--
		c.nlBlock[oldest] = nb
		c.nlReady[oldest] = ready
		c.nlUsed[oldest] = c.nlSeq
	}
}

// stall advances the clock by the exposed portion of a fetch delay and
// attributes it to the given counter.
func (c *Core) stall(ready uint64, serializing bool, attr *uint64) {
	if ready <= c.cycle {
		return
	}
	wait := ready - c.cycle
	if !serializing {
		overlap := uint64(c.cfg.OverlapCycles)
		if wait <= overlap {
			return
		}
		wait -= overlap
	}
	c.cycle += wait
	c.stats.FetchStallCycles += wait
	*attr += wait
}

// Step executes one basic-block event and returns false when the source
// is exhausted.
func (c *Core) Step() bool {
	c.fillWindow()
	if c.head >= len(c.window) {
		c.done = true
		return false
	}
	ev := &c.window[c.head]
	if !c.pfNone {
		c.pf.OnWindow(c.window[c.head:], c.cycle)
	}

	if ev.Serializing {
		c.stats.Serializations++
		c.cycle += uint64(c.cfg.SerializePenalty)
	}

	// Fetch every cache block the basic block covers. Service order on an
	// L1 miss: the attached prefetcher's buffer first (a timely streamed
	// copy beats an in-flight next-line one), then the next-line buffer.
	// A next-line block still in flight is architecturally an L1 miss
	// with a merged MSHR: it stalls for the residual latency and is
	// reported as a miss so TIFS logs it — this is how temporal streaming
	// comes to cover the sequential blocks after a discontinuity that
	// next-line cannot fetch timely (Sections 3.1, 7).
	first := ev.PC.Block()
	last := ev.LastPC().Block()
	for b := first; b <= last; b++ {
		c.stats.BlockFetches++
		var outcome prefetch.FetchOutcome
		switch {
		case c.l1.Access(b):
			outcome = prefetch.FetchL1Hit
			c.stats.L1Hits++
		default:
			if ready, ok := c.probePf(b); ok {
				outcome = prefetch.FetchPrefetchHit
				c.stats.PrefetchHits++
				c.stall(ready, ev.Serializing, &c.stats.StallPrefetch)
				c.nlDrop(b)
			} else if ready, ok := c.nlProbe(b); ok {
				if ready <= c.cycle {
					// Arrived in time: counted as an L1 hit (Section 6.1).
					outcome = prefetch.FetchNextLineHit
					c.stats.NextLineHits++
				} else {
					outcome = prefetch.FetchMiss
					c.stats.Misses++
					c.stats.NextLineLate++
					c.stall(ready, ev.Serializing, &c.stats.StallNextLine)
				}
			} else {
				outcome = prefetch.FetchMiss
				c.stats.Misses++
				ready := c.un.ReadBlock(c.ID, b, c.cycle, uncore.TrafficFetch)
				c.stall(ready, ev.Serializing, &c.stats.StallMiss)
			}
			c.l1.Fill(b)
		}
		if !c.pfNone {
			c.pf.OnFetchBlock(b, outcome, c.cycle)
		}
		c.nlIssue(b, c.cycle)
	}

	// Execute: width-limited dispatch plus the calibrated back-end adder.
	c.execAcc += float64(ev.Instrs) * c.execCPI
	if c.execAcc >= 1 {
		whole := uint64(c.execAcc)
		c.cycle += whole
		c.execAcc -= float64(whole)
	}

	// Synthetic data-side L2 traffic (ledger only).
	c.dataAcc += float64(ev.Instrs) * c.cfg.DataBlocksPer1kInstr / 1000
	if c.dataAcc >= 1 {
		whole := uint64(c.dataAcc)
		c.un.AddDataTraffic(whole)
		c.dataAcc -= float64(whole)
	}

	// Resolve the terminator.
	if ev.Kind.IsConditional() {
		c.stats.Branches++
		if c.pred.Predict(ev.LastPC()) != ev.Taken {
			c.stats.BranchMispredicts++
			c.cycle += uint64(c.cfg.MispredictPenalty)
		}
		c.pred.Update(ev.LastPC(), ev.Taken)
	}

	if !c.pfNone {
		c.pf.OnEvent(*ev, c.cycle)
	}
	c.stats.Events++
	c.stats.Instrs += uint64(ev.Instrs)
	c.head++ // consume; compaction is amortized in fillWindow
	return true
}

// probePf asks the attached prefetcher for b, skipping the interface
// dispatch entirely on the next-line-only baseline.
func (c *Core) probePf(b isa.Block) (uint64, bool) {
	if c.pfNone {
		return 0, false
	}
	return c.pf.Probe(b, c.cycle)
}
