// Package cpu models one core of the Table II CMP at the fidelity the
// study needs: a decoupled front end that fetches basic-block events
// through a 64 KB 2-way L1-I with a two-block next-line prefetcher, an
// attached (pluggable) instruction prefetcher, a hybrid branch predictor
// charging misprediction refills, and a width-4 back end whose
// data-side stalls are a calibrated per-instruction CPI adder
// (DESIGN.md §2 explains the substitution).
//
// All prefetcher differentiation — timeliness, partial latency hiding,
// bank contention — flows through the cycle accounting here.
package cpu

import (
	"tifs/internal/branch"
	"tifs/internal/cache"
	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/uncore"
)

// Config parameterizes a core; zero values select Table II.
type Config struct {
	// L1I is the instruction cache geometry (default 64 KB 2-way).
	L1I cache.Config
	// Width is dispatch/retire width in instructions per cycle
	// (default 4).
	Width int
	// NextLineDepth is how many blocks ahead the fetch unit's next-line
	// prefetcher runs (default 2).
	NextLineDepth int
	// MispredictPenalty is the pipeline refill cost of a conditional
	// branch misprediction in cycles (default 12).
	MispredictPenalty int
	// SerializePenalty is the ROB-drain cost of serializing events
	// (traps, synchronization) in cycles (default 24).
	SerializePenalty int
	// OverlapCycles is the portion of each fetch-miss stall hidden by the
	// decoupled front end and pre-dispatch queue (default 8). Serializing
	// events get no overlap: their miss latency is fully exposed
	// (Section 3.1).
	OverlapCycles int
	// WindowEvents is the fetch-target-queue depth exposed to run-ahead
	// prefetchers (default 48 events).
	WindowEvents int
	// PredictorEntries sizes the core's hybrid branch predictor
	// (default 16K).
	PredictorEntries int
	// BackendCPI is the calibrated per-instruction back-end stall adder.
	BackendCPI float64
	// DataBlocksPer1kInstr is the synthetic data-side L2 traffic rate
	// (ledger only; default 40).
	DataBlocksPer1kInstr float64
}

func (c Config) withDefaults() Config {
	if c.L1I.SizeBytes == 0 {
		c.L1I = cache.Config{SizeBytes: 64 * 1024, Assoc: 2}
	}
	if c.Width == 0 {
		c.Width = 4
	}
	if c.NextLineDepth == 0 {
		c.NextLineDepth = 2
	}
	if c.MispredictPenalty == 0 {
		c.MispredictPenalty = 12
	}
	if c.SerializePenalty == 0 {
		c.SerializePenalty = 24
	}
	if c.OverlapCycles == 0 {
		c.OverlapCycles = 8
	}
	if c.WindowEvents == 0 {
		c.WindowEvents = 48
	}
	if c.PredictorEntries == 0 {
		c.PredictorEntries = 16 * 1024
	}
	if c.DataBlocksPer1kInstr == 0 {
		c.DataBlocksPer1kInstr = 40
	}
	return c
}

// Stats are one core's execution counters.
type Stats struct {
	// Cycles is the core-local clock after the run.
	Cycles uint64
	// Instrs and Events count retired work.
	Instrs, Events uint64
	// BlockFetches counts demand block accesses; the outcome counters
	// partition them.
	BlockFetches, L1Hits, NextLineHits, PrefetchHits, Misses uint64
	// NextLineLate counts misses that were in-flight next-line blocks
	// (a subset of Misses).
	NextLineLate uint64
	// FetchStallCycles is exposed instruction-fetch stall time — the
	// paper's bottleneck metric. StallNextLine, StallPrefetch, and
	// StallMiss attribute it to in-flight next-line hits, in-flight
	// prefetcher hits, and demand misses respectively.
	FetchStallCycles uint64
	StallNextLine, StallPrefetch, StallMiss uint64
	// BranchMispredicts counts conditional mispredictions.
	BranchMispredicts, Branches uint64
	// Serializations counts ROB-drain events.
	Serializations uint64
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instrs) / float64(s.Cycles)
}

// FetchStallShare returns the fraction of cycles lost to instruction
// fetch stalls.
func (s Stats) FetchStallShare() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FetchStallCycles) / float64(s.Cycles)
}

// nlEntry tracks an in-flight/completed next-line prefetch.
type nlEntry struct {
	block isa.Block
	ready uint64
	used  uint64 // insertion order for FIFO replacement
}

// Core is one simulated core bound to its event source, prefetcher, and
// the shared uncore.
type Core struct {
	ID  int
	cfg Config

	l1     *cache.Cache
	pred   *branch.Hybrid
	pf     prefetch.Prefetcher
	un     *uncore.L2
	src    isa.EventSource
	window []isa.BlockEvent

	nl      []nlEntry
	nlSeq   uint64
	execAcc float64 // fractional execution cycles
	dataAcc float64 // fractional synthetic data-traffic blocks

	cycle uint64
	done  bool
	stats Stats
}

// New creates a core. The prefetcher may be nil (next-line only).
func New(id int, cfg Config, src isa.EventSource, pf prefetch.Prefetcher, un *uncore.L2) *Core {
	cfg = cfg.withDefaults()
	if pf == nil {
		pf = prefetch.None{}
	}
	c := &Core{
		ID:   id,
		cfg:  cfg,
		l1:   cache.New(cfg.L1I),
		pred: branch.NewHybrid(cfg.PredictorEntries),
		pf:   pf,
		un:   un,
		src:  src,
	}
	return c
}

// ContainsBlock implements prefetch.L1View.
func (c *Core) ContainsBlock(b isa.Block) bool { return c.l1.Contains(b) }

// Cycle returns the core-local clock.
func (c *Core) Cycle() uint64 { return c.cycle }

// Done reports whether the event source is exhausted.
func (c *Core) Done() bool { return c.done }

// Stats returns a copy of the counters (Cycles kept current).
func (c *Core) Stats() Stats {
	s := c.stats
	s.Cycles = c.cycle
	return s
}

// Prefetcher returns the attached prefetch engine.
func (c *Core) Prefetcher() prefetch.Prefetcher { return c.pf }

// SetPrefetcher attaches a prefetch engine; engines that need the core's
// L1 view (FDIP) are constructed after the core, so attachment is a
// separate step. Must be called before the first Step.
func (c *Core) SetPrefetcher(pf prefetch.Prefetcher) {
	if pf == nil {
		pf = prefetch.None{}
	}
	c.pf = pf
}

// fillWindow tops up the fetch-target queue.
func (c *Core) fillWindow() {
	for len(c.window) < c.cfg.WindowEvents {
		ev, ok := c.src.Next()
		if !ok {
			break
		}
		c.window = append(c.window, ev)
	}
}

// nlDrop removes a stale next-line copy superseded by a prefetcher hit.
func (c *Core) nlDrop(b isa.Block) {
	for i := range c.nl {
		if c.nl[i].block == b {
			c.nl = append(c.nl[:i], c.nl[i+1:]...)
			return
		}
	}
}

// nlProbe checks the next-line buffer, consuming on hit.
func (c *Core) nlProbe(b isa.Block) (uint64, bool) {
	for i := range c.nl {
		if c.nl[i].block == b {
			ready := c.nl[i].ready
			c.nl = append(c.nl[:i], c.nl[i+1:]...)
			return ready, true
		}
	}
	return 0, false
}

// nlIssue starts next-line prefetches for the blocks after b.
func (c *Core) nlIssue(b isa.Block, now uint64) {
	const nlCapacity = 64
	for d := 1; d <= c.cfg.NextLineDepth; d++ {
		nb := b + isa.Block(d)
		if c.l1.Contains(nb) {
			continue
		}
		dup := false
		for i := range c.nl {
			if c.nl[i].block == nb {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ready := c.un.ReadBlock(c.ID, nb, now, uncore.TrafficNextLine)
		c.nlSeq++
		e := nlEntry{block: nb, ready: ready, used: c.nlSeq}
		if len(c.nl) < nlCapacity {
			c.nl = append(c.nl, e)
			continue
		}
		oldest := 0
		for i := 1; i < len(c.nl); i++ {
			if c.nl[i].used < c.nl[oldest].used {
				oldest = i
			}
		}
		c.nl[oldest] = e
	}
}

// stall advances the clock by the exposed portion of a fetch delay and
// attributes it to the given counter.
func (c *Core) stall(ready uint64, serializing bool, attr *uint64) {
	if ready <= c.cycle {
		return
	}
	wait := ready - c.cycle
	if !serializing {
		overlap := uint64(c.cfg.OverlapCycles)
		if wait <= overlap {
			return
		}
		wait -= overlap
	}
	c.cycle += wait
	c.stats.FetchStallCycles += wait
	*attr += wait
}

// Step executes one basic-block event and returns false when the source
// is exhausted.
func (c *Core) Step() bool {
	c.fillWindow()
	if len(c.window) == 0 {
		c.done = true
		return false
	}
	ev := c.window[0]
	c.pf.OnWindow(c.window, c.cycle)

	if ev.Serializing {
		c.stats.Serializations++
		c.cycle += uint64(c.cfg.SerializePenalty)
	}

	// Fetch every cache block the basic block covers. Service order on an
	// L1 miss: the attached prefetcher's buffer first (a timely streamed
	// copy beats an in-flight next-line one), then the next-line buffer.
	// A next-line block still in flight is architecturally an L1 miss
	// with a merged MSHR: it stalls for the residual latency and is
	// reported as a miss so TIFS logs it — this is how temporal streaming
	// comes to cover the sequential blocks after a discontinuity that
	// next-line cannot fetch timely (Sections 3.1, 7).
	ev.VisitBlocks(func(b isa.Block) bool {
		c.stats.BlockFetches++
		var outcome prefetch.FetchOutcome
		switch {
		case c.l1.Access(b):
			outcome = prefetch.FetchL1Hit
			c.stats.L1Hits++
		default:
			if ready, ok := c.pf.Probe(b, c.cycle); ok {
				outcome = prefetch.FetchPrefetchHit
				c.stats.PrefetchHits++
				c.stall(ready, ev.Serializing, &c.stats.StallPrefetch)
				c.nlDrop(b)
			} else if ready, ok := c.nlProbe(b); ok {
				if ready <= c.cycle {
					// Arrived in time: counted as an L1 hit (Section 6.1).
					outcome = prefetch.FetchNextLineHit
					c.stats.NextLineHits++
				} else {
					outcome = prefetch.FetchMiss
					c.stats.Misses++
					c.stats.NextLineLate++
					c.stall(ready, ev.Serializing, &c.stats.StallNextLine)
				}
			} else {
				outcome = prefetch.FetchMiss
				c.stats.Misses++
				ready := c.un.ReadBlock(c.ID, b, c.cycle, uncore.TrafficFetch)
				c.stall(ready, ev.Serializing, &c.stats.StallMiss)
			}
			c.l1.Fill(b)
		}
		c.pf.OnFetchBlock(b, outcome, c.cycle)
		c.nlIssue(b, c.cycle)
		return true
	})

	// Execute: width-limited dispatch plus the calibrated back-end adder.
	c.execAcc += float64(ev.Instrs) * (1.0/float64(c.cfg.Width) + c.cfg.BackendCPI)
	if c.execAcc >= 1 {
		whole := uint64(c.execAcc)
		c.cycle += whole
		c.execAcc -= float64(whole)
	}

	// Synthetic data-side L2 traffic (ledger only).
	c.dataAcc += float64(ev.Instrs) * c.cfg.DataBlocksPer1kInstr / 1000
	if c.dataAcc >= 1 {
		whole := uint64(c.dataAcc)
		c.un.AddDataTraffic(whole)
		c.dataAcc -= float64(whole)
	}

	// Resolve the terminator.
	if ev.Kind.IsConditional() {
		c.stats.Branches++
		if c.pred.Predict(ev.LastPC()) != ev.Taken {
			c.stats.BranchMispredicts++
			c.cycle += uint64(c.cfg.MispredictPenalty)
		}
		c.pred.Update(ev.LastPC(), ev.Taken)
	}

	c.pf.OnEvent(ev, c.cycle)
	c.stats.Events++
	c.stats.Instrs += uint64(ev.Instrs)
	// Shift the window in place (bounded, allocation-free).
	copy(c.window, c.window[1:])
	c.window = c.window[:len(c.window)-1]
	return true
}
