package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// writeThrough opens path on fsys and writes data at offset 0,
// returning the write error (open errors fail the test).
func writeThrough(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	_, werr := f.WriteAt(data, 0)
	return werr
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := writeThrough(t, OS, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(filepath.Join(dir, "b.txt")); err != nil {
		t.Fatal(err)
	}
	matches, err := OS.Glob(filepath.Join(dir, "*.txt"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("glob: %v %v", matches, err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
}

func TestFaultNthMatchingOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	fsys := NewFault(OS, Rule{Op: OpWrite, Path: "log", Nth: 2})

	if err := writeThrough(t, fsys, path, []byte("one")); err != nil {
		t.Fatalf("first write should pass: %v", err)
	}
	if err := writeThrough(t, fsys, path, []byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write should fail with the injected error, got %v", err)
	}
	if err := writeThrough(t, fsys, path, []byte("three")); err != nil {
		t.Fatalf("third write should pass (Times=0 fires once): %v", err)
	}
}

func TestFaultPathFilterAndTimes(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(OS, Rule{Op: OpWrite, Path: "target", Times: 1})

	if err := writeThrough(t, fsys, filepath.Join(dir, "other"), []byte("x")); err != nil {
		t.Fatalf("non-matching path failed: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := writeThrough(t, fsys, filepath.Join(dir, "target"), []byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("matching write %d should fail, got %v", i, err)
		}
	}
	if err := writeThrough(t, fsys, filepath.Join(dir, "target"), []byte("x")); err != nil {
		t.Fatalf("write after Times+1 firings should pass: %v", err)
	}
}

func TestFaultUnlimitedTimes(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(OS, Rule{Op: OpWrite, Times: -1, Err: syscall.ENOSPC})
	for i := 0; i < 5; i++ {
		if err := writeThrough(t, fsys, filepath.Join(dir, "f"), []byte("x")); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("write %d: got %v, want ENOSPC forever", i, err)
		}
	}
}

func TestFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn")
	fsys := NewFault(OS, Rule{Op: OpWrite, Mode: ModeShortWrite})

	err := writeThrough(t, fsys, path, []byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write should surface the injected error, got %v", err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Fatalf("torn write left %q on disk, want the first half %q", data, "01234")
	}
}

func TestFaultCrashModes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// ModeCrash: the matched op never happens, everything after fails.
	fsys := NewFault(OS, Rule{Op: OpWrite, Mode: ModeCrash})
	if err := writeThrough(t, fsys, path, []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashed write: %v", err)
	}
	if !fsys.Crashed() {
		t.Fatal("Crashed() false after a crash rule fired")
	}
	if _, err := fsys.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op should fail with ErrCrashed, got %v", err)
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("ModeCrash leaked %q to disk", data)
	}

	// ModeCrashAfter: the matched op completes, everything after fails.
	fsys = NewFault(OS, Rule{Op: OpWrite, Mode: ModeCrashAfter})
	if err := writeThrough(t, fsys, path, []byte("x")); err != nil {
		t.Fatalf("crash-after write should succeed: %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "x" {
		t.Fatalf("ModeCrashAfter lost the write: %q", data)
	}
	if _, err := fsys.ReadFile(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash-after op should fail, got %v", err)
	}
}

// TestFaultTraceReplay is the reproduction contract: capture a clean
// trace, convert any index to a rule with RuleForTraceIndex, and the
// replayed workload fails at exactly that operation.
func TestFaultTraceReplay(t *testing.T) {
	workload := func(fsys FS, dir string) []error {
		var errs []error
		errs = append(errs, writeThrough(t, fsys, filepath.Join(dir, "a"), []byte("1")))
		errs = append(errs, writeThrough(t, fsys, filepath.Join(dir, "a"), []byte("2")))
		errs = append(errs, writeThrough(t, fsys, filepath.Join(dir, "b"), []byte("3")))
		return errs
	}

	// Clean capture and fault replay must see identical paths, so both
	// run in the same directory (the workload's writes are idempotent).
	dir := t.TempDir()
	clean := NewFault(OS)
	workload(clean, dir)
	tr := clean.Trace()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}

	// Find the second write to file "a" in the trace and replay with a
	// fault armed there: write #1 must pass, write #2 must fail.
	idx := -1
	seen := 0
	for i, rec := range tr {
		if rec.Op == OpWrite && filepath.Base(rec.Path) == "a" {
			seen++
			if seen == 2 {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		t.Fatal("trace missing the second write to a")
	}
	rule := RuleForTraceIndex(tr, idx, ModeError, syscall.EIO)
	if rule.Nth != 2 {
		t.Fatalf("derived rule Nth=%d, want 2 (second matching op)", rule.Nth)
	}
	replay := NewFault(OS, rule)
	errs := workload(replay, dir)
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("unrelated ops failed: %v", errs)
	}
	if !errors.Is(errs[1], syscall.EIO) {
		t.Fatalf("targeted op returned %v, want EIO", errs[1])
	}
	// Determinism: the replay's trace prefix matches the original.
	rt := replay.Trace()
	for i := 0; i <= idx; i++ {
		if rt[i] != tr[i] {
			t.Fatalf("trace diverged at %d: %v vs %v", i, rt[i], tr[i])
		}
	}
}

func TestFaultLockInjection(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFault(OS, Rule{Op: OpLock, Err: syscall.ENOLCK})
	f, err := fsys.OpenFile(filepath.Join(dir, "l"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.TryLock(); !errors.Is(err, syscall.ENOLCK) {
		t.Fatalf("TryLock: %v, want injected ENOLCK", err)
	}
	// Second acquisition is past the rule and succeeds for real.
	locked, err := f.TryLock()
	if err != nil || !locked {
		t.Fatalf("TryLock after rule: %v %v", locked, err)
	}
}
