// Package vfs is the narrow filesystem seam beneath the persistence and
// coordination stack (internal/store, internal/shard). Everything those
// packages do to disk — open, append, fsync, atomic rename, lock —
// passes through the FS and File interfaces, so a test can swap the
// passthrough OS implementation for the deterministic fault-injecting
// one (fault.go) and drive every I/O error path that a real deployment
// would only hit under torn writes, full disks, or mid-operation kills.
//
// The interface is deliberately small: exactly the operations the store
// and shard layers use, nothing speculative. File locking is part of
// File (TryLock/Lock/Unlock) rather than a separate package call so
// that lock acquisition is injectable like any other operation; the OS
// implementation delegates to internal/flock.
package vfs

import (
	"os"
	"path/filepath"

	"tifs/internal/flock"
)

// FS is the filesystem surface the store and shard layers run on.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks name.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Stat stats name without opening it.
	Stat(name string) (os.FileInfo, error)
	// Glob matches pattern with filepath.Glob semantics.
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory, making renames and unlinks in it
	// durable. Implementations may treat failure as best-effort.
	SyncDir(dir string) error
}

// File is one open file. The write surface is positional (WriteAt with
// caller-tracked offsets) rather than streaming, so a failed or short
// write can be retried at exactly the same offset without any hidden
// file-position state.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Name() string
	Close() error

	// TryLock attempts a non-blocking exclusive lock (flock semantics:
	// held by the open file description, released on Close). It reports
	// false when another open description holds the lock, or when the
	// platform has no flock support.
	TryLock() (bool, error)
	// Lock blocks until it holds the exclusive lock.
	Lock() error
	// Unlock releases a held lock.
	Unlock() error
}

// OS is the passthrough filesystem used outside tests.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadFile(name string) ([]byte, error)        { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }
func (osFS) Glob(pattern string) ([]string, error)       { return filepath.Glob(pattern) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type osFile struct {
	*os.File
}

func (f osFile) TryLock() (bool, error) { return flock.TryExclusive(f.File) }
func (f osFile) Lock() error            { return flock.Exclusive(f.File) }
func (f osFile) Unlock() error          { return flock.Unlock(f.File) }
