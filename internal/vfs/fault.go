package vfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names one filesystem operation class for fault matching. File-level
// operations (write, sync, ...) carry the path of the file they were
// opened with.
type Op string

const (
	OpOpen     Op = "open"
	OpReadFile Op = "readfile"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpMkdir    Op = "mkdir"
	OpStat     Op = "stat"
	OpGlob     Op = "glob"
	OpSyncDir  Op = "syncdir"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpTruncate Op = "truncate"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpLock     Op = "lock"
)

// Mode selects what a matched rule does to the operation.
type Mode int

const (
	// ModeError fails the operation with the rule's error; the
	// operation has no effect on the underlying filesystem.
	ModeError Mode = iota
	// ModeShortWrite applies only to writes: half the buffer reaches
	// the underlying file, then the rule's error is returned — a torn
	// write, the shape a crash or full disk tears an append into.
	ModeShortWrite
	// ModeCrash fails the operation AND every operation after it with
	// ErrCrashed, simulating a process kill at this exact point: the
	// matched operation never happens.
	ModeCrash
	// ModeCrashAfter lets the operation complete, then fails every
	// subsequent operation with ErrCrashed — a kill immediately after
	// this operation's effect reached the filesystem.
	ModeCrashAfter
)

// ErrCrashed is returned by every operation after a ModeCrash or
// ModeCrashAfter rule fires. It is not an Errno, so the retry layer
// classifies it as permanent: an in-process "crashed" filesystem never
// heals.
var ErrCrashed = errors.New("vfs: simulated crash")

// ErrInjected is the default injected failure (wrapping syscall.EIO via
// Rule.Err defaulting); kept for readability in tests.
var ErrInjected = syscall.EIO

// Rule arms one fault: the Nth operation matching (Op, Path substring)
// is failed according to Mode. Rules are deterministic — the same
// operation sequence always trips the same rule at the same point —
// which is what makes an injected failure reproducible from an op
// trace (see Trace and RuleForTraceIndex).
type Rule struct {
	// Op is the operation class to match.
	Op Op
	// Path, when non-empty, must be a substring of the operation's
	// path for the rule to match.
	Path string
	// Nth is the 1-based index among *matching* operations at which
	// the rule fires; 0 means the first match.
	Nth int
	// Mode is what happens when the rule fires (default ModeError).
	Mode Mode
	// Err is the error injected (default syscall.EIO). Use
	// syscall.ENOSPC to model a full disk — the retry layer treats it
	// as permanent.
	Err error
	// Times is how many consecutive matches fire after the Nth (0
	// means exactly one; negative means every match from the Nth on).
	Times int
}

func (r Rule) String() string {
	return fmt.Sprintf("rule{%s %q nth=%d mode=%d times=%d err=%v}", r.Op, r.Path, r.Nth, r.Mode, r.Times, r.Err)
}

// OpRecord is one entry of a Fault's operation trace.
type OpRecord struct {
	Op   Op
	Path string
}

func (o OpRecord) String() string { return string(o.Op) + " " + o.Path }

// Fault is a fault-injecting FS wrapping another FS (normally OS). It
// records every operation (Trace) and fails the ones its rules match.
// A Fault is safe for concurrent use.
type Fault struct {
	inner FS

	mu      sync.Mutex
	rules   []*ruleState
	trace   []OpRecord
	crashed bool
}

type ruleState struct {
	Rule
	seen  int // matching ops observed so far
	fired int // times the rule has fired
}

// NewFault wraps inner with the given rules armed.
func NewFault(inner FS, rules ...Rule) *Fault {
	f := &Fault{inner: inner}
	for _, r := range rules {
		f.AddRule(r)
	}
	return f
}

// AddRule arms another rule. Matching counts start at the moment the
// rule is added, so rules added mid-run fire relative to future
// operations only.
func (f *Fault) AddRule(r Rule) {
	if r.Nth <= 0 {
		r.Nth = 1
	}
	if r.Err == nil {
		r.Err = ErrInjected
	}
	f.mu.Lock()
	f.rules = append(f.rules, &ruleState{Rule: r})
	f.mu.Unlock()
}

// Trace returns the operations observed so far, in order. Replaying the
// same workload against a fresh Fault yields the same trace, so a trace
// index identifies an injection point deterministically.
func (f *Fault) Trace() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]OpRecord(nil), f.trace...)
}

// Crashed reports whether a crash rule has fired: every subsequent
// operation fails with ErrCrashed.
func (f *Fault) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// RuleForTraceIndex converts entry i of a previously captured trace
// into a rule that fires at exactly that operation when the same
// workload is replayed — the reproduction half of deterministic fault
// injection. Fault-matrix tests capture one clean trace, then replay
// the workload once per index with the derived rule armed.
func RuleForTraceIndex(trace []OpRecord, i int, mode Mode, err error) Rule {
	nth := 0
	for j := 0; j <= i && j < len(trace); j++ {
		if trace[j].Op == trace[i].Op && trace[j].Path == trace[i].Path {
			nth++
		}
	}
	return Rule{Op: trace[i].Op, Path: trace[i].Path, Nth: nth, Mode: mode, Err: err}
}

// firing describes what a matched rule does to the current operation.
type firing struct {
	mode Mode
	err  error
}

// check records the operation and consults the rules. It returns a
// non-nil firing when a rule matched. For ModeCrashAfter the crash flag
// is set but the firing's err is nil: the operation proceeds.
func (f *Fault) check(op Op, path string) *firing {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trace = append(f.trace, OpRecord{Op: op, Path: path})
	if f.crashed {
		return &firing{mode: ModeCrash, err: ErrCrashed}
	}
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !containsPath(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen < r.Nth {
			continue
		}
		if r.Times >= 0 && r.fired > r.Times {
			continue // fired its Times+1 allotted matches already
		}
		r.fired++
		switch r.Mode {
		case ModeCrash:
			f.crashed = true
			return &firing{mode: ModeCrash, err: ErrCrashed}
		case ModeCrashAfter:
			f.crashed = true
			return &firing{mode: ModeCrashAfter}
		default:
			return &firing{mode: r.Mode, err: r.Err}
		}
	}
	return nil
}

func containsPath(path, sub string) bool { return strings.Contains(path, sub) }

func (f *Fault) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if fr := f.check(OpOpen, name); fr != nil && fr.err != nil {
		return nil, fr.err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fault: f, inner: file, path: name}, nil
}

func (f *Fault) ReadFile(name string) ([]byte, error) {
	if fr := f.check(OpReadFile, name); fr != nil && fr.err != nil {
		return nil, fr.err
	}
	return f.inner.ReadFile(name)
}

func (f *Fault) Rename(oldpath, newpath string) error {
	if fr := f.check(OpRename, newpath); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Fault) Remove(name string) error {
	if fr := f.check(OpRemove, name); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.Remove(name)
}

func (f *Fault) MkdirAll(dir string, perm os.FileMode) error {
	if fr := f.check(OpMkdir, dir); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *Fault) Stat(name string) (os.FileInfo, error) {
	if fr := f.check(OpStat, name); fr != nil && fr.err != nil {
		return nil, fr.err
	}
	return f.inner.Stat(name)
}

func (f *Fault) Glob(pattern string) ([]string, error) {
	if fr := f.check(OpGlob, pattern); fr != nil && fr.err != nil {
		return nil, fr.err
	}
	return f.inner.Glob(pattern)
}

func (f *Fault) SyncDir(dir string) error {
	if fr := f.check(OpSyncDir, dir); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.SyncDir(dir)
}

// faultFile applies file-level rules, keyed by the path the file was
// opened with.
type faultFile struct {
	fault *Fault
	inner File
	path  string
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if fr := f.fault.check(OpRead, f.path); fr != nil && fr.err != nil {
		return 0, fr.err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if fr := f.fault.check(OpWrite, f.path); fr != nil {
		switch fr.mode {
		case ModeShortWrite:
			// Half the buffer reaches the file, then the failure: the
			// torn-append shape every log writer must survive.
			n, err := f.inner.WriteAt(p[:len(p)/2], off)
			if err == nil {
				err = fr.err
			}
			return n, err
		case ModeCrashAfter:
			n, err := f.inner.WriteAt(p, off)
			return n, err
		default:
			return 0, fr.err
		}
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Truncate(size int64) error {
	if fr := f.fault.check(OpTruncate, f.path); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Sync() error {
	if fr := f.fault.check(OpSync, f.path); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.Sync()
}

func (f *faultFile) Stat() (os.FileInfo, error) {
	if fr := f.fault.check(OpStat, f.path); fr != nil && fr.err != nil {
		return nil, fr.err
	}
	return f.inner.Stat()
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Close() error {
	if fr := f.fault.check(OpClose, f.path); fr != nil && fr.err != nil {
		// The underlying descriptor still closes — an injected close
		// failure models a lost flush, not a leaked fd.
		f.inner.Close()
		return fr.err
	}
	return f.inner.Close()
}

func (f *faultFile) TryLock() (bool, error) {
	if fr := f.fault.check(OpLock, f.path); fr != nil && fr.err != nil {
		return false, fr.err
	}
	return f.inner.TryLock()
}

func (f *faultFile) Lock() error {
	if fr := f.fault.check(OpLock, f.path); fr != nil && fr.err != nil {
		return fr.err
	}
	return f.inner.Lock()
}

func (f *faultFile) Unlock() error {
	// Unlock is never injected: a real kill releases flocks with the
	// process, so there is no failure mode to model.
	return f.inner.Unlock()
}
