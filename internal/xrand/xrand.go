// Package xrand provides the deterministic pseudo-random number generation
// used throughout the simulator. Every workload, predictor tie-break, and
// experiment draws from a named, seeded stream so that results are
// bit-for-bit reproducible across runs and across Go releases (math/rand's
// global source and shuffling internals are not guaranteed stable, and
// math/rand/v2 re-seeds by default).
//
// The generator is xoshiro256**, seeded via splitmix64 per the algorithm
// authors' recommendation.
package xrand

import (
	"hash/fnv"
	"math"
)

// Rand is a deterministic xoshiro256** PRNG. The zero value is not usable;
// construct with New or NewFromString.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances the seed expander and returns the next value.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator in place from the given 64-bit seed,
// exactly as New would. It lets pooled simulator structures restart their
// random stream without allocating.
func (r *Rand) Seed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start in the all-zero state; splitmix64 of any seed
	// cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// NewFromString returns a generator seeded from the FNV-1a hash of name.
// Named seeds keep independent subsystems (per-core workloads, trap timing,
// branch noise) decorrelated while remaining reproducible.
func NewFromString(name string) *Rand {
	r := &Rand{}
	r.SeedFromString(name)
	return r
}

// SeedFromString re-initializes the generator in place from the FNV-1a
// hash of name, exactly as NewFromString would, without allocating.
func (r *Rand) SeedFromString(name string) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	r.Seed(h.Sum64())
}

// State returns the generator's internal state for checkpointing.
// Restoring it with SetState resumes the exact output sequence.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Fork derives an independent generator from this one, labeled by name.
// Forking does not disturb the parent's future output beyond consuming one
// draw.
func (r *Rand) Fork(name string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return New(r.Uint64() ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= -un%un {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Range returns a uniformly distributed int in [lo, hi] inclusive.
// It panics if hi < lo.
func (r *Rand) Range(lo, hi int) int {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using swap (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success (>= 0).
// Used for burst and run-length sampling in the workload models.
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric with non-positive p")
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 {
			// Pathological p; cap to keep simulations bounded.
			return n
		}
	}
	return n
}

// ZipfTable is a precomputed inverse-CDF sampler for a Zipf distribution
// over [0, n) with skew s. Rank 0 is the most popular element. Workload
// construction uses Zipf popularity for transaction types, call sites, and
// shared-library hot paths.
type ZipfTable struct {
	cum []float64 // cumulative normalized weights, len n
}

// NewZipfTable builds the sampler. It panics if n <= 0 or s < 0.
func NewZipfTable(n int, s float64) *ZipfTable {
	if n <= 0 {
		panic("xrand: NewZipfTable with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipfTable with negative skew")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfTable{cum: cum}
}

// N returns the number of ranks in the table.
func (z *ZipfTable) N() int { return len(z.cum) }

// Sample draws a rank in [0, N()) using r.
func (z *ZipfTable) Sample(r *Rand) int {
	target := r.Float64()
	// Binary search for the first cumulative weight >= target.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
