package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d differs: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestNewFromStringDeterministic(t *testing.T) {
	a := NewFromString("oltp-db2/core0")
	b := NewFromString("oltp-db2/core0")
	c := NewFromString("oltp-db2/core1")
	if a.Uint64() != b.Uint64() {
		t.Error("same name should give same stream")
	}
	aa := NewFromString("oltp-db2/core0")
	if aa.Uint64() == c.Uint64() {
		t.Error("different names should give different streams")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	f1 := parent.Fork("a")
	f2 := parent.Fork("a") // second fork consumes another parent draw
	if f1.Uint64() == f2.Uint64() {
		t.Error("sequential forks with same label should differ")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d count %d deviates >5%% from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f out of [0,1)", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(9)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %f", got)
	}
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(13)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) = %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 5 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Error("Range(3,5) never produced an endpoint")
	}
	if got := r.Range(7, 7); got != 7 {
		t.Errorf("Range(7,7) = %d", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p, draws = 0.25, 50000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(0.25) mean = %f, want ~%f", mean, want)
	}
	if got := r.Geometric(1); got != 0 {
		t.Errorf("Geometric(1) = %d, want 0", got)
	}
}

func TestZipfTableSkew(t *testing.T) {
	r := New(23)
	z := NewZipfTable(100, 1.0)
	const draws = 100000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 must dominate rank 10 by roughly the harmonic ratio (11x).
	if counts[0] < counts[10]*5 {
		t.Errorf("Zipf skew too flat: rank0=%d rank10=%d", counts[0], counts[10])
	}
	// Every draw in range was counted.
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != draws {
		t.Errorf("lost samples: %d/%d", total, draws)
	}
}

func TestZipfTableUniformWhenSkewZero(t *testing.T) {
	r := New(29)
	z := NewZipfTable(10, 0)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	want := float64(draws) / 10
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("uniform zipf bucket %d = %d, want ~%f", i, c, want)
		}
	}
}

func TestZipfTableSingleton(t *testing.T) {
	z := NewZipfTable(1, 1.2)
	r := New(1)
	for i := 0; i < 100; i++ {
		if z.Sample(r) != 0 {
			t.Fatal("singleton table must always return 0")
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
