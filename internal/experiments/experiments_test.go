package experiments

import (
	"strings"
	"testing"

	"tifs/internal/engine"
)

// opts builds a reduced-scope option set backed by a fresh engine so the
// two runs under comparison share no memoized state.
func opts(parallelism int) Options {
	return Options{
		Events:      10_000,
		Workloads:   []string{"OLTP-DB2", "DSS-Qry17"},
		Parallelism: parallelism,
		Engine:      engine.New(parallelism),
	}
}

// TestParallelMatchesSerial asserts the engine's central guarantee: the
// rendered experiment tables are byte-identical whether the simulation
// grid runs serially or fanned out across eight workers.
func TestParallelMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig1", "fig12", "fig13", "ablation-eos"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing", id)
		}
		serial := r.Run(opts(1))
		parallel := r.Run(opts(8))
		if serial != parallel {
			t.Errorf("%s: parallel output differs from serial:\n--- serial\n%s\n--- parallel\n%s",
				id, serial, parallel)
		}
		if !strings.Contains(serial, "OLTP-DB2") {
			t.Errorf("%s: output missing workload row:\n%s", id, serial)
		}
	}
}

// TestSharedEngineDeduplicatesBaselines checks that one engine shared
// across runners simulates the common next-line baseline only once per
// workload: fig13 and ablation-eos both need it.
func TestSharedEngineDeduplicatesBaselines(t *testing.T) {
	e := engine.New(4)
	o := Options{
		Events:    8_000,
		Workloads: []string{"Web-Zeus"},
		Engine:    e,
	}
	if _, out := Fig13(o); out == "" {
		t.Fatal("fig13 produced no output")
	}
	after13 := e.SimulationsRun()
	// 1 baseline + 5 mechanisms.
	if after13 != 6 {
		t.Errorf("fig13 ran %d simulations, want 6", after13)
	}
	if out := AblationEndOfStream(o); out == "" {
		t.Fatal("ablation produced no output")
	}
	// The ablation adds eos-on (TIFS-dedicated, shared with fig13) and
	// eos-off; its baseline is a memo hit.
	if got := e.SimulationsRun(); got != after13+1 {
		t.Errorf("ablation re-simulated shared runs: %d total, want %d",
			got, after13+1)
	}
}
