package experiments

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tifs/internal/engine"
	"tifs/internal/shard"
	"tifs/internal/store"
	"tifs/internal/workload"
)

// updateGolden regenerates testdata/golden/*.txt instead of comparing:
//
//	go test ./internal/experiments -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment outputs")

// goldenOptions is the fixed small-scale configuration every golden file
// is rendered under. The reduced event budget keeps a full golden pass
// (13 experiments x several execution modes) in CI seconds; any change
// here invalidates every golden file, so regenerate them together.
func goldenOptions(parallelism int, e *engine.Engine) Options {
	return Options{
		Scale:       workload.ScaleSmall,
		Events:      4_000,
		Cores:       4,
		Parallelism: parallelism,
		Engine:      e,
	}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// readGolden loads one committed expectation.
func readGolden(t *testing.T, id string) string {
	t.Helper()
	data, err := os.ReadFile(goldenPath(id))
	if err != nil {
		t.Fatalf("missing golden output (regenerate with -update-golden): %v", err)
	}
	return string(data)
}

// TestGoldenOutputs holds every experiment to its committed small-scale
// output, byte for byte, across serial, 8-way-parallel, intra-parallel
// (2/4/8 producer shards per run), and speculative execution — the full
// intra {1,4} x spec {off,on} matrix plus a forced-rollback chaos
// variant. This is the regression net under the whole sweep machinery:
// any change to simulator semantics, table rendering, or scheduling —
// including the intra-run event pipeline and the speculative merge
// tier's commit/rollback protocol — that alters a single byte of any
// experiment fails here.
func TestGoldenOutputs(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		e := engine.New(0)
		for _, r := range Registry() {
			out := r.Run(goldenOptions(0, e))
			if err := os.WriteFile(goldenPath(r.ID), []byte(out), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("golden outputs rewritten")
		return
	}

	serialEngine := engine.New(1)
	parallelEngine := engine.New(8)
	intraEngines := map[int]*engine.Engine{}
	for _, n := range []int{2, 4, 8} {
		e := engine.New(4)
		e.SetIntraParallelism(n)
		intraEngines[n] = e
	}
	defer func() {
		serialEngine.Close()
		parallelEngine.Close()
		for _, e := range intraEngines {
			e.Close()
		}
	}()
	// The speculative leg of the matrix: spec-on at intra 1 and 4, plus
	// a chaos engine forcing rollbacks mid-checkpoint-interval, which
	// must STILL render golden bytes (rollbacks re-execute serially).
	specModes := []struct {
		name  string
		intra int
		chaos int
	}{
		{"spec", 0, 0},
		{"spec-intra-4", 4, 0},
		{"spec-chaos-5", 0, 5},
	}
	specEngines := make([]*engine.Engine, len(specModes))
	for i, m := range specModes {
		e := engine.New(4)
		e.SetSpeculative(2)
		if m.intra > 1 {
			e.SetIntraParallelism(m.intra)
		}
		if m.chaos > 0 {
			e.SetSpecChaos(m.chaos)
		}
		specEngines[i] = e
		defer e.Close()
	}
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			want := readGolden(t, r.ID)
			if got := r.Run(goldenOptions(1, serialEngine)); got != want {
				t.Errorf("serial output diverged from golden:\n--- golden\n%s\n--- got\n%s", want, got)
			}
			if got := r.Run(goldenOptions(8, parallelEngine)); got != want {
				t.Errorf("parallel output diverged from golden:\n--- golden\n%s\n--- got\n%s", want, got)
			}
			for _, n := range []int{2, 4, 8} {
				o := goldenOptions(4, intraEngines[n])
				o.IntraParallelism = n
				if got := r.Run(o); got != want {
					t.Errorf("intra-%d output diverged from golden:\n--- golden\n%s\n--- got\n%s", n, want, got)
				}
			}
			for i, m := range specModes {
				o := goldenOptions(4, specEngines[i])
				o.IntraParallelism = m.intra
				o.Speculative = 2
				o.SpecChaos = m.chaos
				if got := r.Run(o); got != want {
					t.Errorf("%s output diverged from golden:\n--- golden\n%s\n--- got\n%s", m.name, want, got)
				}
			}
		})
	}
}

// TestGoldenShardedMerge runs the golden sweep as 1-, 2-, and 4-shard
// cooperating workers over a shared store directory, then renders every
// experiment from store hits alone and holds the merged output to the
// same golden bytes — the in-process twin of the CLI acceptance flow
// (tifsbench -shard i/N ... then -merge).
func TestGoldenShardedMerge(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating goldens")
	}
	// The expected "all" output is the goldens assembled in registry
	// order, exactly as RunAll frames them.
	var wantAll strings.Builder
	for _, r := range Registry() {
		fmt.Fprintf(&wantAll, "== %s: %s\n\n", r.ID, r.Description)
		wantAll.WriteString(readGolden(t, r.ID))
		wantAll.WriteString("\n")
	}

	jobs, traces, err := Grid(nil, goldenOptions(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	g := shard.Grid{Jobs: jobs, Traces: traces}

	for _, count := range []int{1, 2, 4} {
		count := count
		t.Run(fmt.Sprintf("%dshards", count), func(t *testing.T) {
			dir := t.TempDir()
			var wg sync.WaitGroup
			errs := make(chan error, count)
			for w := 0; w < count; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					st, err := store.Open(dir)
					if err != nil {
						errs <- err
						return
					}
					defer st.Close()
					c := shard.NewCoordinator(dir, g, count)
					c.TTL = time.Hour
					owner := fmt.Sprintf("golden-worker-%d", w)
					for {
						idx, ok, err := c.ClaimAny(owner)
						if err != nil || !ok {
							if err != nil {
								errs <- err
							}
							return
						}
						if _, err := shard.Run(context.Background(), st, g, idx, count, 2, nil, 0, 0); err != nil {
							errs <- err
							return
						}
						if err := c.Complete(idx); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Merge: a fresh engine over the filled store must render the
			// golden bytes without one new simulation.
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			e := engine.New(8)
			e.SetStore(st)
			got := RunAll(goldenOptions(8, e))
			if sims := e.SimulationsRun(); sims != 0 {
				t.Errorf("merge pass re-simulated %d grid points; store coverage incomplete", sims)
			}
			if got != wantAll.String() {
				t.Errorf("%d-shard merged output diverged from goldens:\n--- golden\n%s\n--- got\n%s",
					count, wantAll.String(), got)
			}
		})
	}
}
