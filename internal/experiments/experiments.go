// Package experiments reproduces every table and figure of the paper's
// evaluation: the Fig. 1 opportunity sweep, the Fig. 3/5/6 SEQUITUR
// studies, the Fig. 10 lookahead limits, the Fig. 11 IML capacity sweep,
// the Fig. 12 coverage/discard/traffic accounting, and the Fig. 13
// performance comparison, plus the Table I/II parameter listings.
//
// Each runner returns both a rendered plain-text table (the same rows or
// series the paper plots) and structured results for programmatic use.
package experiments

import (
	"context"
	"fmt"

	"tifs/internal/analysis"
	"tifs/internal/engine"
	"tifs/internal/isa"
	"tifs/internal/sim"
	"tifs/internal/stats"
	"tifs/internal/store"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// Options control experiment scope.
type Options struct {
	// Context, when non-nil, bounds the run: cancellation stops
	// scheduling new simulations and unblocks waiters promptly.
	// Tables rendered after cancellation are partial and must be
	// treated as invalid output (CLI runners mark them interrupted).
	Context context.Context
	// Scale selects workload size; experiments use its default event
	// budgets unless Events overrides them.
	Scale workload.Scale
	// Events overrides the per-core event budget (0 = scale default;
	// offline analyses use the scale's AnalysisEvents).
	Events uint64
	// Cores is the CMP width (default 4).
	Cores int
	// Workloads restricts the suite (empty = all six).
	Workloads []string
	// Parallelism bounds how many simulations run concurrently (0 =
	// GOMAXPROCS, 1 = serial). Output is byte-identical at every setting:
	// results are assembled in submission order and every simulation is
	// deterministic in its configuration.
	Parallelism int
	// IntraParallelism shards event generation inside each simulation
	// across that many goroutines (sim.Config.IntraParallelism). Like
	// Parallelism it is purely an execution knob — output bytes are
	// identical at every setting — so it is excluded from job identity
	// everywhere (engine keys, store addresses, sweep dedup). When both
	// knobs are set the engine divides its worker budget so run-level
	// times intra-run concurrency does not oversubscribe the host.
	IntraParallelism int
	// Speculative engages the speculative merge tier inside each
	// simulation (sim.Config.Speculative: >= 2 runs a speculation
	// worker ahead of the merge thread). A pure execution knob like
	// IntraParallelism — byte-identical output, excluded from job
	// identity everywhere.
	Speculative int
	// SpecChaos forces a speculation mispredict every n-th window
	// (sim.Config.SpecChaos), exercising the rollback path
	// deterministically without changing output bytes.
	SpecChaos int
	// Engine overrides the simulation scheduler (nil selects the
	// process-wide engine when Parallelism is 0 and Store is nil, or a
	// fresh engine otherwise). Supplying one engine across several
	// experiment runs shares its memoized results between them.
	Engine *engine.Engine
	// Store attaches a persistent result store: simulations and miss
	// traces already cached there are not re-run, and new ones are
	// written back, so repeated invocations share work across processes.
	// Results are byte-identical with or without it. Ignored when Engine
	// is set (configure the engine directly instead).
	Store *store.Store
	// Backend attaches a result-store backend by interface — e.g. a
	// remote store client — instead of a local Store. Takes precedence
	// over Store; ignored when Engine is set. The backend's one-way
	// defensiveness keeps output byte-identical whether it hits, misses,
	// or degrades.
	Backend store.Backend
}

func (o Options) withDefaults() Options {
	if o.Cores == 0 {
		o.Cores = 4
	}
	return o
}

// ctx returns the run's context (Background when unset).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// engine returns the scheduler for this run.
func (o Options) engine() *engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	if o.Parallelism != 0 || o.IntraParallelism > 1 || o.Speculative > 1 || o.SpecChaos > 0 || o.Store != nil || o.Backend != nil {
		e := engine.New(o.Parallelism)
		if o.IntraParallelism > 1 {
			e.SetIntraParallelism(o.IntraParallelism)
		}
		if o.Speculative > 1 {
			e.SetSpeculative(o.Speculative)
		}
		if o.SpecChaos > 0 {
			e.SetSpecChaos(o.SpecChaos)
		}
		if o.Backend != nil {
			e.SetBackend(o.Backend)
		} else {
			e.SetStore(o.Store)
		}
		return e
	}
	return engine.Default()
}

// job names one simulation of this experiment's grid.
func (o Options) job(spec workload.Spec, m sim.Mechanism) engine.Job {
	return engine.Job{
		Spec:  spec,
		Scale: o.Scale,
		Config: sim.Config{
			Cores:            o.Cores,
			EventsPerCore:    o.Events,
			Mechanism:        m,
			IntraParallelism: o.IntraParallelism,
			Speculative:      o.Speculative,
			SpecChaos:        o.SpecChaos,
		},
	}
}

func (o Options) suite() []workload.Spec {
	if len(o.Workloads) == 0 {
		return workload.Suite()
	}
	var out []workload.Spec
	for _, name := range o.Workloads {
		if s, ok := workload.ByName(name); ok {
			out = append(out, s)
		}
	}
	return out
}

// analysisEvents returns the event budget for offline (functional)
// studies.
func (o Options) analysisEvents() uint64 {
	if o.Events != 0 {
		return o.Events
	}
	return o.Scale.AnalysisEvents()
}

// traceJob names the per-core miss-trace extraction for one workload
// under these options.
func (o Options) traceJob(spec workload.Spec) engine.TraceJob {
	return engine.TraceJob{Spec: spec, Scale: o.Scale, Cores: o.Cores, Events: o.analysisEvents()}
}

// missTraces returns the per-core filtered miss traces for a workload;
// the records are read-only. Within one engine, extraction runs once per
// (workload, scale, cores, events) and is shared by every analysis
// experiment — runners sharing an engine (the default, or an explicit
// o.Engine) never re-extract. A nonzero Parallelism with a nil Engine
// creates a fresh engine per call and forgoes that cross-call sharing.
func missTraces(spec workload.Spec, o Options) [][]trace.MissRecord {
	return o.engine().ExtractTraces(o.ctx(), o.traceJob(spec))
}

// analysisTraces enumerates the trace extractions the offline analysis
// experiments (fig3/5/6/10/11) perform: one per suite workload.
func analysisTraces(o Options) []engine.TraceJob {
	var out []engine.TraceJob
	for _, spec := range o.suite() {
		out = append(out, o.traceJob(spec))
	}
	return out
}

// fig1Jobs enumerates the Fig. 1 coverage sweep's simulation grid in the
// exact order Fig1 consumes it: for each workload, the next-line
// baseline followed by each nonzero coverage point.
func fig1Jobs(o Options) []engine.Job {
	var jobs []engine.Job
	for _, spec := range o.suite() {
		for _, cov := range fig1Coverages {
			m := sim.Baseline()
			if cov > 0 {
				m = sim.Probabilistic(cov)
			}
			jobs = append(jobs, o.job(spec, m))
		}
	}
	return jobs
}

var fig1Coverages = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}

// Table1 prints the workload suite parameters (the paper's Table I).
func Table1(o Options) string {
	o = o.withDefaults()
	t := stats.NewTable("Table I. Commercial server workload parameters (synthetic models)",
		"Workload", "Class", "Code(KB)", "TxnTypes", "Thr/Core", "Configuration")
	for _, s := range o.suite() {
		t.AddRowf(s.Name, string(s.Class),
			fmt.Sprintf("%d", s.AppKB+s.LibKB+s.OSKB),
			s.TxnTypes, s.ThreadsPerCore, s.Description)
	}
	return t.String()
}

// Table2 prints the simulated system parameters (the paper's Table II).
func Table2() string {
	t := stats.NewTable("Table II. System parameters", "Component", "Configuration")
	rows := [][2]string{
		{"Cores", "4x 4-wide OoO (modeled), 4 GHz, UltraSPARC-III-like 4-byte instructions"},
		{"I-Fetch", "64KB 2-way L1-I, 64-byte blocks, next-line prefetcher (depth 2)"},
		{"Branch pred.", "hybrid 16K gShare + 16K bimodal, 12-cycle mispredict refill"},
		{"L2", "8MB 16-way shared, 16 banks, 20-cycle hit, new access per bank per 4 cycles"},
		{"Memory", "180-cycle latency (45ns), ~28.4 GB/s (9 cycles per 64B block)"},
		{"TIFS", "per-core SVB 2KB (32 blocks), 4 streams, lookahead 4; IML 8K entries/core"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	return t.String()
}

// Fig1Point is one coverage/speedup sample of the opportunity study.
type Fig1Point struct {
	Workload string
	Coverage float64
	Speedup  float64
}

// Fig1Result is the full sweep plus per-workload linear fits.
type Fig1Result struct {
	Points []Fig1Point
	Fits   map[string]stats.LinearFit
}

// Fig1 runs the probabilistic-prefetcher coverage sweep (Section 2). The
// whole (workload x coverage) grid fans out through the engine at once;
// the zero-coverage point reuses the memoized next-line baseline.
func Fig1(o Options) (Fig1Result, string) {
	o = o.withDefaults()
	res := Fig1Result{Fits: map[string]stats.LinearFit{}}
	coverages := fig1Coverages

	suite := o.suite()
	results := o.engine().RunAll(o.ctx(), fig1Jobs(o))

	headers := []string{"Workload"}
	for _, c := range coverages {
		headers = append(headers, fmt.Sprintf("%.0f%%", 100*c))
	}
	headers = append(headers, "slope/100%")
	t := stats.NewTable("Fig. 1. Speedup over next-line prefetching vs. prefetch coverage", headers...)
	for wi, spec := range suite {
		base := results[wi*len(coverages)]
		var xs, ys []float64
		row := []string{spec.Name}
		for ci, cov := range coverages {
			r := results[wi*len(coverages)+ci]
			sp := r.SpeedupOver(base)
			res.Points = append(res.Points, Fig1Point{Workload: spec.Name, Coverage: cov, Speedup: sp})
			xs = append(xs, cov)
			ys = append(ys, sp)
			row = append(row, fmt.Sprintf("%.3f", sp))
		}
		fit := stats.FitLinear(xs, ys)
		res.Fits[spec.Name] = fit
		row = append(row, fmt.Sprintf("%+.3f", fit.Slope))
		t.AddRow(row...)
	}
	return res, t.String()
}

// Fig3Row is one workload's miss categorization.
type Fig3Row struct {
	Workload string
	Cat      *analysis.Categorization
}

// Fig3 runs the SEQUITUR opportunity categorization (Section 4.2). The
// same categorization's stream lengths feed Fig5.
func Fig3(o Options) ([]Fig3Row, string) {
	o = o.withDefaults()
	e := o.engine()
	var rows []Fig3Row
	t := stats.NewTable("Fig. 3. Miss categorization by SEQUITUR analysis (% of L1-I misses)",
		"Workload", "Opportunity", "Head", "New", "Non-repetitive", "Repetitive")
	for _, spec := range o.suite() {
		// The per-core grammars come from the engine's memoized (and
		// store-persisted) grammar tier; a warm process categorizes
		// without re-running SEQUITUR.
		snaps := e.Grammars(o.ctx(), o.traceJob(spec), false)
		// Categorize per core and merge counts (the paper logs per-core
		// miss sequences).
		merged := stats.NewCategories(analysis.CatOpportunity, analysis.CatHead,
			analysis.CatNew, analysis.CatNonRepetitive)
		lengths := stats.NewHistogram()
		var rules int
		for _, snap := range snaps {
			c := analysis.CategorizeSnapshot(snap)
			for _, name := range merged.Names() {
				merged.Add(name, c.Counts.Count(name))
			}
			for _, v := range c.StreamLengths.Values() {
				lengths.AddN(v, c.StreamLengths.Count(v))
			}
			rules += c.Rules
		}
		cat := &analysis.Categorization{Counts: merged, StreamLengths: lengths, Rules: rules}
		rows = append(rows, Fig3Row{Workload: spec.Name, Cat: cat})
		t.AddRow(spec.Name,
			stats.Pct(cat.Counts.Fraction(analysis.CatOpportunity)),
			stats.Pct(cat.Counts.Fraction(analysis.CatHead)),
			stats.Pct(cat.Counts.Fraction(analysis.CatNew)),
			stats.Pct(cat.Counts.Fraction(analysis.CatNonRepetitive)),
			stats.Pct(cat.RepetitiveFrac()))
	}
	return rows, t.String()
}

// Fig5Row is one workload's recurring-stream-length distribution.
type Fig5Row struct {
	Workload string
	Lengths  *stats.Histogram
}

// Fig5 computes the stream-length CDF over traces with sequential misses
// removed (modeling a perfect next-line prefetcher, Section 4.3).
func Fig5(o Options) ([]Fig5Row, string) {
	o = o.withDefaults()
	e := o.engine()
	var rows []Fig5Row
	marks := []float64{0.25, 0.5, 0.75, 0.9}
	t := stats.NewTable("Fig. 5. Recurring stream lengths, sequential misses removed (length at %opportunity)",
		"Workload", "p25", "median", "p75", "p90", "max")
	for _, spec := range o.suite() {
		// The dropSequential grammar variant is its own persisted entry.
		snaps := e.Grammars(o.ctx(), o.traceJob(spec), true)
		lengths := stats.NewHistogram()
		for _, snap := range snaps {
			c := analysis.CategorizeSnapshot(snap)
			for _, v := range c.StreamLengths.Values() {
				lengths.AddN(v, c.StreamLengths.Count(v))
			}
		}
		rows = append(rows, Fig5Row{Workload: spec.Name, Lengths: lengths})
		row := []string{spec.Name}
		wcdf := lengths.WeightedCDF()
		for _, m := range marks {
			x := 0
			for _, pt := range wcdf {
				if pt.P >= m {
					x = pt.X
					break
				}
			}
			row = append(row, fmt.Sprintf("%d", x))
		}
		maxLen := 0
		if vs := lengths.Values(); len(vs) > 0 {
			maxLen = vs[len(vs)-1]
		}
		row = append(row, fmt.Sprintf("%d", maxLen))
		t.AddRow(row...)
	}
	return rows, t.String()
}

// Fig6Row is one workload's heuristic comparison.
type Fig6Row struct {
	Workload    string
	Coverages   map[string]float64
	Opportunity float64
}

// Fig6 compares the stream lookup heuristics (Section 4.4).
func Fig6(o Options) ([]Fig6Row, string) {
	o = o.withDefaults()
	e := o.engine()
	var rows []Fig6Row
	t := stats.NewTable("Fig. 6. Stream lookup heuristics (% of misses eliminated)",
		"Workload", "First", "Digram", "Recent", "Longest", "Opportunity")
	for _, spec := range o.suite() {
		// Heuristic replay needs the raw miss sequences; the opportunity
		// column reuses the same full-trace grammars Fig3 categorizes
		// (shared through the engine's grammar memo).
		perCore := e.ExtractTraces(o.ctx(), o.traceJob(spec))
		snaps := e.Grammars(o.ctx(), o.traceJob(spec), false)
		covs := map[string]float64{}
		var opp float64
		var totalMisses uint64
		covered := map[string]uint64{}
		var oppCount uint64
		for i, recs := range perCore {
			seq := trace.Blocks(recs)
			for _, r := range analysis.EvaluateHeuristics(seq) {
				covered[r.Policy] += r.Covered
			}
			if i < len(snaps) {
				c := analysis.CategorizeSnapshot(snaps[i])
				oppCount += c.Counts.Count(analysis.CatOpportunity)
			}
			totalMisses += uint64(len(seq))
		}
		if totalMisses > 0 {
			for _, p := range analysis.Policies() {
				covs[p] = float64(covered[p]) / float64(totalMisses)
			}
			opp = float64(oppCount) / float64(totalMisses)
		}
		rows = append(rows, Fig6Row{Workload: spec.Name, Coverages: covs, Opportunity: opp})
		t.AddRow(spec.Name,
			stats.Pct(covs[analysis.PolicyFirst]),
			stats.Pct(covs[analysis.PolicyDigram]),
			stats.Pct(covs[analysis.PolicyRecent]),
			stats.Pct(covs[analysis.PolicyLongest]),
			stats.Pct(opp))
	}
	return rows, t.String()
}

// Fig10Row is one workload's lookahead CDF.
type Fig10Row struct {
	Workload string
	CDF      []stats.CDFPoint
}

// Fig10 measures how many non-inner-loop branch predictions a
// fetch-directed prefetcher needs for a four-miss lookahead (Section 6.2).
func Fig10(o Options) ([]Fig10Row, string) {
	o = o.withDefaults()
	var rows []Fig10Row
	buckets := analysis.LookaheadBuckets()
	headers := []string{"Workload"}
	for _, b := range buckets {
		headers = append(headers, fmt.Sprintf("<=%d", b))
	}
	t := stats.NewTable("Fig. 10. Non-inner-loop branch predictions required for 4-miss lookahead (CDF)", headers...)
	for _, spec := range o.suite() {
		perCore := missTraces(spec, o)
		h := stats.NewHistogram()
		for _, recs := range perCore {
			ph := analysis.BranchLookahead(recs, analysis.DefaultLookaheadMisses)
			for _, v := range ph.Values() {
				h.AddN(v, ph.Count(v))
			}
		}
		cdf := analysis.LookaheadCDF(h)
		rows = append(rows, Fig10Row{Workload: spec.Name, CDF: cdf})
		row := []string{spec.Name}
		for _, pt := range cdf {
			row = append(row, stats.Pct(pt.P))
		}
		t.AddRow(row...)
	}
	return rows, t.String()
}

// Fig11Row is one workload's IML-capacity sweep.
type Fig11Row struct {
	Workload string
	Points   []analysis.IMLCapacityPoint
}

// Fig11 sweeps IML capacity against predictor coverage (Section 6.3).
func Fig11(o Options) ([]Fig11Row, string) {
	o = o.withDefaults()
	entries := analysis.DefaultIMLSweepEntries()
	headers := []string{"Workload"}
	for _, n := range entries {
		headers = append(headers, fmt.Sprintf("%d(%0.0fKB)", n, analysis.IMLStorageKB(n)))
	}
	t := stats.NewTable("Fig. 11. Predictor coverage vs. per-core IML capacity (perfect index)", headers...)
	var rows []Fig11Row
	for _, spec := range o.suite() {
		perCore := missTraces(spec, o)
		blocks := make([][]isa.Block, len(perCore))
		for i, recs := range perCore {
			blocks[i] = trace.Blocks(recs)
		}
		pts := analysis.IMLCapacitySweep(blocks, entries)
		row := []string{spec.Name}
		for _, p := range pts {
			row = append(row, stats.Pct(p.Coverage))
		}
		rows = append(rows, Fig11Row{Workload: spec.Name, Points: pts})
		t.AddRow(row...)
	}
	return rows, t.String()
}
