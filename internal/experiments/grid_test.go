package experiments

import (
	"reflect"
	"sort"
	"testing"

	"tifs/internal/engine"
)

// TestGridMatchesExecution is the anti-drift guard for sharded sweeps:
// for every experiment, the work Grid enumerates must be exactly the
// work Run performs — measured by running each experiment against a
// fresh engine and comparing the engine's canonical key sets against the
// enumeration. A runner that gains a simulation without extending its
// Grid (or vice versa) fails here, before a sharded sweep can silently
// skip or re-run it.
func TestGridMatchesExecution(t *testing.T) {
	for _, r := range Registry() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			e := engine.New(4)
			o := Options{
				Events:      3_000,
				Workloads:   []string{"OLTP-DB2", "Web-Zeus"},
				Parallelism: 4,
				Engine:      e,
			}
			out := r.Run(o)
			if out == "" {
				t.Fatal("experiment produced no output")
			}
			ranSims, ranTraces := e.Keys()

			if r.Grid == nil {
				if len(ranSims)+len(ranTraces) != 0 {
					t.Fatalf("experiment simulates (%d sims, %d traces) but enumerates no grid",
						len(ranSims), len(ranTraces))
				}
				return
			}
			jobs, traces := r.Grid(o)
			if !reflect.DeepEqual(jobKeys(jobs), ranSims) {
				t.Errorf("grid sims != executed sims:\ngrid %v\nran  %v", jobKeys(jobs), ranSims)
			}
			if !reflect.DeepEqual(traceKeys(traces), ranTraces) {
				t.Errorf("grid traces != executed traces:\ngrid %v\nran  %v", traceKeys(traces), ranTraces)
			}
		})
	}
}

// TestGridDeduplicatesAcrossExperiments: the union grid must carry each
// shared configuration (the next-line baselines, the repeated TIFS
// configs) exactly once.
func TestGridDeduplicatesAcrossExperiments(t *testing.T) {
	o := Options{Events: 3_000, Workloads: []string{"OLTP-DB2"}}
	jobs, traces, err := Grid(nil, o)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, j := range jobs {
		key := j.Key()
		if seen[key] {
			t.Errorf("duplicate job in union grid: %s", key)
		}
		seen[key] = true
	}
	if len(traces) != 1 {
		t.Errorf("one workload needs 1 trace extraction, grid has %d", len(traces))
	}
	// fig13 and ablation-eos share the baseline and TIFS-dedicated; the
	// union must be smaller than the per-experiment sum.
	f13, _, _ := Grid([]string{"fig13"}, o)
	eos, _, _ := Grid([]string{"ablation-eos"}, o)
	both, _, _ := Grid([]string{"fig13", "ablation-eos"}, o)
	if len(both) >= len(f13)+len(eos) {
		t.Errorf("union grid (%d) did not deduplicate fig13 (%d) + eos (%d)",
			len(both), len(f13), len(eos))
	}

	if _, _, err := Grid([]string{"fig99"}, o); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func jobKeys(jobs []engine.Job) []string {
	var out []string // nil when empty, matching engine.Keys
	for _, j := range jobs {
		out = append(out, j.Key())
	}
	sort.Strings(out)
	return out
}

func traceKeys(traces []engine.TraceJob) []string {
	var out []string
	for _, tj := range traces {
		out = append(out, tj.Key())
	}
	sort.Strings(out)
	return out
}
