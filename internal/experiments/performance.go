package experiments

import (
	"fmt"

	"tifs/internal/core"
	"tifs/internal/engine"
	"tifs/internal/sim"
	"tifs/internal/stats"
	"tifs/internal/uncore"
)

// Fig12Row is one workload's coverage/discard/traffic accounting.
type Fig12Row struct {
	Workload     string
	Coverage     float64
	Discards     float64
	TrafficIML   float64 // IML read+write traffic as a fraction of base
	TrafficTotal float64 // total added traffic as a fraction of base
}

// fig12Jobs enumerates Fig. 12's grid: one virtualized-TIFS simulation
// per suite workload, in suite order.
func fig12Jobs(o Options) []engine.Job {
	suite := o.suite()
	jobs := make([]engine.Job, len(suite))
	for i, spec := range suite {
		jobs[i] = o.job(spec, sim.TIFS(core.VirtualizedConfig()))
	}
	return jobs
}

// Fig12 measures TIFS (dedicated sizing, virtualized storage) coverage,
// discards, and L2 traffic overhead (Section 6.4).
func Fig12(o Options) ([]Fig12Row, string) {
	o = o.withDefaults()
	var rows []Fig12Row
	t := stats.NewTable("Fig. 12. TIFS coverage, discards, and L2 traffic overhead (virtualized IML)",
		"Workload", "Coverage", "Discards", "IML traffic", "Total overhead")
	suite := o.suite()
	results := o.engine().RunAll(o.ctx(), fig12Jobs(o))
	for i, spec := range suite {
		r := results[i]
		var useful uint64
		for _, s := range r.PerCore {
			useful += s.PrefetchHits
		}
		base := r.Traffic.Base()
		imlFrac := 0.0
		if base > 0 {
			imlFrac = float64(r.Traffic.Count(uncore.TrafficIMLRead)+r.Traffic.Count(uncore.TrafficIMLWrite)) / float64(base)
		}
		row := Fig12Row{
			Workload:     spec.Name,
			Coverage:     r.Coverage(),
			Discards:     r.DiscardFrac(),
			TrafficIML:   imlFrac,
			TrafficTotal: r.Traffic.OverheadFrac(useful),
		}
		rows = append(rows, row)
		t.AddRow(spec.Name, stats.Pct(row.Coverage), stats.Pct(row.Discards),
			stats.Pct(row.TrafficIML), stats.Pct(row.TrafficTotal))
	}
	return rows, t.String()
}

// Fig13Mechanisms returns the comparison set of the paper's Fig. 13.
func Fig13Mechanisms() []sim.Mechanism {
	return []sim.Mechanism{
		sim.FDIP(),
		sim.TIFS(core.UnboundedConfig()),
		sim.TIFS(core.DedicatedConfig()),
		sim.TIFS(core.VirtualizedConfig()),
		sim.Perfect(),
	}
}

// Fig13Row is one workload's speedups over the next-line baseline.
type Fig13Row struct {
	Workload string
	// Speedups maps mechanism name to speedup; Results holds the raw
	// simulation outputs (baseline under "next-line").
	Speedups map[string]float64
	Results  map[string]sim.Result
}

// Fig13 runs the full performance comparison (Section 6.5).
func Fig13(o Options) ([]Fig13Row, string) {
	return comparison(o, Fig13Mechanisms(),
		"Fig. 13. Speedup over next-line prefetching")
}

// Comparison runs an arbitrary mechanism set against the baseline.
func Comparison(o Options, mechs []sim.Mechanism, title string) ([]Fig13Row, string) {
	return comparison(o, mechs, title)
}

// comparisonJobs enumerates a baseline-anchored comparison grid: for
// each suite workload, the next-line baseline followed by every
// mechanism under test (stride 1+len(mechs)). Fig13 and the speedup
// ablations all consume this exact order.
func comparisonJobs(o Options, mechs []sim.Mechanism) []engine.Job {
	suite := o.suite()
	jobs := make([]engine.Job, 0, len(suite)*(1+len(mechs)))
	for _, spec := range suite {
		jobs = append(jobs, o.job(spec, sim.Baseline()))
		for _, m := range mechs {
			jobs = append(jobs, o.job(spec, m))
		}
	}
	return jobs
}

func comparison(o Options, mechs []sim.Mechanism, title string) ([]Fig13Row, string) {
	o = o.withDefaults()
	headers := []string{"Workload"}
	for _, m := range mechs {
		headers = append(headers, m.Name())
	}
	t := stats.NewTable(title, headers...)
	var rows []Fig13Row
	perMechanism := make(map[string][]float64)

	// Fan the full (workload x mechanism) grid, baseline included, out
	// through the engine; the baseline is shared with any other experiment
	// that needs it.
	suite := o.suite()
	stride := 1 + len(mechs)
	results := o.engine().RunAll(o.ctx(), comparisonJobs(o, mechs))

	for wi, spec := range suite {
		base := results[wi*stride]
		row := Fig13Row{
			Workload: spec.Name,
			Speedups: map[string]float64{},
			Results:  map[string]sim.Result{"next-line": base},
		}
		cells := []string{spec.Name}
		for mi, m := range mechs {
			r := results[wi*stride+1+mi]
			sp := r.SpeedupOver(base)
			row.Speedups[m.Name()] = sp
			row.Results[m.Name()] = r
			perMechanism[m.Name()] = append(perMechanism[m.Name()], sp)
			cells = append(cells, fmt.Sprintf("%.3f", sp))
		}
		rows = append(rows, row)
		t.AddRow(cells...)
	}
	// Geometric-mean summary row.
	cells := []string{"geomean"}
	for _, m := range mechs {
		cells = append(cells, fmt.Sprintf("%.3f", stats.GeoMean(perMechanism[m.Name()])))
	}
	t.AddRow(cells...)
	return rows, t.String()
}

// svbLookaheads are the SVB ablation's sweep points.
var svbLookaheads = []int{1, 2, 4, 8}

// svbMechs enumerates the SVB ablation's mechanisms.
func svbMechs() []sim.Mechanism {
	var mechs []sim.Mechanism
	for _, la := range svbLookaheads {
		cfg := core.DedicatedConfig()
		cfg.Lookahead = la
		mechs = append(mechs, sim.TIFS(cfg))
	}
	return mechs
}

// AblationSVB sweeps the SVB rate-matching lookahead (a design knob the
// paper fixes at 4, Section 5.2.1).
func AblationSVB(o Options) string {
	o = o.withDefaults()
	mechs := svbMechs()
	// Distinct names for the table.
	headers := []string{"Workload"}
	for _, la := range svbLookaheads {
		headers = append(headers, fmt.Sprintf("lookahead=%d", la))
	}
	t := stats.NewTable("Ablation: SVB rate-matching lookahead (speedup over next-line)", headers...)
	suite := o.suite()
	stride := 1 + len(mechs)
	results := o.engine().RunAll(o.ctx(), comparisonJobs(o, mechs))
	for wi, spec := range suite {
		base := results[wi*stride]
		cells := []string{spec.Name}
		for mi := range mechs {
			cells = append(cells, fmt.Sprintf("%.3f", results[wi*stride+1+mi].SpeedupOver(base)))
		}
		t.AddRow(cells...)
	}
	return t.String()
}

// eosMechs enumerates the end-of-stream ablation's pair: detection on
// (the paper's dedicated configuration) and off.
func eosMechs() []sim.Mechanism {
	off := core.DedicatedConfig()
	off.DisableEndOfStream = true
	return []sim.Mechanism{sim.TIFS(core.DedicatedConfig()), sim.TIFS(off)}
}

// AblationEndOfStream compares TIFS with and without end-of-stream
// detection (Section 5.1.3), reporting speedup and discard fraction.
func AblationEndOfStream(o Options) string {
	o = o.withDefaults()
	t := stats.NewTable("Ablation: end-of-stream detection (speedup | discards)",
		"Workload", "eos-on", "eos-off", "discards-on", "discards-off")
	suite := o.suite()
	results := o.engine().RunAll(o.ctx(), comparisonJobs(o, eosMechs()))
	for wi, spec := range suite {
		base, rOn, rOff := results[3*wi], results[3*wi+1], results[3*wi+2]
		t.AddRow(spec.Name,
			fmt.Sprintf("%.3f", rOn.SpeedupOver(base)),
			fmt.Sprintf("%.3f", rOff.SpeedupOver(base)),
			stats.Pct(rOn.DiscardFrac()), stats.Pct(rOff.DiscardFrac()))
	}
	return t.String()
}

// dropProbs are the index-drop ablation's injection rates.
var dropProbs = []float64{0, 0.05, 0.2, 0.5}

// dropsJobs enumerates the index-drop ablation's grid in consumption
// order: each workload crossed with every drop probability.
func dropsJobs(o Options) []engine.Job {
	var jobs []engine.Job
	for _, spec := range o.suite() {
		for _, p := range dropProbs {
			cfg := core.VirtualizedConfig()
			cfg.IndexDropProb = p
			jobs = append(jobs, o.job(spec, sim.TIFS(cfg)))
		}
	}
	return jobs
}

// AblationIndexDrops injects IML-pointer-update drops (tag-pipe
// back-pressure, Section 5.2.2) and reports coverage degradation.
func AblationIndexDrops(o Options) string {
	o = o.withDefaults()
	probs := dropProbs
	headers := []string{"Workload"}
	for _, p := range probs {
		headers = append(headers, fmt.Sprintf("drop=%.0f%%", 100*p))
	}
	t := stats.NewTable("Ablation: dropped index updates (TIFS coverage)", headers...)
	suite := o.suite()
	results := o.engine().RunAll(o.ctx(), dropsJobs(o))
	for wi, spec := range suite {
		cells := []string{spec.Name}
		for pi := range probs {
			cells = append(cells, stats.Pct(results[wi*len(probs)+pi].Coverage()))
		}
		t.AddRow(cells...)
	}
	return t.String()
}
