package experiments

import (
	"fmt"
	"strings"

	"tifs/internal/engine"
)

// Runner executes one named experiment and returns its rendered output.
type Runner struct {
	// ID is the experiment identifier ("fig13", "table1", ...).
	ID string
	// Description says what the experiment reproduces.
	Description string
	// Run executes it.
	Run func(Options) string
	// Grid enumerates, without running anything, the simulations and
	// trace extractions Run will request under the same options. Sharded
	// sweeps partition this enumeration across machines; nil means the
	// experiment simulates nothing (static tables).
	// TestGridMatchesExecution holds every Grid to exactly what Run does.
	Grid func(Options) ([]engine.Job, []engine.TraceJob)
}

// simGrid adapts a jobs-only enumerator to the Grid signature.
func simGrid(jobs func(Options) []engine.Job) func(Options) ([]engine.Job, []engine.TraceJob) {
	return func(o Options) ([]engine.Job, []engine.TraceJob) {
		return jobs(o.withDefaults()), nil
	}
}

// traceGrid is the Grid of the offline analysis experiments: trace
// extractions only.
func traceGrid(o Options) ([]engine.Job, []engine.TraceJob) {
	return nil, analysisTraces(o.withDefaults())
}

// Registry lists every reproducible table and figure plus the ablations,
// in paper order.
func Registry() []Runner {
	return []Runner{
		{ID: "table1", Description: "Workload suite parameters (Table I)",
			Run: func(o Options) string { return Table1(o) }},
		{ID: "table2", Description: "System parameters (Table II)",
			Run: func(Options) string { return Table2() }},
		{ID: "fig1", Description: "Opportunity: speedup vs. prefetch coverage (Fig. 1)",
			Run:  func(o Options) string { _, s := Fig1(o); return s },
			Grid: simGrid(fig1Jobs)},
		{ID: "fig3", Description: "SEQUITUR miss categorization (Fig. 3)",
			Run:  func(o Options) string { _, s := Fig3(o); return s },
			Grid: traceGrid},
		{ID: "fig5", Description: "Recurring stream lengths (Fig. 5)",
			Run:  func(o Options) string { _, s := Fig5(o); return s },
			Grid: traceGrid},
		{ID: "fig6", Description: "Stream lookup heuristics (Fig. 6)",
			Run:  func(o Options) string { _, s := Fig6(o); return s },
			Grid: traceGrid},
		{ID: "fig10", Description: "FDIP lookahead limits (Fig. 10)",
			Run:  func(o Options) string { _, s := Fig10(o); return s },
			Grid: traceGrid},
		{ID: "fig11", Description: "IML capacity requirements (Fig. 11)",
			Run:  func(o Options) string { _, s := Fig11(o); return s },
			Grid: traceGrid},
		{ID: "fig12", Description: "Coverage, discards, traffic overhead (Fig. 12)",
			Run:  func(o Options) string { _, s := Fig12(o); return s },
			Grid: simGrid(fig12Jobs)},
		{ID: "fig13", Description: "Performance comparison (Fig. 13)",
			Run:  func(o Options) string { _, s := Fig13(o); return s },
			Grid: simGrid(func(o Options) []engine.Job { return comparisonJobs(o, Fig13Mechanisms()) })},
		{ID: "ablation-svb", Description: "Ablation: SVB lookahead depth",
			Run:  AblationSVB,
			Grid: simGrid(func(o Options) []engine.Job { return comparisonJobs(o, svbMechs()) })},
		{ID: "ablation-eos", Description: "Ablation: end-of-stream detection",
			Run:  AblationEndOfStream,
			Grid: simGrid(func(o Options) []engine.Job { return comparisonJobs(o, eosMechs()) })},
		{ID: "ablation-drops", Description: "Ablation: dropped index updates",
			Run:  AblationIndexDrops,
			Grid: simGrid(dropsJobs)},
	}
}

// Grid enumerates the complete, key-deduplicated work list — simulation
// jobs and miss-trace extractions — that the named experiments (all of
// them when ids is empty) perform under o. The enumeration is
// deterministic in (ids, o): every shard worker of a sweep derives the
// identical list, which is what makes content-addressed partitioning
// sound across machines.
func Grid(ids []string, o Options) ([]engine.Job, []engine.TraceJob, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	var jobs []engine.Job
	var traces []engine.TraceJob
	seenJob := map[string]bool{}
	seenTrace := map[string]bool{}
	for _, id := range ids {
		r, ok := ByID(id)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
		}
		if r.Grid == nil {
			continue
		}
		js, ts := r.Grid(o)
		for _, j := range js {
			if key := j.Key(); !seenJob[key] {
				seenJob[key] = true
				jobs = append(jobs, j)
			}
		}
		for _, t := range ts {
			if key := t.Key(); !seenTrace[key] {
				seenTrace[key] = true
				traces = append(traces, t)
			}
		}
	}
	return jobs, traces, nil
}

// IDs returns the registered experiment identifiers.
func IDs() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.ID)
	}
	return out
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// RunAll executes every registered experiment and concatenates the
// rendered outputs in order. All runners share one engine, so the
// simulations common to several figures (the next-line baselines, the
// repeated TIFS configurations, the per-workload miss traces) run once.
func RunAll(o Options) string {
	out, _ := RunSelected(nil, o, nil)
	return out
}

// Progress observes a multi-experiment run: it is called with each
// experiment's ID before it runs (done=false) and again when its output
// is complete (done=true). The sweep service streams these as job
// events; nil disables observation.
type Progress func(id string, done bool)

// RunSelected executes the named experiments (the full registry, in
// paper order, when ids is empty) sharing one engine, so work common to
// several experiments runs once. A single id renders that experiment's
// bare output — byte-identical to RunExperiment/tifsbench -experiment
// <id>; several (or all) render the "== id: description" sectioned
// concatenation RunAll produces. An unknown id fails before anything
// runs.
func RunSelected(ids []string, o Options, progress Progress) (string, error) {
	runners := make([]Runner, 0, len(ids))
	if len(ids) == 0 {
		runners = Registry()
	} else {
		for _, id := range ids {
			r, ok := ByID(id)
			if !ok {
				return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
			}
			runners = append(runners, r)
		}
	}
	if o.Engine == nil {
		o.Engine = o.engine()
	}
	var b strings.Builder
	for _, r := range runners {
		if progress != nil {
			progress(r.ID, false)
		}
		out := r.Run(o)
		if len(runners) == 1 && len(ids) == 1 {
			b.WriteString(out)
		} else {
			fmt.Fprintf(&b, "== %s: %s\n\n", r.ID, r.Description)
			b.WriteString(out)
			b.WriteString("\n")
		}
		if progress != nil {
			progress(r.ID, true)
		}
	}
	return b.String(), nil
}
