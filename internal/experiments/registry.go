package experiments

import (
	"fmt"
	"strings"
)

// Runner executes one named experiment and returns its rendered output.
type Runner struct {
	// ID is the experiment identifier ("fig13", "table1", ...).
	ID string
	// Description says what the experiment reproduces.
	Description string
	// Run executes it.
	Run func(Options) string
}

// Registry lists every reproducible table and figure plus the ablations,
// in paper order.
func Registry() []Runner {
	return []Runner{
		{"table1", "Workload suite parameters (Table I)", func(o Options) string { return Table1(o) }},
		{"table2", "System parameters (Table II)", func(Options) string { return Table2() }},
		{"fig1", "Opportunity: speedup vs. prefetch coverage (Fig. 1)", func(o Options) string { _, s := Fig1(o); return s }},
		{"fig3", "SEQUITUR miss categorization (Fig. 3)", func(o Options) string { _, s := Fig3(o); return s }},
		{"fig5", "Recurring stream lengths (Fig. 5)", func(o Options) string { _, s := Fig5(o); return s }},
		{"fig6", "Stream lookup heuristics (Fig. 6)", func(o Options) string { _, s := Fig6(o); return s }},
		{"fig10", "FDIP lookahead limits (Fig. 10)", func(o Options) string { _, s := Fig10(o); return s }},
		{"fig11", "IML capacity requirements (Fig. 11)", func(o Options) string { _, s := Fig11(o); return s }},
		{"fig12", "Coverage, discards, traffic overhead (Fig. 12)", func(o Options) string { _, s := Fig12(o); return s }},
		{"fig13", "Performance comparison (Fig. 13)", func(o Options) string { _, s := Fig13(o); return s }},
		{"ablation-svb", "Ablation: SVB lookahead depth", AblationSVB},
		{"ablation-eos", "Ablation: end-of-stream detection", AblationEndOfStream},
		{"ablation-drops", "Ablation: dropped index updates", AblationIndexDrops},
	}
}

// IDs returns the registered experiment identifiers.
func IDs() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.ID)
	}
	return out
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range Registry() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// RunAll executes every registered experiment and concatenates the
// rendered outputs in order. All runners share one engine, so the
// simulations common to several figures (the next-line baselines, the
// repeated TIFS configurations, the per-workload miss traces) run once.
func RunAll(o Options) string {
	if o.Engine == nil {
		o.Engine = o.engine()
	}
	var b strings.Builder
	for _, r := range Registry() {
		fmt.Fprintf(&b, "== %s: %s\n\n", r.ID, r.Description)
		b.WriteString(r.Run(o))
		b.WriteString("\n")
	}
	return b.String()
}
