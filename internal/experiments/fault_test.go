package experiments

import (
	"testing"
	"time"

	"tifs/internal/engine"
	"tifs/internal/store"
	"tifs/internal/vfs"
)

// TestFaultGoldenBytesUnderTransientStoreFaults is the paper-output face
// of the failure model: with the persistent store riding on a filesystem
// that throws bursts of transient EIO at its appends, every experiment
// still renders byte-identical to its committed golden file. Faults may
// cost retries; they may never change a digit of a table.
func TestFaultGoldenBytesUnderTransientStoreFaults(t *testing.T) {
	dir := t.TempDir()
	// Three consecutive EIO failures on a record append (within the retry
	// budget of 4 attempts), twice more over the run via later rules.
	ffs := vfs.NewFault(vfs.OS,
		vfs.Rule{Op: vfs.OpWrite, Path: "results.tifs", Nth: 2, Times: 2},
		vfs.Rule{Op: vfs.OpWrite, Path: "results.tifs", Nth: 9},
		vfs.Rule{Op: vfs.OpWrite, Path: "results.tifs", Nth: 17},
	)
	st, err := store.OpenFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	st.Retry.Sleep = func(time.Duration) {}
	defer st.Close()
	if st.Stats().ReadOnly {
		t.Fatal("store degraded before the run started")
	}

	e := engine.New(8)
	e.SetStore(st)
	for _, r := range Registry()[:3] {
		want := readGolden(t, r.ID)
		if got := r.Run(goldenOptions(8, e)); got != want {
			t.Errorf("%s: output under transient store faults diverged from golden:\n--- golden\n%s\n--- got\n%s",
				r.ID, want, got)
		}
	}
	if st.Stats().ReadOnly {
		t.Error("transient faults within the retry budget degraded the store")
	}
}
