// Package branch implements the front-end branch prediction machinery of
// Table II — a hybrid predictor combining a 16K-entry gShare with a
// 16K-entry bimodal table under a selector — plus the branch target buffer
// and return-address stack that a fetch-directed prefetcher (FDIP,
// Reinman et al.) needs to explore control flow ahead of the fetch unit.
//
// Prediction quality is what limits FDIP's lookahead in the paper
// (Sections 3.2 and 6.2); TIFS itself uses none of this machinery.
package branch

import "tifs/internal/isa"

// counter is a 2-bit saturating counter; >= 2 predicts taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) inc() counter {
	if c < 3 {
		return c + 1
	}
	return c
}

func (c counter) dec() counter {
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter
	mask  uint64
}

// NewBimodal creates a bimodal predictor with the given number of entries
// (must be a power of two). Counters initialize to weakly taken.
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: entries must be a positive power of two")
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 2
	}
	return &Bimodal{table: t, mask: uint64(entries - 1)}
}

// Reset restores every counter to the weakly-taken initial state.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

func (b *Bimodal) index(pc isa.Addr) uint64 {
	return (uint64(pc) >> 2) & b.mask
}

// Predict returns the predicted direction for the branch at pc.
func (b *Bimodal) Predict(pc isa.Addr) bool {
	return b.table[b.index(pc)].taken()
}

// Update trains the entry for pc with the resolved direction.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := b.index(pc)
	if taken {
		b.table[i] = b.table[i].inc()
	} else {
		b.table[i] = b.table[i].dec()
	}
}

// GShare is a global-history predictor: the PC is XORed with a shift
// register of recent branch outcomes to index the counter table.
type GShare struct {
	table   []counter
	mask    uint64
	history uint64
	bits    uint
}

// NewGShare creates a gShare predictor with the given number of entries
// (power of two); history length is log2(entries).
func NewGShare(entries int) *GShare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: entries must be a positive power of two")
	}
	t := make([]counter, entries)
	for i := range t {
		t[i] = 2
	}
	bits := uint(0)
	for 1<<bits < entries {
		bits++
	}
	return &GShare{table: t, mask: uint64(entries - 1), bits: bits}
}

// Reset restores the counters to weakly taken and clears the history.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

func (g *GShare) index(pc isa.Addr) uint64 {
	return ((uint64(pc) >> 2) ^ g.history) & g.mask
}

// Predict returns the predicted direction for the branch at pc under the
// current global history.
func (g *GShare) Predict(pc isa.Addr) bool {
	return g.table[g.index(pc)].taken()
}

// Update trains the indexed entry and shifts the outcome into the global
// history.
func (g *GShare) Update(pc isa.Addr, taken bool) {
	i := g.index(pc)
	if taken {
		g.table[i] = g.table[i].inc()
	} else {
		g.table[i] = g.table[i].dec()
	}
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// Hybrid is the Table II predictor: gShare and bimodal components with a
// per-PC chooser trained toward whichever component was correct.
type Hybrid struct {
	gshare  *GShare
	bimodal *Bimodal
	chooser []counter // >= 2 selects gshare
	mask    uint64
}

// NewHybrid creates a hybrid predictor; each component table and the
// chooser have the given number of entries.
func NewHybrid(entries int) *Hybrid {
	h := &Hybrid{
		gshare:  NewGShare(entries),
		bimodal: NewBimodal(entries),
		chooser: make([]counter, entries),
		mask:    uint64(entries - 1),
	}
	for i := range h.chooser {
		h.chooser[i] = 2
	}
	return h
}

// NewDefaultHybrid returns the paper's configuration: 16K gShare and 16K
// bimodal entries.
func NewDefaultHybrid() *Hybrid { return NewHybrid(16 * 1024) }

// Entries returns the per-component table size the predictor was built
// with (pooled cores reuse a predictor only when the size matches).
func (h *Hybrid) Entries() int { return len(h.chooser) }

// Reset restores the initial prediction state of both components and the
// chooser, as if freshly constructed.
func (h *Hybrid) Reset() {
	h.gshare.Reset()
	h.bimodal.Reset()
	for i := range h.chooser {
		h.chooser[i] = 2
	}
}

// Snapshot holds a checkpoint of a Hybrid's trained state (both
// component tables, the global history, and the chooser). Save reuses
// its buffers, so pooled snapshots allocate only on first use.
type Snapshot struct {
	gshare  []counter
	history uint64
	bimodal []counter
	chooser []counter
}

// Save copies the predictor's current state into s.
func (h *Hybrid) Save(s *Snapshot) {
	s.gshare = append(s.gshare[:0], h.gshare.table...)
	s.history = h.gshare.history
	s.bimodal = append(s.bimodal[:0], h.bimodal.table...)
	s.chooser = append(s.chooser[:0], h.chooser...)
}

// Restore rewinds the predictor to the state captured by Save. The
// snapshot must come from a predictor with the same table sizes.
func (h *Hybrid) Restore(s *Snapshot) {
	copy(h.gshare.table, s.gshare)
	h.gshare.history = s.history
	copy(h.bimodal.table, s.bimodal)
	copy(h.chooser, s.chooser)
}

func (h *Hybrid) chooserIndex(pc isa.Addr) uint64 {
	return (uint64(pc) >> 2) & h.mask
}

// Predict returns the predicted direction for the branch at pc.
func (h *Hybrid) Predict(pc isa.Addr) bool {
	if h.chooser[h.chooserIndex(pc)].taken() {
		return h.gshare.Predict(pc)
	}
	return h.bimodal.Predict(pc)
}

// Update trains both components and steers the chooser toward the one
// that predicted correctly (no movement when they agree).
func (h *Hybrid) Update(pc isa.Addr, taken bool) {
	gp := h.gshare.Predict(pc)
	bp := h.bimodal.Predict(pc)
	ci := h.chooserIndex(pc)
	if gp != bp {
		if gp == taken {
			h.chooser[ci] = h.chooser[ci].inc()
		} else {
			h.chooser[ci] = h.chooser[ci].dec()
		}
	}
	h.gshare.Update(pc, taken)
	h.bimodal.Update(pc, taken)
}

// BTB is a direct-mapped branch target buffer with tags, mapping branch
// PCs to their most recent taken targets.
type BTB struct {
	tags    []uint64
	targets []isa.Addr
	valid   []bool
	mask    uint64
}

// NewBTB creates a BTB with the given number of entries (power of two).
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("branch: entries must be a positive power of two")
	}
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]isa.Addr, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

func (b *BTB) index(pc isa.Addr) uint64 { return (uint64(pc) >> 2) & b.mask }

// Lookup returns the predicted target for pc, if any.
func (b *BTB) Lookup(pc isa.Addr) (isa.Addr, bool) {
	i := b.index(pc)
	if b.valid[i] && b.tags[i] == uint64(pc) {
		return b.targets[i], true
	}
	return 0, false
}

// Update records the resolved target for pc.
func (b *BTB) Update(pc isa.Addr, target isa.Addr) {
	i := b.index(pc)
	b.tags[i] = uint64(pc)
	b.targets[i] = target
	b.valid[i] = true
}

// RAS is a fixed-depth return-address stack with wraparound overwrite on
// overflow, as hardware RASes behave.
type RAS struct {
	stack []isa.Addr
	top   int // number of live entries, saturates at capacity
	pos   int // next push slot
}

// NewRAS creates a return-address stack with the given capacity.
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("branch: RAS depth must be positive")
	}
	return &RAS{stack: make([]isa.Addr, depth)}
}

// Push records a return address at a call.
func (r *RAS) Push(ret isa.Addr) {
	r.stack[r.pos] = ret
	r.pos = (r.pos + 1) % len(r.stack)
	if r.top < len(r.stack) {
		r.top++
	}
}

// Pop predicts the target of a return. ok is false when the stack is
// empty (prediction unavailable).
func (r *RAS) Pop() (isa.Addr, bool) {
	if r.top == 0 {
		return 0, false
	}
	r.pos = (r.pos - 1 + len(r.stack)) % len(r.stack)
	r.top--
	return r.stack[r.pos], true
}

// Depth returns the number of live entries.
func (r *RAS) Depth() int { return r.top }
