package branch

import (
	"testing"

	"tifs/internal/isa"
	"tifs/internal/xrand"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.inc()
	}
	if c != 3 {
		t.Errorf("inc saturation = %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.dec()
	}
	if c != 0 {
		t.Errorf("dec saturation = %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := isa.Addr(0x1000)
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Error("bimodal failed to learn always-not-taken")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Error("bimodal failed to relearn always-taken")
	}
}

func TestBimodalPanicsOnBadSize(t *testing.T) {
	for _, n := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBimodal(%d) should panic", n)
				}
			}()
			NewBimodal(n)
		}()
	}
}

func TestGShareLearnsAlternating(t *testing.T) {
	// A strictly alternating branch is mispredicted by bimodal but learned
	// perfectly by gshare once history warms up.
	g := NewGShare(4096)
	pc := isa.Addr(0x2000)
	taken := false
	// Warm up.
	for i := 0; i < 200; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("gshare alternating accuracy = %d/100", correct)
	}
}

func TestHybridBeatsWorstComponent(t *testing.T) {
	// Mix of biased branches (bimodal-friendly) and history-dependent
	// branches (gshare-friendly); the hybrid should approach the better
	// component on each.
	h := NewDefaultHybrid()
	rng := xrand.New(99)
	biased := isa.Addr(0x100)
	alt := isa.Addr(0x204)
	altTaken := false
	for i := 0; i < 2000; i++ {
		h.Update(biased, rng.Bool(0.95))
		h.Update(alt, altTaken)
		altTaken = !altTaken
	}
	// Measure.
	correctBiased, correctAlt, n := 0, 0, 500
	for i := 0; i < n; i++ {
		outcome := rng.Bool(0.95)
		if h.Predict(biased) == outcome {
			correctBiased++
		}
		h.Update(biased, outcome)

		if h.Predict(alt) == altTaken {
			correctAlt++
		}
		h.Update(alt, altTaken)
		altTaken = !altTaken
	}
	if float64(correctBiased)/float64(n) < 0.85 {
		t.Errorf("hybrid on biased branch: %d/%d", correctBiased, n)
	}
	if float64(correctAlt)/float64(n) < 0.90 {
		t.Errorf("hybrid on alternating branch: %d/%d", correctAlt, n)
	}
}

func TestHybridRandomBranchNearChance(t *testing.T) {
	h := NewDefaultHybrid()
	rng := xrand.New(7)
	pc := isa.Addr(0x3000)
	correct, n := 0, 4000
	for i := 0; i < n; i++ {
		outcome := rng.Bool(0.5)
		if h.Predict(pc) == outcome {
			correct++
		}
		h.Update(pc, outcome)
	}
	acc := float64(correct) / float64(n)
	if acc > 0.6 {
		t.Errorf("hybrid predicted a coin flip with accuracy %f", acc)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(1024)
	pc, target := isa.Addr(0x4000), isa.Addr(0x8000)
	if _, ok := b.Lookup(pc); ok {
		t.Error("cold BTB lookup should miss")
	}
	b.Update(pc, target)
	got, ok := b.Lookup(pc)
	if !ok || got != target {
		t.Errorf("Lookup = %v,%v", got, ok)
	}
	// Conflicting PC (same index, different tag) evicts.
	conflict := pc + isa.Addr(1024*4)
	b.Update(conflict, 0x9000)
	if _, ok := b.Lookup(pc); ok {
		t.Error("conflicting update should evict prior entry")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(8)
	if _, ok := r.Pop(); ok {
		t.Error("empty RAS pop should fail")
	}
	r.Push(0x100)
	r.Push(0x200)
	r.Push(0x300)
	if r.Depth() != 3 {
		t.Errorf("Depth = %d", r.Depth())
	}
	for _, want := range []isa.Addr{0x300, 0x200, 0x100} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %v,%v; want %v", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("drained RAS pop should fail")
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 1; i <= 6; i++ {
		r.Push(isa.Addr(i * 0x10))
	}
	// Stack holds the 4 most recent: 0x60, 0x50, 0x40, 0x30.
	for _, want := range []isa.Addr{0x60, 0x50, 0x40, 0x30} {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Errorf("Pop = %v,%v; want %v", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("RAS should be empty after draining capacity")
	}
}

func TestRASPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRAS(0) should panic")
		}
	}()
	NewRAS(0)
}

func TestPredictorAccuracyOnBiasedStream(t *testing.T) {
	// Overall sanity: on a stream of 90%-biased branches across many PCs,
	// the hybrid should exceed 80% accuracy after warmup.
	h := NewDefaultHybrid()
	rng := xrand.New(1234)
	pcs := make([]isa.Addr, 64)
	bias := make([]float64, 64)
	for i := range pcs {
		pcs[i] = isa.Addr(0x1_0000 + i*4)
		if rng.Bool(0.5) {
			bias[i] = 0.9
		} else {
			bias[i] = 0.1
		}
	}
	for i := 0; i < 20000; i++ {
		k := rng.Intn(64)
		h.Update(pcs[k], rng.Bool(bias[k]))
	}
	correct, n := 0, 20000
	for i := 0; i < n; i++ {
		k := rng.Intn(64)
		outcome := rng.Bool(bias[k])
		if h.Predict(pcs[k]) == outcome {
			correct++
		}
		h.Update(pcs[k], outcome)
	}
	if acc := float64(correct) / float64(n); acc < 0.8 {
		t.Errorf("hybrid accuracy on biased stream = %f", acc)
	}
}

func BenchmarkHybridPredictUpdate(b *testing.B) {
	h := NewDefaultHybrid()
	rng := xrand.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := isa.Addr(uint64(i%4096) * 4)
		h.Update(pc, h.Predict(pc) != rng.Bool(0.1))
	}
}
