package prefetch

import "tifs/internal/isa"

// DiscontinuityConfig parameterizes the discontinuity predictor.
type DiscontinuityConfig struct {
	// TableEntries sizes the direct-mapped discontinuity table
	// (default 4096 entries).
	TableEntries int
	// BufferBlocks is the prefetch buffer capacity (default 32).
	BufferBlocks int
	// Depth is how many sequential blocks to prefetch at the target of a
	// predicted discontinuity (default 2, mirroring next-line).
	Depth int
}

func (c DiscontinuityConfig) withDefaults() DiscontinuityConfig {
	if c.TableEntries == 0 {
		c.TableEntries = 4096
	}
	if c.BufferBlocks == 0 {
		c.BufferBlocks = 32
	}
	if c.Depth == 0 {
		c.Depth = 2
	}
	return c
}

type discEntry struct {
	from  isa.Block
	to    isa.Block
	valid bool
}

// Discontinuity models the discontinuity predictor of Spracklen et al.
// (HPCA 2005; the paper's Section 7): a table maps an instruction block
// to the discontinuous successor block last fetched after it. On every
// demand fetch the table is consulted and, on a hit, the discontinuous
// target and its next-line successors are prefetched. It bridges exactly
// one discontinuity, which is its documented limitation.
//
// It is included as an extra baseline beyond the paper's comparison set.
type Discontinuity struct {
	cfg  DiscontinuityConfig
	mem  Memory
	l1   L1View
	core int

	table  []discEntry
	buffer []fdipEntry

	prevBlock isa.Block
	havePrev  bool

	stats Stats
}

// NewDiscontinuity creates a discontinuity prefetcher for one core.
func NewDiscontinuity(cfg DiscontinuityConfig, core int, mem Memory, l1 L1View) *Discontinuity {
	cfg = cfg.withDefaults()
	return &Discontinuity{
		cfg:    cfg,
		mem:    mem,
		l1:     l1,
		core:   core,
		table:  make([]discEntry, cfg.TableEntries),
		buffer: make([]fdipEntry, 0, cfg.BufferBlocks),
	}
}

// Reset restores the engine to the state NewDiscontinuity would produce
// for the same core/memory/L1 binding, reusing its table and buffer.
func (d *Discontinuity) Reset(cfg DiscontinuityConfig) {
	cfg = cfg.withDefaults()
	if len(d.table) == cfg.TableEntries {
		clear(d.table)
	} else {
		d.table = make([]discEntry, cfg.TableEntries)
	}
	if cap(d.buffer) < cfg.BufferBlocks {
		d.buffer = make([]fdipEntry, 0, cfg.BufferBlocks)
	} else {
		d.buffer = d.buffer[:0]
	}
	d.cfg = cfg
	d.prevBlock = 0
	d.havePrev = false
	d.stats = Stats{}
}

// Name implements Prefetcher.
func (d *Discontinuity) Name() string { return "discontinuity" }

// OnWindow implements Prefetcher.
func (d *Discontinuity) OnWindow([]isa.BlockEvent, uint64) {}

func (d *Discontinuity) slot(b isa.Block) *discEntry {
	return &d.table[uint64(b)%uint64(len(d.table))]
}

// OnFetchBlock implements Prefetcher: train on observed discontinuities
// and prefetch through predicted ones.
func (d *Discontinuity) OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64) {
	// Train: a non-sequential transition from the previous fetch block
	// records a discontinuity.
	if d.havePrev && b != d.prevBlock && b != d.prevBlock+1 {
		e := d.slot(d.prevBlock)
		e.from, e.to, e.valid = d.prevBlock, b, true
	}
	d.prevBlock = b
	d.havePrev = true

	// Predict: prefetch the discontinuous path (plus next-line depth).
	if e := d.slot(b); e.valid && e.from == b {
		for i := 0; i <= d.cfg.Depth; i++ {
			d.prefetchBlock(e.to+isa.Block(i), now)
		}
	}
}

func (d *Discontinuity) prefetchBlock(b isa.Block, now uint64) {
	if d.l1 != nil && d.l1.ContainsBlock(b) {
		return
	}
	for i := range d.buffer {
		if d.buffer[i].block == b {
			return
		}
	}
	ready := d.mem.Prefetch(d.core, b, now)
	d.stats.Issued++
	e := fdipEntry{block: b, ready: ready, lastUse: now}
	if len(d.buffer) < d.cfg.BufferBlocks {
		d.buffer = append(d.buffer, e)
		return
	}
	victim := 0
	for i := 1; i < len(d.buffer); i++ {
		if d.buffer[i].lastUse < d.buffer[victim].lastUse {
			victim = i
		}
	}
	if !d.buffer[victim].used {
		d.stats.Discards++
	}
	d.buffer[victim] = e
}

// OnEvent implements Prefetcher.
func (d *Discontinuity) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher.
func (d *Discontinuity) Probe(b isa.Block, now uint64) (uint64, bool) {
	for i := range d.buffer {
		if d.buffer[i].block == b {
			ready := d.buffer[i].ready
			d.buffer = append(d.buffer[:i], d.buffer[i+1:]...)
			if ready <= now {
				d.stats.HitsTimely++
			} else {
				d.stats.HitsLate++
			}
			return ready, true
		}
	}
	return 0, false
}

// Stats implements Prefetcher.
func (d *Discontinuity) Stats() Stats { return d.stats }
