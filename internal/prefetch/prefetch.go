// Package prefetch defines the instruction-prefetcher contract used by
// the timing simulator and implements the paper's comparison points: a
// null prefetcher (the next-line-only baseline; next-line itself lives in
// the fetch unit), the probabilistic prefetcher of the Fig. 1 opportunity
// study, the perfect streamer upper bound, the discontinuity predictor
// (Spracklen et al., related work), and FDIP, the state-of-the-art
// fetch-directed instruction prefetcher (Reinman et al.) that TIFS is
// compared against in Fig. 13.
//
// TIFS itself lives in internal/core (it is the paper's contribution);
// it implements the same Prefetcher interface.
package prefetch

import "tifs/internal/isa"

// Memory is the prefetcher's view of the lower-level memory system: it
// issues block reads and IML metadata accesses and learns when they
// complete. The uncore implements it with bank contention; tests use
// fixed-latency fakes.
type Memory interface {
	// Prefetch issues a prefetch of block b for the given core at the
	// core's current cycle and returns the cycle the data arrives.
	Prefetch(core int, b isa.Block, now uint64) (ready uint64)
	// MetaRead issues a predictor-metadata read (virtualized IML read) at
	// cache-block granularity and returns its completion cycle.
	MetaRead(core int, token uint64, now uint64) (ready uint64)
	// MetaWrite issues a predictor-metadata write.
	MetaWrite(core int, token uint64, now uint64)
}

// L1View lets run-ahead prefetchers skip blocks already resident in the
// core's L1 instruction cache (one of the paper's criticisms of
// branch-predictor-directed prefetchers is needing exactly this filter).
type L1View interface {
	// ContainsBlock probes the L1-I without disturbing replacement state.
	ContainsBlock(b isa.Block) bool
}

// Stats are the prefetcher counters every implementation reports.
type Stats struct {
	// Issued is the number of prefetches sent to memory.
	Issued uint64
	// HitsTimely counts probe hits whose block had fully arrived.
	HitsTimely uint64
	// HitsLate counts probe hits still in flight (latency partly hidden).
	HitsLate uint64
	// Discards counts prefetched blocks evicted unused (Fig. 12).
	Discards uint64
	// MetaReads and MetaWrites count predictor-metadata block transfers
	// (TIFS virtualized IML traffic, Fig. 12).
	MetaReads, MetaWrites uint64
}

// Hits returns total probe hits.
func (s Stats) Hits() uint64 { return s.HitsTimely + s.HitsLate }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Issued += other.Issued
	s.HitsTimely += other.HitsTimely
	s.HitsLate += other.HitsLate
	s.Discards += other.Discards
	s.MetaReads += other.MetaReads
	s.MetaWrites += other.MetaWrites
}

// FetchOutcome tells the prefetcher how a demand block fetch was served.
type FetchOutcome uint8

// Fetch outcomes, in service order.
const (
	// FetchL1Hit: the block was in the L1-I cache.
	FetchL1Hit FetchOutcome = iota
	// FetchNextLineHit: the fetch unit's next-line prefetcher had the
	// block (counted as an L1 hit in all paper metrics).
	FetchNextLineHit
	// FetchPrefetchHit: this prefetcher's Probe supplied the block.
	FetchPrefetchHit
	// FetchMiss: a true miss — the paper's trainable event.
	FetchMiss
)

// String names the outcome.
func (o FetchOutcome) String() string {
	switch o {
	case FetchL1Hit:
		return "l1-hit"
	case FetchNextLineHit:
		return "next-line-hit"
	case FetchPrefetchHit:
		return "prefetch-hit"
	case FetchMiss:
		return "miss"
	default:
		return "unknown"
	}
}

// Prefetcher is the per-core instruction prefetch engine. The fetch unit
// drives it with the calls below; all cycles are core-local.
//
// Call protocol per core step: OnWindow with the upcoming event window
// (window[0] is the event about to fetch); then, for each covered cache
// block, on an L1/next-line miss a Probe, followed by OnFetchBlock with
// the final outcome; then OnEvent once the event retires. A Probe hit
// transfers the block to the L1 (the prefetcher frees its copy) and may
// perform training internally; the subsequent OnFetchBlock carries
// FetchPrefetchHit for information only.
type Prefetcher interface {
	// Name identifies the configuration in experiment output.
	Name() string
	// OnWindow exposes the upcoming event window for run-ahead
	// exploration. window[0] is the next event to execute.
	OnWindow(window []isa.BlockEvent, now uint64)
	// OnFetchBlock notifies of a demand block fetch and its outcome.
	OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64)
	// OnEvent notifies of event retirement (training).
	OnEvent(ev isa.BlockEvent, now uint64)
	// Probe asks whether the prefetcher holds block b on an L1 miss. On a
	// hit the entry transfers to the L1 and the returned cycle says when
	// the data is (or will be) available.
	Probe(b isa.Block, now uint64) (ready uint64, ok bool)
	// Stats returns the accumulated counters.
	Stats() Stats
}

// None is the null prefetcher: the system then relies solely on the fetch
// unit's next-line prefetcher, the paper's baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "next-line" }

// OnWindow implements Prefetcher.
func (None) OnWindow([]isa.BlockEvent, uint64) {}

// OnFetchBlock implements Prefetcher.
func (None) OnFetchBlock(isa.Block, FetchOutcome, uint64) {}

// OnEvent implements Prefetcher.
func (None) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher.
func (None) Probe(isa.Block, uint64) (uint64, bool) { return 0, false }

// Stats implements Prefetcher.
func (None) Stats() Stats { return Stats{} }
