package prefetch

import (
	"testing"

	"tifs/internal/isa"
)

// fakeMem is a fixed-latency Memory for unit tests.
type fakeMem struct {
	latency    uint64
	prefetches []isa.Block
	metaReads  int
	metaWrites int
}

func (m *fakeMem) Prefetch(core int, b isa.Block, now uint64) uint64 {
	m.prefetches = append(m.prefetches, b)
	return now + m.latency
}

func (m *fakeMem) MetaRead(core int, token uint64, now uint64) uint64 {
	m.metaReads++
	return now + m.latency
}

func (m *fakeMem) MetaWrite(core int, token uint64, now uint64) {
	m.metaWrites++
}

// fakeL1 reports a fixed resident set.
type fakeL1 struct{ resident map[isa.Block]bool }

func (l *fakeL1) ContainsBlock(b isa.Block) bool { return l.resident[b] }

func seqWindow(pc isa.Addr, n int) []isa.BlockEvent {
	w := make([]isa.BlockEvent, n)
	for i := range w {
		w[i] = isa.BlockEvent{PC: pc, Instrs: isa.InstrsPerBlock, Kind: isa.CTFallthrough}
		pc = pc.Add(isa.InstrsPerBlock)
	}
	return w
}

func TestNonePrefetcher(t *testing.T) {
	var p None
	if p.Name() != "next-line" {
		t.Errorf("Name = %q", p.Name())
	}
	if _, ok := p.Probe(1, 0); ok {
		t.Error("None must never hit")
	}
	if p.Stats() != (Stats{}) {
		t.Error("None must have zero stats")
	}
}

func TestPerfectHitsSeenBlocks(t *testing.T) {
	p := NewPerfect()
	if _, ok := p.Probe(5, 10); ok {
		t.Error("unseen block must miss")
	}
	p.OnFetchBlock(5, FetchMiss, 10)
	ready, ok := p.Probe(5, 20)
	if !ok || ready != 20 {
		t.Errorf("Probe = %d,%v", ready, ok)
	}
	if p.Stats().HitsTimely != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestProbabilisticCoverageZeroAndOne(t *testing.T) {
	p0 := NewProbabilistic(0, "t")
	p1 := NewProbabilistic(1, "t")
	for i := 0; i < 100; i++ {
		b := isa.Block(i)
		p0.OnFetchBlock(b, FetchMiss, 0)
		p1.OnFetchBlock(b, FetchMiss, 0)
	}
	hits0, hits1 := 0, 0
	for i := 0; i < 100; i++ {
		if _, ok := p0.Probe(isa.Block(i), 0); ok {
			hits0++
		}
		if _, ok := p1.Probe(isa.Block(i), 0); ok {
			hits1++
		}
	}
	if hits0 != 0 {
		t.Errorf("coverage 0 hit %d times", hits0)
	}
	if hits1 != 100 {
		t.Errorf("coverage 1 hit %d/100", hits1)
	}
}

func TestProbabilisticCoverageMid(t *testing.T) {
	p := NewProbabilistic(0.5, "mid")
	for i := 0; i < 2000; i++ {
		p.OnFetchBlock(isa.Block(i), FetchMiss, 0)
	}
	hits := 0
	for i := 0; i < 2000; i++ {
		if _, ok := p.Probe(isa.Block(i), 0); ok {
			hits++
		}
	}
	if hits < 850 || hits > 1150 {
		t.Errorf("coverage 0.5 hit %d/2000", hits)
	}
}

func TestFDIPPrefetchesStraightLine(t *testing.T) {
	mem := &fakeMem{latency: 20}
	l1 := &fakeL1{resident: map[isa.Block]bool{}}
	f := NewFDIP(FDIPConfig{ExploreRate: 100}, 0, mem, l1)

	w := seqWindow(0x10000, 8)
	f.OnWindow(w, 100)
	// 96-instr budget = 6 events of 16 instrs each beyond window[0].
	if len(mem.prefetches) != 6 {
		t.Fatalf("issued %d prefetches, want 6 (96-instr budget)", len(mem.prefetches))
	}
	// First prefetched block is window[1]'s block.
	if mem.prefetches[0] != w[1].PC.Block() {
		t.Errorf("first prefetch %v, want %v", mem.prefetches[0], w[1].PC.Block())
	}
	// Probe hit transfers and reports ready.
	ready, ok := f.Probe(w[1].PC.Block(), 105)
	if !ok || ready != 120 {
		t.Errorf("Probe = %d,%v; want 120,true", ready, ok)
	}
	// Second probe of the same block misses (transferred).
	if _, ok := f.Probe(w[1].PC.Block(), 130); ok {
		t.Error("block should have been consumed")
	}
}

func TestFDIPStopsAtUnpredictableBranch(t *testing.T) {
	mem := &fakeMem{latency: 20}
	f := NewFDIP(FDIPConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})

	// window[0] ends in a conditional branch. Train the predictor to
	// expect not-taken, then present a taken branch: exploration must not
	// proceed past it.
	br := isa.BlockEvent{PC: 0x2000, Instrs: 4, Kind: isa.CTBranch, Taken: true, Target: 0x9000}
	for i := 0; i < 10; i++ {
		f.OnEvent(isa.BlockEvent{PC: 0x2000, Instrs: 4, Kind: isa.CTBranch, Taken: false}, 0)
	}
	w := []isa.BlockEvent{br, {PC: 0x9000, Instrs: 16, Kind: isa.CTFallthrough}, {PC: 0x9040, Instrs: 16, Kind: isa.CTFallthrough}}
	f.OnWindow(w, 0)
	// Only wrong-path blocks (the fallthrough at 0x2004) may be fetched;
	// the true target must not be.
	for _, b := range mem.prefetches {
		if b == isa.Addr(0x9000).Block() {
			t.Errorf("explored past a mispredicted branch: %v", mem.prefetches)
		}
	}

	// Now train it to predict taken; exploration proceeds once the
	// blocked window drains.
	for i := 0; i < 10; i++ {
		f.OnEvent(isa.BlockEvent{PC: 0x2000, Instrs: 4, Kind: isa.CTBranch, Taken: true}, 0)
	}
	mem.prefetches = nil
	f.OnWindow(w, 0) // consumes the blocked count
	f.OnWindow(w, 0)
	found := false
	for _, b := range mem.prefetches {
		if b == isa.Addr(0x9000).Block() {
			found = true
		}
	}
	if !found {
		t.Error("did not explore past a correctly predicted branch")
	}
}

func TestFDIPStopsAtTrap(t *testing.T) {
	mem := &fakeMem{latency: 20}
	f := NewFDIP(FDIPConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	w := []isa.BlockEvent{
		{PC: 0x3000, Instrs: 4, Kind: isa.CTTrap, Taken: true, Target: 0xf0000000},
		{PC: 0xf0000000, Instrs: 16, Kind: isa.CTFallthrough},
	}
	f.OnWindow(w, 0)
	if len(mem.prefetches) != 0 {
		t.Error("explored past a trap")
	}
}

func TestFDIPBranchBudget(t *testing.T) {
	mem := &fakeMem{latency: 20}
	f := NewFDIP(FDIPConfig{MaxInstrs: 10000, MaxBranches: 2, ExploreRate: 100}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	// Chain of perfectly-predictable not-taken branches (predictor inits
	// weakly-taken, so train first).
	var w []isa.BlockEvent
	pc := isa.Addr(0x4000)
	for i := 0; i < 6; i++ {
		ev := isa.BlockEvent{PC: pc, Instrs: 4, Kind: isa.CTBranch, Taken: false, Target: 0x100}
		for k := 0; k < 8; k++ {
			f.OnEvent(ev, 0)
		}
		w = append(w, ev)
		pc = pc.Add(4)
	}
	f.OnWindow(w, 0)
	// Budget of 2 branches: only window[1] and window[2] explored; both
	// are in block 0x4000>>6 == first block... events are 4 instrs apart,
	// so several share one cache block; count distinct blocks issued.
	if len(mem.prefetches) > 2 {
		t.Errorf("branch budget exceeded: %d prefetches", len(mem.prefetches))
	}
}

func TestFDIPSkipsL1Resident(t *testing.T) {
	mem := &fakeMem{latency: 20}
	w := seqWindow(0x50000, 4)
	l1 := &fakeL1{resident: map[isa.Block]bool{w[1].PC.Block(): true}}
	f := NewFDIP(FDIPConfig{}, 0, mem, l1)
	f.OnWindow(w, 0)
	for _, b := range mem.prefetches {
		if b == w[1].PC.Block() {
			t.Error("prefetched an L1-resident block")
		}
	}
}

func TestFDIPIndirectCallPrediction(t *testing.T) {
	mem := &fakeMem{latency: 20}
	f := NewFDIP(FDIPConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	call := isa.BlockEvent{PC: 0x6000, Instrs: 4, Kind: isa.CTCall, Taken: true, Target: 0x7000}
	w := []isa.BlockEvent{call, {PC: 0x7000, Instrs: 16, Kind: isa.CTFallthrough}}
	// Never seen: unpredictable (and no predicted target, so no
	// wrong-path fetches either).
	f.OnWindow(w, 0)
	if len(mem.prefetches) != 0 {
		t.Error("explored past a never-seen indirect call")
	}
	// After retiring once, the same target is predictable (the blocked
	// window must drain first).
	f.OnEvent(call, 0)
	f.OnWindow(w, 0)
	f.OnWindow(w, 0)
	if len(mem.prefetches) == 0 {
		t.Error("did not explore past a repeated call target")
	}
	// Target change: exploration must not reach the actual target; only
	// wrong-path blocks from the stale predicted target may be fetched.
	mem.prefetches = nil
	f2 := NewFDIP(FDIPConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	f2.OnEvent(isa.BlockEvent{PC: 0x6000, Instrs: 4, Kind: isa.CTCall, Taken: true, Target: 0x8000}, 0)
	f2.OnWindow(w, 0) // w expects target 0x7000, lastTarget is 0x8000
	for _, b := range mem.prefetches {
		if b == isa.Addr(0x7000).Block() {
			t.Error("explored past a changed call target")
		}
	}
}

func TestFDIPBufferEvictionDiscards(t *testing.T) {
	mem := &fakeMem{latency: 20}
	f := NewFDIP(FDIPConfig{BufferBlocks: 2, MaxInstrs: 10000, MaxBranches: 100, ExploreRate: 100}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	w := seqWindow(0x80000, 8)
	f.OnWindow(w, 0)
	if f.Stats().Discards == 0 {
		t.Error("small buffer should have discarded entries")
	}
}

func TestDiscontinuityLearnsAndPrefetches(t *testing.T) {
	mem := &fakeMem{latency: 20}
	d := NewDiscontinuity(DiscontinuityConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	from, to := isa.Block(0x100), isa.Block(0x900)

	// First traversal trains the table.
	d.OnFetchBlock(from, FetchMiss, 0)
	d.OnFetchBlock(to, FetchMiss, 10)
	if len(mem.prefetches) != 0 {
		t.Fatalf("prefetched before training: %v", mem.prefetches)
	}
	// Next fetch of from predicts the discontinuity.
	d.OnFetchBlock(from, FetchL1Hit, 20)
	if len(mem.prefetches) == 0 {
		t.Fatal("trained discontinuity not prefetched")
	}
	if mem.prefetches[0] != to {
		t.Errorf("prefetched %v, want %v", mem.prefetches[0], to)
	}
	if _, ok := d.Probe(to, 100); !ok {
		t.Error("discontinuity target not in buffer")
	}
}

func TestDiscontinuitySequentialNotTrained(t *testing.T) {
	mem := &fakeMem{latency: 20}
	d := NewDiscontinuity(DiscontinuityConfig{}, 0, mem, &fakeL1{resident: map[isa.Block]bool{}})
	d.OnFetchBlock(1, FetchMiss, 0)
	d.OnFetchBlock(2, FetchMiss, 0) // sequential: not a discontinuity
	d.OnFetchBlock(1, FetchL1Hit, 0)
	if len(mem.prefetches) != 0 {
		t.Error("sequential transition should not train the table")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Issued: 1, HitsTimely: 2, HitsLate: 3, Discards: 4, MetaReads: 5, MetaWrites: 6}
	b := a
	a.Add(b)
	if a.Issued != 2 || a.Hits() != 10 || a.MetaWrites != 12 {
		t.Errorf("Add result: %+v", a)
	}
}

func TestFetchOutcomeString(t *testing.T) {
	for o, want := range map[FetchOutcome]string{
		FetchL1Hit: "l1-hit", FetchNextLineHit: "next-line-hit",
		FetchPrefetchHit: "prefetch-hit", FetchMiss: "miss",
		FetchOutcome(99): "unknown",
	} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", o, got, want)
		}
	}
}
