package prefetch

import (
	"tifs/internal/branch"
	"tifs/internal/flathash"
	"tifs/internal/isa"
)

// This file holds checkpoint support for every prefetcher, used by the
// simulator's speculative merge tier (internal/sim/spec.go): the
// speculation worker runs ahead on the live machine and the merge
// thread rewinds to the last verified checkpoint on a mispredicted
// window. Each snapshot type reuses its buffers across saves, so a
// Runner-pooled snapshot stops allocating once it reaches the run's
// steady-state sizes. Configuration fields (table geometry, budgets,
// bindings) are stable within a run and are deliberately not captured.

// FDIPSnapshot checkpoints an FDIP engine's mutable state.
type FDIPSnapshot struct {
	pred       branch.Snapshot
	lastTarget flathash.Snapshot
	buffer     []fdipEntry
	explored   int
	blocked    int
	stats      Stats
}

// Save copies the engine's current state into s.
func (f *FDIP) Save(s *FDIPSnapshot) {
	f.pred.Save(&s.pred)
	f.lastTarget.Save(&s.lastTarget)
	s.buffer = append(s.buffer[:0], f.buffer...)
	s.explored = f.explored
	s.blocked = f.blocked
	s.stats = f.stats
}

// Restore rewinds the engine to the state captured by Save.
func (f *FDIP) Restore(s *FDIPSnapshot) {
	f.pred.Restore(&s.pred)
	f.lastTarget.Restore(&s.lastTarget)
	f.buffer = append(f.buffer[:0], s.buffer...)
	f.explored = s.explored
	f.blocked = s.blocked
	f.stats = s.stats
}

// DiscontinuitySnapshot checkpoints a Discontinuity engine's mutable
// state.
type DiscontinuitySnapshot struct {
	table     []discEntry
	buffer    []fdipEntry
	prevBlock isa.Block
	havePrev  bool
	stats     Stats
}

// Save copies the engine's current state into s.
func (d *Discontinuity) Save(s *DiscontinuitySnapshot) {
	s.table = append(s.table[:0], d.table...)
	s.buffer = append(s.buffer[:0], d.buffer...)
	s.prevBlock = d.prevBlock
	s.havePrev = d.havePrev
	s.stats = d.stats
}

// Restore rewinds the engine to the state captured by Save.
func (d *Discontinuity) Restore(s *DiscontinuitySnapshot) {
	copy(d.table, s.table)
	d.buffer = append(d.buffer[:0], s.buffer...)
	d.prevBlock = s.prevBlock
	d.havePrev = s.havePrev
	d.stats = s.stats
}

// PerfectSnapshot checkpoints a Perfect streamer's mutable state.
type PerfectSnapshot struct {
	seen  flathash.Snapshot
	stats Stats
}

// Save copies the streamer's current state into s.
func (p *Perfect) Save(s *PerfectSnapshot) {
	p.seen.Save(&s.seen)
	s.stats = p.stats
}

// Restore rewinds the streamer to the state captured by Save.
func (p *Perfect) Restore(s *PerfectSnapshot) {
	p.seen.Restore(&s.seen)
	p.stats = s.stats
}

// ProbabilisticSnapshot checkpoints a Probabilistic model's mutable
// state, including its random stream position.
type ProbabilisticSnapshot struct {
	seen  flathash.Snapshot
	rng   [4]uint64
	stats Stats
}

// Save copies the model's current state into s.
func (p *Probabilistic) Save(s *ProbabilisticSnapshot) {
	p.seen.Save(&s.seen)
	s.rng = p.rng.State()
	s.stats = p.stats
}

// Restore rewinds the model to the state captured by Save.
func (p *Probabilistic) Restore(s *ProbabilisticSnapshot) {
	p.seen.Restore(&s.seen)
	p.rng.SetState(s.rng)
	p.stats = s.stats
}
