package prefetch

import (
	"tifs/internal/branch"
	"tifs/internal/flathash"
	"tifs/internal/isa"
)

// FDIPConfig parameterizes fetch-directed instruction prefetching. The
// defaults follow the paper's tuned configuration (Section 6.5): run at
// most 96 instructions and 6 branches ahead of the fetch unit, with a
// fully-associative prefetch buffer.
type FDIPConfig struct {
	// MaxInstrs bounds run-ahead depth in instructions (default 96).
	MaxInstrs int
	// MaxBranches bounds run-ahead depth in conditional branches
	// (default 6).
	MaxBranches int
	// BufferBlocks is the fully-associative prefetch buffer capacity
	// (default 32 blocks, 2 KB — matched to the TIFS SVB for fairness).
	BufferBlocks int
	// PredictorEntries sizes the hybrid direction predictor (default the
	// paper's 16K).
	PredictorEntries int
	// ExploreRate bounds how many events exploration advances per fetch
	// step, modeling the predictor's one-or-two-predictions-per-cycle
	// bandwidth (Section 3's first fundamental flaw). Default 3.
	ExploreRate int
	// WrongPathBlocks is how many blocks are fetched down the wrong path
	// when a branch is mispredicted before exploration stops (pollution
	// and wasted bandwidth). Default 3.
	WrongPathBlocks int
}

func (c FDIPConfig) withDefaults() FDIPConfig {
	if c.MaxInstrs == 0 {
		c.MaxInstrs = 96
	}
	if c.MaxBranches == 0 {
		c.MaxBranches = 6
	}
	if c.BufferBlocks == 0 {
		c.BufferBlocks = 32
	}
	if c.PredictorEntries == 0 {
		c.PredictorEntries = 16 * 1024
	}
	if c.ExploreRate == 0 {
		c.ExploreRate = 4
	}
	if c.WrongPathBlocks == 0 {
		c.WrongPathBlocks = 3
	}
	return c
}

type fdipEntry struct {
	block   isa.Block
	ready   uint64
	used    bool
	lastUse uint64
}

// FDIP models fetch-directed instruction prefetching (Reinman, Calder,
// Austin): the branch predictor explores the control flow ahead of the
// fetch unit and prefetches the instruction blocks on the predicted path.
// Exploration stops at the first mispredicted conditional branch,
// unpredictable indirect-call target, or trap — the lookahead limits TIFS
// is designed to escape (Sections 3 and 6.2).
type FDIP struct {
	cfg  FDIPConfig
	mem  Memory
	l1   L1View
	core int

	pred       *branch.Hybrid
	lastTarget flathash.Map // indirect call site -> last target

	buffer   []fdipEntry
	explored int // leading window events already explored
	blocked  int // events until a mispredicted branch resolves (0 = free)

	stats Stats
}

// NewFDIP creates an FDIP engine for one core.
func NewFDIP(cfg FDIPConfig, core int, mem Memory, l1 L1View) *FDIP {
	cfg = cfg.withDefaults()
	return &FDIP{
		cfg:    cfg,
		mem:    mem,
		l1:     l1,
		core:   core,
		pred:   branch.NewHybrid(cfg.PredictorEntries),
		buffer: make([]fdipEntry, 0, cfg.BufferBlocks),
	}
}

// Reset restores the engine to the state NewFDIP would produce for the
// same core/memory/L1 binding, reusing its tables so pooled simulation
// runs do not reallocate them.
func (f *FDIP) Reset(cfg FDIPConfig) {
	cfg = cfg.withDefaults()
	if f.pred.Entries() == cfg.PredictorEntries {
		f.pred.Reset()
	} else {
		f.pred = branch.NewHybrid(cfg.PredictorEntries)
	}
	f.lastTarget.Reset()
	if cap(f.buffer) < cfg.BufferBlocks {
		f.buffer = make([]fdipEntry, 0, cfg.BufferBlocks)
	} else {
		f.buffer = f.buffer[:0]
	}
	f.cfg = cfg
	f.explored = 0
	f.blocked = 0
	f.stats = Stats{}
}

// Name implements Prefetcher.
func (f *FDIP) Name() string { return "FDIP" }

// predictable reports whether FDIP correctly anticipates the transfer at
// the end of ev, consuming branch budget via the returned flag.
func (f *FDIP) predictable(ev isa.BlockEvent) (ok, conditional bool) {
	switch ev.Kind {
	case isa.CTFallthrough:
		return true, false
	case isa.CTBranch:
		return f.pred.Predict(ev.LastPC()) == ev.Taken, true
	case isa.CTJump:
		return true, false // static target, BTB-resident
	case isa.CTCall:
		last, seen := f.lastTarget.Get(uint64(ev.LastPC()))
		return seen && isa.Addr(last) == ev.Target, false
	case isa.CTReturn:
		return true, false // return-address stack
	default: // traps and trap returns are asynchronous redirects
		return false, false
	}
}

// OnWindow implements Prefetcher: explore the upcoming path within the
// instruction/branch budget and prefetch blocks absent from L1 and the
// buffer. A mispredicted branch discards the predicted path; exploration
// cannot restart until the branch resolves — i.e., until the fetch unit
// consumes it (the paper's Section 3.2 restart behaviour).
func (f *FDIP) OnWindow(window []isa.BlockEvent, now uint64) {
	if f.explored > 0 {
		f.explored-- // the window advanced by one event
	}
	if f.blocked > 0 {
		f.blocked--
		return
	}
	instrs, branches, advanced := 0, 0, 0
	for i := 1; i < len(window); i++ {
		ok, cond := f.predictable(window[i-1])
		if !ok {
			// The predicted path diverges here: fetch a few wrong-path
			// blocks (pollution + wasted bandwidth), then stall until the
			// offending event is consumed and retrains the predictor.
			if i > f.explored {
				f.wrongPath(window[i-1], now)
			}
			f.blocked = i
			return
		}
		if cond {
			branches++
			if branches > f.cfg.MaxBranches {
				return
			}
		}
		instrs += window[i].Instrs
		if instrs > f.cfg.MaxInstrs {
			return
		}
		if i < f.explored {
			continue
		}
		if advanced >= f.cfg.ExploreRate {
			// Prediction bandwidth exhausted for this step.
			return
		}
		window[i].VisitBlocks(func(b isa.Block) bool {
			f.prefetchBlock(b, now)
			return true
		})
		f.explored = i + 1
		advanced++
	}
}

// wrongPath fetches blocks down the not-taken (or spuriously-taken) path
// of a mispredicted branch; they pollute the buffer and waste bandwidth.
func (f *FDIP) wrongPath(ev isa.BlockEvent, now uint64) {
	var start isa.Addr
	switch ev.Kind {
	case isa.CTBranch:
		// The predictor chose the opposite of the actual outcome.
		if ev.Taken {
			start = ev.FallthroughPC()
		} else {
			start = ev.Target
		}
	case isa.CTCall:
		if last, seen := f.lastTarget.Get(uint64(ev.LastPC())); seen && isa.Addr(last) != ev.Target {
			start = isa.Addr(last)
		} else {
			return // no predicted target: nothing was fetched
		}
	default:
		return // traps produce no predicted path
	}
	b := start.Block()
	for i := 0; i < f.cfg.WrongPathBlocks; i++ {
		f.prefetchBlock(b+isa.Block(i), now)
	}
}

// prefetchBlock issues a prefetch unless the block is already in L1 or
// the buffer.
func (f *FDIP) prefetchBlock(b isa.Block, now uint64) {
	if f.l1 != nil && f.l1.ContainsBlock(b) {
		return
	}
	for i := range f.buffer {
		if f.buffer[i].block == b {
			return
		}
	}
	ready := f.mem.Prefetch(f.core, b, now)
	f.stats.Issued++
	e := fdipEntry{block: b, ready: ready, lastUse: now}
	if len(f.buffer) < f.cfg.BufferBlocks {
		f.buffer = append(f.buffer, e)
		return
	}
	// Evict LRU.
	victim := 0
	for i := 1; i < len(f.buffer); i++ {
		if f.buffer[i].lastUse < f.buffer[victim].lastUse {
			victim = i
		}
	}
	if !f.buffer[victim].used {
		f.stats.Discards++
	}
	f.buffer[victim] = e
}

// OnFetchBlock implements Prefetcher.
func (f *FDIP) OnFetchBlock(isa.Block, FetchOutcome, uint64) {}

// OnEvent implements Prefetcher: retirement training.
func (f *FDIP) OnEvent(ev isa.BlockEvent, now uint64) {
	switch ev.Kind {
	case isa.CTBranch:
		f.pred.Update(ev.LastPC(), ev.Taken)
	case isa.CTCall:
		f.lastTarget.Put(uint64(ev.LastPC()), uint64(ev.Target))
	}
}

// Probe implements Prefetcher.
func (f *FDIP) Probe(b isa.Block, now uint64) (uint64, bool) {
	for i := range f.buffer {
		if f.buffer[i].block == b {
			ready := f.buffer[i].ready
			f.buffer = append(f.buffer[:i], f.buffer[i+1:]...)
			if ready <= now {
				f.stats.HitsTimely++
			} else {
				f.stats.HitsLate++
			}
			return ready, true
		}
	}
	return 0, false
}

// Stats implements Prefetcher.
func (f *FDIP) Stats() Stats { return f.stats }
