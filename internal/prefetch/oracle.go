package prefetch

import (
	"tifs/internal/flathash"
	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// Perfect is the "Perfect" bar of Fig. 13: every L1-I miss to a block that
// is on chip (i.e., fetched at least once before) is satisfied instantly.
// First-touch misses still go to memory, exactly as in the paper's
// probabilistic model at 100% coverage (Section 2).
type Perfect struct {
	seen  flathash.Map
	stats Stats
}

// NewPerfect returns a perfect streamer.
func NewPerfect() *Perfect {
	return &Perfect{}
}

// Reset restores the freshly constructed state, keeping the seen table's
// capacity for reuse across pooled simulation runs.
func (p *Perfect) Reset() {
	p.seen.Reset()
	p.stats = Stats{}
}

// Name implements Prefetcher.
func (p *Perfect) Name() string { return "perfect" }

// OnWindow implements Prefetcher.
func (p *Perfect) OnWindow([]isa.BlockEvent, uint64) {}

// OnFetchBlock implements Prefetcher.
func (p *Perfect) OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64) {
	p.seen.Put(uint64(b), 1)
}

// OnEvent implements Prefetcher.
func (p *Perfect) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher: instant hit for any previously seen block.
func (p *Perfect) Probe(b isa.Block, now uint64) (uint64, bool) {
	if p.seen.Contains(uint64(b)) {
		p.stats.HitsTimely++
		return now, true
	}
	return 0, false
}

// Stats implements Prefetcher.
func (p *Perfect) Stats() Stats { return p.stats }

// Probabilistic is the Fig. 1 opportunity-study mechanism: each L1-I miss
// to an on-chip block is converted into an instant prefetch hit with
// probability equal to the configured coverage.
type Probabilistic struct {
	coverage float64
	seen     flathash.Map
	rng      *xrand.Rand
	stats    Stats
}

// NewProbabilistic creates the Fig. 1 model with coverage in [0,1].
func NewProbabilistic(coverage float64, seed string) *Probabilistic {
	return &Probabilistic{
		coverage: coverage,
		rng:      xrand.NewFromString("probabilistic/" + seed),
	}
}

// Reset restores the state NewProbabilistic(coverage, seed) would
// produce, reusing the seen table and generator.
func (p *Probabilistic) Reset(coverage float64, seed string) {
	p.coverage = coverage
	p.seen.Reset()
	p.rng.SeedFromString("probabilistic/" + seed)
	p.stats = Stats{}
}

// Name implements Prefetcher.
func (p *Probabilistic) Name() string { return "probabilistic" }

// OnWindow implements Prefetcher.
func (p *Probabilistic) OnWindow([]isa.BlockEvent, uint64) {}

// OnFetchBlock implements Prefetcher.
func (p *Probabilistic) OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64) {
	p.seen.Put(uint64(b), 1)
}

// OnEvent implements Prefetcher.
func (p *Probabilistic) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher.
func (p *Probabilistic) Probe(b isa.Block, now uint64) (uint64, bool) {
	if !p.seen.Contains(uint64(b)) {
		return 0, false
	}
	if !p.rng.Bool(p.coverage) {
		return 0, false
	}
	p.stats.HitsTimely++
	return now, true
}

// Stats implements Prefetcher.
func (p *Probabilistic) Stats() Stats { return p.stats }
