package prefetch

import (
	"tifs/internal/isa"
	"tifs/internal/xrand"
)

// Perfect is the "Perfect" bar of Fig. 13: every L1-I miss to a block that
// is on chip (i.e., fetched at least once before) is satisfied instantly.
// First-touch misses still go to memory, exactly as in the paper's
// probabilistic model at 100% coverage (Section 2).
type Perfect struct {
	seen  map[isa.Block]struct{}
	stats Stats
}

// NewPerfect returns a perfect streamer.
func NewPerfect() *Perfect {
	return &Perfect{seen: make(map[isa.Block]struct{})}
}

// Name implements Prefetcher.
func (p *Perfect) Name() string { return "perfect" }

// OnWindow implements Prefetcher.
func (p *Perfect) OnWindow([]isa.BlockEvent, uint64) {}

// OnFetchBlock implements Prefetcher.
func (p *Perfect) OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64) {
	p.seen[b] = struct{}{}
}

// OnEvent implements Prefetcher.
func (p *Perfect) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher: instant hit for any previously seen block.
func (p *Perfect) Probe(b isa.Block, now uint64) (uint64, bool) {
	if _, ok := p.seen[b]; ok {
		p.stats.HitsTimely++
		return now, true
	}
	return 0, false
}

// Stats implements Prefetcher.
func (p *Perfect) Stats() Stats { return p.stats }

// Probabilistic is the Fig. 1 opportunity-study mechanism: each L1-I miss
// to an on-chip block is converted into an instant prefetch hit with
// probability equal to the configured coverage.
type Probabilistic struct {
	coverage float64
	seen     map[isa.Block]struct{}
	rng      *xrand.Rand
	stats    Stats
}

// NewProbabilistic creates the Fig. 1 model with coverage in [0,1].
func NewProbabilistic(coverage float64, seed string) *Probabilistic {
	return &Probabilistic{
		coverage: coverage,
		seen:     make(map[isa.Block]struct{}),
		rng:      xrand.NewFromString("probabilistic/" + seed),
	}
}

// Name implements Prefetcher.
func (p *Probabilistic) Name() string { return "probabilistic" }

// OnWindow implements Prefetcher.
func (p *Probabilistic) OnWindow([]isa.BlockEvent, uint64) {}

// OnFetchBlock implements Prefetcher.
func (p *Probabilistic) OnFetchBlock(b isa.Block, outcome FetchOutcome, now uint64) {
	p.seen[b] = struct{}{}
}

// OnEvent implements Prefetcher.
func (p *Probabilistic) OnEvent(isa.BlockEvent, uint64) {}

// Probe implements Prefetcher.
func (p *Probabilistic) Probe(b isa.Block, now uint64) (uint64, bool) {
	if _, ok := p.seen[b]; !ok {
		return 0, false
	}
	if !p.rng.Bool(p.coverage) {
		return 0, false
	}
	p.stats.HitsTimely++
	return now, true
}

// Stats implements Prefetcher.
func (p *Probabilistic) Stats() Stats { return p.stats }
