package core

import (
	"tifs/internal/isa"
	"tifs/internal/prefetch"
)

type svbEntry struct {
	block     isa.Block
	ready     uint64
	streamID  int
	streamGen uint64
	lastUse   uint64
}

// stream is one in-progress stream: an IML cursor plus rate-matching
// state (Section 5.2.1's FIFO of upcoming prefetch addresses is modeled
// by the SVB entries tagged with the stream ID plus this cursor).
type stream struct {
	live       bool
	gen        uint64 // bumped on reallocation; stale SVB entries ignored
	pos        imlPos // next IML position to follow
	inflight   int    // streamed-but-not-yet-accessed blocks
	paused     bool
	pauseBlock isa.Block
	lastUse    uint64
	metaChunk  uint64 // last virtualized IML block read (pos/12 + 1)
	metaReady  uint64 // completion cycle of that read
	nextChunk  uint64 // read-ahead IML block, if issued
	nextReady  uint64
}

// Engine is the per-core TIFS front end: the SVB plus the core's IML. It
// implements prefetch.Prefetcher.
type Engine struct {
	t    *TIFS
	id   int
	log  iml
	svb  []svbEntry
	strs []stream

	stats  prefetch.Stats
	tstats TIFSStats
}

var _ prefetch.Prefetcher = (*Engine)(nil)

// Name implements prefetch.Prefetcher.
func (e *Engine) Name() string { return e.t.cfg.Name() }

// OnWindow implements prefetch.Prefetcher. TIFS does not explore control
// flow — that independence from the branch predictor is its point.
func (e *Engine) OnWindow([]isa.BlockEvent, uint64) {}

// Probe implements prefetch.Prefetcher: SVB lookup on an L1-I miss. On a
// hit the block transfers to the L1, the hit is logged to the IML (so the
// block is fetched on the next stream traversal, Section 5.1.2), and the
// owning stream advances under rate matching.
func (e *Engine) Probe(b isa.Block, now uint64) (uint64, bool) {
	for i := range e.svb {
		if e.svb[i].block != b {
			continue
		}
		entry := e.svb[i]
		e.svb = append(e.svb[:i], e.svb[i+1:]...)
		if entry.ready <= now {
			e.stats.HitsTimely++
		} else {
			e.stats.HitsLate++
		}
		e.logAppend(b, true, now)
		s := &e.strs[entry.streamID]
		if s.live && s.gen == entry.streamGen {
			if s.inflight > 0 {
				s.inflight--
			}
			if s.paused && s.pauseBlock == b {
				// The potential stream end was really taken: resume.
				s.paused = false
				e.tstats.Resumes++
			}
			s.lastUse = now
			e.advance(entry.streamID, now)
		}
		return entry.ready, true
	}
	return 0, false
}

// OnFetchBlock implements prefetch.Prefetcher. True misses are logged to
// the IML and trigger an Index Table lookup to start a new stream
// (Section 5.1.2); everything else is already handled.
func (e *Engine) OnFetchBlock(b isa.Block, outcome prefetch.FetchOutcome, now uint64) {
	if outcome != prefetch.FetchMiss {
		return
	}
	e.tstats.IndexLookups++
	packed, ok := e.t.index.Get(uint64(b))
	pos := unpackPos(packed)
	if ok && e.t.cores[pos.core].log.alive(pos.idx) {
		id := e.allocStream(now)
		s := &e.strs[id]
		*s = stream{
			live:    true,
			gen:     s.gen + 1,
			pos:     imlPos{core: pos.core, idx: pos.idx + 1},
			lastUse: now,
		}
		if e.t.cfg.Virtualized {
			// The Index Table lookup rides the trigger miss's L2 tag
			// access, and the first IML block read proceeds in parallel
			// with its data access (Section 5.2.2), so the stream's first
			// chunk of addresses is available when the core resumes. The
			// read still costs a bank slot and ledger traffic.
			s.metaChunk = (pos.idx+1)/EntriesPerIMLBlock + 1
			e.t.mem.MetaRead(e.id, metaToken(s.pos), now)
			e.stats.MetaReads++
			s.metaReady = now
		}
		e.tstats.StreamsAllocated++
		e.logAppend(b, false, now)
		e.advance(id, now)
		return
	}
	e.tstats.IndexMisses++
	e.logAppend(b, false, now)
}

// OnEvent implements prefetch.Prefetcher; TIFS trains on misses only.
func (e *Engine) OnEvent(isa.BlockEvent, uint64) {}

// Stats implements prefetch.Prefetcher.
func (e *Engine) Stats() prefetch.Stats { return e.stats }

// TIFSStats returns this core's TIFS-specific counters.
func (e *Engine) TIFSStats() TIFSStats { return e.tstats }

// allocStream returns a free stream slot, recycling the least recently
// used one if all are live (its unconsumed SVB entries will age out as
// discards).
func (e *Engine) allocStream(now uint64) int {
	victim := 0
	for i := range e.strs {
		if !e.strs[i].live {
			return i
		}
		if e.strs[i].lastUse < e.strs[victim].lastUse {
			victim = i
		}
	}
	return victim
}

// advance implements rate matching: keep Lookahead streamed-but-unused
// blocks in the SVB for the stream, reading further IML entries as the
// FIFO drains (Section 5.2.1) and pausing at potential stream ends
// (Section 5.1.3).
func (e *Engine) advance(id int, now uint64) {
	s := &e.strs[id]
	for s.live && !s.paused && s.inflight < e.t.cfg.Lookahead {
		src := e.t.cores[s.pos.core]
		if !src.log.alive(s.pos.idx) {
			s.live = false
			return
		}
		entry := src.log.at(s.pos.idx)

		issueAt := now
		if e.t.cfg.Virtualized {
			// Reading the IML is an L2 access at cache-block granularity;
			// addresses become available when the read completes. The SVB
			// reads ahead — the next IML block is fetched while the
			// current one drains ("the stream fetch proceeds in parallel
			// with the L2 data-array access", Section 5.2.2) — so in
			// steady state the gate is already open.
			chunk := s.pos.idx/EntriesPerIMLBlock + 1
			if chunk != s.metaChunk {
				if chunk == s.nextChunk {
					s.metaChunk, s.metaReady = s.nextChunk, s.nextReady
				} else {
					s.metaChunk = chunk
					s.metaReady = e.t.mem.MetaRead(e.id, metaToken(s.pos), now)
					e.stats.MetaReads++
				}
				s.nextChunk = 0
			}
			if s.nextChunk == 0 && s.pos.idx%EntriesPerIMLBlock >= EntriesPerIMLBlock/2 {
				s.nextChunk = chunk + 1
				s.nextReady = e.t.mem.MetaRead(e.id, metaToken(imlPos{core: s.pos.core, idx: s.pos.idx + EntriesPerIMLBlock}), now)
				e.stats.MetaReads++
			}
			if s.metaReady > issueAt {
				issueAt = s.metaReady
			}
		}

		e.insertSVB(entry.block, e.t.mem.Prefetch(e.id, entry.block, issueAt), id, now)
		e.stats.Issued++
		s.pos.idx++
		s.inflight++

		if !entry.svbHit && !e.t.cfg.DisableEndOfStream {
			// Last traversal ended here (the entry was logged from a
			// demand miss, not an SVB hit): fetch this block but pause
			// until it is demanded (Section 5.1.3).
			s.paused = true
			s.pauseBlock = entry.block
			e.tstats.Pauses++
		}
	}
}

// insertSVB adds a streamed block, evicting the least recently used entry
// when full; evicted entries were never consumed, so they are discards.
// Duplicate blocks (two streams converging) are permitted: the surplus
// copy ages out as a discard, costing the same bandwidth it did in
// hardware.
func (e *Engine) insertSVB(b isa.Block, ready uint64, streamID int, now uint64) {
	entry := svbEntry{block: b, ready: ready, streamID: streamID, streamGen: e.strs[streamID].gen, lastUse: now}
	if len(e.svb) < e.t.cfg.SVBBlocks {
		e.svb = append(e.svb, entry)
		return
	}
	victim := 0
	for i := 1; i < len(e.svb); i++ {
		if e.svb[i].lastUse < e.svb[victim].lastUse {
			victim = i
		}
	}
	v := e.svb[victim]
	vs := &e.strs[v.streamID]
	if vs.live && vs.gen == v.streamGen && vs.inflight > 0 {
		vs.inflight--
	}
	e.stats.Discards++
	e.svb[victim] = entry
}

// logAppend records a miss (or SVB hit) in this core's IML and updates
// the shared Index Table under the Recent policy. Virtualized IMLs write
// back each filled metadata block to L2.
func (e *Engine) logAppend(b isa.Block, svbHit bool, now uint64) {
	idx := e.log.append(logEntry{block: b, svbHit: svbHit})
	if svbHit {
		e.tstats.LoggedHits++
	} else {
		e.tstats.LoggedMisses++
	}
	if e.t.cfg.Virtualized && (idx+1)%EntriesPerIMLBlock == 0 {
		e.t.mem.MetaWrite(e.id, metaToken(imlPos{core: e.id, idx: idx}), now)
		e.stats.MetaWrites++
	}
	if e.t.cfg.IndexDropProb > 0 && e.t.rng.Bool(e.t.cfg.IndexDropProb) {
		e.tstats.IndexDrops++
		return
	}
	e.t.index.Put(uint64(b), packPos(imlPos{core: e.id, idx: idx}))
}

// metaToken derives a stable token identifying an IML metadata block for
// bank mapping in the uncore.
func metaToken(p imlPos) uint64 {
	return uint64(p.core)<<56 | p.idx/EntriesPerIMLBlock
}
