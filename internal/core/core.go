package core
