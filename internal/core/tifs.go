// Package core implements Temporal Instruction Fetch Streaming (TIFS) —
// the paper's contribution. TIFS records the sequence of L1-I fetch
// misses in per-core Instruction Miss Logs (IMLs), locates recurrences
// through a shared Index Table that always points at the most recent
// occurrence of each miss address (the Recent heuristic of Fig. 6), and
// replays the logged streams through per-core Streamed Value Buffers
// (SVBs) that prefetch ahead of the fetch unit with rate matching and
// end-of-stream detection (Section 5).
//
// The IML may be unbounded (analysis upper bound), a dedicated SRAM ring
// (8K entries/core, 156 KB aggregate — Section 6.3), or virtualized into
// the L2 data array (Section 5.2.2), in which case IML reads and writes
// become L2 traffic at cache-block granularity (twelve 39-bit entries
// per 64-byte block) and index updates can be dropped under tag-pipeline
// back-pressure.
package core

import (
	"fmt"

	"tifs/internal/flathash"
	"tifs/internal/isa"
	"tifs/internal/prefetch"
	"tifs/internal/xrand"
)

// EntriesPerIMLBlock is how many logged miss addresses fit in one
// 64-byte cache block (twelve 39-bit entries, Section 5.2.2).
const EntriesPerIMLBlock = 12

// Config parameterizes a TIFS instance.
type Config struct {
	// IMLEntries is the per-core miss-log capacity in addresses; 0 means
	// unbounded (the paper's TIFS-unbounded configuration).
	IMLEntries int
	// Virtualized stores the IML in the L2 data array: IML reads/writes
	// are issued to memory as metadata traffic and contend with demand
	// fetches. Dedicated (false) IML storage issues no traffic.
	Virtualized bool
	// SVBBlocks is the per-core streamed-value-buffer capacity in blocks
	// (default 32 = 2 KB, Section 6.3).
	SVBBlocks int
	// MaxStreams is the number of simultaneously followed streams per
	// core (default 4; traps and context switches create parallel
	// streams, Section 5.2).
	MaxStreams int
	// Lookahead is the rate-matching target: the number of
	// streamed-but-not-yet-accessed blocks maintained per stream
	// (default 4, Section 5.2.1).
	Lookahead int
	// DisableEndOfStream turns off the hit-bit pause heuristic
	// (Section 5.1.3); an ablation knob — the paper's design has it on.
	DisableEndOfStream bool
	// IndexDropProb injects index-update drops, modeling tag-pipeline
	// back-pressure (Section 5.2.2). 0 disables.
	IndexDropProb float64
	// Seed names the random stream used only for failure injection.
	Seed string
}

func (c Config) withDefaults() Config {
	if c.SVBBlocks == 0 {
		c.SVBBlocks = 32
	}
	if c.MaxStreams == 0 {
		c.MaxStreams = 4
	}
	if c.Lookahead == 0 {
		c.Lookahead = 4
	}
	return c
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.IMLEntries < 0 || c.SVBBlocks < 0 || c.MaxStreams < 0 || c.Lookahead < 0 {
		return fmt.Errorf("core: negative size in config %+v", c)
	}
	if c.IndexDropProb < 0 || c.IndexDropProb > 1 {
		return fmt.Errorf("core: IndexDropProb %f out of range", c.IndexDropProb)
	}
	return nil
}

// UnboundedConfig is the paper's TIFS-unbounded-IML configuration.
func UnboundedConfig() Config { return Config{} }

// DedicatedConfig is the paper's dedicated-SRAM configuration: 8K IML
// entries per core (156 KB aggregate across 4 cores).
func DedicatedConfig() Config { return Config{IMLEntries: 8192} }

// VirtualizedConfig stores the same capacity in the L2 data array.
func VirtualizedConfig() Config {
	return Config{IMLEntries: 8192, Virtualized: true}
}

// Name returns the configuration label used in Fig. 13.
func (c Config) Name() string {
	switch {
	case c.IMLEntries == 0:
		return "TIFS-unbounded"
	case c.Virtualized:
		return "TIFS-virtualized"
	default:
		return "TIFS-dedicated"
	}
}

// TIFSStats extends the common prefetcher counters with TIFS-specific
// telemetry.
type TIFSStats struct {
	// StreamsAllocated counts index hits that started a new stream.
	StreamsAllocated uint64
	// IndexLookups counts misses that consulted the index.
	IndexLookups uint64
	// IndexMisses counts lookups with no live IML position.
	IndexMisses uint64
	// IndexDrops counts injected index-update losses.
	IndexDrops uint64
	// Pauses counts end-of-stream pauses; Resumes counts demand-driven
	// resumptions.
	Pauses, Resumes uint64
	// LoggedMisses and LoggedHits count IML appends by kind.
	LoggedMisses, LoggedHits uint64
}

type imlPos struct {
	core int
	idx  uint64 // absolute append index
}

// packPos packs an IML position into one word for the open-addressed
// index table: core in the top 16 bits, append index in the low 48.
// Append indices are bounded by the per-core event budget, so 48 bits
// never overflow in practice; New rejects core counts beyond 16 bits.
func packPos(p imlPos) uint64 { return uint64(p.core)<<48 | p.idx }

// unpackPos inverts packPos.
func unpackPos(v uint64) imlPos {
	return imlPos{core: int(v >> 48), idx: v & (1<<48 - 1)}
}

type logEntry struct {
	block  isa.Block
	svbHit bool
}

// iml is one core's instruction miss log: an append-only sequence with a
// bounded live window (the ring) or unbounded storage.
type iml struct {
	entries  []logEntry
	appended uint64
	capacity int // 0 = unbounded
}

// reset empties the log for a new run, keeping the entries slice's
// capacity (the live window refills to the same size).
func (l *iml) reset(capacity int) {
	l.entries = l.entries[:0]
	l.appended = 0
	l.capacity = capacity
}

func (l *iml) append(e logEntry) uint64 {
	idx := l.appended
	if l.capacity == 0 {
		l.entries = append(l.entries, e)
	} else {
		if len(l.entries) < l.capacity {
			l.entries = append(l.entries, e)
		} else {
			l.entries[idx%uint64(l.capacity)] = e
		}
	}
	l.appended++
	return idx
}

func (l *iml) alive(idx uint64) bool {
	if idx >= l.appended {
		return false
	}
	if l.capacity == 0 {
		return true
	}
	return idx+uint64(l.capacity) >= l.appended
}

func (l *iml) at(idx uint64) logEntry {
	if l.capacity == 0 {
		return l.entries[idx]
	}
	return l.entries[idx%uint64(l.capacity)]
}

// TIFS is a chip-wide instance: per-core SVBs and IMLs with one shared
// Index Table, so one core can follow a stream another core logged
// (Section 5.1).
type TIFS struct {
	cfg   Config
	mem   prefetch.Memory
	rng   *xrand.Rand
	index flathash.Map // block -> packed imlPos (the shared Index Table)
	cores []*Engine
}

// indexSizeHint returns the initial Index Table capacity implied by the
// configuration: a bounded IML can hold at most cores*IMLEntries live
// log positions at once (the table still grows if the workload touches
// more distinct blocks over time).
func (c Config) indexSizeHint(cores int) int {
	if c.IMLEntries > 0 {
		return cores * c.IMLEntries
	}
	return 1 << 15
}

// New creates a TIFS instance for the given number of cores. mem carries
// prefetch and (for virtualized IMLs) metadata traffic.
func New(cfg Config, cores int, mem prefetch.Memory) *TIFS {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cores < 1 {
		panic("core: need at least one core")
	}
	if cores > 1<<16 {
		// packPos keeps the IML core id in 16 bits; beyond that the
		// index table would alias cores.
		panic("core: at most 65536 cores supported")
	}
	t := &TIFS{
		cfg: cfg,
		mem: mem,
		rng: xrand.NewFromString("tifs/" + cfg.Seed),
	}
	t.index.Grow(cfg.indexSizeHint(cores))
	for i := 0; i < cores; i++ {
		e := &Engine{
			t:    t,
			id:   i,
			log:  iml{capacity: cfg.IMLEntries},
			svb:  make([]svbEntry, 0, cfg.SVBBlocks),
			strs: make([]stream, cfg.MaxStreams),
		}
		t.cores = append(t.cores, e)
	}
	return t
}

// Reset restores the instance to the state New(cfg, cores, mem) would
// produce for the same core count, retaining the index table's and the
// per-core logs' capacity so pooled simulation runs stop allocating once
// they reach steady-state size.
func (t *TIFS) Reset(cfg Config, mem prefetch.Memory) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t.cfg = cfg
	t.mem = mem
	t.rng.SeedFromString("tifs/" + cfg.Seed)
	t.index.Reset()
	t.index.Grow(cfg.indexSizeHint(len(t.cores)))
	for _, e := range t.cores {
		e.log.reset(cfg.IMLEntries)
		if cap(e.svb) < cfg.SVBBlocks {
			e.svb = make([]svbEntry, 0, cfg.SVBBlocks)
		} else {
			e.svb = e.svb[:0]
		}
		if len(e.strs) != cfg.MaxStreams {
			e.strs = make([]stream, cfg.MaxStreams)
		} else {
			clear(e.strs)
		}
		e.stats = prefetch.Stats{}
		e.tstats = TIFSStats{}
	}
}

// Config returns the instance configuration (defaults applied).
func (t *TIFS) Config() Config { return t.cfg }

// Core returns the per-core engine, which implements
// prefetch.Prefetcher.
func (t *TIFS) Core(i int) *Engine { return t.cores[i] }

// Stats aggregates the common prefetcher counters across cores.
func (t *TIFS) Stats() prefetch.Stats {
	var s prefetch.Stats
	for _, e := range t.cores {
		s.Add(e.stats)
	}
	return s
}

// TIFSStats aggregates the TIFS-specific counters across cores.
func (t *TIFS) TIFSStats() TIFSStats {
	var s TIFSStats
	for _, e := range t.cores {
		s.StreamsAllocated += e.tstats.StreamsAllocated
		s.IndexLookups += e.tstats.IndexLookups
		s.IndexMisses += e.tstats.IndexMisses
		s.IndexDrops += e.tstats.IndexDrops
		s.Pauses += e.tstats.Pauses
		s.Resumes += e.tstats.Resumes
		s.LoggedMisses += e.tstats.LoggedMisses
		s.LoggedHits += e.tstats.LoggedHits
	}
	return s
}

// StorageBitsPerCore returns the dedicated predictor storage in bits per
// core (the Section 6.3 accounting; 0 for unbounded or virtualized IMLs).
func (t *TIFS) StorageBitsPerCore() int {
	if t.cfg.IMLEntries == 0 || t.cfg.Virtualized {
		return 0
	}
	return t.cfg.IMLEntries * 39
}
