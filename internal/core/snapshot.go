package core

import (
	"tifs/internal/flathash"
	"tifs/internal/prefetch"
)

// engineSnap checkpoints one per-core Engine. Unbounded IMLs are
// append-only, so their checkpoint is just the live length and Restore
// truncates; bounded IMLs are rings whose slots get overwritten, so
// their entries must be copied.
type engineSnap struct {
	logLen     int        // unbounded: live entry count at save time
	logEntries []logEntry // bounded: full ring copy
	appended   uint64
	svb        []svbEntry
	strs       []stream
	stats      prefetch.Stats
	tstats     TIFSStats
}

// Snapshot checkpoints a TIFS instance's full mutable state — the
// shared Index Table, the failure-injection random stream, and every
// per-core engine — for the simulator's speculative merge tier. Save
// reuses the snapshot's buffers, so pooled snapshots stop allocating at
// steady state.
type Snapshot struct {
	index flathash.Snapshot
	rng   [4]uint64
	cores []engineSnap
}

// Save copies the instance's current state into s.
func (t *TIFS) Save(s *Snapshot) {
	t.index.Save(&s.index)
	s.rng = t.rng.State()
	if cap(s.cores) < len(t.cores) {
		s.cores = make([]engineSnap, len(t.cores))
	}
	s.cores = s.cores[:len(t.cores)]
	for i, e := range t.cores {
		es := &s.cores[i]
		es.appended = e.log.appended
		if e.log.capacity == 0 {
			es.logLen = len(e.log.entries)
			es.logEntries = es.logEntries[:0]
		} else {
			es.logEntries = append(es.logEntries[:0], e.log.entries...)
		}
		es.svb = append(es.svb[:0], e.svb...)
		es.strs = append(es.strs[:0], e.strs...)
		es.stats = e.stats
		es.tstats = e.tstats
	}
}

// Restore rewinds the instance to the state captured by Save. The
// snapshot must come from this instance (same core count and IML
// configuration), and for unbounded IMLs the log must only have grown
// since the save — which is the only way it can change.
func (t *TIFS) Restore(s *Snapshot) {
	t.index.Restore(&s.index)
	t.rng.SetState(s.rng)
	for i, e := range t.cores {
		es := &s.cores[i]
		e.log.appended = es.appended
		if e.log.capacity == 0 {
			e.log.entries = e.log.entries[:es.logLen]
		} else {
			e.log.entries = append(e.log.entries[:0], es.logEntries...)
		}
		e.svb = append(e.svb[:0], es.svb...)
		e.strs = append(e.strs[:0], es.strs...)
		e.stats = es.stats
		e.tstats = es.tstats
	}
}
