package core

import (
	"testing"

	"tifs/internal/isa"
	"tifs/internal/prefetch"
)

type fakeMem struct {
	latency    uint64
	prefetches []isa.Block
	metaReads  int
	metaWrites int
}

func (m *fakeMem) Prefetch(core int, b isa.Block, now uint64) uint64 {
	m.prefetches = append(m.prefetches, b)
	return now + m.latency
}

func (m *fakeMem) MetaRead(core int, token uint64, now uint64) uint64 {
	m.metaReads++
	return now + m.latency
}

func (m *fakeMem) MetaWrite(core int, token uint64, now uint64) {
	m.metaWrites++
}

// feedMisses drives a sequence of demand misses through the engine the
// way the fetch unit would: probe, then OnFetchBlock with the outcome.
// It returns the number of SVB hits.
func feedMisses(e *Engine, blocks []isa.Block, start uint64) (hits int) {
	now := start
	for _, b := range blocks {
		if _, ok := e.Probe(b, now); ok {
			hits++
			e.OnFetchBlock(b, prefetch.FetchPrefetchHit, now)
		} else {
			e.OnFetchBlock(b, prefetch.FetchMiss, now)
		}
		now += 50 // generous spacing: prefetches complete between misses
	}
	return hits
}

func stream100(base int, n int) []isa.Block {
	out := make([]isa.Block, n)
	for i := range out {
		out[i] = isa.Block(base + i*3) // non-sequential blocks
	}
	return out
}

func TestConfigNames(t *testing.T) {
	if UnboundedConfig().Name() != "TIFS-unbounded" {
		t.Error("unbounded name")
	}
	if DedicatedConfig().Name() != "TIFS-dedicated" {
		t.Error("dedicated name")
	}
	if VirtualizedConfig().Name() != "TIFS-virtualized" {
		t.Error("virtualized name")
	}
	if DedicatedConfig().IMLEntries != 8192 {
		t.Error("dedicated should have 8K entries per core")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := Config{IndexDropProb: 2}
	if bad.Validate() == nil {
		t.Error("IndexDropProb 2 accepted")
	}
	bad = Config{IMLEntries: -1}
	if bad.Validate() == nil {
		t.Error("negative entries accepted")
	}
}

func TestStorageAccounting(t *testing.T) {
	mem := &fakeMem{latency: 20}
	dedicated := New(DedicatedConfig(), 4, mem)
	// 8K entries x 39 bits = 312 Kbit = 39 KB per core; 156 KB aggregate
	// (the paper's Section 6.3 numbers).
	bits := dedicated.StorageBitsPerCore()
	if bits != 8192*39 {
		t.Errorf("StorageBitsPerCore = %d", bits)
	}
	if New(UnboundedConfig(), 1, mem).StorageBitsPerCore() != 0 {
		t.Error("unbounded should report no dedicated storage")
	}
	if New(VirtualizedConfig(), 1, mem).StorageBitsPerCore() != 0 {
		t.Error("virtualized should report no dedicated storage")
	}
}

func TestStreamReplayCoversRepeat(t *testing.T) {
	mem := &fakeMem{latency: 20}
	tifs := New(UnboundedConfig(), 1, mem)
	e := tifs.Core(0)

	s := stream100(1000, 50)
	if got := feedMisses(e, s, 0); got != 0 {
		t.Fatalf("first traversal hit %d times", got)
	}
	// Second traversal: head misses (triggers lookup), and with
	// end-of-stream pausing on never-confirmed entries the stream
	// advances one block per demand; still, every non-head block should
	// be an SVB hit.
	hits := feedMisses(e, s, 100_000)
	if hits < 45 {
		t.Fatalf("second traversal: %d/50 SVB hits", hits)
	}
	// Third traversal: hit bits are now set; rate matching runs ahead.
	hits = feedMisses(e, s, 200_000)
	if hits < 45 {
		t.Fatalf("third traversal: %d/50 SVB hits", hits)
	}
	st := tifs.Stats()
	if st.Hits() == 0 || st.Issued == 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestEndOfStreamLimitsOverfetch(t *testing.T) {
	// Train a short stream followed by unrelated misses; replay of the
	// short stream must not blast past its end.
	mem := &fakeMem{latency: 20}
	tifs := New(UnboundedConfig(), 1, mem)
	e := tifs.Core(0)

	short := stream100(100, 6)
	other := stream100(9000, 40)
	feedMisses(e, short, 0)
	feedMisses(e, other, 10_000)

	// Replay the short stream twice so hit bits are set on its interior.
	feedMisses(e, short, 100_000)
	issuedBefore := tifs.Stats().Issued
	feedMisses(e, short, 200_000)
	issuedDuring := tifs.Stats().Issued - issuedBefore

	// With end-of-stream detection the replay issues roughly the stream
	// length plus the lookahead window, not the whole following log.
	if issuedDuring > uint64(len(short)+8) {
		t.Errorf("issued %d prefetches replaying a %d-block stream", issuedDuring, len(short))
	}
}

func TestEndOfStreamDisabledOverfetches(t *testing.T) {
	mem := &fakeMem{latency: 20}
	cfg := UnboundedConfig()
	cfg.DisableEndOfStream = true
	tifs := New(cfg, 1, mem)
	e := tifs.Core(0)

	short := stream100(100, 6)
	other := stream100(9000, 40)
	feedMisses(e, short, 0)
	feedMisses(e, other, 10_000)

	issuedBefore := tifs.Stats().Issued
	feedMisses(e, short, 100_000)
	issuedDuring := tifs.Stats().Issued - issuedBefore
	// Without the pause heuristic the stream runs into the following log
	// (rate matching keeps 4 in flight, advancing on each hit).
	if issuedDuring <= uint64(len(short)) {
		t.Errorf("expected overfetch without end-of-stream detection, issued %d", issuedDuring)
	}
	if tifs.TIFSStats().Pauses != 0 {
		t.Error("pauses recorded with end-of-stream disabled")
	}
}

func TestBoundedIMLWrapsAndStreamsDie(t *testing.T) {
	mem := &fakeMem{latency: 20}
	cfg := Config{IMLEntries: 32}
	tifs := New(cfg, 1, mem)
	e := tifs.Core(0)

	long := stream100(5000, 100) // much longer than the IML
	feedMisses(e, long, 0)
	// The early entries are dead; replay of the start finds no stream.
	hits := feedMisses(e, long[:20], 100_000)
	if hits != 0 {
		t.Errorf("replayed %d blocks whose log entries were overwritten", hits)
	}
	// Recurrence within the live window still replays. (Replays append to
	// the log too, so the window slides while following; only the recent
	// tail survives.)
	hits = feedMisses(e, long[90:], 200_000)
	if hits < 5 {
		t.Errorf("tail replay hit only %d/10", hits)
	}
}

func TestCrossCoreStreamFollowing(t *testing.T) {
	mem := &fakeMem{latency: 20}
	tifs := New(UnboundedConfig(), 2, mem)
	s := stream100(777, 30)

	// Core 0 logs the stream; core 1 then encounters it and follows core
	// 0's IML through the shared index (Section 5.1).
	feedMisses(tifs.Core(0), s, 0)
	hits := feedMisses(tifs.Core(1), s, 100_000)
	if hits < 25 {
		t.Errorf("core 1 hit only %d/30 via cross-core stream", hits)
	}
}

func TestVirtualizedIMLTraffic(t *testing.T) {
	mem := &fakeMem{latency: 20}
	tifs := New(VirtualizedConfig(), 1, mem)
	e := tifs.Core(0)

	s := stream100(300, EntriesPerIMLBlock*4)
	feedMisses(e, s, 0)
	if mem.metaWrites == 0 {
		t.Error("virtualized IML produced no metadata writes")
	}
	// 48 appends = 4 full IML blocks.
	if got := tifs.Stats().MetaWrites; got != 4 {
		t.Errorf("MetaWrites = %d, want 4", got)
	}
	feedMisses(e, s, 100_000)
	if tifs.Stats().MetaReads == 0 {
		t.Error("stream replay should read IML blocks from L2")
	}

	// Dedicated storage must produce no metadata traffic at all.
	mem2 := &fakeMem{latency: 20}
	tifs2 := New(DedicatedConfig(), 1, mem2)
	feedMisses(tifs2.Core(0), s, 0)
	feedMisses(tifs2.Core(0), s, 100_000)
	if mem2.metaReads != 0 || mem2.metaWrites != 0 {
		t.Error("dedicated IML issued metadata traffic")
	}
}

func TestIndexDropInjection(t *testing.T) {
	mem := &fakeMem{latency: 20}
	cfg := UnboundedConfig()
	cfg.IndexDropProb = 1.0 // drop every update
	tifs := New(cfg, 1, mem)
	e := tifs.Core(0)
	s := stream100(42, 20)
	feedMisses(e, s, 0)
	hits := feedMisses(e, s, 100_000)
	if hits != 0 {
		t.Errorf("with all index updates dropped, replay hit %d times", hits)
	}
	if tifs.TIFSStats().IndexDrops == 0 {
		t.Error("drops not counted")
	}
}

func TestDiscardAccounting(t *testing.T) {
	mem := &fakeMem{latency: 20}
	cfg := UnboundedConfig()
	cfg.SVBBlocks = 4
	cfg.DisableEndOfStream = true // stream runs ahead freely
	tifs := New(cfg, 1, mem)
	e := tifs.Core(0)

	s := stream100(100, 40)
	feedMisses(e, s, 0)
	// Replay only the head: the stream pushes blocks that are never
	// consumed; the tiny SVB must evict them as discards.
	now := uint64(100_000)
	e.Probe(s[0], now)
	e.OnFetchBlock(s[0], prefetch.FetchMiss, now)
	for i := 1; i < 6; i++ {
		now += 50
		if _, ok := e.Probe(s[i], now); ok {
			e.OnFetchBlock(s[i], prefetch.FetchPrefetchHit, now)
		} else {
			e.OnFetchBlock(s[i], prefetch.FetchMiss, now)
		}
	}
	// Now abandon the stream and stream a fresh region twice: the second
	// traversal's stream insertions must evict the stale entries.
	fresh := stream100(50_000, 30)
	feedMisses(e, fresh, 200_000)
	feedMisses(e, fresh, 300_000)
	if tifs.Stats().Discards == 0 {
		t.Error("abandoned stream produced no discards")
	}
}

func TestLateHitReportsFutureReady(t *testing.T) {
	mem := &fakeMem{latency: 1000} // slow memory: hits will be in flight
	tifs := New(UnboundedConfig(), 1, mem)
	e := tifs.Core(0)
	s := stream100(100, 10)
	feedMisses(e, s, 0)

	// Replay quickly (no spacing): the lookahead prefetches are still in
	// flight when demanded.
	now := uint64(100_000)
	late := 0
	for _, b := range s {
		if ready, ok := e.Probe(b, now); ok {
			if ready > now {
				late++
			}
			e.OnFetchBlock(b, prefetch.FetchPrefetchHit, now)
		} else {
			e.OnFetchBlock(b, prefetch.FetchMiss, now)
		}
		now += 5
	}
	if late == 0 {
		t.Error("expected late (in-flight) hits with 1000-cycle memory")
	}
	if tifs.Stats().HitsLate == 0 {
		t.Error("late hits not counted")
	}
}

func TestPanicsOnBadConstruction(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mem := &fakeMem{}
	mustPanic("zero cores", func() { New(UnboundedConfig(), 0, mem) })
	mustPanic("bad config", func() { New(Config{IndexDropProb: -1}, 1, mem) })
}

func TestIMLRing(t *testing.T) {
	l := iml{capacity: 4}
	for i := 0; i < 10; i++ {
		l.append(logEntry{block: isa.Block(i)})
	}
	if l.alive(5) {
		t.Error("entry 5 should be dead (window is 6..9)")
	}
	for i := 6; i < 10; i++ {
		if !l.alive(uint64(i)) {
			t.Errorf("entry %d should be alive", i)
		}
		if l.at(uint64(i)).block != isa.Block(i) {
			t.Errorf("at(%d) = %v", i, l.at(uint64(i)).block)
		}
	}
	if l.alive(10) {
		t.Error("future entry alive")
	}

	unbounded := iml{}
	for i := 0; i < 100; i++ {
		unbounded.append(logEntry{block: isa.Block(i)})
	}
	if !unbounded.alive(0) || unbounded.at(0).block != 0 {
		t.Error("unbounded log lost entry 0")
	}
}
