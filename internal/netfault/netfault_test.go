package netfault

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tifs/internal/retry"
)

// newServer returns a test server whose handler echoes a fixed body and
// a client whose transport is wrapped by the given Fault.
func newServer(t *testing.T, body string) (*httptest.Server, func(f *Fault) *http.Client) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, func(f *Fault) *http.Client {
		return &http.Client{Transport: f}
	}
}

func get(t *testing.T, c *http.Client, url string) (string, int, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), resp.StatusCode, err
}

func TestDropFiresAtNthMatchThenHeals(t *testing.T) {
	srv, client := newServer(t, "payload")
	c := client(New(nil, Rule{Method: "GET", Path: "/v1/blob", Nth: 2}))

	if _, _, err := get(t, c, srv.URL+"/v1/blob/aa"); err != nil {
		t.Fatalf("request 1 should pass: %v", err)
	}
	if _, _, err := get(t, c, srv.URL+"/v1/blob/aa"); err == nil {
		t.Fatal("request 2 should be dropped")
	} else if !retry.TransientNetwork(err) {
		t.Fatalf("dropped request error %v is not classified transient", err)
	}
	if body, _, err := get(t, c, srv.URL+"/v1/blob/aa"); err != nil || body != "payload" {
		t.Fatalf("request 3 should heal: body=%q err=%v", body, err)
	}
}

func TestDropTimesRepeatsAndForever(t *testing.T) {
	srv, client := newServer(t, "ok")
	// Times=1: fires at 1st and 2nd match.
	c := client(New(nil, Rule{Nth: 1, Times: 1}))
	for i := 0; i < 2; i++ {
		if _, _, err := get(t, c, srv.URL+"/x"); err == nil {
			t.Fatalf("request %d should be dropped", i+1)
		}
	}
	if _, _, err := get(t, c, srv.URL+"/x"); err != nil {
		t.Fatalf("request 3 should pass: %v", err)
	}

	// Times<0: every match from the Nth on.
	c = client(New(nil, Rule{Nth: 2, Times: -1}))
	if _, _, err := get(t, c, srv.URL+"/x"); err != nil {
		t.Fatalf("request 1 should pass: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := get(t, c, srv.URL+"/x"); err == nil {
			t.Fatal("persistent drop should keep firing")
		}
	}
}

func TestStatusSynthesizesWithoutReachingServer(t *testing.T) {
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		fmt.Fprint(w, "real")
	}))
	defer srv.Close()
	c := &http.Client{Transport: New(nil, Rule{Mode: ModeStatus, Status: 503, Nth: 1})}
	body, code, err := get(t, c, srv.URL+"/x")
	if err != nil || code != 503 || body != "" {
		t.Fatalf("injected 503: body=%q code=%d err=%v", body, code, err)
	}
	if hits != 0 {
		t.Fatalf("server saw %d hits, want 0 (status is synthesized client-side)", hits)
	}
	if _, code, _ := get(t, c, srv.URL+"/x"); code != 200 || hits != 1 {
		t.Fatalf("request 2: code=%d hits=%d, want 200/1", code, hits)
	}
}

func TestTornBodyCutsMidRead(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv, client := newServer(t, payload)
	c := client(New(nil, Rule{Mode: ModeTornBody, Nth: 1}))
	body, _, err := get(t, c, srv.URL+"/x")
	if err == nil {
		t.Fatalf("torn body should fail the read; got %d clean bytes", len(body))
	}
	if !retry.TransientNetwork(err) {
		t.Fatalf("torn-body error %v is not classified transient", err)
	}
	if len(body) >= len(payload) {
		t.Fatalf("read %d bytes, want fewer than %d", len(body), len(payload))
	}
}

func TestLatencyDelaysThenForwards(t *testing.T) {
	srv, client := newServer(t, "slow")
	c := client(New(nil, Rule{Mode: ModeLatency, Latency: 50 * time.Millisecond, Nth: 1}))
	start := time.Now()
	body, _, err := get(t, c, srv.URL+"/x")
	if err != nil || body != "slow" {
		t.Fatalf("latency request failed: body=%q err=%v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request completed in %v, want >= 50ms", elapsed)
	}
}

func TestMatchingByMethodAndPath(t *testing.T) {
	srv, client := newServer(t, "ok")
	c := client(New(nil, Rule{Method: "PUT", Path: "/v1/blob", Nth: 1}))

	// GETs and other paths never match.
	if _, _, err := get(t, c, srv.URL+"/v1/blob/aa"); err != nil {
		t.Fatalf("GET should not match a PUT rule: %v", err)
	}
	req, _ := http.NewRequest("PUT", srv.URL+"/v1/manifest", strings.NewReader("m"))
	if resp, err := c.Do(req); err != nil {
		t.Fatalf("PUT to a non-matching path should pass: %v", err)
	} else {
		resp.Body.Close()
	}
	req, _ = http.NewRequest("PUT", srv.URL+"/v1/blob/aa", strings.NewReader("b"))
	if _, err := c.Do(req); err == nil {
		t.Fatal("PUT to the matching path should be dropped")
	}
}

func TestTraceCaptureAndReplay(t *testing.T) {
	srv, client := newServer(t, "ok")
	f := New(nil)
	c := client(f)

	// A clean run captures the op trace.
	urls := []string{"/v1/blob/aa", "/v1/manifest", "/v1/blob/aa", "/v1/blob/bb"}
	for _, u := range urls {
		if _, _, err := get(t, c, srv.URL+u); err != nil {
			t.Fatalf("clean run %s: %v", u, err)
		}
	}
	tr := f.Trace()
	if len(tr) != len(urls) {
		t.Fatalf("trace has %d entries, want %d", len(tr), len(urls))
	}

	// Replay with a rule derived from trace index 2 (the second GET of
	// /v1/blob/aa): exactly that request fails, the rest pass.
	rule := RuleForTraceIndex(tr, 2, ModeDrop)
	if rule.Nth != 2 || rule.Path != "/v1/blob/aa" {
		t.Fatalf("derived rule %+v, want nth=2 path=/v1/blob/aa", rule)
	}
	c2 := client(New(nil, rule))
	for i, u := range urls {
		_, _, err := get(t, c2, srv.URL+u)
		if i == 2 && err == nil {
			t.Fatalf("replay request %d should fail", i)
		}
		if i != 2 && err != nil {
			t.Fatalf("replay request %d should pass: %v", i, err)
		}
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("drop:GET:/v1/blob:1,503:PUT::2,latency50ms:::3,torn:GET:/v1/blob:2:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Mode: ModeDrop, Method: "GET", Path: "/v1/blob", Nth: 1},
		{Mode: ModeStatus, Status: 503, Method: "PUT", Nth: 2},
		{Mode: ModeLatency, Latency: 50 * time.Millisecond, Nth: 3},
		{Mode: ModeTornBody, Method: "GET", Path: "/v1/blob", Nth: 2, Times: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Errorf("rule %d: %+v, want %+v", i, rules[i], want[i])
		}
	}

	for _, bad := range []string{"boom:GET:/x:1", "drop:GET:/x", "drop:GET:/x:0", "latencyzz:::1", "300:::1"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted a malformed rule", bad)
		}
	}

	// Empty specs and stray commas are fine.
	if rules, err := ParseRules(" , "); err != nil || len(rules) != 0 {
		t.Errorf("blank spec: rules=%v err=%v", rules, err)
	}
}
