// Package netfault injects deterministic network faults into HTTP
// clients — the internal/vfs.Fault analogue for the network boundary.
// A Fault wraps an http.RoundTripper, records every request (method,
// path) in an op trace, and fails the ones its rules match:
//
//   - drop: the request never reaches the server; the caller sees a
//     connection reset, the shape of a partition or a crashed peer.
//   - latency: the request is delayed, then proceeds — a tail-latency
//     spike for hedging to race.
//   - 5xx: a synthesized error response returns without the request
//     reaching the server — an overloaded or crashing backend.
//   - torn body: the request reaches the server and the response
//     returns, but its body is cut short of Content-Length mid-read —
//     a connection dying under a transfer.
//
// Rules are deterministic: the Nth request matching (method, path
// substring) always trips the same rule at the same point, so a failing
// schedule reproduces from an op trace exactly (RuleForTraceIndex), the
// same discipline vfs.Fault established for filesystem faults.
package netfault

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Mode selects what a matched rule does to the request.
type Mode int

const (
	// ModeDrop fails the request with a connection reset before it
	// reaches the server.
	ModeDrop Mode = iota
	// ModeLatency delays the request by Rule.Latency, then proceeds.
	ModeLatency
	// ModeStatus synthesizes a response with Rule.Status (default 503)
	// and an empty body; the request does not reach the server.
	ModeStatus
	// ModeTornBody forwards the request but truncates the response body
	// to half its Content-Length, surfacing a connection reset mid-read.
	ModeTornBody
)

func (m Mode) String() string {
	switch m {
	case ModeDrop:
		return "drop"
	case ModeLatency:
		return "latency"
	case ModeStatus:
		return "status"
	case ModeTornBody:
		return "torn"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Rule arms one fault: the Nth request matching (Method, Path
// substring) is failed according to Mode.
type Rule struct {
	// Method, when non-empty, must equal the request method.
	Method string
	// Path, when non-empty, must be a substring of the request path.
	Path string
	// Nth is the 1-based index among matching requests at which the
	// rule fires; 0 means the first match.
	Nth int
	// Times is how many consecutive matches fire after the Nth (0 means
	// exactly one; negative means every match from the Nth on).
	Times int
	// Mode is what happens when the rule fires.
	Mode Mode
	// Latency is the injected delay for ModeLatency.
	Latency time.Duration
	// Status is the synthesized status for ModeStatus (default 503).
	Status int
}

func (r Rule) String() string {
	return fmt.Sprintf("rule{%s %s %q nth=%d times=%d}", r.Mode, r.Method, r.Path, r.Nth, r.Times)
}

// OpRecord is one entry of a Fault's request trace.
type OpRecord struct {
	Method, Path string
}

func (o OpRecord) String() string { return o.Method + " " + o.Path }

// Fault is a fault-injecting RoundTripper wrapping another (normally
// http.DefaultTransport). It is safe for concurrent use; note that
// concurrent requests (hedges, parallel workers) race for Nth-match
// positions, so tests that need exact firing points sequence their
// requests.
type Fault struct {
	inner http.RoundTripper

	mu    sync.Mutex
	rules []*ruleState
	trace []OpRecord
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// New wraps inner (nil selects http.DefaultTransport) with the given
// rules armed.
func New(inner http.RoundTripper, rules ...Rule) *Fault {
	if inner == nil {
		inner = http.DefaultTransport
	}
	f := &Fault{inner: inner}
	for _, r := range rules {
		f.AddRule(r)
	}
	return f
}

// AddRule arms another rule; matching counts start at the moment the
// rule is added.
func (f *Fault) AddRule(r Rule) {
	if r.Nth <= 0 {
		r.Nth = 1
	}
	if r.Status == 0 {
		r.Status = http.StatusServiceUnavailable
	}
	f.mu.Lock()
	f.rules = append(f.rules, &ruleState{Rule: r})
	f.mu.Unlock()
}

// Trace returns the requests observed so far, in order.
func (f *Fault) Trace() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]OpRecord(nil), f.trace...)
}

// RuleForTraceIndex converts entry i of a previously captured trace
// into a rule that fires at exactly that request when the same workload
// replays — the reproduction half of deterministic fault injection.
func RuleForTraceIndex(trace []OpRecord, i int, mode Mode) Rule {
	nth := 0
	for j := 0; j <= i && j < len(trace); j++ {
		if trace[j].Method == trace[i].Method && trace[j].Path == trace[i].Path {
			nth++
		}
	}
	return Rule{Method: trace[i].Method, Path: trace[i].Path, Nth: nth, Mode: mode}
}

// check records the request and consults the rules, returning the first
// rule that fires.
func (f *Fault) check(method, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.trace = append(f.trace, OpRecord{Method: method, Path: path})
	for _, r := range f.rules {
		if r.Method != "" && r.Method != method {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen < r.Nth {
			continue
		}
		if r.Times >= 0 && r.fired > r.Times {
			continue
		}
		r.fired++
		rule := r.Rule
		return &rule
	}
	return nil
}

// errDropped is the connection-level failure a dropped request surfaces
// as: a net.OpError wrapping ECONNRESET, exactly what a real torn
// connection produces, so retry.TransientNetwork classifies it without
// special cases.
func errDropped() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

// RoundTrip implements http.RoundTripper.
func (f *Fault) RoundTrip(req *http.Request) (*http.Response, error) {
	r := f.check(req.Method, req.URL.Path)
	if r == nil {
		return f.inner.RoundTrip(req)
	}
	switch r.Mode {
	case ModeDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errDropped()
	case ModeStatus:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:        fmt.Sprintf("%d %s", r.Status, http.StatusText(r.Status)),
			StatusCode:    r.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"X-Netfault": []string{"injected"}},
			Body:          io.NopCloser(strings.NewReader("")),
			ContentLength: 0,
			Request:       req,
		}, nil
	case ModeLatency:
		timer := time.NewTimer(r.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return f.inner.RoundTrip(req)
	case ModeTornBody:
		resp, err := f.inner.RoundTrip(req)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		// Tear at half the declared length; chunked responses (unknown
		// length) tear at a fixed deterministic offset instead.
		cut := resp.ContentLength / 2
		if resp.ContentLength <= 0 {
			cut = 1024
		}
		resp.Body = &tornBody{inner: resp.Body, remaining: cut}
		return resp, nil
	}
	return f.inner.RoundTrip(req)
}

// tornBody yields the first half of a response body, then fails the
// read with a connection reset — the Content-Length header promised
// more, so the HTTP client surfaces a torn transfer to the caller.
type tornBody struct {
	inner     io.ReadCloser
	remaining int64
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, errDropped()
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF && b.remaining <= 0 {
		err = errDropped()
	}
	return n, err
}

func (b *tornBody) Close() error { return b.inner.Close() }

// ParseRules decodes the CLI fault-matrix syntax: a comma-separated
// list of rules, each "mode:method:path:nth" with an optional ":times"
// fifth field (negative = every match from the Nth on). Mode is one of
// "drop", "torn", an HTTP status ("500", "503"), or "latency<dur>"
// ("latency50ms"). Empty method/path fields match anything.
//
//	drop:GET:/v1/blob:1,503:PUT::2,latency50ms:::3,torn:GET:/v1/blob:2:1
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		fields := strings.Split(one, ":")
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("netfault: bad rule %q: want mode:method:path:nth[:times]", one)
		}
		var r Rule
		mode := fields[0]
		switch {
		case mode == "drop":
			r.Mode = ModeDrop
		case mode == "torn":
			r.Mode = ModeTornBody
		case strings.HasPrefix(mode, "latency"):
			d, err := time.ParseDuration(strings.TrimPrefix(mode, "latency"))
			if err != nil {
				return nil, fmt.Errorf("netfault: bad latency in rule %q: %v", one, err)
			}
			r.Mode, r.Latency = ModeLatency, d
		default:
			status, err := strconv.Atoi(mode)
			if err != nil || status < 400 || status > 599 {
				return nil, fmt.Errorf("netfault: bad mode %q in rule %q (want drop, torn, latency<dur>, or a 4xx/5xx status)", mode, one)
			}
			r.Mode, r.Status = ModeStatus, status
		}
		r.Method = fields[1]
		r.Path = fields[2]
		nth, err := strconv.Atoi(fields[3])
		if err != nil || nth < 1 {
			return nil, fmt.Errorf("netfault: bad nth %q in rule %q", fields[3], one)
		}
		r.Nth = nth
		if len(fields) == 5 {
			times, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("netfault: bad times %q in rule %q", fields[4], one)
			}
			r.Times = times
		}
		rules = append(rules, r)
	}
	return rules, nil
}
