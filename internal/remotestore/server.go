// Package remotestore shares one result store across machines over
// plain HTTP, dropping the shared-filesystem requirement the sharded
// sweep engine inherited from its flock-based coordination.
//
// The protocol is small and content-addressed:
//
//	GET  /v1/ping           liveness + format handshake
//	GET  /v1/blob/{addr}    fetch a payload by content address (and HEAD)
//	PUT  /v1/blob/{addr}    store a payload under a content address
//	GET  /v1/manifest       read the sweep manifest + its ETag
//	PUT  /v1/manifest       replace the manifest, guarded by If-Match
//
// Addresses are the store's SHA-256 content addresses in hex; payloads
// are the store codec's encoded forms, opaque to the transport. Every
// response carries X-Tifs-Format (the store format version — a client
// from a different version must not mix results) and blob payloads
// carry X-Tifs-Crc32 so a torn transfer is detected at the boundary
// instead of surfacing as a decode failure deep in a merge.
//
// Blob uploads additionally carry the (kind, key) identity the address
// was derived from as query parameters; the server recomputes the
// SHA-256 address over them and decode-validates the payload before
// admitting it, so a buggy client cannot poison the shared store under
// a wrong address (see putBlob).
//
// The correctness contract is the store's one-way defensiveness,
// unchanged by the network: any failure anywhere — server down, request
// torn, response corrupt — degrades to a cache miss and a local
// recompute, never to different bytes. The client (client.go) layers
// per-op deadlines, classified retries, hedged reads, a circuit
// breaker, and a queued write-back path on that contract, so a remote
// outage costs time, never correctness and never progress.
package remotestore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"tifs/internal/store"
	"tifs/internal/vfs"
)

// Protocol headers and limits.
const (
	// headerFormat carries store.FormatVersion; a mismatch means the two
	// sides would disagree on payload semantics, which is permanent.
	headerFormat = "X-Tifs-Format"
	// headerCRC is the IEEE CRC32 of a blob payload, in hex.
	headerCRC = "X-Tifs-Crc32"
	// maxBlobBytes bounds a single upload; the largest legitimate payload
	// (full-scale miss traces) is well under this.
	maxBlobBytes = 1 << 30
	// maxManifestBytes bounds the coordination manifest.
	maxManifestBytes = 1 << 20

	manifestFile = "shards.manifest"
)

// Server serves a store directory over the blob + manifest protocol.
// Blobs live in the directory's content-addressed store (the server is
// just another store writer, flock and all); the sweep manifest lives
// beside them as an opaque byte image replaced atomically under an
// in-process mutex — the server is the single arbiter, which is what
// makes the manifest CAS sound without distributed locking.
type Server struct {
	st  *store.Store
	dir string

	mu sync.Mutex // serializes manifest read-modify-write cycles
}

// NewServer wraps an open store and its directory. The caller keeps
// ownership of st (and closes it after the HTTP server stops).
func NewServer(st *store.Store, dir string) *Server {
	return &Server{st: st, dir: dir}
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/ping", s.ping)
	mux.HandleFunc("GET /v1/blob/{addr}", s.getBlob) // also serves HEAD
	mux.HandleFunc("PUT /v1/blob/{addr}", s.putBlob)
	mux.HandleFunc("GET /v1/manifest", s.getManifest)
	mux.HandleFunc("PUT /v1/manifest", s.putManifest)
	return mux
}

func (s *Server) ping(w http.ResponseWriter, r *http.Request) {
	s.stamp(w)
	w.WriteHeader(http.StatusOK)
}

// stamp adds the format handshake every response carries.
func (s *Server) stamp(w http.ResponseWriter) {
	w.Header().Set(headerFormat, strconv.Itoa(store.FormatVersion))
}

// parseAddr decodes the hex content address of a blob route. A
// malformed address is a permanent client error, never retried.
func parseAddr(r *http.Request) (store.Addr, bool) {
	var addr store.Addr
	raw, err := hex.DecodeString(r.PathValue("addr"))
	if err != nil || len(raw) != len(addr) {
		return addr, false
	}
	copy(addr[:], raw)
	return addr, true
}

func (s *Server) getBlob(w http.ResponseWriter, r *http.Request) {
	s.stamp(w)
	addr, ok := parseAddr(r)
	if !ok {
		http.Error(w, "malformed content address", http.StatusBadRequest)
		return
	}
	payload, ok := s.st.GetBlob(addr)
	if !ok {
		http.Error(w, "blob not found", http.StatusNotFound)
		return
	}
	w.Header().Set(headerCRC, fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)))
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(payload)
	}
}

func (s *Server) putBlob(w http.ResponseWriter, r *http.Request) {
	s.stamp(w)
	addr, ok := parseAddr(r)
	if !ok {
		http.Error(w, "malformed content address", http.StatusBadRequest)
		return
	}
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxBlobBytes+1))
	if err != nil {
		// The upload tore mid-body: a transient connection fault, not a
		// bad request. 503 tells the client to retry the idempotent PUT.
		http.Error(w, "upload truncated", http.StatusServiceUnavailable)
		return
	}
	if len(payload) > maxBlobBytes {
		http.Error(w, "blob too large", http.StatusRequestEntityTooLarge)
		return
	}
	if want := r.Header.Get(headerCRC); want != "" {
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)); got != want {
			// Body arrived complete per HTTP framing but does not match
			// the client's checksum: bytes were mangled in flight. Also
			// transient — the retried upload re-sends from the source.
			http.Error(w, "payload checksum mismatch", http.StatusServiceUnavailable)
			return
		}
	}
	// Server-side address verification: the CRC above only guards
	// transport, so without this a buggy client could poison the
	// content-addressed store under the wrong address for every worker.
	// The upload must carry the (kind, key) identity the address was
	// derived from; the server recomputes the SHA-256 address over it
	// and refuses a mismatch permanently (400 — retrying an incoherent
	// upload can never help). The payload must additionally decode as
	// its claimed kind, so structurally corrupt bytes are rejected at
	// the boundary instead of becoming a latent decode-miss for every
	// future reader.
	if err := verifyBlob(r, addr, payload); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Duplicate uploads of a content address are idempotent by
	// construction; the store keeps the first and the bytes are equal.
	s.st.PutBlob(addr, payload)
	w.WriteHeader(http.StatusNoContent)
}

// verifyBlob checks that an uploaded payload really belongs under addr:
// the kind/key query parameters must hash to the claimed address and
// the payload must be a valid encoding of that kind. Any failure is a
// permanent client error.
func verifyBlob(r *http.Request, addr store.Addr, payload []byte) error {
	q := r.URL.Query()
	kindStr, key := q.Get("kind"), q.Get("key")
	if kindStr == "" || key == "" {
		return errors.New("blob PUT requires kind and key query parameters for address verification")
	}
	kind, err := strconv.ParseUint(kindStr, 10, 8)
	if err != nil {
		return fmt.Errorf("malformed kind %q", kindStr)
	}
	if store.Address(byte(kind), key) != addr {
		return errors.New("address does not match the claimed (kind, key) identity")
	}
	switch byte(kind) {
	case store.KindResult:
		if _, err := store.DecodeResult(payload); err != nil {
			return fmt.Errorf("payload is not a valid result encoding: %v", err)
		}
	case store.KindMissTraces:
		if _, err := store.DecodeMissTraces(payload); err != nil {
			return fmt.Errorf("payload is not a valid miss-trace encoding: %v", err)
		}
	case store.KindGrammars:
		if _, err := store.DecodeGrammars(payload); err != nil {
			return fmt.Errorf("payload is not a valid grammar encoding: %v", err)
		}
	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
	return nil
}

// manifestETag is the strong validator of a manifest image.
func manifestETag(data []byte) string {
	sum := sha256.Sum256(data)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

func (s *Server) getManifest(w http.ResponseWriter, r *http.Request) {
	s.stamp(w)
	s.mu.Lock()
	data, err := os.ReadFile(filepath.Join(s.dir, manifestFile))
	s.mu.Unlock()
	if errors.Is(err, os.ErrNotExist) {
		http.Error(w, "no manifest", http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("ETag", manifestETag(data))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(data)
	}
}

// putManifest replaces the manifest under compare-and-swap: If-Match
// must carry the ETag of the image the client mutated (If-None-Match: *
// for the creating write). A stale precondition gets 412 and the client
// re-reads, re-applies, and retries — the optimistic-concurrency
// equivalent of the flock the file backend holds across its
// read-modify-write.
func (s *Server) putManifest(w http.ResponseWriter, r *http.Request) {
	s.stamp(w)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxManifestBytes+1))
	if err != nil {
		http.Error(w, "upload truncated", http.StatusServiceUnavailable)
		return
	}
	if len(body) > maxManifestBytes {
		http.Error(w, "manifest too large", http.StatusRequestEntityTooLarge)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	path := filepath.Join(s.dir, manifestFile)
	cur, err := os.ReadFile(path)
	exists := err == nil
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	switch {
	case r.Header.Get("If-None-Match") == "*":
		if exists {
			http.Error(w, "manifest already exists", http.StatusPreconditionFailed)
			return
		}
	case r.Header.Get("If-Match") != "":
		if !exists || r.Header.Get("If-Match") != manifestETag(cur) {
			http.Error(w, "manifest changed since read", http.StatusPreconditionFailed)
			return
		}
	default:
		// Unconditional manifest writes are refused outright: every
		// legitimate writer runs a read-modify-write cycle and must say
		// which image it mutated.
		http.Error(w, "manifest PUT requires If-Match or If-None-Match: *", http.StatusBadRequest)
		return
	}
	// Atomic + durable, same discipline as the local manifest: a crashed
	// server never leaves a torn image for the next reader.
	if err := store.AtomicWriteFileFS(vfs.OS, path, body); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("ETag", manifestETag(body))
	w.WriteHeader(http.StatusNoContent)
}
