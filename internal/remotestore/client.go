package remotestore

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"tifs/internal/retry"
	"tifs/internal/sequitur"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/trace"
)

// Defaults for the client's robustness knobs. They are tuned for a LAN
// sweep: op deadlines short enough that a dead server costs milliseconds
// per miss (before the breaker removes even that), hedges late enough
// that only genuine stragglers pay a duplicate read.
const (
	DefaultTimeout     = 5 * time.Second
	DefaultHedgeDelay  = 250 * time.Millisecond
	DefaultBreakAfter  = 3
	DefaultCooldown    = time.Second
	DefaultQueueLimit  = 4096
	defaultCASAttempts = 32
)

// statusError carries an HTTP status through the retry classifier:
// 5xx and 429 are the server's "try again", everything else is a
// protocol-level permanent failure.
type statusError struct {
	status int
	op     string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("remotestore: %s: unexpected status %d", e.op, e.status)
}

func (e *statusError) Transient() bool {
	return e.status >= 500 || e.status == http.StatusTooManyRequests
}

// formatError is a version handshake failure — the server speaks a
// different store format, so its payloads must not be mixed with ours.
// Permanent by construction (no Transient method, unrecognized type).
type formatError struct{ got string }

func (e *formatError) Error() string {
	return fmt.Sprintf("remotestore: server store format %q, want %d — refusing to mix payloads", e.got, store.FormatVersion)
}

// Client is a store.Backend over the remote blob protocol, wrapped in
// the full robustness stack:
//
//   - every operation runs under a per-op deadline (Timeout);
//   - transient failures (connection resets, timeouts, 5xx, torn or
//     corrupt bodies) retry under capped backoff with deterministic
//     jitter (Retry, classified by retry.TransientNetwork);
//   - reads hedge: a straggling GET gets a duplicate request after
//     HedgeDelay and the first success wins, cutting tail latency when
//     the server stalls without failing;
//   - a circuit breaker opens after BreakAfter consecutive failed
//     operations, after which the client degrades to local: Get misses
//     instantly, Has answers false, and Put queues the payload in a
//     bounded dedup'd write-back queue. After Cooldown one probe request
//     is let through; its success closes the breaker and flushes the
//     queue, reconciling everything computed during the outage.
//
// The one-way defensiveness contract of store.Backend holds throughout:
// no failure mode returns wrong bytes, and no outage blocks progress —
// the worst case is recomputing results the server already had.
type Client struct {
	base string
	http *http.Client

	// baseCtx bounds every operation the client starts on its own —
	// blob gets/puts/has and recovery flushes. Cancelling it interrupts
	// in-flight requests AND cuts retry backoff sleeps short, so a
	// SIGINT-triggered shutdown never stalls for the retry budget
	// against a dead server.
	baseCtx context.Context

	// Timeout bounds each network operation (one attempt, not the whole
	// retry schedule).
	Timeout time.Duration
	// Retry is the per-attempt backoff schedule; its Classify defaults
	// to retry.TransientNetwork.
	Retry retry.Policy
	// HedgeDelay is how long a read may lag before a duplicate request
	// races it; 0 selects the default, negative disables hedging.
	HedgeDelay time.Duration
	// BreakAfter is the consecutive-failure threshold that opens the
	// breaker; Cooldown is how long it stays open before a probe.
	BreakAfter int
	Cooldown   time.Duration
	// QueueLimit bounds the write-back queue (entries, dedup'd by
	// address); beyond it, new payloads during an outage are dropped —
	// they remain recomputable, so dropping is safe.
	QueueLimit int

	mu       sync.Mutex
	failures int       // consecutive failed operations
	openedAt time.Time // breaker open since (zero = closed)
	probing  bool      // a half-open probe is in flight
	queue    []queued
	queued   map[store.Addr]int // addr -> index in queue
	stats    Stats

	// flushWG tracks recovery flushes launched by the breaker's close
	// transition, so Close can wait for them instead of reading the
	// queue depth mid-flush (and reporting "0 undelivered" while a
	// failed flush is still re-enqueueing).
	flushWG sync.WaitGroup
}

// queued is one deferred write-back: the payload plus the (kind, key)
// identity the server needs to verify the address on upload.
type queued struct {
	addr    store.Addr
	kind    byte
	key     string
	payload []byte
}

// Stats counts the client's traffic and degradations.
type Stats struct {
	Gets, GetHits     uint64
	Puts              uint64
	Hedges            uint64 // duplicate reads launched
	Retries           uint64 // extra attempts after a transient failure
	BreakerOpens      uint64
	QueuedWrites      uint64 // puts deferred while degraded
	DroppedWrites     uint64 // puts dropped at QueueLimit
	FlushedWrites     uint64 // queued puts delivered after recovery
	DegradedOps       uint64 // ops short-circuited by an open breaker
	FormatMismatches  uint64
	ManifestConflicts uint64 // CAS retries (412s)
}

// String renders a one-line summary for operator logs.
func (s Stats) String() string {
	return fmt.Sprintf("remote store: gets=%d hits=%d puts=%d retries=%d hedges=%d breaker-opens=%d degraded-ops=%d queued=%d flushed=%d dropped=%d cas-conflicts=%d",
		s.Gets, s.GetHits, s.Puts, s.Retries, s.Hedges, s.BreakerOpens,
		s.DegradedOps, s.QueuedWrites, s.FlushedWrites, s.DroppedWrites, s.ManifestConflicts)
}

// NewClient connects to a tifsserve base URL ("http://host:9441").
// httpClient may be nil (http.DefaultClient); tests inject a
// netfault-wrapped transport through it.
func NewClient(base string, httpClient *http.Client) *Client {
	return NewClientContext(context.Background(), base, httpClient)
}

// NewClientContext is NewClient with a base context bounding every
// operation the client performs, including retry backoff waits and
// recovery flushes. Cancel it to make an in-flight retry schedule
// against a dead server return promptly (graceful shutdown); operations
// after cancellation degrade to misses and queued write-backs exactly
// like an outage.
func NewClientContext(ctx context.Context, base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &Client{
		base:       base,
		http:       httpClient,
		baseCtx:    ctx,
		Timeout:    DefaultTimeout,
		Retry:      retry.Policy{Classify: retry.TransientNetwork},
		BreakAfter: DefaultBreakAfter,
		Cooldown:   DefaultCooldown,
		QueueLimit: DefaultQueueLimit,
	}
}

var _ store.Backend = (*Client)(nil)

// Ping verifies the server is reachable and speaks our store format.
func (c *Client) Ping(ctx context.Context) error {
	return c.Retry.DoContext(ctx, func() error {
		ctx, cancel := c.opCtx(ctx)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/ping", nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp)
		if resp.StatusCode != http.StatusOK {
			return &statusError{resp.StatusCode, "ping"}
		}
		return checkFormat(resp)
	})
}

func (c *Client) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = c.ctx()
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return context.WithTimeout(ctx, timeout)
}

// ctx returns the client's base context (Background for the zero-ish
// construction paths that never set one).
func (c *Client) ctx() context.Context {
	if c.baseCtx != nil {
		return c.baseCtx
	}
	return context.Background()
}

// drain consumes and closes a response body so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// checkFormat enforces the version handshake on any response carrying
// the header.
func checkFormat(resp *http.Response) error {
	if got := resp.Header.Get(headerFormat); got != "" && got != strconv.Itoa(store.FormatVersion) {
		return &formatError{got}
	}
	return nil
}

// --- circuit breaker ---------------------------------------------------

// admit reports whether an operation may go to the network. When the
// breaker is open and the cooldown has not elapsed, the operation
// degrades locally; once it has, a single caller is admitted as the
// half-open probe.
func (c *Client) admit() (probe, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openedAt.IsZero() {
		return false, true
	}
	cooldown := c.Cooldown
	if cooldown <= 0 {
		cooldown = DefaultCooldown
	}
	if time.Since(c.openedAt) >= cooldown && !c.probing {
		c.probing = true
		return true, true
	}
	c.stats.DegradedOps++
	return false, false
}

// settle records an operation's outcome in the breaker and, on the
// close transition, flushes the write-back queue.
func (c *Client) settle(probe bool, err error) {
	c.mu.Lock()
	if probe {
		c.probing = false
	}
	if err == nil {
		c.failures = 0
		wasOpen := !c.openedAt.IsZero()
		c.openedAt = time.Time{}
		if wasOpen {
			// Recovery: reconcile everything computed during the outage.
			// Registered with flushWG while the lock is held, so a Close
			// racing this transition waits for the flush to settle.
			c.flushWG.Add(1)
			go func() {
				defer c.flushWG.Done()
				c.Flush(nil)
			}()
		}
		c.mu.Unlock()
		return
	}
	if errors.Is(err, context.Canceled) {
		// The caller asked to stop (base-context shutdown), the server
		// did not fail: neither a breaker failure nor a success.
		c.mu.Unlock()
		return
	}
	c.failures++
	threshold := c.BreakAfter
	if threshold <= 0 {
		threshold = DefaultBreakAfter
	}
	if c.openedAt.IsZero() && c.failures >= threshold {
		c.openedAt = time.Now()
		c.stats.BreakerOpens++
	} else if probe {
		// A failed probe re-opens the clock for a fresh cooldown.
		c.openedAt = time.Now()
	}
	c.mu.Unlock()
}

// enqueue defers a write-back until the server recovers. Deduplicated
// by address (content-addressed payloads are immutable, so the first
// copy is as good as the last); bounded, dropping beyond the limit —
// a dropped write-back stays recomputable forever.
func (c *Client) enqueue(q queued) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.push(q, true)
}

// push adds one write-back to the queue; the caller holds mu. fresh
// distinguishes a newly deferred payload (counted in QueuedWrites) from
// one re-queued by a failed flush, which was already counted when it
// first entered the queue — counting it again would drift QueuedWrites
// away from FlushedWrites+QueueDepth after every mid-flush failure.
func (c *Client) push(q queued, fresh bool) {
	if c.queued == nil {
		c.queued = map[store.Addr]int{}
	}
	if _, dup := c.queued[q.addr]; dup {
		return
	}
	limit := c.QueueLimit
	if limit <= 0 {
		limit = DefaultQueueLimit
	}
	if len(c.queue) >= limit {
		c.stats.DroppedWrites++
		return
	}
	c.queued[q.addr] = len(c.queue)
	c.queue = append(c.queue, q)
	if fresh {
		c.stats.QueuedWrites++
	}
}

// Flush synchronously delivers the write-back queue. Safe to call any
// time; payloads that still fail re-queue (without re-counting as
// queued). The breaker's close transition calls it automatically — an
// explicit call (tifsbench does one before exiting) bounds how much a
// crash could leave behind. A nil ctx uses the client's base context.
func (c *Client) Flush(ctx context.Context) {
	if ctx == nil {
		ctx = c.ctx()
	}
	c.mu.Lock()
	pending := c.queue
	c.queue = nil
	c.queued = nil
	c.mu.Unlock()
	for i, q := range pending {
		if err := c.putBlobNet(ctx, q); err != nil {
			// Server gone again: put everything undelivered back.
			c.mu.Lock()
			c.stats.FlushedWrites += uint64(i)
			for _, rest := range pending[i:] {
				c.push(rest, false)
			}
			c.mu.Unlock()
			return
		}
	}
	c.mu.Lock()
	c.stats.FlushedWrites += uint64(len(pending))
	c.mu.Unlock()
}

// QueueDepth reports how many write-backs are waiting for recovery.
func (c *Client) QueueDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// --- blob operations ---------------------------------------------------

func (c *Client) blobURL(addr store.Addr) string {
	return c.base + "/v1/blob/" + hex.EncodeToString(addr[:])
}

// getBlob fetches a payload, or reports a miss. Every failure mode is a
// miss: the caller recomputes, which is always correct.
func (c *Client) getBlob(addr store.Addr) ([]byte, bool) {
	probe, ok := c.admit()
	if !ok {
		return nil, false
	}
	c.mu.Lock()
	c.stats.Gets++
	c.mu.Unlock()
	var payload []byte
	var found bool
	err := c.doRetry(c.ctx(), func() error {
		var err error
		payload, found, err = c.getBlobOnce(addr)
		return err
	})
	c.settle(probe, err)
	if err != nil || !found {
		return nil, false
	}
	c.mu.Lock()
	c.stats.GetHits++
	c.mu.Unlock()
	return payload, true
}

// doRetry runs op under the client's retry policy, counting the extra
// attempts. The schedule is bounded by ctx: a cancellation mid-backoff
// cuts the sleep short and returns immediately, so shutdown never waits
// out the retry budget against a dead server.
func (c *Client) doRetry(ctx context.Context, op func() error) error {
	attempt := 0
	p := c.Retry
	if p.Classify == nil {
		p.Classify = retry.TransientNetwork
	}
	return p.DoContext(ctx, func() error {
		if attempt++; attempt > 1 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
		}
		return op()
	})
}

// getBlobOnce is one hedged read: the primary GET races a duplicate
// launched after HedgeDelay, first success wins, the loser is
// cancelled. Reads are idempotent and the payloads content-addressed,
// so the duplicate can never disagree.
func (c *Client) getBlobOnce(addr store.Addr) (payload []byte, found bool, err error) {
	ctx, cancel := c.opCtx(c.ctx())
	defer cancel()

	delay := c.HedgeDelay
	if delay == 0 {
		delay = DefaultHedgeDelay
	}

	type outcome struct {
		payload []byte
		found   bool
		err     error
	}
	results := make(chan outcome, 2)
	launch := func() {
		p, f, e := c.fetch(ctx, addr)
		results <- outcome{p, f, e}
	}
	go launch()

	inFlight := 1
	var hedge *time.Timer
	var hedgeC <-chan time.Time
	if delay > 0 {
		hedge = time.NewTimer(delay)
		defer hedge.Stop()
		hedgeC = hedge.C
	}
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			inFlight++
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			go launch()
		case out := <-results:
			if out.err == nil {
				return out.payload, out.found, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inFlight--; inFlight == 0 {
				// Every launched request failed (with no hedge pending the
				// primary's failure lands here directly): surface the first
				// error to the retry layer.
				return nil, false, firstErr
			}
		}
	}
}

// fetch is one GET of one blob.
func (c *Client) fetch(ctx context.Context, addr store.Addr) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.blobURL(addr), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer drain(resp)
	if err := checkFormat(resp); err != nil {
		c.mu.Lock()
		c.stats.FormatMismatches++
		c.mu.Unlock()
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, &statusError{resp.StatusCode, "get blob"}
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes+1))
	if err != nil {
		return nil, false, err // torn body; classified transient
	}
	if want := resp.Header.Get(headerCRC); want != "" {
		if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)); got != want {
			// Corrupt in flight. Transient: the next read gets fresh bytes.
			return nil, false, &statusError{http.StatusServiceUnavailable, "get blob (checksum mismatch)"}
		}
	}
	return payload, true, nil
}

// putBlob stores a payload, degrading to the write-back queue when the
// server is unreachable. Fire-and-forget, like every Backend put. The
// (kind, key) identity travels with the upload so the server can verify
// the address binding before admitting the bytes.
func (c *Client) putBlob(kind byte, key string, payload []byte) {
	q := queued{addr: store.Address(kind, key), kind: kind, key: key, payload: payload}
	probe, ok := c.admit()
	if !ok {
		c.enqueue(q)
		return
	}
	c.mu.Lock()
	c.stats.Puts++
	c.mu.Unlock()
	err := c.putBlobNet(c.ctx(), q)
	c.settle(probe, err)
	if err != nil {
		c.enqueue(q)
	}
}

// putBlobNet is the raw retried upload.
func (c *Client) putBlobNet(ctx context.Context, q queued) error {
	target := c.blobURL(q.addr) + "?kind=" + strconv.Itoa(int(q.kind)) + "&key=" + url.QueryEscape(q.key)
	return c.doRetry(ctx, func() error {
		ctx, cancel := c.opCtx(ctx)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, target, bytes.NewReader(q.payload))
		if err != nil {
			return err
		}
		req.Header.Set(headerCRC, fmt.Sprintf("%08x", crc32.ChecksumIEEE(q.payload)))
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp)
		if err := checkFormat(resp); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusNoContent {
			return &statusError{resp.StatusCode, "put blob"}
		}
		return nil
	})
}

// hasBlob asks without transferring. False on any failure.
func (c *Client) hasBlob(addr store.Addr) bool {
	probe, ok := c.admit()
	if !ok {
		return false
	}
	var found bool
	err := c.doRetry(c.ctx(), func() error {
		ctx, cancel := c.opCtx(c.ctx())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.blobURL(addr), nil)
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp)
		if err := checkFormat(resp); err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			found = true
			return nil
		case http.StatusNotFound:
			found = false
			return nil
		default:
			return &statusError{resp.StatusCode, "head blob"}
		}
	})
	c.settle(probe, err)
	return err == nil && found
}

// --- store.Backend -----------------------------------------------------

// GetResult implements store.Backend: any failure is a miss.
func (c *Client) GetResult(key string) (sim.Result, bool) {
	payload, ok := c.getBlob(store.Address(store.KindResult, key))
	if !ok {
		return sim.Result{}, false
	}
	r, err := store.DecodeResult(payload)
	if err != nil {
		return sim.Result{}, false
	}
	return r, true
}

// PutResult implements store.Backend.
func (c *Client) PutResult(key string, r sim.Result) {
	c.putBlob(store.KindResult, key, store.EncodeResult(r))
}

// GetMissTraces implements store.Backend.
func (c *Client) GetMissTraces(key string) ([][]trace.MissRecord, bool) {
	payload, ok := c.getBlob(store.Address(store.KindMissTraces, key))
	if !ok {
		return nil, false
	}
	recs, err := store.DecodeMissTraces(payload)
	if err != nil {
		return nil, false
	}
	return recs, true
}

// PutMissTraces implements store.Backend.
func (c *Client) PutMissTraces(key string, recs [][]trace.MissRecord) {
	payload, err := store.EncodeMissTraces(recs)
	if err != nil {
		return // unencodable payloads degrade to "never stored"
	}
	c.putBlob(store.KindMissTraces, key, payload)
}

// GetGrammars implements store.Backend.
func (c *Client) GetGrammars(key string) ([]*sequitur.Snapshot, bool) {
	payload, ok := c.getBlob(store.Address(store.KindGrammars, key))
	if !ok {
		return nil, false
	}
	snaps, err := store.DecodeGrammars(payload)
	if err != nil {
		return nil, false
	}
	return snaps, true
}

// PutGrammars implements store.Backend.
func (c *Client) PutGrammars(key string, snaps []*sequitur.Snapshot) {
	payload, err := store.EncodeGrammars(snaps)
	if err != nil {
		return // unencodable payloads degrade to "never stored"
	}
	c.putBlob(store.KindGrammars, key, payload)
}

// HasResult implements store.Backend.
func (c *Client) HasResult(key string) bool {
	return c.hasBlob(store.Address(store.KindResult, key))
}

// HasMissTraces implements store.Backend.
func (c *Client) HasMissTraces(key string) bool {
	return c.hasBlob(store.Address(store.KindMissTraces, key))
}

// HasGrammars implements store.Backend.
func (c *Client) HasGrammars(key string) bool {
	return c.hasBlob(store.Address(store.KindGrammars, key))
}

// Close delivers any queued write-backs (best effort, bounded by the
// op deadline per payload and by the base context) and releases the
// client. It first waits for any recovery flush the breaker launched
// asynchronously — otherwise Close could report "0 undelivered" while
// that flush was failing and re-enqueueing payloads.
func (c *Client) Close() error {
	c.flushWG.Wait()
	if c.QueueDepth() > 0 {
		c.Flush(nil)
	}
	if n := c.QueueDepth(); n > 0 {
		return fmt.Errorf("remotestore: %d write-backs undelivered (results remain recomputable)", n)
	}
	return nil
}
