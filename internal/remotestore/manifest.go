package remotestore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"tifs/internal/retry"
	"tifs/internal/shard"
)

// ManifestClient is the shard.ManifestBackend over HTTP: the lease
// manifest lives on the server, and each Update runs as an optimistic
// compare-and-swap — read the image and its ETag, apply the mutation,
// PUT it back with If-Match, and on a 412 (a peer won the race) re-read
// and replay. The server's single-writer mutex makes the precondition
// check atomic, so every lease transition still has exactly one winner,
// now across machines with no shared filesystem.
//
// Unlike the blob path, manifest operations do NOT degrade: coordination
// against an unreachable server fails loudly after the retry budget.
// That is the correct failure mode — lease semantics already tolerate an
// outage shorter than the TTL (renewals fail transiently, the lease
// holds), and an outage longer than the TTL must surface as a lost
// lease, not be papered over.
type ManifestClient struct {
	base string
	http *http.Client

	// Timeout bounds each network attempt; Retry rides over transient
	// faults within one CAS round; CASAttempts bounds how many 412
	// rounds a contended Update replays before giving up.
	Timeout     time.Duration
	Retry       retry.Policy
	CASAttempts int
}

// NewManifestClient connects lease coordination to a tifsserve base
// URL. Pass the same httpClient as the blob Client to share fault
// injection and connection pools.
func NewManifestClient(base string, httpClient *http.Client) *ManifestClient {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &ManifestClient{
		base:        base,
		http:        httpClient,
		Timeout:     DefaultTimeout,
		Retry:       retry.Policy{Classify: retry.TransientNetwork},
		CASAttempts: defaultCASAttempts,
	}
}

var _ shard.ManifestBackend = (*ManifestClient)(nil)

// read fetches the current manifest image and its ETag; a 404 returns
// (nil, "", nil): first use.
func (m *ManifestClient) read(ctx context.Context) (data []byte, etag string, err error) {
	err = m.Retry.DoContext(ctx, func() error {
		ctx, cancel := context.WithTimeout(ctx, m.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+"/v1/manifest", nil)
		if err != nil {
			return err
		}
		resp, err := m.http.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp)
		if err := checkFormat(resp); err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxManifestBytes+1))
			if err != nil {
				return err
			}
			data, etag = body, resp.Header.Get("ETag")
			return nil
		case http.StatusNotFound:
			data, etag = nil, ""
			return nil
		default:
			return &statusError{resp.StatusCode, "get manifest"}
		}
	})
	return data, etag, err
}

// errCASConflict marks a lost write race; transient within Update's CAS
// loop (the loop re-reads and replays), never surfaced to callers.
type errCASConflict struct{}

func (errCASConflict) Error() string { return "remotestore: manifest changed since read" }

// write puts the replacement image guarded by the precondition. etag ""
// means a creating write (If-None-Match: *).
func (m *ManifestClient) write(ctx context.Context, out []byte, etag string) error {
	return m.Retry.DoContext(ctx, func() error {
		ctx, cancel := context.WithTimeout(ctx, m.timeout())
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, m.base+"/v1/manifest", bytes.NewReader(out))
		if err != nil {
			return err
		}
		if etag == "" {
			req.Header.Set("If-None-Match", "*")
		} else {
			req.Header.Set("If-Match", etag)
		}
		req.Header.Set("Content-Type", "text/plain; charset=utf-8")
		resp, err := m.http.Do(req)
		if err != nil {
			return err
		}
		defer drain(resp)
		if err := checkFormat(resp); err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusNoContent:
			return nil
		case http.StatusPreconditionFailed:
			return errCASConflict{}
		default:
			return &statusError{resp.StatusCode, "put manifest"}
		}
	})
}

// Update implements shard.ManifestBackend: read, apply, CAS-write,
// replaying the whole cycle when a peer wins the write race. fn must be
// a pure function of its input — exactly what the shard layer's
// manifest mutations are — because a replay hands it a newer image.
func (m *ManifestClient) Update(fn func(cur []byte) ([]byte, error)) error {
	ctx := context.Background()
	attempts := m.CASAttempts
	if attempts <= 0 {
		attempts = defaultCASAttempts
	}
	for attempt := 0; attempt < attempts; attempt++ {
		cur, etag, err := m.read(ctx)
		if err != nil {
			return fmt.Errorf("shard: remote manifest read: %w", err)
		}
		out, err := fn(cur)
		if err != nil {
			if errors.Is(err, shard.ErrManifestUnchanged) {
				return nil
			}
			return err
		}
		err = m.write(ctx, out, etag)
		if err == nil {
			return nil
		}
		var conflict errCASConflict
		if !errors.As(err, &conflict) {
			return fmt.Errorf("shard: remote manifest write: %w", err)
		}
		// Lost the race: back off (deterministic jitter decorrelates the
		// contenders) and replay against the winner's image.
		if m.Retry.Sleep != nil {
			m.Retry.Sleep(m.Retry.Backoff(attempt))
		} else {
			time.Sleep(m.Retry.Backoff(attempt))
		}
	}
	return fmt.Errorf("shard: remote manifest CAS lost %d straight races — pathological contention", attempts)
}

func (m *ManifestClient) timeout() time.Duration {
	if m.Timeout <= 0 {
		return DefaultTimeout
	}
	return m.Timeout
}
