package remotestore

import (
	"bytes"
	"context"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tifs/internal/engine"
	"tifs/internal/netfault"
	"tifs/internal/shard"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// newRig starts a tifsserve-equivalent over a fresh store directory and
// returns a client whose transport is wrapped by the given fault
// injector (nil for a clean network). Retries run instantly.
func newRig(t *testing.T, f *netfault.Fault) (*httptest.Server, *Client) {
	t.Helper()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewServer(st, dir).Handler())
	t.Cleanup(srv.Close)
	c := testClient(srv.URL, f)
	return srv, c
}

func testClient(base string, f *netfault.Fault) *Client {
	hc := http.DefaultClient
	if f != nil {
		hc = &http.Client{Transport: f}
	}
	c := NewClient(base, hc)
	c.Retry.Sleep = func(time.Duration) {}
	c.HedgeDelay = -1 // tests opt in explicitly
	c.Timeout = 10 * time.Second
	return c
}

func testResult() sim.Result {
	return sim.Result{
		Workload:  "OLTP-DB2",
		Mechanism: "tifs",
		Cycles:    123_456,
	}
}

func TestBlobRoundTrip(t *testing.T) {
	_, c := newRig(t, nil)
	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}

	want := testResult()
	if _, ok := c.GetResult("k1"); ok {
		t.Fatal("hit before any put")
	}
	if c.HasResult("k1") {
		t.Fatal("has before any put")
	}
	c.PutResult("k1", want)
	got, ok := c.GetResult("k1")
	if !ok || got.Workload != want.Workload || got.Cycles != want.Cycles {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	if !c.HasResult("k1") {
		t.Fatal("HasResult false after put")
	}

	recs := [][]trace.MissRecord{{{Seq: 1}}, {{Seq: 2}, {Seq: 3, Branches: 4}}}
	c.PutMissTraces("t1", recs)
	gotRecs, ok := c.GetMissTraces("t1")
	if !ok || len(gotRecs) != 2 || len(gotRecs[1]) != 2 {
		t.Fatalf("miss traces round trip: ok=%v got=%v", ok, gotRecs)
	}
	if !c.HasMissTraces("t1") || c.HasMissTraces("t2") {
		t.Fatal("HasMissTraces wrong")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestResultAndTraceKeysDoNotCollide: the kind byte keeps the two
// namespaces apart even for an identical key string.
func TestResultAndTraceKeysDoNotCollide(t *testing.T) {
	_, c := newRig(t, nil)
	c.PutResult("same-key", testResult())
	if c.HasMissTraces("same-key") {
		t.Fatal("a result put satisfied a miss-trace lookup")
	}
	if _, ok := c.GetMissTraces("same-key"); ok {
		t.Fatal("cross-kind get hit")
	}
}

// TestTransientFaultsHeal: one dropped connection, one injected 503,
// and one torn response body each heal under retry with no caller-
// visible failure.
func TestTransientFaultsHeal(t *testing.T) {
	f := netfault.New(nil,
		netfault.Rule{Mode: netfault.ModeDrop, Method: "PUT", Nth: 1},
		netfault.Rule{Mode: netfault.ModeStatus, Status: 503, Method: "GET", Path: "/v1/blob", Nth: 1},
		netfault.Rule{Mode: netfault.ModeTornBody, Method: "GET", Path: "/v1/blob", Nth: 2},
	)
	_, c := newRig(t, f)
	want := testResult()
	c.PutResult("k", want) // PUT #1 dropped, retry lands it
	got, ok := c.GetResult("k")
	if !ok || got.Cycles != want.Cycles {
		t.Fatalf("get through faults: ok=%v got=%+v", ok, got)
	}
	s := c.Stats()
	if s.Retries == 0 {
		t.Error("faults healed without any retry being counted")
	}
	if c.QueueDepth() != 0 {
		t.Errorf("transient faults left %d queued write-backs", c.QueueDepth())
	}
}

// TestBreakerDegradesAndRecovers: a dead server opens the breaker after
// BreakAfter failed ops; while open, gets miss instantly and puts queue;
// recovery closes the breaker on the probe and Flush reconciles the
// queued write-backs onto the server.
func TestBreakerDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	handler := NewServer(st, dir).Handler()
	down := true
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		dead := down
		mu.Unlock()
		if dead {
			// The shape of a crashed process behind a live listener.
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := testClient(srv.URL, nil)
	c.Retry.Attempts = 1 // each op = one failure, for deterministic counting
	c.BreakAfter = 3
	c.Cooldown = time.Millisecond

	// Three failing ops open the breaker.
	for i := 0; i < 3; i++ {
		if _, ok := c.GetResult("k"); ok {
			t.Fatal("hit from a dead server")
		}
	}
	if s := c.Stats(); s.BreakerOpens != 1 {
		t.Fatalf("breaker opens = %d after %d failures, want 1", s.BreakerOpens, 3)
	}

	// Degraded: puts queue rather than touching the network, gets miss.
	c.PutResult("q1", testResult())
	c.PutResult("q2", testResult())
	c.PutResult("q1", testResult()) // dup: dedup'd by address
	if d := c.QueueDepth(); d != 2 {
		t.Fatalf("queue depth %d, want 2 (dedup'd)", d)
	}
	if _, ok := c.GetResult("q1"); ok {
		t.Fatal("degraded get returned a hit")
	}

	// Server recovers; after the cooldown the probe closes the breaker.
	mu.Lock()
	down = false
	mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := c.GetResult("q1"); ok || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
		c.Flush(context.Background())
	}
	got, ok := c.GetResult("q1")
	if !ok || got.Cycles != testResult().Cycles {
		t.Fatalf("queued write-back not reconciled: ok=%v", ok)
	}
	if _, ok := c.GetResult("q2"); !ok {
		t.Fatal("second queued write-back not reconciled")
	}
	// And the payloads really live on the server's store, not a client
	// cache: a fresh client sees them.
	c2 := testClient(srv.URL, nil)
	if _, ok := c2.GetResult("q1"); !ok {
		t.Fatal("write-back invisible to a fresh client")
	}
}

// TestHedgedReadBeatsStraggler: a read stalled by injected latency is
// overtaken by its hedge; the caller sees the fast path.
func TestHedgedReadBeatsStraggler(t *testing.T) {
	f := netfault.New(nil,
		netfault.Rule{Mode: netfault.ModeLatency, Latency: 2 * time.Second, Method: "GET", Path: "/v1/blob", Nth: 1})
	_, c := newRig(t, f)
	c.HedgeDelay = 10 * time.Millisecond
	c.PutResult("k", testResult())

	start := time.Now()
	_, ok := c.GetResult("k")
	elapsed := time.Since(start)
	if !ok {
		t.Fatal("hedged read missed")
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("read took %v — the hedge never overtook the straggler", elapsed)
	}
	if s := c.Stats(); s.Hedges == 0 {
		t.Error("no hedge was counted")
	}
}

// TestFormatMismatchIsPermanentMiss: a server speaking a different
// store format degrades to misses without retry churn.
func TestFormatMismatchIsPermanentMiss(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(headerFormat, "999")
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := testClient(srv.URL, nil)
	if err := c.Ping(context.Background()); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("ping against mismatched format: %v", err)
	}
	if _, ok := c.GetResult("k"); ok {
		t.Fatal("mismatched format returned a hit")
	}
	if s := c.Stats(); s.Retries != 0 {
		t.Errorf("permanent format mismatch burned %d retries", s.Retries)
	}
}

// TestServerRejectsMalformedAddressesAndBlindManifestWrites pins the
// permanent (4xx, non-retried) protocol errors.
func TestServerRejectsMalformedAddresses(t *testing.T) {
	srv, _ := newRig(t, nil)
	for _, path := range []string{"/v1/blob/zz", "/v1/blob/abcd"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
	// A manifest PUT with no precondition is refused.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/manifest", strings.NewReader("x"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unconditional manifest PUT = %d, want 400", resp.StatusCode)
	}
}

// TestManifestCASSingleWinner: racing lease claims through two separate
// ManifestClients produce exactly one winner per shard — the ETag CAS
// is doing the flock's job.
func TestManifestCASSingleWinner(t *testing.T) {
	srv, _ := newRig(t, nil)
	g := testGridForLease(t)

	mk := func() *shard.Coordinator {
		mc := NewManifestClient(srv.URL, nil)
		mc.Retry.Sleep = func(time.Duration) {}
		c := shard.NewCoordinatorBackend(mc, g, 1)
		c.TTL = time.Hour
		return c
	}

	const racers = 8
	winners := make(chan string, racers)
	var wg sync.WaitGroup
	for w := 0; w < racers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := string(rune('A' + w))
			if _, ok, err := mk().ClaimAny(owner); err == nil && ok {
				winners <- owner
			}
		}(w)
	}
	wg.Wait()
	close(winners)
	var won []string
	for w := range winners {
		won = append(won, w)
	}
	if len(won) != 1 {
		t.Fatalf("remote claim race had %d winners (%v), want exactly 1", len(won), won)
	}

	// The winner renews and completes; a full lifecycle works remotely.
	c := mk()
	if err := c.Renew(0, won[0]); err != nil {
		t.Fatalf("remote renew: %v", err)
	}
	if err := c.Complete(0); err != nil {
		t.Fatalf("remote complete: %v", err)
	}
	m, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards[0].State != shard.StateDone {
		t.Fatalf("shard state after remote lifecycle: %+v", m.Shards[0])
	}
}

// TestManifestUpdateRidesOutFaults: transient network faults inside the
// read and write halves of the CAS cycle heal under retry.
func TestManifestUpdateRidesOutFaults(t *testing.T) {
	f := netfault.New(nil,
		netfault.Rule{Mode: netfault.ModeDrop, Method: "GET", Path: "/v1/manifest", Nth: 1},
		netfault.Rule{Mode: netfault.ModeStatus, Status: 503, Method: "PUT", Path: "/v1/manifest", Nth: 1},
	)
	srv, _ := newRig(t, nil)
	mc := NewManifestClient(srv.URL, &http.Client{Transport: f})
	mc.Retry.Sleep = func(time.Duration) {}
	c := shard.NewCoordinatorBackend(mc, testGridForLease(t), 2)
	c.TTL = time.Hour
	if err := c.Claim(0, "alice"); err != nil {
		t.Fatalf("claim through manifest faults: %v", err)
	}
	m, err := c.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if l := m.Shards[0]; l.State != shard.StateClaimed || l.Owner != "alice" {
		t.Fatalf("shard 0 after faulted claim: %+v", l)
	}
}

// TestPutBlobAddressVerification: the server refuses uploads whose
// (kind, key) identity does not hash to the claimed address, carries no
// identity at all, or whose payload is not a valid encoding of its
// kind — all permanent 400s, so a buggy client cannot poison the
// content-addressed store for every other worker.
func TestPutBlobAddressVerification(t *testing.T) {
	srv, c := newRig(t, nil)
	payload := store.EncodeResult(testResult())
	addr := store.Address(store.KindResult, "good-key")
	addrHex := hex.EncodeToString(addr[:])
	put := func(path string, body []byte) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	kind := strconv.Itoa(int(store.KindResult))
	if got := put("/v1/blob/"+addrHex, payload); got != http.StatusBadRequest {
		t.Errorf("PUT without identity = %d, want 400", got)
	}
	if got := put("/v1/blob/"+addrHex+"?kind="+kind+"&key=wrong-key", payload); got != http.StatusBadRequest {
		t.Errorf("PUT with mismatched key = %d, want 400", got)
	}
	wrongKind := strconv.Itoa(int(store.KindMissTraces))
	if got := put("/v1/blob/"+addrHex+"?kind="+wrongKind+"&key=good-key", payload); got != http.StatusBadRequest {
		t.Errorf("PUT with mismatched kind = %d, want 400", got)
	}
	if got := put("/v1/blob/"+addrHex+"?kind="+kind+"&key=good-key", []byte("not a result")); got != http.StatusBadRequest {
		t.Errorf("PUT with undecodable payload = %d, want 400", got)
	}
	// None of the rejected uploads may have landed.
	if _, ok := c.GetResult("good-key"); ok {
		t.Fatal("a rejected upload poisoned the store")
	}
	// The verified path still works end to end (the client sends the
	// identity on every upload).
	if got := put("/v1/blob/"+addrHex+"?kind="+kind+"&key=good-key", payload); got != http.StatusNoContent {
		t.Errorf("verified PUT = %d, want 204", got)
	}
	if _, ok := c.GetResult("good-key"); !ok {
		t.Fatal("verified upload not readable")
	}
	// And the 400 is permanent for the client: no retry churn.
	before := c.Stats().Retries
	c.PutResult("ok", testResult())
	if after := c.Stats().Retries; after != before {
		t.Errorf("client PUT burned %d retries against a healthy server", after-before)
	}
}

// TestFlushFailureCountsQueuedOnce: a mid-flush failure re-queues the
// undelivered payloads without re-counting them as queued, so
// QueuedWrites == FlushedWrites + QueueDepth holds after any number of
// failed flushes.
func TestFlushFailureCountsQueuedOnce(t *testing.T) {
	// PUT #1 lands, every later PUT drops: the flush delivers exactly
	// one payload and fails on the second.
	f := netfault.New(nil,
		netfault.Rule{Mode: netfault.ModeDrop, Method: "PUT", Path: "/v1/blob", Nth: 2, Times: -1})
	_, c := newRig(t, f)
	c.Retry.Attempts = 1

	for _, key := range []string{"a", "b", "c"} {
		c.enqueue(queued{
			addr: store.Address(store.KindResult, key), kind: store.KindResult,
			key: key, payload: store.EncodeResult(testResult()),
		})
	}
	if s := c.Stats(); s.QueuedWrites != 3 {
		t.Fatalf("QueuedWrites = %d after 3 enqueues, want 3", s.QueuedWrites)
	}
	c.Flush(context.Background())
	s := c.Stats()
	if s.FlushedWrites != 1 {
		t.Errorf("FlushedWrites = %d, want 1 (only the first PUT landed)", s.FlushedWrites)
	}
	if d := c.QueueDepth(); d != 2 {
		t.Errorf("QueueDepth = %d after failed flush, want 2", d)
	}
	if s.QueuedWrites != s.FlushedWrites+uint64(c.QueueDepth()) {
		t.Errorf("counter drift: QueuedWrites=%d != FlushedWrites=%d + QueueDepth=%d",
			s.QueuedWrites, s.FlushedWrites, c.QueueDepth())
	}
	// A second failed flush must not drift the counters either.
	c.Flush(context.Background())
	s = c.Stats()
	if s.QueuedWrites != s.FlushedWrites+uint64(c.QueueDepth()) {
		t.Errorf("counter drift after second flush: QueuedWrites=%d != FlushedWrites=%d + QueueDepth=%d",
			s.QueuedWrites, s.FlushedWrites, c.QueueDepth())
	}
}

// TestCancelMidBackoffReturnsPromptly: cancelling the client's base
// context interrupts an in-flight retry/backoff schedule against a dead
// server instead of stalling shutdown for the full retry budget.
func TestCancelMidBackoffReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Nothing listens on this address: every attempt fails fast with
	// ECONNREFUSED and the schedule spends its time in backoff sleeps.
	c := NewClientContext(ctx, "http://127.0.0.1:1", nil)
	c.Timeout = time.Second
	c.HedgeDelay = -1
	c.Retry.Attempts = 10
	c.Retry.Base = 500 * time.Millisecond
	c.Retry.Max = 2 * time.Second

	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		if _, ok := c.GetResult("k"); ok {
			t.Error("hit from a dead server")
		}
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("GetResult still blocked 2s after cancel — backoff schedule not interrupted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled get took %v", elapsed)
	}
	// Close after cancellation must not stall on undeliverable
	// write-backs either.
	closeStart := time.Now()
	c.Close()
	if elapsed := time.Since(closeStart); elapsed > 2*time.Second {
		t.Fatalf("Close after cancel took %v", elapsed)
	}
}

// TestManifestHead: HEAD /v1/manifest answers with the same ETag and
// Content-Length as GET, and no body — the cheap existence probe for
// sweep tooling.
func TestManifestHead(t *testing.T) {
	srv, _ := newRig(t, nil)

	resp, err := http.Head(srv.URL + "/v1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HEAD before create = %d, want 404", resp.StatusCode)
	}

	body := "owner 0 claimed"
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/manifest", strings.NewReader(body))
	req.Header.Set("If-None-Match", "*")
	put, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	put.Body.Close()
	if put.StatusCode != http.StatusNoContent {
		t.Fatalf("creating PUT = %d, want 204", put.StatusCode)
	}

	head, err := http.Head(srv.URL + "/v1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	headBody, _ := io.ReadAll(head.Body)
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Fatalf("HEAD after create = %d, want 200", head.StatusCode)
	}
	if len(headBody) != 0 {
		t.Errorf("HEAD returned %d body bytes, want none", len(headBody))
	}
	if cl := head.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
		t.Errorf("HEAD Content-Length = %q, want %d", cl, len(body))
	}
	get, err := http.Get(srv.URL + "/v1/manifest")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if he, ge := head.Header.Get("ETag"), get.Header.Get("ETag"); he == "" || he != ge {
		t.Errorf("HEAD ETag %q != GET ETag %q", he, ge)
	}
}

// TestCloseWaitsForRecoveryFlush: the breaker's close transition
// launches an async Flush; a racing Close must wait for it rather than
// observe the queue mid-flush and report "0 undelivered" while the
// failed flush is still re-enqueueing its payloads.
func TestCloseWaitsForRecoveryFlush(t *testing.T) {
	// GETs are clean, every PUT drops: the breaker recovers on a read
	// probe but the recovery flush can never deliver.
	f := netfault.New(nil,
		netfault.Rule{Mode: netfault.ModeDrop, Method: "PUT", Path: "/v1/blob", Nth: 1, Times: -1})
	_, c := newRig(t, f)
	c.Retry.Attempts = 1
	c.BreakAfter = 1
	c.Cooldown = time.Millisecond

	c.PutResult("a", testResult()) // PUT fails: breaker opens, payload queues
	c.PutResult("b", testResult()) // degraded: queues
	c.PutResult("c", testResult())
	if d := c.QueueDepth(); d != 3 {
		t.Fatalf("queue depth %d before recovery, want 3", d)
	}
	time.Sleep(2 * time.Millisecond)
	// The probe GET succeeds (404 is a clean answer), closing the
	// breaker and launching the async recovery flush — whose PUTs all
	// fail and re-enqueue.
	if _, ok := c.GetResult("a"); ok {
		t.Fatal("unexpected hit")
	}
	err := c.Close()
	if err == nil {
		t.Fatal("Close reported success while write-backs were undeliverable")
	}
	if !strings.Contains(err.Error(), "3 write-backs") {
		t.Errorf("Close error %q does not account for all 3 write-backs", err)
	}
	if d := c.QueueDepth(); d != 3 {
		t.Errorf("queue depth %d after Close, want 3 (nothing delivered, nothing lost)", d)
	}
	s := c.Stats()
	if s.QueuedWrites != s.FlushedWrites+uint64(c.QueueDepth()) {
		t.Errorf("counter drift: QueuedWrites=%d != FlushedWrites=%d + QueueDepth=%d",
			s.QueuedWrites, s.FlushedWrites, c.QueueDepth())
	}
}

// testGridForLease builds a tiny real grid for coordinator tests.
func testGridForLease(t *testing.T) shard.Grid {
	t.Helper()
	spec, ok := workload.ByName("OLTP-DB2")
	if !ok {
		t.Fatal("workload OLTP-DB2 missing")
	}
	var g shard.Grid
	for _, events := range []uint64{1_000, 2_000} {
		g.Jobs = append(g.Jobs, engine.Job{
			Spec:  spec,
			Scale: workload.ScaleSmall,
			Config: sim.Config{
				EventsPerCore: events,
				Mechanism:     sim.Baseline(),
			},
		})
	}
	return g
}
