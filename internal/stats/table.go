package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table renders column-aligned plain-text tables; every experiment uses it
// to print rows in the same arrangement as the corresponding paper figure
// or table.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept and padded.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row built from alternating format/value pairs applied
// with fmt.Sprintf on each cell spec. Each argument is rendered with %v.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		if s, ok := c.(string); ok {
			row[i] = s
		} else {
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		var line strings.Builder
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				line.WriteString("  ")
			}
			line.WriteString(cell)
			line.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteString(strings.TrimRight(line.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	fmt.Fprint(w, b.String())
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
