package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Total() != 0 {
		t.Fatal("empty histogram total != 0")
	}
	h.Add(3)
	h.AddN(5, 4)
	h.AddN(7, 0) // no-op
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Count(5) != 4 || h.Count(3) != 1 || h.Count(9) != 0 {
		t.Error("counts wrong")
	}
	vals := h.Values()
	if len(vals) != 2 || vals[0] != 3 || vals[1] != 5 {
		t.Errorf("Values = %v", vals)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.AddN(2, 2)
	h.AddN(8, 2)
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean = %f, want 5", got)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram()
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Percentile(0.5); got != 50 {
		t.Errorf("P50 = %d, want 50", got)
	}
	if got := h.Percentile(0.99); got != 99 {
		t.Errorf("P99 = %d, want 99", got)
	}
	if got := h.Percentile(1.0); got != 100 {
		t.Errorf("P100 = %d, want 100", got)
	}
	if got := h.Percentile(0.0); got != 1 {
		t.Errorf("P0 = %d, want 1", got)
	}
	if got := h.Percentile(-1); got != 1 {
		t.Errorf("P(-1) = %d, want clamp to 1", got)
	}
	if got := h.Percentile(2); got != 100 {
		t.Errorf("P(2) = %d, want clamp to 100", got)
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	if got := NewHistogram().Percentile(0.5); got != 0 {
		t.Errorf("empty percentile = %d, want 0", got)
	}
}

func TestHistogramCDFMonotonic(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Add(int(v))
		}
		cdf := h.CDF()
		prevX := -1
		prevP := 0.0
		for _, pt := range cdf {
			if pt.X <= prevX || pt.P < prevP || pt.P > 1.0000001 {
				return false
			}
			prevX, prevP = pt.X, pt.P
		}
		if len(vals) > 0 {
			last := cdf[len(cdf)-1]
			if math.Abs(last.P-1.0) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramCDFAt(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 1)
	h.AddN(10, 3)
	if got := h.CDFAt(1); got != 0.25 {
		t.Errorf("CDFAt(1) = %f, want 0.25", got)
	}
	if got := h.CDFAt(10); got != 1.0 {
		t.Errorf("CDFAt(10) = %f, want 1", got)
	}
	if got := h.CDFAt(0); got != 0 {
		t.Errorf("CDFAt(0) = %f, want 0", got)
	}
}

func TestWeightedMedian(t *testing.T) {
	h := NewHistogram()
	// 10 streams of length 2 (mass 20), 1 stream of length 100 (mass 100).
	// Half of the 120 mass is reached inside the length-100 stream.
	h.AddN(2, 10)
	h.AddN(100, 1)
	if got := h.WeightedMedian(); got != 100 {
		t.Errorf("WeightedMedian = %d, want 100", got)
	}
	// Unweighted median of the same data is 2.
	if got := h.Percentile(0.5); got != 2 {
		t.Errorf("Percentile(0.5) = %d, want 2", got)
	}
}

func TestWeightedCDF(t *testing.T) {
	h := NewHistogram()
	h.AddN(1, 50)
	h.AddN(50, 1)
	cdf := h.WeightedCDF()
	if len(cdf) != 2 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].X != 1 || math.Abs(cdf[0].P-0.5) > 1e-12 {
		t.Errorf("first point = %+v, want X=1 P=0.5", cdf[0])
	}
	if cdf[1].X != 50 || math.Abs(cdf[1].P-1.0) > 1e-12 {
		t.Errorf("second point = %+v", cdf[1])
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %f", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %f, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty Mean/StdDev should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %f, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %f", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean with non-positive value should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	fit := FitLinear(x, y)
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %f, want 1", fit.R2)
	}
	if got := fit.At(10); math.Abs(got-21) > 1e-12 {
		t.Errorf("At(10) = %f", got)
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	fit := FitLinear([]float64{5, 5, 5}, []float64{1, 2, 3})
	if fit.Slope != 0 || fit.Intercept != 2 {
		t.Errorf("vertical data fit = %+v", fit)
	}
	fit = FitLinear([]float64{1}, []float64{1})
	if fit != (LinearFit{}) {
		t.Errorf("single point fit = %+v", fit)
	}
	fit = FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if fit.Slope != 0 || fit.Intercept != 4 || fit.R2 != 1 {
		t.Errorf("horizontal data fit = %+v", fit)
	}
}

func TestFitLinearPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	FitLinear([]float64{1}, []float64{1, 2})
}

func TestFitLinearNoisy(t *testing.T) {
	// y = 0.003x + 1 with alternating noise; slope recovered approximately.
	var x, y []float64
	for i := 0; i <= 100; i += 10 {
		x = append(x, float64(i))
		noise := 0.01
		if (i/10)%2 == 0 {
			noise = -0.01
		}
		y = append(y, 0.003*float64(i)+1+noise)
	}
	fit := FitLinear(x, y)
	if math.Abs(fit.Slope-0.003) > 0.001 {
		t.Errorf("Slope = %f, want ~0.003", fit.Slope)
	}
}

func TestCategories(t *testing.T) {
	c := NewCategories("Opportunity", "Head", "New", "Non-repetitive")
	c.Add("Opportunity", 94)
	c.Add("Head", 2)
	c.Add("New", 3)
	c.Add("Non-repetitive", 1)
	if got := c.Total(); got != 100 {
		t.Errorf("Total = %d", got)
	}
	if got := c.Fraction("Opportunity"); got != 0.94 {
		t.Errorf("Fraction = %f", got)
	}
	names := c.Names()
	want := []string{"Opportunity", "Head", "New", "Non-repetitive"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestCategoriesLateDeclaration(t *testing.T) {
	c := NewCategories("a")
	c.Add("b", 1)
	names := c.Names()
	if len(names) != 2 || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
}

func TestCategoriesFractionOf(t *testing.T) {
	c := NewCategories("Coverage", "Discard")
	c.Add("Coverage", 60)
	c.Add("Discard", 15)
	if got := c.FractionOf("Coverage", 100); got != 0.6 {
		t.Errorf("FractionOf = %f", got)
	}
	if got := c.FractionOf("Coverage", 0); got != 0 {
		t.Errorf("FractionOf denom 0 = %f", got)
	}
}

func TestCategoriesEmptyFraction(t *testing.T) {
	c := NewCategories("x")
	if got := c.Fraction("x"); got != 0 {
		t.Errorf("empty Fraction = %f", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.938); got != "93.8%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestPercentileAgainstSort(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%101) / 100
		h := NewHistogram()
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
			h.Add(int(v))
		}
		sort.Ints(vals)
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		return h.Percentile(p) == vals[idx]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
