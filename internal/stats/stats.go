// Package stats provides the small statistical toolkit the experiments
// need: integer histograms with CDF extraction, percentiles, linear
// regression (for the Fig. 1 trend lines), category accounting (for the
// Fig. 3 and Fig. 12 stacked bars), and plain-text table rendering used by
// every experiment to print paper-style rows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of non-negative integer values. It is used
// for stream lengths (Fig. 5) and branch-lookahead counts (Fig. 10), whose
// domains are small integers with long tails.
type Histogram struct {
	counts map[int]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add records value once.
func (h *Histogram) Add(value int) { h.AddN(value, 1) }

// AddN records value n times.
func (h *Histogram) AddN(value int, n uint64) {
	if n == 0 {
		return
	}
	h.counts[value] += n
	h.total += n
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns the number of observations equal to value.
func (h *Histogram) Count(value int) uint64 { return h.counts[value] }

// Values returns the distinct observed values in ascending order.
func (h *Histogram) Values() []int {
	vs := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Mean returns the arithmetic mean of the observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Percentile returns the smallest observed value v such that at least
// p (0..1) of the observations are <= v. Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(math.Ceil(p * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for _, v := range h.Values() {
		cum += h.counts[v]
		if cum >= target {
			return v
		}
	}
	vs := h.Values()
	return vs[len(vs)-1]
}

// CDFPoint is one point of a cumulative distribution: fraction P of
// observations have value <= X.
type CDFPoint struct {
	X int
	P float64
}

// CDF returns the full cumulative distribution in ascending X order.
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	values := h.Values()
	out := make([]CDFPoint, 0, len(values))
	var cum uint64
	for _, v := range values {
		cum += h.counts[v]
		out = append(out, CDFPoint{X: v, P: float64(cum) / float64(h.total)})
	}
	return out
}

// CDFAt returns the fraction of observations with value <= x.
func (h *Histogram) CDFAt(x int) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64
	for v, c := range h.counts {
		if v <= x {
			cum += c
		}
	}
	return float64(cum) / float64(h.total)
}

// WeightedMedian returns the value at which the *value-weighted* cumulative
// mass crosses one half. The paper's Fig. 5 plots "% Opportunity" against
// stream length — each stream of length L contributes L misses of
// opportunity — so medians quoted there (e.g. OLTP-Oracle median 80) are
// weighted by stream length, not by stream count.
func (h *Histogram) WeightedMedian() int {
	if h.total == 0 {
		return 0
	}
	var totalMass float64
	for v, c := range h.counts {
		totalMass += float64(v) * float64(c)
	}
	var cum float64
	for _, v := range h.Values() {
		cum += float64(v) * float64(h.counts[v])
		if cum >= totalMass/2 {
			return v
		}
	}
	vs := h.Values()
	return vs[len(vs)-1]
}

// WeightedCDF returns the cumulative distribution weighted by value mass
// (see WeightedMedian); used to reproduce Fig. 5's y-axis.
func (h *Histogram) WeightedCDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var totalMass float64
	for v, c := range h.counts {
		totalMass += float64(v) * float64(c)
	}
	if totalMass == 0 {
		return nil
	}
	values := h.Values()
	out := make([]CDFPoint, 0, len(values))
	var cum float64
	for _, v := range values {
		cum += float64(v) * float64(h.counts[v])
		out = append(out, CDFPoint{X: v, P: cum / totalMass})
	}
	return out
}

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
// Speedup aggregation across workloads conventionally uses the geometric
// mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// LinearFit is the least-squares line y = Slope*x + Intercept with
// coefficient of determination R2. Fig. 1 plots linear regressions of
// speedup against prefetch coverage.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLinear computes the least-squares fit of y on x. It panics if the
// slices differ in length and returns a zero fit for fewer than two points.
func FitLinear(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLinear length mismatch")
	}
	if len(x) < 2 {
		return LinearFit{}
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{Intercept: my}
	}
	slope := sxy / sxx
	fit := LinearFit{Slope: slope, Intercept: my - slope*mx}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1
	}
	return fit
}

// At evaluates the fitted line at x.
func (f LinearFit) At(x float64) float64 { return f.Slope*x + f.Intercept }

// Categories accumulates named counts and reports fractions in a fixed
// declaration order; it backs the stacked-bar figures (Fig. 3's
// Opportunity/Head/New/Non-repetitive and Fig. 12's Coverage/Miss/Discard).
type Categories struct {
	order  []string
	counts map[string]uint64
}

// NewCategories declares the category names in presentation order.
func NewCategories(names ...string) *Categories {
	c := &Categories{counts: make(map[string]uint64, len(names))}
	c.order = append(c.order, names...)
	for _, n := range names {
		c.counts[n] = 0
	}
	return c
}

// Add increments the named category by n, declaring it (appended to the
// order) if it was not pre-declared.
func (c *Categories) Add(name string, n uint64) {
	if _, ok := c.counts[name]; !ok {
		c.order = append(c.order, name)
	}
	c.counts[name] += n
}

// Count returns the accumulated count for name.
func (c *Categories) Count(name string) uint64 { return c.counts[name] }

// Total returns the sum over all categories.
func (c *Categories) Total() uint64 {
	var t uint64
	for _, v := range c.counts {
		t += v
	}
	return t
}

// Names returns the category names in declaration order.
func (c *Categories) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Fraction returns the share of the total held by name (0 if total is 0).
func (c *Categories) Fraction(name string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.counts[name]) / float64(t)
}

// FractionOf returns count(name)/denom, the form used when bars are
// normalized to an external baseline (Fig. 12 normalizes to L1 fetch
// misses, which is not the sum of its categories).
func (c *Categories) FractionOf(name string, denom uint64) float64 {
	if denom == 0 {
		return 0
	}
	return float64(c.counts[name]) / float64(denom)
}

// Pct formats a 0..1 fraction as a percentage string like "93.8%".
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
