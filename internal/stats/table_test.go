package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "Workload", "Speedup")
	tb.AddRow("OLTP DB2", "1.24")
	tb.AddRow("Web Apache", "1.18")
	out := tb.String()
	if !strings.Contains(out, "Fig. X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "Workload") || !strings.Contains(out, "Speedup") {
		t.Error("missing headers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, header, rule, 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "OLTP DB2") {
		t.Errorf("row 1 = %q", lines[3])
	}
	// Columns are aligned: "Speedup" column starts at the same offset in
	// header and data rows.
	hIdx := strings.Index(lines[1], "Speedup")
	rIdx := strings.Index(lines[3], "1.24")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTrailingWhitespace(t *testing.T) {
	tb := NewTable("", "a", "bbbb")
	tb.AddRow("x", "y")
	tb.AddRow("longer", "z")
	for _, line := range strings.Split(tb.String(), "\n") {
		if line != strings.TrimRight(line, " ") {
			t.Errorf("line has trailing spaces: %q", line)
		}
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("t", "name", "val", "frac")
	tb.AddRowf("w", 42, 0.5)
	out := tb.String()
	if !strings.Contains(out, "42") || !strings.Contains(out, "0.5") {
		t.Errorf("AddRowf output = %q", out)
	}
	if tb.NumRows() != 1 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("1", "2", "3") // more cells than headers: kept
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped: %q", out)
	}
}

func TestTableEmpty(t *testing.T) {
	tb := NewTable("only title")
	out := tb.String()
	if !strings.Contains(out, "only title") {
		t.Errorf("out = %q", out)
	}
}
