// Web-server scenario: Apache's request handling is dominated by
// re-convergent, data-dependent branch hammocks (the paper's
// core_output_filter() analysis, Section 3.2). Branch predictors cannot
// see through them, but the miss sequence at the re-convergence points
// recurs — so TIFS can. This example contrasts the per-prefetcher miss
// profiles on both web workloads.
package main

import (
	"fmt"
	"log"

	"tifs"
)

func main() {
	for _, name := range []string{"Web-Apache", "Web-Zeus"} {
		spec, err := tifs.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %s\n", spec.Name, spec.Description)
		fmt.Printf("    data-dependent hammock fraction: %.0f%%\n", 100*spec.Unpredictable)

		// Offline: how much of the miss stream recurs despite the
		// unpredictable control flow?
		w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
		misses := tifs.ExtractMisses(w, 0, 250_000)
		cat := tifs.Categorize(tifs.MissBlocks(misses))
		fmt.Printf("    misses: %d, repetitive: %.1f%%\n",
			len(misses), 100*cat.RepetitiveFrac())

		// The lookup heuristics show divergent streams (multiple handlers
		// sharing code paths) and how each policy copes.
		for _, h := range tifs.Heuristics(tifs.MissBlocks(misses)) {
			fmt.Printf("    lookup %-8s covers %5.1f%%\n", h.Policy, 100*h.Coverage())
		}

		// Timing: the per-mechanism miss profile.
		base := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: tifs.NextLineOnly()})
		fdip := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: tifs.FDIP()})
		tf := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: tifs.TIFS(tifs.TIFSVirtualized())})
		fmt.Printf("    remaining misses: baseline=%d fdip=%d tifs=%d\n",
			base.Misses(), fdip.Misses(), tf.Misses())
		fmt.Printf("    speedups: fdip=%.3f tifs=%.3f\n\n",
			fdip.SpeedupOver(base), tf.SpeedupOver(base))
	}
}
