// Heuristics: the offline SEQUITUR study end to end for one workload —
// miss categorization (Fig. 3), stream-length distribution (Fig. 5), and
// the stream-lookup policy comparison (Fig. 6) that justified TIFS's
// Recent index policy.
package main

import (
	"flag"
	"fmt"
	"log"

	"tifs"
)

func main() {
	name := flag.String("workload", "OLTP-Oracle", "workload to analyze")
	events := flag.Uint64("events", 300_000, "events to trace")
	flag.Parse()

	spec, err := tifs.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}

	w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
	misses := tifs.ExtractMisses(w, 0, *events)
	blocks := tifs.MissBlocks(misses)
	fmt.Printf("%s: %d L1-I misses after next-line filtering\n\n", spec.Name, len(misses))

	// Fig. 3 accounting.
	cat := tifs.Categorize(blocks)
	fmt.Println("miss categorization (Fig. 3):")
	for _, c := range []string{"Opportunity", "Head", "New", "Non-repetitive"} {
		fmt.Printf("  %-15s %6.1f%%\n", c, 100*cat.Counts.Fraction(c))
	}

	// Fig. 5 stream lengths (repeat occurrences).
	fmt.Printf("\nrecurring stream lengths (Fig. 5): median=%d weighted-median=%d max=%d\n",
		cat.StreamLengths.Percentile(0.5),
		cat.StreamLengths.WeightedMedian(),
		cat.StreamLengths.Percentile(1.0))

	// Fig. 6 lookup policies.
	fmt.Println("\nstream lookup heuristics (Fig. 6):")
	for _, h := range tifs.Heuristics(blocks) {
		fmt.Printf("  %-8s covers %6.1f%%\n", h.Policy, 100*h.Coverage())
	}
	fmt.Printf("  %-8s covers %6.1f%% (SEQUITUR bound)\n", "Opportunity", 100*cat.OpportunityFrac())
}
