// Quickstart: build a workload, measure its instruction-miss repetition,
// and compare TIFS against the next-line baseline — the paper's story in
// three calls.
package main

import (
	"fmt"
	"log"

	"tifs"
)

func main() {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		log.Fatal(err)
	}

	// 1. The opportunity: how repetitive are this workload's L1-I misses?
	w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
	misses := tifs.ExtractMisses(w, 0, 300_000)
	cat := tifs.Categorize(tifs.MissBlocks(misses))
	fmt.Printf("%s: %d misses, %.1f%% repeat a prior stream (%.1f%% eliminable)\n",
		spec.Name, len(misses), 100*cat.RepetitiveFrac(), 100*cat.OpportunityFrac())

	// 2. The mechanism: run the 4-core CMP with and without TIFS.
	base := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: tifs.NextLineOnly()})
	withTIFS := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{
		Mechanism: tifs.TIFS(tifs.TIFSDedicated()),
	})

	// 3. The result.
	fmt.Printf("baseline:  %d cycles (%.1f%% fetch stalls)\n",
		base.Cycles, 100*base.FetchStallShare())
	fmt.Printf("with TIFS: %d cycles (%.1f%% fetch stalls, %.1f%% miss coverage)\n",
		withTIFS.Cycles, 100*withTIFS.FetchStallShare(), 100*withTIFS.Coverage())
	fmt.Printf("speedup:   %.3fx\n", withTIFS.SpeedupOver(base))
}
