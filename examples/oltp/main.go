// OLTP scenario: the paper's headline case. Database transaction
// processing has multi-megabyte instruction working sets; this example
// walks both OLTP workloads through the full Fig. 13 comparison and shows
// why TIFS's miss-sequence replay beats branch-predictor-directed
// prefetching on transaction code.
package main

import (
	"fmt"
	"log"

	"tifs"
)

func main() {
	for _, name := range []string{"OLTP-DB2", "OLTP-Oracle"} {
		spec, err := tifs.WorkloadByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %s\n", spec.Name, spec.Description)

		base := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: tifs.NextLineOnly()})
		fmt.Printf("next-line baseline: %.1f%% of cycles lost to instruction fetch\n",
			100*base.FetchStallShare())

		for _, mech := range []tifs.Mechanism{
			tifs.FDIP(),
			tifs.TIFS(tifs.TIFSDedicated()),
			tifs.TIFS(tifs.TIFSVirtualized()),
			tifs.Perfect(),
		} {
			r := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{Mechanism: mech})
			fmt.Printf("  %-18s speedup %.3f  coverage %5.1f%%  stalls %4.1f%%\n",
				r.Mechanism, r.SpeedupOver(base), 100*r.Coverage(), 100*r.FetchStallShare())
		}

		// Why FDIP trails: count the branch predictions it would need for
		// a four-miss lookahead (the Fig. 10 argument).
		w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
		misses := tifs.ExtractMisses(w, 0, 200_000)
		over16 := 0
		window := 0
		for i := 1; i <= 4 && i < len(misses); i++ {
			window += misses[i].Branches
		}
		samples := 0
		for i := 0; i+4 < len(misses); i++ {
			if window > 16 {
				over16++
			}
			samples++
			window -= misses[i+1].Branches
			if i+5 < len(misses) {
				window += misses[i+5].Branches
			}
		}
		if samples > 0 {
			fmt.Printf("  (%.0f%% of misses need >16 correct branch predictions for a 4-miss lookahead)\n\n",
				100*float64(over16)/float64(samples))
		}
	}
}
