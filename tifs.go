// Package tifs is the public API of the Temporal Instruction Fetch
// Streaming reproduction (Ferdman et al., MICRO-41 2008).
//
// It exposes the pieces a downstream user composes:
//
//   - the six Table-I commercial server workload models
//     (Workloads, BuildWorkload);
//   - the L1-I miss-trace machinery and the paper's miss definition
//     (ExtractMisses);
//   - the offline SEQUITUR opportunity analyses of Figs. 3-6
//     (Categorize, Heuristics, StreamLengths);
//   - the cycle-accounted CMP simulator with pluggable prefetchers —
//     next-line baseline, FDIP, the TIFS variants, and bounds
//     (Simulate, mechanism constructors);
//   - every evaluation experiment as a named runner
//     (Experiments, RunExperiment).
//
// See examples/quickstart for a three-call tour, and DESIGN.md for the
// system inventory and the substitutions made for the paper's
// full-system trace infrastructure.
package tifs

import (
	"context"
	"fmt"
	"net/http"
	"os"

	"tifs/internal/analysis"
	"tifs/internal/core"
	"tifs/internal/engine"
	"tifs/internal/experiments"
	"tifs/internal/isa"
	"tifs/internal/netfault"
	"tifs/internal/remotestore"
	"tifs/internal/shard"
	"tifs/internal/sim"
	"tifs/internal/store"
	"tifs/internal/sweepd"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

// Re-exported workload types.
type (
	// WorkloadSpec describes one Table-I workload model.
	WorkloadSpec = workload.Spec
	// Workload is an instantiated workload (program + per-core sources).
	Workload = workload.Generated
	// Scale selects workload size (small, medium, full).
	Scale = workload.Scale
)

// Scales.
const (
	ScaleSmall  = workload.ScaleSmall
	ScaleMedium = workload.ScaleMedium
	ScaleFull   = workload.ScaleFull
)

// Workloads returns the six Table-I workload specifications.
func Workloads() []WorkloadSpec { return workload.Suite() }

// WorkloadByName finds a workload ("OLTP-DB2", "OLTP-Oracle", "DSS-Qry2",
// "DSS-Qry17", "Web-Apache", "Web-Zeus").
func WorkloadByName(name string) (WorkloadSpec, error) {
	s, ok := workload.ByName(name)
	if !ok {
		return WorkloadSpec{}, fmt.Errorf("tifs: unknown workload %q (have %v)", name, workload.Names())
	}
	return s, nil
}

// ParseScale converts "small", "medium", or "full".
func ParseScale(s string) (Scale, error) { return workload.ParseScale(s) }

// BuildWorkload instantiates a workload for the given core count.
func BuildWorkload(spec WorkloadSpec, scale Scale, cores int) *Workload {
	return workload.Build(spec, scale, cores)
}

// MissRecord is one filtered L1-I miss (the paper's Section 4.1
// definition: not satisfied by the 64 KB 2-way L1-I nor the
// two-block-ahead next-line prefetcher).
type MissRecord = trace.MissRecord

// Block is a 64-byte cache block number.
type Block = isa.Block

// ExtractMisses runs the miss filter over up to maxEvents events of one
// core's fetch stream.
func ExtractMisses(w *Workload, coreID int, maxEvents uint64) []MissRecord {
	return trace.ExtractMisses(w.Sources()[coreID], maxEvents, trace.ExtractorConfig{})
}

// MissBlocks projects miss records to their block numbers.
func MissBlocks(recs []MissRecord) []Block { return trace.Blocks(recs) }

// Categorization is the SEQUITUR opportunity accounting of Fig. 3/4.
type Categorization = analysis.Categorization

// Categorize classifies every miss in the block sequence as Opportunity,
// Head, New, or Non-repetitive.
func Categorize(blocks []Block) *Categorization { return analysis.Categorize(blocks) }

// HeuristicResult reports one Fig. 6 lookup policy's coverage.
type HeuristicResult = analysis.HeuristicResult

// Heuristics evaluates the First/Digram/Recent/Longest stream-lookup
// policies on a miss-block sequence.
func Heuristics(blocks []Block) []HeuristicResult {
	return analysis.EvaluateHeuristics(blocks)
}

// Simulation types.
type (
	// SimConfig configures one simulation run.
	SimConfig = sim.Config
	// SimResult is a run's outcome (cycles, coverage, traffic, ...).
	SimResult = sim.Result
	// Mechanism selects the instruction prefetcher under test.
	Mechanism = sim.Mechanism
	// TIFSConfig parameterizes the TIFS hardware (IML size,
	// virtualization, SVB, lookahead, end-of-stream, failure injection).
	TIFSConfig = core.Config
	// SpecStats is the speculative merge tier's telemetry
	// (SimResult.Spec): windows predicted, committed, and rolled back,
	// plus whether the fallback latched speculation off mid-run. It is
	// execution telemetry only — never part of reports, goldens, or
	// stored result bytes.
	SpecStats = sim.SpecStats
)

// Mechanism constructors.
var (
	// NextLineOnly is the paper's baseline system.
	NextLineOnly = sim.Baseline
	// FDIP is fetch-directed instruction prefetching (Reinman et al.).
	FDIP = sim.FDIP
	// Perfect is the instant-streaming upper bound.
	Perfect = sim.Perfect
	// Probabilistic is the Fig. 1 coverage-sweep mechanism.
	Probabilistic = sim.Probabilistic
	// Discontinuity is the discontinuity predictor (Spracklen et al.).
	Discontinuity = sim.Discontinuity
	// TIFS wraps a TIFSConfig as a mechanism.
	TIFS = sim.TIFS
)

// TIFS configurations from the paper's Fig. 13.
var (
	// TIFSUnbounded has an unbounded IML.
	TIFSUnbounded = core.UnboundedConfig
	// TIFSDedicated uses 8K dedicated IML entries per core (156 KB total
	// on 4 cores).
	TIFSDedicated = core.DedicatedConfig
	// TIFSVirtualized stores the IML in the L2 data array.
	TIFSVirtualized = core.VirtualizedConfig
)

// Simulate runs one configuration of the 4-core CMP over the workload.
func Simulate(spec WorkloadSpec, scale Scale, cfg SimConfig) SimResult {
	return sim.Run(spec, scale, cfg)
}

// SimRunner is a reusable simulation machine: it recycles the caches,
// predictors, TIFS structures, and workload executors between runs, so
// steady-state repeated runs perform zero heap allocations. The returned
// Result's PerCore and TIFS fields are valid until the next Run call. A
// SimRunner is not safe for concurrent use.
type SimRunner = sim.Runner

// NewSimRunner creates an empty simulation machine pool of one.
func NewSimRunner() *SimRunner { return sim.NewRunner() }

// SimJob pairs a workload and scale with a simulation configuration for
// batched execution.
type SimJob = engine.Job

// SimulateAll runs a batch of simulations concurrently across at most
// parallelism goroutines (0 = GOMAXPROCS) and returns the results in job
// order. Duplicate jobs are simulated once and share their result;
// output is identical to running each job serially.
func SimulateAll(jobs []SimJob, parallelism int) []SimResult {
	return engine.New(parallelism).RunAll(context.Background(), jobs)
}

// ResultStore is a persistent, content-addressed cache of simulation
// results and miss traces, shared across processes. See OpenResultStore.
type ResultStore = store.Store

// ResultStoreStats summarizes store activity (hits, misses, appends).
type ResultStoreStats = store.Stats

// OpenResultStore opens (creating if needed) a result store rooted at
// dir. Attach it to ExperimentOptions.Store or SimulateAllStored to skip
// already-simulated grid points across CLI invocations. Stores written
// by an incompatible format version are discarded on open; corrupt or
// truncated entries fall back to simulation, never to wrong results.
func OpenResultStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// SimulateAllStored is SimulateAll backed by a persistent result store
// (nil behaves exactly like SimulateAll). Results are byte-identical
// with or without the store.
func SimulateAllStored(jobs []SimJob, parallelism int, st *ResultStore) []SimResult {
	return SimulateAllStoredContext(context.Background(), jobs, parallelism, st)
}

// SimulateAllStoredContext is SimulateAllStored bounded by a context:
// cancellation stops scheduling new simulations, unblocks waiters, and
// leaves unfinished slots as zero Results (treat the batch as invalid
// once ctx is cancelled). Everything simulated before the cancellation
// is already written to the store.
func SimulateAllStoredContext(ctx context.Context, jobs []SimJob, parallelism int, st *ResultStore) []SimResult {
	e := engine.New(parallelism)
	e.SetStore(st)
	return e.RunAll(ctx, jobs)
}

// SimulateAllBackendContext is SimulateAllStoredContext over any store
// backend — local, remote, or nil (no persistence). Results remain
// byte-identical whichever backend is attached, and whether it hits,
// misses, or degrades.
func SimulateAllBackendContext(ctx context.Context, jobs []SimJob, parallelism int, st StoreBackend) []SimResult {
	e := engine.New(parallelism)
	e.SetBackend(st)
	return e.RunAll(ctx, jobs)
}

// StoreCompaction reports what a result-store GC pass reclaimed.
type StoreCompaction = store.CompactStats

// CompactResultStore garbage-collects a result store directory: it
// folds the per-writer segment files a sharded sweep leaves behind into
// the primary log, drops shadowed duplicates and stale-format files, and
// reclaims their space. It refuses to run while a writer holds the
// primary, and skips segments whose writers are still alive; a crash at
// any point leaves a store that opens cleanly. Run it after large sweeps
// on a long-lived cache directory.
func CompactResultStore(dir string) (StoreCompaction, error) { return store.Compact(dir) }

// TraceJob names one per-core miss-trace extraction in a sweep grid.
type TraceJob = engine.TraceJob

// SweepGrid is the complete work list of an experiment sweep: every
// simulation and miss-trace extraction the selected experiments perform.
type SweepGrid = shard.Grid

// ExperimentGrid enumerates the deduplicated sweep grid of the named
// experiments (all of them when ids is empty) under the given options,
// without running anything. The enumeration is deterministic, so every
// worker of a sharded sweep derives the identical grid.
func ExperimentGrid(ids []string, o ExperimentOptions) (SweepGrid, error) {
	jobs, traces, err := experiments.Grid(ids, o)
	if err != nil {
		return SweepGrid{}, fmt.Errorf("tifs: %w", err)
	}
	return SweepGrid{Jobs: jobs, Traces: traces}, nil
}

// ShardReport summarizes one shard worker's pass over its slice of a
// sweep.
type ShardReport = shard.Report

// ShardedSweep runs shard index of count over the grid, as one worker of
// a multi-process (or multi-machine, via a shared filesystem) sweep
// rooted at the store directory dir. The grid partitions by the SHA-256
// of each grid point's canonical key, so all workers agree on ownership
// without talking to each other; the lease manifest in dir additionally
// records the claim so peers can detect and take over a dead worker's
// shard. Grid points already present in the store are skipped. After
// every shard completes, a merge pass — any normal experiment run with
// the store attached, e.g. tifsbench -merge — assembles output
// byte-identical to a single-process run from store hits alone.
//
// Cancelling ctx aborts the shard at the next batch boundary: the lease
// is released (so a fresh worker can claim the shard immediately rather
// than waiting out the TTL), everything simulated so far stays in the
// store, and the partial report returns alongside ctx's error.
func ShardedSweep(ctx context.Context, dir string, index, count int, g SweepGrid, o ExperimentOptions) (ShardReport, error) {
	st, err := store.Open(dir)
	if err != nil {
		return ShardReport{}, fmt.Errorf("tifs: %w", err)
	}
	defer st.Close()
	return sweepShard(ctx, shard.NewCoordinator(dir, g, count), st, g, index, count, o)
}

// sweepShard claims, runs, and settles one shard against any coordinator
// backend (local flock manifest or remote CAS manifest) and any store
// backend (local directory or remote client).
func sweepShard(ctx context.Context, c *shard.Coordinator, st StoreBackend, g SweepGrid, index, count int, o ExperimentOptions) (ShardReport, error) {
	owner := sweepOwner()
	if err := c.Claim(index, owner); err != nil {
		return ShardReport{}, fmt.Errorf("tifs: %w", err)
	}
	rep, err := runShard(ctx, c, st, g, index, count, owner, o)
	if err != nil {
		// Hand the shard back — unless the run died because the lease was
		// (or is presumed) lost, in which case a successor may already own
		// it and a release would clobber the takeover; the no-op lets the
		// old claim expire on its TTL instead. Best-effort either way.
		c.ReleaseAfter(err, index, owner)
		return rep, err
	}
	if err := c.Complete(index); err != nil {
		return rep, fmt.Errorf("tifs: %w", err)
	}
	return rep, nil
}

// ShardedSweepAuto is ShardedSweep with lease-based self-assignment: the
// worker claims unclaimed (or expired) shards one after another until
// none remain, returning a report per shard it ran. Launch N such
// workers against one dir to run a whole sweep with no manual shard
// numbering.
func ShardedSweepAuto(ctx context.Context, dir string, count int, g SweepGrid, o ExperimentOptions) ([]ShardReport, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("tifs: %w", err)
	}
	defer st.Close()
	return sweepAuto(ctx, shard.NewCoordinator(dir, g, count), st, g, count, o)
}

// sweepAuto is the self-assigning claim loop over any coordinator and
// store backend pair.
func sweepAuto(ctx context.Context, c *shard.Coordinator, st StoreBackend, g SweepGrid, count int, o ExperimentOptions) ([]ShardReport, error) {
	owner := sweepOwner()
	var reports []ShardReport
	for {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		index, ok, err := c.ClaimAny(owner)
		if err != nil {
			return reports, fmt.Errorf("tifs: %w", err)
		}
		if !ok {
			return reports, nil
		}
		rep, err := runShard(ctx, c, st, g, index, count, owner, o)
		if err != nil {
			c.ReleaseAfter(err, index, owner)
			return reports, err
		}
		reports = append(reports, rep)
		if err := c.Complete(index); err != nil {
			return reports, fmt.Errorf("tifs: %w", err)
		}
	}
}

// MissingFromStore reports the grid points absent from a store backend
// (local or remote) — the preflight for a merge pass. Empty results mean
// the merge will assemble entirely from store hits.
func MissingFromStore(st StoreBackend, g SweepGrid) (jobs []SimJob, traces []TraceJob) {
	return shard.Missing(st, g)
}

// runShard executes one shard against an open store backend under a live
// lease.
func runShard(ctx context.Context, c *shard.Coordinator, st StoreBackend, g SweepGrid, index, count int, owner string, o ExperimentOptions) (ShardReport, error) {
	rep, err := shard.Run(ctx, st, g, index, count, o.Parallelism, func() error {
		return c.Renew(index, owner)
	}, c.RenewInterval(), c.TTL)
	if err != nil {
		return rep, fmt.Errorf("tifs: %w", err)
	}
	return rep, nil
}

// sweepOwner identifies this worker in lease files.
func sweepOwner() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// StoreBackend is the narrow interface the engine and sweep machinery
// require of a result store: typed get/put/has by canonical key, under
// the store's one-way defensiveness contract (a get may miss for any
// reason — the caller recomputes — but never returns different bytes).
// *ResultStore is the local implementation; RemoteStore the HTTP one.
type StoreBackend = store.Backend

// RemoteStore is a result-store backend served by a tifsserve process
// over HTTP, wrapped in the full robustness stack: per-operation
// deadlines, capped-backoff retries on transient network faults, hedged
// reads, and a circuit breaker that degrades to local computation —
// queueing write-backs and reconciling them when the server recovers —
// so a remote outage costs time, never correctness and never progress.
type RemoteStore = remotestore.Client

// RemoteStoreStats counts a remote store client's network activity:
// hits, retries, hedges, breaker opens, and queued/flushed/dropped
// write-backs.
type RemoteStoreStats = remotestore.Stats

// DialRemoteStore connects to a tifsserve base URL (e.g.
// "http://host:8419"). httpClient nil uses http.DefaultClient; pass a
// custom client to set transport options or inject faults
// (NetFaultTransport). Dialing performs no I/O — a dead server surfaces
// as degraded operation, not a constructor error; use Ping to probe.
// Close the client to flush queued write-backs.
func DialRemoteStore(base string, httpClient *http.Client) *RemoteStore {
	return remotestore.NewClient(base, httpClient)
}

// DialRemoteStoreContext is DialRemoteStore with a base context: every
// store operation (including retry backoff sleeps and queued write-back
// flushes) aborts promptly when ctx is cancelled, so an interrupted
// worker stops waiting on a dead server instead of riding out its
// backoff schedule.
func DialRemoteStoreContext(ctx context.Context, base string, httpClient *http.Client) *RemoteStore {
	return remotestore.NewClientContext(ctx, base, httpClient)
}

// NewSimEngineBackend is NewSimEngine backed by a store backend (local
// or remote) instead of a local store handle.
func NewSimEngineBackend(parallelism int, st StoreBackend) *SimEngine {
	e := engine.New(parallelism)
	e.SetBackend(st)
	return e
}

// RemoteShardedSweep is ShardedSweep coordinated through a tifsserve
// URL instead of a shared store directory: blobs travel over the remote
// store client and the lease manifest lives on the server, updated by
// compare-and-swap, so workers on different machines need share nothing
// but the URL. Results merge byte-identical to a local or storeless run.
//
// Store operations degrade under server outages (compute locally, queue
// write-backs, reconcile on recovery); lease coordination deliberately
// does not — an outage longer than the lease TTL surfaces as a lost
// lease, exactly as it must.
func RemoteShardedSweep(ctx context.Context, url string, httpClient *http.Client, index, count int, g SweepGrid, o ExperimentOptions) (ShardReport, error) {
	client := remotestore.NewClientContext(ctx, url, httpClient)
	defer client.Close()
	c := shard.NewCoordinatorBackend(remotestore.NewManifestClient(url, httpClient), g, count)
	return sweepShard(ctx, c, client, g, index, count, o)
}

// RemoteShardedSweepAuto is ShardedSweepAuto against a tifsserve URL:
// lease-based self-assignment with no shared filesystem.
func RemoteShardedSweepAuto(ctx context.Context, url string, httpClient *http.Client, count int, g SweepGrid, o ExperimentOptions) ([]ShardReport, error) {
	client := remotestore.NewClientContext(ctx, url, httpClient)
	defer client.Close()
	c := shard.NewCoordinatorBackend(remotestore.NewManifestClient(url, httpClient), g, count)
	return sweepAuto(ctx, c, client, g, count, o)
}

// NetFaultTransport builds a deterministic fault-injecting HTTP
// transport from a comma-separated rule spec, for exercising the remote
// store's failure paths reproducibly (tifsbench -netfault, CI). Each
// rule reads mode:method:path-substring:nth[:times] with modes drop
// (reset the connection), torn (cut the response body mid-read),
// latency<duration> (delay, honoring cancellation), or a bare status
// code (synthesize that response); nth is the 1-based matching request
// the fault first fires on, times repeats it (-1 = forever). Example:
//
//	drop:GET:/v1/blob:1,503:PUT:/v1/blob:2:3,latency500ms:GET:/v1/manifest:1
func NetFaultTransport(spec string, inner http.RoundTripper) (http.RoundTripper, error) {
	rules, err := netfault.ParseRules(spec)
	if err != nil {
		return nil, fmt.Errorf("tifs: %w", err)
	}
	return netfault.New(inner, rules...), nil
}

// SimEngine is the concurrency-bounded, memoizing simulation scheduler
// experiments run on. Supplying one engine to several experiment runs
// (ExperimentOptions.Engine) shares memoized simulations between them;
// its counters say how much work a run actually performed.
type SimEngine = engine.Engine

// NewSimEngine creates an engine running at most parallelism
// simulations at once (0 = GOMAXPROCS), optionally backed by a
// persistent result store (nil = in-process memo only).
func NewSimEngine(parallelism int, st *ResultStore) *SimEngine {
	e := engine.New(parallelism)
	e.SetStore(st)
	return e
}

// ExperimentOptions scope an experiment run. Parallelism bounds how many
// simulations run concurrently (0 = GOMAXPROCS, 1 = serial); rendered
// tables are byte-identical at every setting.
type ExperimentOptions = experiments.Options

// Experiment is a named, runnable reproduction of one paper table or
// figure.
type Experiment = experiments.Runner

// Experiments lists every reproducible table/figure and ablation.
func Experiments() []Experiment { return experiments.Registry() }

// RunExperiment executes one experiment by ID ("fig1", "fig3", "fig5",
// "fig6", "fig10", "fig11", "fig12", "fig13", "table1", "table2",
// "ablation-svb", "ablation-eos", "ablation-drops") and returns its
// rendered table.
func RunExperiment(id string, o ExperimentOptions) (string, error) {
	r, ok := experiments.ByID(id)
	if !ok {
		return "", fmt.Errorf("tifs: unknown experiment %q (have %v)", id, experiments.IDs())
	}
	return r.Run(o), nil
}

// RunAllExperiments executes the full registry in paper order.
func RunAllExperiments(o ExperimentOptions) string { return experiments.RunAll(o) }

// RunExperiments executes the named experiments (all of them when ids
// is empty) sharing one engine, so simulations common to several
// figures run once. One id renders that experiment's bare output
// (byte-identical to RunExperiment); several render the sectioned
// concatenation RunAllExperiments produces.
func RunExperiments(ids []string, o ExperimentOptions) (string, error) {
	out, err := experiments.RunSelected(ids, o, nil)
	if err != nil {
		return "", fmt.Errorf("tifs: %w", err)
	}
	return out, nil
}

// MechanismByName resolves the CLI mechanism names ("next-line",
// "fdip", "discontinuity", "tifs-unbounded", "tifs-dedicated",
// "tifs-virtualized", "perfect") to their constructors — the same
// registry tifssim and the sweep service use.
func MechanismByName(name string) (Mechanism, error) {
	m, err := sim.MechanismByName(name)
	if err != nil {
		return Mechanism{}, fmt.Errorf("tifs: %w", err)
	}
	return m, nil
}

// SimReport renders the detailed single-simulation report tifssim
// prints: cycles, IPC, fetch-stall share, coverage, the L2 traffic
// ledger, and the speedup line when a next-line baseline accompanies
// the run. The sweep service returns exactly these bytes for a
// simulation-form job.
func SimReport(r SimResult, baseline *SimResult, scale Scale, cores int) string {
	return sim.Report(r, baseline, scale, cores)
}

// --- Sweep service -----------------------------------------------------

// SweepService is the long-running job daemon behind tifsserve -jobs:
// it owns one shared memoizing engine (optionally backed by the served
// result store), accepts simulation and sweep submissions over HTTP,
// single-flights identical jobs onto one execution, bounds concurrent
// work with per-client fairness queues, and streams per-simulation
// progress events. See internal/sweepd for the protocol.
type SweepService = sweepd.Service

// SweepServiceConfig sizes a service: engine parallelism, the persistent
// store backend, and the admission-control bounds (MaxActive concurrent
// jobs, MaxQueued / MaxQueuedPerClient queue depths — exceeding either
// yields 429 with Retry-After).
type SweepServiceConfig = sweepd.Config

// Job types shared by the service and its client.
type (
	// JobRequest is a submission: either a sweep (Experiments/Workloads)
	// or a single simulation (Workload/Mechanism/Baseline), plus the
	// shared Scale/Events/Cores knobs.
	JobRequest = sweepd.JobRequest
	// JobStatus is a job's state, output, and engine-work counters.
	JobStatus = sweepd.JobStatus
	// JobEvent is one progress notification on a job's event stream.
	JobEvent = sweepd.Event
	// JobClient submits jobs and watches their event streams, retrying
	// transient failures (submissions are idempotent under single-flight)
	// and resuming dropped streams from the last delivered sequence
	// number.
	JobClient = sweepd.Client
)

// Job lifecycle states: queued -> running -> done | failed.
const (
	JobQueued  = sweepd.StateQueued
	JobRunning = sweepd.StateRunning
	JobDone    = sweepd.StateDone
	JobFailed  = sweepd.StateFailed
)

// NewSweepService starts a sweep service; mount it on an http.ServeMux
// with its Register method and stop it with Close.
func NewSweepService(cfg SweepServiceConfig) *SweepService { return sweepd.New(cfg) }

// DialJobService makes a job client for a tifsserve base URL. nil
// httpClient uses http.DefaultClient; pass a custom client to inject
// faults (NetFaultTransport) or set transport options.
func DialJobService(base string, httpClient *http.Client) *JobClient {
	return sweepd.NewClient(base, httpClient)
}

// SubmitJob submits a request to a sweep service and returns the
// (possibly deduplicated) job status without waiting for completion.
func SubmitJob(ctx context.Context, c *JobClient, req JobRequest) (JobStatus, error) {
	return c.Submit(ctx, req)
}

// WatchJob streams a job's progress events (nil onEvent discards them)
// until it completes, then returns its final status — including the
// full rendered output, byte-identical to the equivalent local run.
func WatchJob(ctx context.Context, c *JobClient, id string, onEvent func(JobEvent)) (JobStatus, error) {
	return c.Watch(ctx, id, onEvent)
}
