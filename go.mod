module tifs

go 1.24
