// Command diag is a development diagnostic: it prints miss densities,
// SEQUITUR categorization, and heuristic coverages for each workload so
// the synthetic models can be calibrated against the paper's figures.
package main

import (
	"fmt"
	"os"

	"tifs/internal/analysis"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

func main() {
	events := uint64(200_000)
	scale := workload.ScaleSmall
	if len(os.Args) > 1 {
		sc, err := workload.ParseScale(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		scale = sc
		events = scale.DefaultEvents()
	}
	if len(os.Args) > 2 {
		fmt.Sscanf(os.Args[2], "%d", &events)
	}
	suite := workload.Suite()
	if len(os.Args) > 3 {
		s2, ok := workload.ByName(os.Args[3])
		if !ok {
			fmt.Fprintln(os.Stderr, "unknown workload")
			os.Exit(1)
		}
		suite = []workload.Spec{s2}
	}
	for _, spec := range suite {
		g := workload.Build(spec, scale, 1)
		ext := trace.ExtractorConfig{}
		var recs []trace.MissRecord
		e := trace.NewExtractor(ext, func(m trace.MissRecord) { recs = append(recs, m) })
		e.Run(g.Sources()[0], events)
		seq := trace.Blocks(recs)

		cat := analysis.Categorize(seq)
		fmt.Printf("%-12s misses=%-7d MPKE=%6.2f  opp=%5.1f%% rep=%5.1f%% head=%4.1f%% new=%4.1f%%",
			spec.Name, len(seq), e.MPKE(),
			100*cat.OpportunityFrac(), 100*cat.RepetitiveFrac(),
			100*cat.Counts.Fraction(analysis.CatHead),
			100*cat.Counts.Fraction(analysis.CatNew))
		fmt.Printf("  medlen=%d wmedlen=%d\n", cat.StreamLengths.Percentile(0.5), cat.StreamLengths.WeightedMedian())

		for _, r := range analysis.EvaluateHeuristics(seq) {
			fmt.Printf("   %-8s %5.1f%%", r.Policy, 100*r.Coverage())
		}
		fmt.Println()
	}
	os.Exit(0)
}
