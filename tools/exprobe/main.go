package main

import (
	"fmt"

	"tifs/internal/experiments"
	"tifs/internal/workload"
)

func main() {
	o := experiments.Options{Scale: workload.ScaleSmall, Workloads: []string{"OLTP-DB2", "DSS-Qry17"}}
	for _, id := range []string{"table1", "fig3", "fig6", "fig12", "fig13"} {
		r, _ := experiments.ByID(id)
		fmt.Println(r.Run(o))
	}
}
