// Command align compares the miss sequences of consecutive executions of
// one transaction type to find what makes recurrences diverge.
package main

import (
	"fmt"

	"tifs/internal/cfg"
	"tifs/internal/isa"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

func main() {
	spec, _ := workload.ByName("OLTP-DB2")
	g := workload.Build(spec, workload.ScaleMedium, 1)

	// Single txn type, single thread, no traps: the purest recurrence.
	x := cfg.NewExecutor(g.Program, cfg.ExecConfig{
		Roots: g.Roots[:1],
		Seed:  "align",
	})

	driverEntry := g.Program.Func(g.Roots[0]).Entry

	// Collect misses, split into per-execution sequences at driver entry.
	var execsMisses [][]isa.Block
	var cur []isa.Block
	ext := trace.NewExtractor(trace.ExtractorConfig{}, func(m trace.MissRecord) {
		cur = append(cur, m.Block)
	})
	for i := 0; i < 3_000_000; i++ {
		ev, _ := x.Next()
		if ev.PC == driverEntry && len(cur) > 0 {
			execsMisses = append(execsMisses, cur)
			cur = nil
		}
		ext.Feed(ev)
		if len(execsMisses) >= 40 {
			break
		}
	}

	fmt.Printf("executions captured: %d\n", len(execsMisses))
	for i := 1; i < len(execsMisses) && i <= 20; i++ {
		a, b := execsMisses[i-1], execsMisses[i]
		setA := map[isa.Block]bool{}
		for _, blk := range a {
			setA[blk] = true
		}
		setB := map[isa.Block]bool{}
		for _, blk := range b {
			setB[blk] = true
		}
		onlyA, onlyB, common := 0, 0, 0
		for blk := range setA {
			if setB[blk] {
				common++
			} else {
				onlyA++
			}
		}
		for blk := range setB {
			if !setA[blk] {
				onlyB++
			}
		}
		// Longest common prefix as a cheap order-stability signal.
		lcp := 0
		for lcp < len(a) && lcp < len(b) && a[lcp] == b[lcp] {
			lcp++
		}
		fmt.Printf("exec %2d->%2d: lenA=%-4d lenB=%-4d common=%-4d onlyA=%-3d onlyB=%-3d lcp=%d\n",
			i-1, i, len(a), len(b), common, onlyA, onlyB, lcp)
	}
}
