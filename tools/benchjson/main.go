// Command benchjson snapshots simulator throughput as a small JSON
// document, one file per commit, so performance history accumulates as
// comparable artifacts instead of scrollback:
//
//	go run ./tools/benchjson            # writes BENCH_<short-sha>.json
//	go run ./tools/benchjson -o out.json
//
// Each snapshot runs the pooled simulator benchmark serially, at
// intra-run sharding levels 2/4/8, and under the speculative merge
// tier (clean, composed with intra sharding, and with chaos-forced
// rollbacks latching speculation off) through testing.Benchmark,
// recording events/s, ns/op, and allocations per run. The allocation
// column is a correctness signal, not just a performance one:
// steady-state simulation must stay at zero allocations in every mode.
//
// Speculative points also record the merge thread's busy share of
// wall-clock. On few-core machines the speculation worker and the
// merge thread timeshare one CPU, so raw events/s understates the
// tier; merge-busy% is the honest signal — it says how much of the run
// the merge thread actually had to work (verify, commit, re-execute)
// rather than waiting on predictions, and it is what turns into
// speedup the moment a second core exists.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"tifs"
)

// point is one benchmarked configuration in the snapshot.
type point struct {
	Name         string  `json:"name"`
	Intra        int     `json:"intra"`
	Spec         int     `json:"spec,omitempty"`
	SpecChaos    int     `json:"spec_chaos,omitempty"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	// Speculative-mode telemetry (zero/absent for non-speculative
	// points): cumulative rollbacks over the measured iterations,
	// whether the adversarial fallback latched, and the merge thread's
	// busy share of wall-clock.
	Rollbacks    uint64  `json:"rollbacks,omitempty"`
	Latched      bool    `json:"latched,omitempty"`
	MergeBusyPct float64 `json:"merge_busy_pct,omitempty"`
}

// snapshot is the whole document: enough machine context to compare
// two commits honestly, plus the measured points.
type snapshot struct {
	Commit    string  `json:"commit"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	Workload  string  `json:"workload"`
	Events    uint64  `json:"events_per_core"`
	Points    []point `json:"points"`
}

// gitShortSHA asks git for the current commit; "unknown" (not an
// error) when the tool runs outside a checkout.
func gitShortSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		outPath = flag.String("o", "", "output file (default BENCH_<short-sha>.json)")
		events  = flag.Uint64("events", 200_000, "per-core event budget per iteration")
		wlName  = flag.String("workload", "OLTP-DB2", "workload to simulate")
	)
	flag.Parse()

	spec, err := tifs.WorkloadByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	snap := snapshot{
		Commit:    gitShortSHA(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload:  *wlName,
		Events:    *events,
	}

	// The measured grid: the intra ladder, then the speculative tier —
	// clean, composed with intra sharding, and the chaos-everywhere
	// adversarial case, which rolls back until the fallback latches
	// speculation off (its cost bounds the tier's worst case).
	configs := []struct {
		name        string
		intra, spec int
		chaos       int
	}{
		{"SimulatorThroughputPooled/intra-1", 1, 0, 0},
		{"SimulatorThroughputPooled/intra-2", 2, 0, 0},
		{"SimulatorThroughputPooled/intra-4", 4, 0, 0},
		{"SimulatorThroughputPooled/intra-8", 8, 0, 0},
		{"SimulatorSpeculative/on", 1, 2, 0},
		{"SimulatorSpeculative/on-intra-4", 4, 2, 0},
		{"SimulatorSpeculative/latched", 1, 2, 1},
	}
	for _, c := range configs {
		r := tifs.NewSimRunner()
		cfg := tifs.SimConfig{
			EventsPerCore:    *events,
			Mechanism:        tifs.NextLineOnly(),
			IntraParallelism: c.intra,
			Speculative:      c.spec,
			SpecChaos:        c.chaos,
		}
		r.Run(spec, tifs.ScaleSmall, cfg) // warm the pools
		var total uint64
		var specStats tifs.SpecStats
		var rollbacks uint64
		var busySeconds float64
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			total, rollbacks, busySeconds = 0, 0, 0
			for i := 0; i < b.N; i++ {
				out := r.Run(spec, tifs.ScaleSmall, cfg)
				total += out.TotalEvents
				specStats = out.Spec
				rollbacks += out.Spec.Rollbacks
				busySeconds += r.SpecMergeBusy().Seconds()
			}
		})
		p := point{
			Name:         c.name,
			Intra:        c.intra,
			Spec:         c.spec,
			SpecChaos:    c.chaos,
			Iterations:   res.N,
			NsPerOp:      res.NsPerOp(),
			EventsPerSec: float64(total) / res.T.Seconds(),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
		}
		if c.spec >= 2 {
			p.Rollbacks = rollbacks
			p.Latched = specStats.Latched
			p.MergeBusyPct = 100 * busySeconds / res.T.Seconds()
		}
		snap.Points = append(snap.Points, p)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f events/s  %8d ns/op  %d allocs/op",
			p.Name, p.EventsPerSec, p.NsPerOp, p.AllocsPerOp)
		if c.spec >= 2 {
			fmt.Fprintf(os.Stderr, "  merge-busy %.1f%%  rollbacks %d latched=%v",
				p.MergeBusyPct, p.Rollbacks, p.Latched)
		}
		fmt.Fprintln(os.Stderr)
		r.Close()
	}

	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Commit)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}
