// Command benchjson snapshots simulator throughput as a small JSON
// document, one file per commit, so performance history accumulates as
// comparable artifacts instead of scrollback:
//
//	go run ./tools/benchjson            # writes BENCH_<short-sha>.json
//	go run ./tools/benchjson -o out.json
//
// Each snapshot runs the pooled simulator benchmark serially and at
// intra-run sharding levels 2/4/8 through testing.Benchmark, recording
// events/s, ns/op, and allocations per run. The allocation column is a
// correctness signal, not just a performance one: steady-state
// simulation must stay at zero allocations at every sharding level.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"

	"tifs"
)

// point is one benchmarked configuration in the snapshot.
type point struct {
	Name         string  `json:"name"`
	Intra        int     `json:"intra"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// snapshot is the whole document: enough machine context to compare
// two commits honestly, plus the measured points.
type snapshot struct {
	Commit    string  `json:"commit"`
	GoVersion string  `json:"go_version"`
	NumCPU    int     `json:"num_cpu"`
	Workload  string  `json:"workload"`
	Events    uint64  `json:"events_per_core"`
	Points    []point `json:"points"`
}

// gitShortSHA asks git for the current commit; "unknown" (not an
// error) when the tool runs outside a checkout.
func gitShortSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	var (
		outPath = flag.String("o", "", "output file (default BENCH_<short-sha>.json)")
		events  = flag.Uint64("events", 200_000, "per-core event budget per iteration")
		wlName  = flag.String("workload", "OLTP-DB2", "workload to simulate")
	)
	flag.Parse()

	spec, err := tifs.WorkloadByName(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	snap := snapshot{
		Commit:    gitShortSHA(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workload:  *wlName,
		Events:    *events,
	}

	for _, intra := range []int{1, 2, 4, 8} {
		intra := intra
		r := tifs.NewSimRunner()
		cfg := tifs.SimConfig{
			EventsPerCore:    *events,
			Mechanism:        tifs.NextLineOnly(),
			IntraParallelism: intra,
		}
		r.Run(spec, tifs.ScaleSmall, cfg) // warm the pools
		var total uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			total = 0
			for i := 0; i < b.N; i++ {
				total += r.Run(spec, tifs.ScaleSmall, cfg).TotalEvents
			}
		})
		p := point{
			Name:         fmt.Sprintf("SimulatorThroughputPooled/intra-%d", intra),
			Intra:        intra,
			Iterations:   res.N,
			NsPerOp:      res.NsPerOp(),
			EventsPerSec: float64(total) / res.T.Seconds(),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
		}
		snap.Points = append(snap.Points, p)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f events/s  %8d ns/op  %d allocs/op\n",
			p.Name, p.EventsPerSec, p.NsPerOp, p.AllocsPerOp)
	}

	path := *outPath
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Commit)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
}
