package main

import (
	"fmt"
	"time"

	"tifs/internal/core"
	"tifs/internal/sim"
	"tifs/internal/workload"
)

func main() {
	spec, _ := workload.ByName("OLTP-DB2")
	mechs := []sim.Mechanism{
		sim.Baseline(), sim.FDIP(),
		sim.TIFS(core.UnboundedConfig()),
		sim.TIFS(core.DedicatedConfig()),
		sim.TIFS(core.VirtualizedConfig()),
		sim.Perfect(),
	}
	var base sim.Result
	for _, m := range mechs {
		t0 := time.Now()
		scale := workload.ScaleMedium
		events := uint64(600_000)
		r := sim.Run(spec, scale, sim.Config{EventsPerCore: events, Mechanism: m})
		el := time.Since(t0)
		if m.Kind == sim.KindNone {
			base = r
		}
		var nl, pfS, ms, hitsT, hitsL, nlLate, misses, pfHits uint64
		for _, s := range r.PerCore {
			nl += s.StallNextLine
			pfS += s.StallPrefetch
			ms += s.StallMiss
			nlLate += s.NextLineLate
			misses += s.Misses
			pfHits += s.PrefetchHits
		}
		hitsT = r.Prefetch.HitsTimely
		hitsL = r.Prefetch.HitsLate
		fmt.Printf("%-16s cyc=%-9d IPC=%5.3f st=%4.1f%% [nl=%d pf=%d ms=%d] cov=%5.1f%% T/L=%d/%d nlL=%d m=%d d=%4.1f%% spd=%6.3f ovh=%4.1f%% (%.1fs)\n",
			r.Mechanism, r.Cycles, r.IPC(), 100*r.FetchStallShare(), nl/1000, pfS/1000, ms/1000,
			100*r.Coverage(), hitsT, hitsL, nlLate, misses, 100*r.DiscardFrac(),
			r.SpeedupOver(base), 100*r.Traffic.OverheadFrac(func() uint64 {
				var h uint64
				for _, s := range r.PerCore {
					h += s.PrefetchHits
				}
				return h
			}()), el.Seconds())
	}
}
