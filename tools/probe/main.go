// Command probe isolates stream-shattering causes by toggling workload
// features one at a time on a single-core OLTP-like configuration.
package main

import (
	"fmt"

	"tifs/internal/analysis"
	"tifs/internal/cfg"
	"tifs/internal/trace"
	"tifs/internal/workload"
)

func run(name string, mut func(*workload.Spec), execMut func(*cfg.ExecConfig)) {
	spec, _ := workload.ByName("OLTP-DB2")
	if mut != nil {
		mut(&spec)
	}
	g := workload.Build(spec, workload.ScaleMedium, 1)
	src := g.Sources()[0]
	_ = execMut

	var recs []trace.MissRecord
	e := trace.NewExtractor(trace.ExtractorConfig{}, func(m trace.MissRecord) { recs = append(recs, m) })
	e.Run(src, 1_000_000)
	seq := trace.Blocks(recs)
	cat := analysis.Categorize(seq)
	rec := analysis.EvaluateHeuristic(analysis.PolicyRecent, seq)
	fmt.Printf("%-28s misses=%-6d opp=%5.1f%% rep=%5.1f%% head=%4.1f%% medlen=%-3d wmed=%-4d recent=%5.1f%%\n",
		name, len(seq), 100*cat.OpportunityFrac(), 100*cat.RepetitiveFrac(),
		100*cat.Counts.Fraction(analysis.CatHead),
		cat.StreamLengths.Percentile(0.5), cat.StreamLengths.WeightedMedian(),
		100*rec.Coverage())
}

func main() {
	run("baseline", nil, nil)
	run("no-traps", func(s *workload.Spec) { s.TrapMeanInstrs = 0; s.ContextSwitchProb = 0 }, nil)
	run("1-thread", func(s *workload.Spec) { s.ThreadsPerCore = 1 }, nil)
	run("no-traps+1thread", func(s *workload.Spec) {
		s.TrapMeanInstrs = 0
		s.ThreadsPerCore = 1
	}, nil)
	run("mono-calls", func(s *workload.Spec) { s.Fanout = 1 }, nil)
	run("no-unpred", func(s *workload.Spec) { s.Unpredictable = 0 }, nil)
	run("1-txn-type", func(s *workload.Spec) { s.TxnTypes = 4 }, nil)
	run("sterile", func(s *workload.Spec) {
		s.TrapMeanInstrs = 0
		s.ThreadsPerCore = 1
		s.Fanout = 1
		s.Unpredictable = 0
	}, nil)
	run("sterile+4txn", func(s *workload.Spec) {
		s.TrapMeanInstrs = 0
		s.ThreadsPerCore = 1
		s.Fanout = 1
		s.Unpredictable = 0
		s.TxnTypes = 4
	}, nil)
}
