package tifs_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tifs"
	"tifs/internal/remotestore"
	"tifs/internal/store"
)

// jobsRequest is the reduced-scope submission the e2e tests use.
func jobsRequest() tifs.JobRequest {
	return tifs.JobRequest{
		Experiments: []string{"fig1"},
		Workloads:   []string{"OLTP-DB2"},
		Scale:       "small",
		Events:      3_000,
	}
}

// startJobServer stands up the full tifsserve composition in-process:
// the blob/manifest protocol and the sweep service sharing one store
// directory and one mux, exactly as cmd/tifsserve mounts them.
func startJobServer(t *testing.T, dir string) (*tifs.SweepService, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	svc := tifs.NewSweepService(tifs.SweepServiceConfig{Parallelism: 2, Backend: st})
	t.Cleanup(svc.Close)
	mux := http.NewServeMux()
	mux.Handle("/", remotestore.NewServer(st, dir).Handler())
	svc.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return svc, ts
}

// TestJobServiceEndToEnd is the service acceptance path in one arc: two
// concurrent clients — one behind a deterministic fault matrix — submit
// the identical sweep; the grid executes once, both receive output
// byte-identical to a storeless serial local run, and a fresh service
// over the same store then answers the same submission warm, running
// zero simulations.
func TestJobServiceEndToEnd(t *testing.T) {
	req := jobsRequest()
	// Ground truth: storeless serial local run.
	want, err := tifs.RunExperiments(req.Experiments, tifs.ExperimentOptions{
		Scale: tifs.ScaleSmall, Events: req.Events, Workloads: req.Workloads,
		Parallelism: 1, Engine: tifs.NewSimEngine(1, nil),
	})
	if err != nil {
		t.Fatalf("local run: %v", err)
	}

	dir := t.TempDir()
	svc, ts := startJobServer(t, dir)

	// Client B's transport drops the first submit and tears the first
	// event stream, forcing a retried POST (absorbed by single-flight)
	// and a stream resume.
	faultRT, err := tifs.NetFaultTransport("drop:POST:/v1/jobs:1,torn:GET:/events:1", nil)
	if err != nil {
		t.Fatalf("netfault: %v", err)
	}
	clients := []*tifs.JobClient{
		tifs.DialJobService(ts.URL, nil),
		tifs.DialJobService(ts.URL, &http.Client{Transport: faultRT}),
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	finals := make([]tifs.JobStatus, len(clients))
	subs := make([]tifs.JobStatus, len(clients))
	errs := make([]error, len(clients))
	for i, c := range clients {
		c.Name = fmt.Sprintf("e2e-client-%d", i)
		wg.Add(1)
		go func(i int, c *tifs.JobClient) {
			defer wg.Done()
			st, err := tifs.SubmitJob(ctx, c, req)
			if err != nil {
				errs[i] = err
				return
			}
			subs[i] = st
			finals[i], errs[i] = tifs.WatchJob(ctx, c, st.ID, nil)
		}(i, c)
	}
	wg.Wait()
	for i := range clients {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if finals[i].State != tifs.JobDone {
			t.Fatalf("client %d job %s: %s", i, finals[i].State, finals[i].Error)
		}
		if finals[i].Output != want {
			t.Errorf("client %d output differs from storeless serial local run", i)
		}
	}
	if subs[0].ID != subs[1].ID {
		t.Errorf("clients got different jobs (%s vs %s): single-flight broken", subs[0].ID, subs[1].ID)
	}
	wantRuns := svc.Engine().SimulationsRun()
	if wantRuns == 0 {
		t.Fatal("cold service ran zero simulations")
	}

	// Warm restart: a fresh service over the same store directory must
	// serve the identical submission without simulating at all.
	svc.Close()
	ts.Close()
	svc2, ts2 := startJobServer(t, dir)
	c := tifs.DialJobService(ts2.URL, nil)
	c.Name = "e2e-warm"
	st, err := tifs.SubmitJob(ctx, c, req)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	final, err := tifs.WatchJob(ctx, c, st.ID, nil)
	if err != nil {
		t.Fatalf("warm watch: %v", err)
	}
	if final.Output != want {
		t.Error("warm output differs from local run")
	}
	if runs := svc2.Engine().SimulationsRun(); runs != 0 {
		t.Errorf("warm service ran %d simulations, want 0 (store should answer everything)", runs)
	}
	if final.SimsRun != 0 || final.StoreHits == 0 {
		t.Errorf("warm job counters: sims=%d hits=%d, want 0 sims and >0 hits", final.SimsRun, final.StoreHits)
	}
}

// TestJobSimulationMatchesLocalReport: the simulation-form job returns
// exactly the bytes tifssim would print locally (shared report path).
func TestJobSimulationMatchesLocalReport(t *testing.T) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tifs.SimConfig{Cores: 4, EventsPerCore: 3_000}
	mech, err := tifs.MechanismByName("tifs-dedicated")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Mechanism = mech
	jobs := []tifs.SimJob{
		{Spec: spec, Scale: tifs.ScaleSmall, Config: cfg},
		{Spec: spec, Scale: tifs.ScaleSmall, Config: tifs.SimConfig{Cores: 4, EventsPerCore: 3_000, Mechanism: tifs.NextLineOnly()}},
	}
	results := tifs.SimulateAll(jobs, 2)
	want := tifs.SimReport(results[0], &results[1], tifs.ScaleSmall, 4)

	_, ts := startJobServer(t, t.TempDir())
	c := tifs.DialJobService(ts.URL, nil)
	c.Name = "sim-client"
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := tifs.SubmitJob(ctx, c, tifs.JobRequest{
		Workload: "OLTP-DB2", Mechanism: "tifs-dedicated", Baseline: true,
		Scale: "small", Events: 3_000, Cores: 4,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := tifs.WatchJob(ctx, c, st.ID, nil)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if final.State != tifs.JobDone {
		t.Fatalf("job %s: %s", final.State, final.Error)
	}
	if final.Output != want {
		t.Errorf("server report differs from local tifssim bytes:\n--- want\n%s\n--- got\n%s", want, final.Output)
	}
}
