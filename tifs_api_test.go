package tifs_test

import (
	"context"
	"strings"
	"testing"

	"tifs"
)

func TestWorkloadsAPI(t *testing.T) {
	ws := tifs.Workloads()
	if len(ws) != 6 {
		t.Fatalf("workloads = %d", len(ws))
	}
	if _, err := tifs.WorkloadByName("OLTP-Oracle"); err != nil {
		t.Error(err)
	}
	if _, err := tifs.WorkloadByName("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := tifs.ParseScale("medium"); err != nil {
		t.Error(err)
	}
}

func TestMissExtractionAndAnalyses(t *testing.T) {
	spec, _ := tifs.WorkloadByName("Web-Zeus")
	w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
	misses := tifs.ExtractMisses(w, 0, 100_000)
	if len(misses) == 0 {
		t.Fatal("no misses")
	}
	blocks := tifs.MissBlocks(misses)
	cat := tifs.Categorize(blocks)
	if cat.Counts.Total() != uint64(len(misses)) {
		t.Error("categorization total mismatch")
	}
	hs := tifs.Heuristics(blocks)
	if len(hs) != 4 {
		t.Errorf("heuristics = %d", len(hs))
	}
}

func TestSimulateAPI(t *testing.T) {
	spec, _ := tifs.WorkloadByName("DSS-Qry2")
	r := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{
		EventsPerCore: 40_000,
		Mechanism:     tifs.TIFS(tifs.TIFSDedicated()),
	})
	if r.Cycles == 0 {
		t.Fatal("no cycles")
	}
	if r.TIFS == nil {
		t.Error("TIFS stats missing")
	}
}

func TestExperimentRegistryAPI(t *testing.T) {
	if len(tifs.Experiments()) < 13 {
		t.Errorf("registry has %d entries", len(tifs.Experiments()))
	}
	out, err := tifs.RunExperiment("table2", tifs.ExperimentOptions{Scale: tifs.ScaleSmall})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "8MB 16-way") {
		t.Errorf("table2 output missing L2 row:\n%s", out)
	}
	if _, err := tifs.RunExperiment("fig99", tifs.ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestShardedSweepAPI drives the public sharding surface end to end:
// enumerate a grid, run both workers of a 2-shard sweep into one store
// directory, and verify a merge renders the same bytes as a direct run
// with zero re-simulation.
func TestShardedSweepAPI(t *testing.T) {
	dir := t.TempDir()
	o := tifs.ExperimentOptions{
		Scale:     tifs.ScaleSmall,
		Events:    3_000,
		Workloads: []string{"OLTP-DB2"},
	}
	grid, err := tifs.ExperimentGrid([]string{"fig12", "fig13"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Jobs) == 0 {
		t.Fatal("grid enumerated no jobs")
	}
	if _, err := tifs.ExperimentGrid([]string{"fig99"}, o); err == nil {
		t.Error("unknown experiment id accepted")
	}

	var total int
	for index := 0; index < 2; index++ {
		rep, err := tifs.ShardedSweep(context.Background(), dir, index, 2, grid, o)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.Jobs + rep.Traces
	}
	if total != len(grid.Jobs)+len(grid.Traces) {
		t.Errorf("shards covered %d of %d grid points", total, len(grid.Jobs)+len(grid.Traces))
	}

	st, err := tifs.OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if jobs, traces := tifs.MissingFromStore(st, grid); len(jobs)+len(traces) != 0 {
		t.Fatalf("store missing %d jobs, %d traces after both shards ran", len(jobs), len(traces))
	}
	e := tifs.NewSimEngine(0, st)
	o.Engine = e
	merged, err := tifs.RunExperiment("fig13", o)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.SimulationsRun(); n != 0 {
		t.Errorf("merge re-simulated %d grid points", n)
	}
	direct, err := tifs.RunExperiment("fig13", tifs.ExperimentOptions{
		Scale:     tifs.ScaleSmall,
		Events:    3_000,
		Workloads: []string{"OLTP-DB2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if merged != direct {
		t.Errorf("merged output differs from direct run:\n--- merged\n%s\n--- direct\n%s", merged, direct)
	}
}

func TestExperimentSingleWorkload(t *testing.T) {
	out, err := tifs.RunExperiment("fig6", tifs.ExperimentOptions{
		Scale:     tifs.ScaleSmall,
		Events:    80_000,
		Cores:     1,
		Workloads: []string{"DSS-Qry17"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DSS-Qry17") || strings.Contains(out, "OLTP") {
		t.Errorf("workload filter not applied:\n%s", out)
	}
}
