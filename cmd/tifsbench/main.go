// Command tifsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tifsbench -experiment fig13 -scale medium
//	tifsbench -experiment all -scale small -workloads OLTP-DB2,Web-Apache
//	tifsbench -experiment all -scale small -cache-dir ~/.cache/tifs
//	tifsbench -list
//
// With -cache-dir, simulation results and miss traces persist in a
// content-addressed store; re-running the same experiments loads them
// instead of re-simulating, printing byte-identical tables in a fraction
// of the time. A store summary goes to stderr so stdout stays clean.
//
// Sharded sweeps split one experiment grid across processes or machines
// that share a -cache-dir (for machines: on a shared filesystem):
//
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -shard 0/4   # one worker
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -shard auto/4 # self-assigning worker
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -merge        # assemble the output
//	tifsbench -cache-dir /shared/tifs -store-gc                                 # compact afterwards
//
// Workers fill the store cooperatively and print no tables; the -merge
// pass renders output byte-identical to a single-process run from store
// hits alone. -store-gc folds the per-worker segment files back into one
// log and reclaims dead bytes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"tifs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "small", "workload scale: small|medium|full")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all six)")
		events     = flag.Uint64("events", 0, "override per-core event budget (0 = scale default)")
		cores      = flag.Int("cores", 4, "number of cores")
		parallel   = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory (empty = disabled)")
		shardSpec  = flag.String("shard", "", "run as a sweep worker: 'i/N' (0-based) or 'auto/N'; requires -cache-dir")
		merge      = flag.Bool("merge", false, "assemble experiment output from the shared store after shard workers finish; requires -cache-dir")
		storeGC    = flag.Bool("store-gc", false, "compact the -cache-dir store (fold segments, drop dead bytes) and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range tifs.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return 0
	}

	if *storeGC {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-store-gc requires -cache-dir")
			return 2
		}
		st, err := tifs.CompactResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, st)
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	o := tifs.ExperimentOptions{Scale: scale, Events: *events, Cores: *cores, Parallelism: *parallel}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			name := strings.TrimSpace(w)
			if _, err := tifs.WorkloadByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			o.Workloads = append(o.Workloads, name)
		}
	}
	// ids selects the sweep grid: nil = the full registry.
	var ids []string
	if *experiment != "all" {
		ids = []string{*experiment}
	}

	if *shardSpec != "" {
		return runShardWorker(*shardSpec, *cacheDir, ids, o)
	}
	if *merge {
		return runMerge(*cacheDir, ids, o)
	}

	if *cacheDir != "" {
		st, err := tifs.OpenResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, st.Stats())
			st.Close()
		}()
		o.Store = st
	}

	if *experiment == "all" {
		fmt.Print(tifs.RunAllExperiments(o))
		return 0
	}
	out, err := tifs.RunExperiment(*experiment, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Print(out)
	return 0
}

// runShardWorker executes one sweep worker: shard "i/N" pins a shard,
// "auto/N" claims shards through the lease manifest until none remain.
// Workers print per-shard reports to stderr and no tables at all — the
// -merge pass renders output once every shard is done.
func runShardWorker(spec, cacheDir string, ids []string, o tifs.ExperimentOptions) int {
	if cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-shard requires -cache-dir (the store all workers share)")
		return 2
	}
	sel, countStr, ok := strings.Cut(spec, "/")
	count, countErr := strconv.Atoi(countStr)
	if !ok || countErr != nil || count < 1 {
		fmt.Fprintf(os.Stderr, "bad -shard %q: want 'i/N' (0-based) or 'auto/N'\n", spec)
		return 2
	}
	grid, err := tifs.ExperimentGrid(ids, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "sweep grid: %d simulations, %d trace extractions across %d shards\n",
		len(grid.Jobs), len(grid.Traces), count)

	if sel == "auto" {
		reports, err := tifs.ShardedSweepAuto(cacheDir, count, grid, o)
		for _, rep := range reports {
			fmt.Fprintln(os.Stderr, rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "worker done: ran %d shard(s)\n", len(reports))
		return 0
	}
	index, err := strconv.Atoi(sel)
	if err != nil || index < 0 || index >= count {
		fmt.Fprintf(os.Stderr, "bad -shard %q: index must be in [0,%d)\n", spec, count)
		return 2
	}
	rep, err := tifs.ShardedSweep(cacheDir, index, count, grid, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, rep)
	return 0
}

// runMerge assembles experiment output from the shared store. With full
// shard coverage every grid point is a store hit and the pass takes
// seconds; anything a failed worker left missing is re-computed here
// (correct output either way) and reported so the operator knows.
func runMerge(cacheDir string, ids []string, o tifs.ExperimentOptions) int {
	if cacheDir == "" {
		fmt.Fprintln(os.Stderr, "-merge requires -cache-dir (the store the shard workers filled)")
		return 2
	}
	st, err := tifs.OpenResultStore(cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		fmt.Fprintln(os.Stderr, st.Stats())
		st.Close()
	}()
	// Preflight coverage against the grid itself: the engine's counters
	// alone would miss a re-run trace extraction.
	grid, err := tifs.ExperimentGrid(ids, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	missingJobs, missingTraces := tifs.MissingFromStore(st, grid)
	e := tifs.NewSimEngine(o.Parallelism, st)
	o.Engine = e

	if len(ids) == 0 {
		fmt.Print(tifs.RunAllExperiments(o))
	} else {
		out, err := tifs.RunExperiment(ids[0], o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Print(out)
	}
	if n := len(missingJobs) + len(missingTraces); n > 0 {
		fmt.Fprintf(os.Stderr, "merge: %d simulations and %d trace extractions were missing from the store and were re-computed (did a shard worker die?)\n",
			len(missingJobs), len(missingTraces))
	} else {
		fmt.Fprintf(os.Stderr, "merge: assembled entirely from the store (%d hits)\n", e.StoreHits())
	}
	return 0
}
