// Command tifsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tifsbench -experiment fig13 -scale medium
//	tifsbench -experiment all -scale small -workloads OLTP-DB2,Web-Apache
//	tifsbench -experiment all -scale small -cache-dir ~/.cache/tifs
//	tifsbench -list
//
// With -cache-dir, simulation results and miss traces persist in a
// content-addressed store; re-running the same experiments loads them
// instead of re-simulating, printing byte-identical tables in a fraction
// of the time. A store summary goes to stderr so stdout stays clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"tifs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "small", "workload scale: small|medium|full")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all six)")
		events     = flag.Uint64("events", 0, "override per-core event budget (0 = scale default)")
		cores      = flag.Int("cores", 4, "number of cores")
		parallel   = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory (empty = disabled)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range tifs.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	o := tifs.ExperimentOptions{Scale: scale, Events: *events, Cores: *cores, Parallelism: *parallel}
	if *cacheDir != "" {
		st, err := tifs.OpenResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, st.Stats())
			st.Close()
		}()
		o.Store = st
	}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			name := strings.TrimSpace(w)
			if _, err := tifs.WorkloadByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			o.Workloads = append(o.Workloads, name)
		}
	}

	if *experiment == "all" {
		fmt.Print(tifs.RunAllExperiments(o))
		return 0
	}
	out, err := tifs.RunExperiment(*experiment, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Print(out)
	return 0
}
