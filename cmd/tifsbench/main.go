// Command tifsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tifsbench -experiment fig13 -scale medium
//	tifsbench -experiment all -scale small -workloads OLTP-DB2,Web-Apache
//	tifsbench -experiment all -scale small -cache-dir ~/.cache/tifs
//	tifsbench -list
//
// With -cache-dir, simulation results and miss traces persist in a
// content-addressed store; re-running the same experiments loads them
// instead of re-simulating, printing byte-identical tables in a fraction
// of the time. A store summary goes to stderr so stdout stays clean.
//
// -intra N shards event generation inside each simulation across N
// producer goroutines with a deterministic merge at the shared uncore:
// output bytes are identical at every setting, so it composes with
// every mode below (and is excluded from -submit's dedup key). -spec
// adds the third tier: a speculation goroutine executes windows of core
// steps ahead of the merge, which verifies the predicted interleaving
// and commits or rolls back — byte-identical output, with commit and
// rollback counters on stderr. Both accept off|on|auto|N ("auto" sizes
// to the machine); negative widths are rejected.
//
// Sharded sweeps split one experiment grid across processes or machines
// that share a -cache-dir (for machines: on a shared filesystem):
//
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -shard 0/4   # one worker
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -shard auto/4 # self-assigning worker
//	tifsbench -experiment all -scale full -cache-dir /shared/tifs -merge        # assemble the output
//	tifsbench -cache-dir /shared/tifs -store-gc                                 # compact afterwards
//
// Workers fill the store cooperatively and print no tables; the -merge
// pass renders output byte-identical to a single-process run from store
// hits alone. -store-gc folds the per-worker segment files back into one
// log and reclaims dead bytes.
//
// With -remote, the store and the lease coordination live behind a
// tifsserve URL instead of a shared directory — workers on different
// machines need share nothing but the URL:
//
//	tifsserve -dir /var/tifs/store -addr :8419                                # on the store host
//	tifsbench -experiment all -scale full -remote http://host:8419 -shard auto/4
//	tifsbench -experiment all -scale full -remote http://host:8419 -merge
//
// Remote outages degrade, never block: workers compute locally, queue
// write-backs, and reconcile when the server returns; output stays
// byte-identical regardless. -netfault injects deterministic network
// faults (drops, latency, 5xx, torn bodies) into the remote client for
// testing that machinery.
//
// With -submit, the whole run happens on the server instead: the
// experiment selection is posted to tifsserve's job API, progress
// events stream to stderr, and the finished tables — byte-identical to
// a local run — print to stdout. Identical concurrent submissions
// single-flight onto one server-side execution, and a warm server
// answers from its store without simulating at all:
//
//	tifsbench -experiment fig13 -scale small -submit http://host:8419
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"tifs"
)

func main() {
	os.Exit(run())
}

// exitInterrupted is the exit code after a clean signal-triggered
// shutdown (128+SIGINT, the shell convention).
const exitInterrupted = 130

// signalContext returns a context cancelled on the first SIGINT or
// SIGTERM, letting in-flight work stop at a clean boundary (lease
// released, store flushed and closed). A second signal force-quits
// immediately for the case where the graceful path itself is stuck.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "tifsbench: interrupt — finishing current batch and releasing the shard lease (send again to force quit)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "tifsbench: second interrupt — forcing quit")
		os.Exit(exitInterrupted)
	}()
	return ctx, cancel
}

func run() int {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "small", "workload scale: small|medium|full")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all six)")
		events     = flag.Uint64("events", 0, "override per-core event budget (0 = scale default)")
		cores      = flag.Int("cores", 4, "number of cores")
		parallel   = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		intra      = flag.String("intra", "off", "producer shards inside each simulation: off|on|auto|N (off/0/1 = serial, auto = NumCPU; output bytes identical at every setting)")
		spec       = flag.String("spec", "off", "speculative merge execution inside each simulation: off|on|auto|N (predict/verify/commit windows; output bytes identical at every setting)")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory (empty = disabled)")
		remote     = flag.String("remote", "", "tifsserve base URL (e.g. http://host:8419); replaces -cache-dir for runs, -shard, and -merge")
		submit     = flag.String("submit", "", "submit the run as a job to a tifsserve URL and stream its progress; the server executes it")
		netFault   = flag.String("netfault", "", "inject deterministic network faults into -remote traffic: 'mode:method:path:nth[:times],...' (testing)")
		shardSpec  = flag.String("shard", "", "run as a sweep worker: 'i/N' (0-based) or 'auto/N'; requires -cache-dir or -remote")
		merge      = flag.Bool("merge", false, "assemble experiment output from the shared store after shard workers finish; requires -cache-dir or -remote")
		storeGC    = flag.Bool("store-gc", false, "compact the -cache-dir store (fold segments, drop dead bytes) and exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range tifs.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return 0
	}

	if *storeGC {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-store-gc requires -cache-dir")
			return 2
		}
		st, err := tifs.CompactResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, st)
		return 0
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	intraN, err := parseTierWidth("intra", *intra, runtime.NumCPU())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	specN, err := parseTierWidth("spec", *spec, 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx, stop := signalContext()
	defer stop()
	o := tifs.ExperimentOptions{Context: ctx, Scale: scale, Events: *events, Cores: *cores, Parallelism: *parallel, IntraParallelism: intraN, Speculative: specN}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			name := strings.TrimSpace(w)
			if _, err := tifs.WorkloadByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			o.Workloads = append(o.Workloads, name)
		}
	}
	// ids selects the sweep grid: nil = the full registry.
	var ids []string
	if *experiment != "all" {
		ids = []string{*experiment}
	}

	// httpClient carries all -remote traffic; -netfault wraps its
	// transport in the deterministic fault injector.
	var httpClient *http.Client
	if *netFault != "" {
		if *remote == "" && *submit == "" {
			fmt.Fprintln(os.Stderr, "-netfault requires -remote or -submit")
			return 2
		}
		rt, err := tifs.NetFaultTransport(*netFault, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		httpClient = &http.Client{Transport: rt}
	}

	if *submit != "" {
		return runSubmit(ctx, *submit, httpClient, ids, o)
	}
	if *shardSpec != "" {
		return runShardWorker(ctx, *shardSpec, *cacheDir, *remote, httpClient, ids, o)
	}
	if *merge {
		return runMerge(ctx, *cacheDir, *remote, httpClient, ids, o)
	}

	switch {
	case *remote != "":
		rs := tifs.DialRemoteStoreContext(ctx, *remote, httpClient)
		defer func() {
			fmt.Fprintln(os.Stderr, rs.Stats())
			if err := rs.Close(); err != nil {
				// Undelivered write-backs are a warning, not a failure: the
				// tables printed are correct, and a later run or merge just
				// recomputes what never reached the server.
				fmt.Fprintln(os.Stderr, "tifsbench:", err)
			}
		}()
		o.Backend = rs
	case *cacheDir != "":
		st, err := tifs.OpenResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, st.Stats())
			st.Close()
		}()
		o.Store = st
	}

	// An explicit engine (instead of the one the experiments package
	// would build internally) so the run can account for its work:
	// zero simulations and zero grammar builds on a warm store is the
	// observable proof the persistence tiers answered everything.
	var eng *tifs.SimEngine
	if o.Backend != nil {
		eng = tifs.NewSimEngineBackend(*parallel, o.Backend)
	} else {
		eng = tifs.NewSimEngine(*parallel, o.Store)
	}
	if intraN > 1 {
		eng.SetIntraParallelism(intraN)
	}
	if specN > 1 {
		eng.SetSpeculative(specN)
	}
	o.Engine = eng
	defer eng.Close()
	defer func() {
		fmt.Fprintf(os.Stderr, "engine: %d simulations run, %d store hits, %d grammar builds\n",
			eng.SimulationsRun(), eng.StoreHits(), eng.GrammarBuilds())
		if specN > 1 {
			w, c, rb, l := eng.SpecCounters()
			fmt.Fprintf(os.Stderr, "speculation: %d windows, %d committed, %d rollbacks, %d latched-off runs\n", w, c, rb, l)
		}
	}()

	if *experiment == "all" {
		fmt.Print(tifs.RunAllExperiments(o))
		return interrupted(ctx)
	}
	out, err := tifs.RunExperiment(*experiment, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Print(out)
	return interrupted(ctx)
}

// parseTierWidth interprets the shared -intra/-spec flag syntax: "off"
// (and widths 0/1) disables the tier, "on" enables it at onWidth,
// "auto" sizes it to the machine (runtime.NumCPU()), and a bare integer
// sets the width directly. Negative widths are rejected with a clear
// error instead of silently running serial.
func parseTierWidth(flagName, val string, onWidth int) (int, error) {
	switch val {
	case "", "off":
		return 0, nil
	case "on":
		return onWidth, nil
	case "auto":
		return runtime.NumCPU(), nil
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("bad -%s %q: want off|on|auto or a non-negative integer", flagName, val)
	}
	if n < 0 {
		return 0, fmt.Errorf("bad -%s %d: width must be non-negative", flagName, n)
	}
	return n, nil
}

// interrupted converts a cancelled run context into the exit status: any
// output printed after cancellation is partial and must not be mistaken
// for a completed run.
func interrupted(ctx context.Context) int {
	if ctx.Err() == nil {
		return 0
	}
	fmt.Fprintln(os.Stderr, "tifsbench: interrupted — output above is partial")
	return exitInterrupted
}

// runSubmit ships the run to a sweep service: it posts the experiment
// selection as a job, streams progress to stderr, and prints the
// server-rendered tables — byte-identical to a local run — to stdout.
// A duplicate of in-flight work joins the existing job (reported on
// stderr) rather than re-running it.
func runSubmit(ctx context.Context, url string, httpClient *http.Client, ids []string, o tifs.ExperimentOptions) int {
	c := tifs.DialJobService(url, httpClient)
	c.Name = submitClientName()
	req := tifs.JobRequest{
		Experiments:      ids,
		Workloads:        o.Workloads,
		Scale:            fmt.Sprint(o.Scale),
		Events:           o.Events,
		Cores:            o.Cores,
		IntraParallelism: o.IntraParallelism,
		Speculative:      o.Speculative,
	}
	st, err := tifs.SubmitJob(ctx, c, req)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tifsbench: interrupted before the job was accepted")
			return exitInterrupted
		}
		fmt.Fprintln(os.Stderr, "tifsbench:", err)
		return 1
	}
	if st.Deduped {
		fmt.Fprintf(os.Stderr, "tifsbench: job %s deduplicated — joined identical in-flight work (state %s)\n", st.ID, st.State)
	} else {
		fmt.Fprintf(os.Stderr, "tifsbench: job %s accepted\n", st.ID)
	}
	final, err := tifs.WatchJob(ctx, c, st.ID, func(ev tifs.JobEvent) {
		switch ev.Kind {
		case "experiment-start":
			fmt.Fprintf(os.Stderr, "tifsbench: job %s: experiment %s (sims so far: %d run, %d store hits)\n",
				st.ID, ev.Phase, ev.SimsRun, ev.StoreHits)
		case "failed":
			fmt.Fprintf(os.Stderr, "tifsbench: job %s failed: %s\n", st.ID, ev.Msg)
		}
	})
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tifsbench: interrupted — the job keeps running server-side; resubmit the same flags to rejoin it")
			return exitInterrupted
		}
		fmt.Fprintln(os.Stderr, "tifsbench:", err)
		return 1
	}
	if final.State != tifs.JobDone {
		fmt.Fprintf(os.Stderr, "tifsbench: job %s %s: %s\n", final.ID, final.State, final.Error)
		return 1
	}
	fmt.Print(final.Output)
	fmt.Fprintf(os.Stderr, "tifsbench: job %s done — simulations run: %d, store hits: %d\n",
		final.ID, final.SimsRun, final.StoreHits)
	return interrupted(ctx)
}

// submitClientName identifies this process for the service's per-client
// fairness accounting.
func submitClientName() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown-host"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runShardWorker executes one sweep worker: shard "i/N" pins a shard,
// "auto/N" claims shards through the lease manifest until none remain.
// Workers print per-shard reports to stderr and no tables at all — the
// -merge pass renders output once every shard is done. With remote set,
// the store and lease manifest live behind that tifsserve URL.
func runShardWorker(ctx context.Context, spec, cacheDir, remote string, httpClient *http.Client, ids []string, o tifs.ExperimentOptions) int {
	if cacheDir == "" && remote == "" {
		fmt.Fprintln(os.Stderr, "-shard requires -cache-dir or -remote (the store all workers share)")
		return 2
	}
	sel, countStr, ok := strings.Cut(spec, "/")
	count, countErr := strconv.Atoi(countStr)
	if !ok || countErr != nil || count < 1 {
		fmt.Fprintf(os.Stderr, "bad -shard %q: want 'i/N' (0-based) or 'auto/N'\n", spec)
		return 2
	}
	grid, err := tifs.ExperimentGrid(ids, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "sweep grid: %d simulations, %d trace extractions across %d shards\n",
		len(grid.Jobs), len(grid.Traces), count)

	if sel == "auto" {
		var reports []tifs.ShardReport
		var err error
		if remote != "" {
			reports, err = tifs.RemoteShardedSweepAuto(ctx, remote, httpClient, count, grid, o)
		} else {
			reports, err = tifs.ShardedSweepAuto(ctx, cacheDir, count, grid, o)
		}
		for _, rep := range reports {
			fmt.Fprintln(os.Stderr, rep)
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tifsbench: interrupted — lease released; stored results are kept, a fresh worker resumes where this one stopped")
			return exitInterrupted
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "worker done: ran %d shard(s)\n", len(reports))
		return 0
	}
	index, err := strconv.Atoi(sel)
	if err != nil || index < 0 || index >= count {
		fmt.Fprintf(os.Stderr, "bad -shard %q: index must be in [0,%d)\n", spec, count)
		return 2
	}
	var rep tifs.ShardReport
	if remote != "" {
		rep, err = tifs.RemoteShardedSweep(ctx, remote, httpClient, index, count, grid, o)
	} else {
		rep, err = tifs.ShardedSweep(ctx, cacheDir, index, count, grid, o)
	}
	if ctx.Err() != nil {
		// Partial report: the counters below say how far it got before
		// the interrupt; everything counted is already in the store.
		fmt.Fprintf(os.Stderr, "%s (interrupted)\n", rep)
		fmt.Fprintln(os.Stderr, "tifsbench: interrupted — lease released; stored results are kept, a fresh worker resumes where this one stopped")
		return exitInterrupted
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Fprintln(os.Stderr, rep)
	return 0
}

// runMerge assembles experiment output from the shared store. With full
// shard coverage every grid point is a store hit and the pass takes
// seconds; anything a failed worker left missing is re-computed here
// (correct output either way) and reported so the operator knows.
func runMerge(ctx context.Context, cacheDir, remote string, httpClient *http.Client, ids []string, o tifs.ExperimentOptions) int {
	if cacheDir == "" && remote == "" {
		fmt.Fprintln(os.Stderr, "-merge requires -cache-dir or -remote (the store the shard workers filled)")
		return 2
	}
	var st tifs.StoreBackend
	if remote != "" {
		rs := tifs.DialRemoteStoreContext(ctx, remote, httpClient)
		defer func() {
			fmt.Fprintln(os.Stderr, rs.Stats())
			rs.Close()
		}()
		st = rs
	} else {
		local, err := tifs.OpenResultStore(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, local.Stats())
			local.Close()
		}()
		st = local
	}
	// Preflight coverage against the grid itself: the engine's counters
	// alone would miss a re-run trace extraction.
	grid, err := tifs.ExperimentGrid(ids, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	missingJobs, missingTraces := tifs.MissingFromStore(st, grid)
	e := tifs.NewSimEngineBackend(o.Parallelism, st)
	o.Engine = e
	defer e.Close()

	if len(ids) == 0 {
		fmt.Print(tifs.RunAllExperiments(o))
	} else {
		out, err := tifs.RunExperiment(ids[0], o)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Print(out)
	}
	if n := len(missingJobs) + len(missingTraces); n > 0 {
		fmt.Fprintf(os.Stderr, "merge: %d simulations and %d trace extractions were missing from the store and were re-computed (did a shard worker die?)\n",
			len(missingJobs), len(missingTraces))
	} else {
		fmt.Fprintf(os.Stderr, "merge: assembled entirely from the store (%d hits)\n", e.StoreHits())
	}
	return interrupted(ctx)
}
