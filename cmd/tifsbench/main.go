// Command tifsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	tifsbench -experiment fig13 -scale medium
//	tifsbench -experiment all -scale small -workloads OLTP-DB2,Web-Apache
//	tifsbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tifs"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		scaleName  = flag.String("scale", "small", "workload scale: small|medium|full")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all six)")
		events     = flag.Uint64("events", 0, "override per-core event budget (0 = scale default)")
		cores      = flag.Int("cores", 4, "number of cores")
		parallel   = flag.Int("parallelism", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		list       = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range tifs.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Description)
		}
		return
	}

	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := tifs.ExperimentOptions{Scale: scale, Events: *events, Cores: *cores, Parallelism: *parallel}
	if *workloads != "" {
		for _, w := range strings.Split(*workloads, ",") {
			name := strings.TrimSpace(w)
			if _, err := tifs.WorkloadByName(name); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			o.Workloads = append(o.Workloads, name)
		}
	}

	if *experiment == "all" {
		fmt.Print(tifs.RunAllExperiments(o))
		return
	}
	out, err := tifs.RunExperiment(*experiment, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(out)
}
