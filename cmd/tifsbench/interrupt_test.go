package main

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// watchWriter buffers a process's stderr and closes started the first
// time marker appears, so the test can signal the process only once work
// is genuinely in flight. Attached via cmd.Stderr (not a pipe): Wait can
// never race the draining of trailing output.
type watchWriter struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	started chan struct{}
	marker  string
	seen    bool
}

func (w *watchWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.seen && strings.Contains(w.buf.String(), w.marker) {
		w.seen = true
		close(w.started)
	}
	return len(p), nil
}

func (w *watchWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// buildBench compiles the tifsbench binary into a scratch dir once.
func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tifsbench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestInterruptedShardWorkerReleasesLeaseAndMergeCompletes is the
// process-level acceptance test for graceful shutdown: SIGINT a shard
// worker mid-sweep, and it must exit 130 with the lease handed back
// (shard free, not wedged until TTL expiry); a fresh -merge over the
// same store then completes and renders output byte-identical to a
// storeless single-process run.
func TestInterruptedShardWorkerReleasesLeaseAndMergeCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and runs a full small-scale sweep")
	}
	bin := buildBench(t)
	cacheDir := filepath.Join(t.TempDir(), "store")
	base := []string{"-experiment", "all", "-scale", "small", "-events", "8000"}

	// Start shard worker 0/2 and interrupt it shortly after the sweep
	// grid is announced (work is in flight from that point on).
	worker := exec.Command(bin, append(append([]string{}, base...), "-cache-dir", cacheDir, "-shard", "0/2")...)
	stderr := &watchWriter{started: make(chan struct{}), marker: "sweep grid:"}
	worker.Stderr = stderr
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stderr.started:
	case <-time.After(30 * time.Second):
		worker.Process.Kill()
		t.Fatal("worker never announced the sweep grid")
	}
	time.Sleep(300 * time.Millisecond)
	if err := worker.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	werr := worker.Wait()

	code := worker.ProcessState.ExitCode()
	if code == 0 {
		// The whole shard finished before the signal landed; the graceful
		// path was never exercised. Rare on any real machine at this event
		// budget, but not a failure of the contract under test.
		t.Skip("worker finished before the interrupt landed")
	}
	if code != exitInterrupted {
		t.Fatalf("interrupted worker exited %d (err %v), want %d\nstderr:\n%s", code, werr, exitInterrupted, stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted — lease released") {
		t.Fatalf("worker stderr missing the interrupted marker:\n%s", stderr.String())
	}

	// The lease went back to free on the way out: no TTL wait for the
	// next worker. (State "done" would mean the shard finished pre-signal,
	// which the exit code above already ruled out.)
	manifest, err := os.ReadFile(filepath.Join(cacheDir, "shards.manifest"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "shard 0 free \"\" 0") {
		t.Fatalf("interrupted worker left its lease claimed:\n%s", manifest)
	}

	// A fresh merge completes the sweep (recomputing whatever the dead
	// worker never stored) with exit 0...
	merge := exec.Command(bin, append(append([]string{}, base...), "-cache-dir", cacheDir, "-merge")...)
	var mergeOut bytes.Buffer
	merge.Stdout = &mergeOut
	merge.Stderr = io.Discard
	if err := merge.Run(); err != nil {
		t.Fatalf("merge after interrupt: %v", err)
	}

	// ...and its tables are byte-identical to a direct storeless run.
	direct := exec.Command(bin, base...)
	var directOut bytes.Buffer
	direct.Stdout = &directOut
	direct.Stderr = io.Discard
	if err := direct.Run(); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if mergeOut.String() != directOut.String() {
		t.Fatal("merge output after an interrupted worker diverges from a direct run")
	}
}
