// Command tifssim runs a single simulation configuration and prints a
// detailed report: cycles, IPC, fetch-stall share, coverage, discards,
// and the L2 traffic ledger.
//
// Usage:
//
//	tifssim -workload OLTP-Oracle -scale medium -mechanism tifs-virtualized
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tifs"
)

// exitInterrupted is the exit code after a clean signal-triggered
// shutdown (128+SIGINT, the shell convention).
const exitInterrupted = 130

// signalContext returns a context cancelled on the first SIGINT or
// SIGTERM so the simulation batch stops at a clean boundary and the
// store flushes and closes. A second signal force-quits immediately.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "tifssim: interrupt — stopping (send again to force quit)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "tifssim: second interrupt — forcing quit")
		os.Exit(exitInterrupted)
	}()
	return ctx, cancel
}

func mechanismByName(name string) (tifs.Mechanism, error) {
	switch name {
	case "next-line", "baseline":
		return tifs.NextLineOnly(), nil
	case "fdip":
		return tifs.FDIP(), nil
	case "discontinuity":
		return tifs.Discontinuity(), nil
	case "tifs", "tifs-unbounded":
		return tifs.TIFS(tifs.TIFSUnbounded()), nil
	case "tifs-dedicated":
		return tifs.TIFS(tifs.TIFSDedicated()), nil
	case "tifs-virtualized":
		return tifs.TIFS(tifs.TIFSVirtualized()), nil
	case "perfect":
		return tifs.Perfect(), nil
	default:
		return tifs.Mechanism{}, fmt.Errorf("unknown mechanism %q", name)
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name      = flag.String("workload", "OLTP-DB2", "workload name")
		scaleName = flag.String("scale", "small", "small|medium|full")
		mechName  = flag.String("mechanism", "tifs-dedicated", "next-line|fdip|discontinuity|tifs-unbounded|tifs-dedicated|tifs-virtualized|perfect")
		events    = flag.Uint64("events", 0, "per-core events (0 = scale default)")
		cores     = flag.Int("cores", 4, "number of cores")
		baseline  = flag.Bool("baseline", true, "also run the next-line baseline and report speedup")
		cacheDir  = flag.String("cache-dir", "", "persistent result store directory (empty = disabled)")
		remote    = flag.String("remote", "", "tifsserve base URL (e.g. http://host:8419); remote result store instead of -cache-dir")
		storeGC   = flag.Bool("store-gc", false, "compact the -cache-dir store (fold segments, drop dead bytes) and exit")
	)
	flag.Parse()

	if *storeGC {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-store-gc requires -cache-dir")
			return 2
		}
		st, err := tifs.CompactResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, st)
		return 0
	}

	spec, err := tifs.WorkloadByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mech, err := mechanismByName(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx, stop := signalContext()
	defer stop()

	// Run the mechanism and (when requested) its next-line baseline as one
	// batch so they execute concurrently on multi-core hosts. With
	// -cache-dir (or -remote), previously simulated configurations load
	// from the persistent store instead of re-running.
	var st tifs.StoreBackend
	switch {
	case *remote != "":
		rs := tifs.DialRemoteStore(*remote, nil)
		defer func() {
			fmt.Fprintln(os.Stderr, rs.Stats())
			rs.Close()
		}()
		st = rs
	case *cacheDir != "":
		local, err := tifs.OpenResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, local.Stats())
			local.Close()
		}()
		st = local
	}
	jobs := []tifs.SimJob{{Spec: spec, Scale: scale, Config: tifs.SimConfig{
		Cores: *cores, EventsPerCore: *events, Mechanism: mech,
	}}}
	wantBaseline := *baseline && mech.Kind != "none"
	if wantBaseline {
		jobs = append(jobs, tifs.SimJob{Spec: spec, Scale: scale, Config: tifs.SimConfig{
			Cores: *cores, EventsPerCore: *events, Mechanism: tifs.NextLineOnly(),
		}})
	}
	results := tifs.SimulateAllBackendContext(ctx, jobs, 0, st)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tifssim: interrupted — no report (partial results, if any, were saved to the cache)")
		return exitInterrupted
	}
	r := results[0]

	fmt.Printf("workload:   %s (%s scale, %d cores)\n", r.Workload, scale, *cores)
	fmt.Printf("mechanism:  %s\n", r.Mechanism)
	fmt.Printf("cycles:     %d (makespan)\n", r.Cycles)
	fmt.Printf("instrs:     %d   IPC: %.3f\n", r.TotalInstrs, r.IPC())
	fmt.Printf("fetch stall: %.1f%% of cycles\n", 100*r.FetchStallShare())
	fmt.Printf("coverage:   %.1f%%   discards: %.1f%%\n", 100*r.Coverage(), 100*r.DiscardFrac())
	fmt.Printf("prefetch:   issued=%d timely=%d late=%d\n",
		r.Prefetch.Issued, r.Prefetch.HitsTimely, r.Prefetch.HitsLate)
	if r.TIFS != nil {
		fmt.Printf("tifs:       streams=%d lookups=%d indexMisses=%d pauses=%d resumes=%d\n",
			r.TIFS.StreamsAllocated, r.TIFS.IndexLookups, r.TIFS.IndexMisses,
			r.TIFS.Pauses, r.TIFS.Resumes)
	}
	var useful uint64
	for _, s := range r.PerCore {
		useful += s.PrefetchHits
	}
	fmt.Printf("L2 traffic overhead: %.1f%% of base\n", 100*r.Traffic.OverheadFrac(useful))

	if wantBaseline {
		fmt.Printf("speedup over next-line: %.3f\n", r.SpeedupOver(results[1]))
	}
	return 0
}
