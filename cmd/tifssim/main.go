// Command tifssim runs a single simulation configuration and prints a
// detailed report: cycles, IPC, fetch-stall share, coverage, discards,
// and the L2 traffic ledger.
//
// Usage:
//
//	tifssim -workload OLTP-Oracle -scale medium -mechanism tifs-virtualized
//
// With -submit, the simulation runs on a tifsserve sweep service
// instead of locally; the report bytes are identical either way, and a
// warm server answers from its result store without simulating:
//
//	tifssim -workload OLTP-Oracle -mechanism tifs-virtualized -submit http://host:8419
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"

	"tifs"
)

// exitInterrupted is the exit code after a clean signal-triggered
// shutdown (128+SIGINT, the shell convention).
const exitInterrupted = 130

// signalContext returns a context cancelled on the first SIGINT or
// SIGTERM so the simulation batch stops at a clean boundary and the
// store flushes and closes. A second signal force-quits immediately.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "tifssim: interrupt — stopping (send again to force quit)")
		cancel()
		<-ch
		fmt.Fprintln(os.Stderr, "tifssim: second interrupt — forcing quit")
		os.Exit(exitInterrupted)
	}()
	return ctx, cancel
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		name      = flag.String("workload", "OLTP-DB2", "workload name")
		scaleName = flag.String("scale", "small", "small|medium|full")
		mechName  = flag.String("mechanism", "tifs-dedicated", "next-line|fdip|discontinuity|tifs-unbounded|tifs-dedicated|tifs-virtualized|perfect")
		events    = flag.Uint64("events", 0, "per-core events (0 = scale default)")
		cores     = flag.Int("cores", 4, "number of cores")
		baseline  = flag.Bool("baseline", true, "also run the next-line baseline and report speedup")
		intra     = flag.String("intra", "off", "producer shards inside the simulation: off|on|auto|N (off/0/1 = serial, auto = NumCPU; report bytes identical at every setting)")
		specMode  = flag.String("spec", "off", "speculative merge execution: off|on|auto|N (predict/verify/commit windows; report bytes identical at every setting)")
		cacheDir  = flag.String("cache-dir", "", "persistent result store directory (empty = disabled)")
		remote    = flag.String("remote", "", "tifsserve base URL (e.g. http://host:8419); remote result store instead of -cache-dir")
		submit    = flag.String("submit", "", "submit the simulation as a job to a tifsserve URL; the server executes it and returns the report")
		storeGC   = flag.Bool("store-gc", false, "compact the -cache-dir store (fold segments, drop dead bytes) and exit")
	)
	flag.Parse()

	if *storeGC {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "-store-gc requires -cache-dir")
			return 2
		}
		st, err := tifs.CompactResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintln(os.Stderr, st)
		return 0
	}

	spec, err := tifs.WorkloadByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	mech, err := tifs.MechanismByName(*mechName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	intraN, err := parseTierWidth("intra", *intra, runtime.NumCPU())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	specN, err := parseTierWidth("spec", *specMode, 2)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx, stop := signalContext()
	defer stop()

	if *submit != "" {
		return runSubmit(ctx, *submit, *name, *mechName, *scaleName, *baseline, *events, *cores, intraN, specN)
	}

	// Run the mechanism and (when requested) its next-line baseline as one
	// batch so they execute concurrently on multi-core hosts. With
	// -cache-dir (or -remote), previously simulated configurations load
	// from the persistent store instead of re-running.
	var st tifs.StoreBackend
	switch {
	case *remote != "":
		rs := tifs.DialRemoteStoreContext(ctx, *remote, nil)
		defer func() {
			fmt.Fprintln(os.Stderr, rs.Stats())
			rs.Close()
		}()
		st = rs
	case *cacheDir != "":
		local, err := tifs.OpenResultStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		defer func() {
			fmt.Fprintln(os.Stderr, local.Stats())
			local.Close()
		}()
		st = local
	}
	jobs := []tifs.SimJob{{Spec: spec, Scale: scale, Config: tifs.SimConfig{
		Cores: *cores, EventsPerCore: *events, Mechanism: mech,
		IntraParallelism: intraN, Speculative: specN,
	}}}
	wantBaseline := *baseline && mech.Kind != "none"
	if wantBaseline {
		jobs = append(jobs, tifs.SimJob{Spec: spec, Scale: scale, Config: tifs.SimConfig{
			Cores: *cores, EventsPerCore: *events, Mechanism: tifs.NextLineOnly(),
			IntraParallelism: intraN, Speculative: specN,
		}})
	}
	results := tifs.SimulateAllBackendContext(ctx, jobs, 0, st)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tifssim: interrupted — no report (partial results, if any, were saved to the cache)")
		return exitInterrupted
	}
	if specN > 1 {
		// Speculation telemetry stays out of the report bytes (they are
		// byte-identical at every -spec setting); it lands on stderr.
		for i, r := range results {
			fmt.Fprintf(os.Stderr, "speculation[%d]: %d windows, %d committed, %d rollbacks, latched=%v\n",
				i, r.Spec.Windows, r.Spec.Committed, r.Spec.Rollbacks, r.Spec.Latched)
		}
	}
	// Render through the shared report so local and -submit output are
	// byte-identical by construction.
	var base *tifs.SimResult
	if wantBaseline {
		base = &results[1]
	}
	fmt.Print(tifs.SimReport(results[0], base, scale, *cores))
	return 0
}

// parseTierWidth interprets the shared -intra/-spec flag syntax: "off"
// (and widths 0/1) disables the tier, "on" enables it at onWidth,
// "auto" sizes it to the machine (runtime.NumCPU()), and a bare integer
// sets the width directly. Negative widths are rejected with a clear
// error instead of silently running serial.
func parseTierWidth(flagName, val string, onWidth int) (int, error) {
	switch val {
	case "", "off":
		return 0, nil
	case "on":
		return onWidth, nil
	case "auto":
		return runtime.NumCPU(), nil
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("bad -%s %q: want off|on|auto or a non-negative integer", flagName, val)
	}
	if n < 0 {
		return 0, fmt.Errorf("bad -%s %d: width must be non-negative", flagName, n)
	}
	return n, nil
}

// runSubmit posts the simulation to a sweep service's job API and
// prints the server-rendered report.
func runSubmit(ctx context.Context, url, workload, mechanism, scale string, baseline bool, events uint64, cores, intra, spec int) int {
	c := tifs.DialJobService(url, nil)
	host, err := os.Hostname()
	if err != nil {
		host = "unknown-host"
	}
	c.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	st, err := tifs.SubmitJob(ctx, c, tifs.JobRequest{
		Workload: workload, Mechanism: mechanism, Baseline: baseline,
		Scale: scale, Events: events, Cores: cores,
		IntraParallelism: intra, Speculative: spec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tifssim:", err)
		if ctx.Err() != nil {
			return exitInterrupted
		}
		return 1
	}
	if st.Deduped {
		fmt.Fprintf(os.Stderr, "tifssim: job %s deduplicated — joined identical in-flight work (state %s)\n", st.ID, st.State)
	} else {
		fmt.Fprintf(os.Stderr, "tifssim: job %s accepted\n", st.ID)
	}
	final, err := tifs.WatchJob(ctx, c, st.ID, nil)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tifssim: interrupted — the job keeps running server-side; resubmit the same flags to rejoin it")
			return exitInterrupted
		}
		fmt.Fprintln(os.Stderr, "tifssim:", err)
		return 1
	}
	if final.State != tifs.JobDone {
		fmt.Fprintf(os.Stderr, "tifssim: job %s %s: %s\n", final.ID, final.State, final.Error)
		return 1
	}
	fmt.Print(final.Output)
	fmt.Fprintf(os.Stderr, "tifssim: job %s done — simulations run: %d, store hits: %d\n",
		final.ID, final.SimsRun, final.StoreHits)
	return 0
}
