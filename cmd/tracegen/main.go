// Command tracegen generates workload fetch-event or miss traces and
// writes them in the binary trace format of internal/trace.
//
// Usage:
//
//	tracegen -workload OLTP-DB2 -scale small -events 200000 -core 0 \
//	         -kind misses -o oltp-db2.misses
package main

import (
	"flag"
	"fmt"
	"os"

	"tifs"
	"tifs/internal/isa"
	"tifs/internal/trace"
)

func main() {
	var (
		name      = flag.String("workload", "OLTP-DB2", "workload name")
		scaleName = flag.String("scale", "small", "workload scale: small|medium|full")
		events    = flag.Uint64("events", 0, "events to trace (0 = scale default)")
		coreID    = flag.Int("core", 0, "which core's stream to trace")
		cores     = flag.Int("cores", 4, "number of cores to build")
		kind      = flag.String("kind", "events", "trace kind: events|misses")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	spec, err := tifs.WorkloadByName(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scale, err := tifs.ParseScale(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *events == 0 {
		*events = scale.DefaultEvents()
	}
	if *coreID < 0 || *coreID >= *cores {
		fmt.Fprintf(os.Stderr, "core %d out of range\n", *coreID)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	gen := tifs.BuildWorkload(spec, scale, *cores)
	src := gen.Sources()[*coreID]

	switch *kind {
	case "events":
		ew, err := trace.NewEventWriter(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := uint64(0); i < *events; i++ {
			ev, ok := src.Next()
			if !ok {
				break
			}
			if err := ew.Write(ev); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := ew.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events\n", ew.Count())
	case "misses":
		mw, err := trace.NewMissWriter(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var writeErr error
		e := trace.NewExtractor(trace.ExtractorConfig{}, func(m trace.MissRecord) {
			if writeErr == nil {
				writeErr = mw.Write(m)
			}
		})
		e.Run(isa.EventSource(src), *events)
		if writeErr == nil {
			writeErr = mw.Flush()
		}
		if writeErr != nil {
			fmt.Fprintln(os.Stderr, writeErr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d misses\n", mw.Count())
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
