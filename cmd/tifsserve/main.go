// Command tifsserve serves a result-store directory over HTTP — and,
// by default, runs the sweep service on top of it, so clients can
// submit whole simulations and sweeps as jobs instead of shipping
// blobs.
//
// Usage:
//
//	tifsserve -dir /var/tifs/store -addr :8419
//
// Two protocols share the listener:
//
//   - the content-addressed blob + manifest API in internal/remotestore
//     (GET/PUT /v1/blob/{addr}, GET/PUT /v1/manifest with ETag
//     compare-and-swap, GET /v1/ping), used by sharded sweep workers;
//   - the job API in internal/sweepd (POST /v1/jobs, GET /v1/jobs/{id},
//     GET /v1/jobs/{id}/events), used by tifsbench/tifssim -submit:
//     jobs execute on an in-process engine backed by the same store, so
//     repeated work is a warm hit, identical concurrent submissions
//     single-flight onto one execution, and admission control (429 +
//     Retry-After) bounds the backlog. Disable with -jobs=false.
//
// The server is just another store writer — it can share the directory
// with local tifsbench runs, and -store-gc compaction applies as usual
// once it is stopped. Workers tolerate the server dying: their clients
// degrade to local computation and queue write-backs, so kill -9 and a
// restart lose no work and corrupt no results (the store's crash-safety
// and the client's reconcile-on-recovery both hold).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tifs/internal/remotestore"
	"tifs/internal/store"
	"tifs/internal/sweepd"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir         = flag.String("dir", "", "result store directory to serve (required; created if absent)")
		addr        = flag.String("addr", ":8419", "listen address")
		jobs        = flag.Bool("jobs", true, "run the sweep service (POST /v1/jobs) on this store")
		parallelism = flag.Int("parallelism", 0, "concurrent simulations in the job engine (0 = GOMAXPROCS)")
		maxActive   = flag.Int("max-active-jobs", 0, "concurrently executing jobs (0 = default 2)")
		maxQueued   = flag.Int("max-queued-jobs", 0, "queued jobs across all clients before 429 (0 = default 64)")
		maxPerCli   = flag.Int("max-queued-per-client", 0, "queued jobs per client before 429 (0 = default 4)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tifsserve: -dir is required")
		return 2
	}

	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tifsserve:", err)
		return 1
	}
	defer func() {
		fmt.Fprintln(os.Stderr, st.Stats())
		st.Close()
	}()

	// The job API takes the /v1/jobs routes; everything else falls
	// through to the blob/manifest protocol.
	mux := http.NewServeMux()
	mux.Handle("/", remotestore.NewServer(st, *dir).Handler())
	var svc *sweepd.Service
	if *jobs {
		svc = sweepd.New(sweepd.Config{
			Parallelism: *parallelism,
			Backend:     st,
			MaxActive:   *maxActive, MaxQueued: *maxQueued, MaxQueuedPerClient: *maxPerCli,
		})
		svc.Register(mux)
		defer func() {
			eng := svc.Engine()
			fmt.Fprintf(os.Stderr, "tifsserve: job engine ran %d simulations, %d store hits\n",
				eng.SimulationsRun(), eng.StoreHits())
			svc.Close()
		}()
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: mux,
		// Bound header reads so a stuck peer cannot pin a connection
		// forever; bodies are already bounded by the protocol's limits.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tifsserve:", err)
		return 1
	}
	mode := "store only"
	if *jobs {
		mode = "store + jobs"
	}
	fmt.Fprintf(os.Stderr, "tifsserve: serving %s on http://%s (format v%d, %s)\n",
		*dir, ln.Addr(), store.FormatVersion, mode)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tifsserve:", err)
			return 1
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "tifsserve: shutting down (in-flight requests get 5s to finish)")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// A hung drain is not worth blocking the store close: the
			// clients retry and the store is crash-safe anyway.
			srv.Close()
		}
	}
	return 0
}
