// Command tifsserve serves a result-store directory over HTTP, so
// sharded sweep workers on other machines can share results and lease
// coordination with no common filesystem — they need only this URL.
//
// Usage:
//
//	tifsserve -dir /var/tifs/store -addr :8419
//
// The protocol is the small content-addressed blob + manifest API in
// internal/remotestore: GET/PUT /v1/blob/{addr}, GET/PUT /v1/manifest
// (ETag compare-and-swap), GET /v1/ping. The server is just another
// store writer — it can share the directory with local tifsbench runs,
// and -store-gc compaction applies as usual once it is stopped.
//
// Workers tolerate the server dying: their clients degrade to local
// computation and queue write-backs, so kill -9 and a restart lose no
// work and corrupt no results (the store's crash-safety and the
// client's reconcile-on-recovery both hold).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tifs/internal/remotestore"
	"tifs/internal/store"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir  = flag.String("dir", "", "result store directory to serve (required; created if absent)")
		addr = flag.String("addr", ":8419", "listen address")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tifsserve: -dir is required")
		return 2
	}

	st, err := store.Open(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tifsserve:", err)
		return 1
	}
	defer func() {
		fmt.Fprintln(os.Stderr, st.Stats())
		st.Close()
	}()

	srv := &http.Server{
		Addr:    *addr,
		Handler: remotestore.NewServer(st, *dir).Handler(),
		// Bound header reads so a stuck peer cannot pin a connection
		// forever; bodies are already bounded by the protocol's limits.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tifsserve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "tifsserve: serving %s on http://%s (format v%d)\n",
		*dir, ln.Addr(), store.FormatVersion)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "tifsserve:", err)
			return 1
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "tifsserve: shutting down (in-flight requests get 5s to finish)")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// A hung drain is not worth blocking the store close: the
			// clients retry and the store is crash-safe anyway.
			srv.Close()
		}
	}
	return 0
}
