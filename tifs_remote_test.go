package tifs_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tifs"
	"tifs/internal/remotestore"
	"tifs/internal/retry"
	"tifs/internal/store"
)

// remoteOpts is the small grid every stage of the remote integration
// tests shares (mirrors TestShardedSweepAPI's cost).
func remoteOpts() tifs.ExperimentOptions {
	return tifs.ExperimentOptions{
		Scale:     tifs.ScaleSmall,
		Events:    3_000,
		Workloads: []string{"OLTP-DB2"},
	}
}

// flakyServer serves a store directory over HTTP and can "crash"
// (reset every connection) and "restart" on command without changing
// its URL — the deterministic stand-in for kill -9 plus a relaunch.
type flakyServer struct {
	*httptest.Server
	dead atomic.Bool
}

func newFlakyServer(t *testing.T, st *store.Store, dir string) *flakyServer {
	t.Helper()
	f := &flakyServer{}
	inner := remotestore.NewServer(st, dir).Handler()
	f.Server = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.dead.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
				return
			}
			t.Error("response writer not hijackable")
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.Server.Close)
	return f
}

// TestRemoteShardedSweepByteIdentical is the acceptance path: two shard
// workers that share nothing but a server URL — one of them behind a
// deterministic fault matrix of drops, torn bodies, 5xx rejections, and
// latency — fill the remote store, and a remote merge renders bytes
// identical to a storeless serial run with zero re-simulation.
func TestRemoteShardedSweepByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := newFlakyServer(t, st, dir)

	o := remoteOpts()
	grid, err := tifs.ExperimentGrid([]string{"fig12", "fig13"}, o)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Worker 0 rides through one of everything the injector can throw:
	// a reset GET, a mid-read torn body, two 5xx-rejected uploads, a
	// slow manifest read, and a reset manifest write.
	rt, err := tifs.NetFaultTransport(
		"drop:GET:/v1/blob:1,torn:GET:/v1/blob:2,503:PUT:/v1/blob:1:2,latency20ms:GET:/v1/manifest:1,drop:PUT:/v1/manifest:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	rep0, err := tifs.RemoteShardedSweep(ctx, srv.URL, &http.Client{Transport: rt}, 0, 2, grid, o)
	if err != nil {
		t.Fatalf("worker 0 under faults: %v", err)
	}
	rep1, err := tifs.RemoteShardedSweep(ctx, srv.URL, nil, 1, 2, grid, o)
	if err != nil {
		t.Fatalf("worker 1: %v", err)
	}
	if got, want := rep0.Jobs+rep0.Traces+rep1.Jobs+rep1.Traces, len(grid.Jobs)+len(grid.Traces); got != want {
		t.Errorf("shards covered %d of %d grid points", got, want)
	}

	rs := tifs.DialRemoteStore(srv.URL, nil)
	defer rs.Close()
	if jobs, traces := tifs.MissingFromStore(rs, grid); len(jobs)+len(traces) != 0 {
		t.Fatalf("remote store missing %d jobs, %d traces after both shards ran", len(jobs), len(traces))
	}
	e := tifs.NewSimEngineBackend(0, rs)
	o.Engine = e
	merged, err := tifs.RunExperiment("fig13", o)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.SimulationsRun(); n != 0 {
		t.Errorf("remote merge re-simulated %d grid points", n)
	}
	direct, err := tifs.RunExperiment("fig13", remoteOpts())
	if err != nil {
		t.Fatal(err)
	}
	if merged != direct {
		t.Errorf("remote merge differs from direct run:\n--- merged\n%s\n--- direct\n%s", merged, direct)
	}
}

// TestRemoteOutageDegradesAndReconciles crashes the server outright:
// the client's breaker opens, the run computes everything locally with
// write-backs queued (same bytes, no blocking), and after the restart a
// flush reconciles the queue so a fresh client merges entirely from
// store hits.
func TestRemoteOutageDegradesAndReconciles(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := newFlakyServer(t, st, dir)

	rs := tifs.DialRemoteStore(srv.URL, nil)
	defer rs.Close()
	// One instant attempt per op and a held-open breaker keep the
	// outage phase deterministic and fast.
	rs.Retry = retry.Policy{Attempts: 1, Sleep: func(time.Duration) {}, Classify: retry.TransientNetwork}
	rs.HedgeDelay = -1
	rs.BreakAfter = 1
	rs.Cooldown = time.Hour

	srv.dead.Store(true)

	o := remoteOpts()
	o.Backend = rs
	out, err := tifs.RunExperiment("fig13", o)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := tifs.RunExperiment("fig13", remoteOpts())
	if err != nil {
		t.Fatal(err)
	}
	if out != direct {
		t.Errorf("degraded run differs from direct run:\n--- degraded\n%s\n--- direct\n%s", out, direct)
	}
	stats := rs.Stats()
	if stats.BreakerOpens == 0 {
		t.Error("outage never opened the breaker")
	}
	if stats.DegradedOps == 0 {
		t.Error("no operation short-circuited while the breaker was open")
	}
	queued := rs.QueueDepth()
	if queued == 0 {
		t.Fatal("outage queued no write-backs")
	}

	// Restart and reconcile.
	srv.dead.Store(false)
	rs.Flush(context.Background())
	if depth := rs.QueueDepth(); depth != 0 {
		t.Fatalf("flush left %d write-backs queued", depth)
	}

	// A fresh, untuned client must now see every grid point and merge
	// the identical bytes from store hits alone — the reconciled
	// write-backs are the right bytes, not just present.
	clean := tifs.DialRemoteStore(srv.URL, nil)
	defer clean.Close()
	grid, err := tifs.ExperimentGrid([]string{"fig13"}, remoteOpts())
	if err != nil {
		t.Fatal(err)
	}
	if jobs, traces := tifs.MissingFromStore(clean, grid); len(jobs)+len(traces) != 0 {
		t.Fatalf("store missing %d jobs, %d traces after reconcile", len(jobs), len(traces))
	}
	e := tifs.NewSimEngineBackend(0, clean)
	o2 := remoteOpts()
	o2.Engine = e
	merged, err := tifs.RunExperiment("fig13", o2)
	if err != nil {
		t.Fatal(err)
	}
	if n := e.SimulationsRun(); n != 0 {
		t.Errorf("post-reconcile merge re-simulated %d grid points", n)
	}
	if merged != direct {
		t.Errorf("post-reconcile merge differs from direct run:\n--- merged\n%s\n--- direct\n%s", merged, direct)
	}
}
