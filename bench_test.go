// Benchmarks regenerating every table and figure of the paper's
// evaluation. One benchmark per experiment; each reports the same rows
// the corresponding figure plots (run with -v to see them once).
//
//	go test -bench=. -benchmem
//
// Benchmarks default to the small scale so the full suite runs in
// minutes; set TIFS_BENCH_SCALE=medium or full for paper-sized runs.
//
// The experiment benchmarks run through the process-wide engine, which
// memoizes simulations: configurations shared between figures run once
// per process, and iterations after the first are cache hits. That is
// the deliberate suite-level behaviour under test (the engine is how a
// full regeneration stays fast), but it makes per-experiment ns/op
// order- and iteration-dependent — use BenchmarkSimulatorThroughput and
// BenchmarkMissExtraction, which bypass the engine, as the uncached
// regression signals.
package tifs_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"tifs"
)

func benchScale(b *testing.B) tifs.Scale {
	b.Helper()
	name := os.Getenv("TIFS_BENCH_SCALE")
	if name == "" {
		return tifs.ScaleSmall
	}
	s, err := tifs.ParseScale(name)
	if err != nil {
		b.Fatalf("TIFS_BENCH_SCALE: %v", err)
	}
	return s
}

var benchOutputOnce sync.Map

// runExperiment executes one experiment b.N times, logging its table on
// the first execution of each benchmark.
func runExperiment(b *testing.B, id string) {
	o := tifs.ExperimentOptions{Scale: benchScale(b)}
	for i := 0; i < b.N; i++ {
		out, err := tifs.RunExperiment(id, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, logged := benchOutputOnce.LoadOrStore(id, true); !logged {
			b.Log("\n" + out)
		}
	}
}

func BenchmarkTable1Workloads(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkTable2System(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkFig1Opportunity(b *testing.B)  { runExperiment(b, "fig1") }
func BenchmarkFig3Repetition(b *testing.B)   { runExperiment(b, "fig3") }
func BenchmarkFig5StreamLength(b *testing.B) { runExperiment(b, "fig5") }
func BenchmarkFig6Heuristics(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig10Lookahead(b *testing.B)   { runExperiment(b, "fig10") }
func BenchmarkFig11IMLCapacity(b *testing.B) { runExperiment(b, "fig11") }
func BenchmarkFig12Traffic(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13Performance(b *testing.B) { runExperiment(b, "fig13") }
func BenchmarkAblationSVB(b *testing.B)      { runExperiment(b, "ablation-svb") }
func BenchmarkAblationEOS(b *testing.B)      { runExperiment(b, "ablation-eos") }
func BenchmarkAblationDrops(b *testing.B)    { runExperiment(b, "ablation-drops") }

// BenchmarkSimulatorThroughput measures raw simulation speed (events per
// second) on the baseline configuration. It calls the simulator
// directly, bypassing the experiment engine's memoization, so every
// iteration does full work.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		r := tifs.Simulate(spec, tifs.ScaleSmall, tifs.SimConfig{
			EventsPerCore: 50_000,
			Mechanism:     tifs.NextLineOnly(),
		})
		events += r.TotalEvents
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimulatorThroughputPooled is BenchmarkSimulatorThroughput
// through a reused SimRunner — the configuration the experiment engine
// actually runs. Steady-state iterations perform zero heap allocations
// (the -benchmem columns are the regression signal for that).
func BenchmarkSimulatorThroughputPooled(b *testing.B) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		b.Fatal(err)
	}
	r := tifs.NewSimRunner()
	cfg := tifs.SimConfig{
		EventsPerCore: 50_000,
		Mechanism:     tifs.NextLineOnly(),
	}
	r.Run(spec, tifs.ScaleSmall, cfg) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		events += r.Run(spec, tifs.ScaleSmall, cfg).TotalEvents
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSimulatorIntraParallel measures one simulation at each
// intra-run sharding level on a reused SimRunner. intra-1 is the serial
// baseline; higher shard counts move event generation onto producer
// goroutines while the merge thread consumes from the rings. Output is
// byte-identical at every level, so the events/s column is the whole
// story — and the allocation columns must stay at zero, shards or not
// (the producer pool, rings, and tasks are all Runner-pooled).
func BenchmarkSimulatorIntraParallel(b *testing.B) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		b.Fatal(err)
	}
	for _, intra := range []int{1, 2, 4, 8} {
		intra := intra
		b.Run(fmt.Sprintf("intra-%d", intra), func(b *testing.B) {
			r := tifs.NewSimRunner()
			cfg := tifs.SimConfig{
				EventsPerCore:    50_000,
				Mechanism:        tifs.NextLineOnly(),
				IntraParallelism: intra,
			}
			r.Run(spec, tifs.ScaleSmall, cfg) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			var events uint64
			for i := 0; i < b.N; i++ {
				events += r.Run(spec, tifs.ScaleSmall, cfg).TotalEvents
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkSimulatorSpeculative measures the speculative merge tier on
// a reused SimRunner. "off" is the serial merge loop; "on" runs the
// predict/verify/commit protocol, where a speculation goroutine
// executes windows of core steps ahead of the merge thread and every
// window commits (the worker replays the authoritative schedule, so
// organic divergence is impossible); "latched" corrupts every window's
// prediction via the deterministic chaos knob, forcing rollback after
// rollback until the fallback latches speculation off mid-run — the
// adversarial worst case. Output bytes are identical in all three
// modes, allocations must stay at zero in steady state, and the
// merge-busy% column — the share of wall-clock the merge thread spent
// verifying, committing, or re-executing rather than simulating — is
// the honest speedup signal on few-core hosts, where events/s alone
// cannot separate overlap from overhead.
func BenchmarkSimulatorSpeculative(b *testing.B) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		spec  int
		chaos int
	}{
		{"off", 0, 0},
		{"on", 2, 0},
		{"latched", 2, 1},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			r := tifs.NewSimRunner()
			defer r.Close()
			cfg := tifs.SimConfig{
				EventsPerCore: 50_000,
				Mechanism:     tifs.NextLineOnly(),
				Speculative:   tc.spec,
				SpecChaos:     tc.chaos,
			}
			r.Run(spec, tifs.ScaleSmall, cfg) // warm the pools
			b.ReportAllocs()
			b.ResetTimer()
			var events uint64
			var busy time.Duration
			for i := 0; i < b.N; i++ {
				events += r.Run(spec, tifs.ScaleSmall, cfg).TotalEvents
				busy += r.SpecMergeBusy()
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			if tc.spec >= 2 {
				b.ReportMetric(100*busy.Seconds()/b.Elapsed().Seconds(), "merge-busy-%")
			}
		})
	}
}

// BenchmarkMissExtraction measures the trace hot path: filtering a raw
// fetch-event stream through the L1/next-line miss definition. The
// executor is infinite, so each iteration filters a fresh 50k-event
// window at full cost.
func BenchmarkMissExtraction(b *testing.B) {
	spec, err := tifs.WorkloadByName("OLTP-DB2")
	if err != nil {
		b.Fatal(err)
	}
	const events = 50_000
	w := tifs.BuildWorkload(spec, tifs.ScaleSmall, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var misses int
	for i := 0; i < b.N; i++ {
		misses += len(tifs.ExtractMisses(w, 0, events))
	}
	if misses == 0 {
		b.Fatal("extracted no misses")
	}
	b.ReportMetric(float64(uint64(b.N)*events)/b.Elapsed().Seconds(), "events/s")
}
